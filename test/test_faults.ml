(* Robustness tests: deterministic fault plans, the device error path,
   client retry/requeue/deadline policy, and LabFS journal-commit
   aborts. *)

open Lab_sim
open Labstor
open Lab_device

let in_sim f =
  let e = Engine.create () in
  let result = ref None in
  Engine.spawn e (fun () -> result := Some (f e));
  Engine.run e;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* ------------------------------------------------------------------ *)
(* Determinism: equal seeds + equal submission sequences give          *)
(* byte-identical traces.                                              *)
(* ------------------------------------------------------------------ *)

let busy_rates =
  { Fault.io_error = 0.3; timeout = 0.2; timeout_delay_ns = 1e5; torn_write = 0.3 }

let drive_plan plan =
  for i = 0 to 199 do
    ignore
      (Fault.decide plan
         ~now:(Stdlib.float_of_int (i * 1000))
         ~queue:(i mod 4) ~is_write:(i mod 3 <> 0) ~bytes:4096)
  done;
  Fault.trace_to_string plan

let test_trace_determinism () =
  let mk () = Fault.create ~rates:busy_rates ~seed:0xABCD () in
  let a = drive_plan (mk ()) and b = drive_plan (mk ()) in
  Alcotest.(check bool) "trace nonempty" true (String.length a > 0);
  Alcotest.(check string) "identical seeds, identical traces" a b;
  let c = drive_plan (Fault.create ~rates:busy_rates ~seed:0xDCBA ()) in
  Alcotest.(check bool) "different seed, different trace" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Torn writes never persist more bytes than requested.                *)
(* ------------------------------------------------------------------ *)

let test_torn_write_bound () =
  (* torn rate 1.0: every write chunk is torn, including each chunk of
     a multi-command (> 256 KiB) operation. *)
  let sizes = [ 1; 512; 4096; 65536; 262144; 300_000; 600_000 ] in
  List.iter
    (fun bytes ->
      in_sim (fun e ->
          let dev = Device.create e Profile.nvme in
          Device.set_fault_plan dev
            (Fault.create
               ~rates:{ Fault.no_rates with Fault.torn_write = 1.0 }
               ~seed:(7 + bytes) ());
          (match Device.submit_wait_result dev ~hctx:0 ~kind:Write ~lba:0 ~bytes with
          | Error (Device.E_torn n) ->
              Alcotest.(check bool)
                (Printf.sprintf "torn %d/%d in bounds" n bytes)
                true
                (n >= 0 && n < bytes)
          | Ok _ -> Alcotest.fail "write with torn rate 1.0 reported Ok"
          | Error e -> Alcotest.fail ("unexpected error " ^ Device.error_to_string e));
          Alcotest.(check bool) "accounted bytes_written < requested" true
            (Device.bytes_written dev < bytes);
          (* Reads are never torn. *)
          match Device.submit_wait_result dev ~hctx:0 ~kind:Read ~lba:0 ~bytes with
          | Ok c -> Alcotest.(check int) "read intact" bytes c.Device.c_bytes
          | Error e -> Alcotest.fail ("read failed: " ^ Device.error_to_string e)))
    sizes

(* ------------------------------------------------------------------ *)
(* End-to-end platform scenarios.                                      *)
(* ------------------------------------------------------------------ *)

let blk_spec =
  {|
mount: "blk::/dev/t"
rules:
  exec_mode: async
dag:
  - uuid: sched-1
    mod: noop_sched
    outputs: [drv-1]
  - uuid: drv-1
    mod: kernel_driver
|}

let fs_spec =
  {|
mount: "fs::/data"
rules:
  exec_mode: async
dag:
  - uuid: fs-1
    mod: labfs
    outputs: [sched-1]
  - uuid: sched-1
    mod: noop_sched
    outputs: [drv-1]
  - uuid: drv-1
    mod: kernel_driver
|}

let test_retry_masks_one_shot_error () =
  let platform =
    Platform.boot ~nworkers:2
      ~fault_script:[ Fault.One_shot { at_ns = 0.0; queue = None; fault = Fault.Io_error } ]
      ()
  in
  (match Platform.mount platform blk_spec with
  | Ok _ -> ()
  | Error e -> failwith e);
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      (match Runtime.Client.write_block c ~mount:"blk::/dev/t" ~lba:0 ~bytes:4096 with
      | Ok n -> Alcotest.(check int) "write succeeded after retry" 4096 n
      | Error e -> Alcotest.fail ("write not retried: " ^ e));
      Alcotest.(check int) "exactly one retry" 1 (Runtime.Client.retries c);
      Alcotest.(check int) "nothing exhausted" 0 (Runtime.Client.exhausted_retries c))

let test_offline_window_requeues () =
  (* Queue 0 is offline for the first millisecond; a thread-0 client is
     steered there by noop_sched, so its first write must be requeued
     to a surviving queue. *)
  let platform =
    Platform.boot ~nworkers:2
      ~fault_script:
        [ Fault.Offline { from_ns = 0.0; until_ns = 1e6; queue = Some 0 } ]
      ()
  in
  (match Platform.mount platform blk_spec with
  | Ok _ -> ()
  | Error e -> failwith e);
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      (match Runtime.Client.write_block c ~mount:"blk::/dev/t" ~lba:0 ~bytes:4096 with
      | Ok n -> Alcotest.(check int) "write survived offline queue" 4096 n
      | Error e -> Alcotest.fail ("degraded routing failed: " ^ e));
      Alcotest.(check bool) "requeued at least once" true
        (Runtime.Client.requeues c >= 1);
      let plan = Option.get (Platform.fault_plan platform Profile.Nvme) in
      Alcotest.(check bool) "offline rejection recorded" true
        (List.assoc "offline_reject" (Fault.injected plan) >= 1))

let test_offline_fails_inflight_with_enodev () =
  (* Regression: the whole device goes offline mid-run with commands
     queued and in service. Every one of them must complete — queued
     commands are drained, in-service ones fail at completion time —
     with the offline errno (ENODEV), never hang. *)
  in_sim (fun e ->
      let dev = Device.create e Profile.nvme in
      Device.set_fault_plan dev
        (Fault.create
           ~script:
             [ Fault.Offline { from_ns = 1e5; until_ns = Float.infinity; queue = None } ]
           ~seed:42 ());
      let ok = ref 0 and enodev = ref 0 and other = ref 0 in
      let submit ~bytes i =
        Device.submit_result dev ~hctx:0 ~kind:Device.Write ~lba:(i * 4096)
          ~bytes ~on_complete:(function
          | Ok _ -> incr ok
          | Error Device.E_offline -> incr enodev
          | Error _ -> incr other)
      in
      (* These 8 small writes finish long before the 100 us loss. *)
      for i = 0 to 7 do
        submit ~bytes:4096 i
      done;
      Engine.wait 9e4;
      (* 90 us in: submitted before the loss, but a 256 KiB transfer
         cannot finish within the remaining 10 us — every one of these
         is queued or in service when the device drops. *)
      let n = 8 + 32 in
      for i = 8 to n - 1 do
        submit ~bytes:262144 i
      done;
      (* Long enough for every surviving transfer to drain through the
         bandwidth arbiter (32 x 256 KiB at ~2 GB/s ~ 4.2 ms). *)
      Engine.wait 1e7;
      Alcotest.(check int) "every in-flight command completed (no hang)" n
        (!ok + !enodev + !other);
      Alcotest.(check int) "no other error kind surfaced" 0 !other;
      Alcotest.(check bool) "some commands finished before the loss" true (!ok >= 1);
      Alcotest.(check bool) "queued + in-service commands failed over" true
        (!enodev >= 1);
      Alcotest.(check int) "nothing left outstanding" 0 (Device.outstanding dev);
      Alcotest.(check string) "offline carries the fail-over errno" "ENODEV"
        (Device.error_to_string Device.E_offline))

let test_offline_health_events () =
  (* A bounded whole-device window notifies watchers at both edges,
     with the loss event carrying the scripted return time. *)
  in_sim (fun e ->
      let dev = Device.create ~name:"legB" e Profile.nvme in
      Alcotest.(check string) "device identity" "legB" (Device.name dev);
      let events = ref [] in
      Device.add_health_watcher dev (fun ev -> events := ev :: !events);
      Device.set_fault_plan dev
        (Fault.create
           ~script:[ Fault.Offline { from_ns = 1e4; until_ns = 2e4; queue = None } ]
           ~seed:1 ());
      Engine.wait 1e5;
      match List.rev !events with
      | [ Device.Went_offline { until_ns }; Device.Came_online ] ->
          Alcotest.(check (float 1.0)) "loss event carries return time" 2e4 until_ns
      | evs ->
          Alcotest.fail
            (Printf.sprintf "expected loss + return, saw %d events"
               (List.length evs)))

let test_deadline_miss_on_lost_command () =
  let platform =
    Platform.boot ~nworkers:2
      ~fault_script:
        [
          Fault.One_shot
            { at_ns = 0.0; queue = None; fault = Fault.Transient_timeout infinity };
        ]
      ()
  in
  (match Platform.mount platform blk_spec with
  | Ok _ -> ()
  | Error e -> failwith e);
  Platform.go platform (fun () ->
      let policy =
        {
          Runtime.Client.default_retry_policy with
          Runtime.Client.max_retries = 0;
          deadline_ns = 2e6;
        }
      in
      let c = Platform.client platform ~retry_policy:policy ~thread:0 () in
      (match Runtime.Client.write_block c ~mount:"blk::/dev/t" ~lba:0 ~bytes:4096 with
      | Ok _ -> Alcotest.fail "lost command reported Ok"
      | Error msg ->
          Alcotest.(check bool)
            ("deadline surfaced as ETIMEDOUT: " ^ msg)
            true
            (String.length msg >= 9 && String.sub msg 0 9 = "ETIMEDOUT"));
      Alcotest.(check int) "one deadline miss" 1 (Runtime.Client.deadline_misses c);
      (* The client is not wedged: later requests still work. *)
      match Runtime.Client.write_block c ~mount:"blk::/dev/t" ~lba:8 ~bytes:4096 with
      | Ok n -> Alcotest.(check int) "client usable after miss" 4096 n
      | Error e -> Alcotest.fail ("client wedged after deadline miss: " ^ e))

let test_labfs_journal_abort_and_replay () =
  (* The first device command is the fsync's journal flush (creates
     stay in the in-memory log below the group-commit threshold); it
     fails, so the commit must be aborted: the records dropped, the
     inode table rebuilt from the surviving log. *)
  let platform =
    Platform.boot ~nworkers:2
      ~fault_script:[ Fault.One_shot { at_ns = 0.0; queue = None; fault = Fault.Io_error } ]
      ()
  in
  (match Platform.mount platform fs_spec with
  | Ok _ -> ()
  | Error e -> failwith e);
  let rt = Platform.runtime platform in
  let fs () = Option.get (Core.Registry.find (Runtime.Runtime.registry rt) "fs-1") in
  Platform.go platform (fun () ->
      let policy =
        { Runtime.Client.default_retry_policy with Runtime.Client.max_retries = 0 }
      in
      let c = Platform.client platform ~retry_policy:policy ~thread:0 () in
      List.iter
        (fun p ->
          match Runtime.Client.create c ("fs::/data/" ^ p) with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("create: " ^ e))
        [ "a"; "b"; "c" ];
      Alcotest.(check int) "3 files before failed commit" 3
        (Mods.Labfs.file_count (fs ()));
      let fd = Result.get_ok (Runtime.Client.open_file c "fs::/data/a") in
      (match Runtime.Client.fsync c ~fd with
      | Ok () -> Alcotest.fail "fsync should fail (injected journal fault)"
      | Error msg ->
          Alcotest.(check bool) ("errno-tagged: " ^ msg) true
            (String.length msg >= 3 && String.sub msg 0 3 = "EIO"));
      Alcotest.(check int) "commit aborted: no files survive" 0
        (Mods.Labfs.file_count (fs ()));
      Alcotest.(check int) "one commit failure" 1
        (Mods.Labfs.commit_failures (fs ()));
      (* Subsequent commits succeed and recovery agrees with the log. *)
      List.iter
        (fun p -> ignore (Runtime.Client.create c ("fs::/data/" ^ p)))
        [ "d"; "e" ];
      let fd2 = Result.get_ok (Runtime.Client.open_file c "fs::/data/d") in
      (match Runtime.Client.fsync c ~fd:fd2 with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("clean fsync failed: " ^ e));
      Alcotest.(check int) "2 files after clean commit" 2
        (Mods.Labfs.file_count (fs ()));
      let m = fs () in
      m.Core.Labmod.ops.Core.Labmod.state_repair m;
      Alcotest.(check int) "replay preserves the 2 committed files" 2
        (Mods.Labfs.file_count (fs ()));
      Alcotest.(check bool) "committed file resolvable after replay" true
        (Mods.Labfs.lookup (fs ()) "fs::/data/d" <> None))

(* ------------------------------------------------------------------ *)
(* Adjacent-LBA merging: batched contiguous writes fuse into one       *)
(* device op, yet every original request completes individually.       *)
(* ------------------------------------------------------------------ *)

let merge_spec =
  {|
mount: "blk::/dev/m"
rules:
  exec_mode: async
dag:
  - uuid: sched-m
    mod: blkswitch_sched
    attrs:
      merge_window_ns: 5000.0
    outputs: [drv-m]
  - uuid: drv-m
    mod: kernel_driver
|}

let batch_writes ~lba0 n =
  List.init n (fun i ->
      {
        Runtime.Client.op_kind = Core.Request.Write;
        op_lba = lba0 + (i * 8);
        op_bytes = 4096;
      })

let test_merge_completes_individually () =
  let platform = Platform.boot ~nworkers:2 ~worker_batch_size:4 () in
  (match Platform.mount platform merge_spec with
  | Ok _ -> ()
  | Error e -> failwith e);
  let rt = Platform.runtime platform in
  let sched () =
    Option.get (Core.Registry.find (Runtime.Runtime.registry rt) "sched-m")
  in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      match
        Runtime.Client.block_batch c ~mount:"blk::/dev/m" (batch_writes ~lba0:0 4)
      with
      | Error e -> Alcotest.fail ("batch rejected: " ^ e)
      | Ok results ->
          Alcotest.(check int) "four individual completions" 4
            (List.length results);
          List.iteri
            (fun i r ->
              match r with
              | Ok n ->
                  Alcotest.(check int)
                    (Printf.sprintf "result %d credits own bytes" i)
                    4096 n
              | Error e -> Alcotest.fail (Printf.sprintf "result %d: %s" i e))
            results);
  let dev = Platform.device platform Profile.Nvme in
  Alcotest.(check int) "one merged device write" 1 (Device.completed_writes dev);
  Alcotest.(check int) "all 16 KiB hit the device" 16384
    (Device.bytes_written dev);
  Alcotest.(check int) "one merged op dispatched" 1
    (Mods.Blkswitch_sched.merged_ops (sched ()));
  Alcotest.(check int) "three followers absorbed" 3
    (Mods.Blkswitch_sched.absorbed_reqs (sched ()))

let test_merge_torn_chunk_splits_errors () =
  (* The merged 8 KiB write is the first device command; the one-shot
     torn fault clamps persistence to the first 4096 bytes. The member
     inside the persisted prefix succeeds, the one beyond it gets the
     torn failure — errors cover only the originals they hit. *)
  let platform =
    Platform.boot ~nworkers:2 ~worker_batch_size:2
      ~fault_script:
        [ Fault.One_shot { at_ns = 0.0; queue = None; fault = Fault.Torn_write 4096 } ]
      ()
  in
  (match Platform.mount platform merge_spec with
  | Ok _ -> ()
  | Error e -> failwith e);
  Platform.go platform (fun () ->
      let policy =
        { Runtime.Client.default_retry_policy with Runtime.Client.max_retries = 0 }
      in
      let c = Platform.client platform ~retry_policy:policy ~thread:0 () in
      match
        Runtime.Client.block_batch c ~mount:"blk::/dev/m" (batch_writes ~lba0:0 2)
      with
      | Error e -> Alcotest.fail ("batch rejected: " ^ e)
      | Ok [ first; second ] ->
          (match first with
          | Ok n -> Alcotest.(check int) "persisted member succeeds" 4096 n
          | Error e -> Alcotest.fail ("member inside persisted prefix failed: " ^ e));
          (match second with
          | Ok _ -> Alcotest.fail "member beyond the tear reported Ok"
          | Error msg ->
              Alcotest.(check bool) ("torn member fails with ETORN: " ^ msg) true
                (String.length msg >= 5 && String.sub msg 0 5 = "ETORN"))
      | Ok results ->
          Alcotest.fail
            (Printf.sprintf "expected 2 results, got %d" (List.length results)));
  let dev = Platform.device platform Profile.Nvme in
  Alcotest.(check int) "single merged command carried the fault" 1
    (Device.completed_errors dev)

let () =
  Alcotest.run "lab_faults"
    [
      ( "plan",
        [
          Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
          Alcotest.test_case "torn write bound" `Quick test_torn_write_bound;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "retry masks one-shot EIO" `Quick
            test_retry_masks_one_shot_error;
          Alcotest.test_case "offline window requeues" `Quick
            test_offline_window_requeues;
          Alcotest.test_case "offline fails in-flight I/O with ENODEV" `Quick
            test_offline_fails_inflight_with_enodev;
          Alcotest.test_case "offline window fires health events" `Quick
            test_offline_health_events;
          Alcotest.test_case "deadline miss on lost command" `Quick
            test_deadline_miss_on_lost_command;
          Alcotest.test_case "labfs journal abort + replay" `Quick
            test_labfs_journal_abort_and_replay;
        ] );
      ( "merging",
        [
          Alcotest.test_case "merged batch completes individually" `Quick
            test_merge_completes_individually;
          Alcotest.test_case "torn chunk fails only covered originals" `Quick
            test_merge_torn_chunk_splits_errors;
        ] );
    ]
