(* Open-loop load harness + CO-safe latency recorder.

   Pure-stream properties (no engine): same-seed determinism, Poisson
   mean interarrival, on-off duty-cycle accounting, diurnal envelope
   integrating to the mean, replay gap arithmetic. Harness properties
   (in simulation): below saturation the CO-corrected and naive
   distributions coincide; under induced stalls the corrected p99
   dominates the naive one and injection lag is visible. Plus recorder
   and SLO unit coverage. *)

open Lab_sim
open Lab_workloads

let in_sim ?(ncores = 4) f =
  let m = Machine.create ~ncores () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* ------------------------------------------------------------------ *)
(* Arrival-stream properties                                           *)
(* ------------------------------------------------------------------ *)

(* A random well-formed process: rates in [1, 1000] kops/s, windows in
   tens of microseconds — the regimes the harness is used in. *)
let process_gen =
  QCheck.Gen.(
    oneof
      [
        map
          (fun r -> Load.Poisson { rate_ops_s = float_of_int r *. 1e3 })
          (int_range 1 1000);
        map3
          (fun r on off ->
            Load.On_off
              {
                rate_ops_s = float_of_int r *. 1e3;
                on_ns = float_of_int on *. 1e3;
                off_ns = float_of_int off *. 1e3;
              })
          (int_range 1 1000) (int_range 10 100) (int_range 0 100);
        map3
          (fun m a p ->
            Load.Diurnal
              {
                mean_ops_s = float_of_int m *. 1e3;
                amplitude = float_of_int a /. 10.0;
                period_ns = float_of_int p *. 1e4;
              })
          (int_range 1 1000) (int_range 0 10) (int_range 10 100);
        map
          (fun gaps -> Load.Replay { gaps_ns = Array.of_list gaps })
          (list_size (int_range 1 50) (int_range 0 100_000));
      ])

let process_print = function
  | Load.Poisson { rate_ops_s } -> Printf.sprintf "poisson %.0f" rate_ops_s
  | Load.On_off { rate_ops_s; on_ns; off_ns } ->
      Printf.sprintf "onoff %.0f %.0f/%.0f" rate_ops_s on_ns off_ns
  | Load.Diurnal { mean_ops_s; amplitude; period_ns } ->
      Printf.sprintf "diurnal %.0f a=%.1f T=%.0f" mean_ops_s amplitude period_ns
  | Load.Replay { gaps_ns } ->
      Printf.sprintf "replay[%d]" (Array.length gaps_ns)

let prop_same_seed_deterministic =
  QCheck.Test.make ~count:200 ~name:"same seed, same arrival stream"
    QCheck.(
      pair (make ~print:process_print process_gen) (int_range 0 1_000_000))
    (fun (proc, seed) ->
      let a = Load.arrivals ~seed proc 500 and b = Load.arrivals ~seed proc 500 in
      if a <> b then QCheck.Test.fail_report "streams differ";
      (* and monotone non-decreasing *)
      Array.iteri
        (fun i t -> if i > 0 && t < a.(i - 1) then
            QCheck.Test.fail_report "arrivals went backwards")
        a;
      true)

let prop_poisson_mean =
  QCheck.Test.make ~count:50 ~name:"Poisson mean interarrival ~ 1/rate"
    QCheck.(pair (int_range 10 1000) (int_range 0 10_000))
    (fun (rate_kops, seed) ->
      let rate_ops_s = float_of_int rate_kops *. 1e3 in
      let n = 4000 in
      let a = Load.arrivals ~seed (Load.Poisson { rate_ops_s }) n in
      (* mean gap = T/n; its stddev is mean/sqrt(n) ~ 1.6%, so 10% is a
         ~6-sigma band: tight enough to catch a wrong rate, loose
         enough to never flake. *)
      let mean_gap = a.(n - 1) /. float_of_int n in
      let expect = 1e9 /. rate_ops_s in
      if Float.abs (mean_gap -. expect) > 0.10 *. expect then
        QCheck.Test.fail_reportf "mean gap %.1f ns, expected %.1f ns" mean_gap
          expect;
      true)

let prop_onoff_duty_cycle =
  QCheck.Test.make ~count:50 ~name:"on-off: arrivals only in ON windows, duty-scaled rate"
    QCheck.(
      quad (int_range 50 500) (int_range 20 100) (int_range 10 100)
        (int_range 0 10_000))
    (fun (rate_kops, on_us, off_us, seed) ->
      let rate_ops_s = float_of_int rate_kops *. 1e3 in
      let on_ns = float_of_int on_us *. 1e3
      and off_ns = float_of_int off_us *. 1e3 in
      let proc = Load.On_off { rate_ops_s; on_ns; off_ns } in
      let n = 4000 in
      let a = Load.arrivals ~seed proc n in
      (* Every arrival's phase within its period must land in the ON
         window — the wall mapping inserts whole OFF intervals. *)
      Array.iter
        (fun t ->
          let period = on_ns +. off_ns in
          let phase = t -. (Float.floor (t /. period) *. period) in
          if phase > on_ns +. 1e-6 then
            QCheck.Test.fail_reportf "arrival in OFF window (phase %.1f > on %.1f)"
              phase on_ns)
        a;
      (* Long-run achieved rate = rate * duty cycle. *)
      let expect = Load.nominal_rate_ops_s proc in
      let got = float_of_int n /. a.(n - 1) *. 1e9 in
      if Float.abs (got -. expect) > 0.10 *. expect then
        QCheck.Test.fail_reportf "long-run rate %.0f ops/s, expected %.0f" got
          expect;
      true)

let prop_diurnal_mean =
  QCheck.Test.make ~count:50 ~name:"diurnal envelope integrates to the mean rate"
    QCheck.(
      quad (int_range 50 500) (int_range 0 10) (int_range 10 50)
        (int_range 0 10_000))
    (fun (mean_kops, amp10, period_10us, seed) ->
      let mean_ops_s = float_of_int mean_kops *. 1e3 in
      let period_ns = float_of_int period_10us *. 1e4 in
      let proc =
        Load.Diurnal
          { mean_ops_s; amplitude = float_of_int amp10 /. 10.0; period_ns }
      in
      let n = 4000 in
      let a = Load.arrivals ~seed proc n in
      (* Truncate to whole periods so the sinusoid integrates out. *)
      let whole = Float.floor (a.(n - 1) /. period_ns) *. period_ns in
      if whole > 0.0 then begin
        let k = ref 0 in
        Array.iter (fun t -> if t <= whole then incr k) a;
        let got = float_of_int !k /. whole *. 1e9 in
        if Float.abs (got -. mean_ops_s) > 0.12 *. mean_ops_s then
          QCheck.Test.fail_reportf "rate over whole periods %.0f, mean %.0f"
            got mean_ops_s
      end;
      true)

let test_diurnal_peak_vs_trough () =
  (* amplitude 0.8: the half-period around the sine peak must carry
     visibly more arrivals than the half around the trough. *)
  let period_ns = 1e6 in
  let a =
    Load.arrivals ~seed:7
      (Load.Diurnal { mean_ops_s = 200_000.0; amplitude = 0.8; period_ns })
      8000
  in
  let peak = ref 0 and trough = ref 0 in
  Array.iter
    (fun t ->
      let phase = t -. (Float.floor (t /. period_ns) *. period_ns) in
      (* sin(2πx/T) >= 0 on [0, T/2) — the "day" half. *)
      if phase < period_ns /. 2.0 then incr peak else incr trough)
    a;
  Alcotest.(check bool)
    (Printf.sprintf "peak half (%d) > 1.5x trough half (%d)" !peak !trough)
    true
    (float_of_int !peak > 1.5 *. float_of_int !trough)

let test_replay_exact () =
  let gaps = [| 100; 200; 300 |] in
  let a = Load.arrivals ~seed:1 (Load.Replay { gaps_ns = gaps }) 7 in
  Alcotest.(check (array (float 0.0)))
    "gaps accumulate and loop"
    [| 100.; 300.; 600.; 700.; 900.; 1200.; 1300. |]
    a

let test_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative rate" true
    (raises (fun () -> Load.generator (Load.Poisson { rate_ops_s = -1.0 })));
  Alcotest.(check bool) "amplitude > 1" true
    (raises (fun () ->
         Load.generator
           (Load.Diurnal { mean_ops_s = 1.0; amplitude = 1.5; period_ns = 1e6 })));
  Alcotest.(check bool) "empty trace" true
    (raises (fun () -> Load.generator (Load.Replay { gaps_ns = [||] })));
  Alcotest.(check bool) "zero on-window" true
    (raises (fun () ->
         Load.generator
           (Load.On_off { rate_ops_s = 1.0; on_ns = 0.0; off_ns = 1.0 })))

(* ------------------------------------------------------------------ *)
(* Harness: CO-corrected vs naive                                      *)
(* ------------------------------------------------------------------ *)

(* Drive Load.run against a synthetic service: each submit blocks the
   injector for a fixed simulated service time. With enough injectors
   the offered schedule is always met and the two views coincide; with
   few injectors and a hot schedule the sends lag and only the
   corrected view sees it. *)
let run_synthetic ~rate_kops ~injectors ~service_ns ~total =
  in_sim (fun m ->
      let spec =
        {
          Load.default_spec with
          proc = Load.Poisson { rate_ops_s = rate_kops *. 1e3 };
          seed = 42;
          total;
          injectors;
        }
      in
      Load.run m spec ~submit:(fun ~injector:_ ~scheduled:_ ->
          Engine.wait service_ns;
          true))

let test_below_saturation_views_agree () =
  (* 16 injectors x 10µs service = 1.6 Mops/s capacity; offered 50k. *)
  let res = run_synthetic ~rate_kops:50.0 ~injectors:16 ~service_ns:10_000.0 ~total:2000 in
  let r = res.Load.recorder in
  Alcotest.(check int) "all completed" 2000 res.Load.completed;
  Alcotest.(check int) "no drops" 0 res.Load.dropped;
  let c = Lab_obs.Latrec.corrected_quantile r 0.99
  and n = Lab_obs.Latrec.naive_quantile r 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "CO p99 %.0f within 1%% of naive %.0f" c n)
    true
    (c <= 1.01 *. n);
  Alcotest.(check (float 0.0)) "no injection lag" 0.0
    (Lab_obs.Latrec.lag_max_ns r)

let test_under_stall_corrected_dominates () =
  (* 2 injectors x 10µs service = 200 kops/s capacity; offered 800k:
     the schedule runs 4x ahead of the senders. *)
  let res = run_synthetic ~rate_kops:800.0 ~injectors:2 ~service_ns:10_000.0 ~total:2000 in
  let r = res.Load.recorder in
  let c = Lab_obs.Latrec.corrected_quantile r 0.99
  and n = Lab_obs.Latrec.naive_quantile r 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "CO p99 %.0f >= 5x naive %.0f" c n)
    true
    (c >= 5.0 *. n);
  Alcotest.(check bool) "late injections counted" true (res.Load.late > 0);
  Alcotest.(check bool) "injection lag visible" true
    (Lab_obs.Latrec.lag_max_ns r > 0.0)

let test_queue_cap_sheds () =
  (* Capacity 100 kops/s (1 injector), offered 2 Mops/s, backlog cap 8:
     most arrivals must be shed, and shed + completed = generated. *)
  let res =
    in_sim (fun m ->
        let spec =
          {
            Load.default_spec with
            proc = Load.Poisson { rate_ops_s = 2_000_000.0 };
            seed = 7;
            total = 1000;
            injectors = 1;
            queue_cap = 8;
          }
        in
        Load.run m spec ~submit:(fun ~injector:_ ~scheduled:_ ->
            Engine.wait 10_000.0;
            true))
  in
  Alcotest.(check bool) "drops happened" true (res.Load.dropped > 0);
  Alcotest.(check int) "conservation" 1000 (res.Load.completed + res.Load.dropped)

let test_harness_deterministic () =
  let fp () =
    let res = run_synthetic ~rate_kops:400.0 ~injectors:4 ~service_ns:9_000.0 ~total:1500 in
    let r = res.Load.recorder in
    ( res.Load.elapsed_ns,
      Lab_obs.Latrec.corrected_quantile r 0.99,
      Lab_obs.Latrec.naive_quantile r 0.99,
      res.Load.late )
  in
  let e1, c1, n1, l1 = fp () and e2, c2, n2, l2 = fp () in
  Alcotest.(check (float 0.0)) "elapsed (exact)" e1 e2;
  Alcotest.(check (float 0.0)) "CO p99 (exact)" c1 c2;
  Alcotest.(check (float 0.0)) "naive p99 (exact)" n1 n2;
  Alcotest.(check int) "late count" l1 l2

(* ------------------------------------------------------------------ *)
(* Recorder + SLO units                                                *)
(* ------------------------------------------------------------------ *)

let test_recorder_semantics () =
  let r = Lab_obs.Latrec.create ~late_threshold_ns:100.0 () in
  (* on time: scheduled == sent *)
  Lab_obs.Latrec.record r ~scheduled:0.0 ~sent:0.0 ~completed:500.0 ~ok:true;
  (* late: sent 400ns after schedule; corrected sees 900, naive 500 *)
  Lab_obs.Latrec.record r ~scheduled:1000.0 ~sent:1400.0 ~completed:1900.0
    ~ok:true;
  Lab_obs.Latrec.drop r;
  Alcotest.(check int) "late" 1 (Lab_obs.Latrec.late r);
  Alcotest.(check int) "dropped" 1 (Lab_obs.Latrec.dropped r);
  let c99 = Lab_obs.Latrec.corrected_quantile r 0.99
  and n99 = Lab_obs.Latrec.naive_quantile r 0.99 in
  Alcotest.(check bool) "corrected p99 ~900" true (c99 >= 890.0 && c99 <= 910.0);
  Alcotest.(check bool) "naive p99 ~500" true (n99 >= 495.0 && n99 <= 505.0);
  Alcotest.(check (float 1e-9)) "lag max" 400.0 (Lab_obs.Latrec.lag_max_ns r);
  Alcotest.(check (float 1e-9)) "lag mean" 200.0 (Lab_obs.Latrec.lag_mean_ns r)

let test_hist_exact_min_max () =
  (* Satellite guarantee: snapshots carry the exact extrema and count,
     not bucket midpoints. *)
  let h = Lab_obs.Metrics.histogram "test_load.minmax" in
  List.iter (fun v -> Lab_obs.Metrics.observe h v) [ 123.0; 77.5; 90001.25 ];
  Alcotest.(check (float 0.0)) "exact min" 77.5 (Lab_obs.Metrics.hist_min h);
  Alcotest.(check (float 0.0)) "exact max" 90001.25 (Lab_obs.Metrics.hist_max h);
  Alcotest.(check int) "count" 3 (Lab_obs.Metrics.hist_count h)

let test_slo_burn () =
  (* 1% error budget, p99 target 100ns, 1µs windows. A window where
     every observation violates the target burns at the full 100x. *)
  let s =
    Lab_obs.Latrec.Slo.create ~name:"t" ~p99_target_ns:100.0
      ~error_budget:0.01 ~window_ns:1000.0 ()
  in
  for i = 0 to 99 do
    Lab_obs.Latrec.Slo.observe s ~latency_ns:10.0
      ~now:(float_of_int i *. 100.0)
  done;
  Alcotest.(check bool) "healthy: burn <= 1" true
    (Lab_obs.Latrec.Slo.burn_rate s <= 1.0);
  let b0 = Lab_obs.Latrec.Slo.budget_remaining s in
  for i = 0 to 99 do
    Lab_obs.Latrec.Slo.observe s ~latency_ns:1e6
      ~now:(10_000.0 +. (float_of_int i *. 100.0))
  done;
  Alcotest.(check bool) "violating: burn >= 10" true
    (Lab_obs.Latrec.Slo.burn_rate s >= 10.0);
  Alcotest.(check bool) "budget consumed" true
    (Lab_obs.Latrec.Slo.budget_remaining s < b0)

(* ------------------------------------------------------------------ *)
(* Latrec edges: empty and single-sample behaviour                     *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let h = Lab_obs.Latrec.Hist.create () in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty q%.3f" q)
        0.0
        (Lab_obs.Latrec.Hist.quantile h q))
    [ 0.0; 0.5; 0.99; 0.999; 1.0 ];
  Alcotest.(check (float 0.0)) "empty min" 0.0 (Lab_obs.Latrec.Hist.min_value h);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (Lab_obs.Latrec.Hist.max_value h);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Lab_obs.Latrec.Hist.mean h);
  (* An empty recorder answers every quantile with 0 too. *)
  let r = Lab_obs.Latrec.create () in
  Alcotest.(check (float 0.0)) "recorder empty p99" 0.0
    (Lab_obs.Latrec.corrected_quantile r 0.99);
  Alcotest.(check (float 0.0)) "recorder empty naive" 0.0
    (Lab_obs.Latrec.naive_quantile r 0.99);
  Alcotest.(check (float 0.0)) "recorder empty lag max" 0.0
    (Lab_obs.Latrec.lag_max_ns r)

let test_hist_single_sample () =
  (* One observation: every quantile is that observation — the [min,max]
     clamp collapses the bucket midpoint to the exact value. *)
  let h = Lab_obs.Latrec.Hist.create () in
  Lab_obs.Latrec.Hist.observe h 7777.5;
  Alcotest.(check (float 0.0)) "min" 7777.5 (Lab_obs.Latrec.Hist.min_value h);
  Alcotest.(check (float 0.0)) "max" 7777.5 (Lab_obs.Latrec.Hist.max_value h);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q%.3f = the sample" q)
        7777.5
        (Lab_obs.Latrec.Hist.quantile h q))
    [ 0.0; 0.5; 0.999; 1.0 ]

let test_slo_empty_window () =
  (* No observations at all: burn is the cumulative bad fraction (0/0
     guarded to 0) and the budget is untouched. *)
  let s =
    Lab_obs.Latrec.Slo.create ~name:"empty" ~p99_target_ns:100.0
      ~error_budget:0.01 ~window_ns:1000.0 ()
  in
  Alcotest.(check (float 0.0)) "no obs: burn 0" 0.0
    (Lab_obs.Latrec.Slo.burn_rate s);
  Alcotest.(check (float 0.0)) "no obs: budget intact" 1.0
    (Lab_obs.Latrec.Slo.budget_remaining s);
  (* Ticking across many empty windows (no floor set) must not burn:
     zero demand, zero service is not a violation. *)
  Lab_obs.Latrec.Slo.tick s ~now:50_000.0;
  Alcotest.(check (float 0.0)) "idle windows: burn 0" 0.0
    (Lab_obs.Latrec.Slo.burn_rate s);
  Alcotest.(check (float 0.0)) "idle windows: budget intact" 1.0
    (Lab_obs.Latrec.Slo.budget_remaining s);
  (* With a throughput floor, an idle gap after the clock has started
     IS a violation: every empty window misses its demanded ops and
     burns budget. (The first tick only starts the clock — windows are
     anchored at the first event, not at t=0.) *)
  let f =
    Lab_obs.Latrec.Slo.create ~name:"floor" ~floor_ops_s:1e6
      ~error_budget:0.01 ~window_ns:1000.0 ()
  in
  Lab_obs.Latrec.Slo.tick f ~now:0.0;
  Lab_obs.Latrec.Slo.tick f ~now:50_000.0;
  Alcotest.(check bool) "floor: deficit accrued" true
    (Lab_obs.Latrec.Slo.floor_deficit f > 0.0);
  Alcotest.(check bool) "floor: budget burned" true
    (Lab_obs.Latrec.Slo.budget_remaining f < 1.0)

let test_slo_on_roll () =
  (* The window-close hook fires once per closed window — including the
     empty windows an idle gap closes — with the rolled burn rate. *)
  let s =
    Lab_obs.Latrec.Slo.create ~name:"hook" ~p99_target_ns:100.0
      ~error_budget:0.5 ~window_ns:1000.0 ()
  in
  let rolls = ref [] in
  Lab_obs.Latrec.Slo.set_on_roll s (fun ~now ~burn ->
      rolls := (now, burn) :: !rolls);
  (* The first observation anchors the window at t=100: [100,1100) sees
     one bad of two → bad fraction 0.5 → burn 1.0. *)
  Lab_obs.Latrec.Slo.observe s ~latency_ns:10.0 ~now:100.0;
  Lab_obs.Latrec.Slo.observe s ~latency_ns:1e6 ~now:200.0;
  (* Jumping to t=3500 closes [100,1100), [1100,2100), [2100,3100). *)
  Lab_obs.Latrec.Slo.observe s ~latency_ns:10.0 ~now:3500.0;
  match List.rev !rolls with
  | (n1, b1) :: (_, b2) :: (_, b3) :: [] ->
      Alcotest.(check (float 0.0)) "first roll at window end" 1100.0 n1;
      Alcotest.(check (float 1e-9)) "first burn = 1.0" 1.0 b1;
      Alcotest.(check (float 0.0)) "empty window burns 0" 0.0 b2;
      Alcotest.(check (float 0.0)) "empty window burns 0" 0.0 b3
  | rolls -> Alcotest.failf "expected 3 rolls, got %d" (List.length rolls)

let () =
  Alcotest.run "load"
    [
      ( "streams",
        [
          QCheck_alcotest.to_alcotest prop_same_seed_deterministic;
          QCheck_alcotest.to_alcotest prop_poisson_mean;
          QCheck_alcotest.to_alcotest prop_onoff_duty_cycle;
          QCheck_alcotest.to_alcotest prop_diurnal_mean;
          Alcotest.test_case "diurnal peak vs trough" `Quick
            test_diurnal_peak_vs_trough;
          Alcotest.test_case "replay exact" `Quick test_replay_exact;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "harness",
        [
          Alcotest.test_case "below saturation: views agree" `Quick
            test_below_saturation_views_agree;
          Alcotest.test_case "under stalls: corrected >= 5x naive" `Quick
            test_under_stall_corrected_dominates;
          Alcotest.test_case "queue cap sheds" `Quick test_queue_cap_sheds;
          Alcotest.test_case "same-seed determinism" `Quick
            test_harness_deterministic;
        ] );
      ( "latrec",
        [
          Alcotest.test_case "recorder semantics" `Quick test_recorder_semantics;
          Alcotest.test_case "hist exact min/max" `Quick test_hist_exact_min_max;
          Alcotest.test_case "slo burn" `Quick test_slo_burn;
          Alcotest.test_case "hist empty" `Quick test_hist_empty;
          Alcotest.test_case "hist single sample" `Quick test_hist_single_sample;
          Alcotest.test_case "slo empty window" `Quick test_slo_empty_window;
          Alcotest.test_case "slo on_roll hook" `Quick test_slo_on_roll;
        ] );
    ]
