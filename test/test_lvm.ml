(* Volume-manager tests.

   Pure part (QCheck over Lab_lvm.Meta): the redo journal's
   crash-consistency properties — replaying any prefix (a crash at any
   op boundary) yields a consistent volume group, recovering from that
   prefix and applying the suffix converges to the full replay, and
   replay is idempotent (each op may be applied twice). Journals are
   generated model-driven, the way lab_lvm itself writes them: only
   ops legal in the evolving volume group are emitted.

   Simulated part (Alcotest over the mounted LabMod): mirrored writes
   replicate to every leg, RAID0 stripes round-robin, a scripted leg
   loss degrades I/O onto the survivor and the returning leg is
   resilvered to rebuild_frac = 1.0, and state_repair rebuilds the
   in-memory volume group from the journal. *)

open Lab_sim
open Labstor
open Lab_mods
module M = Lab_lvm.Meta

(* ------------------------------------------------------------------ *)
(* Model-driven journal generator.                                     *)
(* ------------------------------------------------------------------ *)

let nlegs = 3

let extents_per_leg = 8

(* Interpret an abstract command script into a valid journal: walk the
   evolving vg and emit only ops lab_lvm could have logged in that
   state (Alloc of an unallocated extent onto free physical slots of
   live legs, Free of an allocated extent, leg transitions, ckpts). *)
let ops_of_script script =
  let vg = ref (M.create ~nlegs ~extents_per_leg) in
  let ops = ref [] in
  let emit op =
    vg := M.apply !vg op;
    ops := op :: !ops
  in
  let used_on leg =
    M.IMap.fold
      (fun _ placements acc ->
        List.fold_left
          (fun acc (l, p) -> if l = leg then p :: acc else acc)
          acc placements)
      !vg.M.lmap []
  in
  let free_pidx leg start =
    let used = used_on leg in
    let rec scan i n =
      if n = 0 then None
      else if not (List.mem (i mod extents_per_leg) used) then
        Some (i mod extents_per_leg)
      else scan (i + 1) (n - 1)
    in
    scan (start mod extents_per_leg) extents_per_leg
  in
  List.iter
    (fun (c, a, b) ->
      match c mod 5 with
      | 0 | 1 -> (
          let lidx = a mod extents_per_leg in
          match M.IMap.find_opt lidx !vg.M.lmap with
          | Some _ -> () (* already allocated *)
          | None ->
              let placements =
                List.filter_map
                  (fun leg ->
                    if M.leg_state !vg leg = M.Dead then None
                    else
                      Option.map (fun p -> (leg, p)) (free_pidx leg b))
                  (List.init nlegs Fun.id)
              in
              if placements <> [] then emit (M.Alloc { lidx; placements }))
      | 2 -> (
          match M.allocated !vg with
          | [] -> ()
          | allocs ->
              let lidx, _ = List.nth allocs (a mod List.length allocs) in
              emit (M.Free { lidx }))
      | 3 ->
          let state =
            match b mod 3 with 0 -> M.Healthy | 1 -> M.Dead | _ -> M.Rebuilding
          in
          emit (M.Leg_state { leg = a mod nlegs; state })
      | _ -> emit (M.Rebuild_ckpt { leg = a mod nlegs; copied = b }))
    script;
  List.rev !ops

let take k l = List.filteri (fun i _ -> i < k) l

let drop k l = List.filteri (fun i _ -> i >= k) l

let replay ops = M.replay ~nlegs ~extents_per_leg ops

(* A script plus a raw truncation point (taken mod len+1). *)
let scenario_arb =
  let open QCheck in
  let cmd = triple (int_range 0 99) small_nat small_nat in
  pair (list_of_size Gen.(int_range 0 60) cmd) small_nat

let print_scenario (script, k) =
  let ops = ops_of_script script in
  Printf.sprintf "k=%d of %d ops:\n%s"
    (k mod (List.length ops + 1))
    (List.length ops)
    (String.concat "\n" (List.map M.op_to_string ops))

let prop_prefix_consistent =
  QCheck.Test.make ~count:500
    ~name:"lvm meta: replay of any journal prefix is consistent"
    (QCheck.set_print print_scenario scenario_arb)
    (fun (script, kr) ->
      let ops = ops_of_script script in
      let k = kr mod (List.length ops + 1) in
      M.consistent (replay (take k ops)))

let prop_prefix_recovery_converges =
  QCheck.Test.make ~count:500
    ~name:"lvm meta: crash at any boundary + replay + suffix = full replay"
    (QCheck.set_print print_scenario scenario_arb)
    (fun (script, kr) ->
      let ops = ops_of_script script in
      let k = kr mod (List.length ops + 1) in
      let recovered = replay (take k ops) in
      M.equal (replay ops)
        (List.fold_left M.apply recovered (drop k ops)))

let prop_replay_idempotent =
  QCheck.Test.make ~count:500
    ~name:"lvm meta: ops are absolute — duplicated replay is identical"
    (QCheck.set_print print_scenario scenario_arb)
    (fun (script, _) ->
      let ops = ops_of_script script in
      let doubled = List.concat_map (fun op -> [ op; op ]) ops in
      M.equal (replay ops) (replay doubled))

(* ------------------------------------------------------------------ *)
(* Simulated end-to-end scenarios.                                     *)
(* ------------------------------------------------------------------ *)

let extent_blocks = 2048

let mirror_spec =
  {|
mount: "blk::/vol"
dag:
  - uuid: lvm0
    mod: lab_lvm
    attrs:
      raid: 1
      legs: [nvme, nvme2]
|}

let stripe_spec =
  {|
mount: "blk::/vol"
dag:
  - uuid: lvm0
    mod: lab_lvm
    attrs:
      raid: 0
      legs: [nvme, nvme2]
|}

let boot_lvm ?(rate = 100_000.0) spec =
  let platform =
    Platform.boot ~nworkers:2 ~lvm_rebuild_rate_mbps:rate
      ~devices:[ Lab_device.Profile.Nvme; Lab_device.Profile.Nvme ]
      ()
  in
  (match Platform.mount platform spec with
  | Ok _ -> ()
  | Error e -> failwith ("test_lvm: mount: " ^ e));
  let m =
    Option.get
      (Core.Registry.find (Runtime.Runtime.registry (Platform.runtime platform)) "lvm0")
  in
  (platform, m)

let write c lidx =
  match
    Runtime.Client.write_block c ~mount:"blk::/vol" ~lba:(lidx * extent_blocks)
      ~bytes:4096
  with
  | Ok n -> Alcotest.(check int) "write size" 4096 n
  | Error e -> Alcotest.fail ("write failed: " ^ e)

let counter m nm = try List.assoc nm (Lab_lvm.counters m) with Not_found -> 0

let test_mirror_replicates () =
  let platform, m = boot_lvm mirror_spec in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      write c 0;
      match Runtime.Client.read_block c ~mount:"blk::/vol" ~lba:0 ~bytes:4096 with
      | Ok n -> Alcotest.(check int) "read size" 4096 n
      | Error e -> Alcotest.fail ("read failed: " ^ e));
  let vg = Lab_lvm.vg m in
  (match M.IMap.find_opt 0 vg.M.lmap with
  | Some placements ->
      Alcotest.(check int) "mirrored extent placed on both legs" 2
        (List.length placements);
      Alcotest.(check bool) "one placement per leg" true
        (List.sort compare (List.map fst placements) = [ 0; 1 ])
  | None -> Alcotest.fail "extent 0 not allocated");
  Alcotest.(check bool) "journal recorded the allocation" true
    (List.exists
       (function M.Alloc { lidx = 0; _ } -> true | _ -> false)
       (Lab_lvm.journal_ops m));
  (* Both legs saw the data write (plus journal records). *)
  List.iter
    (fun (name, d) ->
      Alcotest.(check bool) (name ^ " wrote") true
        (Lab_device.Device.completed_writes d >= 1))
    (Platform.devices platform)

let test_raid0_stripes_round_robin () =
  let platform, m = boot_lvm stripe_spec in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      for lidx = 0 to 3 do
        write c lidx
      done);
  let vg = Lab_lvm.vg m in
  for lidx = 0 to 3 do
    match M.IMap.find_opt lidx vg.M.lmap with
    | Some [ (leg, _) ] ->
        Alcotest.(check int)
          (Printf.sprintf "extent %d striped to leg %d" lidx (lidx mod 2))
          (lidx mod 2) leg
    | Some _ -> Alcotest.fail "striped extent has more than one placement"
    | None -> Alcotest.fail "striped extent not allocated"
  done

let test_degraded_then_rebuild () =
  let platform, m = boot_lvm mirror_spec in
  let machine = Platform.machine platform in
  (* Populate two extents while healthy. *)
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      write c 0;
      write c 1);
  (* Leg nvme2 offline for 1 ms. *)
  let from_ns = Platform.now platform +. 50_000.0 in
  let until_ns = from_ns +. 1_000_000.0 in
  Lab_device.Device.set_fault_plan
    (Platform.device_by_name platform "nvme2")
    (Fault.create
       ~script:[ Fault.Offline { from_ns; until_ns; queue = None } ]
       ~seed:7 ());
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      Engine.wait (from_ns +. 10_000.0 -. Machine.now machine);
      (* Degraded: the survivor carries both a read and a new write. *)
      (match Runtime.Client.read_block c ~mount:"blk::/vol" ~lba:0 ~bytes:4096 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("degraded read failed: " ^ e));
      (* Overwrite a mirrored extent (its dead-leg replica is skipped —
         a degraded write) and allocate a fresh one on the survivor. *)
      write c 0;
      write c 2);
  Alcotest.(check bool) "leg loss recorded" true (counter m "legs_lost" >= 1);
  Alcotest.(check bool) "degraded reads counted" true
    (counter m "degraded_reads" >= 1);
  Alcotest.(check bool) "degraded writes counted" true
    (counter m "degraded_writes" >= 1);
  (* The extent written while degraded lives only on the survivor. *)
  (match M.IMap.find_opt 2 (Lab_lvm.vg m).M.lmap with
  | Some [ (0, _) ] -> ()
  | Some p ->
      Alcotest.fail
        (Printf.sprintf "degraded extent on %d legs" (List.length p))
  | None -> Alcotest.fail "degraded extent not allocated");
  (* The leg returns: drive reads until the resilver completes. *)
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      let now () = Machine.now machine in
      if until_ns +. 10_000.0 > now () then
        Engine.wait (until_ns +. 10_000.0 -. now ());
      let guard = ref 0 in
      while Lab_lvm.rebuild_frac m < 1.0 && !guard < 10_000 do
        incr guard;
        (match Runtime.Client.read_block c ~mount:"blk::/vol" ~lba:0 ~bytes:4096 with
        | Ok _ -> ()
        | Error e -> Alcotest.fail ("read under rebuild failed: " ^ e));
        Engine.wait 5_000.0
      done);
  Alcotest.(check (float 0.0)) "rebuild_frac reached 1.0" 1.0
    (Lab_lvm.rebuild_frac m);
  Alcotest.(check int) "one rebuild completed" 1 (counter m "rebuilds_completed");
  Alcotest.(check bool) "every leg healthy again" true
    (List.for_all (fun (_, s) -> s = "healthy") (Lab_lvm.leg_states m));
  (* Resilver gave the degraded extent its second replica. *)
  (match M.IMap.find_opt 2 (Lab_lvm.vg m).M.lmap with
  | Some placements ->
      Alcotest.(check int) "resilvered extent mirrored again" 2
        (List.length placements)
  | None -> Alcotest.fail "extent lost by rebuild");
  (* Crash consistency end-to-end: the journal replays to the live vg. *)
  let replayed =
    let vg = Lab_lvm.vg m in
    M.replay ~nlegs:vg.M.nlegs ~extents_per_leg:vg.M.extents_per_leg
      (Lab_lvm.journal_ops m)
  in
  Alcotest.(check bool) "journal replay consistent" true (M.consistent replayed);
  Alcotest.(check bool) "journal replay = live vg" true
    (M.equal replayed (Lab_lvm.vg m))

let test_state_repair_replays_journal () =
  let platform, m = boot_lvm mirror_spec in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      write c 0;
      write c 3;
      Lab_lvm.free m ~thread:0 ~lba:(3 * extent_blocks) ~bytes:4096);
  let before = Lab_lvm.vg m in
  Platform.go platform (fun () -> m.Core.Labmod.ops.Core.Labmod.state_repair m);
  Alcotest.(check bool) "state_repair rebuilt the same vg" true
    (M.equal before (Lab_lvm.vg m));
  Alcotest.(check bool) "freed extent stayed freed" true
    (not (M.IMap.mem 3 (Lab_lvm.vg m).M.lmap))

let () =
  Alcotest.run "lab_lvm"
    [
      ( "meta",
        [
          QCheck_alcotest.to_alcotest prop_prefix_consistent;
          QCheck_alcotest.to_alcotest prop_prefix_recovery_converges;
          QCheck_alcotest.to_alcotest prop_replay_idempotent;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "mirror write replicates to both legs" `Quick
            test_mirror_replicates;
          Alcotest.test_case "raid0 stripes extents round-robin" `Quick
            test_raid0_stripes_round_robin;
          Alcotest.test_case "leg loss degrades, return resilvers" `Quick
            test_degraded_then_rebuild;
          Alcotest.test_case "state_repair replays the journal" `Quick
            test_state_repair_replays_journal;
        ] );
    ]
