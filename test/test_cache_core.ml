(* Tests for the shared sharded cache engine (Cache_core): equivalence
   of the shards=1 configuration with a plain LRU-with-dirty-tracking
   reference model, the readahead window ramp, faulted prefetch fills,
   coalesced write-back, ARC ghost-list invariants under readahead
   traffic, and the worker_max_inflight runtime plumbing. *)

open Lab_sim
open Lab_core
open Lab_mods

let in_sim ?(ncores = 8) f =
  let m = Machine.create ~ncores () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

let mk_req m ?(uid = 0) ?(thread = 0) payload =
  Request.make ~id:1 ~pid:1 ~uid ~thread ~stack_id:1 ~now:(Machine.now m) payload

let ctx_of m ~forward =
  {
    Labmod.machine = m;
    thread = 0;
    forward;
    forward_async = (fun r k -> k (forward r));
  }

let block kind ~lba ~bytes =
  Request.Block
    { Request.b_kind = kind; b_lba = lba; b_bytes = bytes; b_sync = false }

(* A small single-shard write-back configuration for the unit tests;
   fields are overridden per test. *)
let small_config ?(capacity_pages = 8) ?(nshards = 1) ?(readahead = false)
    ?(wb_high = 4) ?(wb_low = 1) () =
  {
    (Cache_core.config_of_attrs ~name:"test_cache" []) with
    Cache_core.capacity_pages;
    nshards;
    readahead;
    wb_high;
    wb_low;
  }

(* Forward hook that records every downstream write's pages. *)
let recording_forward written (r : Request.t) =
  (match r.Request.payload with
  | Request.Block { b_kind = Request.Write; b_lba; b_bytes; _ } ->
      for p = b_lba to b_lba + ((b_bytes - 1) / 4096) do
        Hashtbl.replace written p ()
      done
  | _ -> ());
  Request.Done

(* ------------------------------------------------------------------ *)
(* shards=1 equivalence with a reference model                         *)
(* ------------------------------------------------------------------ *)

(* The reference: a plain LRU (most-recent-first list) with a dirty
   set, mirroring the engine's semantics for a single shard with
   readahead off — demand reads admit clean (clearing any dirty bit),
   writes admit dirty, evicted dirty pages are eventually written
   back. Only externally observable outcomes are modelled: hit/miss
   counts, the resident dirty set, and the SET of pages ever written
   back (the engine dedups within a flush, so multiplicity is not
   comparable). *)
module Model = struct
  type t = {
    capacity : int;
    mutable order : int list;  (* most recent first *)
    dirty : (int, unit) Hashtbl.t;
    written : (int, unit) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~capacity =
    {
      capacity;
      order = [];
      dirty = Hashtbl.create 16;
      written = Hashtbl.create 16;
      hits = 0;
      misses = 0;
    }

  let mem t p = List.mem p t.order

  let touch t p =
    if mem t p then t.order <- p :: List.filter (fun q -> q <> p) t.order
    else begin
      t.order <- p :: t.order;
      if List.length t.order > t.capacity then begin
        let rec split acc = function
          | [ v ] -> (List.rev acc, v)
          | x :: rest -> split (x :: acc) rest
          | [] -> assert false
        in
        let keep, victim = split [] t.order in
        t.order <- keep;
        if Hashtbl.mem t.dirty victim then begin
          Hashtbl.remove t.dirty victim;
          Hashtbl.replace t.written victim ()
        end
      end
    end

  let pages ~lba ~npages = List.init npages (fun i -> lba + i)

  let write t ~lba ~npages =
    List.iter
      (fun p ->
        touch t p;
        Hashtbl.replace t.dirty p ())
      (pages ~lba ~npages)

  let read t ~lba ~npages =
    let ps = pages ~lba ~npages in
    if List.for_all (mem t) ps then begin
      t.hits <- t.hits + 1;
      List.iter (touch t) ps
    end
    else begin
      t.misses <- t.misses + 1;
      (* A demand fill admits every page of the request clean — also
         the already-resident ones (the engine's admit path clears the
         dirty bit without a write-back, mirrored here). *)
      List.iter
        (fun p ->
          touch t p;
          Hashtbl.remove t.dirty p)
        ps
    end

  let dirty_sorted t =
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) t.dirty [])

  let written_sorted t =
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) t.written [])
end

let sorted_uniq tbl =
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) tbl [])

(* Random single-threaded trace: (is_write, lba in a small region,
   npages in 1..2). *)
let trace_gen =
  QCheck.(
    list_of_size Gen.(int_range 1 120)
      (triple bool (int_range 0 30) (int_range 1 2)))

let prop_single_shard_matches_model =
  QCheck.Test.make ~count:150
    ~name:"shards=1 engine == LRU reference (hits, misses, dirty, writeback)"
    trace_gen
    (fun ops ->
      in_sim (fun m ->
          let capacity = 8 in
          let core =
            Cache_core.create ~policy:Cache_core.lru_policy
              (small_config ~capacity_pages:capacity ())
          in
          let model = Model.create ~capacity in
          let written = Hashtbl.create 64 in
          let ctx = ctx_of m ~forward:(recording_forward written) in
          List.iter
            (fun (is_write, lba, npages) ->
              let bytes = npages * 4096 in
              let payload =
                block (if is_write then Request.Write else Request.Read) ~lba
                  ~bytes
              in
              ignore (Cache_core.operate core ctx (mk_req m payload));
              if is_write then Model.write model ~lba ~npages
              else Model.read model ~lba ~npages)
            ops;
          (* Drain so every evicted dirty page reaches [written]. *)
          ignore (Cache_core.operate core ctx (mk_req m (Request.Control 0)));
          Cache_core.hits core = model.Model.hits
          && Cache_core.misses core = model.Model.misses
          && Cache_core.dirty_resident core = Model.dirty_sorted model
          && sorted_uniq written = Model.written_sorted model
          && Cache_core.live_pages core = List.length model.Model.order))

(* ------------------------------------------------------------------ *)
(* Readahead                                                           *)
(* ------------------------------------------------------------------ *)

let test_readahead_ramp () =
  in_sim (fun m ->
      let core =
        Cache_core.create ~policy:Cache_core.lru_policy
          (small_config ~capacity_pages:1024 ~readahead:true ~wb_high:32
             ~wb_low:8 ())
      in
      let ctx = ctx_of m ~forward:(fun _ -> Request.Done) in
      for lba = 0 to 19 do
        let r =
          Cache_core.operate core ctx
            (mk_req m (block Request.Read ~lba ~bytes:4096))
        in
        if not (Request.is_ok r) then Alcotest.failf "read %d failed" lba
      done;
      (* The first read cold-starts the stream, the second establishes
         sequentiality and opens the window; everything after is served
         from prefetched pages. *)
      Alcotest.(check int) "misses" 2 (Cache_core.misses core);
      Alcotest.(check int) "hits" 18 (Cache_core.hits core);
      Alcotest.(check int) "readahead hits" 18 (Cache_core.readahead_hits core);
      Alcotest.(check bool) "window issued ahead" true
        (Cache_core.readahead_issued core >= 18))

let test_readahead_separate_streams () =
  in_sim (fun m ->
      let core =
        Cache_core.create ~policy:Cache_core.lru_policy
          (small_config ~capacity_pages:1024 ~readahead:true ~wb_high:32
             ~wb_low:8 ())
      in
      let ctx = ctx_of m ~forward:(fun _ -> Request.Done) in
      (* Two interleaved sequential streams from one pid: without the
         stream hint they destroy each other's sequentiality; with it
         both ramp. *)
      for i = 0 to 15 do
        List.iter
          (fun (stream, base) ->
            let req =
              mk_req m (block Request.Read ~lba:(base + i) ~bytes:4096)
            in
            req.Request.hint_stream <- Some stream;
            ignore (Cache_core.operate core ctx req))
          [ (1, 0); (2, 10_000) ]
      done;
      Alcotest.(check int) "two cold misses per stream" 4
        (Cache_core.misses core);
      Alcotest.(check int) "the rest are hits" 28 (Cache_core.hits core))

let test_faulted_prefetch_not_admitted () =
  in_sim (fun m ->
      let core =
        Cache_core.create ~policy:Cache_core.lru_policy
          (small_config ~capacity_pages:1024 ~readahead:true ~wb_high:32
             ~wb_low:8 ())
      in
      (* Prefetch-tagged fills fail at the device; demand reads are
         served fine. *)
      let forward (r : Request.t) =
        if r.Request.prefetch then Request.failed_errno "EIO" "injected"
        else Request.Done
      in
      let ctx = ctx_of m ~forward in
      for lba = 0 to 9 do
        ignore
          (Cache_core.operate core ctx
             (mk_req m (block Request.Read ~lba ~bytes:4096)))
      done;
      (* No faulted fill was admitted, so no read ever hits. *)
      Alcotest.(check int) "all demand reads miss" 10 (Cache_core.misses core);
      Alcotest.(check int) "no hits from faulted fills" 0
        (Cache_core.hits core);
      Alcotest.(check int) "no readahead hits" 0
        (Cache_core.readahead_hits core);
      Alcotest.(check bool) "prefetches were attempted" true
        (Cache_core.readahead_issued core > 0);
      Alcotest.(check int) "every prefetched page wasted"
        (Cache_core.readahead_issued core)
        (Cache_core.readahead_wasted core);
      (* Only the demand-read pages are resident. *)
      Alcotest.(check int) "live pages = demand reads" 10
        (Cache_core.live_pages core))

(* ------------------------------------------------------------------ *)
(* Coalesced write-back                                                *)
(* ------------------------------------------------------------------ *)

let test_writeback_coalesces_adjacent () =
  in_sim (fun m ->
      let core =
        Cache_core.create ~policy:Cache_core.lru_policy
          (small_config ~capacity_pages:256 ~wb_high:32 ~wb_low:8 ())
      in
      let downstream_ops = ref 0 in
      let downstream_pages = ref 0 in
      let forward (r : Request.t) =
        (match r.Request.payload with
        | Request.Block { b_kind = Request.Write; b_bytes; _ } ->
            incr downstream_ops;
            downstream_pages := !downstream_pages + (b_bytes / 4096)
        | _ -> ());
        Request.Done
      in
      let ctx = ctx_of m ~forward in
      (* 300 sequential dirty pages into a 256-page cache: pages 0..43
         are evicted dirty, in LBA order. *)
      for lba = 0 to 299 do
        ignore
          (Cache_core.operate core ctx
             (mk_req m (block Request.Write ~lba ~bytes:4096)))
      done;
      ignore (Cache_core.operate core ctx (mk_req m (Request.Control 0)));
      Alcotest.(check int) "44 dirty pages evicted" 44
        (Cache_core.dirty_evictions core);
      Alcotest.(check int) "all 44 pages written back" 44 !downstream_pages;
      (* Adjacent evictions merge: the watermark flush covers 24 pages
         in one op, the drain the remaining 20 in another. *)
      Alcotest.(check int) "merged into 2 device ops" 2 !downstream_ops;
      Alcotest.(check int) "engine counted the same ops" 2
        (Cache_core.flush_ops core);
      Alcotest.(check int) "engine counted the same pages" 44
        (Cache_core.flush_pages core);
      Alcotest.(check int) "log empty after drain" 0
        (Cache_core.dirty_backlog core))

(* ------------------------------------------------------------------ *)
(* Sharded mod-level behaviour (through the LabMod factories)          *)
(* ------------------------------------------------------------------ *)

let drive m ?(forward = fun _ -> Request.Done) (labmod : Labmod.t) req =
  let ctx =
    {
      Labmod.machine = m;
      thread = req.Request.thread;
      forward;
      forward_async = (fun r k -> k (forward r));
    }
  in
  labmod.Labmod.ops.Labmod.operate labmod ctx req

let test_sharded_lru_mod () =
  in_sim (fun m ->
      let labmod =
        Lru_cache.factory () ~uuid:"lru4"
          ~attrs:
            [
              ("capacity_mb", Yamlite.Int 1);
              ("shards", Yamlite.Int 4);
              ("readahead", Yamlite.Bool true);
            ]
      in
      (* One sequential stream: 200 pages spans 4 chunks, so several
         shards see traffic. *)
      for lba = 0 to 199 do
        ignore (drive m labmod (mk_req m (block Request.Read ~lba ~bytes:4096)))
      done;
      let core = Option.get (Lru_cache.core labmod) in
      Alcotest.(check int) "4 shards" 4 (Cache_core.nshards core);
      Alcotest.(check int) "every access counted" 200
        (Cache_core.hits core + Cache_core.misses core);
      Alcotest.(check bool) "readahead turned the stream into hits" true
        (Cache_core.hits core > 150);
      (* The per-shard counters cover all shards and sum to the
         aggregate. *)
      let shard_counters = Lru_cache.shard_counter_list labmod in
      Alcotest.(check int) "3 counters per shard" 12
        (List.length shard_counters);
      let sum suffix =
        List.fold_left
          (fun acc (k, v) ->
            if String.length k > String.length suffix
               && String.sub k
                    (String.length k - String.length suffix)
                    (String.length suffix)
                  = suffix
            then acc + v
            else acc)
          0 shard_counters
      in
      Alcotest.(check int) "shard hits sum to aggregate"
        (Cache_core.hits core) (sum "_hits");
      Alcotest.(check int) "shard misses sum to aggregate"
        (Cache_core.misses core) (sum "_misses"))

let test_arc_ghost_lists_under_readahead () =
  in_sim (fun m ->
      let labmod =
        Arc_cache.factory () ~uuid:"arc2"
          ~attrs:
            [
              ("capacity_mb", Yamlite.Int 1);
              ("shards", Yamlite.Int 2);
              ("readahead", Yamlite.Bool true);
            ]
      in
      (* Sequential readahead traffic over 3x the cache, then a re-read
         of a recent window to hit the ghost lists. *)
      for lba = 0 to 767 do
        ignore (drive m labmod (mk_req m (block Request.Read ~lba ~bytes:4096)))
      done;
      for lba = 700 to 767 do
        ignore (drive m labmod (mk_req m (block Request.Read ~lba ~bytes:4096)))
      done;
      Alcotest.(check bool) "stream mostly hit" true (Arc_cache.hits labmod > 0);
      let shards = Arc_cache.arc_shards labmod in
      Alcotest.(check int) "one ARC per shard" 2 (Array.length shards);
      Array.iteri
        (fun i a ->
          let cap = Arc_cache.Arc.capacity a in
          let live = Arc_cache.Arc.live_count a in
          let ghost = Arc_cache.Arc.ghost_count a in
          let p = Arc_cache.Arc.p a in
          Alcotest.(check bool)
            (Printf.sprintf "shard %d: live %d <= cap %d" i live cap)
            true (live <= cap);
          Alcotest.(check bool)
            (Printf.sprintf "shard %d: live+ghost %d <= 2*cap+1" i (live + ghost))
            true
            (live + ghost <= (2 * cap) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "shard %d: 0 <= p %d <= cap" i p)
            true
            (p >= 0 && p <= cap))
        shards)

(* ------------------------------------------------------------------ *)
(* worker_max_inflight plumbing                                        *)
(* ------------------------------------------------------------------ *)

let test_run_config_worker_max_inflight () =
  (match Lab_runtime.Run_config.parse "workers: 2\nworker_max_inflight: 4" with
  | Ok c ->
      Alcotest.(check int) "parsed" 4 c.Lab_runtime.Runtime.worker_max_inflight
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Lab_runtime.Run_config.parse "workers: 2" with
  | Ok c ->
      Alcotest.(check int) "default" 16
        c.Lab_runtime.Runtime.worker_max_inflight
  | Error e -> Alcotest.failf "parse failed: %s" e

let () =
  Alcotest.run "cache_core"
    [
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_single_shard_matches_model ] );
      ( "readahead",
        [
          Alcotest.test_case "window ramp" `Quick test_readahead_ramp;
          Alcotest.test_case "separate streams" `Quick
            test_readahead_separate_streams;
          Alcotest.test_case "faulted fill dropped" `Quick
            test_faulted_prefetch_not_admitted;
        ] );
      ( "writeback",
        [
          Alcotest.test_case "coalesces adjacent" `Quick
            test_writeback_coalesces_adjacent;
        ] );
      ( "sharded-mods",
        [
          Alcotest.test_case "lru shards=4" `Quick test_sharded_lru_mod;
          Alcotest.test_case "arc ghost lists" `Quick
            test_arc_ghost_lists_under_readahead;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "worker_max_inflight config" `Quick
            test_run_config_worker_max_inflight;
        ] );
    ]
