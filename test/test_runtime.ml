(* Integration tests for lab_runtime: full client → queue pair → worker
   → LabStack → device flows, orchestration, live upgrades under
   traffic, crash recovery, and fork semantics. *)

open Lab_sim
open Lab_core
open Lab_runtime

let fs_stack_spec ?(mount = "fs::/data") ?(exec = "async") ?(perms = false) () =
  Printf.sprintf
    {|
mount: "%s"
rules:
  exec_mode: %s
dag:
%s  - uuid: fs-1
    mod: labfs
    outputs: [lru-1]
  - uuid: lru-1
    mod: lru_cache
    attrs:
      capacity_mb: 16
    outputs: [sched-1]
  - uuid: sched-1
    mod: noop_sched
    outputs: [drv-1]
  - uuid: drv-1
    mod: kernel_driver
|}
    mount exec
    (if perms then
       "  - uuid: perm-1\n    mod: permissions\n    outputs: [fs-1]\n"
     else "")

(* When permissions are present they must be the entry vertex; the
   template above lists them first. *)

let kv_stack_spec ?(mount = "kv::/db") () =
  Printf.sprintf
    {|
mount: "%s"
rules:
  exec_mode: async
dag:
  - uuid: kvs-1
    mod: labkvs
    outputs: [ksched-1]
  - uuid: ksched-1
    mod: noop_sched
    outputs: [kdrv-1]
  - uuid: kdrv-1
    mod: kernel_driver
|}
    mount

let dummy_stack_spec ?(mount = "ctl::/dummy") () =
  Printf.sprintf
    "mount: \"%s\"\ndag:\n  - uuid: dummy-1\n    mod: dummy" mount

let make_runtime ?(ncores = 8) ?(nworkers = 2) ?policy () =
  let machine = Machine.create ~ncores () in
  let nvme = Lab_device.Device.create machine.Machine.engine Lab_device.Profile.nvme in
  let backend = Lab_mods.Mods_env.backend_of_device machine nvme in
  let policy =
    Option.value policy ~default:(Orchestrator.Round_robin nworkers)
  in
  let config = { Runtime.default_config with nworkers; policy } in
  let rt =
    Runtime.create machine ~config ~backends:[ ("nvme", backend) ]
      ~default_backend:"nvme" ()
  in
  Runtime.start rt;
  (machine, rt, nvme)

let in_rt ?ncores ?nworkers ?policy f =
  let machine, rt, dev = make_runtime ?ncores ?nworkers ?policy () in
  let result = ref None in
  Machine.spawn machine (fun () ->
      result := Some (f machine rt dev);
      (* The runtime's admin/workers run forever; drop their events once
         the test body is done. *)
      Engine.stop_all machine.Machine.engine);
  Machine.run ~until:60e9 machine;
  match !result with Some r -> r | None -> Alcotest.fail "test process never finished"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)

let test_end_to_end_file_io () =
  in_rt (fun _m rt dev ->
      (match Runtime.mount_text rt (fs_stack_spec ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let c = Client.connect rt ~pid:100 ~uid:1 ~thread:0 () in
      let fd = ok (Client.open_file c ~create:true "fs::/data/hello.txt") in
      Alcotest.(check bool) "fd allocated" true (fd >= 3);
      let written = ok (Client.pwrite c ~fd ~off:0 ~bytes:4096) in
      Alcotest.(check int) "wrote 4K" 4096 written;
      let read = ok (Client.pread c ~fd ~off:0 ~bytes:4096) in
      Alcotest.(check int) "read back 4K" 4096 read;
      ok (Client.fsync c ~fd);
      ok (Client.close c fd);
      Engine.wait 1e6;
      (* The data write is absorbed by the LRU cache (write-back); the
         fsync forces LabFS's metadata log out to the device. *)
      Alcotest.(check bool) "device saw the log flush" true
        (Lab_device.Device.completed_writes dev >= 1);
      Alcotest.(check bool) "workers processed requests" true
        (Runtime.requests_processed rt >= 4))

let test_open_missing_fails () =
  in_rt (fun _m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ())));
      let c = Client.connect rt ~pid:100 ~uid:1 ~thread:0 () in
      match Client.open_file c "fs::/data/ghost" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected open failure")

let test_unmounted_path_fails () =
  in_rt (fun _m rt _dev ->
      let c = Client.connect rt ~pid:100 ~uid:1 ~thread:0 () in
      match Client.open_file c ~create:true "nowhere::/x" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected resolution failure")

let test_kv_end_to_end () =
  in_rt (fun _m rt _dev ->
      ignore (ok (Runtime.mount_text rt (kv_stack_spec ())));
      let c = Client.connect rt ~pid:7 ~uid:1 ~thread:0 () in
      ok (Client.put c ~key:"kv::/db/k1" ~bytes:8192);
      let n = ok (Client.get c ~key:"kv::/db/k1") in
      Alcotest.(check int) "value size" 8192 n;
      ok (Client.delete c ~key:"kv::/db/k1");
      match Client.get c ~key:"kv::/db/k1" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected missing key")

let test_sync_mode_no_workers () =
  in_rt (fun _m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ~exec:"sync" ())));
      let c = Client.connect rt ~pid:9 ~uid:1 ~thread:0 () in
      let fd = ok (Client.open_file c ~create:true "fs::/data/f") in
      ignore (ok (Client.pwrite c ~fd ~off:0 ~bytes:4096));
      Alcotest.(check int) "no worker involvement" 0 (Runtime.requests_processed rt))

let test_sync_faster_than_async_single_thread () =
  (* Lab-D (sync, decentralized) removes IPC and worker hand-off, which
     the paper credits with ~20 % better single-threaded metadata
     performance. *)
  let time exec =
    in_rt (fun m rt _dev ->
        ignore (ok (Runtime.mount_text rt (fs_stack_spec ~exec ())));
        let c = Client.connect rt ~pid:1 ~uid:1 ~thread:0 () in
        let t0 = Machine.now m in
        for i = 1 to 200 do
          ok (Client.create c (Printf.sprintf "fs::/data/f%d" i))
        done;
        Machine.now m -. t0)
  in
  let sync = time "sync" and async = time "async" in
  Alcotest.(check bool)
    (Printf.sprintf "sync %.0f < async %.0f" sync async)
    true (sync < async)

let test_permission_stack_denies () =
  in_rt (fun _m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ~perms:true ())));
      let perm = Option.get (Registry.find (Runtime.registry rt) "perm-1") in
      Lab_mods.Permissions.add_rule perm ~uid:66 ~prefix:"fs::/data/secret"
        ~allow:false;
      let c_ok = Client.connect rt ~pid:1 ~uid:1 ~thread:0 () in
      let c_bad = Client.connect rt ~pid:2 ~uid:66 ~thread:1 () in
      ignore (ok (Client.open_file c_ok ~create:true "fs::/data/secret/s"));
      match Client.open_file c_bad ~create:true "fs::/data/secret/evil" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected denial")

let test_multiple_clients_parallel () =
  in_rt ~nworkers:4 (fun m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ())));
      let nclients = 8 in
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for i = 1 to nclients do
            Engine.spawn m.Machine.engine (fun () ->
                let c = Client.connect rt ~pid:(100 + i) ~uid:1 ~thread:i () in
                for j = 1 to 20 do
                  ok (Client.create c (Printf.sprintf "fs::/data/c%d-f%d" i j))
                done;
                incr finished;
                if !finished = nclients then resume ())
          done);
      Alcotest.(check int) "all clients done" nclients !finished;
      let fs = Option.get (Registry.find (Runtime.registry rt) "fs-1") in
      Alcotest.(check int) "all files exist" (nclients * 20)
        (Lab_mods.Labfs.file_count fs))

let test_live_upgrade_under_traffic () =
  in_rt (fun m rt _dev ->
      ignore (ok (Runtime.mount_text rt (dummy_stack_spec ())));
      let c = Client.connect rt ~pid:5 ~uid:0 ~thread:0 () in
      (* Warm up so the dummy instance processes some messages. *)
      for _ = 1 to 50 do
        ok (Client.control c ~mount:"ctl::/dummy" 1)
      done;
      let before = Option.get (Registry.find (Runtime.registry rt) "dummy-1") in
      Alcotest.(check int) "pre-upgrade messages" 50 (Lab_mods.Dummy_mod.messages before);
      Runtime.modify_mods rt
        {
          Module_manager.target = "dummy";
          factory = Lab_mods.Dummy_mod.factory ~tag:"v2" ();
          code_bytes = 1 lsl 20;
          kind = Module_manager.Centralized;
        };
      (* Keep traffic flowing while the admin performs the upgrade. *)
      for _ = 1 to 200 do
        ok (Client.control c ~mount:"ctl::/dummy" 1)
      done;
      Engine.wait 20e6;
      let after = Option.get (Registry.find (Runtime.registry rt) "dummy-1") in
      Alcotest.(check string) "new code active" "v2" (Lab_mods.Dummy_mod.tag after);
      Alcotest.(check int) "version bumped" 2 after.Labmod.version;
      Alcotest.(check int) "no message lost" 250 (Lab_mods.Dummy_mod.messages after);
      ignore m)

let test_decentralized_upgrade_applied_by_client () =
  in_rt (fun _m rt _dev ->
      ignore (ok (Runtime.mount_text rt (dummy_stack_spec ())));
      let c = Client.connect rt ~pid:5 ~uid:0 ~thread:0 () in
      for _ = 1 to 10 do
        ok (Client.control c ~mount:"ctl::/dummy" 1)
      done;
      Runtime.modify_mods rt
        {
          Module_manager.target = "dummy";
          factory = Lab_mods.Dummy_mod.factory ~tag:"v2d" ();
          code_bytes = 1 lsl 18;
          kind = Module_manager.Decentralized;
        };
      (* Next request boundary applies the upgrade in the client. *)
      ok (Client.control c ~mount:"ctl::/dummy" 1);
      let fresh = Option.get (Registry.find (Runtime.registry rt) "dummy-1") in
      Alcotest.(check string) "client applied new code" "v2d"
        (Lab_mods.Dummy_mod.tag fresh);
      Alcotest.(check int) "state carried" 11 (Lab_mods.Dummy_mod.messages fresh))

let test_crash_recovery () =
  in_rt (fun m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ())));
      let c = Client.connect rt ~pid:3 ~uid:1 ~thread:0 ~recovery_timeout_ns:5e9 () in
      for i = 1 to 10 do
        ok (Client.create c (Printf.sprintf "fs::/data/pre%d" i))
      done;
      (* Crash the runtime; restart it 5 ms later. *)
      Engine.spawn m.Machine.engine (fun () ->
          Runtime.crash rt;
          Engine.wait 5e6;
          Runtime.restart rt);
      Engine.wait 1000.0;
      (* This request observes the crash, waits for restart, repairs,
         and retries transparently. *)
      ok (Client.create c "fs::/data/post");
      let fs = Option.get (Registry.find (Runtime.registry rt) "fs-1") in
      Alcotest.(check bool) "pre-crash files survive (log replay)" true
        (Lab_mods.Labfs.lookup fs "fs::/data/pre1" <> None);
      Alcotest.(check bool) "post-crash file created" true
        (Lab_mods.Labfs.lookup fs "fs::/data/post" <> None))

let test_crash_timeout_raises () =
  in_rt (fun m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ())));
      let c = Client.connect rt ~pid:3 ~uid:1 ~thread:0 ~recovery_timeout_ns:2e6 () in
      ok (Client.create c "fs::/data/a");
      Runtime.crash rt;
      ignore m;
      match Client.create c "fs::/data/b" with
      | exception Client.Runtime_gone -> ()
      | _ -> Alcotest.fail "expected Runtime_gone")

(* Runtime_gone is about the client's patience, not the Runtime's fate:
   a restart that lands after recovery_timeout_ns is indistinguishable
   (to the waiting request) from no restart at all. *)
let test_runtime_gone_despite_late_restart () =
  in_rt (fun m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ())));
      let c = Client.connect rt ~pid:3 ~uid:1 ~thread:0 ~recovery_timeout_ns:2e6 () in
      ok (Client.create c "fs::/data/a");
      Engine.spawn m.Machine.engine (fun () ->
          Runtime.crash rt;
          Engine.wait 50e6;  (* restart 50 ms later: 25x the timeout *)
          Runtime.restart rt);
      Engine.wait 1000.0;
      match Client.create c "fs::/data/b" with
      | exception Client.Runtime_gone -> ()
      | _ -> Alcotest.fail "expected Runtime_gone despite late restart")

let test_fork_inherits_fds () =
  in_rt (fun _m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ())));
      let parent = Client.connect rt ~pid:10 ~uid:1 ~thread:0 () in
      let fd = ok (Client.open_file parent ~create:true "fs::/data/shared") in
      let child = Client.fork parent ~new_pid:11 ~new_thread:1 in
      Alcotest.(check int) "same fd count" (Client.open_fd_count parent)
        (Client.open_fd_count child);
      let n = ok (Client.pwrite child ~fd ~off:0 ~bytes:4096) in
      Alcotest.(check int) "child writes through inherited fd" 4096 n;
      (* The child got its own credentials entry and queue pairs. *)
      Alcotest.(check (option int)) "child registered" (Some 1)
        (Lab_ipc.Ipc_manager.credentials (Runtime.ipc rt) ~pid:11))

let test_dynamic_orchestrator_decommissions () =
  in_rt ~nworkers:8
    ~policy:(Orchestrator.Dynamic { max_workers = 8; threshold = 0.2; lq_cutoff_ns = 1e6 })
    (fun m rt _dev ->
      ignore (ok (Runtime.mount_text rt (fs_stack_spec ())));
      let c = Client.connect rt ~pid:1 ~uid:1 ~thread:0 () in
      (* Light single-client load: the dynamic policy should not keep
         8 workers awake. *)
      Runtime.reset_worker_stats rt;
      let t0 = Machine.now m in
      for i = 1 to 300 do
        ok (Client.create c (Printf.sprintf "fs::/data/l%d" i))
      done;
      let elapsed = Machine.now m -. t0 in
      let cores_busy =
        Runtime.utilization rt ~elapsed_ns:elapsed
        *. Stdlib.float_of_int (Array.length (Runtime.workers rt))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%.2f cores busy < 3" cores_busy)
        true (cores_busy < 3.0))

let test_orchestrator_partition_pure () =
  let qp i = Lab_ipc.Qp.create ~role:Lab_ipc.Qp.Primary ~ordering:Lab_ipc.Qp.Ordered ~id:i () in
  let lq i = { Orchestrator.qp = qp i; est_service_ns = 3000.0; expected_requests = 10.0 } in
  let cq i = { Orchestrator.qp = qp i; est_service_ns = 2e7; expected_requests = 5.0 } in
  let queues = [ lq 1; lq 2; cq 3; cq 4 ] in
  let bins =
    Orchestrator.partition_dynamic ~max_workers:8 ~threshold:0.2 ~lq_cutoff_ns:1e6
      ~epoch_ns:1e8 ~queues
  in
  (* LQs and CQs must never share a bin. *)
  List.iter
    (fun qs ->
      let kinds =
        List.sort_uniq compare
          (List.map (fun q -> q.Orchestrator.est_service_ns <= 1e6) qs)
      in
      Alcotest.(check bool) "no mixed bin" true (List.length kinds <= 1))
    bins;
  let all = List.concat bins in
  Alcotest.(check int) "every queue assigned" 4 (List.length all)

let prop_orchestrator_assigns_all =
  QCheck.Test.make ~name:"dynamic partition assigns every queue exactly once"
    ~count:100
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 1 20) (int_range 1 30)))
    (fun (max_workers, loads) ->
      let queues =
        List.mapi
          (fun i ms ->
            {
              Orchestrator.qp =
                Lab_ipc.Qp.create ~role:Lab_ipc.Qp.Primary
                  ~ordering:Lab_ipc.Qp.Ordered ~id:i ();
              est_service_ns = Stdlib.float_of_int ms *. 1e5;
              expected_requests = 3.0;
            })
          loads
      in
      let bins =
        Orchestrator.partition_dynamic ~max_workers ~threshold:0.2
          ~lq_cutoff_ns:1e6 ~epoch_ns:1e7 ~queues
      in
      let assigned = List.concat bins in
      List.length assigned = List.length queues
      && List.length bins <= max_workers)

let () =
  Alcotest.run "lab_runtime"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "file io via workers" `Quick test_end_to_end_file_io;
          Alcotest.test_case "open missing" `Quick test_open_missing_fails;
          Alcotest.test_case "unmounted path" `Quick test_unmounted_path_fails;
          Alcotest.test_case "kv store" `Quick test_kv_end_to_end;
          Alcotest.test_case "sync mode inline" `Quick test_sync_mode_no_workers;
          Alcotest.test_case "sync < async single-thread" `Quick
            test_sync_faster_than_async_single_thread;
          Alcotest.test_case "permissions in stack" `Quick test_permission_stack_denies;
          Alcotest.test_case "parallel clients" `Quick test_multiple_clients_parallel;
        ] );
      ( "upgrades",
        [
          Alcotest.test_case "centralized under traffic" `Quick
            test_live_upgrade_under_traffic;
          Alcotest.test_case "decentralized via client" `Quick
            test_decentralized_upgrade_applied_by_client;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "recover and retry" `Quick test_crash_recovery;
          Alcotest.test_case "timeout raises" `Quick test_crash_timeout_raises;
          Alcotest.test_case "late restart still raises" `Quick
            test_runtime_gone_despite_late_restart;
        ] );
      ( "process-semantics",
        [ Alcotest.test_case "fork fd inheritance" `Quick test_fork_inherits_fds ] );
      ( "orchestrator",
        [
          Alcotest.test_case "dynamic decommissions" `Quick
            test_dynamic_orchestrator_decommissions;
          Alcotest.test_case "partition LQ/CQ" `Quick test_orchestrator_partition_pure;
          QCheck_alcotest.to_alcotest prop_orchestrator_assigns_all;
        ] );
    ]
