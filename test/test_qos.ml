(* Multi-tenant QoS: admission control, DRR dispatch invariants, and
   end-to-end same-seed determinism with QoS engaged.

   The DRR stage is exercised bare (no engine): queued ops park on
   cells the test never parks on, so dispatch's unpark is a no-op and
   the structure can be driven as a plain data structure. Properties:

   - work conservation: after any submit/release sequence the window is
     never left with room while ops are queued;
   - bookkeeping: outstanding bytes always equal op size times
     dispatched-but-unreleased ops;
   - bounded deficit: no tenant's deficit ever exceeds one replenishment
     plus one op — the DRR service-lag bound;
   - weighted fairness: continuously-backlogged tenants' served bytes
     per unit weight stay within a constant of each other, independent
     of how many releases run;
   - determinism: a full platform run (registered tenants, a throttled
     bulk tenant, blkswitch DRR gate on the hot path) executes the
     byte-identical event sequence when repeated with the same seed. *)

open Labstor

module Tenant = Lab_ipc.Tenant

let cell = Lab_sim.Engine.make_park_cell ()

(* ---------------- DRR properties (QCheck) ---------------- *)

(* A case: op size (windowed), tenant weights, and an op script of
   submissions (by tenant) and releases. Releases beyond the number of
   dispatched-but-unreleased ops are skipped during interpretation. *)
let case_gen =
  QCheck.(
    triple
      (int_range 16385 65536) (* op bytes: throughput-class *)
      (list_of_size Gen.(int_range 1 6) (int_range 1 8)) (* weights *)
      (list_of_size Gen.(int_range 1 200)
         (pair bool (int_range 0 5)))) (* (is_submit, tenant pick) *)

let run_script ~bytes ~weights ~script =
  let table = Tenant.create () in
  let tenants =
    Array.of_list
      (List.mapi
         (fun i w ->
           Tenant.register table ~ext_id:i ~weight:w ~rate_mbps:0.0
             ~burst_bytes:65536 ~qcap:1_000_000)
         weights)
  in
  let n = Array.length tenants in
  let dispatched_total () =
    Array.fold_left (fun acc tn -> acc + Tenant.dispatched tn) 0 tenants
  in
  let released = ref 0 in
  let check_invariants () =
    let unreleased = dispatched_total () - !released in
    if Tenant.backlog table > 0
       && Tenant.inflight_bytes table < Tenant.window_bytes table
    then QCheck.Test.fail_report "window has room while ops are queued";
    if Tenant.inflight_bytes table <> bytes * unreleased then
      QCheck.Test.fail_report "inflight bytes out of sync with dispatches";
    Array.iter
      (fun tn ->
        let d = Tenant.deficit tn in
        let bound =
          float_of_int
            ((Tenant.quantum_bytes table * Tenant.weight tn) + bytes)
        in
        if d < 0.0 || d > bound then
          QCheck.Test.fail_report "deficit outside [0, quantum*weight + op]")
      tenants
  in
  List.iter
    (fun (is_submit, pick) ->
      (if is_submit then
         ignore
           (Tenant.submit table tenants.(pick mod n) ~bytes cell : bool)
       else if dispatched_total () - !released > 0 then begin
         Tenant.release table ~bytes;
         incr released
       end);
      check_invariants ())
    script;
  (* Drain everything: releasing all outstanding ops must eventually
     dispatch and release every queued op (work conservation end
     state). *)
  let guard = ref 0 in
  while dispatched_total () - !released > 0 && !guard < 1_000_000 do
    Tenant.release table ~bytes;
    incr released;
    incr guard;
    check_invariants ()
  done;
  if Tenant.backlog table > 0 then
    QCheck.Test.fail_report "ops left queued after full drain";
  true

let prop_drr_invariants =
  QCheck.Test.make ~count:300
    ~name:"DRR: work conservation, byte accounting, bounded deficit"
    case_gen
    (fun (bytes, weights, script) -> run_script ~bytes ~weights ~script)

(* Weighted fairness: keep k tenants continuously backlogged, run R
   releases, and compare served bytes per unit weight. DRR's service
   lag is bounded by one quantum-replenishment plus one op regardless
   of R. *)
let fairness_gen =
  QCheck.(
    triple
      (list_of_size Gen.(int_range 2 8) (int_range 1 8)) (* weights *)
      (int_range 16385 40960) (* op bytes *)
      (int_range 50 400)) (* releases *)

let prop_drr_fairness =
  QCheck.Test.make ~count:200
    ~name:"DRR: served bytes per unit weight within two quanta + two ops"
    fairness_gen
    (fun (weights, bytes, releases) ->
      let table = Tenant.create () in
      let tenants =
        Array.of_list
          (List.mapi
             (fun i w ->
               Tenant.register table ~ext_id:i ~weight:w ~rate_mbps:0.0
                 ~burst_bytes:65536 ~qcap:1_000_000)
             weights)
      in
      let n = Array.length tenants in
      (* Backlog deep enough that nobody runs dry: every tenant could
         absorb all releases alone. *)
      let per_tenant = (releases / 1) + 8 in
      for i = 0 to (n * per_tenant) - 1 do
        ignore (Tenant.submit table tenants.(i mod n) ~bytes cell : bool)
      done;
      for _ = 1 to releases do
        Tenant.release table ~bytes
      done;
      let per_weight =
        Array.map
          (fun tn ->
            float_of_int (Tenant.served_bytes tn)
            /. float_of_int (Tenant.weight tn))
          tenants
      in
      let mx = Array.fold_left Stdlib.max neg_infinity per_weight in
      let mn = Array.fold_left Stdlib.min infinity per_weight in
      (* At a snapshot mid-round, ring position puts tenants up to one
         full replenishment (a quantum per unit weight) apart, and each
         side additionally carries a deficit residual of up to another
         quantum-per-weight plus one op. *)
      let bound =
        float_of_int ((2 * Tenant.quantum_bytes table) + (2 * bytes))
      in
      if mx -. mn > bound then
        QCheck.Test.fail_reportf
          "service lag %.0f exceeds 2 quanta + 2 ops = %.0f" (mx -. mn) bound;
      true)

(* ---------------- admission control ---------------- *)

let test_admission_qcap () =
  let table = Tenant.create () in
  let tn =
    Tenant.register table ~ext_id:7 ~weight:1 ~rate_mbps:0.0
      ~burst_bytes:65536 ~qcap:2
  in
  Alcotest.(check bool) "1st admitted" true
    (Tenant.admit table tn ~bytes:4096 ~now:0.0);
  Alcotest.(check bool) "2nd admitted" true
    (Tenant.admit table tn ~bytes:4096 ~now:0.0);
  Alcotest.(check bool) "3rd refused (qcap)" false
    (Tenant.admit table tn ~bytes:4096 ~now:0.0);
  Alcotest.(check int) "refusal counted" 1 (Tenant.throttled tn);
  Tenant.complete table tn ~bytes:4096 ~latency_ns:1000.0 ~ok:true;
  Alcotest.(check bool) "slot freed" true
    (Tenant.admit table tn ~bytes:4096 ~now:0.0)

let test_admission_tokens () =
  let table = Tenant.create () in
  (* 1 MB/s = 0.001 bytes/ns; burst 8 KiB. *)
  let tn =
    Tenant.register table ~ext_id:8 ~weight:1 ~rate_mbps:1.0
      ~burst_bytes:8192 ~qcap:1024
  in
  Alcotest.(check bool) "burst admits" true
    (Tenant.admit table tn ~bytes:8192 ~now:0.0);
  Alcotest.(check bool) "empty bucket refuses" false
    (Tenant.admit table tn ~bytes:8192 ~now:0.0);
  (* 8192 bytes refill at 0.001 bytes/ns -> 8.192 ms. *)
  Alcotest.(check bool) "refilled admits" true
    (Tenant.admit table tn ~bytes:8192 ~now:8.3e6)

let test_class_split () =
  let table = Tenant.create () in
  Alcotest.(check bool) "16 KiB is latency-class" false
    (Tenant.windowed table ~bytes:16384);
  Alcotest.(check bool) "16 KiB + 1 is throughput-class" true
    (Tenant.windowed table ~bytes:16385)

(* ---------------- e2e determinism with QoS on ---------------- *)

let qos_spec =
  {|
mount: "blk::/qos"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

(* A miniature noisy-neighbor run: 4 metered readers against 4 clients
   sharing one capped bulk tenant. Returns the run's fingerprint. *)
let e2e_fingerprint ~seed =
  let platform = Platform.boot ~nworkers:2 ~seed () in
  (match Platform.mount platform qos_spec with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "mount: %s" e);
  let machine = Platform.machine platform in
  let eng = machine.Lab_sim.Machine.engine in
  for i = 0 to 3 do
    ignore (Platform.register_tenant platform ~uid:(2000 + i) ())
  done;
  ignore
    (Platform.register_tenant platform ~uid:999 ~rate_mbps:500.0 ~burst_kb:64
       ~qcap:8 ());
  let stop = ref false in
  let lat_sum = ref 0.0 in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Lab_sim.Engine.suspend (fun resume ->
          for i = 0 to 3 do
            Lab_sim.Engine.spawn eng (fun () ->
                let c =
                  Platform.client platform ~uid:(2000 + i) ~thread:i ()
                in
                Lab_sim.Engine.wait (float_of_int i *. 5_000.0);
                for k = 0 to 19 do
                  let t0 = Lab_sim.Machine.now machine in
                  (match
                     Lab_runtime.Client.read_block c ~mount:"blk::/qos"
                       ~lba:((i * 8192) + (k * 32))
                       ~bytes:16384
                   with
                  | Ok _ ->
                      lat_sum :=
                        !lat_sum +. (Lab_sim.Machine.now machine -. t0)
                  | Error _ -> ());
                  Lab_sim.Engine.wait 40_000.0
                done;
                incr finished;
                if !finished = 4 then begin
                  stop := true;
                  resume ()
                end)
          done;
          for j = 0 to 3 do
            Lab_sim.Engine.spawn eng (fun () ->
                let c =
                  Platform.client platform ~uid:999 ~thread:(8 + j) ()
                in
                let lba = ref (1_000_000 + (j * 100_000)) in
                while not !stop do
                  ignore
                    (Lab_runtime.Client.write_block c ~mount:"blk::/qos"
                       ~lba:!lba ~bytes:20480);
                  lba := !lba + 40
                done)
          done));
  let noisy =
    match Platform.tenant_for platform ~uid:999 with
    | Some tn -> tn
    | None -> Alcotest.fail "noisy tenant vanished"
  in
  ( Lab_sim.Engine.events_executed eng,
    !lat_sum,
    Tenant.throttled noisy,
    Tenant.dispatched noisy,
    Platform.now platform )

let test_e2e_deterministic () =
  let f1 = e2e_fingerprint ~seed:42 in
  let f2 = e2e_fingerprint ~seed:42 in
  let e1, l1, t1, d1, n1 = f1 and e2, l2, t2, d2, n2 = f2 in
  Alcotest.(check int) "events" e1 e2;
  Alcotest.(check (float 0.0)) "latency sum (exact)" l1 l2;
  Alcotest.(check int) "throttled" t1 t2;
  Alcotest.(check int) "dispatched" d1 d2;
  Alcotest.(check (float 0.0)) "end time (exact)" n1 n2;
  (* And the QoS machinery really was on the path. *)
  Alcotest.(check bool) "noisy throttled" true (t1 > 0);
  Alcotest.(check bool) "noisy windowed ops dispatched" true (d1 > 0)

let () =
  Alcotest.run "qos"
    [
      ( "drr",
        [
          QCheck_alcotest.to_alcotest prop_drr_invariants;
          QCheck_alcotest.to_alcotest prop_drr_fairness;
        ] );
      ( "admission",
        [
          Alcotest.test_case "qcap" `Quick test_admission_qcap;
          Alcotest.test_case "token bucket" `Quick test_admission_tokens;
          Alcotest.test_case "class split" `Quick test_class_split;
        ] );
      ( "e2e",
        [ Alcotest.test_case "same-seed determinism" `Quick test_e2e_deterministic ] );
    ]
