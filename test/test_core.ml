(* Tests for lab_core: YAML subset parser, LabMod framework, registry,
   stack specs + validation, namespace resolution, module manager
   upgrade protocols. *)

open Lab_sim
open Lab_core

let in_sim f =
  let m = Machine.create ~ncores:4 () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* ------------------------------------------------------------------ *)
(* Yamlite                                                             *)
(* ------------------------------------------------------------------ *)

let yaml = Alcotest.testable (fun fmt v -> Fmt.string fmt (Yamlite.to_string v)) ( = )

let test_yaml_scalars () =
  Alcotest.check yaml "int" (Yamlite.Int 42) (Yamlite.parse "42");
  Alcotest.check yaml "float" (Yamlite.Float 2.5) (Yamlite.parse "2.5");
  Alcotest.check yaml "bool" (Yamlite.Bool true) (Yamlite.parse "true");
  Alcotest.check yaml "null" Yamlite.Null (Yamlite.parse "~");
  Alcotest.check yaml "empty" Yamlite.Null (Yamlite.parse "");
  Alcotest.check yaml "string" (Yamlite.Str "hello world") (Yamlite.parse "hello world");
  Alcotest.check yaml "quoted" (Yamlite.Str "a: b") (Yamlite.parse "\"a: b\"")

let test_yaml_map () =
  let doc = "name: labfs\nversion: 2\nenabled: true" in
  Alcotest.check yaml "flat map"
    (Yamlite.Map
       [ ("name", Yamlite.Str "labfs"); ("version", Yamlite.Int 2); ("enabled", Yamlite.Bool true) ])
    (Yamlite.parse doc)

let test_yaml_nested () =
  let doc = "rules:\n  exec_mode: async\n  priority: 3\nmount: \"fs::/a\"" in
  let v = Yamlite.parse doc in
  Alcotest.(check (option string)) "mount"
    (Some "fs::/a")
    (Option.bind (Yamlite.find v "mount") Yamlite.get_string);
  let rules = Option.get (Yamlite.find v "rules") in
  Alcotest.(check (option string)) "exec_mode" (Some "async")
    (Option.bind (Yamlite.find rules "exec_mode") Yamlite.get_string);
  Alcotest.(check (option int)) "priority" (Some 3)
    (Option.bind (Yamlite.find rules "priority") Yamlite.get_int)

let test_yaml_block_list () =
  let doc = "- one\n- 2\n- true" in
  Alcotest.check yaml "list"
    (Yamlite.List [ Yamlite.Str "one"; Yamlite.Int 2; Yamlite.Bool true ])
    (Yamlite.parse doc)

let test_yaml_flow_list () =
  let doc = "admins: [root, alice, bob]" in
  let v = Yamlite.parse doc in
  Alcotest.check yaml "flow list"
    (Yamlite.List [ Yamlite.Str "root"; Yamlite.Str "alice"; Yamlite.Str "bob" ])
    (Option.get (Yamlite.find v "admins"))

let test_yaml_list_of_maps () =
  let doc =
    "dag:\n  - uuid: a\n    mod: labfs\n    outputs: [b]\n  - uuid: b\n    mod: lru" in
  let v = Yamlite.parse doc in
  match Yamlite.find v "dag" with
  | Some (Yamlite.List [ first; second ]) ->
      Alcotest.(check (option string)) "first uuid" (Some "a")
        (Option.bind (Yamlite.find first "uuid") Yamlite.get_string);
      Alcotest.(check (option string)) "second mod" (Some "lru")
        (Option.bind (Yamlite.find second "mod") Yamlite.get_string);
      Alcotest.check yaml "outputs"
        (Yamlite.List [ Yamlite.Str "b" ])
        (Option.get (Yamlite.find first "outputs"))
  | _ -> Alcotest.fail "expected a 2-item dag list"

let test_yaml_comments () =
  let doc = "# header\nkey: value # trailing\nother: 1" in
  Alcotest.check yaml "comments stripped"
    (Yamlite.Map [ ("key", Yamlite.Str "value"); ("other", Yamlite.Int 1) ])
    (Yamlite.parse doc)

let test_yaml_nested_attrs () =
  let doc = "- uuid: lru-1\n  attrs:\n    capacity_mb: 64\n    policy: lru" in
  match Yamlite.parse doc with
  | Yamlite.List [ item ] ->
      let attrs = Option.get (Yamlite.find item "attrs") in
      Alcotest.(check (option int)) "capacity" (Some 64)
        (Option.bind (Yamlite.find attrs "capacity_mb") Yamlite.get_int)
  | _ -> Alcotest.fail "expected singleton list"

(* Round-trip property: serialize then parse returns the same value.
   Generator stays within the supported subset: string keys, scalars,
   non-empty maps, lists of scalars or maps. *)
let yaml_gen =
  let open QCheck.Gen in
  let key = map (fun s -> "k" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)) in
  let scalar =
    oneof
      [
        return Yamlite.Null;
        map (fun b -> Yamlite.Bool b) bool;
        map (fun i -> Yamlite.Int i) int;
        map (fun s -> Yamlite.Str s)
          (oneof
             [
               string_size ~gen:(char_range 'a' 'z') (int_range 0 8);
               oneofl [ "true"; "42"; "~"; "a: b"; "- dash"; "x#y"; " pad " ];
             ]);
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (* Lists of scalars (rendered flow) or of maps (dash items);
             block lists directly inside lists are outside the subset. *)
          ( 2,
            map (fun l -> Yamlite.List l)
              (list_size (int_range 0 4)
                 (if depth >= 2 then
                    oneof [ scalar; map2 (fun k v -> Yamlite.Map [ (k, v) ]) key scalar ]
                  else scalar)) );
          ( 2,
            map
              (fun kvs ->
                (* Distinct keys: the parser keeps all, assoc order matters. *)
                let seen = Hashtbl.create 8 in
                Yamlite.Map
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false
                       else begin
                         Hashtbl.replace seen k ();
                         true
                       end)
                     kvs))
              (list_size (int_range 1 4) (pair key (value (depth - 1)))) );
        ]
  in
  map (fun kvs ->
      let seen = Hashtbl.create 8 in
      Yamlite.Map
        (List.filter
           (fun (k, _) ->
             if Hashtbl.mem seen k then false
             else begin
               Hashtbl.replace seen k ();
               true
             end)
           kvs))
    (list_size (int_range 1 5) (pair key (value 2)))

let prop_yaml_roundtrip =
  QCheck.Test.make ~name:"yamlite: parse (serialize v) = v" ~count:300
    (QCheck.make ~print:Yamlite.to_string yaml_gen)
    (fun v -> Yamlite.parse (Yamlite.serialize v) = v)

let test_yaml_parse_error () =
  (try
     ignore (Yamlite.parse "just scalar\nkey: value");
     Alcotest.fail "expected parse error"
   with Yamlite.Parse_error _ -> ())

(* ------------------------------------------------------------------ *)
(* LabMod + Registry                                                   *)
(* ------------------------------------------------------------------ *)

type Labmod.state += Counter of int

let counter_factory ?(bump = 1) () : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  Labmod.make ~name:"counter" ~uuid ~mod_type:Labmod.Control ~state:(Counter 0)
    {
      Labmod.operate =
        (fun m _ctx _req ->
          (match m.Labmod.state with
          | Counter n -> m.Labmod.state <- Counter (n + bump)
          | _ -> ());
          Request.Done);
      est_processing_time = (fun _ _ -> 100.0);
      state_update = (fun old -> old);
      state_repair = (fun _ -> ());
    }

let dummy_ctx m =
  {
    Labmod.machine = m;
    thread = 0;
    forward = (fun _ -> Request.Done);
    forward_async = (fun _ _ -> ());
  }

let mk_req ?(payload = Request.Control 0) id =
  Request.make ~id ~pid:1 ~uid:0 ~thread:0 ~stack_id:1 ~now:0.0 payload

let test_registry_instantiate_once () =
  let r = Registry.create () in
  Registry.register_factory r ~name:"counter" (counter_factory ());
  let a = Result.get_ok (Registry.instantiate r ~mod_name:"counter" ~uuid:"c1" ~attrs:[]) in
  let b = Result.get_ok (Registry.instantiate r ~mod_name:"counter" ~uuid:"c1" ~attrs:[]) in
  Alcotest.(check bool) "same instance for same uuid" true (a == b);
  let c = Result.get_ok (Registry.instantiate r ~mod_name:"counter" ~uuid:"c2" ~attrs:[]) in
  Alcotest.(check bool) "new uuid, new instance" true (a != c);
  Alcotest.(check int) "two instances" 2 (List.length (Registry.instances r));
  Alcotest.(check int) "by name" 2 (List.length (Registry.instances_of_name r "counter"))

let test_registry_missing_factory () =
  let r = Registry.create () in
  match Registry.instantiate r ~mod_name:"ghost" ~uuid:"g1" ~attrs:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_labmod_state_mutation () =
  in_sim (fun m ->
      let r = Registry.create () in
      Registry.register_factory r ~name:"counter" (counter_factory ());
      let c = Result.get_ok (Registry.instantiate r ~mod_name:"counter" ~uuid:"c1" ~attrs:[]) in
      let ctx = dummy_ctx m in
      for i = 1 to 5 do
        ignore (c.Labmod.ops.Labmod.operate c ctx (mk_req i))
      done;
      match c.Labmod.state with
      | Counter n -> Alcotest.(check int) "state advanced" 5 n
      | _ -> Alcotest.fail "wrong state constructor")

(* ------------------------------------------------------------------ *)
(* Stack specs                                                         *)
(* ------------------------------------------------------------------ *)

let sample_spec =
  {|
mount: "fs::/b"
rules:
  exec_mode: async
  priority: 1
  admins: [root]
dag:
  - uuid: fs-1
    mod: mockfs
    outputs: [cache-1]
  - uuid: cache-1
    mod: mockcache
    attrs:
      capacity_mb: 64
    outputs: [sched-1]
  - uuid: sched-1
    mod: mocksched
    outputs: [drv-1]
  - uuid: drv-1
    mod: mockdrv
|}

let mock_type_of = function
  | "mockfs" -> Some Labmod.Filesystem
  | "mockcache" -> Some Labmod.Cache
  | "mocksched" -> Some Labmod.Scheduler
  | "mockdrv" -> Some Labmod.Driver
  | "mockkvs" -> Some Labmod.Kv_store
  | _ -> None

let test_spec_parse () =
  match Stack_spec.parse sample_spec with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      Alcotest.(check string) "mount" "fs::/b" spec.Stack_spec.mount;
      Alcotest.(check int) "dag size" 4 (List.length spec.Stack_spec.dag);
      Alcotest.(check string) "entry" "fs-1" (Stack_spec.entry spec).Stack_spec.uuid;
      Alcotest.(check bool) "async" true
        (spec.Stack_spec.rules.Stack_spec.exec_mode = Stack_spec.Async)

let test_spec_validate_ok () =
  let spec = Result.get_ok (Stack_spec.parse sample_spec) in
  match Stack_spec.validate spec ~mod_type_of:mock_type_of with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let expect_invalid name doc =
  match Stack_spec.parse doc with
  | Error _ -> ()
  | Ok spec -> (
      match Stack_spec.validate spec ~mod_type_of:mock_type_of with
      | Error _ -> ()
      | Ok () -> Alcotest.fail (name ^ ": expected validation failure"))

let test_spec_validate_cycle () =
  expect_invalid "cycle"
    {|
mount: "fs::/x"
dag:
  - uuid: a
    mod: mockcache
    outputs: [b]
  - uuid: b
    mod: mockcache
    outputs: [a]
|}

let test_spec_validate_unknown_output () =
  expect_invalid "unknown output"
    {|
mount: "fs::/x"
dag:
  - uuid: a
    mod: mockfs
    outputs: [ghost]
|}

let test_spec_validate_bad_edge () =
  (* A driver cannot feed anything. *)
  expect_invalid "driver with output"
    {|
mount: "fs::/x"
dag:
  - uuid: d
    mod: mockdrv
    outputs: [f]
  - uuid: f
    mod: mockfs
|}

let test_spec_validate_duplicate_uuid () =
  expect_invalid "duplicate uuid"
    {|
mount: "fs::/x"
dag:
  - uuid: a
    mod: mockfs
  - uuid: a
    mod: mockcache
|}

let test_spec_validate_missing_impl () =
  expect_invalid "missing implementation"
    {|
mount: "fs::/x"
dag:
  - uuid: a
    mod: not_installed
|}

let test_spec_max_length () =
  let vertices =
    String.concat "\n"
      (List.init 20 (fun i ->
           Printf.sprintf "  - uuid: v%d\n    mod: mockcache%s" i
             (if i < 19 then Printf.sprintf "\n    outputs: [v%d]" (i + 1) else "")))
  in
  let doc = Printf.sprintf "mount: \"fs::/x\"\ndag:\n%s" vertices in
  let spec = Result.get_ok (Stack_spec.parse doc) in
  (match Stack_spec.validate ~max_length:16 spec ~mod_type_of:mock_type_of with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected max-length failure");
  match Stack_spec.validate ~max_length:32 spec ~mod_type_of:mock_type_of with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Namespace                                                           *)
(* ------------------------------------------------------------------ *)

let control_factory name : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  Labmod.make ~name ~uuid ~mod_type:Labmod.Control
    {
      Labmod.operate = (fun _ _ _ -> Request.Done);
      est_processing_time = Labmod.default_est;
      state_update = (fun s -> s);
      state_repair = (fun _ -> ());
    }

let registry_with_controls () =
  let r = Registry.create () in
  Registry.register_factory r ~name:"ctrl" (control_factory "ctrl");
  r

let ctrl_spec mountpoint =
  Result.get_ok
    (Stack_spec.parse
       (Printf.sprintf "mount: \"%s\"\ndag:\n  - uuid: %s-v\n    mod: ctrl"
          mountpoint
          (String.map (function ':' | '/' -> '-' | c -> c) mountpoint)))

let test_namespace_mount_lookup () =
  let r = registry_with_controls () in
  let ns = Namespace.create () in
  let s = Result.get_ok (Namespace.mount ns r (ctrl_spec "fs::/b")) in
  Alcotest.(check bool) "exact lookup" true (Namespace.lookup ns "fs::/b" = Some s);
  Alcotest.(check bool) "by id" true (Namespace.stack_by_id ns s.Stack.id = Some s);
  (match Namespace.mount ns r (ctrl_spec "fs::/b") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double mount should fail");
  Alcotest.(check (list string)) "mounts" [ "fs::/b" ] (Namespace.mounts ns)

let test_namespace_resolve_prefix () =
  let r = registry_with_controls () in
  let ns = Namespace.create () in
  let b = Result.get_ok (Namespace.mount ns r (ctrl_spec "fs::/b")) in
  let bc = Result.get_ok (Namespace.mount ns r (ctrl_spec "fs::/b/c")) in
  Alcotest.(check bool) "deep file resolves to closest mount" true
    (Namespace.resolve ns "fs::/b/c/file.txt" = Some bc);
  Alcotest.(check bool) "sibling resolves to parent mount" true
    (Namespace.resolve ns "fs::/b/hi.txt" = Some b);
  Alcotest.(check bool) "unrelated path unresolved" true
    (Namespace.resolve ns "kv::/z" = None)

let test_namespace_unmount () =
  let r = registry_with_controls () in
  let ns = Namespace.create () in
  ignore (Result.get_ok (Namespace.mount ns r (ctrl_spec "fs::/b")));
  (match Namespace.unmount ns "fs::/b" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "gone" true (Namespace.lookup ns "fs::/b" = None);
  match Namespace.unmount ns "fs::/b" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double unmount should fail"

let test_namespace_modify_keeps_state () =
  let r = Registry.create () in
  Registry.register_factory r ~name:"counter" (counter_factory ());
  Registry.register_factory r ~name:"ctrl" (control_factory "ctrl");
  let ns = Namespace.create () in
  let spec1 =
    Result.get_ok
      (Stack_spec.parse
         "mount: \"x::/m\"\ndag:\n  - uuid: keep\n    mod: counter")
  in
  let _ = Result.get_ok (Namespace.mount ns r spec1) in
  let kept = Option.get (Registry.find r "keep") in
  kept.Labmod.state <- Counter 99;
  let spec2 =
    Result.get_ok
      (Stack_spec.parse
         "mount: \"x::/m\"\ndag:\n  - uuid: keep\n    mod: counter\n    outputs: [extra]\n  - uuid: extra\n    mod: ctrl")
  in
  let s2 = Result.get_ok (Namespace.modify_stack ns r spec2) in
  Alcotest.(check int) "dag grew" 2 (List.length s2.Stack.spec.Stack_spec.dag);
  match (Option.get (Registry.find r "keep")).Labmod.state with
  | Counter 99 -> ()
  | _ -> Alcotest.fail "state lost across modify_stack"

(* ------------------------------------------------------------------ *)
(* Module manager                                                      *)
(* ------------------------------------------------------------------ *)

let test_upgrade_centralized () =
  in_sim (fun m ->
      let r = Registry.create () in
      Registry.register_factory r ~name:"counter" (counter_factory ());
      let c =
        Result.get_ok (Registry.instantiate r ~mod_name:"counter" ~uuid:"c1" ~attrs:[])
      in
      c.Labmod.state <- Counter 7;
      let loads = ref 0 in
      let mm =
        Module_manager.create m r ~load_code:(fun ~thread:_ ~bytes:_ ->
            incr loads;
            Engine.wait 5e6)
      in
      let qp = Lab_ipc.Qp.create ~role:Lab_ipc.Qp.Primary ~ordering:Lab_ipc.Qp.Ordered ~id:1 () in
      (* A worker stand-in that acks the pause mark. *)
      Engine.spawn m.Machine.engine (fun () ->
          let rec loop () =
            (match Lab_ipc.Qp.mark qp with
            | Lab_ipc.Qp.Update_pending -> Lab_ipc.Qp.set_mark qp Lab_ipc.Qp.Update_acked
            | _ -> ());
            if Lab_ipc.Qp.mark qp <> Lab_ipc.Qp.Normal || Module_manager.pending mm > 0
            then begin
              Engine.wait 1000.0;
              loop ()
            end
          in
          loop ());
      Module_manager.submit_upgrade mm
        {
          Module_manager.target = "counter";
          factory = counter_factory ~bump:10 ();
          code_bytes = 1 lsl 20;
          kind = Module_manager.Centralized;
        };
      Alcotest.(check int) "queued" 1 (Module_manager.pending mm);
      let t0 = Machine.now m in
      Module_manager.process_centralized mm ~thread:0 ~primary_qps:[ qp ]
        ~all_acked:(fun () -> Lab_ipc.Qp.mark qp = Lab_ipc.Qp.Update_acked)
        ~intermediate_idle:(fun () -> true);
      Alcotest.(check bool) "upgrade took ~load time" true (Machine.now m -. t0 >= 5e6);
      Alcotest.(check int) "code loaded once" 1 !loads;
      let fresh = Option.get (Registry.find r "c1") in
      Alcotest.(check bool) "new instance" true (fresh != c);
      Alcotest.(check int) "version bumped" 2 fresh.Labmod.version;
      (match fresh.Labmod.state with
      | Counter 7 -> ()
      | _ -> Alcotest.fail "state not transferred");
      Alcotest.(check bool) "queue unmarked" true (Lab_ipc.Qp.mark qp = Lab_ipc.Qp.Normal);
      (* The new code must actually be running. *)
      ignore (fresh.Labmod.ops.Labmod.operate fresh (dummy_ctx m) (mk_req 1));
      match fresh.Labmod.state with
      | Counter 17 -> ()
      | _ -> Alcotest.fail "new operate not in effect")

let test_upgrade_decentralized_epochs () =
  in_sim (fun m ->
      let r = Registry.create () in
      Registry.register_factory r ~name:"counter" (counter_factory ());
      let mm =
        Module_manager.create m r ~load_code:(fun ~thread:_ ~bytes:_ -> Engine.wait 1e6)
      in
      Alcotest.(check int) "epoch 0" 0 (Module_manager.epoch mm);
      Module_manager.submit_upgrade mm
        {
          Module_manager.target = "counter";
          factory = counter_factory ~bump:2 ();
          code_bytes = 1 lsl 20;
          kind = Module_manager.Decentralized;
        };
      Alcotest.(check int) "epoch bumped" 1 (Module_manager.epoch mm);
      Alcotest.(check int) "not in centralized queue" 0 (Module_manager.pending mm);
      let pendings = Module_manager.client_pending_upgrades mm ~since_epoch:0 in
      Alcotest.(check int) "client sees one upgrade" 1 (List.length pendings);
      let local =
        Result.get_ok (Registry.instantiate r ~mod_name:"counter" ~uuid:"cl" ~attrs:[])
      in
      local.Labmod.state <- Counter 3;
      let fresh =
        Module_manager.apply_client_upgrade mm ~thread:0 ~local (List.hd pendings)
      in
      (match fresh.Labmod.state with
      | Counter 3 -> ()
      | _ -> Alcotest.fail "client state lost");
      Alcotest.(check int) "client at current epoch sees nothing" 0
        (List.length (Module_manager.client_pending_upgrades mm ~since_epoch:1)))

let () =
  Alcotest.run "lab_core"
    [
      ( "yamlite",
        [
          Alcotest.test_case "scalars" `Quick test_yaml_scalars;
          Alcotest.test_case "map" `Quick test_yaml_map;
          Alcotest.test_case "nested" `Quick test_yaml_nested;
          Alcotest.test_case "block list" `Quick test_yaml_block_list;
          Alcotest.test_case "flow list" `Quick test_yaml_flow_list;
          Alcotest.test_case "list of maps" `Quick test_yaml_list_of_maps;
          Alcotest.test_case "comments" `Quick test_yaml_comments;
          Alcotest.test_case "nested attrs" `Quick test_yaml_nested_attrs;
          Alcotest.test_case "parse error" `Quick test_yaml_parse_error;
          QCheck_alcotest.to_alcotest prop_yaml_roundtrip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "instantiate once per uuid" `Quick
            test_registry_instantiate_once;
          Alcotest.test_case "missing factory" `Quick test_registry_missing_factory;
          Alcotest.test_case "state mutation" `Quick test_labmod_state_mutation;
        ] );
      ( "stack-spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "validate ok" `Quick test_spec_validate_ok;
          Alcotest.test_case "cycle rejected" `Quick test_spec_validate_cycle;
          Alcotest.test_case "unknown output" `Quick test_spec_validate_unknown_output;
          Alcotest.test_case "bad edge" `Quick test_spec_validate_bad_edge;
          Alcotest.test_case "duplicate uuid" `Quick test_spec_validate_duplicate_uuid;
          Alcotest.test_case "missing impl" `Quick test_spec_validate_missing_impl;
          Alcotest.test_case "max length" `Quick test_spec_max_length;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "mount/lookup" `Quick test_namespace_mount_lookup;
          Alcotest.test_case "prefix resolve" `Quick test_namespace_resolve_prefix;
          Alcotest.test_case "unmount" `Quick test_namespace_unmount;
          Alcotest.test_case "modify keeps state" `Quick
            test_namespace_modify_keeps_state;
        ] );
      ( "module-manager",
        [
          Alcotest.test_case "centralized upgrade" `Quick test_upgrade_centralized;
          Alcotest.test_case "decentralized epochs" `Quick
            test_upgrade_decentralized_epochs;
        ] );
    ]
