(* Tests for the extension features: tunable consistency, ARC cache,
   LabMod repos with trust levels, Runtime configuration files, LabFS
   provenance. *)

open Lab_sim
open Lab_core
open Lab_mods

let in_sim ?(ncores = 8) f =
  let m = Machine.create ~ncores () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

let mk_req m ?(thread = 0) payload =
  Request.make ~id:1 ~pid:1 ~uid:0 ~thread ~stack_id:1 ~now:(Machine.now m) payload

let drive m ?(forward = fun _ -> Request.Done) (labmod : Labmod.t) req =
  let ctx =
    {
      Labmod.machine = m;
      thread = req.Request.thread;
      forward;
      forward_async = (fun r k -> k (forward r));
    }
  in
  labmod.Labmod.ops.Labmod.operate labmod ctx req

let block_write ?(lba = 0) ?(sync = false) bytes =
  Request.Block
    { Request.b_kind = Request.Write; b_lba = lba; b_bytes = bytes; b_sync = sync }

let block_read ?(lba = 0) bytes =
  Request.Block
    { Request.b_kind = Request.Read; b_lba = lba; b_bytes = bytes; b_sync = false }

(* ------------------------------------------------------------------ *)
(* Consistency LabMod                                                  *)
(* ------------------------------------------------------------------ *)

let test_consistency_durable_tags_writes () =
  in_sim (fun m ->
      let cons =
        Consistency_mod.factory ~uuid:"c"
          ~attrs:[ ("mode", Yamlite.Str "durable") ]
      in
      let saw_sync = ref false in
      let forward r =
        (match r.Request.payload with
        | Request.Block { b_sync; _ } -> saw_sync := b_sync
        | _ -> ());
        Request.Done
      in
      ignore (drive m ~forward cons (mk_req m (block_write 4096)));
      Alcotest.(check bool) "durable write tagged FUA" true !saw_sync;
      Alcotest.(check int) "write counted" 1 (Consistency_mod.writes_seen cons))

let test_consistency_relaxed_passthrough () =
  in_sim (fun m ->
      let cons = Consistency_mod.factory ~uuid:"c" ~attrs:[] in
      Alcotest.(check (option string)) "default mode" (Some "relaxed")
        (Option.map Consistency_mod.mode_name (Consistency_mod.mode cons));
      let saw_sync = ref true in
      let forward r =
        (match r.Request.payload with
        | Request.Block { b_sync; _ } -> saw_sync := b_sync
        | _ -> ());
        Request.Done
      in
      ignore (drive m ~forward cons (mk_req m (block_write 4096)));
      Alcotest.(check bool) "relaxed leaves writes untouched" false !saw_sync)

let test_consistency_ordered_serializes () =
  in_sim (fun m ->
      let cons =
        Consistency_mod.factory ~uuid:"c" ~attrs:[ ("mode", Yamlite.Str "ordered") ]
      in
      let inside = ref 0 and peak = ref 0 in
      let forward _ =
        incr inside;
        if !inside > !peak then peak := !inside;
        Engine.wait 1000.0;
        decr inside;
        Request.Done
      in
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for i = 1 to 4 do
            Engine.spawn m.Machine.engine (fun () ->
                ignore (drive m ~forward cons (mk_req m ~thread:i (block_write 4096)));
                incr finished;
                if !finished = 4 then resume ())
          done);
      Alcotest.(check int) "one write downstream at a time" 1 !peak)

let test_consistency_live_mode_switch () =
  in_sim (fun m ->
      let cons = Consistency_mod.factory ~uuid:"c" ~attrs:[] in
      ignore (drive m cons (mk_req m (Request.Control 2)));
      Alcotest.(check (option string)) "switched to durable" (Some "durable")
        (Option.map Consistency_mod.mode_name (Consistency_mod.mode cons));
      ignore (drive m cons (mk_req m (Request.Control 0)));
      Alcotest.(check (option string)) "back to relaxed" (Some "relaxed")
        (Option.map Consistency_mod.mode_name (Consistency_mod.mode cons)))

(* ------------------------------------------------------------------ *)
(* ARC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_arc_basic_hit () =
  let a = Arc_cache.Arc.create ~capacity:4 in
  Alcotest.(check bool) "cold miss" false (Arc_cache.Arc.touch a 1);
  Alcotest.(check bool) "warm hit" true (Arc_cache.Arc.touch a 1);
  Alcotest.(check bool) "member" true (Arc_cache.Arc.mem a 1)

let test_arc_scan_resistance () =
  (* A hot set re-touched between one-shot scan pages should survive in
     ARC where plain LRU of the same size would evict it. *)
  let cap = 8 in
  let a = Arc_cache.Arc.create ~capacity:cap in
  let hot = [ 1; 2; 3; 4 ] in
  (* Establish frequency for the hot set. *)
  List.iter (fun k -> ignore (Arc_cache.Arc.touch a k)) hot;
  List.iter (fun k -> ignore (Arc_cache.Arc.touch a k)) hot;
  (* Long scan of cold pages interleaved with hot touches. *)
  for i = 100 to 160 do
    ignore (Arc_cache.Arc.touch a i);
    if i mod 4 = 0 then List.iter (fun k -> ignore (Arc_cache.Arc.touch a k)) hot
  done;
  let survivors = List.length (List.filter (Arc_cache.Arc.mem a) hot) in
  Alcotest.(check bool)
    (Printf.sprintf "%d/4 hot pages survive the scan" survivors)
    true (survivors >= 3)

let prop_arc_capacity_invariant =
  QCheck.Test.make ~name:"ARC: resident <= capacity, ghosts bounded, p in range"
    ~count:200
    QCheck.(pair (int_range 1 32) (list small_int))
    (fun (cap, keys) ->
      let a = Arc_cache.Arc.create ~capacity:cap in
      List.for_all
        (fun k ->
          ignore (Arc_cache.Arc.touch a k);
          Arc_cache.Arc.live_count a <= cap
          && Arc_cache.Arc.live_count a + Arc_cache.Arc.ghost_count a <= (2 * cap) + 1
          && Arc_cache.Arc.p a >= 0
          && Arc_cache.Arc.p a <= cap)
        keys)

let prop_arc_hit_iff_resident =
  QCheck.Test.make ~name:"ARC: touch reports hit exactly when resident" ~count:200
    QCheck.(list (int_range 0 20))
    (fun keys ->
      let a = Arc_cache.Arc.create ~capacity:8 in
      List.for_all
        (fun k ->
          let resident = Arc_cache.Arc.mem a k in
          Arc_cache.Arc.touch a k = resident)
        keys)

let test_arc_mod_interchangeable_with_lru () =
  (* Same attributes, same stack slot, same behaviour contract. *)
  in_sim (fun m ->
      let arc =
        Arc_cache.factory () ~uuid:"arc" ~attrs:[ ("capacity_mb", Yamlite.Int 1) ]
      in
      let downstream = ref 0 in
      let forward _ =
        incr downstream;
        Request.Done
      in
      ignore (drive m ~forward arc (mk_req m (block_write ~lba:7 4096)));
      Alcotest.(check int) "write absorbed" 0 !downstream;
      let r = drive m ~forward arc (mk_req m (block_read ~lba:7 4096)) in
      Alcotest.(check bool) "read hit" true (r = Request.Size 4096);
      Alcotest.(check int) "hits" 1 (Arc_cache.hits arc);
      ignore (drive m ~forward arc (mk_req m (block_read ~lba:4242 4096)));
      Alcotest.(check int) "miss forwarded" 1 !downstream;
      (* FUA passthrough, like the LRU mod. *)
      ignore (drive m ~forward arc (mk_req m (block_write ~sync:true 4096)));
      Alcotest.(check int) "sync write bypasses" 2 !downstream)

(* ------------------------------------------------------------------ *)
(* Repos & trust                                                       *)
(* ------------------------------------------------------------------ *)

let noop_factory : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  Labmod.make ~name:"thirdparty" ~uuid ~mod_type:Labmod.Control
    {
      Labmod.operate = (fun _ _ _ -> Request.Done);
      est_processing_time = Labmod.default_est;
      state_update = (fun s -> s);
      state_repair = (fun _ -> ());
    }

let test_repo_trust_assignment () =
  let reg = Registry.create () in
  let repos = Repo.create ~runtime_uid:0 () in
  (match Repo.mount_repo repos reg ~name:"official" ~owner_uid:0 ~mods:[ ("off_mod", noop_factory) ] with
  | Ok Repo.Trusted -> ()
  | _ -> Alcotest.fail "runtime-owned repo should be trusted");
  (match Repo.mount_repo repos reg ~name:"community" ~owner_uid:1000 ~mods:[ ("com_mod", noop_factory) ] with
  | Ok Repo.Untrusted -> ()
  | _ -> Alcotest.fail "user repo should be untrusted");
  Alcotest.(check bool) "factories installed" true
    (Registry.find_factory reg "off_mod" <> None
    && Registry.find_factory reg "com_mod" <> None);
  Alcotest.(check bool) "builtin mods trusted" true
    (Repo.trust_of_mod repos "not_from_any_repo" = Repo.Trusted)

let test_repo_quota_and_collisions () =
  let reg = Registry.create () in
  let repos = Repo.create ~runtime_uid:0 ~max_repos_per_user:2 () in
  let mount i mods =
    Repo.mount_repo repos reg ~name:(Printf.sprintf "r%d" i) ~owner_uid:5 ~mods
  in
  (match mount 1 [ ("m1", noop_factory) ] with Ok _ -> () | Error e -> Alcotest.fail e);
  (match mount 2 [ ("m2", noop_factory) ] with Ok _ -> () | Error e -> Alcotest.fail e);
  (match mount 3 [ ("m3", noop_factory) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "quota should reject the third repo");
  (* Name collision with an installed implementation. *)
  let repos2 = Repo.create ~runtime_uid:0 () in
  (match
     Repo.mount_repo repos2 reg ~name:"dup" ~owner_uid:0 ~mods:[ ("m1", noop_factory) ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "collision should be rejected");
  (* Unmount removes the factories. *)
  (match Repo.unmount_repo repos reg ~name:"r1" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "factory gone" true (Registry.find_factory reg "m1" = None)

let test_repo_untrusted_stack_rejected () =
  let reg = Registry.create () in
  let repos = Repo.create ~runtime_uid:0 () in
  ignore
    (Repo.mount_repo repos reg ~name:"community" ~owner_uid:1000
       ~mods:[ ("com_mod", noop_factory) ]);
  let spec exec =
    Result.get_ok
      (Stack_spec.parse
         (Printf.sprintf
            "mount: \"x::/m\"\nrules:\n  exec_mode: %s\ndag:\n  - uuid: v1\n    mod: com_mod"
            exec))
  in
  (match Repo.validate_stack_trust repos (spec "async") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "untrusted mod must not run inside the Runtime");
  match Repo.validate_stack_trust repos (spec "sync") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_runtime_mount_enforces_trust () =
  in_sim (fun m ->
      let nvme = Lab_device.Device.create m.Machine.engine Lab_device.Profile.nvme in
      let backend = Lab_mods.Mods_env.backend_of_device m nvme in
      let rt =
        Lab_runtime.Runtime.create m ~backends:[ ("nvme", backend) ]
          ~default_backend:"nvme" ()
      in
      (match
         Lab_runtime.Runtime.mount_repo rt ~name:"third" ~owner_uid:1000
           ~mods:[ ("sketchy", noop_factory) ]
       with
      | Ok Repo.Untrusted -> ()
      | _ -> Alcotest.fail "expected untrusted mount");
      let spec exec =
        Printf.sprintf
          "mount: \"x::/m\"\nrules:\n  exec_mode: %s\ndag:\n  - uuid: v1\n    mod: sketchy"
          exec
      in
      (match Lab_runtime.Runtime.mount_text rt (spec "async") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "async untrusted stack must be rejected");
      match Lab_runtime.Runtime.mount_text rt (spec "sync") with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)
(* Runtime configuration files                                         *)
(* ------------------------------------------------------------------ *)

let test_run_config_defaults () =
  match Lab_runtime.Run_config.parse "" with
  | Ok c ->
      Alcotest.(check int) "default workers"
        Lab_runtime.Runtime.default_config.Lab_runtime.Runtime.nworkers
        c.Lab_runtime.Runtime.nworkers
  | Error e -> Alcotest.fail e

let test_run_config_full () =
  let doc =
    {|
workers: 12
busy_poll: true
admin_period_us: 500
worker_spin_us: 10
policy:
  kind: dynamic
  max_workers: 10
  threshold: 0.3
  lq_cutoff_us: 250
|}
  in
  match Lab_runtime.Run_config.parse doc with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Alcotest.(check int) "workers" 12 c.Lab_runtime.Runtime.nworkers;
      Alcotest.(check bool) "busy poll" true c.Lab_runtime.Runtime.workers_busy_poll;
      Alcotest.(check (float 1e-9)) "admin period" 5e5
        c.Lab_runtime.Runtime.admin_period_ns;
      (match c.Lab_runtime.Runtime.policy with
      | Lab_runtime.Orchestrator.Dynamic { max_workers; threshold; lq_cutoff_ns } ->
          Alcotest.(check int) "max workers" 10 max_workers;
          Alcotest.(check (float 1e-9)) "threshold" 0.3 threshold;
          Alcotest.(check (float 1e-9)) "cutoff" 250_000.0 lq_cutoff_ns
      | _ -> Alcotest.fail "expected dynamic policy")

let test_run_config_rejects_bad () =
  (match Lab_runtime.Run_config.parse "workers: 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero workers should be rejected");
  match Lab_runtime.Run_config.parse "policy:\n  kind: quantum" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy should be rejected"

(* ------------------------------------------------------------------ *)
(* Mod harness (debugging mode)                                        *)
(* ------------------------------------------------------------------ *)

let test_harness_runs_mod_in_isolation () =
  let h =
    Lab_runtime.Mod_harness.create (fun _m -> Compress_mod.factory)
  in
  let result, elapsed =
    Lab_runtime.Mod_harness.run h (block_write (1 lsl 20))
  in
  Alcotest.(check bool) "completed" true (Request.is_ok result);
  (* ~0.625 ns/B over 1 MiB: the harness observes the charged time. *)
  Alcotest.(check bool)
    (Printf.sprintf "compression cpu measured (%.0f ns)" elapsed)
    true
    (elapsed > 5e5 && elapsed < 1e6);
  match Lab_runtime.Mod_harness.forwarded h with
  | [ fwd ] ->
      Alcotest.(check int) "halved downstream" (1 lsl 19) (Request.bytes_of fwd)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 forward, got %d" (List.length l))

let test_harness_scripted_downstream () =
  (* Script the downstream to fail and watch the module surface it. *)
  let h =
    Lab_runtime.Mod_harness.create
      ~downstream:(fun _ -> Request.Failed "injected fault")
      (fun _m -> Noop_sched.factory ~nqueues:4)
  in
  let result, _ = Lab_runtime.Mod_harness.run h (block_write 4096) in
  (match result with
  | Request.Failed "injected fault" -> ()
  | r -> Alcotest.fail (Fmt.str "fault not propagated: %a" Request.pp_result r));
  Lab_runtime.Mod_harness.clear_forwarded h;
  Alcotest.(check int) "log cleared" 0
    (List.length (Lab_runtime.Mod_harness.forwarded h))

let test_harness_driver_with_device () =
  let h =
    Lab_runtime.Mod_harness.create (fun m ->
        let dev =
          Lab_device.Device.create m.Machine.engine Lab_device.Profile.nvme
        in
        let blk = Lab_kernel.Blk.create m dev ~sched:Lab_kernel.Blk.Noop in
        Kernel_driver.factory ~blk)
  in
  let result, elapsed = Lab_runtime.Mod_harness.run h (block_write 4096) in
  Alcotest.(check bool) "driver completed" true (result = Request.Size 4096);
  Alcotest.(check bool) "device time observed" true (elapsed > 8000.0)

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

let test_labfs_provenance () =
  in_sim (fun m ->
      let fs = Labfs.factory ~total_blocks:100000 ~nworkers:2 () ~uuid:"fs" ~attrs:[] in
      let forward _ = Request.Done in
      let exec payload = ignore (drive m ~forward fs (mk_req m (Request.Posix payload))) in
      exec (Request.Create { path = "/a" });
      exec (Request.Pwrite { fd = 3; path = "/a"; off = 0; bytes = 8192 });
      exec (Request.Rename { src = "/a"; dst = "/b" });
      exec (Request.Pwrite { fd = 3; path = "/b"; off = 8192; bytes = 4096 });
      (* Unrelated traffic must not appear in /b's history. *)
      exec (Request.Create { path = "/noise" });
      exec (Request.Pwrite { fd = 4; path = "/noise"; off = 0; bytes = 4096 });
      let history = Labfs.provenance fs "/b" in
      Alcotest.(check int) "create + 2 writes + rename" 4 (List.length history);
      (match history with
      | Labfs.Rec_create { path = "/a"; _ } :: _ -> ()
      | _ -> Alcotest.fail "history must start at the original create");
      Alcotest.(check bool) "rename recorded" true
        (List.exists
           (function Labfs.Rec_rename { dst = "/b"; _ } -> true | _ -> false)
           history);
      Alcotest.(check (list int)) "no history for missing files" []
        (List.map (fun _ -> 0) (Labfs.provenance fs "/ghost")))

let () =
  Alcotest.run "lab_extensions"
    [
      ( "consistency",
        [
          Alcotest.test_case "durable tags FUA" `Quick test_consistency_durable_tags_writes;
          Alcotest.test_case "relaxed passthrough" `Quick
            test_consistency_relaxed_passthrough;
          Alcotest.test_case "ordered serializes" `Quick
            test_consistency_ordered_serializes;
          Alcotest.test_case "live mode switch" `Quick test_consistency_live_mode_switch;
        ] );
      ( "arc",
        [
          Alcotest.test_case "basic hit" `Quick test_arc_basic_hit;
          Alcotest.test_case "scan resistance" `Quick test_arc_scan_resistance;
          Alcotest.test_case "interchangeable with lru" `Quick
            test_arc_mod_interchangeable_with_lru;
          QCheck_alcotest.to_alcotest prop_arc_capacity_invariant;
          QCheck_alcotest.to_alcotest prop_arc_hit_iff_resident;
        ] );
      ( "repos",
        [
          Alcotest.test_case "trust assignment" `Quick test_repo_trust_assignment;
          Alcotest.test_case "quota & collisions" `Quick test_repo_quota_and_collisions;
          Alcotest.test_case "untrusted stack rejected" `Quick
            test_repo_untrusted_stack_rejected;
          Alcotest.test_case "runtime enforces trust" `Quick
            test_runtime_mount_enforces_trust;
        ] );
      ( "run-config",
        [
          Alcotest.test_case "defaults" `Quick test_run_config_defaults;
          Alcotest.test_case "full document" `Quick test_run_config_full;
          Alcotest.test_case "rejects bad" `Quick test_run_config_rejects_bad;
        ] );
      ( "mod-harness",
        [
          Alcotest.test_case "isolated run" `Quick test_harness_runs_mod_in_isolation;
          Alcotest.test_case "scripted downstream" `Quick
            test_harness_scripted_downstream;
          Alcotest.test_case "driver with device" `Quick
            test_harness_driver_with_device;
        ] );
      ( "provenance",
        [ Alcotest.test_case "file history" `Quick test_labfs_provenance ] );
    ]
