(* Tests for lab_ipc: ring buffer semantics, shmem grants, queue pairs,
   IPC manager liveness. *)

open Lab_sim
open Lab_ipc

let in_sim f =
  let e = Engine.create () in
  let result = ref None in
  Engine.spawn e (fun () -> result := Some (f e));
  Engine.run e;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_capacity_pow2 () =
  Alcotest.(check int) "rounds up" 8 (Ring.capacity (Ring.create ~capacity:5));
  Alcotest.(check int) "exact" 4 (Ring.capacity (Ring.create ~capacity:4))

let test_ring_fifo () =
  let r = Ring.create ~capacity:4 in
  List.iter (fun x -> assert (Ring.try_push r x)) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "peek" (Some 1) (Ring.peek r);
  Alcotest.(check (option int)) "pop1" (Some 1) (Ring.try_pop r);
  Alcotest.(check (option int)) "pop2" (Some 2) (Ring.try_pop r);
  assert (Ring.try_push r 4);
  Alcotest.(check (option int)) "pop3" (Some 3) (Ring.try_pop r);
  Alcotest.(check (option int)) "pop4" (Some 4) (Ring.try_pop r);
  Alcotest.(check (option int)) "empty" None (Ring.try_pop r)

let test_ring_full () =
  let r = Ring.create ~capacity:2 in
  Alcotest.(check bool) "push1" true (Ring.try_push r 1);
  Alcotest.(check bool) "push2" true (Ring.try_push r 2);
  Alcotest.(check bool) "push3 rejected" false (Ring.try_push r 3);
  Alcotest.(check bool) "full" true (Ring.is_full r)

let prop_ring_wraparound =
  QCheck.Test.make ~name:"ring preserves FIFO across wraparound" ~count:200
    QCheck.(pair (int_range 1 64) (list small_int))
    (fun (cap, xs) ->
      let r = Ring.create ~capacity:cap in
      let out = ref [] in
      (* Feed all xs through a ring that we drain whenever full. *)
      List.iter
        (fun x ->
          if not (Ring.try_push r x) then begin
            (match Ring.try_pop r with
            | Some v -> out := v :: !out
            | None -> ());
            ignore (Ring.try_push r x)
          end)
        xs;
      let rec drain () =
        match Ring.try_pop r with
        | Some v ->
            out := v :: !out;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !out = xs)

let test_ring_batch_ops () =
  let r = Ring.create ~capacity:4 in
  Alcotest.(check int) "space when empty" 4 (Ring.space r);
  Alcotest.(check int) "partial push on full ring" 4
    (Ring.push_n r [ 1; 2; 3; 4; 5; 6 ]);
  Alcotest.(check int) "no space left" 0 (Ring.space r);
  Alcotest.(check (list int)) "pop_n beyond length stops at empty"
    [ 1; 2; 3; 4 ] (Ring.pop_n r 10);
  Alcotest.(check (list int)) "pop_n on empty" [] (Ring.pop_n r 3);
  Alcotest.(check int) "push_n all fit" 2 (Ring.push_n r [ 7; 8 ]);
  Alcotest.(check (list int)) "pop_n exact" [ 7 ] (Ring.pop_n r 1);
  Alcotest.(check (option int)) "single pop still FIFO" (Some 8)
    (Ring.try_pop r)

(* Interleaving batch and single-entry operations must preserve FIFO
   order and the lifetime push count: drive a ring with a random op
   sequence next to a plain list model. *)
let prop_ring_batch_fifo =
  let op =
    QCheck.(
      oneof
        [
          map (fun xs -> `Push_n xs) (list_of_size Gen.(0 -- 6) small_int);
          map (fun x -> `Push x) small_int;
          map (fun n -> `Pop_n n) (int_range 0 6);
          always `Pop;
        ])
  in
  QCheck.Test.make ~name:"batch/single interleavings keep FIFO + total_pushed"
    ~count:300
    QCheck.(pair (int_range 1 16) (list op))
    (fun (cap, ops) ->
      let r = Ring.create ~capacity:cap in
      let model = ref [] (* queued, oldest first *) and pushed = ref 0 in
      let popped = ref [] and popped_model = ref [] in
      let push_model xs n =
        let took = ref 0 in
        List.iter
          (fun x ->
            if !took < n then begin
              model := !model @ [ x ];
              incr took
            end)
          xs;
        pushed := !pushed + n
      in
      let pop_model () =
        match !model with
        | [] -> ()
        | x :: rest ->
            model := rest;
            popped_model := x :: !popped_model
      in
      List.iter
        (function
          | `Push_n xs -> push_model xs (Ring.push_n r xs)
          | `Push x -> if Ring.try_push r x then push_model [ x ] 1
          | `Pop_n n ->
              let vs = Ring.pop_n r n in
              popped := List.rev_append vs !popped;
              List.iter (fun _ -> pop_model ()) vs
          | `Pop -> (
              match Ring.try_pop r with
              | Some v ->
                  popped := v :: !popped;
                  pop_model ()
              | None -> ()))
        ops;
      (* Drain what's left; the full pop order must equal everything the
         model saw queued, oldest first. *)
      let tail = Ring.pop_n r (Ring.length r) in
      popped := List.rev_append tail !popped;
      Ring.total_pushed r = !pushed
      && List.rev !popped = List.rev !popped_model @ !model)

let prop_ring_length_invariant =
  QCheck.Test.make ~name:"ring length = pushes - pops" ~count:200
    QCheck.(list bool)
    (fun ops ->
      let r = Ring.create ~capacity:8 in
      let pushes = ref 0 and pops = ref 0 in
      List.iteri
        (fun i op ->
          if op then begin
            if Ring.try_push r i then incr pushes
          end
          else if Ring.try_pop r <> None then incr pops)
        ops;
      Ring.length r = !pushes - !pops)

(* ------------------------------------------------------------------ *)
(* Shmem                                                               *)
(* ------------------------------------------------------------------ *)

let test_shmem_grant_map () =
  let s = Shmem.create () in
  let r = Shmem.allocate s ~owner:1 ~size:4096 in
  Shmem.map s r 1;
  Alcotest.(check bool) "owner mapped" true (Shmem.is_mapped s r 1);
  Alcotest.check_raises "stranger denied"
    (Shmem.Permission_denied "process 2 has no grant for region 0")
    (fun () -> Shmem.map s r 2);
  Shmem.grant s r 2;
  Shmem.map s r 2;
  Alcotest.(check bool) "granted process mapped" true (Shmem.is_mapped s r 2)

let test_shmem_same_uid_isolation () =
  (* The paper stresses isolation even among processes of the same user:
     grants are per-process, not per-uid. *)
  let s = Shmem.create () in
  let r = Shmem.allocate s ~owner:10 ~size:4096 in
  (try
     Shmem.map s r 11;
     Alcotest.fail "expected denial"
   with Shmem.Permission_denied _ -> ());
  Alcotest.(check bool) "not mapped" false (Shmem.is_mapped s r 11)

let test_shmem_revoke_and_free () =
  let s = Shmem.create () in
  let r = Shmem.allocate s ~owner:1 ~size:8192 in
  Shmem.map s r 1;
  (try
     Shmem.free s r;
     Alcotest.fail "free should fail while mapped"
   with Invalid_argument _ -> ());
  Shmem.revoke s r 1;
  Alcotest.(check bool) "revoke unmaps" false (Shmem.is_mapped s r 1);
  Shmem.free s r;
  Alcotest.(check int) "no regions" 0 (Shmem.region_count s)

let test_shmem_accounting () =
  let s = Shmem.create () in
  let _ = Shmem.allocate s ~owner:1 ~size:4096 in
  let r2 = Shmem.allocate s ~owner:1 ~size:8192 in
  Alcotest.(check int) "total" 12288 (Shmem.total_allocated s);
  Shmem.free s r2;
  Alcotest.(check int) "after free" 4096 (Shmem.total_allocated s)

(* ------------------------------------------------------------------ *)
(* Qp                                                                  *)
(* ------------------------------------------------------------------ *)

let test_qp_roundtrip () =
  in_sim (fun e ->
      let qp = Qp.create ~role:Qp.Primary ~ordering:Qp.Ordered ~id:1 () in
      let served = ref None in
      Engine.spawn e (fun () ->
          (* worker: poll until a request shows up, then complete it *)
          let rec loop () =
            match Qp.poll_sq qp with
            | Some v ->
                Engine.wait 100.0;
                Qp.complete qp (v * 2)
            | None ->
                Engine.wait 10.0;
                loop ()
          in
          loop ());
      Qp.submit qp 21;
      served := Some (Qp.await_completion qp);
      Alcotest.(check (option int)) "doubled" (Some 42) !served)

let test_qp_doorbell_wakes_worker () =
  in_sim (fun e ->
      let qp = Qp.create ~role:Qp.Primary ~ordering:Qp.Ordered ~id:1 () in
      let bell = Waitq.create () in
      Qp.set_doorbell qp (Some bell);
      let woken_at = ref Float.nan in
      Engine.spawn e (fun () ->
          (* worker parks on its doorbell rather than busy-polling *)
          let slot = ref None in
          Waitq.park bell slot;
          woken_at := Engine.now e;
          match Qp.poll_sq qp with
          | Some v -> Qp.complete qp v
          | None -> Alcotest.fail "doorbell rang with empty queue");
      Engine.wait 500.0;
      Qp.submit qp 7;
      ignore (Qp.await_completion qp);
      Alcotest.(check (float 1e-9)) "woken exactly at submit" 500.0 !woken_at)

let test_qp_backpressure () =
  in_sim (fun e ->
      let qp = Qp.create ~sq_depth:2 ~role:Qp.Primary ~ordering:Qp.Ordered ~id:1 () in
      Engine.spawn e (fun () ->
          (* slow worker drains one request every 1000 ns *)
          for _ = 1 to 4 do
            let rec poll () =
              match Qp.poll_sq qp with
              | Some _ -> ()
              | None ->
                  Engine.wait 50.0;
                  poll ()
            in
            poll ();
            Engine.wait 1000.0
          done);
      let t0 = Engine.now e in
      for i = 1 to 4 do
        Qp.submit qp i
      done;
      Alcotest.(check bool) "submission throttled by full ring" true
        (Engine.now e -. t0 > 500.0))

let test_qp_submit_n_one_doorbell () =
  in_sim (fun _e ->
      let qp = Qp.create ~role:Qp.Primary ~ordering:Qp.Ordered ~id:1 () in
      Qp.submit_n qp [ 1; 2; 3; 4 ];
      Alcotest.(check int) "one ring for the whole batch" 1
        (Qp.doorbell_rings qp);
      Qp.submit qp 5;
      Qp.submit qp 6;
      Alcotest.(check int) "singles ring per entry" 3 (Qp.doorbell_rings qp);
      Qp.submit_n qp [];
      Alcotest.(check int) "empty batch does not ring" 3 (Qp.doorbell_rings qp);
      Alcotest.(check (list int)) "batch then singles, FIFO" [ 1; 2; 3; 4; 5; 6 ]
        (Qp.poll_sq_n qp 16))

let test_qp_batch_backpressure () =
  in_sim (fun e ->
      let qp =
        Qp.create ~sq_depth:2 ~role:Qp.Primary ~ordering:Qp.Ordered ~id:1 ()
      in
      let drained = ref [] in
      Engine.spawn e (fun () ->
          (* worker drains pairs every 1000 ns; batch pops free SQ slots
             and wake the parked producer *)
          Engine.wait 1000.0;
          for _ = 1 to 3 do
            drained := !drained @ Qp.poll_sq_n qp 2;
            Engine.wait 1000.0
          done);
      let t0 = Engine.now e in
      Qp.submit_n qp [ 1; 2; 3; 4; 5; 6 ];
      Alcotest.(check bool) "producer parked until slots freed" true
        (Engine.now e -. t0 >= 1000.0);
      Alcotest.(check bool) "stalls counted" true (Qp.sq_stalls qp > 0);
      Engine.wait 5000.0;
      Alcotest.(check (list int)) "order preserved through stalls"
        [ 1; 2; 3; 4; 5; 6 ] !drained;
      Alcotest.(check int) "still one doorbell" 1 (Qp.doorbell_rings qp))

let test_qp_marks () =
  let qp = Qp.create ~role:Qp.Primary ~ordering:Qp.Unordered ~id:3 () in
  Alcotest.(check bool) "starts normal" true (Qp.mark qp = Qp.Normal);
  Qp.set_mark qp Qp.Update_pending;
  Alcotest.(check bool) "pending" true (Qp.mark qp = Qp.Update_pending);
  Qp.set_mark qp Qp.Update_acked;
  Alcotest.(check bool) "acked" true (Qp.mark qp = Qp.Update_acked)

let test_qp_depth_tracking () =
  in_sim (fun _e ->
      let qp = Qp.create ~role:Qp.Primary ~ordering:Qp.Ordered ~id:1 () in
      Qp.submit qp 1;
      Qp.submit qp 2;
      Alcotest.(check int) "sq depth" 2 (Qp.sq_depth qp);
      Alcotest.(check int) "total submitted" 2 (Qp.total_submitted qp);
      ignore (Qp.poll_sq qp);
      Alcotest.(check int) "after poll" 1 (Qp.sq_depth qp))

(* ------------------------------------------------------------------ *)
(* Ipc_manager                                                         *)
(* ------------------------------------------------------------------ *)

let test_ipc_connect_and_qps () =
  in_sim (fun e ->
      let m : int Ipc_manager.t = Ipc_manager.create e in
      let conn = Ipc_manager.connect m ~pid:100 ~uid:1000 in
      Alcotest.(check (option int)) "credentials recorded" (Some 1000)
        (Ipc_manager.credentials m ~pid:100);
      let q1 =
        Ipc_manager.create_qp m conn ~role:Qp.Primary ~ordering:Qp.Ordered ()
      in
      let q2 =
        Ipc_manager.create_qp m conn ~role:Qp.Intermediate ~ordering:Qp.Unordered ()
      in
      Alcotest.(check int) "two qps" 2 (List.length (Ipc_manager.qps m));
      Alcotest.(check int) "one primary" 1
        (List.length (Ipc_manager.primary_qps m));
      Alcotest.(check bool) "lookup q1" true
        (match Ipc_manager.qp m (Qp.id q1) with
        | Some q -> q == q1
        | None -> false);
      ignore q2;
      Ipc_manager.disconnect m conn;
      Alcotest.(check int) "qps torn down" 0 (List.length (Ipc_manager.qps m));
      Alcotest.(check (option int)) "creds gone" None
        (Ipc_manager.credentials m ~pid:100))

let test_ipc_connect_charges_handshake () =
  let elapsed =
    in_sim (fun e ->
        let m : int Ipc_manager.t = Ipc_manager.create e in
        let t0 = Engine.now e in
        let _ = Ipc_manager.connect m ~pid:1 ~uid:0 in
        Engine.now e -. t0)
  in
  Alcotest.(check bool) "handshake took time" true (elapsed > 0.0)

let test_ipc_offline_online () =
  in_sim (fun e ->
      let m : int Ipc_manager.t = Ipc_manager.create e in
      Ipc_manager.set_online m false;
      let came_back = ref None in
      Engine.spawn e (fun () ->
          came_back := Some (Ipc_manager.wait_online m ~timeout_ns:1e9));
      Engine.spawn e (fun () ->
          Engine.wait 5e6;
          Ipc_manager.set_online m true);
      Engine.wait 1e7;
      Alcotest.(check (option bool)) "waiter saw restart" (Some true) !came_back)

let test_ipc_offline_timeout () =
  in_sim (fun e ->
      let m : int Ipc_manager.t = Ipc_manager.create e in
      Ipc_manager.set_online m false;
      let result = ref None in
      Engine.spawn e (fun () ->
          result := Some (Ipc_manager.wait_online m ~timeout_ns:2e6));
      Engine.wait 1e8;
      Alcotest.(check (option bool)) "timed out" (Some false) !result)

let () =
  Alcotest.run "lab_ipc"
    [
      ( "ring",
        [
          Alcotest.test_case "capacity pow2" `Quick test_ring_capacity_pow2;
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "full" `Quick test_ring_full;
          Alcotest.test_case "batch ops" `Quick test_ring_batch_ops;
          QCheck_alcotest.to_alcotest prop_ring_wraparound;
          QCheck_alcotest.to_alcotest prop_ring_batch_fifo;
          QCheck_alcotest.to_alcotest prop_ring_length_invariant;
        ] );
      ( "shmem",
        [
          Alcotest.test_case "grant/map" `Quick test_shmem_grant_map;
          Alcotest.test_case "same-uid isolation" `Quick
            test_shmem_same_uid_isolation;
          Alcotest.test_case "revoke/free" `Quick test_shmem_revoke_and_free;
          Alcotest.test_case "accounting" `Quick test_shmem_accounting;
        ] );
      ( "qp",
        [
          Alcotest.test_case "roundtrip" `Quick test_qp_roundtrip;
          Alcotest.test_case "doorbell" `Quick test_qp_doorbell_wakes_worker;
          Alcotest.test_case "backpressure" `Quick test_qp_backpressure;
          Alcotest.test_case "batched doorbell" `Quick
            test_qp_submit_n_one_doorbell;
          Alcotest.test_case "batched backpressure" `Quick
            test_qp_batch_backpressure;
          Alcotest.test_case "marks" `Quick test_qp_marks;
          Alcotest.test_case "depth tracking" `Quick test_qp_depth_tracking;
        ] );
      ( "ipc-manager",
        [
          Alcotest.test_case "connect & qps" `Quick test_ipc_connect_and_qps;
          Alcotest.test_case "handshake cost" `Quick
            test_ipc_connect_charges_handshake;
          Alcotest.test_case "offline→online" `Quick test_ipc_offline_online;
          Alcotest.test_case "offline timeout" `Quick test_ipc_offline_timeout;
        ] );
    ]
