(* Tests for lab_mods: LZ77, block allocator, and each LabMod's
   behaviour in isolation (driven through a minimal executor context). *)

open Lab_sim
open Lab_core
open Lab_mods

let in_sim ?(ncores = 8) f =
  let m = Machine.create ~ncores () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* ------------------------------------------------------------------ *)
(* LZ77                                                                *)
(* ------------------------------------------------------------------ *)

let test_lz77_roundtrip_simple () =
  let s = Bytes.of_string "abcabcabcabcabcabc hello hello hello" in
  Alcotest.(check string) "roundtrip"
    (Bytes.to_string s)
    (Bytes.to_string (Lz77.decompress (Lz77.compress s)))

let test_lz77_compresses_redundancy () =
  let s = Bytes.make 65536 'x' in
  let r = Lz77.ratio s in
  Alcotest.(check bool) (Printf.sprintf "ratio %.4f < 0.05" r) true (r < 0.05)

let test_lz77_incompressible () =
  let rng = Rng.create 42 in
  let s = Bytes.init 4096 (fun _ -> Char.chr (Rng.int rng 256)) in
  Alcotest.(check string) "random data survives"
    (Bytes.to_string s)
    (Bytes.to_string (Lz77.decompress (Lz77.compress s)))

let test_lz77_empty () =
  Alcotest.(check int) "empty" 0
    (Bytes.length (Lz77.decompress (Lz77.compress Bytes.empty)))

let prop_lz77_roundtrip =
  QCheck.Test.make ~name:"lz77 roundtrip on arbitrary strings" ~count:300
    QCheck.(string_gen Gen.(char_range 'a' 'f'))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.to_string (Lz77.decompress (Lz77.compress b)) = s)

let prop_lz77_roundtrip_binary =
  QCheck.Test.make ~name:"lz77 roundtrip on binary strings" ~count:200
    QCheck.string
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.to_string (Lz77.decompress (Lz77.compress b)) = s)

let test_lz77_corrupt_rejected () =
  (try
     ignore (Lz77.decompress (Bytes.of_string "\x01\xff\xff\x10\x00"));
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Block allocator                                                     *)
(* ------------------------------------------------------------------ *)

let test_alloc_basic () =
  let a = Block_alloc.create ~total_blocks:1000 ~workers:4 () in
  Alcotest.(check int) "all free" 1000 (Block_alloc.free_blocks a);
  let blocks = Block_alloc.alloc a ~worker:0 10 in
  Alcotest.(check int) "ten allocated" 10 (List.length blocks);
  Alcotest.(check int) "990 free" 990 (Block_alloc.free_blocks a);
  Block_alloc.free a ~worker:0 blocks;
  Alcotest.(check int) "restored" 1000 (Block_alloc.free_blocks a)

let test_alloc_steals () =
  let a = Block_alloc.create ~total_blocks:100 ~workers:4 ~steal_chunk:8 () in
  (* Worker 0 owns 25 blocks; asking for 60 forces steals. *)
  let blocks = Block_alloc.alloc a ~worker:0 60 in
  Alcotest.(check int) "got 60" 60 (List.length blocks);
  Alcotest.(check bool) "steal happened" true (Block_alloc.steals a > 0);
  Alcotest.(check int) "40 left" 40 (Block_alloc.free_blocks a)

let test_alloc_exhaustion () =
  let a = Block_alloc.create ~total_blocks:10 ~workers:2 () in
  ignore (Block_alloc.alloc a ~worker:0 10);
  try
    ignore (Block_alloc.alloc a ~worker:1 1);
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let prop_alloc_no_double_allocation =
  QCheck.Test.make ~name:"allocator never hands out a block twice" ~count:100
    QCheck.(pair (int_range 1 8) (small_list (int_range 1 40)))
    (fun (workers, asks) ->
      let a = Block_alloc.create ~total_blocks:2000 ~workers ~steal_chunk:16 () in
      let seen = Hashtbl.create 256 in
      List.for_all
        (fun n ->
          let blocks =
            try Block_alloc.alloc a ~worker:(n mod workers) n with Failure _ -> []
          in
          List.for_all
            (fun b ->
              if Hashtbl.mem seen b then false
              else begin
                Hashtbl.replace seen b ();
                true
              end)
            blocks)
        asks)

let prop_alloc_conservation =
  QCheck.Test.make ~name:"allocated + free = total" ~count:100
    QCheck.(small_list (int_range 1 30))
    (fun asks ->
      let total = 1000 in
      let a = Block_alloc.create ~total_blocks:total ~workers:4 ~steal_chunk:32 () in
      let allocated = ref 0 in
      List.iter
        (fun n ->
          match Block_alloc.alloc a ~worker:n n with
          | blocks -> allocated := !allocated + List.length blocks
          | exception Failure _ -> ())
        asks;
      !allocated + Block_alloc.free_blocks a = total)

let test_alloc_resize_preserves () =
  let a = Block_alloc.create ~total_blocks:1000 ~workers:4 () in
  ignore (Block_alloc.alloc a ~worker:0 100);
  Block_alloc.resize a ~workers:8;
  Alcotest.(check int) "free preserved" 900 (Block_alloc.free_blocks a);
  Alcotest.(check int) "new worker count" 8 (Block_alloc.workers a);
  let more = Block_alloc.alloc a ~worker:7 50 in
  Alcotest.(check int) "post-resize alloc works" 50 (List.length more)

(* ------------------------------------------------------------------ *)
(* Minimal harness to drive a single mod                               *)
(* ------------------------------------------------------------------ *)

let mk_req m ?(uid = 0) ?(thread = 0) payload =
  Request.make ~id:1 ~pid:1 ~uid ~thread ~stack_id:1 ~now:(Machine.now m) payload

let drive m ?(forward = fun _ -> Request.Done) (labmod : Labmod.t) req =
  let ctx =
    {
      Labmod.machine = m;
      thread = req.Request.thread;
      forward;
      forward_async = (fun r k -> k (forward r));
    }
  in
  labmod.Labmod.ops.Labmod.operate labmod ctx req

let block_write ?(lba = 0) bytes =
  Request.Block
    { Request.b_kind = Request.Write; b_lba = lba; b_bytes = bytes; b_sync = false }

let block_read ?(lba = 0) bytes =
  Request.Block
    { Request.b_kind = Request.Read; b_lba = lba; b_bytes = bytes; b_sync = false }

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let test_kernel_driver_completes () =
  in_sim (fun m ->
      let dev = Lab_device.Device.create m.Machine.engine Lab_device.Profile.nvme in
      let blk = Lab_kernel.Blk.create m dev ~sched:Lab_kernel.Blk.Noop in
      let kd = Kernel_driver.factory ~blk ~uuid:"kd" ~attrs:[] in
      let r = drive m kd (mk_req m (block_write 4096)) in
      Alcotest.(check bool) "size result" true (r = Request.Size 4096);
      Alcotest.(check int) "device saw the write" 1
        (Lab_device.Device.completed_writes dev))

let test_spdk_faster_than_kernel_driver () =
  let time_with make =
    in_sim (fun m ->
        let dev = Lab_device.Device.create m.Machine.engine Lab_device.Profile.nvme in
        let labmod = make m dev in
        let t0 = Machine.now m in
        ignore (drive m labmod (mk_req m (block_write 4096)));
        Machine.now m -. t0)
  in
  let kd =
    time_with (fun m dev ->
        let blk = Lab_kernel.Blk.create m dev ~sched:Lab_kernel.Blk.Noop in
        Kernel_driver.factory ~blk ~uuid:"kd" ~attrs:[])
  in
  let spdk = time_with (fun _ dev -> Spdk_driver.factory ~device:dev ~uuid:"sp" ~attrs:[]) in
  Alcotest.(check bool)
    (Printf.sprintf "spdk %.0f < kernel driver %.0f" spdk kd)
    true (spdk < kd)

let test_spdk_rejects_hdd () =
  in_sim (fun m ->
      let dev = Lab_device.Device.create m.Machine.engine Lab_device.Profile.hdd in
      try
        ignore (Spdk_driver.factory ~device:dev ~uuid:"sp" ~attrs:[]);
        Alcotest.fail "expected rejection"
      with Invalid_argument _ -> ())

let test_dax_on_pmem () =
  in_sim (fun m ->
      let dev = Lab_device.Device.create m.Machine.engine Lab_device.Profile.pmem in
      let dax = Dax_driver.factory ~device:dev ~uuid:"dax" ~attrs:[] in
      let t0 = Machine.now m in
      ignore (drive m dax (mk_req m (block_write 4096)));
      let dt = Machine.now m -. t0 in
      Alcotest.(check bool) (Printf.sprintf "dax 4K write %.0f < 3000 ns" dt) true
        (dt < 3000.0))

(* ------------------------------------------------------------------ *)
(* Schedulers                                                          *)
(* ------------------------------------------------------------------ *)

let test_noop_sched_core_keying () =
  in_sim (fun m ->
      let sched = Noop_sched.factory ~nqueues:8 ~uuid:"noop" ~attrs:[] in
      let req = mk_req m ~thread:5 (block_write 4096) in
      ignore (drive m sched req);
      Alcotest.(check (option int)) "hctx = thread mod queues" (Some 5)
        req.Request.hint_hctx)

let test_blkswitch_avoids_loaded () =
  in_sim (fun m ->
      let sched = Blkswitch_sched.factory ~nqueues:4 () ~uuid:"bsw" ~attrs:[] in
      (* Occupy queue 0 with a long-running request. *)
      let release = ref None in
      Engine.spawn m.Machine.engine (fun () ->
          let big = mk_req m ~thread:0 (block_write (32 * 1024 * 1024)) in
          ignore
            (drive m
               ~forward:(fun _ ->
                 Engine.suspend (fun r -> release := Some r);
                 Request.Done)
               sched big));
      Engine.wait 10.0;
      let small = mk_req m ~thread:0 (block_write 4096) in
      ignore (drive m sched small);
      (match !release with Some r -> r () | None -> Alcotest.fail "no blocker");
      Alcotest.(check bool) "small request steered off queue 0" true
        (small.Request.hint_hctx <> Some 0 && small.Request.hint_hctx <> None))

(* ------------------------------------------------------------------ *)
(* LRU cache mod                                                       *)
(* ------------------------------------------------------------------ *)

let test_lru_mod_write_back_and_hit () =
  in_sim (fun m ->
      let cache = Lru_cache.factory () ~uuid:"lru" ~attrs:[ ("capacity_mb", Yamlite.Int 1) ] in
      let downstream = ref 0 in
      let forward _ =
        incr downstream;
        Request.Done
      in
      ignore (drive m ~forward cache (mk_req m (block_write ~lba:10 4096)));
      Alcotest.(check int) "write absorbed by the cache" 0 !downstream;
      let r = drive m ~forward cache (mk_req m (block_read ~lba:10 4096)) in
      Alcotest.(check bool) "read served from cache" true (r = Request.Size 4096);
      Alcotest.(check int) "no downstream read" 0 !downstream;
      ignore (drive m ~forward cache (mk_req m (block_read ~lba:999 4096)));
      Alcotest.(check int) "miss went downstream" 1 !downstream;
      Alcotest.(check int) "hit counter" 1 (Lru_cache.hits cache);
      Alcotest.(check int) "miss counter" 1 (Lru_cache.misses cache))

let test_lru_mod_eviction_writes_back () =
  in_sim (fun m ->
      (* 1 MiB capacity = 256 pages; write 300 distinct pages: the 44
         evicted dirty pages must flow downstream — but coalesced into
         adjacent-LBA batches, not one op per page. *)
      let cache = Lru_cache.factory () ~uuid:"lru" ~attrs:[ ("capacity_mb", Yamlite.Int 1) ] in
      let downstream_ops = ref 0 in
      let downstream_pages = ref 0 in
      let forward r =
        (match r.Request.payload with
        | Request.Block { b_kind = Request.Write; b_bytes; _ } ->
            incr downstream_ops;
            downstream_pages := !downstream_pages + (b_bytes / 4096)
        | _ -> ());
        Request.Done
      in
      for i = 0 to 299 do
        ignore (drive m ~forward cache (mk_req m (block_write ~lba:i 4096)))
      done;
      (* Flush whatever is still sitting in the write-back log. *)
      ignore (drive m ~forward cache (mk_req m (Request.Control 0)));
      Alcotest.(check int) "evicted dirty pages written back" 44 !downstream_pages;
      Alcotest.(check bool)
        (Printf.sprintf "coalesced: %d ops < 44 pages" !downstream_ops)
        true
        (!downstream_ops < 44);
      ignore (drive m ~forward cache (mk_req m (block_read ~lba:0 4096)));
      Alcotest.(check int) "early page evicted -> miss" 1 (Lru_cache.misses cache))

(* ------------------------------------------------------------------ *)
(* Permissions mod                                                     *)
(* ------------------------------------------------------------------ *)

let test_permissions_allow_deny () =
  in_sim (fun m ->
      let perm = Permissions.factory ~uuid:"perm" ~attrs:[] in
      Permissions.add_rule perm ~uid:42 ~prefix:"fs::/secret" ~allow:false;
      let ok =
        drive m perm (mk_req m ~uid:42 (Request.Posix (Request.Create { path = "fs::/public/a" })))
      in
      Alcotest.(check bool) "public allowed" true (Request.is_ok ok);
      let denied =
        drive m perm
          (mk_req m ~uid:42 (Request.Posix (Request.Create { path = "fs::/secret/b" })))
      in
      (match denied with
      | Request.Denied _ -> ()
      | _ -> Alcotest.fail "expected denial");
      let other_uid =
        drive m perm
          (mk_req m ~uid:7 (Request.Posix (Request.Create { path = "fs::/secret/b" })))
      in
      Alcotest.(check bool) "rule is per-uid" true (Request.is_ok other_uid))

let test_permissions_default_deny () =
  in_sim (fun m ->
      let perm =
        Permissions.factory ~uuid:"perm"
          ~attrs:[ ("default_allow", Yamlite.Bool false) ]
      in
      Permissions.add_rule perm ~uid:1 ~prefix:"kv::/" ~allow:true;
      let denied = drive m perm (mk_req m ~uid:2 (Request.Kv (Request.Get { key = "kv::/x" }))) in
      (match denied with
      | Request.Denied _ -> ()
      | _ -> Alcotest.fail "expected default deny");
      let ok = drive m perm (mk_req m ~uid:1 (Request.Kv (Request.Get { key = "kv::/x" }))) in
      Alcotest.(check bool) "granted uid passes" true (Request.is_ok ok))

(* ------------------------------------------------------------------ *)
(* Compression mod                                                     *)
(* ------------------------------------------------------------------ *)

let test_compress_shrinks_downstream () =
  in_sim (fun m ->
      let comp =
        Compress_mod.factory ~uuid:"z" ~attrs:[ ("ratio", Yamlite.Float 0.25) ]
      in
      let downstream_bytes = ref 0 in
      let forward r =
        downstream_bytes := Request.bytes_of r;
        Request.Done
      in
      ignore (drive m ~forward comp (mk_req m (block_write 40960)));
      Alcotest.(check int) "quarter size downstream" 10240 !downstream_bytes;
      Alcotest.(check int) "bytes saved" (40960 - 10240) (Compress_mod.bytes_saved comp))

let test_compress_charges_cpu_time () =
  in_sim (fun m ->
      let comp = Compress_mod.factory ~uuid:"z" ~attrs:[] in
      let t0 = Machine.now m in
      ignore (drive m comp (mk_req m (block_write (32 * 1024 * 1024)))) ;
      let dt = Machine.now m -. t0 in
      (* 32 MiB at 0.625 ns/B ≈ 21 ms, the paper's ~20 ms compression. *)
      Alcotest.(check bool) (Printf.sprintf "32M compression %.1f ms ≈ 20 ms" (dt /. 1e6))
        true
        (dt > 15e6 && dt < 30e6))

(* ------------------------------------------------------------------ *)
(* LabFS                                                               *)
(* ------------------------------------------------------------------ *)

let labfs m =
  ignore m;
  Labfs.factory ~total_blocks:100000 ~nworkers:4 () ~uuid:"labfs" ~attrs:[]

let test_labfs_create_write_read () =
  in_sim (fun m ->
      let fs = labfs m in
      let forwarded = ref [] in
      let forward r =
        forwarded := r.Request.payload :: !forwarded;
        Request.Done
      in
      ignore (drive m ~forward fs (mk_req m (Request.Posix (Request.Create { path = "/a" }))));
      Alcotest.(check int) "one file" 1 (Labfs.file_count fs);
      let w =
        drive m ~forward fs
          (mk_req m (Request.Posix (Request.Pwrite { fd = 3; path = "/a"; off = 0; bytes = 8192 })))
      in
      Alcotest.(check bool) "write ok" true (Request.is_ok w);
      let inode = Option.get (Labfs.lookup fs "/a") in
      Alcotest.(check int) "size" 8192 inode.Labfs.size;
      Alcotest.(check int) "two blocks" 2 inode.Labfs.nblocks;
      (match !forwarded with
      | Request.Block { b_kind = Request.Write; b_bytes = 8192; _ } :: _ -> ()
      | _ -> Alcotest.fail "expected downstream block write");
      let r =
        drive m ~forward fs
          (mk_req m (Request.Posix (Request.Pread { fd = 3; path = "/a"; off = 0; bytes = 8192 })))
      in
      Alcotest.(check bool) "read ok" true (Request.is_ok r))

let test_labfs_missing_file () =
  in_sim (fun m ->
      let fs = labfs m in
      match
        drive m fs
          (mk_req m (Request.Posix (Request.Pread { fd = 3; path = "/ghost"; off = 0; bytes = 1 })))
      with
      | Request.Failed _ -> ()
      | _ -> Alcotest.fail "expected failure")

let test_labfs_unlink_frees_blocks () =
  in_sim (fun m ->
      let fs = labfs m in
      let forward _ = Request.Done in
      let free0 = Block_alloc.free_blocks (Labfs.allocator fs) in
      ignore (drive m ~forward fs (mk_req m (Request.Posix (Request.Create { path = "/a" }))));
      ignore
        (drive m ~forward fs
           (mk_req m (Request.Posix (Request.Pwrite { fd = 3; path = "/a"; off = 0; bytes = 40960 }))));
      Alcotest.(check int) "blocks consumed" (free0 - 10)
        (Block_alloc.free_blocks (Labfs.allocator fs));
      ignore (drive m ~forward fs (mk_req m (Request.Posix (Request.Unlink { path = "/a" }))));
      Alcotest.(check int) "blocks returned" free0
        (Block_alloc.free_blocks (Labfs.allocator fs));
      Alcotest.(check int) "no files" 0 (Labfs.file_count fs))

let test_labfs_log_replay_equals_state () =
  in_sim (fun m ->
      let fs = labfs m in
      let forward _ = Request.Done in
      let exec payload = ignore (drive m ~forward fs (mk_req m (Request.Posix payload))) in
      exec (Request.Create { path = "/a" });
      exec (Request.Create { path = "/b" });
      exec (Request.Pwrite { fd = 3; path = "/a"; off = 0; bytes = 12288 });
      exec (Request.Unlink { path = "/b" });
      exec (Request.Rename { src = "/a"; dst = "/c" });
      exec (Request.Create { path = "/d" });
      let rebuilt = Labfs.replay (Labfs.log_of fs) in
      let live = List.sort compare (List.map fst (Labfs.inodes_of fs)) in
      let replayed =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) rebuilt [])
      in
      Alcotest.(check (list string)) "same paths" live replayed;
      let c_live = Option.get (Labfs.lookup fs "/c") in
      let c_replayed = Hashtbl.find rebuilt "/c" in
      Alcotest.(check int) "size recovered" c_live.Labfs.size c_replayed.Labfs.size;
      Alcotest.(check int) "blocks recovered" c_live.Labfs.nblocks
        c_replayed.Labfs.nblocks)

let prop_labfs_replay =
  QCheck.Test.make ~name:"labfs: replay(log) = live inode table" ~count:60
    QCheck.(small_list (pair (int_range 0 3) (int_range 0 5)))
    (fun script ->
      in_sim (fun m ->
          let fs = labfs m in
          let forward _ = Request.Done in
          let path i = Printf.sprintf "/f%d" i in
          List.iter
            (fun (op, i) ->
              let payload =
                match op with
                | 0 -> Request.Create { path = path i }
                | 1 -> Request.Pwrite { fd = 3; path = path i; off = 0; bytes = 4096 * (i + 1) }
                | 2 -> Request.Unlink { path = path i }
                | _ -> Request.Rename { src = path i; dst = path (i + 10) }
              in
              ignore (drive m ~forward fs (mk_req m (Request.Posix payload))))
            script;
          let rebuilt = Labfs.replay (Labfs.log_of fs) in
          let live =
            List.sort compare
              (List.map (fun (p, (i : Labfs.inode)) -> (p, i.Labfs.size, i.Labfs.nblocks))
                 (Labfs.inodes_of fs))
          in
          let replayed =
            List.sort compare
              (Hashtbl.fold
                 (fun p (i : Labfs.inode) acc -> (p, i.Labfs.size, i.Labfs.nblocks) :: acc)
                 rebuilt [])
          in
          live = replayed))

(* ------------------------------------------------------------------ *)
(* LabKVS                                                              *)
(* ------------------------------------------------------------------ *)

let test_labkvs_put_get_delete () =
  in_sim (fun m ->
      let kvs = Labkvs.factory ~total_blocks:100000 ~nworkers:4 () ~uuid:"kvs" ~attrs:[] in
      let forward _ = Request.Done in
      let r = drive m ~forward kvs (mk_req m (Request.Kv (Request.Put { key = "k1"; bytes = 8192 }))) in
      Alcotest.(check bool) "put ok" true (Request.is_ok r);
      Alcotest.(check bool) "key exists" true (Labkvs.mem kvs "k1");
      let g = drive m ~forward kvs (mk_req m (Request.Kv (Request.Get { key = "k1" }))) in
      Alcotest.(check bool) "get ok" true (Request.is_ok g);
      let d = drive m ~forward kvs (mk_req m (Request.Kv (Request.Delete { key = "k1" }))) in
      Alcotest.(check bool) "delete ok" true (Request.is_ok d);
      Alcotest.(check int) "empty" 0 (Labkvs.key_count kvs);
      match drive m ~forward kvs (mk_req m (Request.Kv (Request.Get { key = "k1" }))) with
      | Request.Failed _ -> ()
      | _ -> Alcotest.fail "expected failure after delete")

(* ------------------------------------------------------------------ *)
(* Dummy (upgrade target)                                              *)
(* ------------------------------------------------------------------ *)

let test_dummy_counts_and_upgrades () =
  in_sim (fun m ->
      let d1 = Dummy_mod.factory ~tag:"v1" () ~uuid:"d" ~attrs:[] in
      for _ = 1 to 3 do
        ignore (drive m d1 (mk_req m (Request.Control 0)))
      done;
      Alcotest.(check int) "counted" 3 (Dummy_mod.messages d1);
      (* Simulate the upgrade state transfer into v2 code. *)
      let v2_factory = Dummy_mod.factory ~tag:"v2" () in
      let d2 = v2_factory ~uuid:"d" ~attrs:[] in
      d2.Labmod.state <- d2.Labmod.ops.Labmod.state_update d1.Labmod.state;
      Alcotest.(check int) "messages survive upgrade" 3 (Dummy_mod.messages d2);
      Alcotest.(check string) "new code tag" "v2" (Dummy_mod.tag d2))

let () =
  Alcotest.run "lab_mods"
    [
      ( "lz77",
        [
          Alcotest.test_case "roundtrip simple" `Quick test_lz77_roundtrip_simple;
          Alcotest.test_case "compresses redundancy" `Quick
            test_lz77_compresses_redundancy;
          Alcotest.test_case "incompressible" `Quick test_lz77_incompressible;
          Alcotest.test_case "empty" `Quick test_lz77_empty;
          Alcotest.test_case "corrupt rejected" `Quick test_lz77_corrupt_rejected;
          QCheck_alcotest.to_alcotest prop_lz77_roundtrip;
          QCheck_alcotest.to_alcotest prop_lz77_roundtrip_binary;
        ] );
      ( "block-alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "steals" `Quick test_alloc_steals;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "resize" `Quick test_alloc_resize_preserves;
          QCheck_alcotest.to_alcotest prop_alloc_no_double_allocation;
          QCheck_alcotest.to_alcotest prop_alloc_conservation;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "kernel driver" `Quick test_kernel_driver_completes;
          Alcotest.test_case "spdk < kernel driver" `Quick
            test_spdk_faster_than_kernel_driver;
          Alcotest.test_case "spdk rejects hdd" `Quick test_spdk_rejects_hdd;
          Alcotest.test_case "dax on pmem" `Quick test_dax_on_pmem;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "noop keying" `Quick test_noop_sched_core_keying;
          Alcotest.test_case "blk-switch steering" `Quick test_blkswitch_avoids_loaded;
        ] );
      ( "lru-cache",
        [
          Alcotest.test_case "write-back & hit" `Quick
            test_lru_mod_write_back_and_hit;
          Alcotest.test_case "eviction writeback" `Quick
            test_lru_mod_eviction_writes_back;
        ] );
      ( "permissions",
        [
          Alcotest.test_case "allow/deny" `Quick test_permissions_allow_deny;
          Alcotest.test_case "default deny" `Quick test_permissions_default_deny;
        ] );
      ( "compress",
        [
          Alcotest.test_case "shrinks downstream" `Quick test_compress_shrinks_downstream;
          Alcotest.test_case "charges cpu" `Quick test_compress_charges_cpu_time;
        ] );
      ( "labfs",
        [
          Alcotest.test_case "create/write/read" `Quick test_labfs_create_write_read;
          Alcotest.test_case "missing file" `Quick test_labfs_missing_file;
          Alcotest.test_case "unlink frees" `Quick test_labfs_unlink_frees_blocks;
          Alcotest.test_case "log replay" `Quick test_labfs_log_replay_equals_state;
          QCheck_alcotest.to_alcotest prop_labfs_replay;
        ] );
      ( "labkvs",
        [ Alcotest.test_case "put/get/delete" `Quick test_labkvs_put_get_delete ] );
      ( "dummy",
        [ Alcotest.test_case "count & upgrade" `Quick test_dummy_counts_and_upgrades ] );
    ]
