(* Tests for the lab_sim discrete-event simulation substrate. *)

open Lab_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_wait_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      Engine.wait 10.0;
      log := ("a", Engine.now e) :: !log);
  Engine.spawn e (fun () ->
      Engine.wait 5.0;
      log := ("b", Engine.now e) :: !log);
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "events in time order"
    [ ("b", 5.0); ("a", 10.0) ]
    (List.rev !log)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.spawn e (fun () ->
        Engine.wait 7.0;
        log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO among equal timestamps" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_nested_spawn () =
  let e = Engine.create () in
  let finished = ref 0.0 in
  Engine.spawn e (fun () ->
      Engine.wait 3.0;
      Engine.spawn e (fun () ->
          Engine.wait 4.0;
          finished := Engine.now e));
  Engine.run e;
  check_float "child sees parent's clock" 7.0 !finished

let test_engine_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.spawn e (fun () ->
      for _ = 1 to 100 do
        Engine.wait 10.0;
        incr hits
      done);
  Engine.run ~until:55.0 e;
  Alcotest.(check int) "stopped at limit" 5 !hits;
  check_float "clock clamped to limit" 55.0 (Engine.now e)

let test_engine_negative_wait () =
  let e = Engine.create () in
  let ok = ref false in
  Engine.spawn e (fun () ->
      Engine.wait (-5.0);
      ok := Engine.now e = 0.0);
  Engine.run e;
  Alcotest.(check bool) "negative wait is zero" true !ok

let test_engine_suspend_resume () =
  let e = Engine.create () in
  let resumer = ref None in
  let resumed_at = ref Float.nan in
  Engine.spawn e (fun () ->
      Engine.suspend (fun r -> resumer := Some r);
      resumed_at := Engine.now e);
  Engine.spawn e (fun () ->
      Engine.wait 42.0;
      match !resumer with Some r -> r () | None -> Alcotest.fail "no resumer");
  Engine.run e;
  check_float "resumed at resumer's time" 42.0 !resumed_at

let test_engine_resumer_one_shot () =
  let e = Engine.create () in
  let wakeups = ref 0 in
  let resumer = ref None in
  Engine.spawn e (fun () ->
      Engine.suspend (fun r -> resumer := Some r);
      incr wakeups);
  Engine.spawn e (fun () ->
      Engine.wait 1.0;
      let r = Option.get !resumer in
      r ();
      r ();
      r ());
  Engine.run e;
  Alcotest.(check int) "woken exactly once" 1 !wakeups

let test_engine_until_pushback_order () =
  let e = Engine.create () in
  let log = ref [] in
  List.iteri
    (fun i d -> Engine.schedule e d (fun () -> log := (i, Engine.now e) :: !log))
    [ 10.0; 20.0; 20.0; 30.0 ];
  Engine.run ~until:15.0 e;
  Alcotest.(check (list (pair int (float 1e-9))))
    "only the pre-horizon event ran" [ (0, 10.0) ] (List.rev !log);
  (* The event popped past the horizon was pushed back with its original
     (time, seq) key: resuming must preserve same-time FIFO order. *)
  Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9))))
    "pushed-back event keeps its slot"
    [ (0, 10.0); (1, 20.0); (2, 20.0); (3, 30.0) ]
    (List.rev !log)

(* Regression for tick-boundary drift: boundaries are derived as
   base + k*period, so with period 0.1 every sample instant is exactly
   float k *. 0.1 — the old [next_tick +. period] accumulation drifted
   off these values within ten ticks. Exact comparison, epsilon 0. *)
let test_engine_tick_exact_boundaries () =
  let e = Engine.create () in
  let ticks = ref [] in
  Engine.set_tick e ~period:0.1 (fun b -> ticks := b :: !ticks);
  Engine.schedule e 1.0 (fun () -> ());
  Engine.run e;
  let expected = List.init 10 (fun i -> Stdlib.float_of_int (i + 1) *. 0.1) in
  Alcotest.(check (list (float 0.0))) "boundaries exact" expected
    (List.rev !ticks)

let test_engine_timer () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec fn n =
    incr count;
    if n > 1 then Engine.timer e ~ns:50 fn (n - 1)
  in
  Engine.timer e ~ns:50 fn 10;
  Engine.run e;
  Alcotest.(check int) "ten firings" 10 !count;
  check_float "clock advanced 10 * 50ns" 500.0 (Engine.now e);
  Alcotest.(check int) "one event per firing" 10 (Engine.events_executed e)

(* The pooled timer path must not allocate in steady state: slots are
   recycled, times travel through staging cells, dispatch is tagged.
   Budget is <= 2 minor words/event (the occasional calendar-window
   re-anchor writes one boxed float). Native only — bytecode boxes
   everything. *)
let test_engine_timer_alloc_free () =
  let e = Engine.create () in
  let remaining = ref 0 in
  let rec fn arg =
    if !remaining > 0 then begin
      decr remaining;
      Engine.timer e ~ns:100 fn arg
    end
  in
  remaining := 1_000;
  Engine.timer e ~ns:100 fn 0;
  Engine.run e;
  remaining := 5_000;
  Engine.timer e ~ns:100 fn 0;
  let e0 = Engine.events_executed e in
  let w0 = Gc.minor_words () in
  Engine.run e;
  let w1 = Gc.minor_words () in
  let events = Engine.events_executed e - e0 in
  let per_event = (w1 -. w0) /. Stdlib.float_of_int events in
  match Sys.backend_type with
  | Sys.Native ->
      Alcotest.(check bool)
        (Printf.sprintf "timer path allocates <= 2 words/event (got %.3f)"
           per_event)
        true
        (per_event <= 2.0)
  | Sys.Bytecode | Sys.Other _ -> ()

(* stop_all must blank the event pool, not just the queue indices, so
   dropped events release their closures to the GC. *)
let test_engine_stop_all_releases () =
  let e = Engine.create () in
  let freed = ref false in
  let mk () =
    let payload = ref 42 in
    Gc.finalise (fun _ -> freed := true) payload;
    fun () -> ignore !payload
  in
  Engine.schedule e 10.0 (mk ());
  Engine.stop_all e;
  Gc.full_major ();
  Alcotest.(check bool) "stopped engine retains no closures" true !freed

let test_engine_determinism () =
  let run_once () =
    let e = Engine.create () in
    let rng = Rng.create 7 in
    let trace = Buffer.create 256 in
    for i = 1 to 20 do
      Engine.spawn e (fun () ->
          Engine.wait (Rng.float rng 100.0);
          Buffer.add_string trace (Printf.sprintf "%d@%.3f;" i (Engine.now e)))
    done;
    Engine.run e;
    (Buffer.contents trace, Engine.events_executed e)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check (pair string int)) "identical replay" a b

(* ------------------------------------------------------------------ *)
(* Evq                                                                 *)
(* ------------------------------------------------------------------ *)

(* The calendar queue must pop the exact same (time, seq, slot)
   sequence as a binary heap ordered on (time, seq) — the engine's
   byte-identical-output guarantee rests on this. The generator drives
   random push/pop interleavings with duplicate times (same-time FIFO),
   a tiny 8x16ns window so times up to ~1000 constantly overflow into
   the far-future heap and force window advances, and pushes landing at
   or before the drain cursor (schedule-at-now). *)
let prop_evq_matches_heap =
  let key_cmp (t1, s1) (t2, s2) =
    let c = Float.compare t1 t2 in
    if c <> 0 then c else Int.compare s1 s2
  in
  QCheck.Test.make ~name:"evq pops the same (time,seq) sequence as a heap"
    ~count:300
    QCheck.(list (pair (int_range 0 4) small_int))
    (fun ops ->
      let q = Evq.create ~nbuckets:8 ~width:16.0 () in
      let h = Heap.create ~cmp:key_cmp () in
      let seq = ref 0 in
      let ok = ref true in
      let pop_both () =
        let slot = Evq.pop q in
        match Heap.pop h with
        | None -> ok := !ok && slot < 0
        | Some ((time, s), hslot) ->
            ok :=
              !ok && slot = hslot
              && q.Evq.key_out.(0) = time
              && q.Evq.out_seq = s
      in
      List.iter
        (fun (sel, m) ->
          if sel = 0 then pop_both ()
          else begin
            incr seq;
            let time = Stdlib.float_of_int (m * 97 mod 1000) in
            q.Evq.key_in.(0) <- time;
            Evq.push q ~seq:!seq ~slot:!seq;
            Heap.push h (time, !seq) !seq
          end)
        ops;
      while not (Evq.is_empty q) || not (Heap.is_empty h) do
        pop_both ()
      done;
      !ok && Evq.length q = 0)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (fun k -> Heap.push h k (string_of_int k)) [ 5; 3; 9; 1; 7; 1 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 5; 7; 9 ] (drain [])

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any input sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (fun x -> Heap.push h x ()) xs;
      let drained = List.map fst (Heap.to_sorted_list h) in
      drained = List.sort Int.compare xs)

(* Leak regression: a drained or cleared heap must not pin popped
   values — pop blanks the vacated tail slot and an emptied/cleared
   heap drops its backing arrays. *)
let test_heap_releases_entries () =
  let h = Heap.create ~cmp:Int.compare () in
  let freed = ref 0 in
  let add k =
    let v = ref k in
    Gc.finalise (fun _ -> incr freed) v;
    Heap.push h k v
  in
  List.iter add [ 3; 1; 2 ];
  for _ = 1 to 3 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  Alcotest.(check int) "drained heap retains nothing" 3 !freed;
  List.iter add [ 5; 4 ];
  Heap.clear h;
  Gc.full_major ();
  Alcotest.(check int) "cleared heap retains nothing" 5 !freed

let prop_heap_length =
  QCheck.Test.make ~name:"heap length tracks push/pop" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (fun x -> Heap.push h x ()) xs;
      let n = List.length xs in
      let ok = ref (Heap.length h = n) in
      for i = 1 to n do
        ignore (Heap.pop h);
        ok := !ok && Heap.length h = n - i
      done;
      !ok && Heap.pop h = None)

(* ------------------------------------------------------------------ *)
(* Mailbox                                                             *)
(* ------------------------------------------------------------------ *)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Engine.spawn e (fun () ->
      for i = 1 to 4 do
        Mailbox.put mb i
      done);
  Engine.spawn e (fun () ->
      for _ = 1 to 4 do
        got := Mailbox.get mb :: !got
      done);
  Engine.run e;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4 ] (List.rev !got)

let test_mailbox_blocking_get () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let received_at = ref Float.nan in
  Engine.spawn e (fun () ->
      ignore (Mailbox.get mb);
      received_at := Engine.now e);
  Engine.spawn e (fun () ->
      Engine.wait 30.0;
      Mailbox.put mb 1);
  Engine.run e;
  check_float "getter blocked until put" 30.0 !received_at

let test_mailbox_capacity_blocks_put () =
  let e = Engine.create () in
  let mb = Mailbox.create ~capacity:2 () in
  let done_at = ref Float.nan in
  Engine.spawn e (fun () ->
      Mailbox.put mb 1;
      Mailbox.put mb 2;
      Mailbox.put mb 3;
      (* must block until a get *)
      done_at := Engine.now e);
  Engine.spawn e (fun () ->
      Engine.wait 50.0;
      ignore (Mailbox.get mb));
  Engine.run e;
  check_float "third put blocked" 50.0 !done_at

let test_mailbox_try_ops () =
  let e = Engine.create () in
  let mb = Mailbox.create ~capacity:1 () in
  Engine.spawn e (fun () ->
      Alcotest.(check bool) "try_put into empty" true (Mailbox.try_put mb 1);
      Alcotest.(check bool) "try_put into full" false (Mailbox.try_put mb 2);
      Alcotest.(check (option int)) "try_get" (Some 1) (Mailbox.try_get mb);
      Alcotest.(check (option int)) "try_get empty" None (Mailbox.try_get mb));
  Engine.run e

let prop_mailbox_preserves_sequence =
  QCheck.Test.make ~name:"mailbox delivers every message in order" ~count:100
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (xs, cap) ->
      let e = Engine.create () in
      let mb = Mailbox.create ~capacity:cap () in
      let out = ref [] in
      Engine.spawn e (fun () -> List.iter (fun x -> Mailbox.put mb x) xs);
      Engine.spawn e (fun () ->
          for _ = 1 to List.length xs do
            out := Mailbox.get mb :: !out
          done);
      Engine.run e;
      List.rev !out = xs)

(* ------------------------------------------------------------------ *)
(* Semaphore                                                           *)
(* ------------------------------------------------------------------ *)

let test_semaphore_mutex () =
  let e = Engine.create () in
  let s = Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn e (fun () ->
        Semaphore.acquire s;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Engine.wait 10.0;
        decr inside;
        Semaphore.release s)
  done;
  Engine.run e;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  check_float "serialized duration" 50.0 (Engine.now e)

let test_semaphore_counting () =
  let e = Engine.create () in
  let s = Semaphore.create 3 in
  let peak = ref 0 and inside = ref 0 in
  for _ = 1 to 9 do
    Engine.spawn e (fun () ->
        Semaphore.acquire s;
        incr inside;
        if !inside > !peak then peak := !inside;
        Engine.wait 10.0;
        decr inside;
        Semaphore.release s)
  done;
  Engine.run e;
  Alcotest.(check int) "three at a time" 3 !peak;
  check_float "three batches" 30.0 (Engine.now e)

(* ------------------------------------------------------------------ *)
(* Cpu                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cpu_dedicated_core_no_switches () =
  let e = Engine.create () in
  let cpu = Cpu.create ~ncores:2 () in
  Engine.spawn e (fun () ->
      for _ = 1 to 10 do
        Cpu.compute cpu ~thread:0 100.0
      done);
  Engine.spawn e (fun () ->
      for _ = 1 to 10 do
        Cpu.compute cpu ~thread:1 100.0
      done);
  Engine.run e;
  Alcotest.(check int) "no switches on dedicated cores" 0
    (Cpu.context_switches cpu)

let test_cpu_shared_core_switches () =
  let e = Engine.create () in
  let cpu = Cpu.create ~ncores:1 () in
  Engine.spawn e (fun () ->
      for _ = 1 to 3 do
        Cpu.compute cpu ~thread:0 100.0
      done);
  Engine.spawn e (fun () ->
      for _ = 1 to 3 do
        Cpu.compute cpu ~thread:1 100.0
      done);
  Engine.run e;
  Alcotest.(check bool) "interleaving causes switches" true
    (Cpu.context_switches cpu >= 4)

let test_cpu_utilization () =
  let e = Engine.create () in
  let cpu = Cpu.create ~ncores:4 () in
  Engine.spawn e (fun () -> Cpu.compute cpu ~thread:0 1000.0);
  Engine.run e;
  check_float "one core busy 1000 of 4*1000" 0.25
    (Cpu.utilization cpu ~elapsed:1000.0)

let test_cpu_pinning () =
  let e = Engine.create () in
  let cpu = Cpu.create ~ncores:4 () in
  Cpu.pin cpu ~thread:9 ~core:2;
  Engine.spawn e (fun () -> Cpu.compute cpu ~thread:9 500.0);
  Engine.run e;
  check_float "burst landed on pinned core" 500.0 (Cpu.busy_ns_of_core cpu 2)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "min" 1.0 (Stats.min s);
  check_float "max" 4.0 (Stats.max s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (Stdlib.float_of_int i)
  done;
  check_float "p50" 50.0 (Stats.percentile s 50.0);
  check_float "p99" 99.0 (Stats.percentile s 99.0);
  check_float "p100" 100.0 (Stats.percentile s 100.0)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "empty mean" 0.0 (Stats.mean s);
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Stats.percentile s 50.0))

(* Percentile queries sort lazily and memoize via the [sorted] flag.
   Regression: repeated percentile/pp calls must not change results,
   and the memo must be invalidated by add/merge/clear. *)
let test_stats_percentile_memo () =
  let s = Stats.create () in
  (* Adversarial insertion order. *)
  List.iter (Stats.add s) [ 9.0; 1.0; 8.0; 2.0; 7.0; 3.0 ];
  let first = Stats.percentile s 50.0 in
  (* pp queries p50/p99 itself; run it twice between checks. *)
  ignore (Format.asprintf "%a" Stats.pp s);
  ignore (Format.asprintf "%a" Stats.pp s);
  check_float "p50 stable across repeated queries" first
    (Stats.percentile s 50.0);
  check_float "mean unperturbed" (30.0 /. 6.0) (Stats.mean s);
  check_float "min unperturbed" 1.0 (Stats.min s);
  (* add after a sorted query must be observable. *)
  Stats.add s 0.5;
  check_float "p0 sees post-sort add" 0.5 (Stats.percentile s 0.0);
  (* merge reflects both inputs and leaves the sources intact. *)
  let other = Stats.create () in
  Stats.add other 100.0;
  let m = Stats.merge s other in
  check_float "merged p100" 100.0 (Stats.percentile m 100.0);
  check_float "source intact after merge" 9.0 (Stats.percentile s 100.0);
  (* clear resets; the instance stays reusable. *)
  Stats.clear s;
  Alcotest.(check bool) "cleared percentile is nan" true
    (Float.is_nan (Stats.percentile s 50.0));
  Stats.add s 5.0;
  check_float "reusable after clear" 5.0 (Stats.percentile s 50.0)

let prop_stats_percentile_matches_sorted =
  QCheck.Test.make ~name:"percentile equals nearest-rank on sorted sample"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let sorted = Array.of_list (List.sort Float.compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let rank = int_of_float (ceil (p /. 100.0 *. Stdlib.float_of_int n)) in
          let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
          Stats.percentile s p = sorted.(idx))
        [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ])

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-6 && Stats.mean s <= Stats.max s +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int64 a) in
  let ys = List.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int r bound in
        ok := !ok && v >= 0 && v < bound
      done;
      !ok)

let prop_rng_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float stays within bound" ~count:200
    QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Rng.float r 10.0 in
        ok := !ok && v >= 0.0 && v < 10.0
      done;
      !ok)

let test_rng_exponential_mean () =
  let r = Rng.create 13 in
  let s = Stats.create () in
  for _ = 1 to 20000 do
    Stats.add s (Rng.exponential r 100.0)
  done;
  Alcotest.(check bool) "empirical mean near 100" true
    (Float.abs (Stats.mean s -. 100.0) < 5.0)

let test_rng_zipf_skew () =
  let r = Rng.create 5 in
  let hits = Array.make 10 0 in
  for _ = 1 to 5000 do
    let k = Rng.zipf r ~n:10 ~theta:1.0 in
    hits.(k) <- hits.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (hits.(0) > hits.(9))

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "lab_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "wait order" `Quick test_engine_wait_order;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "nested spawn" `Quick test_engine_nested_spawn;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "negative wait" `Quick test_engine_negative_wait;
          Alcotest.test_case "suspend/resume" `Quick test_engine_suspend_resume;
          Alcotest.test_case "resumer one-shot" `Quick test_engine_resumer_one_shot;
          Alcotest.test_case "until pushback order" `Quick
            test_engine_until_pushback_order;
          Alcotest.test_case "tick exact boundaries" `Quick
            test_engine_tick_exact_boundaries;
          Alcotest.test_case "timer" `Quick test_engine_timer;
          Alcotest.test_case "timer alloc-free" `Quick
            test_engine_timer_alloc_free;
          Alcotest.test_case "stop_all releases" `Quick
            test_engine_stop_all_releases;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
        ] );
      ("evq", [ QCheck_alcotest.to_alcotest prop_evq_matches_heap ]);
      ( "heap",
        Alcotest.test_case "ordering" `Quick test_heap_ordering
        :: Alcotest.test_case "releases entries" `Quick test_heap_releases_entries
        :: List.map QCheck_alcotest.to_alcotest [ prop_heap_sorts; prop_heap_length ]
      );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocking get" `Quick test_mailbox_blocking_get;
          Alcotest.test_case "capacity blocks put" `Quick
            test_mailbox_capacity_blocks_put;
          Alcotest.test_case "try ops" `Quick test_mailbox_try_ops;
          QCheck_alcotest.to_alcotest prop_mailbox_preserves_sequence;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "mutex" `Quick test_semaphore_mutex;
          Alcotest.test_case "counting" `Quick test_semaphore_counting;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "dedicated no switches" `Quick
            test_cpu_dedicated_core_no_switches;
          Alcotest.test_case "shared core switches" `Quick
            test_cpu_shared_core_switches;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
          Alcotest.test_case "pinning" `Quick test_cpu_pinning;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentile memo" `Quick
            test_stats_percentile_memo;
          QCheck_alcotest.to_alcotest prop_stats_percentile_matches_sorted;
          QCheck_alcotest.to_alcotest prop_stats_mean_bounds;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
          QCheck_alcotest.to_alcotest prop_rng_float_in_bounds;
        ] );
    ];
  ignore qsuite
