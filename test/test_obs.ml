(* Tests for lab_obs and its wiring: metrics registry semantics,
   span-tracer telescoping, exporter byte-stability, and the
   platform-level guarantees (trace determinism across identical runs,
   span nesting, zero overhead / zero events with sampling off). *)

open Labstor
module Metrics = Lab_obs.Metrics
module Trace = Lab_obs.Trace

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_interning () =
  let reg = Metrics.create () in
  let a = Metrics.counter ~reg "x.count" in
  Metrics.incr a;
  Metrics.incr ~by:4 a;
  (* Re-requesting the name yields the same instrument. *)
  let b = Metrics.counter ~reg "x.count" in
  Alcotest.(check int) "shared value" 5 (Metrics.value b);
  Metrics.incr b;
  Alcotest.(check int) "visible through first handle" 6 (Metrics.value a);
  (* One exported entry, not two. *)
  Alcotest.(check int) "one instrument" 1 (List.length (Metrics.to_list reg))

let test_kind_clash_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter ~reg "x");
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument "Metrics: \"x\" already registered as a counter")
    (fun () -> ignore (Metrics.histogram ~reg "x"))

let test_detached_counter () =
  let reg = Metrics.create () in
  let d = Metrics.counter "floating" in
  Metrics.incr ~by:7 d;
  Alcotest.(check int) "records" 7 (Metrics.value d);
  Alcotest.(check int) "invisible to export" 0
    (List.length (Metrics.to_list reg))

let test_gauge_replace () =
  let reg = Metrics.create () in
  Metrics.gauge_fn reg "g" (fun () -> 1.0);
  Metrics.gauge_fn reg "g" (fun () -> 2.0);
  match Metrics.to_list reg with
  | [ ("g", Metrics.V_gauge v) ] -> Alcotest.(check (float 0.0)) "latest" 2.0 v
  | _ -> Alcotest.fail "expected exactly one gauge"

let test_gauge_read_through () =
  let reg = Metrics.create () in
  let cell = ref 0.0 in
  Metrics.gauge_fn reg "live" (fun () -> !cell);
  cell := 42.0;
  match Metrics.to_list reg with
  | [ ("live", Metrics.V_gauge v) ] ->
      Alcotest.(check (float 0.0)) "sampled at export" 42.0 v
  | _ -> Alcotest.fail "expected exactly one gauge"

let test_histogram_quantiles () =
  let h = Metrics.histogram "h" in
  (* Log2 buckets report the upper bound of the rank's bucket. *)
  List.iter (Metrics.observe h) [ 3.0; 3.0; 3.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1009.0 (Metrics.hist_sum h);
  Alcotest.(check (float 0.0)) "p50 in (2,4] bucket" 4.0 (Metrics.p50 h);
  Alcotest.(check (float 0.0)) "p999 in (512,1024] bucket" 1024.0
    (Metrics.p999 h);
  let empty = Metrics.histogram "h2" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Metrics.p50 empty)

let build_registry () =
  let reg = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter ~reg "b.count");
  Metrics.gauge_fn reg "a.gauge" (fun () -> 1.5);
  let h = Metrics.histogram ~reg "c.hist" in
  List.iter (Metrics.observe h) [ 10.0; 20.0; 3000.0 ];
  reg

let test_jsonl_stable () =
  let a = Metrics.to_jsonl (build_registry ()) in
  let b = Metrics.to_jsonl (build_registry ()) in
  Alcotest.(check string) "byte-identical" a b;
  (* Sorted by name, one object per line. *)
  let lines = String.split_on_char '\n' (String.trim a) in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "object per line" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let name_of l = String.sub l 0 (Stdlib.min 12 (String.length l)) in
  Alcotest.(check (list string)) "sorted"
    [ "{\"name\":\"a.g"; "{\"name\":\"b.c"; "{\"name\":\"c.h" ]
    (List.map name_of lines)

let test_nonfinite_clamped () =
  let reg = Metrics.create () in
  Metrics.gauge_fn reg "bad" (fun () -> Float.nan);
  let j = Metrics.to_jsonl reg in
  Alcotest.(check bool) "nan clamped" true
    (String.length j > 0
    && not
         (String.fold_left (fun acc c -> acc || c = 'n') false
            (String.sub j 20 (String.length j - 20))))

(* ------------------------------------------------------------------ *)
(* Span tracer                                                         *)
(* ------------------------------------------------------------------ *)

let test_sampling_predicate () =
  let off = Trace.create () in
  Alcotest.(check bool) "off" false (Trace.sampled off ~id:0);
  let tr = Trace.create ~sample:3 () in
  Alcotest.(check bool) "id 6" true (Trace.sampled tr ~id:6);
  Alcotest.(check bool) "id 7" false (Trace.sampled tr ~id:7);
  Alcotest.(check bool) "start unsampled" true (Trace.start tr ~id:7 ~now:0.0 = None)

let test_stage_telescoping () =
  let tr = Trace.create ~sample:1 () in
  let fl = Option.get (Trace.start tr ~id:5 ~now:10.0) in
  Trace.open_stage fl ~name:"one" ~now:10.0;
  Trace.close_stage fl ~tid:0 ~now:25.0;
  Trace.open_stage fl ~name:"two" ~now:25.0;
  Trace.finish fl ~tid:0 ~now:40.0;
  match Trace.events tr with
  | [ one; two; root ] ->
      Alcotest.(check string) "first stage" "one" one.Trace.ev_name;
      Alcotest.(check (float 0.0)) "one dur" 15.0 one.Trace.ev_dur;
      Alcotest.(check (float 0.0)) "two dur" 15.0 two.Trace.ev_dur;
      Alcotest.(check string) "root" "request" root.Trace.ev_name;
      Alcotest.(check (float 0.0)) "root ts" 10.0 root.Trace.ev_ts;
      Alcotest.(check (float 0.0)) "root dur" 30.0 root.Trace.ev_dur;
      Alcotest.(check (float 0.0))
        "stages tile the root" root.Trace.ev_dur
        (one.Trace.ev_dur +. two.Trace.ev_dur)
  | evs -> Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length evs))

let test_chrome_json_stable () =
  let build () =
    let tr = Trace.create ~sample:1 () in
    let fl = Option.get (Trace.start tr ~id:2 ~now:100.0) in
    Trace.instant fl ~name:"hit" ~tid:3 ~now:150.0;
    Trace.span fl ~name:"mod" ~cat:"mod" ~tid:3 ~t0:120.0 ~t1:180.0
      ~args:[ ("uuid", "m0") ];
    Trace.finish fl ~tid:3 ~now:200.0;
    Trace.to_chrome_json tr
  in
  let a = build () in
  Alcotest.(check string) "byte-identical" a (build ());
  Alcotest.(check bool) "has traceEvents" true
    (String.length a > 0 && String.sub a 0 1 = "{")

(* ------------------------------------------------------------------ *)
(* Platform-level: determinism, nesting, zero overhead                 *)
(* ------------------------------------------------------------------ *)

let stack_spec =
  {|
mount: "blk::/obs-test"
rules:
  exec_mode: async
dag:
  - uuid: cache0
    mod: lru_cache
    attrs:
      capacity_mb: 1
    outputs: [sched0]
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let threads = 2

let ops = 40

let run_platform ~sample =
  let platform = Platform.boot ~nworkers:2 ~seed:0x0B5 ~trace_sample:sample () in
  (match Platform.mount platform stack_spec with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("mount: " ^ e));
  let machine = Platform.machine platform in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Lab_sim.Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Lab_sim.Engine.spawn machine.Lab_sim.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                for i = 1 to ops do
                  let lba = (th * 100_000) + i in
                  if i mod 3 = 0 then
                    ignore
                      (Runtime.Client.write_block c ~mount:"blk::/obs-test"
                         ~lba ~bytes:4096)
                  else
                    ignore
                      (Runtime.Client.read_block c ~mount:"blk::/obs-test"
                         ~lba ~bytes:4096)
                done;
                incr finished;
                if !finished = threads then resume ())
          done));
  platform

let test_run_determinism () =
  let artifacts () =
    let p = run_platform ~sample:2 in
    ( Trace.to_chrome_json (Platform.tracer p),
      Metrics.to_jsonl (Platform.metrics p) )
  in
  let t1, m1 = artifacts () in
  let t2, m2 = artifacts () in
  Alcotest.(check bool) "trace nonempty" true (String.length t1 > 100);
  Alcotest.(check string) "trace byte-identical" t1 t2;
  Alcotest.(check string) "metrics byte-identical" m1 m2

let test_span_nesting () =
  let p = run_platform ~sample:2 in
  let evs = Trace.events (Platform.tracer p) in
  Alcotest.(check bool) "nonempty" true (evs <> []);
  (* Index root spans and module-stack stages by request id. *)
  let roots = Hashtbl.create 64 in
  let mstacks = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.ev) ->
      Alcotest.(check bool) "sampling respected" true (e.Trace.ev_id mod 2 = 0);
      Alcotest.(check bool) "end >= begin" true (e.Trace.ev_dur >= 0.0);
      match (e.Trace.ev_cat, e.Trace.ev_name) with
      | "request", _ -> Hashtbl.replace roots e.Trace.ev_id e
      | "stage", "module_stack" -> Hashtbl.replace mstacks e.Trace.ev_id e
      | _ -> ())
    evs;
  Alcotest.(check bool) "traced requests exist" true (Hashtbl.length roots > 0);
  let within ~outer (e : Trace.ev) =
    e.Trace.ev_ts >= outer.Trace.ev_ts -. 1e-6
    && e.Trace.ev_ts +. e.Trace.ev_dur
       <= outer.Trace.ev_ts +. outer.Trace.ev_dur +. 1e-6
  in
  let stage_sums = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.ev) ->
      match Hashtbl.find_opt roots e.Trace.ev_id with
      | None -> ()
      | Some root -> (
          match e.Trace.ev_cat with
          | "stage" ->
              Alcotest.(check bool) "stage within root" true (within ~outer:root e);
              let prev =
                Option.value (Hashtbl.find_opt stage_sums e.Trace.ev_id)
                  ~default:0.0
              in
              Hashtbl.replace stage_sums e.Trace.ev_id (prev +. e.Trace.ev_dur)
          | "mod" -> (
              match Hashtbl.find_opt mstacks e.Trace.ev_id with
              | Some ms ->
                  Alcotest.(check bool) "mod within module_stack" true
                    (within ~outer:ms e)
              | None -> Alcotest.fail "mod span without module_stack stage")
          | _ -> ()))
    evs;
  (* Telescoping: the stages of each request sum to its root span
     within 1% (the acceptance bound; exact in practice). *)
  Hashtbl.iter
    (fun id (root : Trace.ev) ->
      match Hashtbl.find_opt stage_sums id with
      | None -> Alcotest.fail "request without stages"
      | Some sum ->
          let residual = Float.abs (root.Trace.ev_dur -. sum) in
          Alcotest.(check bool) "stages reconcile with end-to-end" true
            (residual <= 0.01 *. Float.max root.Trace.ev_dur 1.0))
    roots

let test_zero_overhead_when_off () =
  let run () =
    let p = run_platform ~sample:0 in
    let machine = Platform.machine p in
    ( Trace.event_count (Platform.tracer p),
      Platform.now p,
      Lab_sim.Engine.events_executed machine.Lab_sim.Machine.engine )
  in
  let count0, elapsed0, events0 = run () in
  Alcotest.(check int) "no trace events" 0 count0;
  (* A traced run of the same workload must not perturb the simulation:
     identical virtual time and event count. *)
  let p = run_platform ~sample:1 in
  let machine = Platform.machine p in
  Alcotest.(check bool) "tracing emitted events" true
    (Trace.event_count (Platform.tracer p) > 0);
  Alcotest.(check (float 0.0)) "same virtual time" elapsed0 (Platform.now p);
  Alcotest.(check int) "same event count" events0
    (Lab_sim.Engine.events_executed machine.Lab_sim.Machine.engine)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter interning" `Quick test_counter_interning;
          Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
          Alcotest.test_case "detached counter" `Quick test_detached_counter;
          Alcotest.test_case "gauge replace" `Quick test_gauge_replace;
          Alcotest.test_case "gauge read-through" `Quick test_gauge_read_through;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "jsonl stable" `Quick test_jsonl_stable;
          Alcotest.test_case "non-finite clamped" `Quick test_nonfinite_clamped;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sampling predicate" `Quick test_sampling_predicate;
          Alcotest.test_case "stage telescoping" `Quick test_stage_telescoping;
          Alcotest.test_case "chrome json stable" `Quick test_chrome_json_stable;
        ] );
      ( "platform",
        [
          Alcotest.test_case "run determinism" `Quick test_run_determinism;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "zero overhead when off" `Quick
            test_zero_overhead_when_off;
        ] );
    ]
