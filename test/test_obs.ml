(* Tests for lab_obs and its wiring: metrics registry semantics,
   span-tracer telescoping, exporter byte-stability, and the
   platform-level guarantees (trace determinism across identical runs,
   span nesting, zero overhead / zero events with sampling off). *)

open Labstor
module Metrics = Lab_obs.Metrics
module Trace = Lab_obs.Trace
module Timeseries = Lab_obs.Timeseries
module Profile = Lab_obs.Profile
module Exemplar = Lab_obs.Exemplar
module Flightrec = Lab_obs.Flightrec

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_interning () =
  let reg = Metrics.create () in
  let a = Metrics.counter ~reg "x.count" in
  Metrics.incr a;
  Metrics.incr ~by:4 a;
  (* Re-requesting the name yields the same instrument. *)
  let b = Metrics.counter ~reg "x.count" in
  Alcotest.(check int) "shared value" 5 (Metrics.value b);
  Metrics.incr b;
  Alcotest.(check int) "visible through first handle" 6 (Metrics.value a);
  (* One exported entry, not two. *)
  Alcotest.(check int) "one instrument" 1 (List.length (Metrics.to_list reg))

let test_kind_clash_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter ~reg "x");
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument "Metrics: \"x\" already registered as a counter")
    (fun () -> ignore (Metrics.histogram ~reg "x"))

let test_detached_counter () =
  let reg = Metrics.create () in
  let d = Metrics.counter "floating" in
  Metrics.incr ~by:7 d;
  Alcotest.(check int) "records" 7 (Metrics.value d);
  Alcotest.(check int) "invisible to export" 0
    (List.length (Metrics.to_list reg))

let test_gauge_replace () =
  let reg = Metrics.create () in
  Metrics.gauge_fn reg "g" (fun () -> 1.0);
  Metrics.gauge_fn reg "g" (fun () -> 2.0);
  match Metrics.to_list reg with
  | [ ("g", Metrics.V_gauge v) ] -> Alcotest.(check (float 0.0)) "latest" 2.0 v
  | _ -> Alcotest.fail "expected exactly one gauge"

let test_gauge_read_through () =
  let reg = Metrics.create () in
  let cell = ref 0.0 in
  Metrics.gauge_fn reg "live" (fun () -> !cell);
  cell := 42.0;
  match Metrics.to_list reg with
  | [ ("live", Metrics.V_gauge v) ] ->
      Alcotest.(check (float 0.0)) "sampled at export" 42.0 v
  | _ -> Alcotest.fail "expected exactly one gauge"

let test_histogram_quantiles () =
  let h = Metrics.histogram "h" in
  (* Log2 buckets report the upper bound of the rank's bucket. *)
  List.iter (Metrics.observe h) [ 3.0; 3.0; 3.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1009.0 (Metrics.hist_sum h);
  Alcotest.(check (float 0.0)) "p50 in (2,4] bucket" 4.0 (Metrics.p50 h);
  Alcotest.(check (float 0.0)) "p999 in (512,1024] bucket" 1024.0
    (Metrics.p999 h);
  let empty = Metrics.histogram "h2" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Metrics.p50 empty)

let build_registry () =
  let reg = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter ~reg "b.count");
  Metrics.gauge_fn reg "a.gauge" (fun () -> 1.5);
  let h = Metrics.histogram ~reg "c.hist" in
  List.iter (Metrics.observe h) [ 10.0; 20.0; 3000.0 ];
  reg

let test_jsonl_stable () =
  let a = Metrics.to_jsonl (build_registry ()) in
  let b = Metrics.to_jsonl (build_registry ()) in
  Alcotest.(check string) "byte-identical" a b;
  (* Sorted by name, one object per line. *)
  let lines = String.split_on_char '\n' (String.trim a) in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "object per line" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let name_of l = String.sub l 0 (Stdlib.min 12 (String.length l)) in
  Alcotest.(check (list string)) "sorted"
    [ "{\"name\":\"a.g"; "{\"name\":\"b.c"; "{\"name\":\"c.h" ]
    (List.map name_of lines)

let test_nonfinite_clamped () =
  let reg = Metrics.create () in
  Metrics.gauge_fn reg "bad" (fun () -> Float.nan);
  let j = Metrics.to_jsonl reg in
  Alcotest.(check bool) "nan clamped" true
    (String.length j > 0
    && not
         (String.fold_left (fun acc c -> acc || c = 'n') false
            (String.sub j 20 (String.length j - 20))))

let test_observe_clamps_nonfinite () =
  (* Clamped at record time: one NaN must not poison the running sum. *)
  let h = Metrics.histogram "clamp" in
  Metrics.observe h Float.nan;
  Metrics.observe h Float.infinity;
  Metrics.observe h Float.neg_infinity;
  Metrics.observe h 8.0;
  Alcotest.(check int) "all observations counted" 4 (Metrics.hist_count h);
  Alcotest.(check bool) "sum stayed finite" true
    (Float.is_finite (Metrics.hist_sum h));
  Alcotest.(check (float 1e-9)) "non-finite recorded as 0" 8.0
    (Metrics.hist_sum h)

let test_gauge_clamped_at_read () =
  (* Clamped in to_list itself, not only in the JSONL exporter, so every
     consumer of snapshots sees finite values. *)
  let reg = Metrics.create () in
  Metrics.gauge_fn reg "nan" (fun () -> Float.nan);
  Metrics.gauge_fn reg "inf" (fun () -> Float.infinity);
  List.iter
    (fun (_, v) ->
      match v with
      | Metrics.V_gauge g -> Alcotest.(check (float 0.0)) "clamped to 0" 0.0 g
      | _ -> Alcotest.fail "expected gauges")
    (Metrics.to_list reg)

(* ------------------------------------------------------------------ *)
(* Span tracer                                                         *)
(* ------------------------------------------------------------------ *)

let test_sampling_predicate () =
  let off = Trace.create () in
  Alcotest.(check bool) "off" false (Trace.sampled off ~id:0);
  (* sample:1 always samples — the hash never changes "every request". *)
  let all = Trace.create ~sample:1 () in
  for id = 0 to 99 do
    Alcotest.(check bool) "sample 1" true (Trace.sampled all ~id)
  done;
  (* sample:N picks ids by a mixed hash, not [id mod N = 0]: strided id
     streams (every client stamping ids k, k+8, k+16, …) must not alias
     to all-or-nothing selections. The choice is deterministic, roughly
     1/N of any stride, and never the plain head-of-stride rule. *)
  let tr = Trace.create ~sample:3 () in
  let count stride =
    let n = ref 0 in
    for i = 0 to 2999 do
      if Trace.sampled tr ~id:(i * stride) then incr n
    done;
    !n
  in
  List.iter
    (fun stride ->
      let n = count stride in
      Alcotest.(check bool)
        (Printf.sprintf "stride %d near 1/3" stride)
        true
        (n > 800 && n < 1200))
    [ 1; 3; 8 ];
  (* Deterministic: same id, same verdict. *)
  Alcotest.(check bool) "stable" (Trace.sampled tr ~id:6) (Trace.sampled tr ~id:6);
  (* An unsampled id (no exemplar store attached) starts no flow. *)
  let unsampled =
    let id = ref 0 in
    while Trace.sampled tr ~id:!id do incr id done;
    !id
  in
  Alcotest.(check bool) "start unsampled" true
    (Trace.start tr ~id:unsampled ~now:0.0 = None)

let test_stage_telescoping () =
  let tr = Trace.create ~sample:1 () in
  let fl = Option.get (Trace.start tr ~id:5 ~now:10.0) in
  Trace.open_stage fl ~name:"one" ~now:10.0;
  Trace.close_stage fl ~tid:0 ~now:25.0;
  Trace.open_stage fl ~name:"two" ~now:25.0;
  Trace.finish fl ~tid:0 ~now:40.0;
  match Trace.events tr with
  | [ one; two; root ] ->
      Alcotest.(check string) "first stage" "one" one.Trace.ev_name;
      Alcotest.(check (float 0.0)) "one dur" 15.0 one.Trace.ev_dur;
      Alcotest.(check (float 0.0)) "two dur" 15.0 two.Trace.ev_dur;
      Alcotest.(check string) "root" "request" root.Trace.ev_name;
      Alcotest.(check (float 0.0)) "root ts" 10.0 root.Trace.ev_ts;
      Alcotest.(check (float 0.0)) "root dur" 30.0 root.Trace.ev_dur;
      Alcotest.(check (float 0.0))
        "stages tile the root" root.Trace.ev_dur
        (one.Trace.ev_dur +. two.Trace.ev_dur)
  | evs -> Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length evs))

let test_chrome_json_stable () =
  let build () =
    let tr = Trace.create ~sample:1 () in
    let fl = Option.get (Trace.start tr ~id:2 ~now:100.0) in
    Trace.instant fl ~name:"hit" ~tid:3 ~now:150.0;
    Trace.span fl ~name:"mod" ~cat:"mod" ~tid:3 ~t0:120.0 ~t1:180.0
      ~args:[ ("uuid", "m0") ];
    Trace.finish fl ~tid:3 ~now:200.0;
    Trace.to_chrome_json tr
  in
  let a = build () in
  Alcotest.(check string) "byte-identical" a (build ());
  Alcotest.(check bool) "has traceEvents" true
    (String.length a > 0 && String.sub a 0 1 = "{")

(* ------------------------------------------------------------------ *)
(* Timeseries sampler                                                  *)
(* ------------------------------------------------------------------ *)

let test_timeseries_ticks_and_samples () =
  let ts = Timeseries.create ~capacity:8 ~period:10.0 () in
  let calls = ref 0 in
  Timeseries.add_series ts "probe.calls" (fun _now ->
      incr calls;
      Stdlib.float_of_int !calls);
  Timeseries.add_series ts "probe.time" (fun now -> now);
  Timeseries.tick ts ~now:10.0;
  Timeseries.tick ts ~now:20.0;
  Timeseries.tick ts ~now:30.0;
  Alcotest.(check int) "ticks" 3 (Timeseries.ticks ts);
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "samples oldest first"
    [ (10.0, 1.0); (20.0, 2.0); (30.0, 3.0) ]
    (Timeseries.samples ts "probe.calls");
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "probe sees the sample instant"
    [ (10.0, 10.0); (20.0, 20.0); (30.0, 30.0) ]
    (Timeseries.samples ts "probe.time");
  Alcotest.(check (list string)) "names sorted"
    [ "probe.calls"; "probe.time" ]
    (Timeseries.series_names ts)

let test_timeseries_ring_wrap () =
  let ts = Timeseries.create ~capacity:4 ~period:1.0 () in
  Timeseries.add_series ts "s" (fun now -> now);
  for i = 1 to 6 do
    Timeseries.tick ts ~now:(Stdlib.float_of_int i)
  done;
  (* Capacity 4: the two oldest samples were overwritten. *)
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "last four, oldest first"
    [ (3.0, 3.0); (4.0, 4.0); (5.0, 5.0); (6.0, 6.0) ]
    (Timeseries.samples ts "s");
  match Timeseries.stats ts with
  | [ s ] ->
      Alcotest.(check int) "count" 4 s.Timeseries.st_count;
      Alcotest.(check (float 1e-9)) "mean" 4.5 s.Timeseries.st_mean;
      Alcotest.(check (float 0.0)) "max" 6.0 s.Timeseries.st_max;
      Alcotest.(check (float 0.0)) "last" 6.0 s.Timeseries.st_last
  | l -> Alcotest.fail (Printf.sprintf "expected 1 stat, got %d" (List.length l))

let test_timeseries_guards () =
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Timeseries.create: period must be positive") (fun () ->
      ignore (Timeseries.create ~period:0.0 ()));
  let ts = Timeseries.create ~period:1.0 () in
  Timeseries.add_series ts "dup" (fun _ -> 0.0);
  Alcotest.check_raises "duplicate series"
    (Invalid_argument "Timeseries.add_series: \"dup\" already registered")
    (fun () -> Timeseries.add_series ts "dup" (fun _ -> 1.0));
  (* Non-finite probe values are clamped at record time. *)
  Timeseries.add_series ts "nan" (fun _ -> Float.nan);
  Timeseries.tick ts ~now:1.0;
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "nan clamped" [ (1.0, 0.0) ]
    (Timeseries.samples ts "nan")

let test_timeseries_json_stable () =
  let build () =
    let ts = Timeseries.create ~capacity:8 ~period:5.0 () in
    Timeseries.add_series ts "b" (fun now -> now *. 2.0);
    Timeseries.add_series ts "a" (fun now -> now);
    Timeseries.tick ts ~now:5.0;
    Timeseries.tick ts ~now:10.0;
    Timeseries.to_json ts
  in
  let a = build () in
  Alcotest.(check string) "byte-identical" a (build ());
  (* Series sorted by name in the export. *)
  let find_sub sub =
    let n = String.length a and m = String.length sub in
    let rec go i =
      if i + m > n then -1 else if String.sub a i m = sub then i else go (i + 1)
    in
    go 0
  in
  let ia = find_sub "\"a\"" and ib = find_sub "\"b\"" in
  Alcotest.(check bool) "sorted series" true (ia >= 0 && ib >= 0 && ia < ib)

(* ------------------------------------------------------------------ *)
(* Profile (flamegraph + tail attribution)                             *)
(* ------------------------------------------------------------------ *)

(* One synthetic request: root [0,20] containing stage "work" [0,10]
   containing mod "cache" [2,8]. *)
let synthetic_trace () =
  let tr = Trace.create ~sample:1 () in
  let fl = Option.get (Trace.start tr ~id:2 ~now:0.0) in
  Trace.span fl ~name:"cache" ~cat:"mod" ~tid:0 ~t0:2.0 ~t1:8.0 ~args:[];
  Trace.open_stage fl ~name:"work" ~now:0.0;
  Trace.close_stage fl ~tid:0 ~now:10.0;
  Trace.open_stage fl ~name:"rest" ~now:10.0;
  Trace.finish fl ~tid:0 ~now:20.0;
  Trace.events tr

let test_profile_flamegraph () =
  let p = Profile.of_events (synthetic_trace ()) in
  Alcotest.(check int) "one request" 1 p.Profile.requests;
  let node key =
    match List.find_opt (fun n -> n.Profile.pf_key = key) p.Profile.nodes with
    | Some n -> n
    | None ->
        Alcotest.fail
          (Printf.sprintf "missing key %S among [%s]" key
             (String.concat "; "
                (List.map (fun n -> n.Profile.pf_key) p.Profile.nodes)))
  in
  let root = node "request" in
  Alcotest.(check (float 1e-9)) "root total" 20.0 root.Profile.pf_total_ns;
  (* Stages tile the root exactly: no exclusive time left. *)
  Alcotest.(check (float 1e-9)) "root self" 0.0 root.Profile.pf_self_ns;
  let work = node "request;work" in
  Alcotest.(check (float 1e-9)) "work total" 10.0 work.Profile.pf_total_ns;
  Alcotest.(check (float 1e-9)) "work self excludes mod" 4.0
    work.Profile.pf_self_ns;
  let cache = node "request;work;cache" in
  Alcotest.(check (float 1e-9)) "mod total" 6.0 cache.Profile.pf_total_ns;
  Alcotest.(check (float 1e-9)) "mod self" 6.0 cache.Profile.pf_self_ns;
  ignore (node "request;rest")

let test_profile_tail_and_stability () =
  let evs = synthetic_trace () in
  let p = Profile.of_events evs in
  (* A single request is its own p50 and tail cohort. *)
  Alcotest.(check (float 1e-9)) "p50 = e2e" 20.0 p.Profile.p50_ns;
  Alcotest.(check (float 1e-9)) "p99 = e2e" 20.0 p.Profile.p99_ns;
  Alcotest.(check int) "p50 cohort" 1 p.Profile.p50_cohort;
  Alcotest.(check int) "tail cohort" 1 p.Profile.tail_cohort;
  (match
     List.find_opt (fun r -> r.Profile.tr_stage = "work") p.Profile.tail
   with
  | Some r ->
      Alcotest.(check (float 1e-9)) "stage p50 mean" 10.0
        r.Profile.tr_p50_mean_ns;
      Alcotest.(check (float 1e-9)) "stage tail mean" 10.0
        r.Profile.tr_tail_mean_ns
  | None -> Alcotest.fail "missing work stage in tail table");
  Alcotest.(check string) "json byte-stable"
    (Profile.to_json p)
    (Profile.to_json (Profile.of_events evs))

(* ------------------------------------------------------------------ *)
(* Exemplar store                                                      *)
(* ------------------------------------------------------------------ *)

let offer_simple store ~id ~latency =
  Exemplar.offer store ~id ~t0:0.0 ~latency ~n:1 ~dropped:0
    ~names:[| "stage" |] ~cats:[| "stage" |] ~t0s:[| 0.0 |]
    ~t1s:[| latency |]

let test_exemplar_promote_recycle () =
  let thr = ref 100.0 in
  let store = Exemplar.create ~threshold:(fun () -> !thr) ~k:2 () in
  (* Under threshold: recycled, not stored. *)
  Alcotest.(check bool) "fast recycled" false
    (offer_simple store ~id:1 ~latency:50.0);
  Alcotest.(check int) "nothing stored" 0 (Exemplar.stored store);
  (* Tail: promoted into free slots. *)
  Alcotest.(check bool) "slow promoted" true
    (offer_simple store ~id:2 ~latency:200.0);
  Alcotest.(check bool) "slow promoted" true
    (offer_simple store ~id:3 ~latency:300.0);
  Alcotest.(check int) "store full" 2 (Exemplar.stored store);
  (* Full store: only strictly-slower requests evict the minimum. *)
  Alcotest.(check bool) "equal-to-min keeps incumbent" false
    (offer_simple store ~id:4 ~latency:200.0);
  Alcotest.(check bool) "slower evicts min" true
    (offer_simple store ~id:5 ~latency:250.0);
  Alcotest.(check int) "evictions counted" 1 (Exemplar.evicted store);
  (match Exemplar.dump store with
  | [ a; b ] ->
      Alcotest.(check int) "slowest first" 3 a.Exemplar.v_id;
      Alcotest.(check (float 0.0)) "slowest latency" 300.0 a.Exemplar.v_latency;
      Alcotest.(check int) "runner-up" 5 b.Exemplar.v_id
  | vs -> Alcotest.failf "expected 2 exemplars, got %d" (List.length vs));
  (* The threshold closure is re-read per offer: raising it recycles. *)
  thr := 1e9;
  Alcotest.(check bool) "raised threshold recycles" false
    (offer_simple store ~id:6 ~latency:500.0);
  Alcotest.(check int) "offers counted" 6 (Exemplar.offered store);
  Alcotest.(check int) "promotions counted" 3 (Exemplar.promoted store);
  Alcotest.(check int) "recycles counted" 3 (Exemplar.recycled store);
  (* Export is byte-stable. *)
  Alcotest.(check string) "json stable" (Exemplar.to_json store)
    (Exemplar.to_json store)

let test_exemplar_stage_copy () =
  (* Promotion copies the stage arrays; the caller's buffers can be
     reused without corrupting the stored anatomy. *)
  let store = Exemplar.create ~k:1 () in
  let names = [| "a"; "b" |] and cats = [| "stage"; "stage" |] in
  let t0s = [| 0.0; 5.0 |] and t1s = [| 5.0; 9.0 |] in
  ignore (Exemplar.offer store ~id:7 ~t0:0.0 ~latency:9.0 ~n:2 ~dropped:0
            ~names ~cats ~t0s ~t1s);
  names.(0) <- "clobbered";
  t1s.(0) <- 1e9;
  match Exemplar.dump store with
  | [ v ] -> (
      match v.Exemplar.v_stages with
      | [ s1; s2 ] ->
          Alcotest.(check string) "stage name copied" "a" s1.Exemplar.s_name;
          Alcotest.(check (float 0.0)) "stage end copied" 5.0 s1.Exemplar.s_t1;
          Alcotest.(check string) "second stage" "b" s2.Exemplar.s_name
      | ss -> Alcotest.failf "expected 2 stages, got %d" (List.length ss))
  | vs -> Alcotest.failf "expected 1 exemplar, got %d" (List.length vs)

let test_exemplar_disabled () =
  let store = Exemplar.create ~k:0 () in
  Alcotest.(check bool) "k=0 recycles" false
    (offer_simple store ~id:1 ~latency:1e12);
  Alcotest.(check int) "nothing stored" 0 (Exemplar.stored store)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flightrec_ring () =
  let bb = Flightrec.create ~cap:4 () in
  for i = 1 to 6 do
    Flightrec.record bb Flightrec.Submit ~now:(float_of_int i) ~id:i ()
  done;
  Alcotest.(check int) "all recorded" 6 (Flightrec.recorded bb);
  (match Flightrec.events bb with
  | [ a; b; c; d ] ->
      (* Ring keeps the last cap events, oldest first. *)
      Alcotest.(check int) "oldest survivor" 3 a.Flightrec.e_id;
      Alcotest.(check int) "then" 4 b.Flightrec.e_id;
      Alcotest.(check int) "then" 5 c.Flightrec.e_id;
      Alcotest.(check int) "newest" 6 d.Flightrec.e_id
  | es -> Alcotest.failf "expected 4 ring events, got %d" (List.length es));
  (* cap=0 disables: record and trigger are no-ops. *)
  let off = Flightrec.create ~cap:0 () in
  Flightrec.record off Flightrec.Submit ~now:0.0 ();
  Flightrec.trigger off ~reason:"x" ~now:0.0;
  Alcotest.(check int) "disabled records nothing" 0 (Flightrec.recorded off);
  Alcotest.(check int) "disabled dumps nothing" 0
    (List.length (Flightrec.dumps off))

let test_flightrec_triggers () =
  let bb = Flightrec.create ~max_dumps:2 ~cap:16 () in
  Flightrec.record bb Flightrec.Errno ~now:1.0 ~id:9 ~tag:"ENODEV" ();
  Flightrec.trigger bb ~reason:"errno:ENODEV" ~now:2.0;
  (* Same reason again: counted, but no second dump. *)
  Flightrec.trigger bb ~reason:"errno:ENODEV" ~now:3.0;
  Flightrec.trigger bb ~reason:"deadline_miss" ~now:4.0;
  (* Third distinct reason: over max_dumps, counted only. *)
  Flightrec.trigger bb ~reason:"slo_burn" ~now:5.0;
  Alcotest.(check int) "all triggers counted" 4 (Flightrec.triggers bb);
  (match Flightrec.dumps bb with
  | [ d1; d2 ] ->
      Alcotest.(check bool) "first dump names its reason" true
        (String.length d1 > 0
        && String.sub d1 0 30 = {|{"reason":"errno:ENODEV","now_|});
      (* The dump's event list ends with its own Trigger record, and
         carries the errno event that preceded it. *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "dump contains errno event" true
        (contains d1 {|"tag":"ENODEV"|});
      Alcotest.(check bool) "dump contains trigger event" true
        (contains d1 {|"kind":"trigger"|});
      Alcotest.(check bool) "second dump is the next distinct reason" true
        (contains d2 {|"reason":"deadline_miss"|})
  | ds -> Alcotest.failf "expected 2 dumps, got %d" (List.length ds));
  Alcotest.(check string) "export stable" (Flightrec.to_json bb)
    (Flightrec.to_json bb)

(* ------------------------------------------------------------------ *)
(* Platform-level: determinism, nesting, zero overhead                 *)
(* ------------------------------------------------------------------ *)

let stack_spec =
  {|
mount: "blk::/obs-test"
rules:
  exec_mode: async
dag:
  - uuid: cache0
    mod: lru_cache
    attrs:
      capacity_mb: 1
    outputs: [sched0]
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let threads = 2

let ops = 40

let run_platform ?(profile_period = 0.0) ?exemplar_k ?exemplar_tail_us
    ?blackbox_cap ~sample () =
  let platform =
    Platform.boot ~nworkers:2 ~seed:0x0B5 ~trace_sample:sample ~profile_period
      ?exemplar_k ?exemplar_tail_us ?blackbox_cap ()
  in
  (match Platform.mount platform stack_spec with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("mount: " ^ e));
  let machine = Platform.machine platform in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Lab_sim.Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Lab_sim.Engine.spawn machine.Lab_sim.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                for i = 1 to ops do
                  let lba = (th * 100_000) + i in
                  if i mod 3 = 0 then
                    ignore
                      (Runtime.Client.write_block c ~mount:"blk::/obs-test"
                         ~lba ~bytes:4096)
                  else
                    ignore
                      (Runtime.Client.read_block c ~mount:"blk::/obs-test"
                         ~lba ~bytes:4096)
                done;
                incr finished;
                if !finished = threads then resume ())
          done));
  platform

let test_run_determinism () =
  let artifacts () =
    let p = run_platform ~sample:2 () in
    ( Trace.to_chrome_json (Platform.tracer p),
      Metrics.to_jsonl (Platform.metrics p) )
  in
  let t1, m1 = artifacts () in
  let t2, m2 = artifacts () in
  Alcotest.(check bool) "trace nonempty" true (String.length t1 > 100);
  Alcotest.(check string) "trace byte-identical" t1 t2;
  Alcotest.(check string) "metrics byte-identical" m1 m2

let test_span_nesting () =
  let p = run_platform ~sample:2 () in
  let evs = Trace.events (Platform.tracer p) in
  Alcotest.(check bool) "nonempty" true (evs <> []);
  (* Index root spans and module-stack stages by request id. *)
  let roots = Hashtbl.create 64 in
  let mstacks = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.ev) ->
      Alcotest.(check bool) "sampling respected" true
        (Trace.sampled (Platform.tracer p) ~id:e.Trace.ev_id);
      Alcotest.(check bool) "end >= begin" true (e.Trace.ev_dur >= 0.0);
      match (e.Trace.ev_cat, e.Trace.ev_name) with
      | "request", _ -> Hashtbl.replace roots e.Trace.ev_id e
      | "stage", "module_stack" -> Hashtbl.replace mstacks e.Trace.ev_id e
      | _ -> ())
    evs;
  Alcotest.(check bool) "traced requests exist" true (Hashtbl.length roots > 0);
  let within ~outer (e : Trace.ev) =
    e.Trace.ev_ts >= outer.Trace.ev_ts -. 1e-6
    && e.Trace.ev_ts +. e.Trace.ev_dur
       <= outer.Trace.ev_ts +. outer.Trace.ev_dur +. 1e-6
  in
  let stage_sums = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.ev) ->
      match Hashtbl.find_opt roots e.Trace.ev_id with
      | None -> ()
      | Some root -> (
          match e.Trace.ev_cat with
          | "stage" ->
              Alcotest.(check bool) "stage within root" true (within ~outer:root e);
              let prev =
                Option.value (Hashtbl.find_opt stage_sums e.Trace.ev_id)
                  ~default:0.0
              in
              Hashtbl.replace stage_sums e.Trace.ev_id (prev +. e.Trace.ev_dur)
          | "mod" -> (
              match Hashtbl.find_opt mstacks e.Trace.ev_id with
              | Some ms ->
                  Alcotest.(check bool) "mod within module_stack" true
                    (within ~outer:ms e)
              | None -> Alcotest.fail "mod span without module_stack stage")
          | _ -> ()))
    evs;
  (* Telescoping: the stages of each request sum to its root span
     within 1% (the acceptance bound; exact in practice). *)
  Hashtbl.iter
    (fun id (root : Trace.ev) ->
      match Hashtbl.find_opt stage_sums id with
      | None -> Alcotest.fail "request without stages"
      | Some sum ->
          let residual = Float.abs (root.Trace.ev_dur -. sum) in
          Alcotest.(check bool) "stages reconcile with end-to-end" true
            (residual <= 0.01 *. Float.max root.Trace.ev_dur 1.0))
    roots

let test_zero_overhead_when_off () =
  let run () =
    let p = run_platform ~sample:0 () in
    let machine = Platform.machine p in
    ( Trace.event_count (Platform.tracer p),
      Platform.now p,
      Lab_sim.Engine.events_executed machine.Lab_sim.Machine.engine )
  in
  let count0, elapsed0, events0 = run () in
  Alcotest.(check int) "no trace events" 0 count0;
  (* A traced run of the same workload must not perturb the simulation:
     identical virtual time and event count. *)
  let p = run_platform ~sample:1 () in
  let machine = Platform.machine p in
  Alcotest.(check bool) "tracing emitted events" true
    (Trace.event_count (Platform.tracer p) > 0);
  Alcotest.(check (float 0.0)) "same virtual time" elapsed0 (Platform.now p);
  Alcotest.(check int) "same event count" events0
    (Lab_sim.Engine.events_executed machine.Lab_sim.Machine.engine)

let test_capture_neutrality () =
  (* Exemplar capture and the flight recorder do their work in plain
     OCaml between engine events — no spawns, no simulated time — so
     turning both on full blast must leave the schedule untouched:
     identical event count and identical final virtual time. *)
  let observe p =
    let machine = Platform.machine p in
    ( Lab_sim.Engine.events_executed machine.Lab_sim.Machine.engine,
      Platform.now p )
  in
  let off = run_platform ~sample:0 () in
  let on =
    run_platform ~sample:0 ~exemplar_k:8 ~exemplar_tail_us:1.0
      ~blackbox_cap:256 ()
  in
  let events0, elapsed0 = observe off in
  let events1, elapsed1 = observe on in
  Alcotest.(check int) "same event count" events0 events1;
  Alcotest.(check (float 0.0)) "same virtual time" elapsed0 elapsed1;
  (* ... and the capture actually happened. *)
  (match Runtime.Runtime.exemplars (Platform.runtime on) with
  | None -> Alcotest.fail "exemplar store missing"
  | Some store ->
      Alcotest.(check int) "every request offered" (threads * ops)
        (Exemplar.offered store);
      Alcotest.(check bool) "tail requests promoted" true
        (Exemplar.stored store > 0);
      (* Full anatomy: each exemplar's stage records tile its root
         request span (same telescoping guarantee the tracer gives). *)
      List.iter
        (fun v ->
          Alcotest.(check bool) "has stages" true (v.Exemplar.v_stages <> []);
          Alcotest.(check int) "no overflow" 0 v.Exemplar.v_dropped;
          let sum =
            List.fold_left
              (fun acc s ->
                if s.Exemplar.s_cat = "stage" then
                  acc +. (s.Exemplar.s_t1 -. s.Exemplar.s_t0)
                else acc)
              0.0 v.Exemplar.v_stages
          in
          let residual = Float.abs (v.Exemplar.v_latency -. sum) in
          Alcotest.(check bool) "stages reconcile with latency" true
            (residual <= 0.01 *. Float.max v.Exemplar.v_latency 1.0))
        (Exemplar.dump store));
  (match Runtime.Runtime.blackbox (Platform.runtime on) with
  | None -> Alcotest.fail "flight recorder missing"
  | Some bb ->
      Alcotest.(check bool) "recorder saw traffic" true
        (Flightrec.recorded bb > 0);
      Alcotest.(check int) "clean run, no dumps" 0
        (List.length (Flightrec.dumps bb)));
  (* Same-seed determinism extends to the new artifacts. *)
  let again =
    run_platform ~sample:0 ~exemplar_k:8 ~exemplar_tail_us:1.0
      ~blackbox_cap:256 ()
  in
  let json p =
    match Runtime.Runtime.exemplars (Platform.runtime p) with
    | Some s -> Exemplar.to_json s
    | None -> ""
  in
  Alcotest.(check string) "exemplar json byte-identical" (json on) (json again)

let test_sampler_neutrality () =
  (* The sampler rides the engine clock between events (it is not a
     heap event), so enabling it must leave the simulation untouched:
     identical event count and identical final virtual time. *)
  let observe p =
    let machine = Platform.machine p in
    ( Lab_sim.Engine.events_executed machine.Lab_sim.Machine.engine,
      Platform.now p )
  in
  let off = run_platform ~sample:0 () in
  Alcotest.(check bool) "no sampler when off" true
    (Runtime.Runtime.timeseries (Platform.runtime off) = None);
  let on = run_platform ~sample:0 ~profile_period:25_000.0 () in
  let events0, elapsed0 = observe off in
  let events1, elapsed1 = observe on in
  Alcotest.(check int) "same event count" events0 events1;
  Alcotest.(check (float 0.0)) "same virtual time" elapsed0 elapsed1;
  (match Runtime.Runtime.timeseries (Platform.runtime on) with
  | None -> Alcotest.fail "sampler missing with profile_period set"
  | Some ts ->
      Alcotest.(check bool) "sampler ticked" true (Timeseries.ticks ts > 0);
      Alcotest.(check bool) "series registered" true
        (Timeseries.series_names ts <> []));
  (* Same-seed profile export is byte-identical. *)
  let again = run_platform ~sample:0 ~profile_period:25_000.0 () in
  Alcotest.(check string) "profile json byte-identical"
    (Platform.profile_json on)
    (Platform.profile_json again)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter interning" `Quick test_counter_interning;
          Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
          Alcotest.test_case "detached counter" `Quick test_detached_counter;
          Alcotest.test_case "gauge replace" `Quick test_gauge_replace;
          Alcotest.test_case "gauge read-through" `Quick test_gauge_read_through;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "jsonl stable" `Quick test_jsonl_stable;
          Alcotest.test_case "non-finite clamped" `Quick test_nonfinite_clamped;
          Alcotest.test_case "observe clamps non-finite" `Quick
            test_observe_clamps_nonfinite;
          Alcotest.test_case "gauge clamped at read" `Quick
            test_gauge_clamped_at_read;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "ticks and samples" `Quick
            test_timeseries_ticks_and_samples;
          Alcotest.test_case "ring wrap" `Quick test_timeseries_ring_wrap;
          Alcotest.test_case "guards" `Quick test_timeseries_guards;
          Alcotest.test_case "json stable" `Quick test_timeseries_json_stable;
        ] );
      ( "profile",
        [
          Alcotest.test_case "flamegraph" `Quick test_profile_flamegraph;
          Alcotest.test_case "tail and stability" `Quick
            test_profile_tail_and_stability;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sampling predicate" `Quick test_sampling_predicate;
          Alcotest.test_case "stage telescoping" `Quick test_stage_telescoping;
          Alcotest.test_case "chrome json stable" `Quick test_chrome_json_stable;
        ] );
      ( "exemplar",
        [
          Alcotest.test_case "promote/recycle/evict" `Quick
            test_exemplar_promote_recycle;
          Alcotest.test_case "stage copy" `Quick test_exemplar_stage_copy;
          Alcotest.test_case "disabled" `Quick test_exemplar_disabled;
        ] );
      ( "flightrec",
        [
          Alcotest.test_case "ring wrap" `Quick test_flightrec_ring;
          Alcotest.test_case "triggers and dumps" `Quick
            test_flightrec_triggers;
        ] );
      ( "platform",
        [
          Alcotest.test_case "run determinism" `Quick test_run_determinism;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "zero overhead when off" `Quick
            test_zero_overhead_when_off;
          Alcotest.test_case "capture neutrality" `Quick
            test_capture_neutrality;
          Alcotest.test_case "sampler neutrality" `Quick
            test_sampler_neutrality;
        ] );
    ]
