.PHONY: all build test bench bench-smoke check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe all

# Tiny-scale batching sweep (also asserts byte-identical rows across
# same-seed runs; exits nonzero on divergence).
bench-smoke:
	LABSTOR_SMOKE=1 dune exec bench/main.exe -- batching

# Full health check: build + all test suites + fault-injection smoke
# run (asserts deterministic fault traces). ~CI entry point.
check:
	@sh bin/check.sh

clean:
	dune clean
