.PHONY: all build test bench check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe all

# Full health check: build + all test suites + fault-injection smoke
# run (asserts deterministic fault traces). ~CI entry point.
check:
	@sh bin/check.sh

clean:
	dune clean
