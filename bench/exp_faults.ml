(* Robustness experiment — fault injection sweep.

   Drives a fio-style random-write workload (4 KiB, 8 threads) through
   a scheduler -> driver LabStack while the NVMe device runs a
   deterministic fault plan, sweeping the per-command I/O-error rate.
   Reports throughput, tail latency and the full error-path accounting
   (injected faults, client retries/requeues, failures surfaced to the
   application), then checks the determinism guarantee: two runs with
   the same seed must produce byte-identical fault traces.

   LABSTOR_SMOKE=1 shrinks the workload for CI. *)

open Labstor
open Lab_sim

let stack_spec =
  {|
mount: "blk::/faults"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: noop_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let threads = 8

let bytes = 4096

type outcome = {
  kiops : float;
  p50_us : float;
  p99_us : float;
  injected : int;
  retries : int;
  requeues : int;
  failed : int;
  trace : string;
}

let run_case ~rate ~seed ~ops =
  let rates = { Fault.no_rates with Fault.io_error = rate } in
  let platform =
    Platform.boot ~nworkers:4 ~seed
      ?fault_rates:(if rate > 0.0 then Some rates else None)
      ()
  in
  (match Platform.mount platform stack_spec with
  | Ok _ -> ()
  | Error e -> failwith ("exp_faults: mount: " ^ e));
  let machine = Platform.machine platform in
  let lat = Stats.create () in
  let failed = ref 0 in
  let clients = ref [] in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Engine.spawn machine.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                clients := c :: !clients;
                let rng = Rng.create (seed lxor (th * 7919)) in
                for _ = 1 to ops do
                  let lba = Rng.int rng 262144 in
                  let t0 = Machine.now machine in
                  match
                    Runtime.Client.write_block c ~mount:"blk::/faults" ~lba
                      ~bytes
                  with
                  | Ok _ -> Stats.add lat (Machine.now machine -. t0)
                  | Error _ -> incr failed
                done;
                incr finished;
                if !finished = threads then resume ())
          done));
  let elapsed = Platform.now platform in
  let total = ops * threads in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 !clients in
  let injected, trace =
    match Platform.fault_plan platform Lab_device.Profile.Nvme with
    | Some plan -> (Fault.injected_total plan, Fault.trace_to_string plan)
    | None -> (0, "")
  in
  {
    kiops = Stdlib.float_of_int total /. (elapsed /. 1e9) /. 1000.0;
    p50_us = Stats.percentile lat 50.0 /. 1e3;
    p99_us = Stats.percentile lat 99.0 /. 1e3;
    injected;
    retries = sum Runtime.Client.retries;
    requeues = sum Runtime.Client.requeues;
    failed = !failed;
    trace;
  }

let run () =
  let smoke = Sys.getenv_opt "LABSTOR_SMOKE" <> None in
  let ops = if smoke then 100 else 2000 in
  let seed = 0xFA17 in
  Bench_util.heading "faults"
    "Robustness: deterministic fault injection, retry & degraded mode";
  Printf.printf "  %d random 4 KiB writes x %d threads per point, seed %#x\n"
    ops threads seed;
  let sweep = [ 0.0; 0.001; 0.01; 0.05 ] in
  let widths = [ 8; 10; 10; 10; 9; 8; 9; 7 ] in
  let rows =
    List.map
      (fun rate ->
        let o = run_case ~rate ~seed ~ops in
        [
          Printf.sprintf "%.3f" rate;
          Bench_util.f1 o.kiops;
          Bench_util.f1 o.p50_us;
          Bench_util.f1 o.p99_us;
          string_of_int o.injected;
          string_of_int o.retries;
          string_of_int o.requeues;
          string_of_int o.failed;
        ])
      sweep
  in
  Bench_util.print_table widths
    [ "io_err"; "kIOPS"; "p50(us)"; "p99(us)"; "injected"; "retries"; "requeues"; "failed" ]
    rows;
  Bench_util.note
    "graceful degradation: bounded retries absorb transient errors;";
  Bench_util.note
    "only exhausted retries surface EIO to the application.";
  (* Determinism: identical seeds must give byte-identical traces. *)
  let a = run_case ~rate:0.01 ~seed ~ops in
  let b = run_case ~rate:0.01 ~seed ~ops in
  if a.trace = b.trace && a.trace <> "" then
    Bench_util.note "determinism: two seed-%#x runs gave identical %d-line fault traces"
      seed
      (List.length (String.split_on_char '\n' a.trace))
  else begin
    Bench_util.note "determinism VIOLATED: traces differ across identical runs";
    exit 1
  end
