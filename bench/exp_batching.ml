(* Batched submission/completion path sweep.

   Drives sequential 512 B writes through a blkswitch_sched ->
   kernel_driver stack on NVMe, sweeping the client batch size at fixed
   queue depths. Each thread owns a private LBA region and submits
   contiguous runs, so batches both coalesce doorbells (one ring per
   batch at the queue pair) and merge at the scheduler (adjacent LBAs
   fused into one device op). batch=1 takes the classic single-request
   path and must reproduce the unbatched numbers.

   Reported per point: throughput, p99 latency, doorbell rings per
   request, scheduler merges per request, and simulator events executed
   (a determinism fingerprint). Set LABSTOR_WALLCLOCK for events/sec of
   the simulator itself; LABSTOR_SMOKE=1 shrinks the workload for CI. *)

open Labstor
open Lab_sim

let stack_spec ~merge_window_ns =
  Printf.sprintf
    {|
mount: "blk::/batch"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: blkswitch_sched
    attrs:
      merge_window_ns: %.1f
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}
    merge_window_ns

(* 512 B writes: small enough that the NVMe bandwidth cap (2 GB/s =
   488k 4 KiB-IOPS) is far away and the per-request software path —
   doorbells, cross-core pulls, per-command device overhead — is what
   the sweep measures. *)
let bytes = 512

let sectors_per_op = bytes / 512

(* Thread-private LBA regions keep the streams disjoint: merges only
   ever fuse requests from the same batch. *)
let region_sectors = 16_777_216

let merge_window_ns ~batch = if batch > 1 then 2_000.0 else 0.0

type outcome = {
  kiops : float;
  p99_us : float;
  doorbells_per_req : float;
  merges_per_req : float;
  events : int;
}

let run_case ~seed ~qd ~batch ~total_ops =
  let threads = Stdlib.max 1 (qd / batch) in
  let rounds = Stdlib.max 1 (total_ops / (threads * batch)) in
  let total = threads * rounds * batch in
  let platform =
    Platform.boot ~nworkers:4 ~seed ~worker_batch_size:batch ()
  in
  (match
     Platform.mount platform (stack_spec ~merge_window_ns:(merge_window_ns ~batch))
   with
  | Ok _ -> ()
  | Error e -> failwith ("exp_batching: mount: " ^ e));
  let machine = Platform.machine platform in
  let lat = Stats.create () in
  let failed = ref 0 in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Engine.spawn machine.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                let cursor = ref (th * region_sectors) in
                for _ = 1 to rounds do
                  let t0 = Machine.now machine in
                  (if batch = 1 then
                     match
                       Runtime.Client.write_block c ~mount:"blk::/batch"
                         ~lba:!cursor ~bytes
                     with
                     | Ok _ -> Stats.add lat (Machine.now machine -. t0)
                     | Error _ -> incr failed
                   else
                     let ops =
                       List.init batch (fun i ->
                           {
                             Runtime.Client.op_kind = Core.Request.Write;
                             op_lba = !cursor + (i * sectors_per_op);
                             op_bytes = bytes;
                           })
                     in
                     match Runtime.Client.block_batch c ~mount:"blk::/batch" ops with
                     | Error _ -> failed := !failed + batch
                     | Ok results ->
                         let dt = Machine.now machine -. t0 in
                         List.iter
                           (function
                             | Ok _ -> Stats.add lat dt
                             | Error _ -> incr failed)
                           results);
                  cursor := !cursor + (batch * sectors_per_op)
                done;
                incr finished;
                if !finished = threads then resume ())
          done));
  let elapsed = Platform.now platform in
  let rt = Platform.runtime platform in
  let doorbells =
    List.fold_left
      (fun acc qp -> acc + Ipc.Qp.doorbell_rings qp)
      0
      (Ipc.Ipc_manager.qps (Runtime.Runtime.ipc rt))
  in
  let merges =
    match Core.Registry.find (Runtime.Runtime.registry rt) "sched0" with
    | Some m -> Mods.Blkswitch_sched.absorbed_reqs m
    | None -> 0
  in
  if !failed > 0 then
    Bench_util.note "WARNING: %d/%d ops failed (qd=%d batch=%d)" !failed total
      qd batch;
  let ftotal = Stdlib.float_of_int total in
  {
    kiops = ftotal /. (elapsed /. 1e9) /. 1000.0;
    p99_us = Stats.percentile lat 99.0 /. 1e3;
    doorbells_per_req = Stdlib.float_of_int doorbells /. ftotal;
    merges_per_req = Stdlib.float_of_int merges /. ftotal;
    events = Engine.events_executed machine.Machine.engine;
  }

let row ~qd ~batch (o : outcome) =
  [
    string_of_int qd;
    string_of_int batch;
    Bench_util.f1 o.kiops;
    Bench_util.f1 o.p99_us;
    Bench_util.f2 o.doorbells_per_req;
    Bench_util.f2 o.merges_per_req;
    string_of_int o.events;
  ]

let widths = [ 5; 6; 9; 9; 7; 8; 9 ]

let header = [ "qd"; "batch"; "kIOPS"; "p99(us)"; "db/req"; "mrg/req"; "events" ]

let run () =
  let smoke = Sys.getenv_opt "LABSTOR_SMOKE" <> None in
  let total_ops = if smoke then 256 else 4096 in
  let seed = 0xBA7C4 in
  Bench_util.heading "batching"
    "Batched submission: doorbell coalescing, batch dequeue, request merging";
  Printf.printf "  ~%d sequential %d B writes per point, seed %#x\n" total_ops
    bytes seed;
  let qds = [ 16; 64; 256 ] in
  let batches = [ 1; 4; 16; 64 ] in
  Bench_util.print_row widths header;
  Bench_util.print_row widths (List.map (fun w -> String.make w '-') widths);
  let events = ref 0 in
  let _, wall_s =
    Bench_util.time_events (fun () ->
        List.iter
          (fun qd ->
            List.iter
              (fun batch ->
                if batch <= qd then begin
                  let o = run_case ~seed ~qd ~batch ~total_ops in
                  events := !events + o.events;
                  Bench_util.print_row widths (row ~qd ~batch o)
                end)
              batches)
          qds;
        0)
  in
  Bench_util.note
    "one doorbell per batch + amortized cross-core pulls: db/req falls ~1/batch;";
  Bench_util.note
    "adjacent-LBA merging turns contiguous batches into single device ops.";
  Bench_util.note_event_rate ~events:!events ~wall_s;
  (* Determinism: the batched path must stay replayable — identical
     seeds give byte-identical rows (including the event count). *)
  let a = run_case ~seed ~qd:64 ~batch:16 ~total_ops in
  let b = run_case ~seed ~qd:64 ~batch:16 ~total_ops in
  if row ~qd:64 ~batch:16 a = row ~qd:64 ~batch:16 b then
    Bench_util.note "determinism: two seed-%#x qd=64 batch=16 runs matched" seed
  else begin
    Bench_util.note "determinism VIOLATED: rows differ across identical runs";
    exit 1
  end
