(* Sharded cache sweep: sequential readahead and coalesced write-back.

   Drives per-thread sequential 4 KiB streams through a cache ->
   kernel_driver stack on NVMe, sweeping the replacement policy (LRU /
   ARC), readahead on/off, the shard count, and the write mix. Streams
   are far larger than the cache, so with readahead off every read
   misses to the device; with readahead on the cache detects each
   stream (clients tag requests with their thread id) and fills ahead
   of the reader. Writes dirty fresh pages, so evictions exercise the
   coalesced write-back log.

   Reported per point: throughput, p99 latency, demand hit rate,
   readahead accuracy (prefetched pages later served / issued), the
   average merged flush batch, write-back device ops per evicted dirty
   page (< 1.0 when coalescing works), and simulator events executed (a
   determinism fingerprint). A machine-readable summary is written to
   BENCH_cache.json. Set LABSTOR_WALLCLOCK for events/sec of the
   simulator itself; LABSTOR_SMOKE=1 (or --smoke) shrinks the workload
   for CI. *)

open Labstor
open Lab_sim

let threads = 4

(* Thread-private page regions (caches address Block requests in page
   units): reads stream from the region base, writes from its upper
   half. Regions never overlap, so hits are entirely the cache's
   doing. *)
let region_pages = 1_000_000

let write_off = 500_000

let stack_spec ~policy ~ra ~shards =
  Printf.sprintf
    {|
mount: "blk::/cache"
rules:
  exec_mode: async
dag:
  - uuid: cache0
    mod: %s
    attrs:
      capacity_mb: 4
      shards: %d
      readahead: %b
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}
    policy shards ra

type outcome = {
  kiops : float;
  p99_us : float;
  hit_rate : float;
  ra_acc : float;
  flush_batch : float;
  wb_ops_per_page : float;  (* flush ops / evicted dirty pages *)
  events : int;
}

let core_of rt ~policy =
  match Core.Registry.find (Runtime.Runtime.registry rt) "cache0" with
  | None -> failwith "exp_cache: cache0 not in registry"
  | Some m -> (
      let core =
        if policy = "arc_cache" then Mods.Arc_cache.core m
        else Mods.Lru_cache.core m
      in
      match core with
      | Some c -> c
      | None -> failwith "exp_cache: cache0 has no engine state")

let run_case ~seed ~policy ~ra ~shards ~wr_pct ~ops_per_thread =
  let platform = Platform.boot ~nworkers:4 ~seed () in
  (match Platform.mount platform (stack_spec ~policy ~ra ~shards) with
  | Ok _ -> ()
  | Error e -> failwith ("exp_cache: mount: " ^ e));
  let machine = Platform.machine platform in
  let lat = Stats.create () in
  let failed = ref 0 in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Engine.spawn machine.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                let rpage = ref (th * region_pages) in
                let wpage = ref ((th * region_pages) + write_off) in
                for i = 1 to ops_per_thread do
                  let t0 = Machine.now machine in
                  let r =
                    if wr_pct > 0 && i mod (100 / wr_pct) = 0 then begin
                      let lba = !wpage in
                      incr wpage;
                      Runtime.Client.write_block c ~stream:th
                        ~mount:"blk::/cache" ~lba ~bytes:4096
                    end
                    else begin
                      let lba = !rpage in
                      incr rpage;
                      Runtime.Client.read_block c ~stream:th
                        ~mount:"blk::/cache" ~lba ~bytes:4096
                    end
                  in
                  match r with
                  | Ok _ -> Stats.add lat (Machine.now machine -. t0)
                  | Error _ -> incr failed
                done;
                incr finished;
                if !finished = threads then resume ())
          done));
  let elapsed = Platform.now platform in
  let rt = Platform.runtime platform in
  let core = core_of rt ~policy in
  let total = threads * ops_per_thread in
  if !failed > 0 then
    Bench_util.note "WARNING: %d/%d ops failed (%s ra=%b shards=%d)" !failed
      total policy ra shards;
  let hits = Mods.Cache_core.hits core in
  let misses = Mods.Cache_core.misses core in
  let dirty_evicted = Mods.Cache_core.dirty_evictions core in
  {
    kiops = Stdlib.float_of_int total /. (elapsed /. 1e9) /. 1000.0;
    p99_us = Stats.percentile lat 99.0 /. 1e3;
    hit_rate =
      Stdlib.float_of_int hits
      /. Stdlib.float_of_int (Stdlib.max 1 (hits + misses));
    ra_acc = Mods.Cache_core.readahead_accuracy core;
    flush_batch = Mods.Cache_core.avg_flush_batch core;
    wb_ops_per_page =
      (if dirty_evicted = 0 then 0.0
       else
         Stdlib.float_of_int (Mods.Cache_core.flush_ops core)
         /. Stdlib.float_of_int dirty_evicted);
    events = Engine.events_executed machine.Machine.engine;
  }

let widths = [ 9; 3; 6; 4; 8; 9; 6; 7; 7; 8; 9 ]

let header =
  [
    "policy";
    "ra";
    "shards";
    "wr%";
    "kIOPS";
    "p99(us)";
    "hit%";
    "ra-acc";
    "flush";
    "wb-op/p";
    "events";
  ]

let row ~policy ~ra ~shards ~wr_pct (o : outcome) =
  [
    policy;
    (if ra then "on" else "off");
    string_of_int shards;
    string_of_int wr_pct;
    Bench_util.f1 o.kiops;
    Bench_util.f1 o.p99_us;
    Printf.sprintf "%.1f" (100.0 *. o.hit_rate);
    Bench_util.f2 o.ra_acc;
    Bench_util.f1 o.flush_batch;
    Bench_util.f2 o.wb_ops_per_page;
    string_of_int o.events;
  ]

let json_escape_free name = name (* policy names are [a-z_]+ *)

let write_json path results =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i ((policy, ra, shards, wr_pct), (o : outcome)) ->
      Printf.fprintf oc
        "  {\"policy\": \"%s\", \"readahead\": %b, \"shards\": %d, \
         \"write_pct\": %d, \"kiops\": %.1f, \"p99_us\": %.1f, \
         \"hit_rate\": %.4f, \"readahead_accuracy\": %.4f, \
         \"avg_flush_batch\": %.2f, \"wb_ops_per_page\": %.4f}%s\n"
        (json_escape_free policy) ra shards wr_pct o.kiops o.p99_us o.hit_rate
        o.ra_acc o.flush_batch o.wb_ops_per_page
        (if i < List.length results - 1 then "," else ""))
    results;
  output_string oc "]\n";
  close_out oc

let run () =
  let smoke = Bench_util.smoke () in
  let ops_per_thread = if smoke then 300 else 2000 in
  let seed = 0xCACE in
  Bench_util.heading "cache"
    "Sharded cache: sequential readahead and coalesced dirty write-back";
  Printf.printf
    "  %d threads x %d sequential 4 KiB ops per point, 4 MiB cache, seed %#x\n"
    threads ops_per_thread seed;
  Bench_util.print_row widths header;
  Bench_util.print_row widths (List.map (fun w -> String.make w '-') widths);
  let events = ref 0 in
  let results = ref [] in
  let _, wall_s =
    Bench_util.time_events (fun () ->
        List.iter
          (fun policy ->
            List.iter
              (fun ra ->
                List.iter
                  (fun shards ->
                    List.iter
                      (fun wr_pct ->
                        let o =
                          run_case ~seed ~policy ~ra ~shards ~wr_pct
                            ~ops_per_thread
                        in
                        events := !events + o.events;
                        results :=
                          ((policy, ra, shards, wr_pct), o) :: !results;
                        Bench_util.print_row widths
                          (row ~policy ~ra ~shards ~wr_pct o))
                      [ 0; 25 ])
                  [ 1; 4 ])
              [ false; true ])
          [ "lru_cache"; "arc_cache" ];
        0)
  in
  let results = List.rev !results in
  write_json "BENCH_cache.json" results;
  Bench_util.note
    "readahead detects each thread's stream and fills ahead of the reader:";
  Bench_util.note
    "streaming reads turn from all-miss into mostly-hit at the same capacity;";
  Bench_util.note
    "evicted dirty pages flush as merged adjacent-LBA runs (wb-op/p << 1).";
  Bench_util.note_event_rate ~events:!events ~wall_s;
  (* Acceptance: readahead must beat no-readahead on pure sequential
     reads at equal capacity, for every policy/shard combination. *)
  let find policy ra shards wr_pct =
    List.assoc (policy, ra, shards, wr_pct) results
  in
  List.iter
    (fun policy ->
      List.iter
        (fun shards ->
          let off = find policy false shards 0 in
          let on = find policy true shards 0 in
          if on.kiops <= off.kiops then begin
            Bench_util.note
              "ACCEPTANCE VIOLATED: %s shards=%d readahead-on %.1f kIOPS <= \
               off %.1f kIOPS"
              policy shards on.kiops off.kiops;
            exit 1
          end)
        [ 1; 4 ])
    [ "lru_cache"; "arc_cache" ];
  (* Acceptance: coalescing keeps write-back device ops per evicted
     dirty page below 1 (one-write-per-page would be exactly 1.0). *)
  List.iter
    (fun ((policy, ra, shards, wr_pct), (o : outcome)) ->
      if wr_pct > 0 && o.wb_ops_per_page >= 1.0 then begin
        Bench_util.note
          "ACCEPTANCE VIOLATED: %s ra=%b shards=%d wr%%=%d write-back ops per \
           page %.2f >= 1.0"
          policy ra shards wr_pct o.wb_ops_per_page;
        exit 1
      end)
    results;
  (* Determinism: identical seeds must give byte-identical rows
     (including the event-count fingerprint). *)
  let a = run_case ~seed ~policy:"lru_cache" ~ra:true ~shards:4 ~wr_pct:25
      ~ops_per_thread
  in
  let b = run_case ~seed ~policy:"lru_cache" ~ra:true ~shards:4 ~wr_pct:25
      ~ops_per_thread
  in
  let r ~o = row ~policy:"lru_cache" ~ra:true ~shards:4 ~wr_pct:25 o in
  if r ~o:a = r ~o:b then
    Bench_util.note "determinism: two seed-%#x lru/ra/4-shard runs matched" seed
  else begin
    Bench_util.note "determinism VIOLATED: rows differ across identical runs";
    exit 1
  end
