(* Simulator-core benchmark: events/sec and minor words/event on the
   DES hot path.

   Three synthetic closed loops plus one full-stack scenario:

   - timer:  [loops] concurrent self-rescheduling timers on the pooled
             [Engine.timer] path (closure-free dispatch, calendar
             queue). This is the engine's allocation-free hot path and
             is gated at <= 2 minor words/event in steady state.
   - wait:   the same closed loop expressed as effect-based processes
             ([Engine.spawn] + [Engine.wait]) — the path every runtime
             coroutine takes. Reported for context; continuations
             allocate, so no words/event gate.
   - legacy: the identical timer workload on [Legacy_engine], a replica
             of the pre-rewrite engine (boxed keys, per-event closures,
             cmp-closure heap, Fun.protect per event). The before/after
             events/sec ratio is measured against it.
   - batching: one point of the exp_batching sweep, as a whole-stack
             events fingerprint.

   One in sixteen timers sleeps far beyond the calendar window so the
   overflow heap and window re-anchoring stay on the measured path.

   Default output is deterministic (event counts, words/event from
   Gc.minor_words deltas). Set LABSTOR_WALLCLOCK for events/sec and the
   new-vs-legacy speedup (asserted >= 5x in full runs); LABSTOR_SMOKE=1
   shrinks the workload for CI. Writes BENCH_sim.json. *)

open Lab_sim

let loops = 256

(* Spread delays across the calendar window; every 16th timer jumps
   past the 131 us window so the overflow heap and window re-anchoring
   stay on the measured path. *)
let delay_ns slot =
  if slot land 15 = 0 then 500_000 else 100 + (slot * 37 mod 1400)

(* Steady-state measurement around [f]: the caller runs a warmup phase
   first so pool and bucket growth are out of the way. *)
let measured e f =
  let e0 = Engine.events_executed e in
  let w0 = Gc.minor_words () in
  let t0 = Sys.time () in
  f ();
  let wall = Sys.time () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let events = Engine.events_executed e - e0 in
  (events, words /. Stdlib.float_of_int events, wall)

(* Pooled path: one shared [int -> unit] function, re-armed via
   [Engine.timer] — no per-event allocation anywhere in the loop. *)
let run_timer ~warmup ~total =
  let e = Engine.create () in
  let remaining = ref 0 in
  let rec fire slot =
    if !remaining > 0 then begin
      Stdlib.decr remaining;
      Engine.timer e ~ns:(delay_ns slot) fire slot
    end
  in
  let seed () =
    for i = 0 to loops - 1 do
      Engine.timer e ~ns:(100 + i) fire i
    done
  in
  remaining := warmup;
  seed ();
  Engine.run e;
  remaining := total;
  seed ();
  let events, wpe, wall = measured e (fun () -> Engine.run e) in
  (events, wpe, wall, Engine.now e)

(* Effect path: the same closed loop as cooperating processes. *)
let run_wait ~total =
  let e = Engine.create () in
  let remaining = ref total in
  for i = 0 to loops - 1 do
    let d = Stdlib.float_of_int (delay_ns i) in
    Engine.spawn e (fun () ->
        while !remaining > 0 do
          Stdlib.decr remaining;
          Engine.wait d
        done)
  done;
  measured e (fun () -> Engine.run e)

(* Pre-rewrite replica: every reschedule allocates a fresh thunk, every
   push a boxed key — exactly what the old engine did per event. *)
let run_legacy ~warmup ~total =
  let e = Legacy_engine.create () in
  let remaining = ref 0 in
  let rec fire slot () =
    if !remaining > 0 then begin
      Stdlib.decr remaining;
      Legacy_engine.schedule e
        (Legacy_engine.now e +. Stdlib.float_of_int (delay_ns slot))
        (fire slot)
    end
  in
  let seed () =
    for i = 0 to loops - 1 do
      Legacy_engine.schedule e
        (Legacy_engine.now e +. Stdlib.float_of_int (100 + i))
        (fire i)
    done
  in
  remaining := warmup;
  seed ();
  Legacy_engine.run e;
  remaining := total;
  seed ();
  let e0 = Legacy_engine.events_executed e in
  let w0 = Gc.minor_words () in
  let t0 = Sys.time () in
  Legacy_engine.run e;
  let wall = Sys.time () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let events = Legacy_engine.events_executed e - e0 in
  (events, words /. Stdlib.float_of_int events, wall)

let rate events wall =
  if wall > 0.0 then Stdlib.float_of_int events /. wall else 0.0

let run () =
  let smoke = Bench_util.smoke () in
  (* Warmup must cover at least one full calendar-window cycle (~42000
     events for this workload: ~3.1 ns of simulated time per event
     against a 131 us window) so pool and bucket growth are out of the
     measured phase. *)
  let warmup = if smoke then 50_000 else 100_000 in
  let timer_total = if smoke then 20_000 else 2_000_000 in
  let wait_total = if smoke then 10_000 else 400_000 in
  let legacy_total = if smoke then 10_000 else 400_000 in
  let batch_ops = if smoke then 256 else 2048 in
  Bench_util.heading "sim"
    "Simulator core: events/sec and minor words/event on the hot path";
  Printf.printf
    "  %d concurrent closed-loop timers, %d measured events after %d warmup\n"
    loops timer_total warmup;
  let widths = [ 10; 9; 9 ] in
  Bench_util.print_row widths [ "scenario"; "events"; "words/ev" ];
  Bench_util.print_row widths (List.map (fun w -> String.make w '-') widths);
  let t_events, t_wpe, t_wall, t_now = run_timer ~warmup ~total:timer_total in
  Bench_util.print_row widths
    [ "timer"; string_of_int t_events; Printf.sprintf "%.4f" t_wpe ];
  let w_events, w_wpe, w_wall = run_wait ~total:wait_total in
  Bench_util.print_row widths
    [ "wait"; string_of_int w_events; Printf.sprintf "%.2f" w_wpe ];
  let l_events, l_wpe, l_wall = run_legacy ~warmup ~total:legacy_total in
  Bench_util.print_row widths
    [ "legacy"; string_of_int l_events; Printf.sprintf "%.2f" l_wpe ];
  let b = Exp_batching.run_case ~seed:0xBA7C4 ~qd:64 ~batch:16
      ~total_ops:batch_ops in
  Bench_util.print_row widths
    [ "batching"; string_of_int b.Exp_batching.events; "-" ];
  Bench_util.note
    "timer is the pooled closure-free path; legacy replicates the";
  Bench_util.note
    "pre-rewrite engine (boxed keys, per-event closures, Fun.protect).";
  (* Allocation-regression guard: the pooled path must stay within 2
     minor words/event in steady state. Gc counters are deterministic,
     so the gate (and the JSON it feeds) cannot flake. Bytecode allots
     differently, so the gate binds in native runs only. *)
  let native = Sys.backend_type = Sys.Native in
  let alloc_ok = (not native) || t_wpe <= 2.0 in
  if not alloc_ok then begin
    Bench_util.note
      "ALLOCATION REGRESSION: pooled timer path at %.4f minor words/event (budget 2.0)"
      t_wpe;
    exit 1
  end;
  if Bench_util.wallclock_enabled () then begin
    Bench_util.note "timer:  %7.0fk events/sec" (rate t_events t_wall /. 1e3);
    Bench_util.note "wait:   %7.0fk events/sec" (rate w_events w_wall /. 1e3);
    Bench_util.note "legacy: %7.0fk events/sec" (rate l_events l_wall /. 1e3);
    if l_wall > 0.0 && t_wall > 0.0 then begin
      let speedup = rate t_events t_wall /. rate l_events l_wall in
      Bench_util.note "speedup (timer vs legacy): %.1fx" speedup;
      if (not smoke) && speedup < 5.0 then begin
        Bench_util.note
          "SPEEDUP REGRESSION: pooled path only %.1fx over legacy (floor 5.0x)"
          speedup;
        exit 1
      end
    end
  end;
  (* Determinism: identical runs must execute the identical event
     sequence and allocate the identical number of words. *)
  let t_events', t_wpe', _, t_now' = run_timer ~warmup ~total:timer_total in
  if t_events = t_events' && t_now = t_now' && t_wpe = t_wpe' then
    Bench_util.note "determinism: two timer-loop runs matched exactly"
  else begin
    Bench_util.note
      "determinism VIOLATED: timer-loop runs differ (events %d/%d)" t_events
      t_events';
    exit 1
  end;
  let oc = open_out "BENCH_sim.json" in
  Printf.fprintf oc
    "{\n\
    \  \"loops\": %d,\n\
    \  \"timer_events\": %d,\n\
    \  \"timer_words_per_event\": %.4f,\n\
    \  \"timer_alloc_ok\": %b,\n\
    \  \"wait_events\": %d,\n\
    \  \"wait_words_per_event\": %.2f,\n\
    \  \"legacy_events\": %d,\n\
    \  \"legacy_words_per_event\": %.2f,\n\
    \  \"batching_events\": %d,\n\
    \  \"deterministic\": %b\n\
     }\n"
    loops t_events t_wpe alloc_ok w_events w_wpe l_events l_wpe
    b.Exp_batching.events
    (t_events = t_events' && t_now = t_now');
  close_out oc;
  Bench_util.note "wrote BENCH_sim.json"
