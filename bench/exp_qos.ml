(* Multi-tenant QoS: O(1) DRR dispatch at scale and noisy-neighbor
   isolation.

   Three parts:

   1. DRR micro-benchmark. Registers T tenants (T in 16/256/4096), keeps
      8 of them backlogged, and drives the Tenant dispatch stage bare —
      no engine, no device — in a one-in-one-out steady loop (each
      release lets exactly one queued op dispatch). Queued ops all park
      on one shared, never-parked cell, so unpark is a no-op and the
      loop measures pure data-structure cost. Gates: minor words/op
      within the 2.0 event budget (deterministic, native only), weighted
      fairness among backlogged tenants, and — under LABSTOR_WALLCLOCK —
      dispatch ns/op at 4096 tenants within 1.25x its 16-tenant value
      (the O(1)-in-tenant-count claim).

   2. Waitq park/wake A/B. The pooled park-cell Waitq versus an inline
      replica of the pre-rewrite Waitq (a Queue of {slot; resume}
      records, one Engine.suspend closure per park), measured in minor
      words per park/wake cycle with a pooled timer as the waker.

   3. Noisy-neighbor sweep. N well-behaved tenants — each a qd-1 mixed
      stream of 16 KiB reads (latency-class, bypasses the window) with
      every 8th op a 32 KiB write (throughput-class, passes DRR) —
      against 48 clients sharing one misbehaving tenant looping 20 KiB
      writes, on a blkswitch_sched -> kernel_driver stack. The noisy
      tenant is token-bucket capped (700 MB/s, qcap 32). The gated
      metric is the latency-class SLO: p99 of the polite *reads*, which
      already carries the tenants' own bulk-transfer residual — the
      attacker can add at most one non-preemptible transfer on top, so
      isolation holds structurally. Gate: read p99 under attack at most
      1.5x read p99 alone, at every N.

   A machine-readable summary is written to BENCH_qos.json (N = 16/256
   e2e points only; the full-mode N = 4096 point is printed and gated
   but kept out of the JSON so smoke and full runs share a key set).
   LABSTOR_SMOKE=1 (or --smoke) shrinks the workload; wall-clock rates
   print only under LABSTOR_WALLCLOCK. *)

open Labstor
open Lab_sim

(* ------------------------------------------------------------------ *)
(* Part 1: DRR dispatch micro-benchmark                                *)

let drr_op_bytes = 32768

let drr_active = 8

type drr_out = {
  words_per_op : float;
  ns_per_op : float; (* 0.0 unless LABSTOR_WALLCLOCK *)
  fairness : float; (* served bytes per unit weight, max/min *)
}

let drr_case ~ntenants ~ops =
  let table = Ipc.Tenant.create () in
  let tenants =
    Array.init ntenants (fun i ->
        Ipc.Tenant.register table ~ext_id:i
          ~weight:(1 + (i mod 4))
          ~rate_mbps:0.0 ~burst_bytes:(256 * 1024) ~qcap:max_int)
  in
  (* Every queued op parks on this one shared cell, and the bench never
     actually parks — so each dispatch's unpark is a no-op and the loop
     exercises the DRR structures bare, with no engine involved. *)
  let cell = Engine.make_park_cell () in
  let submit i =
    let tn = tenants.(i mod drr_active) in
    ignore (Ipc.Tenant.submit table tn ~bytes:drr_op_bytes cell : bool)
  in
  (* Standing backlog: the window admits its first few ops, the rest
     queue round-robin across the active set. *)
  for i = 0 to (drr_active * 256) - 1 do
    submit i
  done;
  (* Weighted fairness, while every active tenant is still backlogged:
     releases only (no resubmission), so service reflects DRR weights
     rather than the submission pattern. *)
  let served0 =
    Array.map (fun tn -> Ipc.Tenant.served_bytes tn) (Array.sub tenants 0 drr_active)
  in
  for _ = 1 to 1000 do
    Ipc.Tenant.release table ~bytes:drr_op_bytes
  done;
  let per_weight =
    Array.init drr_active (fun i ->
        float_of_int (Ipc.Tenant.served_bytes tenants.(i) - served0.(i))
        /. float_of_int (Ipc.Tenant.weight tenants.(i)))
  in
  let fmax = Array.fold_left Stdlib.max neg_infinity per_weight in
  let fmin = Array.fold_left Stdlib.min infinity per_weight in
  (* Steady-state dispatch cost: one-in-one-out, so every release
     dispatches exactly one queued op. Warm up first so the per-tenant
     rings reach their high-water mark and stop growing. *)
  for i = 0 to 4095 do
    Ipc.Tenant.release table ~bytes:drr_op_bytes;
    submit i
  done;
  let w0 = Gc.minor_words () in
  let t0 = Sys.time () in
  for i = 0 to ops - 1 do
    Ipc.Tenant.release table ~bytes:drr_op_bytes;
    submit i
  done;
  let wall = Sys.time () -. t0 in
  let words = Gc.minor_words () -. w0 in
  {
    words_per_op = words /. float_of_int ops;
    ns_per_op =
      (if Bench_util.wallclock_enabled () then wall *. 1e9 /. float_of_int ops
       else 0.0);
    fairness = fmax /. Stdlib.max 1.0 fmin;
  }

(* ------------------------------------------------------------------ *)
(* Part 2: Waitq park/wake — pooled cells vs the pre-rewrite design    *)

(* Inline replica of the old Waitq: an entry record and an
   Engine.suspend closure per park. Kept here (not in lib/) purely as
   the A/B baseline. *)
module Legacy_waitq = struct
  type 'a entry = { slot : 'a option ref; resume : Engine.resumer }

  type 'a t = 'a entry Queue.t

  let create () : 'a t = Queue.create ()

  let length = Queue.length

  let park (q : 'a t) slot =
    Engine.suspend (fun resume -> Queue.add { slot; resume } q)

  let wake (q : 'a t) v =
    match Queue.take_opt q with
    | None -> false
    | Some e ->
        e.slot := Some v;
        e.resume ();
        true
end

(* One parker process reusing a single hoisted slot; a pooled timer as
   the waker (closure-free re-arm), so the measured delta is the park
   path itself. *)
let waitq_cycles ~legacy ~cycles =
  let eng = Engine.create () in
  let finished = ref false in
  let slot : int option ref = ref None in
  let q_new : int Waitq.t = Waitq.create () in
  let q_old : int Legacy_waitq.t = Legacy_waitq.create () in
  Engine.spawn eng (fun () ->
      for _ = 1 to cycles do
        if legacy then Legacy_waitq.park q_old slot else Waitq.park q_new slot;
        slot := None
      done;
      finished := true);
  let rec tick _ =
    if not !finished then begin
      if legacy then (if Legacy_waitq.length q_old > 0 then ignore (Legacy_waitq.wake q_old 1))
      else if Waitq.length q_new > 0 then ignore (Waitq.wake q_new 1);
      Engine.timer eng ~ns:100 tick 0
    end
  in
  let w0 = Gc.minor_words () in
  Engine.timer eng ~ns:100 tick 0;
  Engine.run eng;
  (Gc.minor_words () -. w0) /. float_of_int cycles

(* ------------------------------------------------------------------ *)
(* Part 3: noisy-neighbor sweep                                        *)

let mount_pt = "blk::/qos"

let stack_spec =
  {|
mount: "blk::/qos"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let polite_bytes = 16384 (* latency-class: at the bypass threshold *)

let polite_wr_bytes = 32768 (* every 8th polite op: throughput-class *)

let noisy_bytes = 20480 (* throughput-class: passes the DRR window *)

let noisy_clients = 48 (* all sharing uid 999: one tenant, one budget *)

let noisy_uid = 999

(* Per-tenant think time scales with N so aggregate polite load stays
   ~200 MB/s (10% of NVMe bandwidth) at every tenant count. *)
let base_period = 81920.0

type e2e_out = {
  p50_us : float;
  p99_us : float;
  co_p99_us : float;
      (* p99 of the same reads measured from their fixed-rate schedule
         (loop start + k·period) instead of from the send: the
         coordinated-omission-corrected view of this closed-loop bench.
         Reported as a note; the gated metric stays send-origin. *)
  polite_failed : int;
  throttled : int;
  noisy_ops : int;
  noisy_dispatched : int;
  events : int;
}

let run_e2e ~seed ~n_tenants ~noisy ~total_ops =
  let platform = Platform.boot ~nworkers:4 ~worker_max_inflight:32 ~seed () in
  (match Platform.mount platform stack_spec with
  | Ok _ -> ()
  | Error e -> failwith ("exp_qos: mount: " ^ e));
  let machine = Platform.machine platform in
  let eng = machine.Machine.engine in
  for i = 0 to n_tenants - 1 do
    ignore (Platform.register_tenant platform ~uid:(2000 + i) ())
  done;
  if noisy then
    ignore
      (Platform.register_tenant platform ~uid:noisy_uid ~weight:1
         ~rate_mbps:700.0 ~burst_kb:64 ~qcap:32 ());
  (* At least one full 8-op cycle per tenant, so every tenant's stream
     includes its bulk burst and the read p99 reflects it. *)
  let ops_per = Stdlib.max 8 (total_ops / n_tenants) in
  let period = base_period *. float_of_int n_tenants in
  let lat = Stats.create () in
  (* Schedule-origin latencies: pure arithmetic beside the existing
     Stats — no extra engine events, so the run (and its gated JSON)
     is byte-identical with or without this measurement. *)
  let lat_co = Stats.create () in
  let failed = ref 0 in
  let stop = ref false in
  let noisy_done = ref 0 in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for i = 0 to n_tenants - 1 do
            Engine.spawn eng (fun () ->
                let c =
                  Platform.client platform ~uid:(2000 + i) ~thread:(i mod 16) ()
                in
                (* Second connection for the tenant's bulk writes: a QP's
                   completion queue is single-consumer, so the concurrent
                   burst write may not share the reader's QP. Same uid —
                   same tenant, same budgets. *)
                let cw =
                  Platform.client platform ~uid:(2000 + i) ~thread:(i mod 16) ()
                in
                (* Stagger arrivals across one period. *)
                Engine.wait (float_of_int i *. base_period);
                let loop_start = Machine.now machine in
                let lba0 = i * 16384 in
                for k = 0 to ops_per - 1 do
                  if k mod 8 = 7 then begin
                    (* The tenant's own bulk traffic, issued concurrently
                       with the next read (a qd-2 burst: think of a store
                       flushing its log while serving a lookup). Windowed,
                       so it passes DRR and shares the window by weight
                       with every other bulk stream; not part of the
                       latency-class SLO — but the read issued right
                       behind it collides with its transfer, so the
                       tenant's *alone* read p99 already carries one
                       bulk-transfer residual. *)
                    Engine.spawn eng (fun () ->
                        match
                          Runtime.Client.write_block cw ~mount:mount_pt
                            ~lba:(lba0 + 8192 + (k * 8))
                            ~bytes:polite_wr_bytes
                        with
                        | Ok _ -> ()
                        | Error _ -> incr failed);
                    Engine.wait 8000.0
                  end;
                  (* The fixed-rate schedule this pacing loop aims for:
                     read k was *intended* at loop_start + k·period (+ the
                     burst iterations' 8µs offset). The loop actually
                     sends at previous-completion + think, so past
                     service times push sends behind schedule — the
                     drift closed-loop measurement silently forgives. *)
                  let sched =
                    loop_start
                    +. (float_of_int k *. period)
                    +. (if k mod 8 = 7 then 8000.0 else 0.0)
                  in
                  let t0 = Machine.now machine in
                  (match
                     Runtime.Client.read_block c ~mount:mount_pt
                       ~lba:(lba0 + (k * 32))
                       ~bytes:polite_bytes
                   with
                  | Ok _ ->
                      let tc = Machine.now machine in
                      Stats.add lat (tc -. t0);
                      Stats.add lat_co (tc -. Float.min sched t0)
                  | Error _ -> incr failed);
                  Engine.wait (if k mod 8 = 7 then period -. 8000.0 else period)
                done;
                incr finished;
                if !finished = n_tenants then begin
                  stop := true;
                  resume ()
                end)
          done;
          if noisy then
            for j = 0 to noisy_clients - 1 do
              Engine.spawn eng (fun () ->
                  let c =
                    Platform.client platform ~uid:noisy_uid
                      ~thread:(16 + (j mod 4))
                      ()
                  in
                  let lba = ref (100_000_000 + (j * 1_000_000)) in
                  while not !stop do
                    (match
                       Runtime.Client.write_block c ~mount:mount_pt ~lba:!lba
                         ~bytes:noisy_bytes
                     with
                    | Ok _ -> incr noisy_done
                    | Error _ -> () (* EAGAIN after backoff: keep pushing *));
                    lba := !lba + 40
                  done)
            done));
  let throttled, noisy_ops, noisy_dispatched =
    if noisy then
      match Platform.tenant_for platform ~uid:noisy_uid with
      | Some tn ->
          Ipc.Tenant.(throttled tn, ops_done tn, dispatched tn)
      | None -> (0, 0, 0)
    else (0, 0, 0)
  in
  {
    p50_us = Stats.percentile lat 50.0 /. 1e3;
    p99_us = Stats.percentile lat 99.0 /. 1e3;
    co_p99_us = Stats.percentile lat_co 99.0 /. 1e3;
    polite_failed = !failed;
    throttled;
    noisy_ops;
    noisy_dispatched;
    events = Engine.events_executed eng;
  }

(* ------------------------------------------------------------------ *)

let drr_widths = [ 8; 11; 10; 9 ]

let e2e_widths = [ 8; 10; 11; 7; 9; 9; 9; 9 ]

let run () =
  let smoke = Bench_util.smoke () in
  let native = Sys.backend_type = Sys.Native in
  Bench_util.heading "qos"
    "Multi-tenant QoS: O(1) DRR dispatch and noisy-neighbor isolation";

  (* --- Part 1 --- *)
  let drr_ops =
    if Bench_util.wallclock_enabled () then 2_000_000
    else if smoke then 20_000
    else 100_000
  in
  Printf.printf
    "  DRR dispatch: %d active of T registered tenants, %d-byte ops, %d \
     steady-state ops\n"
    drr_active drr_op_bytes drr_ops;
  Bench_util.print_row drr_widths
    [ "tenants"; "words/op"; "ns/op"; "fair" ];
  let drr_tenant_counts = [ 16; 256; 4096 ] in
  let drr =
    List.map
      (fun t ->
        let o = drr_case ~ntenants:t ~ops:drr_ops in
        Bench_util.print_row drr_widths
          [
            string_of_int t;
            Printf.sprintf "%.4f" o.words_per_op;
            (if o.ns_per_op > 0.0 then Printf.sprintf "%.1f" o.ns_per_op
             else "-");
            Printf.sprintf "%.3f" o.fairness;
          ];
        (t, o))
      drr_tenant_counts
  in
  let drr_words t = (List.assoc t drr).words_per_op in
  let alloc_ok =
    (not native) || List.for_all (fun (_, o) -> o.words_per_op <= 2.0) drr
  in
  if not alloc_ok then begin
    Bench_util.note
      "ALLOCATION REGRESSION: DRR dispatch over 2.0 minor words/op (16:%.4f \
       256:%.4f 4096:%.4f)"
      (drr_words 16) (drr_words 256) (drr_words 4096);
    exit 1
  end;
  let fairness_ratio = (List.assoc 16 drr).fairness in
  if List.exists (fun (_, o) -> o.fairness > 1.25) drr then begin
    Bench_util.note
      "FAIRNESS REGRESSION: served bytes per unit weight spread over 1.25x \
       among backlogged tenants";
    exit 1
  end;
  if Bench_util.wallclock_enabled () then begin
    let n16 = (List.assoc 16 drr).ns_per_op
    and n4096 = (List.assoc 4096 drr).ns_per_op in
    Bench_util.note "dispatch ns/op: 16 tenants %.1f, 4096 tenants %.1f (%.2fx)"
      n16 n4096
      (n4096 /. Stdlib.max 1e-9 n16);
    if n16 > 0.0 && n4096 > 1.25 *. n16 then begin
      Bench_util.note
        "SCALING REGRESSION: dispatch at 4096 tenants over 1.25x its \
         16-tenant cost";
      exit 1
    end
  end;

  (* --- Part 2 --- *)
  let cycles = if smoke then 5_000 else 20_000 in
  let wq_new = waitq_cycles ~legacy:false ~cycles in
  let wq_old = waitq_cycles ~legacy:true ~cycles in
  Bench_util.note
    "waitq park/wake: %.2f minor words/cycle pooled, %.2f legacy \
     (suspend-per-park), %d cycles"
    wq_new wq_old cycles;
  if native && wq_new >= wq_old then begin
    Bench_util.note
      "WAITQ REGRESSION: pooled park/wake no cheaper than the legacy path";
    exit 1
  end;

  (* --- Part 3 --- *)
  let total_ops = if smoke then 1024 else 4096 in
  let seed = 0x0905 in
  let tenant_counts = if smoke then [ 16; 256 ] else [ 16; 256; 4096 ] in
  Printf.printf
    "  noisy neighbor: N polite qd-1 tenants (16 KiB reads + every-8th-op 32 \
     KiB write) vs %d\n\
    \  clients on one capped tenant (20 KiB writes, 700 MB/s, qcap 32); %d \
     polite ops per point,\n\
    \  seed %#x; gated metric: p99 of the polite reads\n"
    noisy_clients total_ops seed;
  Bench_util.print_row e2e_widths
    [
      "tenants"; "alone-p99"; "attack-p99"; "ratio"; "thrott"; "noisy-op";
      "dispatch"; "events";
    ];
  let e2e =
    List.map
      (fun n ->
        let alone = run_e2e ~seed ~n_tenants:n ~noisy:false ~total_ops in
        let attack = run_e2e ~seed ~n_tenants:n ~noisy:true ~total_ops in
        let ratio = attack.p99_us /. Stdlib.max 1e-9 alone.p99_us in
        Bench_util.print_row e2e_widths
          [
            string_of_int n;
            Bench_util.f1 alone.p99_us;
            Bench_util.f1 attack.p99_us;
            Printf.sprintf "%.3f" ratio;
            string_of_int attack.throttled;
            string_of_int attack.noisy_ops;
            string_of_int attack.noisy_dispatched;
            string_of_int attack.events;
          ];
        if alone.polite_failed > 0 || attack.polite_failed > 0 then
          Bench_util.note "WARNING: %d polite ops failed at N=%d"
            (alone.polite_failed + attack.polite_failed)
            n;
        (* Coordinated-omission check (informational, not gated): the
           same reads measured from their fixed-rate schedule instead of
           from the send. The gap quantifies how much the closed-loop
           pacing under-reports the attacked p99 ratio above. *)
        Bench_util.note
          "CO check N=%d: schedule-origin p99 alone %.1fus (%.2fx naive), \
           attacked %.1fus (%.2fx naive)"
          n alone.co_p99_us
          (alone.co_p99_us /. Stdlib.max 1e-9 alone.p99_us)
          attack.co_p99_us
          (attack.co_p99_us /. Stdlib.max 1e-9 attack.p99_us);
        (n, alone, attack, ratio))
      tenant_counts
  in
  let isolation_ok =
    List.for_all
      (fun (_, _, attack, ratio) ->
        ratio <= 1.5 && attack.throttled > 0 && attack.noisy_dispatched > 0)
      e2e
  in
  if not isolation_ok then begin
    List.iter
      (fun (n, _, attack, ratio) ->
        if ratio > 1.5 then
          Bench_util.note
            "ISOLATION REGRESSION: N=%d polite p99 shifted %.3fx under attack \
             (bound 1.5x)"
            n ratio;
        if attack.throttled = 0 then
          Bench_util.note
            "ISOLATION REGRESSION: N=%d noisy tenant was never throttled" n;
        if attack.noisy_dispatched = 0 then
          Bench_util.note
            "ISOLATION REGRESSION: N=%d no noisy op passed the DRR window" n)
      e2e;
    exit 1
  end;
  (* Determinism: a same-seed rerun of the attacked point must match
     exactly — latencies, throttle count and event sequence. *)
  let _, _, attack16, _ = List.find (fun (n, _, _, _) -> n = 16) e2e in
  let attack16' = run_e2e ~seed ~n_tenants:16 ~noisy:true ~total_ops in
  let deterministic =
    attack16.p99_us = attack16'.p99_us
    && attack16.throttled = attack16'.throttled
    && attack16.events = attack16'.events
  in
  if deterministic then
    Bench_util.note "determinism: two attacked N=16 runs matched exactly"
  else begin
    Bench_util.note
      "determinism VIOLATED: attacked N=16 runs differ (events %d/%d)"
      attack16.events attack16'.events;
    exit 1
  end;

  (* --- JSON (same key set in smoke and full runs) --- *)
  let oc = open_out "BENCH_qos.json" in
  Printf.fprintf oc
    "{\"drr\": {\"words_per_op_16\": %.4f, \"words_per_op_256\": %.4f, \
     \"words_per_op_4096\": %.4f, \"fairness_ratio\": %.4f, \"alloc_ok\": \
     %d},\n"
    (drr_words 16) (drr_words 256) (drr_words 4096) fairness_ratio
    (if alloc_ok then 1 else 0);
  Printf.fprintf oc
    " \"waitq\": {\"words_per_cycle\": %.2f, \"legacy_words_per_cycle\": \
     %.2f},\n"
    wq_new wq_old;
  List.iter
    (fun (n, alone, attack, ratio) ->
      if n <= 256 then
        Printf.fprintf oc
          " \"e2e_%d\": {\"alone_p99_us\": %.2f, \"attacked_p99_us\": %.2f, \
           \"ratio\": %.4f, \"alone_p50_us\": %.2f, \"throttled\": %d, \
           \"noisy_ops\": %d, \"events\": %d},\n"
          n alone.p99_us attack.p99_us ratio alone.p50_us attack.throttled
          attack.noisy_ops attack.events)
    e2e;
  Printf.fprintf oc " \"isolation_ok\": %d, \"deterministic\": %d}\n"
    (if isolation_ok then 1 else 0)
    (if deterministic then 1 else 0);
  close_out oc;
  Bench_util.note "wrote BENCH_qos.json"
