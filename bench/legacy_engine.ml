(* Replica of the pre-rewrite DES hot loop, kept so `bench sim` can
   measure the rewrite's speedup against the engine it replaced rather
   than against a guess. Faithful to the old Lab_sim.Engine per-event
   costs: a boxed {time; seq} key record and a [unit -> unit] closure
   allocated per event, a generic binary heap comparing keys through an
   indirect [cmp] closure, and a [Fun.protect] + engine-option
   save/restore around every dispatch. Only the scheduling subset the
   synthetic workload needs is replicated — effects/processes ran on
   top of exactly this path. *)

open Lab_sim

type key = { time : float; seq : int }

type t = {
  mutable now : float;
  events : (key, unit -> unit) Heap.t;
  mutable seq : int;
  mutable executed : int;
}

let compare_key a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let current : t option ref = ref None

let create () =
  { now = 0.0; events = Heap.create ~cmp:compare_key (); seq = 0; executed = 0 }

let now t = t.now

let schedule t time thunk =
  t.seq <- t.seq + 1;
  Heap.push t.events { time; seq = t.seq } thunk

let exec_event t k thunk =
  t.now <- k.time;
  t.executed <- t.executed + 1;
  let saved = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := saved) thunk

let run t =
  let rec drain () =
    match Heap.pop t.events with
    | None -> ()
    | Some (k, thunk) ->
        exec_event t k thunk;
        drain ()
  in
  drain ()

let events_executed t = t.executed
