(* Latency anatomy, derived from spans.

   Where exp_anatomy reconstructs the paper's Fig 4(a) stack anatomy
   from cost constants, this experiment measures it: every request is
   traced (trace_sample = 1) through a cache -> scheduler -> driver
   async LabStack, and the per-stage breakdown (submit, queue wait,
   worker dispatch, module stack, completion, reap) is aggregated from
   the emitted spans. The telescoping stage API guarantees the stages
   of each request tile its root span, so the table is checked to
   reconcile with end-to-end latency within 1% per request.

   Inside the module-stack stage the nested mod/device spans are
   unwound into exclusive per-layer software time (cache, scheduler,
   driver) plus raw device service time.

   Also asserts the zero-overhead-when-off guarantee: a run with
   trace_sample = 0 must execute the identical number of simulator
   events in identical simulated time as the traced run.

   Writes BENCH_anatomy.json. LABSTOR_SMOKE=1 shrinks the workload. *)

open Labstor
open Lab_sim

let stack_spec =
  {|
mount: "blk::/anatomy"
rules:
  exec_mode: async
dag:
  - uuid: cache0
    mod: lru_cache
    attrs:
      capacity_mb: 4
      shards: 2
    outputs: [sched0]
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let threads = 4

let bytes = 4096

type run = { elapsed : float; events : int; spans : Obs.Trace.ev list }

let run_case ~seed ~ops ~sample =
  let platform = Platform.boot ~nworkers:4 ~seed ~trace_sample:sample () in
  (match Platform.mount platform stack_spec with
  | Ok _ -> ()
  | Error e -> failwith ("exp_anatomy2: mount: " ^ e));
  let machine = Platform.machine platform in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Engine.spawn machine.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                let rng = Rng.create (seed lxor (th * 7919)) in
                for i = 1 to ops do
                  let lba = Rng.int rng 262144 in
                  if i mod 4 = 0 then
                    ignore
                      (Runtime.Client.write_block c ~mount:"blk::/anatomy"
                         ~lba ~bytes)
                  else
                    ignore
                      (Runtime.Client.read_block c ~mount:"blk::/anatomy"
                         ~lba ~bytes)
                done;
                incr finished;
                if !finished = threads then resume ())
          done));
  {
    elapsed = Platform.now platform;
    events = Engine.events_executed machine.Machine.engine;
    spans = Obs.Trace.events (Platform.tracer platform);
  }

(* The telescoped stages, in request order. *)
let stages =
  [ "submit"; "queue_wait"; "dispatch"; "module_stack"; "complete"; "reap" ]

type anatomy = {
  per_stage : (string * Stats.t) list;
  cache_ns : Stats.t;  (** lru_cache software time, downstream excluded *)
  sched_ns : Stats.t;
  driver_ns : Stats.t;
  device_ns : Stats.t;
  e2e : Stats.t;
  requests : int;
  max_residual : float;  (** worst |root - sum(stages)| / root *)
}

let aggregate spans =
  let per_stage = List.map (fun s -> (s, Stats.create ())) stages in
  let cache_ns = Stats.create () in
  let sched_ns = Stats.create () in
  let driver_ns = Stats.create () in
  let device_ns = Stats.create () in
  let e2e = Stats.create () in
  (* Per-request accumulators: root duration, stage-duration sum, and
     the nested mod/device spans for exclusive-time unwinding. *)
  let by_req = Hashtbl.create 256 in
  let acc id =
    match Hashtbl.find_opt by_req id with
    | Some a -> a
    | None ->
        let a = (ref 0.0, ref 0.0, Hashtbl.create 8) in
        Hashtbl.add by_req id a;
        a
  in
  List.iter
    (fun (e : Obs.Trace.ev) ->
      let root, stage_sum, mods = acc e.Obs.Trace.ev_id in
      match e.Obs.Trace.ev_cat with
      | "request" -> root := e.Obs.Trace.ev_dur
      | "stage" ->
          stage_sum := !stage_sum +. e.Obs.Trace.ev_dur;
          (match List.assoc_opt e.Obs.Trace.ev_name per_stage with
          | Some st -> Stats.add st e.Obs.Trace.ev_dur
          | None -> ())
      | "mod" | "device" ->
          (* A request can traverse a module several times (e.g. the
             ride-fill path); keep the total per layer. *)
          let prev =
            Option.value (Hashtbl.find_opt mods e.Obs.Trace.ev_name)
              ~default:0.0
          in
          Hashtbl.replace mods e.Obs.Trace.ev_name
            (prev +. e.Obs.Trace.ev_dur)
      | _ -> ())
    spans;
  let requests = ref 0 in
  let max_residual = ref 0.0 in
  Hashtbl.iter
    (fun _ (root, stage_sum, mods) ->
      if !root > 0.0 then begin
        incr requests;
        Stats.add e2e !root;
        let residual = Float.abs (!root -. !stage_sum) /. !root in
        if residual > !max_residual then max_residual := residual;
        (* Nested spans: cache contains sched contains driver contains
           device; subtracting the inner total leaves each layer's own
           software time. A cache hit has no inner spans at all. *)
        let total name =
          Option.value (Hashtbl.find_opt mods name) ~default:0.0
        in
        let cache = total "lru_cache" in
        let sched = total "blkswitch_sched" in
        let driver = total "kernel_driver" in
        let device = total "device" in
        Stats.add cache_ns (Float.max 0.0 (cache -. sched));
        Stats.add sched_ns (Float.max 0.0 (sched -. driver));
        Stats.add driver_ns (Float.max 0.0 (driver -. device));
        Stats.add device_ns device
      end)
    by_req;
  {
    per_stage;
    cache_ns;
    sched_ns;
    driver_ns;
    device_ns;
    e2e;
    requests = !requests;
    max_residual = !max_residual;
  }

let write_json path (a : anatomy) =
  let oc = open_out path in
  let pair name st =
    Printf.sprintf
      "    {\"stage\": \"%s\", \"mean_ns\": %.1f, \"p99_ns\": %.1f}" name
      (Stats.mean st)
      (Stats.percentile st 99.0)
  in
  let rows =
    List.map (fun (n, st) -> pair n st) a.per_stage
    @ [
        pair "module_stack.cache" a.cache_ns;
        pair "module_stack.sched" a.sched_ns;
        pair "module_stack.driver" a.driver_ns;
        pair "module_stack.device" a.device_ns;
      ]
  in
  Printf.fprintf oc
    "{\n  \"requests\": %d,\n  \"e2e_mean_ns\": %.1f,\n  \
     \"max_stage_residual\": %.6f,\n  \"stages\": [\n%s\n  ]\n}\n"
    a.requests (Stats.mean a.e2e) a.max_residual
    (String.concat ",\n" rows);
  close_out oc

let run () =
  let smoke = Bench_util.smoke () in
  let ops = if smoke then 200 else 2000 in
  let seed = 0xA2A7 in
  Bench_util.heading "anatomy2"
    "Latency anatomy from request-lifecycle spans (measured, not modeled)";
  Printf.printf
    "  %d random 4 KiB ops (1-in-4 writes) x %d threads, every request traced, seed %#x\n"
    ops threads seed;
  let traced, wall_s =
    Bench_util.time_events (fun () -> run_case ~seed ~ops ~sample:1)
  in
  let a = aggregate traced.spans in
  let e2e_mean = Stats.mean a.e2e in
  let share st =
    if e2e_mean > 0.0 then 100.0 *. Stats.mean st /. e2e_mean else 0.0
  in
  let widths = [ 22; 10; 10; 7 ] in
  Bench_util.print_table widths
    [ "stage"; "mean(ns)"; "p99(ns)"; "share" ]
    (List.map
       (fun (name, st) ->
         [
           name;
           Bench_util.f0 (Stats.mean st);
           Bench_util.f0 (Stats.percentile st 99.0);
           Printf.sprintf "%.1f%%" (share st);
         ])
       (a.per_stage
       @ [
           ("  cache (sw)", a.cache_ns);
           ("  sched (sw)", a.sched_ns);
           ("  driver (sw)", a.driver_ns);
           ("  device", a.device_ns);
         ]));
  Bench_util.note "end-to-end %s ns mean over %d traced requests"
    (Bench_util.f0 e2e_mean) a.requests;
  write_json "BENCH_anatomy.json" a;
  (* Acceptance: the telescoped stages of every request must tile its
     root span — worst residual within 1%. *)
  if a.requests = 0 || a.max_residual > 0.01 then begin
    Bench_util.note
      "RECONCILIATION FAILED: max |root - sum(stages)|/root = %.4f over %d requests"
      a.max_residual a.requests;
    exit 1
  end
  else
    Bench_util.note
      "reconciliation: stage sums match end-to-end latency (max residual %.4f%%)"
      (100.0 *. a.max_residual);
  (* Zero overhead when off: an untraced run must be indistinguishable
     from the traced run in simulated time and event count. *)
  let off = run_case ~seed ~ops ~sample:0 in
  if List.length off.spans <> 0 then begin
    Bench_util.note "OVERHEAD CHECK FAILED: sample=0 emitted %d events"
      (List.length off.spans);
    exit 1
  end;
  if off.elapsed <> traced.elapsed || off.events <> traced.events then begin
    Bench_util.note
      "OVERHEAD CHECK FAILED: traced %.1f ns/%d events vs untraced %.1f ns/%d events"
      traced.elapsed traced.events off.elapsed off.events;
    exit 1
  end
  else
    Bench_util.note
      "zero overhead: traced and untraced runs identical (%d events, %.2f ms simulated)"
      off.events (off.elapsed /. 1e6);
  Bench_util.note_event_rate ~events:(traced.events + off.events) ~wall_s
