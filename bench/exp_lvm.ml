(* Volume-manager experiment — mirrored redundancy and online rebuild.

   Scenario (RAID1 over two NVMe legs): populate a mirrored volume,
   measure healthy read latency, then script one leg offline
   (Fault.offline) and measure the degraded phase — every read must
   still succeed on the surviving leg, with p99 inflation bounded by a
   stated factor. When the leg returns, the background resilver copies
   every allocated extent at a capped rate while foreground reads
   continue; the run asserts rebuild_frac reaches 1.0 and that
   replaying the redo journal reproduces a consistent volume group
   equal to the live one. A RAID0 stripe over both legs is then
   compared against a single device on a bandwidth-bound stream.

   Determinism: the whole mirror scenario runs twice with the same
   seed and must produce byte-identical summaries (journal included).

   Writes BENCH_lvm.json. LABSTOR_SMOKE=1 / --smoke shrinks the
   workload. *)

open Labstor
open Lab_sim
open Lab_mods

let threads = 4

let bytes = 4096

let extent_blocks = 2048 (* 1 MiB extents, the lab_lvm default *)

(* p99 inflation bound asserted for the degraded phase. *)
let degraded_p99_factor = 3.0

let mirror_spec =
  {|
mount: "blk::/vol"
dag:
  - uuid: lvm0
    mod: lab_lvm
    attrs:
      raid: 1
      legs: [nvme, nvme2]
|}

let stripe_spec =
  {|
mount: "blk::/stripe"
dag:
  - uuid: lvm0
    mod: lab_lvm
    attrs:
      raid: 0
      legs: [nvme, nvme2]
|}

let single_spec =
  {|
mount: "blk::/single"
dag:
  - uuid: drv0
    mod: kernel_driver
|}

let lvm_mod platform =
  match
    Lab_core.Registry.find
      (Runtime.Runtime.registry (Platform.runtime platform))
      "lvm0"
  with
  | Some m -> m
  | None -> failwith "exp_lvm: lvm0 not mounted"

(* Run [f] on [threads] concurrent client threads and wait for all. *)
let spawn_clients platform f =
  let machine = Platform.machine platform in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Engine.spawn machine.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                f th c;
                incr finished;
                if !finished = threads then resume ())
          done))

type mirror_outcome = {
  healthy_p99_us : float;
  degraded_p99_us : float;
  degraded_failures : int;
  rebuild_ms : float;
  counters : (string * int) list;
  rebuild_frac : float;
  journal_len : int;
  journal_consistent : bool;
  journal_matches_live : bool;
  summary : string;  (* byte-identical across same-seed runs *)
}

let counter counters nm = try List.assoc nm counters with Not_found -> 0

let run_mirror ~seed ~extents ~ops =
  let platform =
    Platform.boot ~nworkers:4 ~seed
      ~devices:[ Lab_device.Profile.Nvme; Lab_device.Profile.Nvme ]
      ()
  in
  (match Platform.mount platform mirror_spec with
  | Ok _ -> ()
  | Error e -> failwith ("exp_lvm: mount: " ^ e));
  let machine = Platform.machine platform in
  let mount = "blk::/vol" in
  let span = extents * extent_blocks in
  let healthy = Stats.create () in
  let degraded = Stats.create () in
  let failures = ref 0 in
  let read_phase stats th c n rng =
    for _ = 1 to n do
      let lba = Rng.int rng span in
      let t0 = Machine.now machine in
      match Runtime.Client.read_block c ~mount ~lba ~bytes with
      | Ok _ -> Stats.add stats (Machine.now machine -. t0)
      | Error _ -> incr failures
    done;
    ignore th
  in
  (* Phase 1: populate every extent (one write each), then healthy
     reads served round-robin by both mirror legs. *)
  spawn_clients platform (fun th c ->
      let per = extents / threads in
      for i = 0 to per - 1 do
        let lba = ((th * per) + i) * extent_blocks in
        match Runtime.Client.write_block c ~mount ~lba ~bytes with
        | Ok _ -> ()
        | Error _ -> incr failures
      done;
      read_phase healthy th c ops (Rng.create (seed lxor (th * 7919))));
  if !failures > 0 then failwith "exp_lvm: healthy phase saw failures";
  (* Phase 2: take leg nvme2 offline for a fixed window. The device
     schedules the loss/return events; lab_lvm's health watcher flips
     the mirror into degraded mode. *)
  let t1 = Platform.now platform in
  let from_ns = t1 +. 100_000.0 in
  let window_ns = 5_000_000.0 in
  let until_ns = from_ns +. window_ns in
  Lab_device.Device.set_fault_plan
    (Platform.device_by_name platform "nvme2")
    (Fault.create
       ~script:[ Fault.Offline { from_ns; until_ns; queue = None } ]
       ~seed ());
  spawn_clients platform (fun th c ->
      Engine.wait (from_ns +. 10_000.0 -. Machine.now machine);
      (* A few writes while degraded: they land on the surviving leg
         only and must be resilvered later. *)
      for i = 0 to 3 do
        let lba = (((th * 4) + i) mod extents) * extent_blocks in
        match Runtime.Client.write_block c ~mount ~lba ~bytes with
        | Ok _ -> ()
        | Error _ -> incr failures
      done;
      read_phase degraded th c ops (Rng.create (seed lxor (th * 104729))));
  let degraded_failures = !failures in
  (* Phase 3: the leg returns at [until_ns]; foreground reads continue
     while the background resilver runs to completion. *)
  let m = lvm_mod platform in
  let rebuild_t0 = until_ns in
  let rebuild_done_at = ref 0.0 in
  spawn_clients platform (fun th c ->
      let rng = Rng.create (seed lxor (th * 15485863)) in
      let now () = Machine.now machine in
      if until_ns +. 10_000.0 > now () then
        Engine.wait (until_ns +. 10_000.0 -. now ());
      let guard = ref 0 in
      while Lab_lvm.rebuild_frac m < 1.0 && !guard < 200_000 do
        incr guard;
        let lba = Rng.int rng span in
        (match Runtime.Client.read_block c ~mount ~lba ~bytes with
        | Ok _ -> ()
        | Error _ -> incr failures);
        Engine.wait 20_000.0
      done;
      if th = 0 then rebuild_done_at := now ());
  let counters = Lab_lvm.counters m in
  let frac = Lab_lvm.rebuild_frac m in
  let ops_list = Lab_lvm.journal_ops m in
  let vg = Lab_lvm.vg m in
  let replayed =
    Lab_lvm.Meta.replay ~nlegs:vg.Lab_lvm.Meta.nlegs
      ~extents_per_leg:vg.Lab_lvm.Meta.extents_per_leg ops_list
  in
  let summary =
    String.concat "\n"
      (List.map Lab_lvm.Meta.op_to_string ops_list
      @ List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters
      @ [
          Printf.sprintf "healthy_p99=%.1f degraded_p99=%.1f frac=%.3f"
            (Stats.percentile healthy 99.0)
            (Stats.percentile degraded 99.0)
            frac;
        ])
  in
  {
    healthy_p99_us = Stats.percentile healthy 99.0 /. 1e3;
    degraded_p99_us = Stats.percentile degraded 99.0 /. 1e3;
    degraded_failures;
    rebuild_ms = (!rebuild_done_at -. rebuild_t0) /. 1e6;
    counters;
    rebuild_frac = frac;
    journal_len = List.length ops_list;
    journal_consistent = Lab_lvm.Meta.consistent replayed;
    journal_matches_live = Lab_lvm.Meta.equal replayed vg;
    summary;
  }

(* Bandwidth-bound sequential stream through a stack; returns GB/s. *)
let run_stream ~seed ~spec ~mount ~devices ~ops_per_thread =
  let platform = Platform.boot ~nworkers:4 ~seed ~devices () in
  (match Platform.mount platform spec with
  | Ok _ -> ()
  | Error e -> failwith ("exp_lvm: mount: " ^ e));
  let big = 262144 in
  let blocks_per_op = big / 512 in
  let t0 = Platform.now platform in
  spawn_clients platform (fun th c ->
      let base = th * ops_per_thread * blocks_per_op * 2 in
      for i = 0 to ops_per_thread - 1 do
        let lba = base + (i * blocks_per_op) in
        ignore (Runtime.Client.write_block c ~mount ~lba ~bytes:big)
      done;
      for i = 0 to ops_per_thread - 1 do
        let lba = base + (i * blocks_per_op) in
        ignore (Runtime.Client.read_block c ~mount ~lba ~bytes:big)
      done);
  let elapsed = Platform.now platform -. t0 in
  let total_bytes = 2 * threads * ops_per_thread * big in
  Stdlib.float_of_int total_bytes /. elapsed (* bytes/ns = GB/s *)

let run () =
  let smoke = Bench_util.smoke () in
  let extents = if smoke then 16 else 64 in
  let ops = if smoke then 100 else 400 in
  let stream_ops = if smoke then 16 else 48 in
  let seed = 0x1074 in
  Bench_util.heading "lvm"
    "Volume manager: mirrored redundancy, degraded mode & online rebuild";
  Printf.printf
    "  RAID1 over 2 NVMe legs, %d x 1 MiB extents, %d reads/thread x %d \
     threads, seed %#x\n"
    extents ops threads seed;
  let o = run_mirror ~seed ~extents ~ops in
  let c nm = counter o.counters nm in
  Bench_util.print_table [ 10; 12; 12; 11; 9; 9; 11 ]
    [ "phase"; "p99(us)"; "failures"; "deg_reads"; "deg_wr"; "legs_lost"; "rebuilds" ]
    [
      [
        "healthy";
        Bench_util.f1 o.healthy_p99_us;
        "0"; "-"; "-"; "-"; "-";
      ];
      [
        "degraded";
        Bench_util.f1 o.degraded_p99_us;
        string_of_int o.degraded_failures;
        string_of_int (c "degraded_reads");
        string_of_int (c "degraded_writes");
        string_of_int (c "legs_lost");
        string_of_int (c "rebuilds_completed");
      ];
    ];
  Bench_util.note "rebuild: %.2f ms after the leg returned, frac %.2f, %d journal records"
    o.rebuild_ms o.rebuild_frac (c "journal_records");
  (* (a) single-mirror loss leaves reads available, p99 bounded. *)
  if o.degraded_failures > 0 then begin
    Bench_util.note "AVAILABILITY FAILED: %d reads failed while degraded"
      o.degraded_failures;
    exit 1
  end;
  if o.degraded_p99_us > degraded_p99_factor *. o.healthy_p99_us then begin
    Bench_util.note "P99 BOUND FAILED: degraded %.1fus > %.1fx healthy %.1fus"
      o.degraded_p99_us degraded_p99_factor o.healthy_p99_us;
    exit 1
  end;
  Bench_util.note "degraded p99 within %.1fx of healthy" degraded_p99_factor;
  (* (b) rebuild completed under foreground traffic. *)
  if o.rebuild_frac < 1.0 || c "rebuilds_completed" < 1 then begin
    Bench_util.note "REBUILD FAILED: frac %.3f, completed %d" o.rebuild_frac
      (c "rebuilds_completed");
    exit 1
  end;
  (* Crash consistency: replaying the redo journal reproduces the live
     volume group. *)
  if not (o.journal_consistent && o.journal_matches_live) then begin
    Bench_util.note "JOURNAL FAILED: consistent=%b matches_live=%b"
      o.journal_consistent o.journal_matches_live;
    exit 1
  end;
  Bench_util.note "journal: %d ops replay to a consistent volume group"
    o.journal_len;
  (* RAID0 stripe vs a single device on a bandwidth-bound stream. *)
  let nvme2 = [ Lab_device.Profile.Nvme; Lab_device.Profile.Nvme ] in
  let raid0_gbps =
    run_stream ~seed ~spec:stripe_spec ~mount:"blk::/stripe" ~devices:nvme2
      ~ops_per_thread:stream_ops
  in
  let single_gbps =
    run_stream ~seed ~spec:single_spec ~mount:"blk::/single"
      ~devices:[ Lab_device.Profile.Nvme ] ~ops_per_thread:stream_ops
  in
  let speedup = raid0_gbps /. single_gbps in
  Bench_util.note "raid0 stream: %.2f GB/s vs single %.2f GB/s (%.2fx)"
    raid0_gbps single_gbps speedup;
  if speedup < 1.2 then begin
    Bench_util.note "STRIPE FAILED: raid0 speedup %.2fx < 1.2x" speedup;
    exit 1
  end;
  (* (c) same-seed determinism, journal included. *)
  let o2 = run_mirror ~seed ~extents ~ops in
  if not (String.equal o.summary o2.summary) then begin
    Bench_util.note "determinism VIOLATED: summaries differ across identical runs";
    exit 1
  end;
  Bench_util.note
    "determinism: two seed-%#x scenarios gave byte-identical summaries (%d lines)"
    seed
    (List.length (String.split_on_char '\n' o.summary));
  let oc = open_out "BENCH_lvm.json" in
  Printf.fprintf oc
    "{\n\
    \  \"extents\": %d,\n\
    \  \"reads_per_thread\": %d,\n\
    \  \"healthy_p99_us\": %.1f,\n\
    \  \"degraded_p99_us\": %.1f,\n\
    \  \"degraded_p99_factor_bound\": %.1f,\n\
    \  \"degraded_failures\": %d,\n\
    \  \"degraded_reads\": %d,\n\
    \  \"degraded_writes\": %d,\n\
    \  \"legs_lost\": %d,\n\
    \  \"rebuilds_completed\": %d,\n\
    \  \"rebuild_frac\": %.2f,\n\
    \  \"rebuild_ms\": %.2f,\n\
    \  \"journal_records\": %d,\n\
    \  \"journal_consistent\": %b,\n\
    \  \"raid0_gbps\": %.2f,\n\
    \  \"single_gbps\": %.2f,\n\
    \  \"raid0_speedup\": %.2f,\n\
    \  \"deterministic\": %b\n\
     }\n"
    extents ops o.healthy_p99_us o.degraded_p99_us degraded_p99_factor
    o.degraded_failures (c "degraded_reads") (c "degraded_writes")
    (c "legs_lost")
    (c "rebuilds_completed")
    o.rebuild_frac o.rebuild_ms (c "journal_records")
    (o.journal_consistent && o.journal_matches_live)
    raid0_gbps single_gbps speedup
    (String.equal o.summary o2.summary);
  close_out oc
