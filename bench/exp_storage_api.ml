(* Figure 6 — Storage interface performance.

   Compares kernel I/O APIs (POSIX pwrite, POSIX AIO, libaio, io_uring)
   against LabStor's Driver LabMods (Kernel Driver, SPDK, DAX) on every
   device class, for 4 KiB and 128 KiB random writes, single thread,
   direct I/O. IOPS are reported raw and normalized to POSIX, as in the
   paper. *)

open Labstor
open Lab_sim
open Lab_device
open Lab_kernel

let make_machine () = Machine.create ~ncores:8 ()

let run_fio machine ~bytes ~total target =
  let job =
    {
      Lab_workloads.Fio.default_job with
      Lab_workloads.Fio.pattern = Lab_workloads.Fio.Randwrite;
      block_bytes = bytes;
      total_bytes_per_thread = total;
      nthreads = 1;
    }
  in
  (Lab_workloads.Fio.run machine job target).Lab_workloads.Fio.iops

let in_sim f =
  let m = make_machine () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  Option.get !result

let dev_kind_of = function
  | Core.Request.Read -> Device.Read
  | Core.Request.Write -> Device.Write

(* Kernel API path. *)
let api_iops kind api ~bytes ~total =
  in_sim (fun m ->
      let dev = Device.create m.Machine.engine (Profile.of_kind kind) in
      let blk = Blk.create m dev ~sched:Blk.Noop in
      let t = Api.create m blk in
      let target =
        Lab_workloads.Fio.target_of_submit (fun ~thread ~kind ~off ~bytes ->
            Api.submit_wait t ~api ~thread ~kind:(dev_kind_of kind) ~off ~bytes)
      in
      run_fio m ~bytes ~total target)

(* LabStor driver LabMod, executed client-side (Lab-D style): the
   paper's storage-interface stacks contain only the driver. *)
let driver_iops kind which ~bytes ~total =
  in_sim (fun m ->
      let dev = Device.create m.Machine.engine (Profile.of_kind kind) in
      let labmod =
        match which with
        | `Kernel_driver ->
            let blk = Blk.create m dev ~sched:Blk.Noop in
            Mods.Kernel_driver.factory ~blk ~uuid:"drv" ~attrs:[]
        | `Spdk -> Mods.Spdk_driver.factory ~device:dev ~uuid:"drv" ~attrs:[]
        | `Dax -> Mods.Dax_driver.factory ~device:dev ~uuid:"drv" ~attrs:[]
      in
      let ctx thread =
        {
          Core.Labmod.machine = m;
          thread;
          forward = (fun _ -> Core.Request.Done);
          forward_async = (fun _ _ -> ());
        }
      in
      let counter = ref 0 in
      let target =
        Lab_workloads.Fio.target_of_submit (fun ~thread ~kind ~off ~bytes ->
            incr counter;
            let req =
              Core.Request.make ~id:!counter ~pid:1 ~uid:0 ~thread ~stack_id:0
                ~now:(Machine.now m)
                (Core.Request.Block
                   {
                     Core.Request.b_kind = kind;
                     b_lba = off / 4096;
                     b_bytes = bytes;
                     b_sync = false;
                   })
            in
            ignore (labmod.Core.Labmod.ops.Core.Labmod.operate labmod (ctx thread) req))
      in
      run_fio m ~bytes ~total target)

let supports kind = function
  | `Kernel_driver -> true
  | `Spdk -> (Profile.of_kind kind).Profile.supports_polling
  | `Dax -> (Profile.of_kind kind).Profile.byte_addressable

let run () =
  let kinds = [ Profile.Hdd; Profile.Sata_ssd; Profile.Nvme; Profile.Pmem ] in
  let sizes = [ (4096, "4KiB"); (131072, "128KiB") ] in
  List.iter
    (fun (bytes, size_label) ->
      Bench_util.heading "fig6" (Printf.sprintf "Storage API performance, %s random writes (IOPS, normalized to POSIX)" size_label);
      let widths = [ 6; 10; 10; 10; 10; 11; 10; 10 ] in
      Bench_util.print_table widths
        [ "dev"; "POSIX"; "AIO"; "libaio"; "io_uring"; "KernDriver"; "SPDK"; "DAX" ]
        (List.map
           (fun kind ->
             (* Scale op count to device speed so HDD runs stay short. *)
             let total =
               match kind with
               | Profile.Hdd -> 200 * bytes
               | Profile.Sata_ssd -> 1000 * bytes
               | Profile.Nvme | Profile.Pmem -> 2000 * bytes
             in
             let posix = api_iops kind Api.Psync ~bytes ~total in
             let cell v = Printf.sprintf "%s (%.2f)" (Bench_util.kops v) (v /. posix) in
             let api_cell a = cell (api_iops kind a ~bytes ~total) in
             let drv_cell which =
               if supports kind which then cell (driver_iops kind which ~bytes ~total)
               else "-"
             in
             [
               Profile.kind_to_string kind;
               Printf.sprintf "%s (1.00)" (Bench_util.kops posix);
               api_cell Api.Posix_aio;
               api_cell Api.Libaio;
               api_cell Api.Io_uring;
               drv_cell `Kernel_driver;
               drv_cell `Spdk;
               drv_cell `Dax;
             ])
           kinds))
    sizes;
  Bench_util.note
    "paper shape: LabStor paths win on fast devices (KernelDriver >= +15%% over";
  Bench_util.note
    "io_uring, SPDK ~ +12%% over KernelDriver at 4KiB on NVMe); gaps shrink to ~6%%";
  Bench_util.note "at 128KiB; AIO worst (60-70%% overhead); HDD indifferent."
