(* Tail-latency exemplar capture + flight-recorder black box.

   Three claims, each gated:

   1. Zero overhead / engine neutrality. The observability layer does
      its work in plain OCaml between engine events — no spawns, no
      simulated time. A run with capture off must be *identical* to a
      run that never heard of the feature (same event count, same
      virtual time), and — stronger — a run with exemplar capture and
      the flight recorder on full blast must still replay the exact
      same schedule.

   2. Retroactive tail capture. Under open-loop overload (offered rate
      past the knee, CO-safe measurement via Workloads.Load), at least
      90% of the slowest 0.1% of completed requests — ranked by
      corrected latency — must end the run with a stored exemplar
      carrying full stage anatomy (stage records telescoping to the
      request's end-to-end latency). This is the case a prospective
      1-in-N sampler loses: the decision to keep the anatomy is made
      at completion, after the latency is known.

   3. Triggered black-box dumps. A scripted mid-run device outage must
      leave a dump whose reason is the client-visible errno:ENODEV and
      whose event list contains the triggering event itself.

   Plus the standing determinism gate: same-seed reruns byte-identical
   exemplar and black-box exports, identical event counts.

   BENCH_exemplars.json carries the neutrality verdicts, coverage,
   store/recorder counters and determinism flag; smoke and full runs
   emit the same key set. *)

open Labstor
open Lab_sim

let mount_pt = "blk::/exemplars"

let stack_spec =
  {|
mount: "blk::/exemplars"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let read_bytes = 4096

let injectors = 16

type obs = Plain | Off | On

(* One open-loop run; [latencies] collects every completed request's
   corrected latency (completion − scheduled arrival), the same number
   the exemplar store ranks by. *)
let run_point ~seed ~rate_kops ~total ~obs ?fault_script ?(slo = false) () =
  let boot () =
    match obs with
    | Plain ->
        Platform.boot ~nworkers:4 ~worker_max_inflight:32 ~seed ?fault_script ()
    | Off ->
        Platform.boot ~nworkers:4 ~worker_max_inflight:32 ~seed ?fault_script
          ~exemplar_k:0 ~blackbox_cap:0 ()
    | On ->
        if slo then
          Platform.boot ~nworkers:4 ~worker_max_inflight:32 ~seed ?fault_script
            ~exemplar_k:32 ~blackbox_cap:4096 ~slo_p99_target_us:500.0
            ~slo_window_ms:1.0 ()
        else
          Platform.boot ~nworkers:4 ~worker_max_inflight:32 ~seed ?fault_script
            ~exemplar_k:32 ~blackbox_cap:4096 ()
  in
  let platform = boot () in
  (match Platform.mount platform stack_spec with
  | Ok _ -> ()
  | Error e -> failwith ("exp_exemplars: mount: " ^ e));
  let machine = Platform.machine platform in
  let latencies = ref [] in
  let res =
    Platform.go platform (fun () ->
        let clients =
          Array.init injectors (fun i ->
              Platform.client platform ~thread:(i mod 16) ())
        in
        let next = ref 0 in
        let region_blocks = 1 lsl 17 in
        let spec =
          {
            Workloads.Load.default_spec with
            proc = Workloads.Load.Poisson { rate_ops_s = rate_kops *. 1e3 };
            seed;
            total;
            injectors;
          }
        in
        Workloads.Load.run machine spec ~submit:(fun ~injector ~scheduled ->
            let lba = !next mod region_blocks * 8 in
            incr next;
            match
              Runtime.Client.read_block clients.(injector)
                ~scheduled_at:scheduled ~mount:mount_pt ~lba ~bytes:read_bytes
            with
            | Ok _ ->
                latencies :=
                  (Sim.Machine.now machine -. scheduled) :: !latencies;
                true
            | Error _ -> false))
  in
  (platform, res, Engine.events_executed machine.Machine.engine, !latencies)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let run () =
  let smoke = Bench_util.smoke () in
  Bench_util.heading "exemplars"
    "Tail exemplar capture + flight recorder: neutrality, coverage, dumps";
  let seed = 0x0B57A11 in
  let total = if smoke then 2000 else 8000 in
  let overload_kops = 1600.0 and cruise_kops = 400.0 in

  (* ---- Phase 1: engine neutrality --------------------------------- *)
  let _, _, ev_plain, _ =
    run_point ~seed ~rate_kops:cruise_kops ~total:(total / 2) ~obs:Plain ()
  in
  let p_off, _, ev_off, _ =
    run_point ~seed ~rate_kops:cruise_kops ~total:(total / 2) ~obs:Off ()
  in
  let p_on, _, ev_on, _ =
    run_point ~seed ~rate_kops:cruise_kops ~total:(total / 2) ~obs:On ()
  in
  let vt_plain = 0.0 in
  ignore vt_plain;
  let now_of p = Platform.now p in
  let off_neutral = ev_plain = ev_off in
  let on_neutral = ev_plain = ev_on && now_of p_off = now_of p_on in
  Bench_util.note
    "neutrality: plain/off/on executed %d/%d/%d engine events (virtual time \
     %s)"
    ev_plain ev_off ev_on
    (if now_of p_off = now_of p_on then "identical" else "DIVERGED");
  if not off_neutral then begin
    Bench_util.note
      "NEUTRALITY REGRESSION: capture-off run diverged from a no-obs run";
    exit 1
  end;
  if not on_neutral then begin
    Bench_util.note
      "NEUTRALITY REGRESSION: capture-on run perturbed the schedule";
    exit 1
  end;

  (* ---- Phase 2: tail coverage under overload ---------------------- *)
  let p2, res2, ev2, lats = run_point ~seed ~rate_kops:overload_kops ~total ~obs:On () in
  let store =
    match Runtime.Runtime.exemplars (Platform.runtime p2) with
    | Some s -> s
    | None -> failwith "exp_exemplars: store missing"
  in
  let completed = res2.Workloads.Load.completed in
  let sorted = List.sort (fun a b -> compare b a) lats in
  let n_tail = Stdlib.max 1 (completed / 1000) in
  let tail_floor = List.nth sorted (n_tail - 1) in
  let views = Obs.Exemplar.dump store in
  let covered =
    Stdlib.min n_tail
      (List.length
         (List.filter
            (fun v -> v.Obs.Exemplar.v_latency >= tail_floor -. 0.5)
            views))
  in
  let coverage = float_of_int covered /. float_of_int n_tail in
  Bench_util.note
    "coverage: %d of the %d slowest completions (slowest 0.1%% of %d, floor \
     %.0f ns) hold exemplars; store %d/%d used, %d offered, %d promoted, %d \
     evicted"
    covered n_tail completed tail_floor
    (Obs.Exemplar.stored store)
    (Obs.Exemplar.k store)
    (Obs.Exemplar.offered store)
    (Obs.Exemplar.promoted store)
    (Obs.Exemplar.evicted store);
  if coverage < 0.90 then begin
    Bench_util.note
      "COVERAGE REGRESSION: %.0f%% of the slowest 0.1%% captured (bound 90%%)"
      (coverage *. 100.0);
    exit 1
  end;
  (* Anatomy: every stored exemplar's stage records tile its root span. *)
  List.iter
    (fun v ->
      if v.Obs.Exemplar.v_stages = [] then begin
        Bench_util.note "ANATOMY REGRESSION: exemplar %d has no stages"
          v.Obs.Exemplar.v_id;
        exit 1
      end;
      let sum =
        List.fold_left
          (fun acc s ->
            if s.Obs.Exemplar.s_cat = "stage" then
              acc +. (s.Obs.Exemplar.s_t1 -. s.Obs.Exemplar.s_t0)
            else acc)
          0.0 v.Obs.Exemplar.v_stages
      in
      let residual = Float.abs (v.Obs.Exemplar.v_latency -. sum) in
      if residual > 0.01 *. Float.max v.Obs.Exemplar.v_latency 1.0 then begin
        Bench_util.note
          "ANATOMY REGRESSION: exemplar %d stages sum %.0f ns vs latency %.0f \
           ns"
          v.Obs.Exemplar.v_id sum v.Obs.Exemplar.v_latency;
        exit 1
      end)
    views;

  (* ---- Phase 3: triggered black-box dump on injected ENODEV ------- *)
  let outage_from = 2_000_000.0 in
  let outage =
    [
      Fault.Offline
        { from_ns = outage_from; until_ns = outage_from +. 2e6; queue = None };
    ]
  in
  let p3, res3, _, _ =
    run_point ~seed ~rate_kops:cruise_kops ~total:(total / 2) ~obs:On
      ~fault_script:outage ~slo:true ()
  in
  let bb =
    match Runtime.Runtime.blackbox (Platform.runtime p3) with
    | Some bb -> bb
    | None -> failwith "exp_exemplars: recorder missing"
  in
  let dumps = Obs.Flightrec.dumps bb in
  let enodev_dump =
    List.find_opt (fun d -> contains d {|"reason":"errno:ENODEV"|}) dumps
  in
  let enodev_ok =
    match enodev_dump with
    | Some d ->
        (* The dump must carry its own triggering event: the Trigger
           record written before the snapshot, tagged with the reason. *)
        contains d {|"kind":"trigger","ts_ns"|}
        && contains d {|"tag":"errno:ENODEV"|}
    | None -> false
  in
  let failed3 = res3.Workloads.Load.completed - res3.Workloads.Load.succeeded in
  Bench_util.note
    "black box: %d events recorded, %d triggers, %d dumps (%d requests failed \
     through the outage); errno:ENODEV dump %s"
    (Obs.Flightrec.recorded bb)
    (Obs.Flightrec.triggers bb)
    (List.length dumps) failed3
    (if enodev_ok then "present with its triggering event" else "MISSING");
  if not enodev_ok then begin
    Bench_util.note
      "BLACKBOX REGRESSION: no errno:ENODEV dump containing its trigger";
    exit 1
  end;

  (* ---- Phase 4: same-seed determinism ----------------------------- *)
  let p2b, _, ev2b, _ =
    run_point ~seed ~rate_kops:overload_kops ~total ~obs:On ()
  in
  let store_json p =
    match Runtime.Runtime.exemplars (Platform.runtime p) with
    | Some s -> Obs.Exemplar.to_json s
    | None -> ""
  in
  let p3b, _, _, _ =
    run_point ~seed ~rate_kops:cruise_kops ~total:(total / 2) ~obs:On
      ~fault_script:outage ~slo:true ()
  in
  let bb_json p =
    match Runtime.Runtime.blackbox (Platform.runtime p) with
    | Some b -> Obs.Flightrec.to_json b
    | None -> ""
  in
  let deterministic =
    ev2 = ev2b
    && store_json p2 = store_json p2b
    && bb_json p3 = bb_json p3b
  in
  if deterministic then
    Bench_util.note
      "determinism: same-seed reruns byte-identical (exemplars + black box)"
  else begin
    Bench_util.note "determinism VIOLATED: same-seed reruns differ";
    exit 1
  end;

  (* ---- JSON ------------------------------------------------------- *)
  let oc = open_out "BENCH_exemplars.json" in
  Printf.fprintf oc "{\"off_neutral\": %d, \"on_neutral\": %d,\n"
    (if off_neutral then 1 else 0)
    (if on_neutral then 1 else 0);
  Printf.fprintf oc " \"coverage\": %.3f, \"tail_n\": %d, \"covered\": %d,\n"
    coverage n_tail covered;
  Printf.fprintf oc
    " \"stored\": %d, \"offered\": %d, \"promoted\": %d, \"evicted\": %d,\n"
    (Obs.Exemplar.stored store)
    (Obs.Exemplar.offered store)
    (Obs.Exemplar.promoted store)
    (Obs.Exemplar.evicted store);
  Printf.fprintf oc " \"promoted_band\": 0.25, \"evicted_band\": 0.25,\n";
  Printf.fprintf oc
    " \"bb_recorded\": %d, \"bb_triggers\": %d, \"bb_dumps\": %d,\n"
    (Obs.Flightrec.recorded bb)
    (Obs.Flightrec.triggers bb)
    (List.length dumps);
  Printf.fprintf oc " \"bb_recorded_band\": 0.25, \"bb_triggers_band\": 0.25,\n";
  Printf.fprintf oc " \"enodev_dump\": %d, \"outage_failed\": %d,\n"
    (if enodev_ok then 1 else 0)
    failed3;
  Printf.fprintf oc " \"outage_failed_band\": 0.5,\n";
  Printf.fprintf oc " \"deterministic\": %d}\n" (if deterministic then 1 else 0);
  close_out oc;
  Bench_util.note "wrote BENCH_exemplars.json"
