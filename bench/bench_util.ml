(* Shared table formatting and small helpers for the experiment
   harness. *)

let heading id title =
  Printf.printf "\n=== %s — %s ===\n" id title

let row_format widths =
  String.concat "  " (List.map (fun w -> Printf.sprintf "%%-%ds" w) widths)

let print_row widths cells =
  List.iteri
    (fun i cell ->
      let w = List.nth widths i in
      Printf.printf "%-*s" w cell;
      if i < List.length cells - 1 then print_string "  ")
    cells;
  print_newline ()

let print_table widths header rows =
  print_row widths header;
  print_row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (print_row widths) rows

let f1 v = Printf.sprintf "%.1f" v

let f2 v = Printf.sprintf "%.2f" v

let f0 v = Printf.sprintf "%.0f" v

let kops v = Printf.sprintf "%.1fk" (v /. 1000.0)

let pct base v = Printf.sprintf "%+.0f%%" (100.0 *. (v -. base) /. base)

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

(* Smoke mode shrinks every experiment's workload for CI. Enabled by
   the LABSTOR_SMOKE environment variable or the --smoke flag (which
   main.ml records here). *)
let force_smoke = ref false

let smoke () = !force_smoke || Sys.getenv_opt "LABSTOR_SMOKE" <> None

(* Wall-clock self-measurement of the simulator. Off by default —
   wall-clock numbers vary run to run, and the default experiment
   output must stay byte-identical for the determinism checks — so the
   rate is only printed when LABSTOR_WALLCLOCK is set. *)
let wallclock_enabled () = Sys.getenv_opt "LABSTOR_WALLCLOCK" <> None

let time_events f =
  let t0 = Sys.time () in
  let events = f () in
  (events, Sys.time () -. t0)

let note_event_rate ~events ~wall_s =
  if wallclock_enabled () then
    if wall_s > 0.0 then
      note "simulator: %d events in %.2fs cpu (%.0fk events/sec)" events wall_s
        (Stdlib.float_of_int events /. wall_s /. 1000.0)
    else note "simulator: %d events (too fast to time)" events

let _ = row_format
