(* Continuous profiling: CPU-utilization timelines (paper Section 5.4).

   The paper contrasts dedicated-core worker pools (statically
   provisioned, busy-polling) against time-shared pools (workers park
   when idle): dedicated cores burn at ~100% utilization regardless of
   load, while time-shared workers' utilization tracks offered load.
   This experiment reproduces that ordering from the continuous
   profiler's own sampler timelines rather than from end-of-run
   aggregates: the same workload runs under both pool configurations
   with the sampler on, and the per-worker `runtime.worker<i>.util`
   series (per-interval awake fraction) must show dedicated cores at a
   strictly higher sustained utilization than time-shared ones.

   Also asserts the profiling layer's own invariants:
   - determinism: two same-seed runs export byte-identical profile
     JSON (sampler timeline + span flamegraph + tail attribution);
   - sampler neutrality: the tick hook rides the engine clock between
     events, so a run with the sampler on executes the identical event
     count in identical simulated time as one with it off.

   Writes BENCH_profile.json. LABSTOR_SMOKE=1 shrinks the workload. *)

open Labstor
open Lab_sim

let stack_spec =
  {|
mount: "blk::/profile"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: noop_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let threads = 4

let bytes = 4096

let period_ns = 20_000.0

type run = {
  elapsed : float;
  events : int;
  util_means : float list;  (* per-worker mean of the util series *)
  profile : string;  (* Platform.profile_json *)
}

let run_case ~seed ~ops ~busy_poll ~profile =
  let profile_period = if profile then period_ns else 0.0 in
  let trace_sample = if profile then 1 else 0 in
  let platform =
    Platform.boot ~nworkers:4 ~seed ~workers_busy_poll:busy_poll ~trace_sample
      ~profile_period ()
  in
  (match Platform.mount platform stack_spec with
  | Ok _ -> ()
  | Error e -> failwith ("exp_profile: mount: " ^ e));
  let machine = Platform.machine platform in
  Platform.go platform (fun () ->
      let finished = ref 0 in
      Engine.suspend (fun resume ->
          for th = 0 to threads - 1 do
            Engine.spawn machine.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:th () in
                let rng = Rng.create (seed lxor (th * 7919)) in
                for i = 1 to ops do
                  let lba = Rng.int rng 262144 in
                  if i mod 4 = 0 then
                    ignore
                      (Runtime.Client.write_block c ~mount:"blk::/profile"
                         ~lba ~bytes)
                  else
                    ignore
                      (Runtime.Client.read_block c ~mount:"blk::/profile"
                         ~lba ~bytes)
                done;
                incr finished;
                if !finished = threads then resume ())
          done));
  let util_means =
    match Runtime.Runtime.timeseries (Platform.runtime platform) with
    | None -> []
    | Some ts ->
        Obs.Timeseries.stats ts
        |> List.filter_map (fun (s : Obs.Timeseries.stat) ->
               let n = s.Obs.Timeseries.st_name in
               if
                 String.length n > 4
                 && String.sub n 0 14 = "runtime.worker"
                 && String.sub n (String.length n - 5) 5 = ".util"
               then Some s.Obs.Timeseries.st_mean
               else None)
  in
  {
    elapsed = Platform.now platform;
    events = Engine.events_executed machine.Machine.engine;
    util_means;
    profile = Platform.profile_json platform;
  }

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. Stdlib.float_of_int (List.length l)

let run () =
  let smoke = Bench_util.smoke () in
  let ops = if smoke then 200 else 2000 in
  let seed = 0x5E54 in
  Bench_util.heading "profile"
    "Continuous profiling: dedicated vs time-shared worker CPU timelines";
  Printf.printf
    "  %d random 4 KiB ops (1-in-4 writes) x %d threads, sampler every %.0f us, seed %#x\n"
    ops threads (period_ns /. 1e3) seed;
  let dedicated, wall1 =
    Bench_util.time_events (fun () ->
        run_case ~seed ~ops ~busy_poll:true ~profile:true)
  in
  let timeshared, wall2 =
    Bench_util.time_events (fun () ->
        run_case ~seed ~ops ~busy_poll:false ~profile:true)
  in
  let ded_mean = mean dedicated.util_means in
  let ts_mean = mean timeshared.util_means in
  Bench_util.print_table [ 14; 12; 14; 16 ]
    [ "pool"; "mean util"; "worker utils"; "simulated(ms)" ]
    [
      [
        "dedicated";
        Bench_util.f2 ded_mean;
        String.concat " " (List.map Bench_util.f2 dedicated.util_means);
        Bench_util.f2 (dedicated.elapsed /. 1e6);
      ];
      [
        "time-shared";
        Bench_util.f2 ts_mean;
        String.concat " " (List.map Bench_util.f2 timeshared.util_means);
        Bench_util.f2 (timeshared.elapsed /. 1e6);
      ];
    ];
  (* Same-seed byte-identical export. *)
  let again = run_case ~seed ~ops ~busy_poll:true ~profile:true in
  let deterministic = String.equal again.profile dedicated.profile in
  (* Sampler neutrality: profiling on must not perturb the simulation. *)
  let off = run_case ~seed ~ops ~busy_poll:true ~profile:false in
  let neutral =
    off.events = dedicated.events && off.elapsed = dedicated.elapsed
  in
  let oc = open_out "BENCH_profile.json" in
  Printf.fprintf oc
    "{\n\
    \  \"ops\": %d,\n\
    \  \"threads\": %d,\n\
    \  \"sampler_period_ns\": %.1f,\n\
    \  \"dedicated_util_mean\": %.4f,\n\
    \  \"timeshared_util_mean\": %.4f,\n\
    \  \"dedicated_elapsed_ns\": %.1f,\n\
    \  \"timeshared_elapsed_ns\": %.1f,\n\
    \  \"deterministic_export\": %b,\n\
    \  \"sampler_neutral\": %b\n\
     }\n"
    (ops * threads) threads period_ns ded_mean ts_mean dedicated.elapsed
    timeshared.elapsed deterministic neutral;
  close_out oc;
  (* Acceptance: the paper's ordering — dedicated cores sustain higher
     per-core utilization than time-shared ones on the same load. *)
  if ded_mean <= ts_mean then begin
    Bench_util.note
      "ORDERING FAILED: dedicated mean util %.4f <= time-shared %.4f"
      ded_mean ts_mean;
    exit 1
  end
  else
    Bench_util.note
      "ordering holds: dedicated %.2f > time-shared %.2f mean worker utilization"
      ded_mean ts_mean;
  if not deterministic then begin
    Bench_util.note "DETERMINISM FAILED: same-seed profile JSON differs";
    exit 1
  end
  else
    Bench_util.note "determinism: same-seed runs export byte-identical profile.json (%d bytes)"
      (String.length dedicated.profile);
  if not neutral then begin
    Bench_util.note
      "NEUTRALITY FAILED: sampler on %d events/%.1f ns vs off %d events/%.1f ns"
      dedicated.events dedicated.elapsed off.events off.elapsed;
    exit 1
  end
  else
    Bench_util.note
      "sampler neutrality: profiling on and off both ran %d events in %.2f ms simulated"
      off.events (off.elapsed /. 1e6);
  Bench_util.note_event_rate
    ~events:(dedicated.events + timeshared.events)
    ~wall_s:(wall1 +. wall2)
