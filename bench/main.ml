(* LabStor reproduction benchmark harness.

   Each subcommand regenerates one table/figure of the paper's
   evaluation (see DESIGN.md's experiment index); no argument runs all
   of them in order. `micro` runs Bechamel microbenchmarks of the core
   data structures. *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("anatomy", "Fig 4(a): I/O stack anatomy", Exp_anatomy.run);
    ("upgrade", "Table I: live upgrade cost", Exp_upgrade.run);
    ("orchestrator-cpu", "Fig 5(a): dynamic CPU allocation", Exp_orch_cpu.run);
    ( "orchestrator-partition",
      "Fig 5(b): request partitioning",
      Exp_orch_partition.run );
    ("storage-api", "Fig 6: storage interface performance", Exp_storage_api.run);
    ("metadata", "Fig 7: metadata throughput", Exp_metadata.run);
    ("schedulers", "Fig 8 + Table II: I/O schedulers", Exp_schedulers.run);
    ("pfs", "Fig 9(a): PFS over custom stacks", Exp_pfs.run);
    ("labios", "Fig 9(b): LABIOS object store", Exp_labios.run);
    ("filebench", "Fig 9(c): Filebench workloads", Exp_filebench.run);
    ("ablate", "Ablations: cost sensitivity & design choices", Exp_ablate.run);
    ( "faults",
      "Robustness: fault injection, retry & degraded mode",
      Exp_faults.run );
    ( "batching",
      "Batched submission: doorbells, batch dequeue, merging",
      Exp_batching.run );
    ( "cache",
      "Sharded cache: readahead, coalesced write-back",
      Exp_cache.run );
    ( "anatomy2",
      "Latency anatomy measured from request-lifecycle spans",
      Exp_anatomy2.run );
    ( "profile",
      "Continuous profiling: utilization timelines & bottleneck attribution",
      Exp_profile.run );
    ( "lvm",
      "Volume manager: mirrored redundancy, degraded mode & online rebuild",
      Exp_lvm.run );
    ( "sim",
      "Simulator core: events/sec and allocation-free hot path",
      Exp_sim.run );
    ( "qos",
      "Multi-tenant QoS: O(1) DRR dispatch and noisy-neighbor isolation",
      Exp_qos.run );
    ( "load",
      "Open-loop offered-rate sweep: CO-safe throughput-vs-p99 knee curves",
      Exp_load.run );
    ( "exemplars",
      "Tail exemplar capture + flight recorder: neutrality, coverage, dumps",
      Exp_exemplars.run );
  ]

let usage () =
  print_endline "usage: main.exe [experiment|all|micro] [--smoke]";
  print_endline "experiments:";
  List.iter (fun (name, desc, _) -> Printf.printf "  %-24s %s\n" name desc)
    experiments;
  Printf.printf "  %-24s %s\n" "micro" "Bechamel microbenchmarks of core structures"

let run_all () =
  List.iter
    (fun (_, _, f) ->
      f ();
      flush stdout)
    experiments

let () =
  (* --smoke anywhere on the command line = LABSTOR_SMOKE=1. *)
  let argv =
    List.filter
      (fun a ->
        if a = "--smoke" then begin
          Bench_util.force_smoke := true;
          false
        end
        else true)
      (Array.to_list Sys.argv)
  in
  match argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | [ _; "micro" ] -> Micro.run ()
  | [ _; name ] -> (
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, _, f) -> f ()
      | None ->
          usage ();
          exit 1)
  | _ ->
      usage ();
      exit 1
