(* Open-loop offered-rate sweep: throughput-vs-p99 knee curves with
   coordinated-omission-safe measurement.

   Each point boots a fresh platform with a blkswitch_sched ->
   kernel_driver stack and drives it with the open-loop harness
   (Workloads.Load): a seeded Poisson arrival process fired from Engine
   timers at the offered rate, a 16-injector pool (one client each —
   queue-pair completion queues are single-consumer), 4 KiB reads. The
   Latrec recorder keeps two latency distributions per point:

   - corrected: completion − *scheduled* arrival (CO-safe), and
   - naive: completion − send (what a closed-loop bench reports).

   Below the knee injectors are idle when arrivals fire, the two agree
   and achieved tracks offered. Past the knee the backlog grows and the
   corrected tail diverges by the queueing delay the naive view hides.

   Gates: (1) at the lowest rate the corrected p99 agrees with the
   naive p99 within 10% and nothing is shed; (2) at the highest rate
   the corrected p99 diverges by at least 5x; (3) achieved throughput
   is monotone non-decreasing along the sweep; (4) a same-seed rerun of
   the knee point matches exactly (p99s and event count).

   BENCH_load.json carries the full curves as arrays — gated by
   bench_diff's per-point band check (the *_curve_band keys) and
   monotone-direction check — plus the knee position and max
   sustainable rate as scalars. Key set is identical in smoke and full
   runs; the committed baseline is a smoke run. *)

open Labstor
open Lab_sim

let mount_pt = "blk::/load"

let stack_spec =
  {|
mount: "blk::/load"
rules:
  exec_mode: async
dag:
  - uuid: sched0
    mod: blkswitch_sched
    outputs: [drv0]
  - uuid: drv0
    mod: kernel_driver
|}

let read_bytes = 4096

let injectors = 16

type point = {
  rate_kops : float;
  offered_kops : float;
  achieved_kops : float;
  p50_c_us : float;
  p99_c_us : float;
  p99_n_us : float;
  lag_mean_us : float;
  drops : int;
  late : int;
  failed : int;
  events : int;
}

let run_point ~seed ~rate_kops ~total =
  let platform = Platform.boot ~nworkers:4 ~worker_max_inflight:32 ~seed () in
  (match Platform.mount platform stack_spec with
  | Ok _ -> ()
  | Error e -> failwith ("exp_load: mount: " ^ e));
  let machine = Platform.machine platform in
  let res =
    Platform.go platform (fun () ->
        let clients =
          Array.init injectors (fun i ->
              Platform.client platform ~thread:(i mod 16) ())
        in
        (* Deterministic rotating LBA pattern over a 512 MiB region:
           no cache in the stack, so the pattern only needs to be
           deterministic, not representative. *)
        let next = ref 0 in
        let region_blocks = 1 lsl 17 in
        let spec =
          {
            Workloads.Load.default_spec with
            proc = Workloads.Load.Poisson { rate_ops_s = rate_kops *. 1e3 };
            seed;
            total;
            injectors;
          }
        in
        Workloads.Load.run machine spec ~submit:(fun ~injector ~scheduled ->
            let lba = !next mod region_blocks * 8 in
            incr next;
            match
              Runtime.Client.read_block clients.(injector)
                ~scheduled_at:scheduled ~mount:mount_pt ~lba ~bytes:read_bytes
            with
            | Ok _ -> true
            | Error _ -> false))
  in
  let r = res.Workloads.Load.recorder in
  let q = Obs.Latrec.corrected_quantile r in
  {
    rate_kops;
    offered_kops = res.Workloads.Load.offered_ops_s /. 1e3;
    achieved_kops = res.Workloads.Load.achieved_ops_s /. 1e3;
    p50_c_us = q 0.50 /. 1e3;
    p99_c_us = q 0.99 /. 1e3;
    p99_n_us = Obs.Latrec.naive_quantile r 0.99 /. 1e3;
    lag_mean_us = Obs.Latrec.lag_mean_ns r /. 1e3;
    drops = res.Workloads.Load.dropped;
    late = res.Workloads.Load.late;
    failed = res.Workloads.Load.completed - res.Workloads.Load.succeeded;
    events = Engine.events_executed machine.Machine.engine;
  }

let widths = [ 9; 9; 9; 9; 10; 9; 9; 7; 7 ]

let run () =
  let smoke = Bench_util.smoke () in
  Bench_util.heading "load"
    "Open-loop sweep: offered rate vs CO-corrected tail latency";
  let seed = 0x10AD in
  let total = if smoke then 2000 else 8000 in
  let rates = [ 100.0; 200.0; 400.0; 800.0; 1600.0 ] in
  Printf.printf
    "  Poisson arrivals fired from Engine timers, %d injectors, 4 KiB reads \
     on blkswitch_sched -> kernel_driver;\n\
    \  %d arrivals per point, seed %#x. corrected = completion - scheduled \
     arrival; naive = completion - send.\n"
    injectors total seed;
  Bench_util.print_row widths
    [
      "offered"; "achieved"; "p50-corr"; "p99-corr"; "p99-naive"; "co-ratio";
      "lag-mean"; "drops"; "late";
    ];
  let points =
    List.map
      (fun rate_kops ->
        let p = run_point ~seed ~rate_kops ~total in
        Bench_util.print_row widths
          [
            Bench_util.kops (p.rate_kops *. 1e3);
            Bench_util.kops (p.achieved_kops *. 1e3);
            Bench_util.f1 p.p50_c_us;
            Bench_util.f1 p.p99_c_us;
            Bench_util.f1 p.p99_n_us;
            Printf.sprintf "%.2f" (p.p99_c_us /. Stdlib.max 1e-9 p.p99_n_us);
            Bench_util.f1 p.lag_mean_us;
            string_of_int p.drops;
            string_of_int p.late;
          ];
        if p.failed > 0 then
          Bench_util.note "WARNING: %d requests failed at %.0f kops/s" p.failed
            p.rate_kops;
        p)
      rates
  in
  let first = List.hd points in
  let last = List.nth points (List.length points - 1) in
  (* Gate 1: below the knee the two views must agree — CO correction is
     a no-op when the injectors keep up. *)
  let agreement_low = first.p99_c_us /. Stdlib.max 1e-9 first.p99_n_us in
  if agreement_low > 1.10 || first.drops > 0 then begin
    Bench_util.note
      "CO REGRESSION: at %.0f kops/s corrected p99 %.2fx naive (bound 1.10x), \
       %d drops (bound 0)"
      first.rate_kops agreement_low first.drops;
    exit 1
  end;
  (* Gate 2: past saturation the corrected tail must expose the hidden
     queueing delay. *)
  let divergence_high = last.p99_c_us /. Stdlib.max 1e-9 last.p99_n_us in
  if divergence_high < 5.0 then begin
    Bench_util.note
      "CO REGRESSION: at %.0f kops/s corrected p99 only %.2fx naive (bound \
       5x) — the recorder is not exposing coordinated omission"
      last.rate_kops divergence_high;
    exit 1
  end;
  (* Gate 3: achieved throughput saturates; it must never regress as
     offered load grows (1% slack for arrival-stream noise). *)
  let rec monotone = function
    | a :: (b : point) :: rest ->
        if b.achieved_kops < 0.99 *. a.achieved_kops then begin
          Bench_util.note
            "THROUGHPUT REGRESSION: achieved fell from %.1f to %.1f kops/s as \
             offered rose %.0f -> %.0f"
            a.achieved_kops b.achieved_kops a.rate_kops b.rate_kops;
          exit 1
        end;
        monotone (b :: rest)
    | _ -> ()
  in
  monotone points;
  (* The knee: the highest swept rate that is actually served — achieved
     within 10% of offered and the corrected tail still agreeing with
     the naive one within 50%. *)
  let served p =
    p.achieved_kops >= 0.90 *. p.offered_kops
    && p.p99_c_us <= 1.5 *. p.p99_n_us
  in
  let knee_kops =
    List.fold_left
      (fun acc p -> if served p then p.rate_kops else acc)
      (List.hd points).rate_kops points
  in
  let max_sustainable_kops =
    List.fold_left (fun acc p -> Float.max acc p.achieved_kops) 0.0 points
  in
  Bench_util.note
    "knee at %.0f kops/s offered; max sustainable %.1f kops/s; CO divergence \
     %.2fx naive at %.0f kops/s"
    knee_kops max_sustainable_kops divergence_high last.rate_kops;
  (* Gate 4: same-seed determinism of the knee point. *)
  let p1 = List.find (fun p -> p.rate_kops = knee_kops) points in
  let p2 = run_point ~seed ~rate_kops:knee_kops ~total in
  let deterministic =
    p1.p99_c_us = p2.p99_c_us
    && p1.p99_n_us = p2.p99_n_us
    && p1.events = p2.events
  in
  if deterministic then
    Bench_util.note "determinism: two %.0f kops/s runs matched exactly"
      knee_kops
  else begin
    Bench_util.note
      "determinism VIOLATED: %.0f kops/s runs differ (events %d/%d)" knee_kops
      p1.events p2.events;
    exit 1
  end;

  (* JSON: curves as arrays (band + monotone gated by bench_diff) plus
     scalar knee keys. Same key set in smoke and full runs. *)
  let curve f = String.concat ", " (List.map (fun p -> f p) points) in
  let oc = open_out "BENCH_load.json" in
  Printf.fprintf oc "{\"rates_kops_curve\": [%s],\n"
    (curve (fun p -> Printf.sprintf "%.0f" p.rate_kops));
  Printf.fprintf oc " \"achieved_kops_curve\": [%s],\n"
    (curve (fun p -> Printf.sprintf "%.2f" p.achieved_kops));
  Printf.fprintf oc " \"achieved_kops_curve_band\": 0.10,\n";
  Printf.fprintf oc " \"p99_corrected_us_curve\": [%s],\n"
    (curve (fun p -> Printf.sprintf "%.2f" p.p99_c_us));
  Printf.fprintf oc " \"p99_corrected_us_curve_band\": 0.30,\n";
  Printf.fprintf oc " \"p99_naive_us_curve\": [%s],\n"
    (curve (fun p -> Printf.sprintf "%.2f" p.p99_n_us));
  Printf.fprintf oc " \"p99_naive_us_curve_band\": 0.30,\n";
  Printf.fprintf oc " \"drops_curve\": [%s],\n"
    (curve (fun p -> string_of_int p.drops));
  Printf.fprintf oc
    " \"knee_kops\": %.0f, \"max_sustainable_kops\": %.1f,\n" knee_kops
    max_sustainable_kops;
  Printf.fprintf oc
    " \"agreement_low\": %.3f, \"divergence_high\": %.2f, \"deterministic\": \
     %d}\n"
    agreement_low divergence_high
    (if deterministic then 1 else 0);
  close_out oc;
  Bench_util.note "wrote BENCH_load.json"
