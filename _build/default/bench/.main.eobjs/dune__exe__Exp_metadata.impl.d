bench/exp_metadata.ml: Array Bench_util Blk Device Kfs Lab_device Lab_kernel Lab_workloads Labstor List Option Platform Printf Profile Runtime Sim
