bench/exp_orch_partition.ml: Bench_util Float Labstor List Platform Printf Runtime Sim
