bench/exp_orch_cpu.ml: Array Bench_util Labstor List Platform Printf Runtime Sim
