bench/micro.ml: Analyze Bechamel Bench_util Benchmark Bytes Char Hashtbl Instance Int Lab_core Lab_ipc Lab_mods Lab_sim List Measure Printf Staged Test Time Toolkit
