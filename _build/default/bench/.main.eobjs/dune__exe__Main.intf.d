bench/main.mli:
