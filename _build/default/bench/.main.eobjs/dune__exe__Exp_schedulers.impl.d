bench/exp_schedulers.ml: Api Array Bench_util Blk Device Engine Lab_device Lab_kernel Lab_sim Labstor List Machine Mods Option Printf Profile Rng Runtime Stats
