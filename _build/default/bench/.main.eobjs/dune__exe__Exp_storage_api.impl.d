bench/exp_storage_api.ml: Api Bench_util Blk Core Device Lab_device Lab_kernel Lab_sim Lab_workloads Labstor List Machine Mods Option Printf Profile
