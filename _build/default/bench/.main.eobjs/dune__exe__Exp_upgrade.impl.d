bench/exp_upgrade.ml: Bench_util Core Labstor List Mods Platform Printf Runtime Sim
