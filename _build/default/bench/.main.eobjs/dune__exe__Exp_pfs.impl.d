bench/exp_pfs.ml: Array Bench_util Blk Device Kfs Lab_device Lab_kernel Lab_sim Lab_workloads Labstor List Machine Option Platform Printf Profile Runtime
