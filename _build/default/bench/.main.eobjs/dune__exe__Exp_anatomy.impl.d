bench/exp_anatomy.ml: Bench_util Device Float Lab_device Labstor Platform Printf Profile Runtime Sim
