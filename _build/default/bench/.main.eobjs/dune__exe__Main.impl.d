bench/main.ml: Array Exp_ablate Exp_anatomy Exp_filebench Exp_labios Exp_metadata Exp_orch_cpu Exp_orch_partition Exp_pfs Exp_schedulers Exp_storage_api Exp_upgrade List Micro Printf Sys
