bench/exp_ablate.ml: Bench_util Blk Core Costs Device Hashtbl Kfs Lab_device Lab_kernel Lab_sim Labstor List Machine Mods Option Platform Printf Profile Runtime Sim Stdlib
