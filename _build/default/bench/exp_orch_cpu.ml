(* Figure 5(a) — Work orchestration: dynamic CPU allocation.

   Each client thread randomly writes 16 MiB in 4 KiB requests (scaled
   from the paper's 1 GiB) through a NoOp + Kernel Driver stack on
   NVMe. Worker configurations: 1 static, 8 static (busy-polling, as
   statically-provisioned pools do), and dynamic. Reported: aggregate
   kIOPS and CPU cores consumed by the worker pool. *)

open Labstor

let spec =
  {|
mount: "fs::/wo"
dag:
  - uuid: wo-fs
    mod: labfs
    outputs: [wo-sched]
  - uuid: wo-sched
    mod: noop_sched
    outputs: [wo-drv]
  - uuid: wo-drv
    mod: kernel_driver
|}

let bytes_per_client = 16 * 1024 * 1024

let client_counts = [ 1; 2; 4; 8; 16 ]

let run_config ~nclients config_name policy busy_poll =
  ignore config_name;
  let platform =
    Platform.boot ~ncores:32 ~nworkers:8 ~policy ~workers_busy_poll:busy_poll ()
  in
  ignore (Platform.mount_exn platform spec);
  let rt = Platform.runtime platform in
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      let clients =
        Array.init nclients (fun i -> Platform.client platform ~thread:i ())
      in
      (* Open one file per client up front. *)
      let fds =
        Array.mapi
          (fun i c ->
            match
              Runtime.Client.open_file c ~create:true
                (Printf.sprintf "fs::/wo/f%d" i)
            with
            | Ok fd -> fd
            | Error e -> failwith e)
          clients
      in
      Runtime.Runtime.reset_worker_stats rt;
      let t0 = Platform.now platform in
      let ops = bytes_per_client / 4096 in
      let finished = ref 0 in
      Sim.Engine.suspend (fun resume ->
          Array.iteri
            (fun i c ->
              Sim.Engine.spawn m.Sim.Machine.engine (fun () ->
                  let rng = Sim.Rng.create (77 + i) in
                  for _ = 1 to ops do
                    let off = Sim.Rng.int rng 4096 * 4096 in
                    ignore (Runtime.Client.pwrite c ~fd:fds.(i) ~off ~bytes:4096)
                  done;
                  incr finished;
                  if !finished = nclients then resume ()))
            clients);
      let elapsed = Platform.now platform -. t0 in
      let iops = float_of_int (nclients * ops) /. (elapsed /. 1e9) in
      let cores =
        Runtime.Runtime.utilization rt ~elapsed_ns:elapsed
        *. float_of_int (Array.length (Runtime.Runtime.workers rt))
      in
      (iops, cores))

let run () =
  Bench_util.heading "fig5a"
    "Dynamic CPU allocation: 4 KiB random writes, NoOp + Kernel Driver on NVMe";
  let configs =
    [
      ("1 worker", Runtime.Orchestrator.Static 1, true);
      ("8 workers", Runtime.Orchestrator.Static 8, true);
      ( "dynamic",
        Runtime.Orchestrator.Dynamic
          { max_workers = 8; threshold = 0.2; lq_cutoff_ns = 1e6 },
        false );
    ]
  in
  Bench_util.print_table [ 8; 16; 16; 16 ]
    ("clients" :: List.map (fun (n, _, _) -> n ^ " (kIOPS/cores)") configs)
    (List.map
       (fun nclients ->
         string_of_int nclients
         :: List.map
              (fun (name, policy, bp) ->
                let iops, cores = run_config ~nclients name policy bp in
                Printf.sprintf "%s / %.1f" (Bench_util.kops iops) cores)
              configs)
       client_counts);
  Bench_util.note
    "paper shape: 1 worker saturates at ~2 clients then drops ~50%%; 8 workers";
  Bench_util.note
    "hit max IOPS but burn ~25%% more CPU than dynamic (~4 cores); at 16";
  Bench_util.note "clients dynamic matches 8-worker performance and utilization."
