(* Figure 9(a) — A parallel filesystem over customized LabStacks.

   An OrangeFS-style PFS: a dedicated metadata server plus 4 data
   servers (stripe 64 KiB). The metadata server's local I/O stack is
   the variable: ext4 vs. LabFS-All (async, kernel-bypass) vs.
   LabFS-Min (sync, no permissions, fully decentralized). Data servers
   write to their devices directly and identically in all
   configurations. VPIC writes the dataset (scaled: 8 procs x 4 steps x
   4 MiB), BD-CATS reads it back. *)

open Labstor
open Lab_sim
open Lab_device
open Lab_kernel

let procs = 8

let steps = 4

let bytes_per_proc_step = 4 * 1024 * 1024

let md_stack_spec exec =
  Printf.sprintf
    {|
mount: "md::/meta"
rules:
  exec_mode: %s
dag:
  - uuid: md-fs
    mod: labfs
    outputs: [md-sched]
  - uuid: md-sched
    mod: noop_sched
    outputs: [md-drv]
  - uuid: md-drv
    mod: kernel_driver
|}
    exec

(* Data servers: one device of [kind] each, written directly. *)
let data_ops machine kind nservers =
  let devs =
    Array.init nservers (fun _ ->
        Device.create machine.Machine.engine (Profile.of_kind kind))
  in
  {
    Lab_workloads.Pfs.srv_write =
      (fun ~server ~off ~bytes ->
        ignore
          (Device.submit_wait devs.(server) ~hctx:server ~kind:Device.Write
             ~lba:(off / 4096) ~bytes));
    srv_read =
      (fun ~server ~off ~bytes ->
        ignore
          (Device.submit_wait devs.(server) ~hctx:server ~kind:Device.Read
             ~lba:(off / 4096) ~bytes));
  }

(* Metadata backend A: kernel ext4 on the MD server's NVMe. *)
let run_kernel_md data_kind =
  let m = Machine.create ~ncores:24 () in
  let result = ref None in
  Machine.spawn m (fun () ->
      let md_dev = Device.create m.Machine.engine Profile.nvme in
      let blk = Blk.create m md_dev ~sched:Blk.Noop in
      let fs = Kfs.create_fs m blk ~flavor:Kfs.Ext4 () in
      let counter = ref 0 in
      let md =
        {
          Lab_workloads.Pfs.md_create = (fun ~thread path -> Kfs.create fs ~thread path);
          (* dbpf keyval insert per stripe group: a journaled update. *)
          md_extend =
            (fun ~thread path ->
              incr counter;
              Kfs.create fs ~thread (Printf.sprintf "%s.map%d" path !counter));
          (* Read-path resolution is a dbpf/BerkeleyDB keyval get:
             btree walk + record fetch on top of the stat. *)
          md_lookup =
            (fun ~thread path ->
              ignore (Kfs.stat fs ~thread path);
              Machine.compute m ~thread 4000.0);
        }
      in
      let pfs = Lab_workloads.Pfs.create m md (data_ops m data_kind 4) in
      let w = Lab_workloads.Pfs.vpic pfs ~procs ~steps ~bytes_per_proc_step in
      let r = Lab_workloads.Pfs.bdcats pfs ~procs ~steps ~bytes_per_proc_step in
      result := Some (w, r));
  Machine.run m;
  Option.get !result

(* Metadata backends B/C: LabFS stacks on the MD server. *)
let run_lab_md exec data_kind =
  let platform = Platform.boot ~ncores:24 ~nworkers:4 () in
  ignore (Platform.mount_exn platform (md_stack_spec exec));
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      let clients =
        Array.init procs (fun i -> Platform.client platform ~thread:i ())
      in
      let counter = ref 0 in
      let md =
        {
          Lab_workloads.Pfs.md_create =
            (fun ~thread path ->
              match Runtime.Client.create clients.(thread mod procs) ("md::/meta/" ^ path) with
              | Ok () -> ()
              | Error e -> failwith e);
          md_extend =
            (fun ~thread path ->
              incr counter;
              ignore
                (Runtime.Client.create
                   clients.(thread mod procs)
                   (Printf.sprintf "md::/meta/%s.map%d" path !counter)));
          md_lookup =
            (fun ~thread path ->
              ignore (Runtime.Client.stat clients.(thread mod procs) ("md::/meta/" ^ path)));
        }
      in
      let pfs = Lab_workloads.Pfs.create m md (data_ops m data_kind 4) in
      let w = Lab_workloads.Pfs.vpic pfs ~procs ~steps ~bytes_per_proc_step in
      let r = Lab_workloads.Pfs.bdcats pfs ~procs ~steps ~bytes_per_proc_step in
      (w, r))

let run () =
  Bench_util.heading "fig9a"
    "PFS over custom stacks: VPIC write / BD-CATS read bandwidth (MiB/s)";
  let data_kinds = [ Profile.Hdd; Profile.Sata_ssd; Profile.Nvme ] in
  let systems =
    [
      ("ext4-md", fun k -> run_kernel_md k);
      ("LabFS-All-md", fun k -> run_lab_md "async" k);
      ("LabFS-Min-md", fun k -> run_lab_md "sync" k);
    ]
  in
  List.iter
    (fun kind ->
      Printf.printf "\ndata servers on %s:\n" (Profile.kind_to_string kind);
      Bench_util.print_table [ 14; 14; 14; 10 ]
        [ "md backend"; "VPIC MiB/s"; "BD-CATS MiB/s"; "md ops" ]
        (List.map
           (fun (name, f) ->
             let w, r = f kind in
             [
               name;
               Bench_util.f1 w.Lab_workloads.Pfs.bandwidth_mib_s;
               Bench_util.f1 r.Lab_workloads.Pfs.bandwidth_mib_s;
               string_of_int (w.Lab_workloads.Pfs.md_ops + r.Lab_workloads.Pfs.md_ops);
             ])
           systems))
    data_kinds;
  Bench_util.note
    "paper shape: +6-12%% end-to-end on SSD/NVMe data servers from the faster";
  Bench_util.note
    "metadata server (kernel-bypass, reduced permissions); on HDD the I/O cost";
  Bench_util.note "swamps the metadata gain."
