(* Figure 9(b) — LABIOS distributed object store.

   LABIOS workers persist 8 KiB labels. Classical backends translate a
   label to a UNIX file: fopen/fseek/fwrite/fclose on a kernel
   filesystem. LabKVS persists a label with a single put; three
   configurations mirror the paper: Centralized+Permissions,
   Centralized, and Minimal (synchronous, relaxed access control).
   Repeated over NVMe and emulated PMEM. *)

open Labstor
open Lab_sim
open Lab_device
open Lab_kernel

let labels = 2000

let kvs_spec ~perms ~exec =
  Printf.sprintf
    {|
mount: "labios::/labels"
rules:
  exec_mode: %s
dag:
%s  - uuid: lb-kvs
    mod: labkvs
    outputs: [lb-sched]
  - uuid: lb-sched
    mod: noop_sched
    outputs: [lb-drv]
  - uuid: lb-drv
    mod: kernel_driver
|}
    exec
    (if perms then "  - uuid: lb-perm\n    mod: permissions\n    outputs: [lb-kvs]\n"
     else "")

let kernel_backend_rate flavor kind =
  let m = Machine.create ~ncores:8 () in
  let result = ref None in
  Machine.spawn m (fun () ->
      let dev = Device.create m.Machine.engine (Profile.of_kind kind) in
      let blk = Blk.create m dev ~sched:Blk.Noop in
      let fs = Kfs.create_fs m blk ~flavor () in
      let r =
        Lab_workloads.Labios.run_worker m
          (Lab_workloads.Adapters.labios_file_backend_kfs fs)
          ~labels_per_thread:labels ()
      in
      result := Some r.Lab_workloads.Labios.labels_per_sec);
  Machine.run m;
  Option.get !result

let labkvs_rate ~perms ~exec kind =
  let platform = Platform.boot ~nworkers:1 ~devices:[ kind ] () in
  ignore (Platform.mount_exn platform (kvs_spec ~perms ~exec));
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      let client = Platform.client platform ~thread:0 () in
      let r =
        Lab_workloads.Labios.run_worker m
          (Lab_workloads.Adapters.labios_kvs_backend client)
          ~labels_per_thread:labels ()
      in
      r.Lab_workloads.Labios.labels_per_sec)

(* Bonus (beyond the paper): YCSB core mixes against LabKVS
   configurations on NVMe — the standard KVS methodology applied to the
   paper's store. *)
(* The YCSB stack adds an LRU cache below LabKVS (values are re-read
   hot), unlike the write-only LABIOS stack above. *)
let ycsb_spec ~perms ~exec =
  Printf.sprintf
    {|
mount: "labios::/labels"
rules:
  exec_mode: %s
dag:
%s  - uuid: yb-kvs
    mod: labkvs
    outputs: [yb-cache]
  - uuid: yb-cache
    mod: lru_cache
    attrs:
      capacity_mb: 64
    outputs: [yb-sched]
  - uuid: yb-sched
    mod: noop_sched
    outputs: [yb-drv]
  - uuid: yb-drv
    mod: kernel_driver
|}
    exec
    (if perms then "  - uuid: yb-perm\n    mod: permissions\n    outputs: [yb-kvs]\n"
     else "")

let ycsb_row mix =
  let run_cfg ~perms ~exec =
    let platform = Platform.boot ~nworkers:4 () in
    ignore (Platform.mount_exn platform (ycsb_spec ~perms ~exec));
    Platform.go platform (fun () ->
        let m = Platform.machine platform in
        let clients =
          Array.init 4 (fun i -> Platform.client platform ~thread:i ())
        in
        let ops =
          {
            Lab_workloads.Ycsb.put =
              (fun ~thread ~key ~bytes ->
                ignore
                  (Runtime.Client.put clients.(thread mod 4)
                     ~key:("labios::/labels/" ^ key) ~bytes));
            get =
              (fun ~thread ~key ->
                ignore
                  (Runtime.Client.get clients.(thread mod 4)
                     ~key:("labios::/labels/" ^ key)));
          }
        in
        let r = Lab_workloads.Ycsb.run m mix ops in
        ( r.Lab_workloads.Ycsb.ops_per_sec,
          Sim.Stats.percentile r.Lab_workloads.Ycsb.read_latency 99.0 ))
  in
  let all_rate, _ = run_cfg ~perms:true ~exec:"async" in
  let min_rate, p99 = run_cfg ~perms:false ~exec:"sync" in
  [
    "YCSB-" ^ Lab_workloads.Ycsb.mix_name mix;
    Bench_util.kops all_rate;
    Bench_util.kops min_rate;
    Bench_util.f1 (p99 /. 1e3);
  ]

let run_ycsb () =
  Printf.printf "\nbonus: YCSB core mixes on LabKVS (NVMe, 4 threads)\n";
  Bench_util.print_table [ 10; 14; 14; 17 ]
    [ "mix"; "+Perm kops"; "Min kops"; "Min read p99(us)" ]
    (List.map ycsb_row Lab_workloads.Ycsb.all)

let run () =
  Bench_util.heading "fig9b"
    (Printf.sprintf "LABIOS workers: %d x 8 KiB label writes (labels/s)" labels);
  let systems =
    [
      ("ext4", fun k -> kernel_backend_rate Kfs.Ext4 k);
      ("xfs", fun k -> kernel_backend_rate Kfs.Xfs k);
      ("f2fs", fun k -> kernel_backend_rate Kfs.F2fs k);
      ("LabKVS+Perm", fun k -> labkvs_rate ~perms:true ~exec:"async" k);
      ("LabKVS", fun k -> labkvs_rate ~perms:false ~exec:"async" k);
      ("LabKVS-Min", fun k -> labkvs_rate ~perms:false ~exec:"sync" k);
    ]
  in
  Bench_util.print_table [ 8; 12; 12; 12; 13; 12; 12 ]
    ("dev" :: List.map fst systems)
    (List.map
       (fun kind ->
         Profile.kind_to_string kind
         :: List.map (fun (_, f) -> Bench_util.kops (f kind)) systems)
       [ Profile.Nvme; Profile.Pmem ]);
  Bench_util.note
    "paper shape: filesystems lose >=12%% to LabKVS (4 calls vs. 1 per label);";
  Bench_util.note "relaxing access control buys up to another ~16%%.";
  run_ycsb ()
