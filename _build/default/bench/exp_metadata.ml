(* Figure 7 — Metadata throughput (FxMark file-creation stress).

   LabFS in three configurations against ext4/XFS/F2FS, client threads
   1..24, 16 Runtime workers:
     LabFS-All  = permissions + LabFS, asynchronous execution
     LabFS-Min  = LabFS, asynchronous execution (no permission checks)
     LabFS-D    = LabFS, synchronous execution (no central authority) *)

open Labstor
open Lab_device
open Lab_kernel

let files_per_thread = 400

let thread_counts = [ 1; 2; 4; 8; 16; 24 ]

let kfs_rate flavor nthreads =
  let m = Sim.Machine.create ~ncores:48 () in
  let result = ref None in
  Sim.Machine.spawn m (fun () ->
      let dev = Device.create m.Sim.Machine.engine Profile.nvme in
      let blk = Blk.create m dev ~sched:Blk.Noop in
      let fs = Kfs.create_fs m blk ~flavor () in
      let r =
        Lab_workloads.Fxmark.run_create m ~nthreads ~files_per_thread
          ~shared_dir:true
          (Lab_workloads.Adapters.kfs_fxmark fs)
      in
      result := Some r.Lab_workloads.Fxmark.ops_per_sec);
  Sim.Machine.run m;
  Option.get !result

let lab_spec ~perms ~exec =
  Printf.sprintf
    {|
mount: "fs::/fx"
rules:
  exec_mode: %s
dag:
%s  - uuid: fx-fs
    mod: labfs
    outputs: [fx-sched]
  - uuid: fx-sched
    mod: noop_sched
    outputs: [fx-drv]
  - uuid: fx-drv
    mod: kernel_driver
|}
    exec
    (if perms then "  - uuid: fx-perm\n    mod: permissions\n    outputs: [fx-fs]\n"
     else "")

let lab_rate ~perms ~exec nthreads =
  let platform = Platform.boot ~ncores:48 ~nworkers:16 () in
  ignore (Platform.mount_exn platform (lab_spec ~perms ~exec));
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      (* One client per application thread. *)
      let clients =
        Array.init nthreads (fun i -> Platform.client platform ~thread:i ())
      in
      let ops =
        {
          Lab_workloads.Fxmark.create =
            (fun ~thread path ->
              match Runtime.Client.create clients.(thread) ("fs::/fx" ^ path) with
              | Ok () -> ()
              | Error e -> failwith e);
          unlink =
            (fun ~thread path ->
              ignore (Runtime.Client.unlink clients.(thread) ("fs::/fx" ^ path)));
          rename =
            (fun ~thread ~src ~dst ->
              ignore
                (Runtime.Client.rename clients.(thread) ~src:("fs::/fx" ^ src)
                   ~dst:("fs::/fx" ^ dst)));
        }
      in
      let r =
        Lab_workloads.Fxmark.run_create m ~nthreads ~files_per_thread
          ~shared_dir:true ops
      in
      r.Lab_workloads.Fxmark.ops_per_sec)

let run () =
  Bench_util.heading "fig7"
    "Metadata throughput: shared-directory creates (kops/s) vs. client threads";
  let systems =
    [
      ("LabFS-All", fun n -> lab_rate ~perms:true ~exec:"async" n);
      ("LabFS-Min", fun n -> lab_rate ~perms:false ~exec:"async" n);
      ("LabFS-D", fun n -> lab_rate ~perms:false ~exec:"sync" n);
      ("ext4", kfs_rate Kfs.Ext4);
      ("xfs", kfs_rate Kfs.Xfs);
      ("f2fs", kfs_rate Kfs.F2fs);
    ]
  in
  let widths = 9 :: List.map (fun _ -> 10 ) systems in
  Bench_util.print_table widths
    ("threads" :: List.map fst systems)
    (List.map
       (fun n ->
         string_of_int n
         :: List.map (fun (_, f) -> Bench_util.kops (f n)) systems)
       thread_counts);
  Bench_util.note
    "paper shape: LabFS up to ~3x single-threaded, keeps scaling (hashmap +";
  Bench_util.note
    "per-worker allocator); -Min ~ +7%% over -All; -D ~ +20%% more (no IPC);";
  Bench_util.note "kernel filesystems plateau on directory/journal locks."
