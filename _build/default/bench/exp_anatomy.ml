(* Figure 4(a) — I/O stack anatomy.

   A traditional-looking LabStack (permissions -> LabFS -> LRU cache ->
   No-Op scheduler -> Kernel Driver) serves 4 KiB reads and writes on
   NVMe with a single worker; per-LabMod exclusive time is measured by
   the executor probe, device time by the device's service statistics,
   and IPC time as the remainder of the client-observed latency. *)

open Labstor
open Lab_device

let spec =
  {|
mount: "fs::/anatomy"
dag:
  - uuid: an-perm
    mod: permissions
    outputs: [an-fs]
  - uuid: an-fs
    mod: labfs
    outputs: [an-lru]
  - uuid: an-lru
    mod: lru_cache
    attrs:
      capacity_mb: 1
      write_through: true    # the paper's anatomy measures the full write path
    outputs: [an-sched]
  - uuid: an-sched
    mod: noop_sched
    outputs: [an-drv]
  - uuid: an-drv
    mod: kernel_driver
|}

let ops = 512

let file_bytes = 16 * 1024 * 1024  (* far larger than the 1 MiB cache *)

type breakdown = {
  mutable perm : float;
  mutable fs : float;
  mutable cache : float;
  mutable sched : float;
  mutable driver_total : float;  (* includes waiting on the device *)
  mutable client : float;  (* client-observed latency *)
  mutable device : float;
}

let collect kind =
  let platform = Platform.boot ~nworkers:1 () in
  ignore (Platform.mount_exn platform spec);
  let rt = Platform.runtime platform in
  let b =
    { perm = 0.0; fs = 0.0; cache = 0.0; sched = 0.0; driver_total = 0.0; client = 0.0; device = 0.0 }
  in
  let dev = Platform.device platform Profile.Nvme in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      let fd =
        match Runtime.Client.open_file c ~create:true "fs::/anatomy/f" with
        | Ok fd -> fd
        | Error e -> failwith e
      in
      (* Populate the file so reads have something to miss on. *)
      ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:file_bytes);
      Device.reset_stats dev;
      Runtime.Runtime.set_probe rt
        (Some
           (fun ~uuid ~exclusive_ns ->
             match uuid with
             | "an-perm" -> b.perm <- b.perm +. exclusive_ns
             | "an-fs" -> b.fs <- b.fs +. exclusive_ns
             | "an-lru" -> b.cache <- b.cache +. exclusive_ns
             | "an-sched" -> b.sched <- b.sched +. exclusive_ns
             | "an-drv" -> b.driver_total <- b.driver_total +. exclusive_ns
             | _ -> ()));
      let rng = Sim.Rng.create 11 in
      for _ = 1 to ops do
        let off = Sim.Rng.int rng (file_bytes / 4096) * 4096 in
        let t0 = Platform.now platform in
        (match kind with
        | `Write -> ignore (Runtime.Client.pwrite c ~fd ~off ~bytes:4096)
        | `Read -> ignore (Runtime.Client.pread c ~fd ~off ~bytes:4096));
        b.client <- b.client +. (Platform.now platform -. t0)
      done;
      Runtime.Runtime.set_probe rt None;
      b.device <- Sim.Stats.sum (Device.service_stats dev));
  b

let print_breakdown label b =
  let per x = x /. float_of_int ops in
  let driver_sw = Float.max 0.0 (per b.driver_total -. per b.device) in
  let stack = per b.perm +. per b.fs +. per b.cache +. per b.sched +. per b.driver_total in
  let ipc = Float.max 0.0 (per b.client -. stack) in
  let total = per b.client in
  let row name v =
    [ name; Printf.sprintf "%8.0f" v; Printf.sprintf "%5.1f%%" (100.0 *. v /. total) ]
  in
  Printf.printf "\n%s (avg %.1f us/op):\n" label (total /. 1e3);
  Bench_util.print_table [ 22; 10; 8 ]
    [ "component"; "ns/op"; "share" ]
    [
      row "device I/O" (per b.device);
      row "page cache (LRU)" (per b.cache);
      row "IPC (shmem queues)" ipc;
      row "filesystem metadata" (per b.fs);
      row "permission checks" (per b.perm);
      row "I/O scheduler (NoOp)" (per b.sched);
      row "driver (software)" driver_sw;
    ];
  let software = total -. per b.device in
  Printf.printf "  software total: %.0f ns = %.0f%% of op latency\n" software
    (100.0 *. software /. total)

let run () =
  Bench_util.heading "fig4a" "I/O stack anatomy: 4 KiB ops through LabFS on NVMe, 1 worker";
  print_breakdown "WRITE" (collect `Write);
  print_breakdown "READ" (collect `Read);
  Bench_util.note
    "paper shape: device I/O dominates; software ~34%%; cache ~17%% (copies);";
  Bench_util.note "IPC ~8%%; FS metadata ~3%%; permissions ~3%%; driver ~1%%."
