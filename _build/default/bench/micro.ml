(* Bechamel microbenchmarks of the core data structures: these are real
   (wall-clock) measurements of the OCaml implementations, not
   simulation results. *)

open Bechamel
open Toolkit

let test_ring =
  Test.make ~name:"ring push+pop"
    (Staged.stage (fun () ->
         let r = Lab_ipc.Ring.create ~capacity:256 in
         for i = 0 to 255 do
           ignore (Lab_ipc.Ring.try_push r i)
         done;
         for _ = 0 to 255 do
           ignore (Lab_ipc.Ring.try_pop r)
         done))

let test_heap =
  Test.make ~name:"event heap push+pop (256)"
    (Staged.stage (fun () ->
         let h = Lab_sim.Heap.create ~cmp:Int.compare () in
         for i = 0 to 255 do
           Lab_sim.Heap.push h ((i * 7919) land 1023) ()
         done;
         while Lab_sim.Heap.pop h <> None do
           ()
         done))

let test_lru =
  Test.make ~name:"lru put+find (256)"
    (Staged.stage (fun () ->
         let l = Lab_sim.Lru.create ~capacity:128 () in
         for i = 0 to 255 do
           ignore (Lab_sim.Lru.put l i i)
         done;
         for i = 0 to 255 do
           ignore (Lab_sim.Lru.find l i)
         done))

let lz_input =
  Bytes.init 4096 (fun i -> Char.chr (((i / 16) * 31) land 0xFF))

let test_lz77 =
  Test.make ~name:"lz77 compress 4KiB"
    (Staged.stage (fun () -> ignore (Lab_mods.Lz77.compress lz_input)))

let test_alloc =
  Test.make ~name:"block alloc+free (64 blocks)"
    (Staged.stage (fun () ->
         let a = Lab_mods.Block_alloc.create ~total_blocks:100000 ~workers:4 () in
         let blocks = Lab_mods.Block_alloc.alloc a ~worker:0 64 in
         Lab_mods.Block_alloc.free a ~worker:0 blocks))

let yaml_doc =
  "mount: \"fs::/x\"\ndag:\n  - uuid: a\n    mod: labfs\n    outputs: [b]\n  - uuid: b\n    mod: kernel_driver"

let test_yaml =
  Test.make ~name:"yamlite parse stack spec"
    (Staged.stage (fun () -> ignore (Lab_core.Yamlite.parse yaml_doc)))

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let run () =
  Bench_util.heading "micro" "Bechamel microbenchmarks (host wall-clock, ns/op)";
  let tests =
    [ test_ring; test_heap; test_lru; test_lz77; test_alloc; test_yaml ]
  in
  List.iter
    (fun t ->
      let results = benchmark t in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/op\n" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        results)
    tests
