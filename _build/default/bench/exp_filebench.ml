(* Figure 9(c) — Filebench application workloads.

   varmail / webserver / webproxy / fileserver over NVMe: kernel
   filesystems vs. three LabFS stacks (All = permissions + LRU + NoOp +
   driver, async; Min = without permissions; D = synchronous). 8
   application threads, 8 Runtime workers. *)

open Labstor
open Lab_sim
open Lab_device
open Lab_kernel

let nthreads = 8

let iterations = 25

let lab_spec ~perms ~exec =
  Printf.sprintf
    {|
mount: "fs::/fb"
rules:
  exec_mode: %s
dag:
%s  - uuid: fb-fs
    mod: labfs
    outputs: [fb-lru]
  - uuid: fb-lru
    mod: lru_cache
    attrs:
      capacity_mb: 256
    outputs: [fb-sched]
  - uuid: fb-sched
    mod: noop_sched
    outputs: [fb-drv]
  - uuid: fb-drv
    mod: kernel_driver
|}
    exec
    (if perms then "  - uuid: fb-perm\n    mod: permissions\n    outputs: [fb-fs]\n"
     else "")

let kernel_rate flavor personality =
  let m = Machine.create ~ncores:24 () in
  let result = ref None in
  Machine.spawn m (fun () ->
      let dev = Device.create m.Machine.engine Profile.nvme in
      let blk = Blk.create m dev ~sched:Blk.Noop in
      let fs = Kfs.create_fs m blk ~flavor () in
      let r =
        Lab_workloads.Filebench.run m personality ~nthreads ~iterations
          (Lab_workloads.Adapters.kfs_filebench fs)
      in
      result := Some r.Lab_workloads.Filebench.ops_per_sec);
  Machine.run m;
  Option.get !result

let lab_rate ~perms ~exec personality =
  let platform = Platform.boot ~ncores:24 ~nworkers:8 () in
  ignore (Platform.mount_exn platform (lab_spec ~perms ~exec));
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      (* One client (and thus one queue pair) per application thread. *)
      let per_thread =
        Array.init nthreads (fun i ->
            Lab_workloads.Adapters.client_filebench
              (Platform.client platform ~thread:i ())
              ~prefix:"fs::/fb")
      in
      let dispatch f = fun ~thread -> f per_thread.(thread mod nthreads) ~thread in
      let ops =
        {
          Lab_workloads.Filebench.create =
            dispatch (fun a -> a.Lab_workloads.Filebench.create);
          write = dispatch (fun a -> a.Lab_workloads.Filebench.write);
          read = dispatch (fun a -> a.Lab_workloads.Filebench.read);
          fsync = dispatch (fun a -> a.Lab_workloads.Filebench.fsync);
          delete = dispatch (fun a -> a.Lab_workloads.Filebench.delete);
          open_ = dispatch (fun a -> a.Lab_workloads.Filebench.open_);
          close = dispatch (fun a -> a.Lab_workloads.Filebench.close);
        }
      in
      let r = Lab_workloads.Filebench.run m personality ~nthreads ~iterations ops in
      r.Lab_workloads.Filebench.ops_per_sec)

let run () =
  Bench_util.heading "fig9c"
    "Filebench on NVMe: personality throughput (kops/s)";
  let systems =
    [
      ("ext4", fun p -> kernel_rate Kfs.Ext4 p);
      ("xfs", fun p -> kernel_rate Kfs.Xfs p);
      ("f2fs", fun p -> kernel_rate Kfs.F2fs p);
      ("LabFS-All", fun p -> lab_rate ~perms:true ~exec:"async" p);
      ("LabFS-Min", fun p -> lab_rate ~perms:false ~exec:"async" p);
      ("LabFS-D", fun p -> lab_rate ~perms:false ~exec:"sync" p);
    ]
  in
  Bench_util.print_table [ 12; 10; 10; 10; 11; 11; 10 ]
    ("workload" :: List.map fst systems)
    (List.map
       (fun p ->
         Lab_workloads.Filebench.personality_name p
         :: List.map (fun (_, f) -> Bench_util.kops (f p)) systems)
       Lab_workloads.Filebench.all);
  Bench_util.note
    "paper shape: LabFS stacks up to ~2.5x on metadata-heavy personalities";
  Bench_util.note
    "(varmail/webserver/webproxy); fileserver is large-I/O dominated and roughly";
  Bench_util.note "at parity."
