(* Table I — Live upgrade cost.

   An application sends a fixed stream of messages to a dummy LabMod
   through one worker; part-way through the run, N upgrade requests for
   the module (a 1 MiB binary on NVMe) are submitted, centralized or
   decentralized. The table reports total application runtime. Scaled
   10x down from the paper (10k messages instead of 100k); per-upgrade
   cost (~4.5 ms: page-in + relink) matches the paper's ~5 ms. *)

open Labstor

let messages = 10_000

let message_cost_ns = 285_000.0  (* calibrated so the base run ~2.9 s *)

let inject_after_ns = 1e9

let spec =
  Printf.sprintf
    "mount: \"ctl::/dummy\"\ndag:\n  - uuid: up-dummy\n    mod: dummy\n    attrs:\n      op_ns: %.0f"
    message_cost_ns

let run_case ~upgrades ~kind =
  let platform = Platform.boot ~nworkers:1 () in
  ignore (Platform.mount_exn platform spec);
  let rt = Platform.runtime platform in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      if upgrades > 0 then
        Sim.Engine.spawn (Platform.machine platform).Sim.Machine.engine (fun () ->
            Sim.Engine.wait inject_after_ns;
            for i = 1 to upgrades do
              Runtime.Runtime.modify_mods rt
                {
                  Core.Module_manager.target = "dummy";
                  factory = Mods.Dummy_mod.factory ~tag:(Printf.sprintf "v%d" (i + 1)) ();
                  code_bytes = 1 lsl 20;
                  kind;
                }
            done);
      let t0 = Platform.now platform in
      for _ = 1 to messages do
        match Runtime.Client.control c ~mount:"ctl::/dummy" 1 with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      (Platform.now platform -. t0) /. 1e9)

let run () =
  Bench_util.heading "table1"
    (Printf.sprintf "Live upgrade: app runtime (s) for %d messages vs. queued upgrades"
       messages);
  let counts = [ 0; 256; 512; 1024 ] in
  let line kind name =
    name
    :: List.map
         (fun n -> Printf.sprintf "%.2f" (run_case ~upgrades:n ~kind))
         counts
  in
  Bench_util.print_table [ 14; 8; 8; 8; 8 ]
    ("#upgrades" :: List.map string_of_int counts)
    [
      line Core.Module_manager.Centralized "Centralized";
      line Core.Module_manager.Decentralized "Decentralized";
    ];
  Bench_util.note "paper shape (100k msgs): 29.1 / 30.2-30.5 / 32.5-33.6 / 34.3-35.8 s;";
  Bench_util.note "~5 ms per upgrade, I/O-dominated; linear in queued upgrades.";
  Bench_util.note "(vs. ~300 s for a reboot per update: five orders of magnitude.)"
