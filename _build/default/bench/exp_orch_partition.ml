(* Figure 5(b) — Work orchestration: request partitioning.

   Two LabStacks share the Runtime: L (latency-sensitive metadata:
   per-thread file creates) and C (compressor: 32 MiB writes through a
   Compression LabMod, ~20 ms CPU each). 4 L-threads and 4 C-threads
   (scaled from the paper's 8+8); Runtime workers swept 1..8.
   Round-robin placement mixes the classes on the same workers
   (head-of-line blocking); the dynamic policy separates them. *)

open Labstor

let l_spec =
  {|
mount: "fs::/l"
dag:
  - uuid: p-lfs
    mod: labfs
    outputs: [p-lsched]
  - uuid: p-lsched
    mod: noop_sched
    outputs: [p-ldrv]
  - uuid: p-ldrv
    mod: kernel_driver
|}

let c_spec =
  {|
mount: "fs::/c"
dag:
  - uuid: p-cfs
    mod: labfs
    outputs: [p-cz]
  - uuid: p-cz
    mod: compress
    outputs: [p-csched]
  - uuid: p-csched
    mod: noop_sched
    outputs: [p-cdrv]
  - uuid: p-cdrv
    mod: kernel_driver
|}

let n_l = 4

let n_c = 4

let creates_per_l = 250

let writes_per_c = 4

let c_write_bytes = 32 * 1024 * 1024

let run_config nworkers policy =
  let platform = Platform.boot ~ncores:24 ~nworkers ~policy () in
  ignore (Platform.mount_exn platform l_spec);
  ignore (Platform.mount_exn platform c_spec);
  let lat = Sim.Stats.create () in
  let c_bytes = ref 0 in
  let c_elapsed = ref 0.0 in
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      let finished = ref 0 and total = n_l + n_c in
      Sim.Engine.suspend (fun resume ->
          for cw = 0 to n_c - 1 do
            Sim.Engine.spawn m.Sim.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:(8 + cw) () in
                let t0 = Platform.now platform in
                for i = 1 to writes_per_c do
                  let path = Printf.sprintf "fs::/c/b%d-%d" cw i in
                  ignore (Runtime.Client.create c path);
                  (match Runtime.Client.open_file c path with
                  | Ok fd ->
                      ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:c_write_bytes);
                      ignore (Runtime.Client.close c fd)
                  | Error e -> failwith e);
                  c_bytes := !c_bytes + c_write_bytes
                done;
                c_elapsed := Float.max !c_elapsed (Platform.now platform -. t0);
                incr finished;
                if !finished = total then resume ())
          done;
          for lw = 0 to n_l - 1 do
            Sim.Engine.spawn m.Sim.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:lw () in
                (* Warm-up so queue service estimates exist. *)
                for i = 1 to 20 do
                  ignore (Runtime.Client.create c (Printf.sprintf "fs::/l/w%d-%d" lw i))
                done;
                Sim.Engine.wait 60e6;  (* past the classification transient *)
                for i = 1 to creates_per_l do
                  let t0 = Platform.now platform in
                  ignore (Runtime.Client.create c (Printf.sprintf "fs::/l/f%d-%d" lw i));
                  Sim.Stats.add lat (Platform.now platform -. t0);
                  Sim.Engine.wait 50_000.0
                done;
                incr finished;
                if !finished = total then resume ())
          done));
  let bw = float_of_int !c_bytes /. (!c_elapsed /. 1e9) /. (1024.0 *. 1024.0) in
  (Sim.Stats.mean lat, bw)

let run () =
  Bench_util.heading "fig5b"
    "Request partitioning: L-App latency / C-App bandwidth vs. workers";
  let rows =
    List.map
      (fun nworkers ->
        let rr_lat, rr_bw = run_config nworkers (Runtime.Orchestrator.Round_robin nworkers) in
        let dy_lat, dy_bw =
          run_config nworkers
            (Runtime.Orchestrator.Dynamic
               { max_workers = nworkers; threshold = 0.2; lq_cutoff_ns = 1e6 })
        in
        [
          string_of_int nworkers;
          Printf.sprintf "%.0f" (rr_lat /. 1e3);
          Printf.sprintf "%.0f" rr_bw;
          Printf.sprintf "%.0f" (dy_lat /. 1e3);
          Printf.sprintf "%.0f" dy_bw;
        ])
      [ 1; 2; 4; 8 ]
  in
  Bench_util.print_table [ 8; 14; 14; 14; 14 ]
    [ "workers"; "RR lat(us)"; "RR BW(MiB/s)"; "dyn lat(us)"; "dyn BW(MiB/s)" ]
    rows;
  Bench_util.note
    "paper shape: RR has the highest bandwidth but ruins L-App latency (waits";
  Bench_util.note
    "behind 20 ms compressions); dynamic cuts latency by orders of magnitude at";
  Bench_util.note "a bandwidth cost that shrinks from ~30%% to ~6%% as workers grow."
