(* Figure 8 + Table II — Developing & customizing I/O policies.

   No-Op vs. blk-switch I/O schedulers, each in its in-kernel form
   (fio over the kernel block layer) and as a LabStor LabMod. A
   throughput app (T-App: 64 KiB random writes, I/O depth 8 x 8
   threads) and a latency app (L-App: 4 KiB writes, depth 1 x 8
   threads) run isolated and colocated. The NVMe is configured with 8
   hardware queues so the 16 threads must share queues — the
   head-of-line-blocking regime the paper evaluates. *)

open Labstor
open Lab_sim
open Lab_device
open Lab_kernel

let profile = { Profile.nvme with Profile.n_hw_queues = 8; n_channels = 8 }

let l_threads = 8

let t_threads = 8

let t_iodepth = 8

let duration_ns = 100e6

(* ---------------- Linux paths (kernel block layer) ---------------- *)

let linux_case sched ~colocated =
  let m = Machine.create ~ncores:24 () in
  let lat = Stats.create () in
  let result = ref None in
  Machine.spawn m (fun () ->
      let dev = Device.create m.Machine.engine profile in
      let blk = Blk.create m dev ~sched in
      let api = Api.create m blk in
      let deadline = duration_ns in
      let finished = ref 0 in
      let total = l_threads + if colocated then t_threads else 0 in
      Engine.suspend (fun resume ->
          if colocated then
            for th = 0 to t_threads - 1 do
              Engine.spawn m.Machine.engine (fun () ->
                  let rng = Rng.create (900 + th) in
                  while Machine.now m < deadline do
                    let offs =
                      Array.init t_iodepth (fun _ -> Rng.int rng 100000 * 65536)
                    in
                    Api.submit_batch_wait api ~api:Api.Io_uring ~thread:th
                      ~kind:Device.Write ~offs ~bytes:65536
                  done;
                  incr finished;
                  if !finished = total then resume ())
            done;
          for th = t_threads to t_threads + l_threads - 1 do
            Engine.spawn m.Machine.engine (fun () ->
                let rng = Rng.create (40 + th) in
                while Machine.now m < deadline do
                  let off = Rng.int rng 100000 * 4096 in
                  let t0 = Machine.now m in
                  Api.submit_wait api ~api:Api.Io_uring ~thread:th
                    ~kind:Device.Write ~off ~bytes:4096;
                  Stats.add lat (Machine.now m -. t0);
                  Engine.wait 50_000.0
                done;
                incr finished;
                if !finished = total then resume ())
          done);
      result := Some (Stats.mean lat, Stats.percentile lat 99.0));
  Machine.run m;
  Option.get !result

(* ---------------- LabStor paths (scheduler LabMods) ---------------- *)

(* The paper's scheduler stacks are just scheduler -> driver: fio-style
   raw block access, no filesystem. *)
let lab_stack_spec sched_mod =
  Printf.sprintf
    {|
mount: "blk::/sched"
dag:
  - uuid: s-sched
    mod: %s
    outputs: [s-drv]
  - uuid: s-drv
    mod: kernel_driver
|}
    sched_mod

let lab_case sched_mod ~colocated =
  let machine = Machine.create ~ncores:24 () in
  let dev = Device.create machine.Machine.engine profile in
  let backend = Mods.Mods_env.backend_of_device machine dev in
  let config =
    {
      Runtime.Runtime.default_config with
      Runtime.Runtime.nworkers = 8;
      policy = Runtime.Orchestrator.Round_robin 8;
      worker_core_base = 16;
    }
  in
  let rt =
    Runtime.Runtime.create machine ~config ~backends:[ ("nvme", backend) ]
      ~default_backend:"nvme" ()
  in
  Runtime.Runtime.start rt;
  (match Runtime.Runtime.mount_text rt (lab_stack_spec sched_mod) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let lat = Stats.create () in
  let result = ref None in
  Machine.spawn machine (fun () ->
      let deadline = duration_ns in
      let finished = ref 0 in
      let total = l_threads + if colocated then t_threads * t_iodepth else 0 in
      Engine.suspend (fun resume ->
          if colocated then
            (* I/O depth as parallel streams: t_threads x t_iodepth
               writers, each its own client/queue pair. *)
            for slot = 0 to (t_threads * t_iodepth) - 1 do
              Engine.spawn machine.Machine.engine (fun () ->
                  let th = slot mod t_threads in
                  let c =
                    Runtime.Client.connect rt ~pid:(2000 + slot) ~uid:1 ~thread:th ()
                  in
                  let rng = Rng.create (1300 + slot) in
                  while Machine.now machine < deadline do
                    let lba = Rng.int rng 100000 * 16 in
                    ignore
                      (Runtime.Client.write_block c ~mount:"blk::/sched" ~lba
                         ~bytes:65536)
                  done;
                  incr finished;
                  if !finished = total then resume ())
            done;
          for th = t_threads to t_threads + l_threads - 1 do
            Engine.spawn machine.Machine.engine (fun () ->
                let c = Runtime.Client.connect rt ~pid:(3000 + th) ~uid:1 ~thread:th () in
                let rng = Rng.create (50 + th) in
                while Machine.now machine < deadline do
                  let lba = Rng.int rng 100000 in
                  let t0 = Machine.now machine in
                  ignore
                    (Runtime.Client.write_block c ~mount:"blk::/sched" ~lba
                       ~bytes:4096);
                  Stats.add lat (Machine.now machine -. t0);
                  Engine.wait 50_000.0
                done;
                incr finished;
                if !finished = total then resume ())
          done);
      result := Some (Stats.mean lat, Stats.percentile lat 99.0));
  Machine.run ~until:(duration_ns *. 3.0) machine;
  match !result with Some r -> r | None -> failwith "scheduler bench did not finish"

let run () =
  Bench_util.heading "fig8"
    "I/O schedulers: L-App 4 KiB write latency, isolated vs. colocated with T-App";
  let cases =
    [
      ("Linux-NoOp", fun ~colocated -> linux_case Blk.Noop ~colocated);
      ("Linux-Blk", fun ~colocated -> linux_case Blk.Blk_switch ~colocated);
      ("Lab-NoOp", fun ~colocated -> lab_case "noop_sched" ~colocated);
      ("Lab-Blk", fun ~colocated -> lab_case "blkswitch_sched" ~colocated);
    ]
  in
  Bench_util.print_table [ 12; 13; 13; 13; 13 ]
    [ "system"; "iso avg(us)"; "iso p99(us)"; "colo avg(us)"; "colo p99(us)" ]
    (List.map
       (fun (name, f) ->
         let iso_avg, iso_p99 = f ~colocated:false in
         let co_avg, co_p99 = f ~colocated:true in
         [
           name;
           Bench_util.f1 (iso_avg /. 1e3);
           Bench_util.f1 (iso_p99 /. 1e3);
           Bench_util.f1 (co_avg /. 1e3);
           Bench_util.f1 (co_p99 /. 1e3);
         ])
       cases);
  Bench_util.note
    "paper shape (Table II): isolated, NoOp ~ blk-switch (separate queues);";
  Bench_util.note
    "colocated, NoOp degrades badly (head-of-line blocking: 110 us -> 945 us for";
  Bench_util.note
    "Linux) while blk-switch holds ~100 us; Lab versions ~20%% (Blk) and ~5%%";
  Bench_util.note "(NoOp isolated) better than their kernel counterparts."
