(* Ablations — sensitivity of the headline results to the design
   choices and calibrated cost constants DESIGN.md calls out.

   A. Kernel-crossing costs: how the LabFS-vs-ext4 metadata advantage
      responds to the context-switch and syscall constants (is the win
      really "fewer kernel crossings"?).
   B. IPC cost: how the async/sync (centralized/decentralized) gap
      responds to the shared-memory cross-core constant.
   C. Compression ratio: when does the active-storage Compression
      LabMod stop paying on NVMe? *)

open Labstor
open Lab_sim
open Lab_device
open Lab_kernel

let files = 2000

(* --- A ------------------------------------------------------------ *)

let ext4_rate costs =
  let m = Machine.create ~costs ~ncores:8 () in
  let result = ref None in
  Machine.spawn m (fun () ->
      let dev = Device.create m.Machine.engine Profile.nvme in
      let blk = Blk.create m dev ~sched:Blk.Noop in
      let fs = Kfs.create_fs m blk ~flavor:Kfs.Ext4 () in
      for i = 1 to files do
        Kfs.create fs ~thread:0 (Printf.sprintf "/d/f%d" i)
      done;
      result := Some (float_of_int files /. (Machine.now m /. 1e9)));
  Machine.run m;
  Option.get !result

let labfs_rate ~exec costs =
  let platform = Platform.boot ~costs ~nworkers:2 () in
  ignore
    (Platform.mount_exn platform
       (Printf.sprintf
          "mount: \"fs::/a\"\nrules:\n  exec_mode: %s\ndag:\n  - uuid: ab-fs\n    mod: labfs\n    outputs: [ab-drv]\n  - uuid: ab-drv\n    mod: kernel_driver"
          exec));
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      let t0 = Platform.now platform in
      for i = 1 to files do
        ignore (Runtime.Client.create c (Printf.sprintf "fs::/a/f%d" i))
      done;
      float_of_int files /. ((Platform.now platform -. t0) /. 1e9))

let ablate_kernel_crossing () =
  Printf.printf "\nA. kernel-crossing cost sensitivity (single-thread creates)\n";
  Bench_util.print_table [ 22; 12; 12; 12 ]
    [ "ctx-switch/syscall"; "ext4 kops"; "LabFS kops"; "LabFS/ext4" ]
    (List.map
       (fun scale ->
         let c = Costs.default in
         let costs =
           {
             c with
             Costs.ctx_switch_ns = c.Costs.ctx_switch_ns *. scale;
             syscall_ns = c.Costs.syscall_ns *. scale;
             interrupt_ns = c.Costs.interrupt_ns *. scale;
             wakeup_ns = c.Costs.wakeup_ns *. scale;
           }
         in
         let e = ext4_rate costs and l = labfs_rate ~exec:"async" costs in
         [
           Printf.sprintf "x%.2f" scale;
           Bench_util.kops e;
           Bench_util.kops l;
           Bench_util.f2 (l /. e);
         ])
       [ 0.25; 0.5; 1.0; 2.0; 4.0 ]);
  Bench_util.note
    "the LabFS advantage grows with kernel-crossing costs: the win is crossings,";
  Bench_util.note "not the filesystem code."

(* --- B ------------------------------------------------------------ *)

let ablate_ipc () =
  Printf.printf "\nB. shared-memory IPC cost: async (centralized) vs. sync stacks\n";
  Bench_util.print_table [ 18; 12; 12; 14 ]
    [ "cross-core cost"; "async kops"; "sync kops"; "sync speedup" ]
    (List.map
       (fun scale ->
         let c = Costs.default in
         let costs =
           {
             c with
             Costs.shmem_cross_core_ns = c.Costs.shmem_cross_core_ns *. scale;
             shmem_enqueue_ns = c.Costs.shmem_enqueue_ns *. scale;
           }
         in
         let a = labfs_rate ~exec:"async" costs
         and s = labfs_rate ~exec:"sync" costs in
         [
           Printf.sprintf "x%.2f" scale;
           Bench_util.kops a;
           Bench_util.kops s;
           Bench_util.pct a s;
         ])
       [ 0.25; 1.0; 4.0 ]);
  Bench_util.note
    "decentralized execution pays off in proportion to the IPC it removes — the";
  Bench_util.note "paper's security-vs-latency dial."

(* --- C ------------------------------------------------------------ *)

let compress_bw ratio =
  let platform = Platform.boot ~nworkers:2 () in
  let spec =
    Printf.sprintf
      "mount: \"fs::/z\"\ndag:\n  - uuid: z-fs\n    mod: labfs\n    outputs: [z-z]\n  - uuid: z-z\n    mod: compress\n    attrs:\n      ratio: %.2f\n    outputs: [z-drv]\n  - uuid: z-drv\n    mod: kernel_driver"
      ratio
  in
  ignore (Platform.mount_exn platform spec);
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      let total = 8 * 32 * 1024 * 1024 in
      let t0 = Platform.now platform in
      for i = 1 to 8 do
        let path = Printf.sprintf "fs::/z/f%d" i in
        ignore (Runtime.Client.create c path);
        match Runtime.Client.open_file c path with
        | Ok fd ->
            ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:(32 * 1024 * 1024));
            ignore (Runtime.Client.close c fd)
        | Error e -> failwith e
      done;
      float_of_int total /. ((Platform.now platform -. t0) /. 1e9) /. 1048576.0)

let no_compress_bw () =
  let platform = Platform.boot ~nworkers:2 () in
  ignore
    (Platform.mount_exn platform
       "mount: \"fs::/z\"\ndag:\n  - uuid: z-fs\n    mod: labfs\n    outputs: [z-drv]\n  - uuid: z-drv\n    mod: kernel_driver");
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      let total = 8 * 32 * 1024 * 1024 in
      let t0 = Platform.now platform in
      for i = 1 to 8 do
        let path = Printf.sprintf "fs::/z/f%d" i in
        ignore (Runtime.Client.create c path);
        match Runtime.Client.open_file c path with
        | Ok fd ->
            ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:(32 * 1024 * 1024));
            ignore (Runtime.Client.close c fd)
        | Error e -> failwith e
      done;
      float_of_int total /. ((Platform.now platform -. t0) /. 1e9) /. 1048576.0)

let ablate_compression () =
  Printf.printf "\nC. active-storage compression: NVMe write bandwidth vs. ratio\n";
  let base = no_compress_bw () in
  Bench_util.print_table [ 14; 14; 12 ]
    [ "ratio"; "MiB/s"; "vs. none" ]
    (([ "none (1.00)"; Bench_util.f1 base; "+0%" ]
     :: List.map
          (fun r ->
            let bw = compress_bw r in
            [ Printf.sprintf "%.2f" r; Bench_util.f1 bw; Bench_util.pct base bw ])
          [ 0.1; 0.3; 0.5; 0.8 ]));
  Bench_util.note
    "a 0.6 ns/B codec cannot beat a 2 GB/s NVMe on single-stream bandwidth: the";
  Bench_util.note
    "active-storage win is device *traffic* (examples/custom_stack: -70%%),";
  Bench_util.note "which pays off when the device is the shared bottleneck."

(* --- D ------------------------------------------------------------ *)

(* Interchangeable cache LabMods: plain LRU vs. self-tuning ARC under a
   hot-set + periodic-scan access pattern (the workload that flushes
   LRU). Same stack slot, same attributes — swapped by name only. *)
let cache_hit_rate mod_name =
  let platform = Platform.boot ~nworkers:2 () in
  let spec =
    Printf.sprintf
      "mount: \"fs::/cache\"\ndag:\n  - uuid: cp-fs\n    mod: labfs\n    outputs: [cp-cache]\n  - uuid: cp-cache\n    mod: %s\n    attrs:\n      capacity_mb: 4\n    outputs: [cp-drv]\n  - uuid: cp-drv\n    mod: kernel_driver"
      mod_name
  in
  ignore (Platform.mount_exn platform spec);
  let rt = Platform.runtime platform in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      let file n = Printf.sprintf "fs::/cache/f%d" n in
      (* hot set: 8 x 128 KiB files (1 MiB); cold pool: 128 files. *)
      let fds = Hashtbl.create 64 in
      let fd_of n =
        match Hashtbl.find_opt fds n with
        | Some fd -> fd
        | None ->
            let fd =
              match Runtime.Client.open_file c ~create:true (file n) with
              | Ok fd -> fd
              | Error e -> failwith e
            in
            ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:131072);
            Hashtbl.replace fds n fd;
            fd
      in
      for n = 0 to 135 do
        ignore (fd_of n)
      done;
      let rng = Sim.Rng.create 99 in
      let t0 = Platform.now platform in
      for round = 1 to 60 do
        (* hot reads *)
        for _ = 1 to 32 do
          ignore
            (Runtime.Client.pread c ~fd:(fd_of (Sim.Rng.int rng 8)) ~off:0
               ~bytes:131072)
        done;
        (* periodic scan through the cold pool *)
        if round mod 3 = 0 then
          for n = 8 to 135 do
            ignore (Runtime.Client.pread c ~fd:(fd_of n) ~off:0 ~bytes:131072)
          done
      done;
      let elapsed = Platform.now platform -. t0 in
      let reg = Runtime.Runtime.registry rt in
      let cache = Option.get (Core.Registry.find reg "cp-cache") in
      let hits, misses =
        if mod_name = "arc_cache" then
          (Mods.Arc_cache.hits cache, Mods.Arc_cache.misses cache)
        else (Mods.Lru_cache.hits cache, Mods.Lru_cache.misses cache)
      in
      let rate = float_of_int hits /. float_of_int (Stdlib.max 1 (hits + misses)) in
      (rate, elapsed /. 1e6))

let ablate_cache_policy () =
  Printf.printf "\nD. interchangeable cache LabMods: hot set + periodic scans\n";
  Bench_util.print_table [ 12; 12; 14 ]
    [ "policy"; "hit rate"; "elapsed (ms)" ]
    (List.map
       (fun name ->
         let rate, ms = cache_hit_rate name in
         [ name; Printf.sprintf "%.1f%%" (100.0 *. rate); Bench_util.f1 ms ])
       [ "lru_cache"; "arc_cache" ]);
  Bench_util.note
    "ARC keeps the hot set resident through scans that flush plain LRU — the";
  Bench_util.note
    "paper's point that exotic eviction policies become drop-in LabMods."

let run () =
  Bench_util.heading "ablate" "Design-choice and cost-sensitivity ablations";
  ablate_kernel_crossing ();
  ablate_ipc ();
  ablate_compression ();
  ablate_cache_policy ()
