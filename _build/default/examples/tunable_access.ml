(* Tunable access control (paper §III-B): several LabStacks mounted
   over the same content, each with a different Permissions LabMod —
   islands of data visible to different actors, adjustable at runtime
   without touching a monolithic policy.

   Both stacks share the LabFS instance (UUID "ta-fs"); only the
   permission vertex differs. The "staff" view denies nothing; the
   "guest" view denies the /secret subtree — for the same bytes.

   Run with: dune exec examples/tunable_access.exe *)

open Labstor

let staff_spec =
  {|
mount: "staff::/data"
dag:
  - uuid: ta-perm-staff
    mod: permissions
    outputs: [ta-fs]
  - uuid: ta-fs
    mod: labfs
    outputs: [ta-drv]
  - uuid: ta-drv
    mod: kernel_driver
|}

let guest_spec =
  {|
mount: "guest::/data"
dag:
  - uuid: ta-perm-guest
    mod: permissions
    outputs: [ta-fs]
  - uuid: ta-fs
    mod: labfs
    outputs: [ta-drv]
  - uuid: ta-drv
    mod: kernel_driver
|}

let () =
  let platform = Platform.boot ~nworkers:2 () in
  ignore (Platform.mount_exn platform staff_spec);
  ignore (Platform.mount_exn platform guest_spec);
  let rt = Platform.runtime platform in
  let reg = Runtime.Runtime.registry rt in
  (* The guest view denies the secret island for every uid. *)
  let guest_perm = Option.get (Core.Registry.find reg "ta-perm-guest") in
  List.iter
    (fun uid ->
      Mods.Permissions.add_rule guest_perm ~uid ~prefix:"guest::/data/secret"
        ~allow:false)
    [ 1000; 2000 ];
  Platform.go platform (fun () ->
      let staff = Platform.client platform ~uid:1000 ~thread:0 () in
      let guest = Platform.client platform ~uid:2000 ~thread:1 () in
      (* Staff writes through their view, including the secret island. *)
      (match Runtime.Client.create staff "staff::/data/public/report" with
      | Ok () -> print_endline "staff: created staff::/data/public/report"
      | Error e -> failwith e);
      (match Runtime.Client.create staff "staff::/data/secret/salaries" with
      | Ok () -> print_endline "staff: created staff::/data/secret/salaries"
      | Error e -> failwith e);
      (* The files exist once, in the shared LabFS. The guest view maps
         the same namespace under its own mount with its own policy. *)
      let fs = Option.get (Core.Registry.find reg "ta-fs") in
      Printf.printf "shared LabFS now holds %d files\n" (Mods.Labfs.file_count fs);
      (* Guests can reach the public island... *)
      (match Runtime.Client.create guest "guest::/data/public/note" with
      | Ok () -> print_endline "guest: created guest::/data/public/note"
      | Error e -> failwith e);
      (* ...but the secret island is dark through their stack. *)
      (match Runtime.Client.create guest "guest::/data/secret/peek" with
      | Error e -> Printf.printf "guest: DENIED on secret island (%s)\n" e
      | Ok () -> failwith "guest should have been denied");
      (* Tunability: the operator flips the island open live. *)
      Mods.Permissions.add_rule guest_perm ~uid:2000 ~prefix:"guest::/data/secret"
        ~allow:true;
      match Runtime.Client.create guest "guest::/data/secret/peek" with
      | Ok () -> print_endline "operator widened the policy: guest now admitted"
      | Error e -> failwith e)
