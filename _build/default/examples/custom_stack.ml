(* Custom stacks: the active-storage scenario from the paper's intro.
   An application producing highly compressible output (like VPIC's
   particle dumps) mounts a LabStack with a transparent Compression
   LabMod in front of the driver; a second, plain stack is mounted over
   the same device for comparison. The example then hot-modifies the
   compressed stack, swapping its No-Op scheduler for blk-switch with
   modify_stack — no remount, no application restart.

   Run with: dune exec examples/custom_stack.exe *)

open Labstor

let plain_spec =
  {|
mount: "fs::/plain"
dag:
  - uuid: plain-fs
    mod: labfs
    outputs: [plain-sched]
  - uuid: plain-sched
    mod: noop_sched
    outputs: [plain-drv]
  - uuid: plain-drv
    mod: kernel_driver
|}

let compressed_spec =
  {|
mount: "fs::/compressed"
dag:
  - uuid: comp-fs
    mod: labfs
    outputs: [comp-z]
  - uuid: comp-z
    mod: compress
    attrs:
      ratio: 0.3          # VPIC-like floating point data compresses well
    outputs: [comp-sched]
  - uuid: comp-sched
    mod: noop_sched
    outputs: [comp-drv]
  - uuid: comp-drv
    mod: kernel_driver
|}

let compressed_spec_blkswitch =
  {|
mount: "fs::/compressed"
dag:
  - uuid: comp-fs
    mod: labfs
    outputs: [comp-z]
  - uuid: comp-z
    mod: compress
    attrs:
      ratio: 0.3
    outputs: [comp-bsw]
  - uuid: comp-bsw
    mod: blkswitch_sched
    outputs: [comp-drv]
  - uuid: comp-drv
    mod: kernel_driver
|}

let write_burst client prefix =
  for i = 1 to 8 do
    let path = Printf.sprintf "%s/dump%d" prefix i in
    (match Runtime.Client.create client path with Ok () -> () | Error e -> failwith e);
    match Runtime.Client.open_file client path with
    | Ok fd ->
        ignore (Runtime.Client.pwrite client ~fd ~off:0 ~bytes:(4 * 1024 * 1024));
        ignore (Runtime.Client.close client fd)
    | Error e -> failwith e
  done

let () =
  let platform = Platform.boot ~nworkers:4 () in
  ignore (Platform.mount_exn platform plain_spec);
  ignore (Platform.mount_exn platform compressed_spec);
  let dev = Platform.device platform Device.Profile.Nvme in

  Platform.go platform (fun () ->
      let client = Platform.client platform ~thread:0 () in
      let before = Device.Device.bytes_written dev in
      write_burst client "fs::/plain";
      let plain_bytes = Device.Device.bytes_written dev - before in
      let before = Device.Device.bytes_written dev in
      write_burst client "fs::/compressed";
      let comp_bytes = Device.Device.bytes_written dev - before in
      Printf.printf "32 MiB of dumps -> device traffic: plain %.1f MiB, compressed %.1f MiB (%.0f%% saved)\n"
        (float_of_int plain_bytes /. 1048576.0)
        (float_of_int comp_bytes /. 1048576.0)
        (100.0 *. (1.0 -. (float_of_int comp_bytes /. float_of_int plain_bytes))));

  (* Dynamic semantics imposition: swap the scheduler live. *)
  (match
     Runtime.Runtime.modify_stack_text
       (Platform.runtime platform)
       compressed_spec_blkswitch
   with
  | Ok stack ->
      Printf.printf "modify_stack: %S now runs %s\n" stack.Core.Stack.mount
        (String.concat " -> "
           (List.map
              (fun (v : Core.Stack_spec.vertex) -> v.Core.Stack_spec.mod_name)
              stack.Core.Stack.spec.Core.Stack_spec.dag))
  | Error e -> failwith e);

  Platform.go platform (fun () ->
      let client = Platform.client platform ~thread:1 () in
      write_burst client "fs::/compressed";
      print_endline "writes continue through the modified stack")
