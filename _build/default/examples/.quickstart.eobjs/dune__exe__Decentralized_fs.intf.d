examples/decentralized_fs.mli:
