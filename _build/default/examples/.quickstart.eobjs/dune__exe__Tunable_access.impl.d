examples/tunable_access.ml: Core Labstor List Mods Option Platform Printf Runtime
