examples/orchestrator_demo.mli:
