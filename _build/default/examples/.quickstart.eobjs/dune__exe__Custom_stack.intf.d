examples/custom_stack.mli:
