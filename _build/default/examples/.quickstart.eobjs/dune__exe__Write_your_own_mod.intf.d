examples/write_your_own_mod.mli:
