examples/kvstore.mli:
