examples/crash_recovery.ml: Core Labstor Mods Option Platform Printf Runtime Sim
