examples/quickstart.ml: Core Device Labstor List Platform Printf Runtime
