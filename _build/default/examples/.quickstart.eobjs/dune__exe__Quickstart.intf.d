examples/quickstart.mli:
