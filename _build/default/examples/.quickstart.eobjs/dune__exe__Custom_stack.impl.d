examples/custom_stack.ml: Core Device Labstor List Platform Printf Runtime String
