examples/tunable_access.mli:
