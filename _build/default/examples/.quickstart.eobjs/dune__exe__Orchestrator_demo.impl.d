examples/orchestrator_demo.ml: Labstor Platform Printf Runtime Sim
