examples/live_upgrade.ml: Core Labstor Mods Option Platform Printf Runtime
