examples/decentralized_fs.ml: Core Labstor Mods Option Platform Printf Runtime
