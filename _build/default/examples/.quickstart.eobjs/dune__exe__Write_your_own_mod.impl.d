examples/write_your_own_mod.ml: Core Device Hashtbl Lab_core Labmod Labstor List Option Platform Printf Registry Request Runtime Sim
