examples/kvstore.ml: Labstor Platform Printf Runtime
