(* Quickstart: boot a LabStor platform on a simulated NVMe machine,
   mount a full filesystem LabStack from its YAML spec, and do file I/O
   through the POSIX interface.

   Run with: dune exec examples/quickstart.exe *)

open Labstor

let stack_spec =
  {|
# A classical I/O stack, fully in userspace: filesystem -> page cache
# -> I/O scheduler -> driver.
mount: "fs::/home"
rules:
  exec_mode: async
dag:
  - uuid: labfs-main
    mod: labfs
    outputs: [lru-main]
  - uuid: lru-main
    mod: lru_cache
    attrs:
      capacity_mb: 64
    outputs: [noop-main]
  - uuid: noop-main
    mod: noop_sched
    outputs: [nvme-main]
  - uuid: nvme-main
    mod: kernel_driver
|}

let () =
  let platform = Platform.boot ~nworkers:2 () in
  let stack = Platform.mount_exn platform stack_spec in
  Printf.printf "mounted %S as stack #%d (%d LabMods)\n" stack.Core.Stack.mount
    stack.Core.Stack.id
    (List.length stack.Core.Stack.spec.Core.Stack_spec.dag);
  Platform.go platform (fun () ->
      let client = Platform.client platform ~thread:0 () in
      let fd =
        match Runtime.Client.open_file client ~create:true "fs::/home/hello.txt" with
        | Ok fd -> fd
        | Error e -> failwith e
      in
      Printf.printf "opened fs::/home/hello.txt -> fd %d\n" fd;
      (match Runtime.Client.pwrite client ~fd ~off:0 ~bytes:4096 with
      | Ok n -> Printf.printf "wrote %d bytes\n" n
      | Error e -> failwith e);
      (match Runtime.Client.pread client ~fd ~off:0 ~bytes:4096 with
      | Ok n -> Printf.printf "read %d bytes back\n" n
      | Error e -> failwith e);
      (match Runtime.Client.fsync client ~fd with
      | Ok () -> print_endline "fsync: metadata log flushed to device"
      | Error e -> failwith e);
      ignore (Runtime.Client.close client fd));
  let dev = Platform.device platform Device.Profile.Nvme in
  Printf.printf "NVMe saw %d writes / %d reads; virtual time %.1f us\n"
    (Device.Device.completed_writes dev)
    (Device.Device.completed_reads dev)
    (Platform.now platform /. 1e3)
