(* Work orchestration: latency-sensitive metadata apps and
   compression-heavy bulk writers share one Runtime with fewer workers
   than queues. Round-robin queue placement puts 20 ms compressions and
   3 us creates on the same workers (head-of-line blocking); the dynamic
   policy classifies queues by expected processing time and gives each
   class dedicated workers — the Figure 5(b) effect.

   Run with: dune exec examples/orchestrator_demo.exe *)

open Labstor

let l_spec =
  {|
mount: "fs::/meta"
dag:
  - uuid: l-fs
    mod: labfs
    outputs: [l-sched]
  - uuid: l-sched
    mod: noop_sched
    outputs: [l-drv]
  - uuid: l-drv
    mod: kernel_driver
|}

let c_spec =
  {|
mount: "fs::/bulk"
dag:
  - uuid: c-fs
    mod: labfs
    outputs: [c-z]
  - uuid: c-z
    mod: compress
    outputs: [c-sched]
  - uuid: c-sched
    mod: noop_sched
    outputs: [c-drv]
  - uuid: c-drv
    mod: kernel_driver
|}

let n_l_clients = 2

let n_c_clients = 2

let run_with policy label =
  let platform = Platform.boot ~nworkers:2 ~policy () in
  ignore (Platform.mount_exn platform l_spec);
  ignore (Platform.mount_exn platform c_spec);
  let lat = Sim.Stats.create () in
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      let finished = ref 0 in
      let total = n_l_clients + n_c_clients in
      Sim.Engine.suspend (fun resume ->
          (* Bulk writers: a stream of 32 MiB compressed writes. *)
          for cw = 1 to n_c_clients do
            Sim.Engine.spawn m.Sim.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:cw () in
                for i = 1 to 6 do
                  let path = Printf.sprintf "fs::/bulk/c%d-big%d" cw i in
                  ignore (Runtime.Client.create c path);
                  match Runtime.Client.open_file c path with
                  | Ok fd ->
                      ignore
                        (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:(32 * 1024 * 1024));
                      ignore (Runtime.Client.close c fd)
                  | Error e -> failwith e
                done;
                incr finished;
                if !finished = total then resume ())
          done;
          (* Metadata apps: creates paced through the bulk phase; warm
             up first so the orchestrator has service-time estimates. *)
          for lw = 1 to n_l_clients do
            Sim.Engine.spawn m.Sim.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:(10 + lw) () in
                for i = 1 to 20 do
                  ignore
                    (Runtime.Client.create c (Printf.sprintf "fs::/meta/w%d-%d" lw i))
                done;
                Sim.Engine.wait 30e6;  (* past the first rebalance epochs *)
                for i = 1 to 200 do
                  let t0 = Platform.now platform in
                  ignore
                    (Runtime.Client.create c (Printf.sprintf "fs::/meta/f%d-%d" lw i));
                  Sim.Stats.add lat (Platform.now platform -. t0);
                  Sim.Engine.wait 100_000.0
                done;
                incr finished;
                if !finished = total then resume ())
          done));
  Printf.printf "%-12s metadata latency: avg %8.1f us   p99 %8.1f us\n" label
    (Sim.Stats.mean lat /. 1e3)
    (Sim.Stats.percentile lat 99.0 /. 1e3)

let () =
  Printf.printf
    "colocated: %d L-Apps (creates) + %d C-Apps (32 MiB compressed writes) on 2 workers\n"
    n_l_clients n_c_clients;
  run_with (Runtime.Orchestrator.Round_robin 2) "round-robin";
  run_with
    (Runtime.Orchestrator.Dynamic
       { max_workers = 2; threshold = 0.2; lq_cutoff_ns = 1_000_000.0 })
    "dynamic";
  print_endline
    "dynamic orchestration isolates latency-sensitive queues from 20 ms compressions"
