(* The developer story: implement a brand-new LabMod (a deduplication
   stage, fingerprinting block writes and suppressing duplicates), test
   it in isolation with the debugging harness, publish it through a
   LabMod repo, and compose it into a live stack — all in userspace, no
   kernel programming (the paper's §III-A workflow).

   Run with: dune exec examples/write_your_own_mod.exe *)

open Labstor
open Lab_core

(* ------------------------------------------------------------------ *)
(* 1. The new LabMod: type, operation, state, platform APIs.           *)
(* ------------------------------------------------------------------ *)

type dedup_state = {
  fingerprints : (int, int) Hashtbl.t;  (* content hash -> lba *)
  mutable suppressed : int;
  mutable total : int;
}

type Labmod.state += Dedup of dedup_state

(* Simulated payloads carry sizes, not bytes; we fingerprint the
   (lba, bytes) identity the workload below re-writes. A real
   deployment would hash the buffer — the structure is identical. *)
let fingerprint lba bytes = (lba * 1_000_003) lxor bytes

let dedup_factory : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  let operate m ctx req =
    match (m.Labmod.state, req.Request.payload) with
    | Dedup s, Request.Block { b_kind = Request.Write; b_lba; b_bytes; b_sync = false } ->
        Sim.Machine.compute ctx.Labmod.machine ~thread:ctx.Labmod.thread
          (200.0 +. (0.05 *. float_of_int b_bytes));  (* hashing cost *)
        s.total <- s.total + 1;
        let fp = fingerprint b_lba b_bytes in
        if Hashtbl.mem s.fingerprints fp then begin
          s.suppressed <- s.suppressed + 1;
          Request.Size b_bytes  (* duplicate: nothing reaches the device *)
        end
        else begin
          Hashtbl.replace s.fingerprints fp b_lba;
          ctx.Labmod.forward req
        end
    | Dedup _, _ -> ctx.Labmod.forward req
    | _ -> Request.Failed "dedup: bad state"
  in
  Labmod.make ~name:"dedup" ~uuid ~mod_type:Labmod.Compression
    ~state:(Dedup { fingerprints = Hashtbl.create 1024; suppressed = 0; total = 0 })
    {
      Labmod.operate;
      est_processing_time =
        (fun _ req -> 200.0 +. (0.05 *. float_of_int (Request.bytes_of req)));
      state_update = (fun old -> old);  (* live upgrades keep the table *)
      state_repair = (fun _ -> ());
    }

let stats_of m =
  match m.Labmod.state with
  | Dedup s -> (s.total, s.suppressed)
  | _ -> (0, 0)

(* ------------------------------------------------------------------ *)
(* 2. Debug it in isolation (the paper's GDB/Valgrind mode).           *)
(* ------------------------------------------------------------------ *)

let () =
  print_endline "== harness: dedup in isolation ==";
  let h = Runtime.Mod_harness.create (fun _m -> dedup_factory) in
  let w lba = Request.Block
      { Request.b_kind = Request.Write; b_lba = lba; b_bytes = 4096; b_sync = false }
  in
  ignore (Runtime.Mod_harness.run h (w 1));
  ignore (Runtime.Mod_harness.run h (w 2));
  ignore (Runtime.Mod_harness.run h (w 1));  (* duplicate *)
  let forwarded = List.length (Runtime.Mod_harness.forwarded h) in
  Printf.printf "3 writes in, %d forwarded downstream (1 duplicate suppressed)\n"
    forwarded;
  assert (forwarded = 2)

(* ------------------------------------------------------------------ *)
(* 3. Publish via a repo and compose it into a stack.                  *)
(* ------------------------------------------------------------------ *)

let spec =
  {|
mount: "fs::/dedup"
dag:
  - uuid: dd-fs
    mod: labfs
    outputs: [dd-dedup]
  - uuid: dd-dedup
    mod: dedup
    outputs: [dd-drv]
  - uuid: dd-drv
    mod: kernel_driver
|}

let () =
  print_endline "== deploy: repo -> mount -> traffic ==";
  let platform = Platform.boot ~nworkers:2 () in
  let rt = Platform.runtime platform in
  (* Our repo is owned by uid 0 (the Runtime's owner): trusted, so the
     stack may execute inside the Runtime. *)
  (match
     Runtime.Runtime.mount_repo rt ~name:"my-first-repo" ~owner_uid:0
       ~mods:[ ("dedup", dedup_factory) ]
   with
  | Ok Core.Repo.Trusted -> print_endline "repo mounted (trusted)"
  | Ok Core.Repo.Untrusted -> print_endline "repo mounted (untrusted)"
  | Error e -> failwith e);
  ignore (Platform.mount_exn platform spec);
  let dev = Platform.device platform Device.Profile.Nvme in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      (* A checkpoint-like workload that rewrites the same regions. *)
      let fd =
        match Runtime.Client.open_file c ~create:true "fs::/dedup/ckpt" with
        | Ok fd -> fd
        | Error e -> failwith e
      in
      for _round = 1 to 5 do
        for block = 0 to 19 do
          ignore (Runtime.Client.pwrite c ~fd ~off:(block * 4096) ~bytes:4096)
        done
      done;
      let dd = Option.get (Registry.find (Runtime.Runtime.registry rt) "dd-dedup") in
      let total, suppressed = stats_of dd in
      Printf.printf "%d writes through the stack, %d deduplicated (%.0f%%)\n" total
        suppressed
        (100.0 *. float_of_int suppressed /. float_of_int total);
      Printf.printf "device saw %d block writes\n" (Device.Device.completed_writes dev));
  print_endline "a new I/O feature: ~60 lines, no kernel, hot-swappable"
