(* Interface convergence: the same device serves a POSIX filesystem
   stack and a key-value stack simultaneously. The KV path needs a
   single put per object where POSIX needs open+write+close — the
   LABIOS argument of §IV-C — and this example measures the
   difference.

   Run with: dune exec examples/kvstore.exe *)

open Labstor

let fs_spec =
  {|
mount: "fs::/objects"
dag:
  - uuid: obj-fs
    mod: labfs
    outputs: [obj-sched]
  - uuid: obj-sched
    mod: noop_sched
    outputs: [obj-drv]
  - uuid: obj-drv
    mod: kernel_driver
|}

let kv_spec =
  {|
mount: "kv::/objects"
dag:
  - uuid: obj-kvs
    mod: labkvs
    outputs: [kv-sched]
  - uuid: kv-sched
    mod: noop_sched
    outputs: [kv-drv]
  - uuid: kv-drv
    mod: kernel_driver
|}

let n_objects = 500

let object_bytes = 8192

let () =
  let platform = Platform.boot ~nworkers:2 () in
  ignore (Platform.mount_exn platform fs_spec);
  ignore (Platform.mount_exn platform kv_spec);

  let posix_time =
    Platform.go platform (fun () ->
        let client = Platform.client platform ~thread:0 () in
        let t0 = Platform.now platform in
        for i = 1 to n_objects do
          let path = Printf.sprintf "fs::/objects/o%d" i in
          match Runtime.Client.open_file client ~create:true path with
          | Ok fd ->
              ignore (Runtime.Client.pwrite client ~fd ~off:0 ~bytes:object_bytes);
              ignore (Runtime.Client.close client fd)
          | Error e -> failwith e
        done;
        Platform.now platform -. t0)
  in
  let kv_time =
    Platform.go platform (fun () ->
        let client = Platform.client platform ~thread:1 () in
        let t0 = Platform.now platform in
        for i = 1 to n_objects do
          match
            Runtime.Client.put client
              ~key:(Printf.sprintf "kv::/objects/o%d" i)
              ~bytes:object_bytes
          with
          | Ok () -> ()
          | Error e -> failwith e
        done;
        Platform.now platform -. t0)
  in
  Printf.printf "%d objects of %d B\n" n_objects object_bytes;
  Printf.printf "  POSIX (open+write+close): %8.1f us total\n" (posix_time /. 1e3);
  Printf.printf "  LabKVS (single put):      %8.1f us total\n" (kv_time /. 1e3);
  Printf.printf "  put/get interface is %.0f%% faster\n"
    (100.0 *. (posix_time -. kv_time) /. posix_time);

  (* Both views coexist: read an object back through the KV stack. *)
  Platform.go platform (fun () ->
      let client = Platform.client platform ~thread:2 () in
      match Runtime.Client.get client ~key:"kv::/objects/o1" with
      | Ok n -> Printf.printf "get(kv::/objects/o1) -> %d bytes\n" n
      | Error e -> failwith e)
