(* Live upgrade: hot-swap a LabMod's code while an application is
   hammering it, with no service interruption and full state transfer —
   the Table I scenario.

   Run with: dune exec examples/live_upgrade.exe *)

open Labstor

let spec = "mount: \"ctl::/svc\"\ndag:\n  - uuid: svc-1\n    mod: dummy"

let () =
  let platform = Platform.boot ~nworkers:1 () in
  ignore (Platform.mount_exn platform spec);
  let rt = Platform.runtime platform in
  Platform.go platform (fun () ->
      let client = Platform.client platform ~thread:0 () in
      (* Phase 1: traffic against version 1. *)
      for _ = 1 to 1000 do
        match Runtime.Client.control client ~mount:"ctl::/svc" 1 with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      let v1 = Option.get (Core.Registry.find (Runtime.Runtime.registry rt) "svc-1") in
      Printf.printf "v%d (%s) processed %d messages\n" v1.Core.Labmod.version
        (Mods.Dummy_mod.tag v1)
        (Mods.Dummy_mod.messages v1);

      (* Submit the upgrade; the Runtime admin applies it within one
         period while we keep sending. *)
      Runtime.Runtime.modify_mods rt
        {
          Core.Module_manager.target = "dummy";
          factory = Mods.Dummy_mod.factory ~tag:"v2" ();
          code_bytes = 1 lsl 20;  (* a 1 MiB module binary *)
          kind = Core.Module_manager.Centralized;
        };
      let t0 = Platform.now platform in
      for _ = 1 to 1000 do
        match Runtime.Client.control client ~mount:"ctl::/svc" 1 with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      let dt = Platform.now platform -. t0 in
      let v2 = Option.get (Core.Registry.find (Runtime.Runtime.registry rt) "svc-1") in
      Printf.printf "upgrade applied mid-traffic: now v%d (%s), %d messages total\n"
        v2.Core.Labmod.version (Mods.Dummy_mod.tag v2) (Mods.Dummy_mod.messages v2);
      Printf.printf "1000 messages across the upgrade took %.2f ms (the upgrade itself ~3 ms)\n"
        (dt /. 1e6);
      assert (Mods.Dummy_mod.messages v2 = 2000);
      print_endline "no message was lost: state survived the code swap")
