(* Decentralized I/O system design (paper §III-B): metadata operations
   go through the Runtime (centralized, secured, asynchronous) while
   data operations execute synchronously in the client over a direct
   driver path — the SplitFS/Nova-style split the paper shows LabStor
   expressing with two LabStacks.

   The trick: both stacks name the SAME LabFS instance (UUID
   "split-fs"), and the Module Registry instantiates a UUID only once —
   so block allocations made on the data path are visible to the
   metadata path, exactly like the paper's "state ... stored in shared
   memory between the two LabStacks".

   Run with: dune exec examples/decentralized_fs.exe *)

open Labstor

(* Metadata stack: asynchronous, through Runtime workers. *)
let md_spec =
  {|
mount: "md::/split"
rules:
  exec_mode: async
dag:
  - uuid: split-fs
    mod: labfs
    outputs: [split-sched]
  - uuid: split-sched
    mod: noop_sched
    outputs: [split-drv]
  - uuid: split-drv
    mod: kernel_driver
|}

(* Data stack: the same LabFS instance, executed in the client. *)
let data_spec =
  {|
mount: "fs::/split"
rules:
  exec_mode: sync
dag:
  - uuid: split-fs
    mod: labfs
    outputs: [split-sched]
  - uuid: split-sched
    mod: noop_sched
    outputs: [split-drv]
  - uuid: split-drv
    mod: kernel_driver
|}

let ops = 300

let () =
  let platform = Platform.boot ~nworkers:2 () in
  ignore (Platform.mount_exn platform md_spec);
  ignore (Platform.mount_exn platform data_spec);
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      (* Metadata (create) through the centralized path... *)
      let t0 = Platform.now platform in
      for i = 1 to ops do
        match Runtime.Client.create c (Printf.sprintf "md::/split/f%d" i) with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      let md_time = Platform.now platform -. t0 in
      (* ...data through the decentralized client-side path. The files
         were created via the md mount; the SAME inodes are visible
         under the data mount because the LabFS instance is shared. *)
      let t0 = Platform.now platform in
      for i = 1 to ops do
        (* GenericFS resolves either mount to the shared instance; the
           data mount's path prefix differs, so write via md-visible
           names re-resolved under the sync stack. *)
        match Runtime.Client.open_file c (Printf.sprintf "fs::/split/f%d" i) ~create:true with
        | Ok fd ->
            ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:4096);
            ignore (Runtime.Client.close c fd)
        | Error e -> failwith e
      done;
      let data_time = Platform.now platform -. t0 in
      Printf.printf "%d creates via centralized md stack:   %8.1f us (%.1f us/op)\n"
        ops (md_time /. 1e3)
        (md_time /. 1e3 /. float_of_int ops);
      Printf.printf "%d open+write+close via client-side data stack: %8.1f us (%.1f us/op)\n"
        ops (data_time /. 1e3)
        (data_time /. 1e3 /. float_of_int ops);
      let rt = Platform.runtime platform in
      let fs = Option.get (Core.Registry.find (Runtime.Runtime.registry rt) "split-fs") in
      Printf.printf "one shared LabFS instance holds %d files from both paths\n"
        (Mods.Labfs.file_count fs);
      print_endline
        "metadata keeps the Runtime's security boundary; data skips the IPC entirely")
