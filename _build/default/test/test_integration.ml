(* Cross-cutting integration tests: whole-platform determinism,
   upgrade/crash interplay, dynamic stack modification under traffic,
   multi-interface multiplexing, and spec-level LabMod
   interchangeability. *)

open Labstor
open Lab_core

let fs_spec ?(cache = "lru_cache") ?(extra = "") () =
  Printf.sprintf
    {|
mount: "fs::/it"
dag:
  - uuid: it-fs
    mod: labfs
    outputs: [it-cache]
  - uuid: it-cache
    mod: %s
    attrs:
      capacity_mb: 8
    outputs: [it-sched]
%s  - uuid: it-sched
    mod: noop_sched
    outputs: [it-drv]
  - uuid: it-drv
    mod: kernel_driver
|}
    cache extra

let kv_spec =
  {|
mount: "kv::/it"
dag:
  - uuid: it-kvs
    mod: labkvs
    outputs: [it-ksched]
  - uuid: it-ksched
    mod: noop_sched
    outputs: [it-kdrv]
  - uuid: it-kdrv
    mod: kernel_driver
|}

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)

let run_scenario () =
  let platform = Platform.boot ~nworkers:4 ~seed:42 () in
  ignore (Platform.mount_exn platform (fs_spec ()));
  ignore (Platform.mount_exn platform kv_spec);
  let ops_done = ref 0 in
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      let finished = ref 0 in
      Sim.Engine.suspend (fun resume ->
          for i = 1 to 6 do
            Sim.Engine.spawn m.Sim.Machine.engine (fun () ->
                let c = Platform.client platform ~thread:i () in
                let rng = Sim.Rng.create (1000 + i) in
                for j = 1 to 40 do
                  (match j mod 3 with
                  | 0 ->
                      ignore
                        (Runtime.Client.put c
                           ~key:(Printf.sprintf "kv::/it/k%d-%d" i j)
                           ~bytes:(4096 * (1 + Sim.Rng.int rng 4)))
                  | 1 -> ok (Runtime.Client.create c (Printf.sprintf "fs::/it/f%d-%d" i j))
                  | _ -> (
                      let path = Printf.sprintf "fs::/it/d%d-%d" i j in
                      ok (Runtime.Client.create c path);
                      match Runtime.Client.open_file c path with
                      | Ok fd ->
                          ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:8192);
                          ignore (Runtime.Client.pread c ~fd ~off:0 ~bytes:8192);
                          ignore (Runtime.Client.close c fd)
                      | Error e -> failwith e));
                  incr ops_done
                done;
                incr finished;
                if !finished = 6 then resume ())
          done));
  (Platform.now platform, !ops_done,
   Runtime.Runtime.requests_processed (Platform.runtime platform))

let test_whole_platform_determinism () =
  let a = run_scenario () and b = run_scenario () in
  let pp fmt (t, ops, reqs) = Format.fprintf fmt "(%.3f, %d, %d)" t ops reqs in
  Alcotest.check (Alcotest.testable pp ( = )) "bit-identical replay" a b

let test_multi_interface_multiplexing () =
  let _, ops, reqs = run_scenario () in
  Alcotest.(check int) "all client ops completed" 240 ops;
  Alcotest.(check bool) "workers served both interfaces" true (reqs > 240)

(* ------------------------------------------------------------------ *)

let test_upgrade_then_crash_then_upgrade () =
  let platform = Platform.boot ~nworkers:2 () in
  ignore
    (Platform.mount_exn platform
       "mount: \"ctl::/d\"\ndag:\n  - uuid: uc-dummy\n    mod: dummy");
  let rt = Platform.runtime platform in
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      let c = Platform.client platform ~thread:0 () in
      for _ = 1 to 20 do
        ok (Runtime.Client.control c ~mount:"ctl::/d" 1)
      done;
      (* First upgrade applies normally. *)
      Runtime.Runtime.modify_mods rt
        {
          Module_manager.target = "dummy";
          factory = Mods.Dummy_mod.factory ~tag:"v2" ();
          code_bytes = 1 lsl 18;
          kind = Module_manager.Centralized;
        };
      Sim.Engine.wait 20e6;
      let v2 = Option.get (Registry.find (Runtime.Runtime.registry rt) "uc-dummy") in
      Alcotest.(check string) "v2 live" "v2" (Mods.Dummy_mod.tag v2);
      (* Crash with another upgrade queued; it must apply after restart. *)
      Runtime.Runtime.modify_mods rt
        {
          Module_manager.target = "dummy";
          factory = Mods.Dummy_mod.factory ~tag:"v3" ();
          code_bytes = 1 lsl 18;
          kind = Module_manager.Centralized;
        };
      Runtime.Runtime.crash rt;
      Sim.Engine.spawn m.Sim.Machine.engine (fun () ->
          Sim.Engine.wait 2e6;
          Runtime.Runtime.restart rt);
      ok (Runtime.Client.control c ~mount:"ctl::/d" 1);
      Sim.Engine.wait 30e6;
      let v3 = Option.get (Registry.find (Runtime.Runtime.registry rt) "uc-dummy") in
      Alcotest.(check string) "queued upgrade applied post-restart" "v3"
        (Mods.Dummy_mod.tag v3);
      Alcotest.(check int) "no message lost across it all" 21
        (Mods.Dummy_mod.messages v3))

(* ------------------------------------------------------------------ *)

let test_modify_stack_under_traffic () =
  (* Dynamic semantics imposition: insert a compression vertex into a
     live stack, then remove it, while a client keeps writing. *)
  let platform = Platform.boot ~nworkers:2 () in
  let base =
    "mount: \"fs::/dyn\"\ndag:\n  - uuid: dy-fs\n    mod: labfs\n    outputs: [dy-drv]\n  - uuid: dy-drv\n    mod: kernel_driver"
  in
  let with_compression =
    "mount: \"fs::/dyn\"\ndag:\n  - uuid: dy-fs\n    mod: labfs\n    outputs: [dy-z]\n  - uuid: dy-z\n    mod: compress\n    outputs: [dy-drv]\n  - uuid: dy-drv\n    mod: kernel_driver"
  in
  ignore (Platform.mount_exn platform base);
  let rt = Platform.runtime platform in
  let dev = Platform.device platform Device.Profile.Nvme in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      let write n =
        let path = Printf.sprintf "fs::/dyn/f%d" n in
        ok (Runtime.Client.create c path);
        match Runtime.Client.open_file c path with
        | Ok fd ->
            ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:(1 lsl 20));
            ignore (Runtime.Client.close c fd)
        | Error e -> failwith e
      in
      write 1;
      let before = Device.Device.bytes_written dev in
      (match Runtime.Runtime.modify_stack_text rt with_compression with
      | Ok stack ->
          Alcotest.(check int) "vertex inserted" 3
            (List.length stack.Stack.spec.Stack_spec.dag)
      | Error e -> Alcotest.fail e);
      write 2;
      Sim.Engine.wait 1e6;
      let compressed_delta = Device.Device.bytes_written dev - before in
      Alcotest.(check bool)
        (Printf.sprintf "compressed write shrank device traffic (%d)" compressed_delta)
        true
        (compressed_delta < (1 lsl 20) * 3 / 4);
      (* LabFS state (files) survived the DAG change. *)
      let fs = Option.get (Registry.find (Runtime.Runtime.registry rt) "dy-fs") in
      Alcotest.(check bool) "f1 still known" true
        (Mods.Labfs.lookup fs "fs::/dyn/f1" <> None);
      (match Runtime.Runtime.modify_stack_text rt base with
      | Ok stack ->
          Alcotest.(check int) "vertex removed" 2
            (List.length stack.Stack.spec.Stack_spec.dag)
      | Error e -> Alcotest.fail e);
      write 3)

(* ------------------------------------------------------------------ *)

let test_arc_cache_by_spec () =
  (* Interchangeability at the spec level: swap lru_cache for arc_cache
     by editing one YAML line. *)
  let run cache =
    let platform = Platform.boot ~nworkers:2 () in
    ignore (Platform.mount_exn platform (fs_spec ~cache ()));
    Platform.go platform (fun () ->
        let c = Platform.client platform ~thread:0 () in
        let path = "fs::/it/x" in
        ok (Runtime.Client.create c path);
        match Runtime.Client.open_file c path with
        | Ok fd ->
            ignore (Runtime.Client.pwrite c ~fd ~off:0 ~bytes:65536);
            ok (Runtime.Client.pread c ~fd ~off:0 ~bytes:65536)
        | Error e -> failwith e)
  in
  Alcotest.(check int) "lru stack works" 65536 (run "lru_cache");
  Alcotest.(check int) "arc stack works" 65536 (run "arc_cache")

let test_consistency_in_stack_durable () =
  let platform = Platform.boot ~nworkers:2 () in
  let spec =
    {|
mount: "fs::/dur"
dag:
  - uuid: du-fs
    mod: labfs
    outputs: [du-cons]
  - uuid: du-cons
    mod: consistency
    attrs:
      mode: durable
    outputs: [du-cache]
  - uuid: du-cache
    mod: lru_cache
    outputs: [du-drv]
  - uuid: du-drv
    mod: kernel_driver
|}
  in
  ignore (Platform.mount_exn platform spec);
  let dev = Platform.device platform Device.Profile.Nvme in
  Platform.go platform (fun () ->
      let c = Platform.client platform ~thread:0 () in
      let path = "fs::/dur/f" in
      ok (Runtime.Client.create c path);
      match Runtime.Client.open_file c path with
      | Ok fd ->
          let before = Device.Device.bytes_written dev in
          for i = 0 to 9 do
            ignore (Runtime.Client.pwrite c ~fd ~off:(i * 4096) ~bytes:4096)
          done;
          (* Durable mode: every write bypassed the cache to the device. *)
          Alcotest.(check bool) "10 writes persisted" true
            (Device.Device.bytes_written dev - before >= 10 * 4096)
      | Error e -> failwith e)

(* ------------------------------------------------------------------ *)

let test_fio_through_labstor_stack () =
  let platform = Platform.boot ~nworkers:4 () in
  ignore (Platform.mount_exn platform (fs_spec ()));
  let r =
    Platform.go platform (fun () ->
        let m = Platform.machine platform in
        let clients =
          Array.init 4 (fun i -> Platform.client platform ~thread:i ())
        in
        let fds =
          Array.mapi
            (fun i c ->
              let path = Printf.sprintf "fs::/it/fio%d" i in
              ok (Runtime.Client.create c path);
              ok (Runtime.Client.open_file c path))
            clients
        in
        let target =
          Lab_workloads.Fio.target_of_submit (fun ~thread ~kind ~off ~bytes ->
              let c = clients.(thread) and fd = fds.(thread) in
              match kind with
              | Request.Write -> ignore (Runtime.Client.pwrite c ~fd ~off ~bytes)
              | Request.Read -> ignore (Runtime.Client.pread c ~fd ~off ~bytes))
        in
        let job =
          {
            Lab_workloads.Fio.default_job with
            Lab_workloads.Fio.nthreads = 4;
            total_bytes_per_thread = 1 lsl 20;
            region_bytes = 1 lsl 22;
          }
        in
        Lab_workloads.Fio.run m job target)
  in
  Alcotest.(check int) "all ops issued" 1024 r.Lab_workloads.Fio.ops;
  Alcotest.(check bool) "latency recorded" true
    (Sim.Stats.count r.Lab_workloads.Fio.latency = 1024)

let () =
  Alcotest.run "lab_integration"
    [
      ( "platform",
        [
          Alcotest.test_case "determinism" `Quick test_whole_platform_determinism;
          Alcotest.test_case "multi-interface multiplexing" `Quick
            test_multi_interface_multiplexing;
          Alcotest.test_case "fio through a stack" `Quick test_fio_through_labstor_stack;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "upgrade, crash, upgrade" `Quick
            test_upgrade_then_crash_then_upgrade;
          Alcotest.test_case "modify_stack under traffic" `Quick
            test_modify_stack_under_traffic;
        ] );
      ( "composition",
        [
          Alcotest.test_case "arc by spec" `Quick test_arc_cache_by_spec;
          Alcotest.test_case "durable consistency in stack" `Quick
            test_consistency_in_stack_durable;
        ] );
    ]
