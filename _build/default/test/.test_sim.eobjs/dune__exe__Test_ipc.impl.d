test/test_ipc.ml: Alcotest Engine Float Ipc_manager Lab_ipc Lab_sim List QCheck QCheck_alcotest Qp Ring Shmem Waitq
