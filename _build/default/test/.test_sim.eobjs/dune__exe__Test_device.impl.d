test/test_device.ml: Alcotest Device Engine Lab_device Lab_sim List Printf Profile QCheck QCheck_alcotest Rng Stats
