test/test_sim.ml: Alcotest Array Buffer Cpu Engine Float Gen Heap Int Lab_sim List Mailbox Option Printf QCheck QCheck_alcotest Rng Semaphore Stats Stdlib
