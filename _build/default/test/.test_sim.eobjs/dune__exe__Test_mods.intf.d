test/test_mods.mli:
