test/test_workloads.ml: Adapters Alcotest Api Array Blk Device Filebench Fio Fxmark Hashtbl Kfs Lab_core Lab_device Lab_kernel Lab_sim Lab_workloads Labios List Machine Pfs Printf Profile Stats Ycsb
