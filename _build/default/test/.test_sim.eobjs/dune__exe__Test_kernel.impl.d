test/test_kernel.ml: Alcotest Api Array Blk Device Engine Gen Kfs Lab_device Lab_kernel Lab_sim List Lru Machine Option Page_cache Printf Profile QCheck QCheck_alcotest Stdlib
