test/test_integration.ml: Alcotest Array Device Format Lab_core Lab_workloads Labstor List Mods Module_manager Option Platform Printf Registry Request Runtime Sim Stack Stack_spec
