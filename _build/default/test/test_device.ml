(* Tests for lab_device: service model, FIFO per queue, parallelism,
   seek behaviour, flush, counters. *)

open Lab_sim
open Lab_device

let in_sim f =
  let e = Engine.create () in
  let result = ref None in
  Engine.spawn e (fun () -> result := Some (f e));
  Engine.run e;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

let test_single_write_latency () =
  let elapsed =
    in_sim (fun e ->
        let dev = Device.create e Profile.nvme in
        let c = Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:0 ~bytes:4096 in
        c.c_completed -. c.c_submitted)
  in
  (* 6 us latency + 4096 B / 2 B/ns = 2048 ns transfer *)
  Alcotest.(check (float 1.0)) "4K NVMe write" 8048.0 elapsed

let test_reads_and_writes_counted () =
  in_sim (fun e ->
      let dev = Device.create e Profile.pmem in
      ignore (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:0 ~bytes:4096);
      ignore (Device.submit_wait dev ~hctx:0 ~kind:Read ~lba:0 ~bytes:8192);
      Alcotest.(check int) "writes" 1 (Device.completed_writes dev);
      Alcotest.(check int) "reads" 1 (Device.completed_reads dev);
      Alcotest.(check int) "bytes written" 4096 (Device.bytes_written dev);
      Alcotest.(check int) "bytes read" 8192 (Device.bytes_read dev))

let test_hdd_sequential_vs_random () =
  let seq =
    in_sim (fun e ->
        let dev = Device.create e Profile.hdd in
        for i = 0 to 9 do
          ignore (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:i ~bytes:4096)
        done;
        Engine.now e)
  in
  let rand =
    in_sim (fun e ->
        let dev = Device.create e Profile.hdd in
        for i = 0 to 9 do
          ignore
            (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:(i * 1000) ~bytes:4096)
        done;
        Engine.now e)
  in
  Alcotest.(check bool)
    (Printf.sprintf "random (%.0f) much slower than sequential (%.0f)" rand seq)
    true
    (rand > seq *. 5.0)

let test_nvme_parallelism () =
  (* 16 concurrent 4K writes on 16 queues should take far less than 16x
     one write (latency stage overlaps). *)
  let one =
    in_sim (fun e ->
        let dev = Device.create e Profile.nvme in
        ignore (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:0 ~bytes:4096);
        Engine.now e)
  in
  let sixteen =
    in_sim (fun e ->
        let dev = Device.create e Profile.nvme in
        let remaining = ref 16 in
        Engine.suspend (fun resume ->
            for i = 0 to 15 do
              Device.submit dev ~hctx:i ~kind:Write ~lba:(i * 8) ~bytes:4096
                ~on_complete:(fun _ ->
                  decr remaining;
                  if !remaining = 0 then resume ())
            done);
        Engine.now e)
  in
  Alcotest.(check bool)
    (Printf.sprintf "16 parallel (%.0f) < 8x single (%.0f)" sixteen one)
    true
    (sixteen < one *. 8.0)

let test_sata_single_queue_serializes () =
  (* SATA has 1 hw queue; its 4 channels still allow some overlap, but
     the transfer stage and queueing keep scaling well below 16x. *)
  let one =
    in_sim (fun e ->
        let dev = Device.create e Profile.sata_ssd in
        ignore (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:0 ~bytes:4096);
        Engine.now e)
  in
  let sixteen =
    in_sim (fun e ->
        let dev = Device.create e Profile.sata_ssd in
        let remaining = ref 16 in
        Engine.suspend (fun resume ->
            for i = 0 to 15 do
              Device.submit dev ~hctx:i ~kind:Write ~lba:(i * 8) ~bytes:4096
                ~on_complete:(fun _ ->
                  decr remaining;
                  if !remaining = 0 then resume ())
            done);
        Engine.now e)
  in
  Alcotest.(check bool) "sata scales worse than nvme" true (sixteen >= one *. 3.0)

let test_large_io_bandwidth_bound () =
  let t_4k =
    in_sim (fun e ->
        let dev = Device.create e Profile.nvme in
        ignore (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:0 ~bytes:4096);
        Engine.now e)
  in
  let t_1m =
    in_sim (fun e ->
        let dev = Device.create e Profile.nvme in
        ignore
          (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:0 ~bytes:(1024 * 1024));
        Engine.now e)
  in
  (* 1 MiB transfer = 524288 ns dominates the 12 us latency. *)
  Alcotest.(check bool) "1M dominated by transfer" true
    (t_1m > t_4k *. 10.0 && t_1m > 500_000.0)

let test_flush_waits_for_outstanding () =
  in_sim (fun e ->
      let dev = Device.create e Profile.nvme in
      let completions = ref 0 in
      for i = 0 to 7 do
        Device.submit dev ~hctx:i ~kind:Write ~lba:(i * 8) ~bytes:65536
          ~on_complete:(fun _ -> incr completions)
      done;
      Device.flush dev;
      Alcotest.(check int) "flush returned after all completions" 8 !completions;
      Alcotest.(check int) "nothing outstanding" 0 (Device.outstanding dev))

let test_per_queue_fifo () =
  in_sim (fun e ->
      let dev = Device.create e Profile.nvme in
      let order = ref [] in
      let remaining = ref 8 in
      Engine.suspend (fun resume ->
          for i = 0 to 7 do
            Device.submit dev ~hctx:0 ~kind:Write ~lba:(i * 1000) ~bytes:4096
              ~on_complete:(fun c ->
                order := c.c_lba :: !order;
                decr remaining;
                if !remaining = 0 then resume ())
          done);
      Alcotest.(check (list int)) "same-queue completions in order"
        [ 0; 1000; 2000; 3000; 4000; 5000; 6000; 7000 ]
        (List.rev !order))

let test_service_stats_collected () =
  in_sim (fun e ->
      let dev = Device.create e Profile.pmem in
      for _ = 1 to 10 do
        ignore (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba:0 ~bytes:4096)
      done;
      Alcotest.(check int) "10 samples" 10 (Stats.count (Device.service_stats dev));
      Device.reset_stats dev;
      Alcotest.(check int) "reset" 0 (Stats.count (Device.service_stats dev)))

let prop_device_kinds_latency_order =
  QCheck.Test.make ~name:"PMEM < NVMe < SSD < HDD for 4K random writes"
    ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let time_for profile =
        in_sim (fun e ->
            let dev = Device.create e profile in
            let rng = Rng.create seed in
            for _ = 1 to 20 do
              let lba = Rng.int rng 100000 in
              ignore (Device.submit_wait dev ~hctx:0 ~kind:Write ~lba ~bytes:4096)
            done;
            Engine.now e)
      in
      let pm = time_for Profile.pmem
      and nv = time_for Profile.nvme
      and sd = time_for Profile.sata_ssd
      and hd = time_for Profile.hdd in
      pm < nv && nv < sd && sd < hd)

let () =
  Alcotest.run "lab_device"
    [
      ( "service-model",
        [
          Alcotest.test_case "single write latency" `Quick test_single_write_latency;
          Alcotest.test_case "counters" `Quick test_reads_and_writes_counted;
          Alcotest.test_case "hdd seek" `Quick test_hdd_sequential_vs_random;
          Alcotest.test_case "nvme parallelism" `Quick test_nvme_parallelism;
          Alcotest.test_case "sata serialization" `Quick
            test_sata_single_queue_serializes;
          Alcotest.test_case "large io bandwidth bound" `Quick
            test_large_io_bandwidth_bound;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "flush" `Quick test_flush_waits_for_outstanding;
          Alcotest.test_case "per-queue fifo" `Quick test_per_queue_fifo;
          Alcotest.test_case "service stats" `Quick test_service_stats_collected;
          QCheck_alcotest.to_alcotest prop_device_kinds_latency_order;
        ] );
    ]
