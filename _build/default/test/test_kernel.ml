(* Tests for lab_kernel: block layer scheduling, page cache, kernel FS
   models, raw-device API cost ordering. *)

open Lab_sim
open Lab_device
open Lab_kernel

let in_sim ?(ncores = 8) f =
  let m = Machine.create ~ncores () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* ------------------------------------------------------------------ *)
(* Blk                                                                 *)
(* ------------------------------------------------------------------ *)

let test_blk_noop_core_affinity () =
  in_sim (fun m ->
      let dev = Device.create m.Machine.engine Profile.nvme in
      let blk = Blk.create m dev ~sched:Blk.Noop in
      Alcotest.(check int) "thread 3 -> queue 3" 3
        (Blk.select_hctx blk ~thread:3 ~bytes:4096);
      Alcotest.(check int) "thread 19 wraps" 3
        (Blk.select_hctx blk ~thread:19 ~bytes:4096))

let test_blk_switch_avoids_loaded_queue () =
  in_sim (fun m ->
      let dev = Device.create m.Machine.engine Profile.nvme in
      let blk = Blk.create m dev ~sched:Blk.Blk_switch in
      (* Load queue 0 heavily. *)
      Blk.note_dispatch blk ~hctx:0 ~bytes:(1 lsl 20);
      let q = Blk.select_hctx blk ~thread:0 ~bytes:4096 in
      Alcotest.(check bool) "steers away from queue 0" true (q <> 0);
      Blk.note_completion blk ~hctx:0 ~bytes:(1 lsl 20))

let test_blk_polled_cheaper_than_irq () =
  let timed polled =
    in_sim (fun m ->
        let dev = Device.create m.Machine.engine Profile.nvme in
        let blk = Blk.create m dev ~sched:Blk.Noop in
        let t0 = Machine.now m in
        Blk.submit_bio_wait blk ~thread:0 ~kind:Device.Write ~lba:0 ~bytes:4096
          ~polled;
        Machine.now m -. t0)
  in
  Alcotest.(check bool) "polling avoids irq+wakeup" true
    (timed true < timed false)

let test_blk_direct_hctx_skips_irq () =
  in_sim (fun m ->
      let dev = Device.create m.Machine.engine Profile.nvme in
      let blk = Blk.create m dev ~sched:Blk.Noop in
      let done_ = ref false in
      Blk.submit_io_to_hctx blk ~thread:0 ~hctx:2 ~kind:Device.Write ~lba:0
        ~bytes:4096 ~on_complete:(fun () -> done_ := true);
      Alcotest.(check int) "tracked in-flight" 1 (Blk.inflight blk 2);
      Device.flush dev;
      Alcotest.(check bool) "completed" true !done_;
      Alcotest.(check int) "drained" 0 (Blk.inflight blk 2))

(* ------------------------------------------------------------------ *)
(* Page cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  in_sim (fun m ->
      let pc = Page_cache.create m ~capacity_pages:4 ~page_size:4096 in
      Alcotest.(check bool) "cold miss" false (Page_cache.read pc ~thread:0 ~page_index:7);
      ignore (Page_cache.insert_clean pc ~thread:0 ~page_index:7);
      Alcotest.(check bool) "warm hit" true (Page_cache.read pc ~thread:0 ~page_index:7);
      Alcotest.(check int) "hits" 1 (Page_cache.hits pc);
      Alcotest.(check int) "misses" 1 (Page_cache.misses pc))

let test_cache_eviction_returns_dirty () =
  in_sim (fun m ->
      let pc = Page_cache.create m ~capacity_pages:2 ~page_size:4096 in
      ignore (Page_cache.write pc ~thread:0 ~page_index:1);
      ignore (Page_cache.write pc ~thread:0 ~page_index:2);
      match Page_cache.write pc ~thread:0 ~page_index:3 with
      | Some p ->
          Alcotest.(check int) "LRU page evicted" 1 p.Page_cache.page_index;
          Alcotest.(check bool) "was dirty" true p.Page_cache.dirty
      | None -> Alcotest.fail "expected eviction")

let test_cache_dirty_tracking () =
  in_sim (fun m ->
      let pc = Page_cache.create m ~capacity_pages:8 ~page_size:4096 in
      ignore (Page_cache.write pc ~thread:0 ~page_index:1);
      ignore (Page_cache.insert_clean pc ~thread:0 ~page_index:2);
      ignore (Page_cache.write pc ~thread:0 ~page_index:3);
      let dirty =
        List.map (fun p -> p.Page_cache.page_index) (Page_cache.dirty_pages pc)
      in
      Alcotest.(check (list int)) "dirty set, LRU first" [ 1; 3 ] dirty;
      List.iter (Page_cache.clean pc) (Page_cache.dirty_pages pc);
      Alcotest.(check (list int)) "all clean" []
        (List.map (fun p -> p.Page_cache.page_index) (Page_cache.dirty_pages pc)))

(* ------------------------------------------------------------------ *)
(* Lru (lab_sim, exercised here where it matters)                      *)
(* ------------------------------------------------------------------ *)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"LRU never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 16) (list small_int))
    (fun (cap, keys) ->
      let l = Lru.create ~capacity:cap () in
      List.for_all
        (fun k ->
          ignore (Lru.put l k k);
          Lru.length l <= cap)
        keys)

let prop_lru_evicts_least_recent =
  QCheck.Test.make ~name:"LRU evicts the least recently used key" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) small_int)
    (fun keys ->
      (* Reference model: list of distinct keys, most recent first. *)
      let cap = 4 in
      let l = Lru.create ~capacity:cap () in
      let model = ref [] in
      List.for_all
        (fun k ->
          let evicted = Lru.put l k k in
          model := k :: List.filter (fun x -> x <> k) !model;
          let expected_evict =
            if List.length !model > cap then begin
              let rec last = function
                | [ x ] -> x
                | _ :: tl -> last tl
                | [] -> assert false
              in
              let victim = last !model in
              model := List.filter (fun x -> x <> victim) !model;
              Some victim
            end
            else None
          in
          Option.map fst evicted = expected_evict)
        keys)

(* ------------------------------------------------------------------ *)
(* Kfs                                                                 *)
(* ------------------------------------------------------------------ *)

let make_fs ?(flavor = Kfs.Ext4) m =
  let dev = Device.create m.Machine.engine Profile.nvme in
  let blk = Blk.create m dev ~sched:Blk.Noop in
  Kfs.create_fs m blk ~flavor ()

let test_kfs_create_and_meta () =
  in_sim (fun m ->
      let fs = make_fs m in
      Kfs.create fs ~thread:0 "/a/x";
      Kfs.create fs ~thread:0 "/a/y";
      Alcotest.(check bool) "x exists" true (Kfs.exists fs "/a/x");
      Alcotest.(check int) "two files" 2 (Kfs.nfiles fs);
      Kfs.unlink fs ~thread:0 "/a/x";
      Alcotest.(check bool) "x gone" false (Kfs.exists fs "/a/x");
      Kfs.rename fs ~thread:0 "/a/y" "/a/z";
      Alcotest.(check bool) "renamed" true (Kfs.exists fs "/a/z"))

let test_kfs_write_read_size () =
  in_sim (fun m ->
      let fs = make_fs m in
      Kfs.create fs ~thread:0 "/f";
      Kfs.write fs ~thread:0 "/f" ~off:0 ~bytes:10000 ~direct:false;
      Alcotest.(check (option int)) "size" (Some 10000) (Kfs.file_size fs "/f");
      Kfs.write fs ~thread:0 "/f" ~off:5000 ~bytes:1000 ~direct:false;
      Alcotest.(check (option int)) "size unchanged on overwrite" (Some 10000)
        (Kfs.file_size fs "/f");
      Kfs.read fs ~thread:0 "/f" ~off:0 ~bytes:10000 ~direct:false)

let test_kfs_fsync_persists () =
  in_sim (fun m ->
      let fs = make_fs m in
      Kfs.create fs ~thread:0 "/f";
      Kfs.write fs ~thread:0 "/f" ~off:0 ~bytes:16384 ~direct:false;
      Kfs.fsync fs ~thread:0 "/f";
      Alcotest.(check bool) "journal committed" true (Kfs.journal_commits fs >= 1))

let test_kfs_shared_dir_contention () =
  (* Creating in one shared directory with many threads must not scale
     linearly: the dir lock serializes part of the work. *)
  let throughput nthreads =
    in_sim ~ncores:24 (fun m ->
        let fs = make_fs m in
        let per_thread = 200 in
        let remaining = ref nthreads in
        Engine.suspend (fun resume ->
            for t = 1 to nthreads do
              Engine.spawn m.Machine.engine (fun () ->
                  for i = 1 to per_thread do
                    Kfs.create fs ~thread:t
                      (Printf.sprintf "/shared/f-%d-%d" t i)
                  done;
                  decr remaining;
                  if !remaining = 0 then resume ())
            done);
        Stdlib.float_of_int (nthreads * per_thread) /. Machine.now m)
  in
  let t1 = throughput 1 and t16 = throughput 16 in
  Alcotest.(check bool)
    (Printf.sprintf "16-thread speedup %.2f < 8x" (t16 /. t1))
    true
    (t16 /. t1 < 8.0)

let test_kfs_flavors_differ () =
  let time_of flavor =
    in_sim (fun m ->
        let fs = make_fs ~flavor m in
        for i = 1 to 100 do
          Kfs.create fs ~thread:0 (Printf.sprintf "/d/f%d" i)
        done;
        Machine.now m)
  in
  let e = time_of Kfs.Ext4 and x = time_of Kfs.Xfs and f = time_of Kfs.F2fs in
  Alcotest.(check bool) "flavors have distinct cost profiles" true
    (e <> x && x <> f)

(* ------------------------------------------------------------------ *)
(* Api                                                                 *)
(* ------------------------------------------------------------------ *)

let api_latency api =
  in_sim (fun m ->
      let dev = Device.create m.Machine.engine Profile.nvme in
      let blk = Blk.create m dev ~sched:Blk.Noop in
      let t = Api.create m blk in
      let t0 = Machine.now m in
      Api.submit_wait t ~api ~thread:0 ~kind:Device.Write ~off:0 ~bytes:4096;
      Machine.now m -. t0)

let test_api_ordering () =
  let psync = api_latency Api.Psync in
  let aio = api_latency Api.Posix_aio in
  let libaio = api_latency Api.Libaio in
  let uring = api_latency Api.Io_uring in
  Alcotest.(check bool)
    (Printf.sprintf "uring(%.0f) < libaio(%.0f) < psync(%.0f) < aio(%.0f)" uring
       libaio psync aio)
    true
    (uring < libaio && libaio < psync && psync < aio)

let test_api_batch_amortizes () =
  let per_op_batched =
    in_sim (fun m ->
        let dev = Device.create m.Machine.engine Profile.nvme in
        let blk = Blk.create m dev ~sched:Blk.Noop in
        let t = Api.create m blk in
        let offs = Array.init 32 (fun i -> i * 8192) in
        let t0 = Machine.now m in
        Api.submit_batch_wait t ~api:Api.Io_uring ~thread:0 ~kind:Device.Write
          ~offs ~bytes:4096;
        (Machine.now m -. t0) /. 32.0)
  in
  let single = api_latency Api.Io_uring in
  Alcotest.(check bool)
    (Printf.sprintf "batched per-op %.0f << single %.0f" per_op_batched single)
    true
    (per_op_batched < single /. 2.0)

let () =
  Alcotest.run "lab_kernel"
    [
      ( "blk",
        [
          Alcotest.test_case "noop affinity" `Quick test_blk_noop_core_affinity;
          Alcotest.test_case "blk-switch steering" `Quick
            test_blk_switch_avoids_loaded_queue;
          Alcotest.test_case "polled vs irq" `Quick test_blk_polled_cheaper_than_irq;
          Alcotest.test_case "direct hctx" `Quick test_blk_direct_hctx_skips_irq;
        ] );
      ( "page-cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "eviction" `Quick test_cache_eviction_returns_dirty;
          Alcotest.test_case "dirty tracking" `Quick test_cache_dirty_tracking;
          QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
          QCheck_alcotest.to_alcotest prop_lru_evicts_least_recent;
        ] );
      ( "kfs",
        [
          Alcotest.test_case "create/meta" `Quick test_kfs_create_and_meta;
          Alcotest.test_case "write/read/size" `Quick test_kfs_write_read_size;
          Alcotest.test_case "fsync persists" `Quick test_kfs_fsync_persists;
          Alcotest.test_case "shared-dir contention" `Quick
            test_kfs_shared_dir_contention;
          Alcotest.test_case "flavors differ" `Quick test_kfs_flavors_differ;
        ] );
      ( "api",
        [
          Alcotest.test_case "cost ordering" `Quick test_api_ordering;
          Alcotest.test_case "batch amortizes" `Quick test_api_batch_amortizes;
        ] );
    ]
