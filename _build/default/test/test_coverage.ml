(* Coverage sweep: corners of the public APIs not exercised by the
   behavioural suites — accessors, error paths, edge cases, and a few
   cross-module contracts (probe exclusivity, doorbell hand-off,
   region lifecycle). *)

open Lab_sim
open Lab_core

let in_sim ?(ncores = 8) f =
  let m = Machine.create ~ncores () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* ------------------------------------------------------------------ *)
(* Stats / Costs / Cpu / Machine                                       *)
(* ------------------------------------------------------------------ *)

let test_stats_merge_and_clear () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  Alcotest.(check int) "merged count" 4 (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.5 (Stats.mean m);
  Stats.clear a;
  Alcotest.(check int) "cleared" 0 (Stats.count a);
  Alcotest.(check (float 1e-9)) "cleared mean" 0.0 (Stats.mean a)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-6)) "known stddev" 2.0 (Stats.stddev s);
  let single = Stats.create () in
  Stats.add single 5.0;
  Alcotest.(check (float 1e-9)) "single sample" 0.0 (Stats.stddev single)

let test_counter_rate () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.incr ~by:9 c;
  Alcotest.(check int) "value" 10 (Stats.Counter.value c);
  Alcotest.(check (float 1e-6)) "rate" 10.0
    (Stats.Counter.rate_per_sec c ~elapsed_ns:1e9);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

let test_costs_copy () =
  let c = Costs.default in
  Alcotest.(check (float 1e-9)) "copy scales"
    (c.Costs.copy_ns_per_byte *. 4096.0)
    (Costs.copy_cost c 4096);
  Alcotest.(check (float 1e-9)) "user copy scales"
    (c.Costs.user_copy_ns_per_byte *. 4096.0)
    (Costs.user_copy_cost c 4096)

let test_cpu_reset_and_bounds () =
  in_sim (fun m ->
      Cpu.compute m.Machine.cpu ~thread:0 1000.0;
      Alcotest.(check bool) "busy recorded" true (Cpu.busy_ns m.Machine.cpu > 0.0);
      Cpu.reset_stats m.Machine.cpu;
      Alcotest.(check (float 1e-9)) "reset" 0.0 (Cpu.busy_ns m.Machine.cpu);
      Alcotest.(check (float 1e-9)) "empty utilization" 0.0
        (Cpu.utilization m.Machine.cpu ~elapsed:0.0);
      Alcotest.(check int) "ncores" 8 (Cpu.ncores m.Machine.cpu))

let test_engine_spawn_at () =
  let e = Engine.create () in
  let at = ref Float.nan in
  Engine.spawn_at e 123.0 (fun () -> at := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "deferred start" 123.0 !at;
  Alcotest.(check bool) "executed counted" true (Engine.events_executed e > 0);
  Alcotest.(check bool) "drained" false (Engine.active e)

let test_heap_misc () =
  let h = Heap.create ~cmp:Int.compare () in
  Alcotest.(check (option (pair int unit))) "peek empty" None (Heap.peek h);
  Heap.push h 5 ();
  Heap.push h 2 ();
  Alcotest.(check (option (pair int unit))) "peek min" (Some (2, ())) (Heap.peek h);
  Alcotest.(check int) "sorted list len" 2 (List.length (Heap.to_sorted_list h));
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Yamlite corners                                                     *)
(* ------------------------------------------------------------------ *)

let test_yaml_crlf_and_doc_marker () =
  let v = Yamlite.parse "---\r\nkey: 1\r\n" in
  Alcotest.(check (option int)) "crlf tolerated" (Some 1)
    (Option.bind (Yamlite.find v "key") Yamlite.get_int)

let test_yaml_quoted_key () =
  let v = Yamlite.parse "\"a: b\": 2" in
  Alcotest.(check (option int)) "quoted key with colon" (Some 2)
    (Option.bind (Yamlite.find v "a: b") Yamlite.get_int)

let test_yaml_nested_list_under_key () =
  let v = Yamlite.parse "xs:\n  - 1\n  - 2\nys: done" in
  (match Yamlite.find v "xs" with
  | Some (Yamlite.List [ Yamlite.Int 1; Yamlite.Int 2 ]) -> ()
  | _ -> Alcotest.fail "nested list");
  Alcotest.(check (option string)) "sibling after list" (Some "done")
    (Option.bind (Yamlite.find v "ys") Yamlite.get_string)

let test_yaml_tab_rejected () =
  try
    ignore (Yamlite.parse "key:\n\tvalue: 1");
    Alcotest.fail "tabs must be rejected"
  with Yamlite.Parse_error _ -> ()

let test_yaml_get_float_accepts_int () =
  Alcotest.(check (option (float 1e-9))) "int as float" (Some 3.0)
    (Yamlite.get_float (Yamlite.Int 3))

let test_yaml_empty_flow_list () =
  Alcotest.(check bool) "empty flow list" true
    (Yamlite.parse "xs: []" |> fun v -> Yamlite.find v "xs" = Some (Yamlite.List []))

(* ------------------------------------------------------------------ *)
(* Request pretty printers / helpers                                   *)
(* ------------------------------------------------------------------ *)

let test_request_pp_and_helpers () =
  let s p = Fmt.str "%a" Request.pp_payload p in
  Alcotest.(check string) "open" "open(/x, O_CREAT)"
    (s (Request.Posix (Request.Open { path = "/x"; create = true })));
  Alcotest.(check string) "put" "put(k, 42)"
    (s (Request.Kv (Request.Put { key = "k"; bytes = 42 })));
  Alcotest.(check string) "bwrite" "bwrite(lba=3, 512)"
    (s
       (Request.Block
          { Request.b_kind = Request.Write; b_lba = 3; b_bytes = 512; b_sync = false }));
  Alcotest.(check string) "result denied" "denied: no"
    (Fmt.str "%a" Request.pp_result (Request.Denied "no"));
  Alcotest.(check bool) "is_ok" true (Request.is_ok (Request.Fd 3));
  Alcotest.(check bool) "is_ok denied" false (Request.is_ok (Request.Denied ""));
  Alcotest.(check int) "bytes_of control" 0
    (Request.bytes_of
       (Request.make ~id:1 ~pid:1 ~uid:0 ~thread:0 ~stack_id:1 ~now:0.0
          (Request.Control 9)))

(* ------------------------------------------------------------------ *)
(* Stack / Namespace corners                                           *)
(* ------------------------------------------------------------------ *)

let ctrl_factory name : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  Labmod.make ~name ~uuid ~mod_type:Labmod.Control
    {
      Labmod.operate = (fun _ _ _ -> Request.Done);
      est_processing_time = Labmod.default_est;
      state_update = (fun s -> s);
      state_repair = (fun _ -> ());
    }

let test_stack_next_uuids_and_mods_order () =
  let reg = Registry.create () in
  Registry.register_factory reg ~name:"ctrl" (ctrl_factory "ctrl");
  let spec =
    Result.get_ok
      (Stack_spec.parse
         "mount: \"x::/s\"\ndag:\n  - uuid: a\n    mod: ctrl\n    outputs: [b, other::/mnt]\n  - uuid: b\n    mod: ctrl")
  in
  let stack = Result.get_ok (Stack.instantiate reg spec ~id:7) in
  Alcotest.(check (list string)) "cross-mount outputs filtered" [ "b" ]
    (Stack.next_uuids stack "a");
  Alcotest.(check (list string)) "sink" [] (Stack.next_uuids stack "b");
  Alcotest.(check (list string)) "unknown vertex" [] (Stack.next_uuids stack "zz");
  Alcotest.(check (list string)) "mods in dag order" [ "a"; "b" ]
    (List.map (fun (m : Labmod.t) -> m.Labmod.uuid) (Stack.mods stack reg));
  Alcotest.(check string) "entry" "a" (Stack.entry_uuid stack)

let test_namespace_listings () =
  let reg = Registry.create () in
  Registry.register_factory reg ~name:"ctrl" (ctrl_factory "ctrl");
  let ns = Namespace.create () in
  let mount p u =
    Result.get_ok
      (Namespace.mount ns reg
         (Result.get_ok
            (Stack_spec.parse
               (Printf.sprintf "mount: \"%s\"\ndag:\n  - uuid: %s\n    mod: ctrl" p u))))
  in
  let s1 = mount "a::/1" "n1" and s2 = mount "a::/2" "n2" in
  Alcotest.(check int) "two mounts" 2 (List.length (Namespace.mounts ns));
  Alcotest.(check int) "two stacks" 2 (List.length (Namespace.stacks ns));
  Alcotest.(check bool) "distinct ids" true (s1.Stack.id <> s2.Stack.id)

(* ------------------------------------------------------------------ *)
(* Exec probe exclusivity                                              *)
(* ------------------------------------------------------------------ *)

type Labmod.state += Burn of float

let burner name ns : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  Labmod.make ~name ~uuid ~mod_type:Labmod.Control ~state:(Burn ns)
    {
      Labmod.operate =
        (fun m ctx req ->
          (match m.Labmod.state with
          | Burn ns -> Lab_sim.Machine.compute ctx.Labmod.machine ~thread:ctx.Labmod.thread ns
          | _ -> ());
          ctx.Labmod.forward req);
      est_processing_time = Labmod.default_est;
      state_update = (fun s -> s);
      state_repair = (fun _ -> ());
    }

let test_exec_probe_exclusive_times () =
  in_sim (fun m ->
      let reg = Registry.create () in
      Registry.register_factory reg ~name:"fast" (burner "fast" 100.0);
      Registry.register_factory reg ~name:"slow" (burner "slow" 900.0);
      let spec =
        Result.get_ok
          (Stack_spec.parse
             "mount: \"x::/p\"\ndag:\n  - uuid: top\n    mod: fast\n    outputs: [bottom]\n  - uuid: bottom\n    mod: slow")
      in
      let stack = Result.get_ok (Stack.instantiate reg spec ~id:1) in
      let seen = Hashtbl.create 4 in
      let probe ~uuid ~exclusive_ns = Hashtbl.replace seen uuid exclusive_ns in
      let req =
        Request.make ~id:1 ~pid:1 ~uid:0 ~thread:0 ~stack_id:1 ~now:0.0
          (Request.Control 0)
      in
      ignore (Lab_runtime.Exec.run m ~registry:reg ~stack ~thread:0 ~probe req);
      (* The parent's exclusive time must not include the child's. *)
      Alcotest.(check (float 1.0)) "top exclusive" 100.0 (Hashtbl.find seen "top");
      Alcotest.(check (float 1.0)) "bottom exclusive" 900.0 (Hashtbl.find seen "bottom"))

(* ------------------------------------------------------------------ *)
(* IPC lifecycle corners                                               *)
(* ------------------------------------------------------------------ *)

let test_ipc_disconnect_frees_region () =
  in_sim (fun m ->
      let mgr : int Lab_ipc.Ipc_manager.t = Lab_ipc.Ipc_manager.create m.Machine.engine in
      let shm = Lab_ipc.Ipc_manager.shmem mgr in
      let before = Lab_ipc.Shmem.region_count shm in
      let conn = Lab_ipc.Ipc_manager.connect mgr ~pid:9 ~uid:9 in
      Alcotest.(check int) "region allocated" (before + 1)
        (Lab_ipc.Shmem.region_count shm);
      Lab_ipc.Ipc_manager.disconnect mgr conn;
      Alcotest.(check int) "region freed" before (Lab_ipc.Shmem.region_count shm))

let test_worker_doorbell_handoff () =
  in_sim (fun m ->
      let w1 =
        Lab_runtime.Worker.create m ~id:1 ~thread:1
          ~exec:(fun ~thread:_ _ -> Request.Done)
          ()
      in
      let w2 =
        Lab_runtime.Worker.create m ~id:2 ~thread:2
          ~exec:(fun ~thread:_ _ -> Request.Done)
          ()
      in
      let qp = Lab_ipc.Qp.create ~role:Lab_ipc.Qp.Primary ~ordering:Lab_ipc.Qp.Ordered ~id:1 () in
      Lab_runtime.Worker.assign w1 [ qp ];
      Alcotest.(check bool) "bell on w1" true
        (match Lab_ipc.Qp.doorbell qp with
        | Some b -> b == Lab_runtime.Worker.doorbell w1
        | None -> false);
      Lab_runtime.Worker.assign w2 [ qp ];
      Lab_runtime.Worker.assign w1 [];
      Alcotest.(check bool) "bell moved to w2 and not cleared by w1's drain" true
        (match Lab_ipc.Qp.doorbell qp with
        | Some b -> b == Lab_runtime.Worker.doorbell w2
        | None -> false))

let test_unordered_queue_multi_worker () =
  (* Two workers share one unordered queue: requests drain in parallel,
     halving the makespan versus a single worker. *)
  let makespan nworkers =
    in_sim (fun m ->
        (* CPU-bound service: a single worker serializes on its core,
           two workers on two cores halve the makespan. *)
        let exec ~thread req =
          Machine.compute m ~thread 1_000_000.0;
          ignore req;
          Request.Done
        in
        let workers =
          Array.init nworkers (fun i ->
              let w = Lab_runtime.Worker.create m ~id:i ~thread:(100 + i) ~exec () in
              Lab_runtime.Worker.start w;
              w)
        in
        let qp =
          Lab_ipc.Qp.create ~role:Lab_ipc.Qp.Primary ~ordering:Lab_ipc.Qp.Unordered
            ~id:1 ()
        in
        Array.iter (fun w -> Lab_runtime.Worker.assign w [ qp ]) workers;
        let t0 = Machine.now m in
        let remaining = ref 8 in
        Engine.suspend (fun resume ->
            for i = 1 to 8 do
              let req =
                Request.make ~id:i ~pid:1 ~uid:0 ~thread:0 ~stack_id:1
                  ~now:(Machine.now m) (Request.Control i)
              in
              Lab_ipc.Qp.submit qp req
            done;
            Engine.spawn m.Machine.engine (fun () ->
                while !remaining > 0 do
                  (match Lab_ipc.Qp.try_completion qp with
                  | Some _ -> decr remaining
                  | None -> Lab_ipc.Qp.wait_completion_event qp);
                  ()
                done;
                resume ()));
        Machine.now m -. t0)
  in
  let one = makespan 1 and two = makespan 2 in
  Alcotest.(check bool)
    (Printf.sprintf "2 workers (%.0f) ~ half of 1 worker (%.0f)" two one)
    true
    (two < one *. 0.7)

(* ------------------------------------------------------------------ *)
(* Kernel API reads + blk-switch classes                               *)
(* ------------------------------------------------------------------ *)

let test_api_reads_work () =
  in_sim (fun m ->
      let dev = Lab_device.Device.create m.Machine.engine Lab_device.Profile.nvme in
      let blk = Lab_kernel.Blk.create m dev ~sched:Lab_kernel.Blk.Noop in
      let api = Lab_kernel.Api.create m blk in
      List.iter
        (fun a ->
          Lab_kernel.Api.submit_wait api ~api:a ~thread:0 ~kind:Lab_device.Device.Read
            ~off:0 ~bytes:4096)
        Lab_kernel.Api.all;
      Alcotest.(check int) "four reads" 4 (Lab_device.Device.completed_reads dev))

let test_blk_switch_classes () =
  in_sim (fun m ->
      let dev = Lab_device.Device.create m.Machine.engine Lab_device.Profile.nvme in
      let blk = Lab_kernel.Blk.create m dev ~sched:Lab_kernel.Blk.Blk_switch in
      let small = Lab_kernel.Blk.select_hctx blk ~thread:0 ~bytes:4096 in
      let large = Lab_kernel.Blk.select_hctx blk ~thread:0 ~bytes:(1 lsl 20) in
      let n = Lab_device.Device.n_hw_queues dev in
      let reserved = n / 4 in
      Alcotest.(check bool) "small -> reserved tail queues" true (small >= n - reserved);
      Alcotest.(check bool) "large -> head queues" true (large < n - reserved))

let test_device_flush_with_chunked_io () =
  in_sim (fun m ->
      let dev = Lab_device.Device.create m.Machine.engine Lab_device.Profile.nvme in
      let done_ = ref false in
      (* 1 MiB splits into 4 x 256 KiB commands; the user completion
         fires once, after all of them. *)
      Lab_device.Device.submit dev ~hctx:0 ~kind:Lab_device.Device.Write ~lba:0
        ~bytes:(1 lsl 20) ~on_complete:(fun c ->
          Alcotest.(check int) "reported as one op" (1 lsl 20)
            c.Lab_device.Device.c_bytes;
          done_ := true);
      Lab_device.Device.flush dev;
      Alcotest.(check bool) "flush waited for all chunks" true !done_;
      Alcotest.(check int) "four chunk completions counted" 4
        (Lab_device.Device.completed_writes dev))

(* ------------------------------------------------------------------ *)
(* Profile sanity                                                      *)
(* ------------------------------------------------------------------ *)

let test_profiles () =
  List.iter
    (fun (p : Lab_device.Profile.t) ->
      Alcotest.(check bool)
        (p.Lab_device.Profile.name ^ " block count positive")
        true
        (Lab_device.Profile.blocks p > 0))
    Lab_device.Profile.all;
  Alcotest.(check string) "kind name" "NVMe"
    (Lab_device.Profile.kind_to_string Lab_device.Profile.Nvme);
  Alcotest.(check bool) "of_kind roundtrip" true
    (List.for_all
       (fun (p : Lab_device.Profile.t) ->
         (Lab_device.Profile.of_kind p.Lab_device.Profile.kind).Lab_device.Profile.name
         = p.Lab_device.Profile.name)
       Lab_device.Profile.all)

let () =
  Alcotest.run "lab_coverage"
    [
      ( "sim",
        [
          Alcotest.test_case "stats merge/clear" `Quick test_stats_merge_and_clear;
          Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
          Alcotest.test_case "counter rate" `Quick test_counter_rate;
          Alcotest.test_case "costs copy" `Quick test_costs_copy;
          Alcotest.test_case "cpu reset/bounds" `Quick test_cpu_reset_and_bounds;
          Alcotest.test_case "spawn_at" `Quick test_engine_spawn_at;
          Alcotest.test_case "heap misc" `Quick test_heap_misc;
        ] );
      ( "yamlite",
        [
          Alcotest.test_case "crlf + doc marker" `Quick test_yaml_crlf_and_doc_marker;
          Alcotest.test_case "quoted key" `Quick test_yaml_quoted_key;
          Alcotest.test_case "nested list" `Quick test_yaml_nested_list_under_key;
          Alcotest.test_case "tab rejected" `Quick test_yaml_tab_rejected;
          Alcotest.test_case "int as float" `Quick test_yaml_get_float_accepts_int;
          Alcotest.test_case "empty flow list" `Quick test_yaml_empty_flow_list;
        ] );
      ( "core",
        [
          Alcotest.test_case "request pp" `Quick test_request_pp_and_helpers;
          Alcotest.test_case "stack helpers" `Quick test_stack_next_uuids_and_mods_order;
          Alcotest.test_case "namespace listings" `Quick test_namespace_listings;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "probe exclusivity" `Quick test_exec_probe_exclusive_times;
          Alcotest.test_case "ipc region lifecycle" `Quick test_ipc_disconnect_frees_region;
          Alcotest.test_case "doorbell handoff" `Quick test_worker_doorbell_handoff;
          Alcotest.test_case "unordered multi-worker" `Quick
            test_unordered_queue_multi_worker;
        ] );
      ( "kernel-device",
        [
          Alcotest.test_case "api reads" `Quick test_api_reads_work;
          Alcotest.test_case "blk-switch classes" `Quick test_blk_switch_classes;
          Alcotest.test_case "chunked flush" `Quick test_device_flush_with_chunked_io;
          Alcotest.test_case "profiles" `Quick test_profiles;
        ] );
    ]
