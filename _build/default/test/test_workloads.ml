(* Tests for lab_workloads: generators produce the right op counts and
   drive both kernel and LabStor backends. *)

open Lab_sim
open Lab_device
open Lab_kernel
open Lab_workloads

let in_sim ?(ncores = 24) f =
  let m = Machine.create ~ncores () in
  let result = ref None in
  Machine.spawn m (fun () -> result := Some (f m));
  Machine.run m;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

let raw_nvme_target m =
  let dev = Device.create m.Machine.engine Profile.nvme in
  let blk = Blk.create m dev ~sched:Blk.Noop in
  let api = Api.create m blk in
  ( dev,
    {
      Fio.submit =
        (fun ~thread ~kind ~off ~bytes ->
          let k = match kind with Lab_core.Request.Read -> Device.Read | _ -> Device.Write in
          ignore k;
          Api.submit_wait api ~api:Api.Io_uring ~thread
            ~kind:(match kind with Lab_core.Request.Read -> Device.Read | _ -> Device.Write)
            ~off ~bytes);
      submit_batch =
        (fun ~thread ~kind ~offs ~bytes ->
          Api.submit_batch_wait api ~api:Api.Io_uring ~thread
            ~kind:(match kind with Lab_core.Request.Read -> Device.Read | _ -> Device.Write)
            ~offs ~bytes);
    } )

(* ------------------------------------------------------------------ *)
(* Fio                                                                 *)
(* ------------------------------------------------------------------ *)

let test_fio_op_count () =
  in_sim (fun m ->
      let dev, target = raw_nvme_target m in
      let job =
        {
          Fio.default_job with
          Fio.total_bytes_per_thread = 1024 * 1024;
          block_bytes = 4096;
          nthreads = 2;
        }
      in
      let r = Fio.run m job target in
      Alcotest.(check int) "ops = size/bs * threads" 512 r.Fio.ops;
      Alcotest.(check int) "device writes" 512 (Device.completed_writes dev);
      Alcotest.(check bool) "iops computed" true (r.Fio.iops > 0.0);
      Alcotest.(check int) "latency samples" 512 (Stats.count r.Fio.latency))

let test_fio_time_bounded () =
  in_sim (fun m ->
      let _, target = raw_nvme_target m in
      let job =
        {
          Fio.default_job with
          Fio.runtime_ns = Some 1e6;
          nthreads = 1;
        }
      in
      let r = Fio.run m job target in
      Alcotest.(check bool) "bounded duration" true (r.Fio.elapsed_ns <= 1.2e6);
      Alcotest.(check bool) "did some work" true (r.Fio.ops > 10))

let test_fio_iodepth_improves_iops () =
  let iops depth =
    in_sim (fun m ->
        let _, target = raw_nvme_target m in
        let job =
          {
            Fio.default_job with
            Fio.total_bytes_per_thread = 4 * 1024 * 1024;
            iodepth = depth;
          }
        in
        (Fio.run m job target).Fio.iops)
  in
  let d1 = iops 1 and d32 = iops 32 in
  Alcotest.(check bool)
    (Printf.sprintf "iodepth 32 (%.0f) > 2x iodepth 1 (%.0f)" d32 d1)
    true (d32 > 2.0 *. d1)

let test_fio_seq_faster_on_hdd () =
  let bw pattern =
    in_sim (fun m ->
        let dev = Device.create m.Machine.engine Profile.hdd in
        let blk = Blk.create m dev ~sched:Blk.Noop in
        let api = Api.create m blk in
        let target =
          Fio.target_of_submit (fun ~thread ~kind ~off ~bytes ->
              Api.submit_wait api ~api:Api.Psync ~thread
                ~kind:(match kind with Lab_core.Request.Read -> Device.Read | _ -> Device.Write)
                ~off ~bytes)
        in
        let job =
          {
            Fio.default_job with
            Fio.pattern;
            total_bytes_per_thread = 1024 * 1024;
          }
        in
        (Fio.run m job target).Fio.bandwidth_mib_s)
  in
  let seq = bw Fio.Seqwrite and rand = bw Fio.Randwrite in
  Alcotest.(check bool)
    (Printf.sprintf "seq %.1f >> rand %.1f on HDD" seq rand)
    true (seq > 3.0 *. rand)

(* ------------------------------------------------------------------ *)
(* Fxmark                                                              *)
(* ------------------------------------------------------------------ *)

let kfs_of m flavor =
  let dev = Device.create m.Machine.engine Profile.nvme in
  let blk = Blk.create m dev ~sched:Blk.Noop in
  Kfs.create_fs m blk ~flavor ()

let test_fxmark_create_counts () =
  in_sim (fun m ->
      let fs = kfs_of m Kfs.Ext4 in
      let r =
        Fxmark.run_create m ~nthreads:4 ~files_per_thread:50 ~shared_dir:true
          (Adapters.kfs_fxmark fs)
      in
      Alcotest.(check int) "ops" 200 r.Fxmark.ops;
      Alcotest.(check int) "files on disk" 200 (Kfs.nfiles fs);
      Alcotest.(check bool) "throughput computed" true (r.Fxmark.ops_per_sec > 0.0))

let test_fxmark_private_faster_than_shared () =
  let rate shared =
    in_sim (fun m ->
        let fs = kfs_of m Kfs.Ext4 in
        (Fxmark.run_create m ~nthreads:16 ~files_per_thread:50 ~shared_dir:shared
           (Adapters.kfs_fxmark fs))
          .Fxmark.ops_per_sec)
  in
  let shared = rate true and private_ = rate false in
  Alcotest.(check bool)
    (Printf.sprintf "private (%.0f) > shared (%.0f)" private_ shared)
    true (private_ > shared)

let test_fxmark_mixed () =
  in_sim (fun m ->
      let fs = kfs_of m Kfs.Xfs in
      let r = Fxmark.run_mixed m ~nthreads:2 ~ops_per_thread:100 (Adapters.kfs_fxmark fs) in
      Alcotest.(check int) "ops" 200 r.Fxmark.ops)

(* ------------------------------------------------------------------ *)
(* Filebench                                                           *)
(* ------------------------------------------------------------------ *)

let test_filebench_personalities_run () =
  List.iter
    (fun p ->
      in_sim (fun m ->
          let fs = kfs_of m Kfs.Ext4 in
          let r = Filebench.run m p ~nthreads:2 ~iterations:5 (Adapters.kfs_filebench fs) in
          Alcotest.(check bool)
            (Filebench.personality_name p ^ " produced ops")
            true
            (r.Filebench.ops > 0 && r.Filebench.ops_per_sec > 0.0)))
    Filebench.all

let test_filebench_fileserver_most_bandwidth () =
  in_sim (fun m ->
      let fs = kfs_of m Kfs.Ext4 in
      let bw p =
        (Filebench.run m p ~nthreads:2 ~iterations:10 (Adapters.kfs_filebench fs))
          .Filebench.mib_per_sec
      in
      let fileserver = bw Filebench.Fileserver in
      let varmail = bw Filebench.Varmail in
      Alcotest.(check bool)
        (Printf.sprintf "fileserver %.0f MiB/s > varmail %.0f MiB/s" fileserver varmail)
        true (fileserver > varmail))

(* ------------------------------------------------------------------ *)
(* Labios                                                              *)
(* ------------------------------------------------------------------ *)

let test_labios_backends () =
  in_sim (fun m ->
      let fs = kfs_of m Kfs.Ext4 in
      let r =
        Labios.run_worker m (Adapters.labios_file_backend_kfs fs)
          ~labels_per_thread:100 ()
      in
      Alcotest.(check int) "labels" 100 r.Labios.labels;
      Alcotest.(check int) "one file per label" 100 (Kfs.nfiles fs);
      Alcotest.(check bool) "rate computed" true (r.Labios.labels_per_sec > 0.0))

(* ------------------------------------------------------------------ *)
(* PFS                                                                 *)
(* ------------------------------------------------------------------ *)

let null_md m =
  {
    Pfs.md_create = (fun ~thread _ -> Machine.compute m ~thread 3000.0);
    md_extend = (fun ~thread _ -> Machine.compute m ~thread 2500.0);
    md_lookup = (fun ~thread _ -> Machine.compute m ~thread 2000.0);
  }

let device_data m kind =
  let devs = Array.init 4 (fun _ -> Device.create m.Machine.engine (Profile.of_kind kind)) in
  {
    Pfs.srv_write =
      (fun ~server ~off ~bytes ->
        ignore
          (Device.submit_wait devs.(server) ~hctx:server ~kind:Device.Write
             ~lba:(off / 4096) ~bytes));
    srv_read =
      (fun ~server ~off ~bytes ->
        ignore
          (Device.submit_wait devs.(server) ~hctx:server ~kind:Device.Read
             ~lba:(off / 4096) ~bytes));
  }

let test_pfs_vpic_totals () =
  in_sim (fun m ->
      let pfs = Pfs.create m (null_md m) (device_data m Profile.Nvme) in
      let r = Pfs.vpic pfs ~procs:4 ~steps:2 ~bytes_per_proc_step:(1 lsl 20) in
      Alcotest.(check int) "bytes" (8 * (1 lsl 20)) r.Pfs.total_bytes;
      Alcotest.(check bool) "bandwidth computed" true (r.Pfs.bandwidth_mib_s > 0.0);
      (* 1 MiB / 64 KiB = 16 stripes: one create + 16 lookups per file *)
      Alcotest.(check int) "md ops" (8 * 17) r.Pfs.md_ops;
      let rd = Pfs.bdcats pfs ~procs:4 ~steps:2 ~bytes_per_proc_step:(1 lsl 20) in
      Alcotest.(check int) "read bytes" (8 * (1 lsl 20)) rd.Pfs.total_bytes)

let test_pfs_md_speed_matters () =
  (* Faster metadata server => higher VPIC bandwidth, the Fig 9(a)
     mechanism. *)
  let bw md_cost =
    in_sim (fun m ->
        let md =
          {
            Pfs.md_create = (fun ~thread _ -> Machine.compute m ~thread md_cost);
            md_extend = (fun ~thread _ -> Machine.compute m ~thread md_cost);
            md_lookup = (fun ~thread _ -> Machine.compute m ~thread md_cost);
          }
        in
        let pfs = Pfs.create m md (device_data m Profile.Nvme) in
        (Pfs.vpic pfs ~procs:4 ~steps:2 ~bytes_per_proc_step:(1 lsl 20)).Pfs.bandwidth_mib_s)
  in
  let fast = bw 2000.0 and slow = bw 40000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "fast md %.0f > slow md %.0f" fast slow)
    true (fast > slow)

(* ------------------------------------------------------------------ *)
(* YCSB                                                                *)
(* ------------------------------------------------------------------ *)

let test_ycsb_mix_ratios () =
  in_sim (fun m ->
      let reads = ref 0 and writes = ref 0 in
      let ops =
        {
          Ycsb.put =
            (fun ~thread:_ ~key:_ ~bytes:_ ->
              incr writes;
              Machine.compute m ~thread:0 100.0);
          get =
            (fun ~thread:_ ~key:_ ->
              incr reads;
              Machine.compute m ~thread:0 100.0);
        }
      in
      let r = Ycsb.run m Ycsb.B ~nthreads:2 ~records:100 ~ops_per_thread:400 ops in
      Alcotest.(check int) "total ops" 800 r.Ycsb.ops;
      (* Load phase wrote 100 records; mix B is ~95% reads. *)
      let mix_writes = !writes - 100 in
      let frac = float_of_int !reads /. float_of_int (mix_writes + !reads) in
      Alcotest.(check bool)
        (Printf.sprintf "read fraction %.2f ~ 0.95" frac)
        true
        (frac > 0.90 && frac < 0.99);
      Alcotest.(check int) "latencies recorded" 800
        (Stats.count r.Ycsb.read_latency + Stats.count r.Ycsb.update_latency))

let test_ycsb_d_inserts_fresh_keys () =
  in_sim (fun m ->
      let keys = Hashtbl.create 64 in
      let ops =
        {
          Ycsb.put =
            (fun ~thread:_ ~key ~bytes:_ -> Hashtbl.replace keys key ());
          get =
            (fun ~thread:_ ~key ->
              Alcotest.(check bool) ("read of existing key " ^ key) true
                (Hashtbl.mem keys key));
        }
      in
      let before = 50 in
      ignore (Ycsb.run m Ycsb.D ~nthreads:1 ~records:before ~ops_per_thread:200 ops);
      Alcotest.(check bool) "inserts grew the keyspace" true
        (Hashtbl.length keys > before))

let () =
  Alcotest.run "lab_workloads"
    [
      ( "fio",
        [
          Alcotest.test_case "op count" `Quick test_fio_op_count;
          Alcotest.test_case "time bounded" `Quick test_fio_time_bounded;
          Alcotest.test_case "iodepth scaling" `Quick test_fio_iodepth_improves_iops;
          Alcotest.test_case "seq vs rand on hdd" `Quick test_fio_seq_faster_on_hdd;
        ] );
      ( "fxmark",
        [
          Alcotest.test_case "create counts" `Quick test_fxmark_create_counts;
          Alcotest.test_case "private > shared" `Quick
            test_fxmark_private_faster_than_shared;
          Alcotest.test_case "mixed ops" `Quick test_fxmark_mixed;
        ] );
      ( "filebench",
        [
          Alcotest.test_case "all personalities" `Quick test_filebench_personalities_run;
          Alcotest.test_case "fileserver bandwidth" `Quick
            test_filebench_fileserver_most_bandwidth;
        ] );
      ( "labios",
        [ Alcotest.test_case "file backend" `Quick test_labios_backends ] );
      ( "ycsb",
        [
          Alcotest.test_case "mix ratios" `Quick test_ycsb_mix_ratios;
          Alcotest.test_case "D inserts fresh keys" `Quick
            test_ycsb_d_inserts_fresh_keys;
        ] );
      ( "pfs",
        [
          Alcotest.test_case "vpic totals" `Quick test_pfs_vpic_totals;
          Alcotest.test_case "md speed matters" `Quick test_pfs_md_speed_matters;
        ] );
    ]
