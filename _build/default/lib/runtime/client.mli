(** LabStor client library.

    Plays the role of the LD_PRELOADed Generic LabMods: GenericFS
    (fd allocation + routing of POSIX calls to the right filesystem
    stack) and GenericKVS (routing of put/get/delete). Paths and keys
    are resolved against the LabStack Namespace by longest prefix.

    For stacks mounted [async], requests travel through shared-memory
    queue pairs to Runtime workers; for [sync] stacks the DAG executes
    directly in the client thread. The library also implements crash
    recovery (Wait detects an offline Runtime, waits for restart, runs
    StateRepair, and retries) and applies decentralized live upgrades at
    request boundaries. *)

type t

exception Runtime_gone
(** Raised when the Runtime stayed offline past the recovery timeout. *)

val connect :
  Runtime.t -> pid:int -> uid:int -> thread:int -> ?recovery_timeout_ns:float -> unit -> t
(** Models the UNIX-socket handshake and credential exchange. Must run
    inside a simulated process. *)

val disconnect : t -> unit

val pid : t -> int

val thread : t -> int

(** {2 GenericFS: POSIX interface} *)

val open_file : t -> ?create:bool -> string -> (int, string) result
(** Resolves the path to a stack, forwards the open, allocates an fd. *)

val close : t -> int -> (unit, string) result

val pwrite : t -> fd:int -> off:int -> bytes:int -> (int, string) result

val pread : t -> fd:int -> off:int -> bytes:int -> (int, string) result

val fsync : t -> fd:int -> (unit, string) result

val create : t -> string -> (unit, string) result

val stat : t -> string -> (unit, string) result
(** Existence/attribute lookup (an [open] without fd allocation). *)

val unlink : t -> string -> (unit, string) result

val rename : t -> src:string -> dst:string -> (unit, string) result

(** {2 GenericKVS: key-value interface} *)

val put : t -> key:string -> bytes:int -> (unit, string) result

val get : t -> key:string -> (int, string) result

val delete : t -> key:string -> (unit, string) result

(** {2 Raw block access} *)

val write_block : t -> mount:string -> lba:int -> bytes:int -> (int, string) result
(** Submits a block write to the stack at [mount] (whose entry LabMod
    must accept block requests, e.g. a scheduler or driver) — the
    direct-to-device path of the scheduler experiments. *)

val read_block : t -> mount:string -> lba:int -> bytes:int -> (int, string) result

(** {2 Control} *)

val control : t -> mount:string -> int -> (unit, string) result
(** Sends a control message to the stack at [mount] (upgrade tests). *)

(** {2 Process semantics} *)

val fork : t -> new_pid:int -> new_thread:int -> t
(** clone/execve support: the child reconnects and the parent's open
    file descriptors are copied to it. *)

val open_fd_count : t -> int
