(** LabStack executor: walks a request through a stack's DAG, timing
    each LabMod's exclusive contribution (used by the I/O-anatomy
    experiment and by the per-module performance counters workers
    collect). *)

type probe = uuid:string -> exclusive_ns:float -> unit

val run :
  Lab_sim.Machine.t ->
  registry:Lab_core.Registry.t ->
  stack:Lab_core.Stack.t ->
  thread:int ->
  ?probe:probe ->
  Lab_core.Request.t ->
  Lab_core.Request.result
(** Executes the entry LabMod; each mod's [forward] continues to its
    DAG successors (sequentially, last result wins). A vertex whose
    instance is missing from the registry fails the request. Must run
    inside a simulated process. *)
