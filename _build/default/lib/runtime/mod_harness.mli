(** LabMod debugging harness.

    The paper's debugging mode: run a single LabMod in isolation, with a
    scripted downstream, outside any Runtime — probe its outputs, count
    and capture what it forwards, and measure the virtual time it
    charges. (In the original system this is where GDB/Valgrind attach;
    here the whole run is deterministic and inspectable.) *)

type t

val create :
  ?ncores:int ->
  ?downstream:(Lab_core.Request.t -> Lab_core.Request.result) ->
  (Lab_sim.Machine.t -> Lab_core.Registry.factory) ->
  t
(** Instantiates the module under test (uuid ["under-test"]). The
    factory builder receives the harness's machine so modules that
    close over devices (drivers) can construct them. [downstream]
    scripts the next DAG stage; the default completes everything with
    [Done]. *)

val labmod : t -> Lab_core.Labmod.t

val machine : t -> Lab_sim.Machine.t

val run :
  t -> ?thread:int -> Lab_core.Request.payload -> Lab_core.Request.result * float
(** Drives one request through the module in a fresh simulated process
    and returns (result, virtual ns consumed). *)

val forwarded : t -> Lab_core.Request.t list
(** Everything the module sent downstream, oldest first (both
    synchronous forwards and asynchronous emissions). *)

val clear_forwarded : t -> unit
