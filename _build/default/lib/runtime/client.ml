open Lab_sim
open Lab_ipc
open Lab_core

exception Runtime_gone

type t = {
  runtime : Runtime.t;
  mutable conn : Ipc_manager.connection;
  c_pid : int;
  uid : int;
  c_thread : int;
  qp_of_stack : (int, Request.t Qp.t) Hashtbl.t;
  fd_table : (int, string * int) Hashtbl.t;  (* fd -> (path, stack id) *)
  mutable next_fd : int;
  mutable epoch : int;
  recovery_timeout_ns : float;
}

let pid t = t.c_pid

let thread t = t.c_thread

let open_fd_count t = Hashtbl.length t.fd_table

let machine t = Runtime.machine t.runtime

let costs t = (machine t).Machine.costs

let charge t ns = Machine.compute (machine t) ~thread:t.c_thread ns

let connect runtime ~pid ~uid ~thread ?(recovery_timeout_ns = 1e10) () =
  let conn = Ipc_manager.connect (Runtime.ipc runtime) ~pid ~uid in
  {
    runtime;
    conn;
    c_pid = pid;
    uid;
    c_thread = thread;
    qp_of_stack = Hashtbl.create 8;
    fd_table = Hashtbl.create 64;
    next_fd = 3;
    epoch = Module_manager.epoch (Runtime.module_manager runtime);
    recovery_timeout_ns;
  }

let disconnect t = Ipc_manager.disconnect (Runtime.ipc t.runtime) t.conn

let qp_for_stack t (stack : Stack.t) =
  match Hashtbl.find_opt t.qp_of_stack stack.Stack.id with
  | Some qp -> qp
  | None ->
      let qp =
        Ipc_manager.create_qp (Runtime.ipc t.runtime) t.conn ~role:Qp.Primary
          ~ordering:Qp.Ordered ()
      in
      Hashtbl.replace t.qp_of_stack stack.Stack.id qp;
      (* New primary queue: the Work Orchestrator runs a rebalance, as
         it does whenever a new client connects. *)
      Runtime.rebalance_now t.runtime;
      qp

(* Decentralized upgrades: applied at the next request boundary, paying
   the code-load cost in this client. *)
let apply_decentralized_upgrades t =
  let mm = Runtime.module_manager t.runtime in
  let current = Module_manager.epoch mm in
  if current > t.epoch then begin
    let pending = Module_manager.client_pending_upgrades mm ~since_epoch:t.epoch in
    t.epoch <- current;
    List.iter
      (fun (u : Module_manager.upgrade) ->
        List.iter
          (fun (old_mod : Labmod.t) ->
            let fresh =
              Module_manager.apply_client_upgrade mm ~thread:t.c_thread
                ~local:old_mod u
            in
            Registry.replace (Runtime.registry t.runtime) fresh)
          (Registry.instances_of_name (Runtime.registry t.runtime) u.Module_manager.target))
      pending
  end

let run_state_repair t =
  List.iter
    (fun stack ->
      List.iter
        (fun (m : Labmod.t) -> m.Labmod.ops.Labmod.state_repair m)
        (Stack.mods stack (Runtime.registry t.runtime)))
    (Namespace.stacks (Runtime.namespace t.runtime))

let rec await_completion_or_crash t qp =
  match Qp.try_completion qp with
  | Some req -> Ok req
  | None ->
      if Ipc_manager.online (Runtime.ipc t.runtime) then begin
        Qp.wait_completion_event qp;
        await_completion_or_crash t qp
      end
      else Error `Crashed

(* Request construction + LabStack/Module-Registry lookups the Runtime
   would otherwise perform. *)
let sync_dispatch_ns = 800.0

let recover t =
  if
    not
      (Ipc_manager.wait_online (Runtime.ipc t.runtime)
         ~timeout_ns:t.recovery_timeout_ns)
  then raise Runtime_gone;
  run_state_repair t

(* Submit a request to a stack and wait for its result, transparently
   handling Runtime crashes (resubmitting after repair) and exec-mode
   differences. *)
let rec do_request t (stack : Stack.t) payload =
  apply_decentralized_upgrades t;
  let req =
    Request.make
      ~id:(Runtime.next_request_id t.runtime)
      ~pid:t.c_pid ~uid:t.uid ~thread:t.c_thread ~stack_id:stack.Stack.id
      ~now:(Machine.now (machine t))
      payload
  in
  match stack.Stack.exec_mode with
  | Stack_spec.Sync ->
      (* The whole DAG runs in the client thread: no IPC, no central
         authority — the Lab-D / fully-decentralized configuration. The
         connector still builds the request and walks the namespace and
         Module Registry itself. *)
      charge t sync_dispatch_ns;
      Runtime.exec_request t.runtime ~thread:t.c_thread req
  | Stack_spec.Async ->
      if not (Ipc_manager.online (Runtime.ipc t.runtime)) then begin
        recover t;
        do_request t stack payload
      end
      else begin
        let qp = qp_for_stack t stack in
        charge t (costs t).Costs.shmem_enqueue_ns;
        Qp.submit qp req;
        match await_completion_or_crash t qp with
        | Ok done_req ->
            (* Pull the completion cache line back to our core. *)
            charge t (costs t).Costs.shmem_cross_core_ns;
            Option.value done_req.Request.result
              ~default:(Request.Failed "no result recorded")
        | Error `Crashed ->
            recover t;
            do_request t stack payload
      end

let resolve t target =
  match Namespace.resolve (Runtime.namespace t.runtime) target with
  | Some stack -> Ok stack
  | None -> Error (Printf.sprintf "no LabStack mounted for %S" target)

let lookup_fd t fd =
  match Hashtbl.find_opt t.fd_table fd with
  | Some entry -> Ok entry
  | None -> Error (Printf.sprintf "bad file descriptor %d" fd)

let stack_of_id t sid =
  match Namespace.stack_by_id (Runtime.namespace t.runtime) sid with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "stack %d unmounted" sid)

let ( let* ) r f = Result.bind r f

let as_unit = function
  | Request.Done | Request.Fd _ | Request.Size _ -> Ok ()
  | Request.Denied m | Request.Failed m -> Error m

let as_size = function
  | Request.Size n -> Ok n
  | Request.Done | Request.Fd _ -> Ok 0
  | Request.Denied m | Request.Failed m -> Error m

(* GenericFS keeps fd state common to all filesystem stacks. *)
let open_file t ?(create = false) path =
  charge t (costs t).Costs.hash_op_ns;
  let* stack = resolve t path in
  let* () = as_unit (do_request t stack (Request.Posix (Request.Open { path; create }))) in
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fd_table fd (path, stack.Stack.id);
  Ok fd

(* GenericFS owns file-descriptor state, so close is a client-local
   table update — no Runtime round trip. *)
let close t fd =
  charge t (costs t).Costs.hash_op_ns;
  let* _entry = lookup_fd t fd in
  Hashtbl.remove t.fd_table fd;
  Ok ()

let pwrite t ~fd ~off ~bytes =
  charge t (costs t).Costs.hash_op_ns;
  let* path, sid = lookup_fd t fd in
  let* stack = stack_of_id t sid in
  as_size (do_request t stack (Request.Posix (Request.Pwrite { fd; path; off; bytes })))

let pread t ~fd ~off ~bytes =
  charge t (costs t).Costs.hash_op_ns;
  let* path, sid = lookup_fd t fd in
  let* stack = stack_of_id t sid in
  as_size (do_request t stack (Request.Posix (Request.Pread { fd; path; off; bytes })))

let fsync t ~fd =
  charge t (costs t).Costs.hash_op_ns;
  let* path, sid = lookup_fd t fd in
  let* stack = stack_of_id t sid in
  as_unit (do_request t stack (Request.Posix (Request.Fsync { fd; path })))

let create t path =
  let* stack = resolve t path in
  as_unit (do_request t stack (Request.Posix (Request.Create { path })))

let stat t path =
  let* stack = resolve t path in
  as_unit (do_request t stack (Request.Posix (Request.Open { path; create = false })))

let unlink t path =
  let* stack = resolve t path in
  as_unit (do_request t stack (Request.Posix (Request.Unlink { path })))

let rename t ~src ~dst =
  let* stack = resolve t src in
  as_unit (do_request t stack (Request.Posix (Request.Rename { src; dst })))

let put t ~key ~bytes =
  let* stack = resolve t key in
  as_unit (do_request t stack (Request.Kv (Request.Put { key; bytes })))

let get t ~key =
  let* stack = resolve t key in
  as_size (do_request t stack (Request.Kv (Request.Get { key })))

let delete t ~key =
  let* stack = resolve t key in
  as_unit (do_request t stack (Request.Kv (Request.Delete { key })))

let block_op t ~mount kind ~lba ~bytes =
  match Namespace.lookup (Runtime.namespace t.runtime) mount with
  | None -> Error (Printf.sprintf "nothing mounted at %S" mount)
  | Some stack ->
      as_size
        (do_request t stack
           (Request.Block { Request.b_kind = kind; b_lba = lba; b_bytes = bytes; b_sync = false }))

let write_block t ~mount ~lba ~bytes = block_op t ~mount Request.Write ~lba ~bytes

let read_block t ~mount ~lba ~bytes = block_op t ~mount Request.Read ~lba ~bytes

let control t ~mount payload =
  match Namespace.lookup (Runtime.namespace t.runtime) mount with
  | None -> Error (Printf.sprintf "nothing mounted at %S" mount)
  | Some stack -> as_unit (do_request t stack (Request.Control payload))

(* clone/execve: the child re-connects (new shared-memory queue pairs)
   and asks the Runtime to copy the parent's open fds across. *)
let fork t ~new_pid ~new_thread =
  let child =
    connect t.runtime ~pid:new_pid ~uid:t.uid ~thread:new_thread
      ~recovery_timeout_ns:t.recovery_timeout_ns ()
  in
  (* One IPC round trip per fd table copy. *)
  charge t
    ((costs t).Costs.shmem_enqueue_ns +. (costs t).Costs.shmem_cross_core_ns);
  Hashtbl.iter (fun fd entry -> Hashtbl.replace child.fd_table fd entry) t.fd_table;
  child.next_fd <- t.next_fd;
  child
