lib/runtime/client.mli: Runtime
