lib/runtime/exec.ml: Engine Lab_core Lab_sim Labmod List Machine Printf Registry Request Stack
