lib/runtime/orchestrator.ml: Array Float Hashtbl Lab_core Lab_ipc List Qp Stdlib Worker
