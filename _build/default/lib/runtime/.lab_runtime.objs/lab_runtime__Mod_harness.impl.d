lib/runtime/mod_harness.ml: Engine Lab_core Lab_sim Labmod List Machine Request
