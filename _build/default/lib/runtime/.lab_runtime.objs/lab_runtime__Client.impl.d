lib/runtime/client.ml: Costs Hashtbl Ipc_manager Lab_core Lab_ipc Lab_sim Labmod List Machine Module_manager Namespace Option Printf Qp Registry Request Result Runtime Stack Stack_spec
