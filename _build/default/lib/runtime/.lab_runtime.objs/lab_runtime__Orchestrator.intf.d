lib/runtime/orchestrator.mli: Lab_core Lab_ipc Worker
