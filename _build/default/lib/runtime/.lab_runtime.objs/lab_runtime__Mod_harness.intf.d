lib/runtime/mod_harness.mli: Lab_core Lab_sim
