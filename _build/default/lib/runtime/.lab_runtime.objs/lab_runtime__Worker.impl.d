lib/runtime/worker.ml: Costs Engine Lab_core Lab_ipc Lab_sim List Machine Qp Request Waitq
