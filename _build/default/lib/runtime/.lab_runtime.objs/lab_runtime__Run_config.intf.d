lib/runtime/run_config.mli: Lab_core Runtime
