lib/runtime/run_config.ml: Lab_core Option Orchestrator Printf Result Runtime Yamlite
