lib/runtime/runtime.mli: Exec Lab_core Lab_ipc Lab_mods Lab_sim Orchestrator Worker
