lib/runtime/exec.mli: Lab_core Lab_sim
