lib/runtime/worker.mli: Lab_core Lab_ipc Lab_sim
