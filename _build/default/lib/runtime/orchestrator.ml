open Lab_ipc

type policy =
  | Static of int
  | Round_robin of int
  | Dynamic of { max_workers : int; threshold : float; lq_cutoff_ns : float }

type queue_load = {
  qp : Lab_core.Request.t Qp.t;
  est_service_ns : float;
  expected_requests : float;
}

let load_of q =
  (* Work expected next epoch: anticipated arrivals plus backlog. *)
  q.est_service_ns
  *. (q.expected_requests +. Stdlib.float_of_int (Qp.sq_depth q.qp))

(* First-fit decreasing bin packing; bins are (load, queues) pairs. *)
let pack ~capacity items =
  let sorted =
    List.sort (fun a b -> Float.compare (load_of b) (load_of a)) items
  in
  let bins : (float ref * queue_load list ref) list ref = ref [] in
  List.iter
    (fun q ->
      let w = load_of q in
      let rec place = function
        | [] ->
            bins := !bins @ [ (ref w, ref [ q ]) ]
        | (total, queues) :: rest ->
            if !total +. w <= capacity then begin
              total := !total +. w;
              queues := q :: !queues
            end
            else place rest
      in
      place !bins)
    sorted;
  List.map (fun (_, queues) -> !queues) !bins

let partition_dynamic ~max_workers ~threshold ~lq_cutoff_ns ~epoch_ns ~queues =
  let lqs, cqs =
    List.partition (fun q -> q.est_service_ns <= lq_cutoff_ns) queues
  in
  (* Target utilization below 1: loads are measured under the *current*
     assignment, so a saturated worker reports at most one epoch of
     work per epoch. Packing against a sub-epoch capacity lets the pool
     grow until the measured demand is actually met, while [threshold]
     bounds the queueing-induced performance loss. *)
  let capacity = epoch_ns *. (1.0 -. Float.min 0.9 threshold) in
  let lq_bins = if lqs = [] then [] else pack ~capacity lqs in
  let cq_bins = if cqs = [] then [] else pack ~capacity cqs in
  let clamp limit bins =
    if List.length bins <= limit || limit <= 0 then bins
    else begin
      let keep = limit - 1 in
      let rec split i = function
        | [] -> ([], [])
        | x :: rest ->
            if i < keep then
              let kept, merged = split (i + 1) rest in
              (x :: kept, merged)
            else ([], [ List.concat (x :: rest) ])
      in
      let kept, merged = split 0 bins in
      kept @ merged
    end
  in
  (* LQ bins get budget first; CQs share the remainder (at least one
     worker if they exist at all). *)
  let lq_bins = clamp max_workers lq_bins in
  let cq_budget = Stdlib.max (min 1 (List.length cq_bins)) (max_workers - List.length lq_bins) in
  let cq_bins = clamp cq_budget cq_bins in
  let bins = clamp max_workers (lq_bins @ cq_bins) in
  bins

(* Sticky placement: give each bin the worker already serving most of
   its queues, so in-flight work stays where its core is and
   latency-sensitive queues never inherit a core mid-computation. Fresh
   LQ bins prefer low worker indices; fresh CQ bins high ones. *)
let place_bins bins ~lq_count ~workers =
  let n = Array.length workers in
  let current = Array.map (fun w -> Worker.queues w) workers in
  let free = Array.make n true in
  let overlap bin w =
    List.length
      (List.filter
         (fun q -> List.exists (fun q' -> Qp.id q' = Qp.id q.qp) current.(w))
         bin)
  in
  List.mapi
    (fun bin_idx bin ->
      let is_lq = bin_idx < lq_count in
      let best = ref (-1) and best_score = ref (-1) in
      let consider w =
        if free.(w) then begin
          let score = overlap bin w in
          if score > !best_score then begin
            best := w;
            best_score := score
          end
        end
      in
      if is_lq then
        for w = 0 to n - 1 do
          consider w
        done
      else
        for w = n - 1 downto 0 do
          consider w
        done;
      let w = if !best >= 0 then !best else bin_idx mod n in
      free.(w) <- false;
      (w, bin))
    bins

(* Unordered queues may be drained by any worker serving their class:
   replicate them across every worker that already holds work of the
   same class (ordered queues stay 1:1, preserving their in-order
   guarantee). *)
let share_unordered ~lq_cutoff_ns ~queues assignments =
  let unordered =
    List.filter (fun q -> Qp.ordering q.qp = Qp.Unordered) queues
  in
  if unordered = [] then assignments
  else
    List.map
      (fun (w, qs) ->
        if qs = [] then (w, qs)
        else begin
          let class_of q = q.est_service_ns <= lq_cutoff_ns in
          let classes = List.map class_of qs in
          let extra =
            List.filter
              (fun q ->
                List.mem (class_of q) classes
                && not (List.exists (fun q' -> Qp.id q'.qp = Qp.id q.qp) qs))
              unordered
          in
          (w, qs @ extra)
        end)
      assignments

let rebalance policy ~epoch_ns ~queues ~workers =
  let assignments =
    match policy with
    | Static n | Round_robin n ->
        let n = Stdlib.max 1 (Stdlib.min n (Array.length workers)) in
        let buckets = Array.make n [] in
        List.iteri
          (fun i q -> buckets.(i mod n) <- q :: buckets.(i mod n))
          queues;
        Array.to_list (Array.mapi (fun i qs -> (i, qs)) buckets)
    | Dynamic { max_workers; threshold; lq_cutoff_ns } ->
        let max_workers = Stdlib.min max_workers (Array.length workers) in
        let bins =
          partition_dynamic ~max_workers ~threshold ~lq_cutoff_ns ~epoch_ns
            ~queues
        in
        let lq_count =
          List.length
            (List.filter
               (fun bin ->
                 List.for_all (fun q -> q.est_service_ns <= lq_cutoff_ns) bin)
               bins)
        in
        share_unordered ~lq_cutoff_ns ~queues
          (place_bins bins ~lq_count ~workers)
  in
  (* Apply: named workers get their queues; the rest are drained. *)
  let used = Hashtbl.create 8 in
  List.iter
    (fun (w, qs) ->
      if w < Array.length workers then begin
        Hashtbl.replace used w ();
        Worker.assign workers.(w) (List.map (fun q -> q.qp) qs)
      end)
    assignments;
  Array.iteri
    (fun i w -> if not (Hashtbl.mem used i) then Worker.assign w [])
    workers
