(** Work Orchestrator: assigns request queues to workers and workers to
    cores (§III-C4).

    Policies:
    - [Static n] / [Round_robin n]: queues dealt round-robin over the
      first [n] workers.
    - [Dynamic]: queues are classified by their expected processing time
      into latency-sensitive queues (LQs) and computational queues
      (CQs); each class is bin-packed (first-fit decreasing, a greedy
      take on the paper's equal-weight knapsack) onto the fewest workers
      whose expected epoch load stays under capacity × (1 + threshold).
      LQ workers are disjoint from CQ workers, so short requests never
      sit behind long computations; unused workers are decommissioned. *)

type policy =
  | Static of int
  | Round_robin of int
  | Dynamic of { max_workers : int; threshold : float; lq_cutoff_ns : float }

type queue_load = {
  qp : Lab_core.Request.t Lab_ipc.Qp.t;
  est_service_ns : float;  (** EWMA of observed per-request service time *)
  expected_requests : float;  (** arrivals anticipated next epoch *)
}

val rebalance :
  policy ->
  epoch_ns:float ->
  queues:queue_load list ->
  workers:Worker.t array ->
  unit
(** Computes the new assignment and applies it via {!Worker.assign}. *)

val partition_dynamic :
  max_workers:int ->
  threshold:float ->
  lq_cutoff_ns:float ->
  epoch_ns:float ->
  queues:queue_load list ->
  queue_load list list
(** Pure core of the dynamic policy, exposed for testing: the bins, LQ
    bins first, at most [max_workers] of them. Worker placement is done
    by {!rebalance}, which keeps bins sticky to the workers that already
    serve their queues (so long-running computations are not stranded on
    cores that latency queues then land on). *)
