type region_id = int

type process_id = int

exception Permission_denied of string

type region = {
  size : int;
  granted : (process_id, unit) Hashtbl.t;
  mapped : (process_id, unit) Hashtbl.t;
}

type t = { regions : (region_id, region) Hashtbl.t; mutable next_id : int }

let create () = { regions = Hashtbl.create 32; next_id = 0 }

let allocate t ~owner ~size =
  if size <= 0 then invalid_arg "Shmem.allocate: size must be positive";
  let id = t.next_id in
  t.next_id <- id + 1;
  let r = { size; granted = Hashtbl.create 4; mapped = Hashtbl.create 4 } in
  Hashtbl.replace r.granted owner ();
  Hashtbl.replace t.regions id r;
  id

let region t id =
  match Hashtbl.find_opt t.regions id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Shmem: unknown region %d" id)

let grant t id pid = Hashtbl.replace (region t id).granted pid ()

let revoke t id pid =
  let r = region t id in
  Hashtbl.remove r.granted pid;
  Hashtbl.remove r.mapped pid

let map t id pid =
  let r = region t id in
  if not (Hashtbl.mem r.granted pid) then
    raise
      (Permission_denied
         (Printf.sprintf "process %d has no grant for region %d" pid id));
  Hashtbl.replace r.mapped pid ()

let unmap t id pid = Hashtbl.remove (region t id).mapped pid

let is_mapped t id pid = Hashtbl.mem (region t id).mapped pid

let free t id =
  let r = region t id in
  if Hashtbl.length r.mapped > 0 then
    invalid_arg (Printf.sprintf "Shmem.free: region %d still mapped" id);
  Hashtbl.remove t.regions id

let total_allocated t =
  Hashtbl.fold (fun _ r acc -> acc + r.size) t.regions 0

let region_count t = Hashtbl.length t.regions
