lib/ipc/ipc_manager.ml: Engine Float Hashtbl Lab_sim List Qp Shmem Waitq
