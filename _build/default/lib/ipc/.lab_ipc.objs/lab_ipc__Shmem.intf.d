lib/ipc/shmem.mli:
