lib/ipc/ring.ml: Array
