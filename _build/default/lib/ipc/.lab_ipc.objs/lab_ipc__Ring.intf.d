lib/ipc/ring.mli:
