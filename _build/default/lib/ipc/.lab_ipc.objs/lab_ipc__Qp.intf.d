lib/ipc/qp.mli: Lab_sim
