lib/ipc/shmem.ml: Hashtbl Printf
