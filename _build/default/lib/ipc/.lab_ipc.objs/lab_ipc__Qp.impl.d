lib/ipc/qp.ml: Engine Lab_sim List Ring Waitq
