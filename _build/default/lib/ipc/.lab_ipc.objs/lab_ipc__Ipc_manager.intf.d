lib/ipc/ipc_manager.mli: Lab_sim Qp Shmem
