open Lab_sim

type role = Primary | Intermediate

type ordering = Ordered | Unordered

type mark = Normal | Update_pending | Update_acked

type 'a t = {
  qp_id : int;
  sq : 'a Ring.t;
  cq : 'a Ring.t;
  qp_role : role;
  qp_ordering : ordering;
  mutable qp_mark : mark;
  mutable bells : unit Waitq.t list;
  cq_waiters : unit Waitq.t;
}

let create ?(sq_depth = 256) ?(cq_depth = 256) ~role ~ordering ~id () =
  {
    qp_id = id;
    sq = Ring.create ~capacity:sq_depth;
    cq = Ring.create ~capacity:cq_depth;
    qp_role = role;
    qp_ordering = ordering;
    qp_mark = Normal;
    bells = [];
    cq_waiters = Waitq.create ();
  }

let id t = t.qp_id

let role t = t.qp_role

let ordering t = t.qp_ordering

let mark t = t.qp_mark

let set_mark t m = t.qp_mark <- m

let ring_bell t = List.iter (fun w -> ignore (Waitq.wake w ())) t.bells

let backpressure_delay = 200.0

let try_submit t v =
  let ok = Ring.try_push t.sq v in
  if ok then ring_bell t;
  ok

let rec submit t v =
  if not (try_submit t v) then begin
    Engine.wait backpressure_delay;
    submit t v
  end

let try_completion t = Ring.try_pop t.cq

let await_completion t =
  match try_completion t with
  | Some v -> v
  | None ->
      let slot = ref None in
      Waitq.park t.cq_waiters slot;
      (* A completer placed our entry (or we raced another waiter; keep
         trying — FIFO park order bounds this). *)
      let rec take () =
        match try_completion t with
        | Some v -> v
        | None ->
            let slot = ref None in
            Waitq.park t.cq_waiters slot;
            take ()
      in
      take ()

let wait_completion_event t =
  let slot = ref None in
  Waitq.park t.cq_waiters slot

let wake_all_waiters t = ignore (Waitq.wake_all t.cq_waiters ())

let poll_sq t = Ring.try_pop t.sq

let peek_sq t = Ring.peek t.sq

let rec complete t v =
  if Ring.try_push t.cq v then ignore (Waitq.wake t.cq_waiters ())
  else begin
    Engine.wait backpressure_delay;
    complete t v
  end

let sq_depth t = Ring.length t.sq

let cq_depth t = Ring.length t.cq

let total_submitted t = Ring.total_pushed t.sq

let set_doorbell t w =
  t.bells <- (match w with None -> [] | Some b -> [ b ])

let add_doorbell t b =
  if not (List.exists (fun b' -> b' == b) t.bells) then t.bells <- b :: t.bells

let remove_doorbell t b = t.bells <- List.filter (fun b' -> not (b' == b)) t.bells

let doorbell t = match t.bells with [] -> None | b :: _ -> Some b

let doorbells t = t.bells
