(** Shared-memory region manager (the ShMemMod of the paper).

    Models vmalloc'd regions that the LabStor Runtime maps into selected
    process address spaces via grants. Only access-control semantics and
    sizes are modelled; payloads travel through queue pairs. *)

type t

type region_id = int

type process_id = int

exception Permission_denied of string

val create : unit -> t

val allocate : t -> owner:process_id -> size:int -> region_id
(** Allocates a region; the owner is implicitly granted. *)

val grant : t -> region_id -> process_id -> unit
(** Grants mapping rights. Only meaningful before [map]. *)

val revoke : t -> region_id -> process_id -> unit

val map : t -> region_id -> process_id -> unit
(** @raise Permission_denied if the process has no grant.
    @raise Invalid_argument on unknown region. *)

val unmap : t -> region_id -> process_id -> unit

val is_mapped : t -> region_id -> process_id -> bool

val free : t -> region_id -> unit
(** @raise Invalid_argument while any process still maps the region. *)

val total_allocated : t -> int
(** Sum of live region sizes in bytes. *)

val region_count : t -> int
