lib/device/device.ml: Array Engine Lab_sim Mailbox Profile Queue Semaphore Stats Stdlib Waitq
