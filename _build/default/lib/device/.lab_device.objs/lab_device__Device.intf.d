lib/device/device.mli: Lab_sim Profile
