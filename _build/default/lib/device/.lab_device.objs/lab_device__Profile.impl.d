lib/device/profile.ml: Format
