(** Storage device performance profiles.

    Calibrated to the hardware of the LabStor testbed (Chameleon storage
    hierarchy appliance): Intel P3700 NVMe, Intel SSDSC2BX016T4 SATA SSD,
    Seagate ST600MP0005 15K SAS HDD, and bootloader-emulated PMEM.
    Numbers come from the public data sheets; the evaluation only relies
    on their relative magnitudes. *)

type kind = Hdd | Sata_ssd | Nvme | Pmem

type t = {
  kind : kind;
  name : string;
  capacity_bytes : int;
  block_size : int;
  n_hw_queues : int;  (** hardware dispatch queues exposed to software *)
  n_channels : int;  (** internal service parallelism for the latency stage *)
  read_latency_ns : float;  (** fixed per-command latency, reads *)
  write_latency_ns : float;
  bandwidth_bytes_per_ns : float;  (** aggregate transfer bandwidth *)
  avg_seek_ns : float;  (** mechanical positioning; 0 for solid state *)
  supports_polling : bool;  (** completion polling (NVMe) vs. interrupt *)
  byte_addressable : bool;  (** PMEM load/store access *)
}

val pp_kind : Format.formatter -> kind -> unit

val kind_to_string : kind -> string

val hdd : t
(** Seagate ST600MP0005: 15K RPM SAS, 600 GB. *)

val sata_ssd : t
(** Intel SSDSC2BX016T4 (DC S3610): 1.6 TB SATA. *)

val nvme : t
(** Intel P3700: 2 TB PCIe NVMe. *)

val pmem : t
(** Emulated persistent memory carved out of DRAM. *)

val of_kind : kind -> t

val all : t list

val blocks : t -> int
(** Device capacity in blocks. *)
