open Lab_sim

type io_kind = Read | Write

type completion = {
  c_kind : io_kind;
  c_lba : int;
  c_bytes : int;
  c_submitted : float;
  c_completed : float;
}

type request = {
  kind : io_kind;
  lba : int;
  bytes : int;
  submitted : float;
  on_complete : completion -> unit;
}

type transfer_item = { treq : request; tbytes : int; resume : unit -> unit }

type t = {
  engine : Engine.t;
  profile : Profile.t;
  queues : request Mailbox.t array;
  channels : Semaphore.t;
  (* Shared-bandwidth stage: one server draining per-hctx transfer
     queues round-robin, as NVMe controllers arbitrate across
     submission queues — a loaded queue cannot starve the others. *)
  transfer_queues : transfer_item Queue.t array;
  transfer_bell : unit Waitq.t;
  mutable last_lba : int;  (* head position, for seek modelling *)
  mutable outstanding : int;
  flush_waiters : unit Waitq.t;
  mutable completed_reads : int;
  mutable completed_writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  service : Stats.t;
}

let profile t = t.profile

let engine t = t.engine

let n_hw_queues t = Array.length t.queues

let outstanding t = t.outstanding

let completed_reads t = t.completed_reads

let completed_writes t = t.completed_writes

let bytes_read t = t.bytes_read

let bytes_written t = t.bytes_written

let service_stats t = t.service

let reset_stats t =
  t.completed_reads <- 0;
  t.completed_writes <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  Stats.clear t.service

let latency_of t kind =
  match kind with
  | Read -> t.profile.Profile.read_latency_ns
  | Write -> t.profile.Profile.write_latency_ns

(* A command is sequential if it starts where the previous one ended. *)
let seek_cost t lba bytes =
  if t.profile.Profile.avg_seek_ns <= 0.0 then 0.0
  else begin
    let block = t.profile.Profile.block_size in
    let here = t.last_lba in
    let next = lba + ((bytes + block - 1) / block) in
    t.last_lba <- next;
    if lba = here then 0.0 else t.profile.Profile.avg_seek_ns
  end

let complete t req =
  let completion =
    {
      c_kind = req.kind;
      c_lba = req.lba;
      c_bytes = req.bytes;
      c_submitted = req.submitted;
      c_completed = Engine.now t.engine;
    }
  in
  Stats.add t.service (completion.c_completed -. completion.c_submitted);
  (match req.kind with
  | Read ->
      t.completed_reads <- t.completed_reads + 1;
      t.bytes_read <- t.bytes_read + req.bytes
  | Write ->
      t.completed_writes <- t.completed_writes + 1;
      t.bytes_written <- t.bytes_written + req.bytes);
  t.outstanding <- t.outstanding - 1;
  if t.outstanding = 0 then ignore (Waitq.wake_all t.flush_waiters ());
  req.on_complete completion

let service t qidx req () =
  let latency = latency_of t req.kind +. seek_cost t req.lba req.bytes in
  Engine.wait latency;
  Semaphore.release t.channels;
  (* Transfer stage: enqueue on this hctx's transfer queue and wait for
     the round-robin arbiter to move the payload. *)
  Engine.suspend (fun resume ->
      Queue.add { treq = req; tbytes = req.bytes; resume } t.transfer_queues.(qidx);
      ignore (Waitq.wake t.transfer_bell ()));
  complete t req

(* The bandwidth arbiter: round-robin over the per-hctx transfer
   queues, except that small commands form an urgent class (NVMe
   weighted-round-robin arbitration) and are served ahead of bulk
   transfers; parks when everything is drained. *)
let urgent_bytes = 16384

let transfer_arbiter t () =
  let n = Array.length t.transfer_queues in
  let cursor = ref 0 in
  let take_urgent () =
    let found = ref None in
    for i = 0 to n - 1 do
      if !found = None then begin
        let idx = (!cursor + i) mod n in
        let q = t.transfer_queues.(idx) in
        match Queue.peek_opt q with
        | Some item when item.tbytes <= urgent_bytes ->
            found := Queue.take_opt q;
            (* Keep the scan fair: continue after the queue served. *)
            cursor := (idx + 1) mod n
        | _ -> ()
      end
    done;
    !found
  in
  let rec round_robin tries =
    if tries = n then None
    else begin
      let q = t.transfer_queues.(!cursor) in
      cursor := (!cursor + 1) mod n;
      match Queue.take_opt q with
      | Some item -> Some item
      | None -> round_robin (tries + 1)
    end
  in
  let next_item _ =
    match take_urgent () with Some i -> Some i | None -> round_robin 0
  in
  while true do
    match next_item 0 with
    | Some item ->
        Engine.wait
          (Stdlib.float_of_int item.tbytes /. t.profile.Profile.bandwidth_bytes_per_ns);
        item.resume ()
    | None ->
        let slot = ref None in
        Waitq.park t.transfer_bell slot
  done

(* One dispatcher per hardware queue: enforces FIFO service *start*
   within the queue while the channel semaphore caps global
   parallelism. *)
let dispatcher t qidx () =
  let q = t.queues.(qidx) in
  while true do
    let req = Mailbox.get q in
    Semaphore.acquire t.channels;
    Engine.spawn t.engine (service t qidx req)
  done

let create engine profile =
  let open Profile in
  let t =
    {
      engine;
      profile;
      queues = Array.init profile.n_hw_queues (fun _ -> Mailbox.create ());
      channels = Semaphore.create profile.n_channels;
      transfer_queues = Array.init profile.n_hw_queues (fun _ -> Queue.create ());
      transfer_bell = Waitq.create ();
      last_lba = 0;
      outstanding = 0;
      flush_waiters = Waitq.create ();
      completed_reads = 0;
      completed_writes = 0;
      bytes_read = 0;
      bytes_written = 0;
      service = Stats.create ();
    }
  in
  for i = 0 to profile.n_hw_queues - 1 do
    Engine.spawn engine (dispatcher t i)
  done;
  Engine.spawn engine (transfer_arbiter t);
  t

(* Maximum data per command (MDTS): larger operations are split into a
   train of commands so one huge transfer cannot monopolize the
   bandwidth arbiter — the mechanism that keeps latency-sensitive
   queues usable next to bulk streams. *)
let max_transfer_bytes = 256 * 1024

let submit t ~hctx ~kind ~lba ~bytes ~on_complete =
  if bytes <= 0 then invalid_arg "Device.submit: bytes must be positive";
  let hctx = hctx mod Array.length t.queues in
  let block = t.profile.Profile.block_size in
  let nchunks = (bytes + max_transfer_bytes - 1) / max_transfer_bytes in
  let remaining = ref nchunks in
  let last_completion = ref None in
  let chunk_done c =
    last_completion := Some c;
    decr remaining;
    if !remaining = 0 then
      on_complete { c with c_bytes = bytes; c_lba = lba }
  in
  for i = 0 to nchunks - 1 do
    let off = i * max_transfer_bytes in
    let len = Stdlib.min max_transfer_bytes (bytes - off) in
    t.outstanding <- t.outstanding + 1;
    let req =
      {
        kind;
        lba = lba + (off / block);
        bytes = len;
        submitted = Engine.now t.engine;
        on_complete = chunk_done;
      }
    in
    Mailbox.put t.queues.(hctx) req
  done

let submit_wait t ~hctx ~kind ~lba ~bytes =
  let result = ref None in
  Engine.suspend (fun resume ->
      submit t ~hctx ~kind ~lba ~bytes ~on_complete:(fun c ->
          result := Some c;
          resume ()));
  match !result with Some c -> c | None -> assert false

let flush t =
  if t.outstanding > 0 then begin
    let slot = ref None in
    Waitq.park t.flush_waiters slot
  end
