(** Simulated storage device with multi-queue submission.

    The service model has two stages. A command first occupies one of
    [n_channels] latency slots (modelling internal parallelism: flash
    channels, PMEM banks, a disk's single actuator), then transfers its
    payload through the device's shared bandwidth. Small requests are
    therefore latency-bound but scale with parallel submission; large
    requests are bandwidth-bound regardless of queue count — matching
    the qualitative behaviour the paper's Figure 6 depends on.

    Requests submitted to the same hardware queue begin service in FIFO
    order. HDDs additionally pay a seek whenever a command's LBA is not
    contiguous with the previous command. *)

type t

type io_kind = Read | Write

type completion = {
  c_kind : io_kind;
  c_lba : int;
  c_bytes : int;
  c_submitted : float;
  c_completed : float;
}

val create : Lab_sim.Engine.t -> Profile.t -> t

val profile : t -> Profile.t

val engine : t -> Lab_sim.Engine.t

val n_hw_queues : t -> int

val submit :
  t ->
  hctx:int ->
  kind:io_kind ->
  lba:int ->
  bytes:int ->
  on_complete:(completion -> unit) ->
  unit
(** Asynchronous submission; [on_complete] fires in device context at
    completion time. [hctx] is taken modulo the queue count. *)

val submit_wait : t -> hctx:int -> kind:io_kind -> lba:int -> bytes:int -> completion
(** Blocking submission: suspends the calling process until the command
    completes. *)

val flush : t -> unit
(** Suspends the caller until every outstanding command has completed
    (fsync semantics at the device level). *)

val outstanding : t -> int

(** Observability counters. *)

val completed_reads : t -> int

val completed_writes : t -> int

val bytes_read : t -> int

val bytes_written : t -> int

val service_stats : t -> Lab_sim.Stats.t
(** Per-command service times (submission to completion), ns. *)

val reset_stats : t -> unit
