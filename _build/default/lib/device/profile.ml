type kind = Hdd | Sata_ssd | Nvme | Pmem

type t = {
  kind : kind;
  name : string;
  capacity_bytes : int;
  block_size : int;
  n_hw_queues : int;
  n_channels : int;
  read_latency_ns : float;
  write_latency_ns : float;
  bandwidth_bytes_per_ns : float;
  avg_seek_ns : float;
  supports_polling : bool;
  byte_addressable : bool;
}

let kind_to_string = function
  | Hdd -> "HDD"
  | Sata_ssd -> "SSD"
  | Nvme -> "NVMe"
  | Pmem -> "PMEM"

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

let gib = 1024 * 1024 * 1024

(* 15K RPM SAS drive: ~2 ms average seek + 2 ms average rotational
   delay; ~230 MB/s sustained transfer; a single mechanical "channel". *)
let hdd =
  {
    kind = Hdd;
    name = "Seagate ST600MP0005 (15K SAS)";
    capacity_bytes = 600 * gib;
    block_size = 4096;
    n_hw_queues = 1;
    n_channels = 1;
    read_latency_ns = 50_000.0;
    write_latency_ns = 50_000.0;
    bandwidth_bytes_per_ns = 0.23;
    avg_seek_ns = 4_000_000.0;
    supports_polling = false;
    byte_addressable = false;
  }

(* SATA DC SSD: AHCI single queue; ~55/66 us 4K latency; ~500 MB/s. *)
let sata_ssd =
  {
    kind = Sata_ssd;
    name = "Intel SSDSC2BX016T4 (SATA)";
    capacity_bytes = 1600 * gib;
    block_size = 4096;
    n_hw_queues = 1;
    n_channels = 4;
    read_latency_ns = 55_000.0;
    write_latency_ns = 66_000.0;
    bandwidth_bytes_per_ns = 0.5;
    avg_seek_ns = 0.0;
    supports_polling = false;
    byte_addressable = false;
  }

(* Intel P3700 PCIe NVMe: ~20 us command latency, deep internal
   parallelism, ~2 GB/s writes. *)
let nvme =
  {
    kind = Nvme;
    name = "Intel P3700 (NVMe)";
    capacity_bytes = 2000 * gib;
    block_size = 4096;
    n_hw_queues = 16;
    n_channels = 16;
    read_latency_ns = 6_000.0;
    write_latency_ns = 6_000.0;
    bandwidth_bytes_per_ns = 2.0;
    avg_seek_ns = 0.0;
    supports_polling = true;
    byte_addressable = false;
  }

(* DRAM-emulated PMEM: sub-microsecond access, very high bandwidth. *)
let pmem =
  {
    kind = Pmem;
    name = "Emulated PMEM";
    capacity_bytes = 64 * gib;
    block_size = 256;
    n_hw_queues = 16;
    n_channels = 16;
    read_latency_ns = 300.0;
    write_latency_ns = 900.0;
    bandwidth_bytes_per_ns = 8.0;
    avg_seek_ns = 0.0;
    supports_polling = true;
    byte_addressable = true;
  }

let of_kind = function
  | Hdd -> hdd
  | Sata_ssd -> sata_ssd
  | Nvme -> nvme
  | Pmem -> pmem

let all = [ hdd; sata_ssd; nvme; pmem ]

let blocks t = t.capacity_bytes / t.block_size
