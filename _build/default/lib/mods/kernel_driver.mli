(** Kernel Driver LabMod: submits block I/O straight into the kernel's
    multi-queue hardware dispatch queues ([submit_io_to_hctx]),
    bypassing the upper block layer and the interrupt path — the
    worker/client polls for completion. Honors a scheduler LabMod's
    [hint_hctx] steering decision. *)

open Lab_core

val name : string

val factory : blk:Lab_kernel.Blk.t -> Registry.factory
