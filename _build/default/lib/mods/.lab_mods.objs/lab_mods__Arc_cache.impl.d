lib/mods/arc_cache.ml: Costs Hashtbl Lab_core Lab_sim Labmod List Lru Machine Mod_util Option Registry Request Stdlib Yamlite
