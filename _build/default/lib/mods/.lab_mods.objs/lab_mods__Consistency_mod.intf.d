lib/mods/consistency_mod.mli: Lab_core Labmod Registry
