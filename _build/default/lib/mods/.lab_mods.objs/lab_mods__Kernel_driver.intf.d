lib/mods/kernel_driver.mli: Lab_core Lab_kernel Registry
