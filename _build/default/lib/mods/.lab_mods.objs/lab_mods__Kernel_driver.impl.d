lib/mods/kernel_driver.ml: Blk Costs Engine Lab_core Lab_device Lab_kernel Lab_sim Labmod Machine Mod_util Registry Request Stdlib
