lib/mods/blkswitch_sched.mli: Lab_core Registry
