lib/mods/lru_cache.ml: Costs Lab_core Lab_sim Labmod List Lru Machine Mod_util Option Registry Request Stdlib Yamlite
