lib/mods/spdk_driver.ml: Costs Device Engine Lab_core Lab_device Lab_sim Labmod Machine Mod_util Profile Registry Request Stdlib
