lib/mods/labfs.mli: Block_alloc Hashtbl Lab_core Labmod Registry
