lib/mods/lz77.ml: Array Buffer Bytes Char Stdlib
