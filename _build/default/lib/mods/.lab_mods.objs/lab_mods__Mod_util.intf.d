lib/mods/mod_util.mli: Lab_core Lab_device Labmod Request
