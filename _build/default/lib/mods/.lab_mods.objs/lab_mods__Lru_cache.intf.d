lib/mods/lru_cache.mli: Lab_core Labmod Registry
