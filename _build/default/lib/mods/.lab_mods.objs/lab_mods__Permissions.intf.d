lib/mods/permissions.mli: Lab_core Labmod Registry
