lib/mods/compress_mod.mli: Lab_core Labmod Registry
