lib/mods/dummy_mod.mli: Lab_core Labmod Registry
