lib/mods/dummy_mod.ml: Lab_core Lab_sim Labmod List Machine Mod_util Option Registry Request Yamlite
