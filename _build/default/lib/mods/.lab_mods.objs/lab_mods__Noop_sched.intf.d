lib/mods/noop_sched.mli: Lab_core Registry
