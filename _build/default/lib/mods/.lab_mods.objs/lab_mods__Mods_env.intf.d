lib/mods/mods_env.mli: Lab_core Lab_device Lab_kernel Lab_sim Registry
