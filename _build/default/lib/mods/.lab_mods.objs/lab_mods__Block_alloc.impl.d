lib/mods/block_alloc.ml: Array List Stdlib
