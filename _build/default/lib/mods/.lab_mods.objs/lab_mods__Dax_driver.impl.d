lib/mods/dax_driver.ml: Device Lab_core Lab_device Lab_sim Labmod Machine Mod_util Profile Registry Request Stdlib
