lib/mods/block_alloc.mli:
