lib/mods/arc_cache.mli: Lab_core Labmod Registry
