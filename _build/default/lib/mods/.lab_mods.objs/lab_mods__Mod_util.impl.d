lib/mods/mod_util.ml: Engine Lab_core Lab_device Lab_sim Labmod Request
