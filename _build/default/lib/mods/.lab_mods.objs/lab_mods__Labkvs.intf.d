lib/mods/labkvs.mli: Lab_core Labmod Registry
