lib/mods/lz77.mli:
