lib/mods/spdk_driver.mli: Lab_core Lab_device Registry
