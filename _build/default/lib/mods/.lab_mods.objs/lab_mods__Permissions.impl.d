lib/mods/permissions.ml: Costs Lab_core Lab_sim Labmod List Machine Mod_util Option Printf Registry Request String Yamlite
