lib/mods/dax_driver.mli: Lab_core Lab_device Registry
