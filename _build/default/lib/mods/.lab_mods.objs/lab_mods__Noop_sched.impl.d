lib/mods/noop_sched.ml: Lab_core Lab_sim Labmod Machine Mod_util Registry Request
