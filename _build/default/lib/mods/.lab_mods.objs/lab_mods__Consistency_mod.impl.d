lib/mods/consistency_mod.ml: Lab_core Lab_sim Labmod List Mod_util Option Registry Request Semaphore Stdlib Yamlite
