lib/mods/blkswitch_sched.ml: Array Lab_core Lab_sim Labmod Machine Mod_util Registry Request Stdlib
