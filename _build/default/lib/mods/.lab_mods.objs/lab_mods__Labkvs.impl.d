lib/mods/labkvs.ml: Block_alloc Hashtbl Lab_core Lab_sim Labmod List Machine Mod_util Option Registry Request Stdlib Yamlite
