(* Dummy LabMod for the live-upgrade experiment (Table I): processes
   control messages with a configurable CPU cost and counts them; its
   transferable state is "a few bytes of pointers". *)

open Lab_sim
open Lab_core

type dummy_state = { mutable messages : int; op_ns : float; tag : string }

type Labmod.state += State of dummy_state

let name = "dummy"

let messages m =
  match m.Labmod.state with State s -> s.messages | _ -> 0

let tag m = match m.Labmod.state with State s -> s.tag | _ -> "?"

let operate m ctx req =
  match (m.Labmod.state, req.Request.payload) with
  | State s, Request.Control _ ->
      Machine.compute ctx.Labmod.machine ~thread:ctx.Labmod.thread s.op_ns;
      s.messages <- s.messages + 1;
      Request.Done
  | _ -> Request.Failed "dummy: expects control requests"

let factory ?(op_ns = 1000.0) ?(tag = "v1") () : Registry.factory =
 fun ~uuid ~attrs ->
  let op_ns =
    Option.value ~default:op_ns
      (Option.bind (List.assoc_opt "op_ns" attrs) Yamlite.get_float)
  in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Control
    ~state:(State { messages = 0; op_ns; tag })
    {
      Labmod.operate;
      est_processing_time = (fun _ _ -> op_ns);
      state_update =
        (function
        | State old -> State { old with tag }  (* keep counters, adopt new code's tag *)
        | other -> other);
      state_repair = Mod_util.no_repair;
    }
