(* Permissions LabMod: per-request credential checks against a rule
   table, the tunable access control the paper's Lab-Min configuration
   removes. Rules are prefix ACLs; absent rules fall back to the
   default policy. *)

open Lab_sim
open Lab_core

type rule = { uid : int; prefix : string; allow : bool }

type perm_state = { mutable rules : rule list; default_allow : bool }

type Labmod.state += State of perm_state

let name = "permissions"

let add_rule m ~uid ~prefix ~allow =
  match m.Labmod.state with
  | State s -> s.rules <- { uid; prefix; allow } :: s.rules
  | _ -> invalid_arg "permissions: bad state"

let target_of req =
  match req.Request.payload with
  | Request.Posix (Open { path; _ })
  | Request.Posix (Create { path })
  | Request.Posix (Unlink { path })
  | Request.Posix (Pread { path; _ })
  | Request.Posix (Pwrite { path; _ })
  | Request.Posix (Fsync { path; _ }) ->
      Some path
  | Request.Posix (Rename { src; _ }) -> Some src
  | Request.Posix (Close _) -> None
  | Request.Kv (Put { key; _ }) | Request.Kv (Get { key }) | Request.Kv (Delete { key })
    ->
      Some key
  | Request.Block _ | Request.Control _ -> None

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let decide s ~uid target =
  let rec go = function
    | [] -> s.default_allow
    | r :: rest ->
        if r.uid = uid && starts_with ~prefix:r.prefix target then r.allow
        else go rest
  in
  go s.rules

let operate m ctx req =
  match m.Labmod.state with
  | State s -> (
      let machine = ctx.Labmod.machine in
      Machine.compute machine ~thread:ctx.Labmod.thread
        machine.Machine.costs.Costs.permission_check_ns;
      match target_of req with
      | None -> ctx.Labmod.forward req
      | Some target ->
          if decide s ~uid:req.Request.uid target then ctx.Labmod.forward req
          else Request.Denied (Printf.sprintf "uid %d: %s" req.Request.uid target))
  | _ -> Request.Failed "permissions: bad state"

let factory : Registry.factory =
 fun ~uuid ~attrs ->
  let default_allow =
    Option.value ~default:true
      (Option.bind (List.assoc_opt "default_allow" attrs) Yamlite.get_bool)
  in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Permissions
    ~state:(State { rules = []; default_allow })
    {
      Labmod.operate;
      est_processing_time = (fun _ _ -> 300.0);
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
