(** LabFS's scalable per-worker block allocator.

    Device blocks are divided evenly among the worker pool; each worker
    allocates from its own partition without synchronization. A worker
    that runs dry steals a configurable number of blocks from the
    richest peer. Shrinking the pool returns a decommissioned worker's
    free blocks to the survivors; growing lets new workers steal their
    initial stock (§III-E). *)

type t

val create : total_blocks:int -> workers:int -> ?steal_chunk:int -> unit -> t
(** Default [steal_chunk] is 16384 blocks. *)

val workers : t -> int

val alloc : t -> worker:int -> int -> int list
(** [alloc t ~worker n] returns [n] distinct block numbers, stealing
    from peers if the worker's partition is exhausted.
    @raise Failure when the device is genuinely full. *)

val free : t -> worker:int -> int list -> unit

val free_blocks : t -> int
(** Total free blocks across all workers. *)

val free_blocks_of : t -> worker:int -> int

val resize : t -> workers:int -> unit
(** Re-partitions for a new worker count, preserving all free blocks. *)

val steals : t -> int
(** Number of steal events, for observability. *)
