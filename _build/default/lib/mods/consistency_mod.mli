(** Tunable-consistency LabMod.

    Modes (attribute [mode], or switched live by a Control request with
    payload 0/1/2):
    - [relaxed]: writes pass through; caches may absorb them;
    - [ordered]: writes are serialized — one in flight downstream;
    - [durable]: writes are tagged force-unit-access so they bypass
      caches and reach the device before completing. *)

open Lab_core

type mode = Relaxed | Ordered | Durable

val name : string

val factory : Registry.factory

val mode : Labmod.t -> mode option

val set_mode : Labmod.t -> mode -> unit

val mode_name : mode -> string

val writes_seen : Labmod.t -> int
