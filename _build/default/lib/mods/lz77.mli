(** A small LZ77-style compressor (fixed window, byte-oriented token
    stream). Used by the Compression LabMod: the LabMod charges modelled
    CPU time for the simulated payload sizes, while this implementation
    provides the real algorithm for correctness testing and for callers
    that do carry real buffers. *)

val compress : ?window:int -> bytes -> bytes
(** [window] is the back-reference window size (default 4096, max
    65535). *)

val decompress : bytes -> bytes
(** Inverse of {!compress}. @raise Invalid_argument on corrupt input. *)

val ratio : bytes -> float
(** [compressed length / original length]; 1.0 for empty input. *)
