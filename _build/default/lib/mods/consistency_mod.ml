(* Tunable-consistency LabMod (the paper lists "tunable consistency
   guarantees" among its stock modules and §III-B's configurable
   consistency idea).

   Modes, selectable per stack via the [mode] attribute and switchable
   live through a Control request:
   - [relaxed]: writes pass through unchanged (caches may absorb them);
   - [ordered]: writes to the same stack are serialized — a write is not
     forwarded until every earlier write has completed downstream;
   - [durable]: every write is tagged force-unit-access ([b_sync]), so
     caches pass it through and it reaches the device before the
     operation completes. *)

open Lab_sim
open Lab_core

type mode = Relaxed | Ordered | Durable

type cons_state = {
  mutable mode : mode;
  order_lock : Semaphore.t;
  mutable writes_seen : int;
}

type Labmod.state += State of cons_state

let name = "consistency"

let mode_of_string = function
  | "relaxed" -> Some Relaxed
  | "ordered" -> Some Ordered
  | "durable" -> Some Durable
  | _ -> None

let mode_name = function
  | Relaxed -> "relaxed"
  | Ordered -> "ordered"
  | Durable -> "durable"

let mode m = match m.Labmod.state with State s -> Some s.mode | _ -> None

let set_mode m mode =
  match m.Labmod.state with State s -> s.mode <- mode | _ -> ()

let writes_seen m =
  match m.Labmod.state with State s -> s.writes_seen | _ -> 0

(* Control payloads 0/1/2 select relaxed/ordered/durable — dynamic
   semantics imposition without remounting. *)
let mode_of_control = function
  | 0 -> Some Relaxed
  | 1 -> Some Ordered
  | 2 -> Some Durable
  | _ -> None

let is_write req =
  match req.Request.payload with
  | Request.Block { b_kind = Request.Write; _ } -> true
  | Request.Posix (Request.Pwrite _) -> true
  | Request.Kv (Request.Put _) -> true
  | _ -> false

let make_durable req =
  match req.Request.payload with
  | Request.Block b ->
      { req with Request.payload = Request.Block { b with Request.b_sync = true } }
  | _ -> req

let operate m ctx req =
  match m.Labmod.state with
  | State s -> (
      match req.Request.payload with
      | Request.Control c -> (
          match mode_of_control c with
          | Some mode ->
              s.mode <- mode;
              Request.Done
          | None -> ctx.Labmod.forward req)
      | _ ->
          if is_write req then begin
            s.writes_seen <- s.writes_seen + 1;
            match s.mode with
            | Relaxed -> ctx.Labmod.forward req
            | Durable -> ctx.Labmod.forward (make_durable req)
            | Ordered ->
                Semaphore.acquire s.order_lock;
                let result = ctx.Labmod.forward req in
                Semaphore.release s.order_lock;
                result
          end
          else ctx.Labmod.forward req)
  | _ -> Request.Failed "consistency: bad state"

let est m req =
  ignore m;
  100.0 +. (0.001 *. Stdlib.float_of_int (Request.bytes_of req))

let factory : Registry.factory =
 fun ~uuid ~attrs ->
  let mode =
    Option.value ~default:Relaxed
      (Option.bind
         (Option.bind (List.assoc_opt "mode" attrs) Yamlite.get_string)
         mode_of_string)
  in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Consistency
    ~state:(State { mode; order_lock = Semaphore.create 1; writes_seen = 0 })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
