(* Compression LabMod: transparently compresses write payloads before
   they continue towards storage (active storage, §III-B). Simulated
   payloads carry sizes rather than bytes, so the module charges CPU
   time from a calibrated per-byte rate (ZLIB-class ≈ 0.625 ns/B: a
   32 MiB buffer costs the ~20 ms the paper reports) and shrinks the
   downstream request by the configured ratio. The real algorithm
   (Lz77) backs the model and the unit tests. *)

open Lab_sim
open Lab_core

type comp_state = {
  ratio : float;
  compress_ns_per_byte : float;
  decompress_ns_per_byte : float;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

type Labmod.state += State of comp_state

let name = "compress"

let bytes_saved m =
  match m.Labmod.state with State s -> s.bytes_in - s.bytes_out | _ -> 0

let operate m ctx req =
  match (m.Labmod.state, req.Request.payload) with
  | State s, Request.Block { b_kind = Request.Write; b_lba; b_bytes; _ } ->
      let machine = ctx.Labmod.machine in
      Machine.compute machine ~thread:ctx.Labmod.thread
        (s.compress_ns_per_byte *. Stdlib.float_of_int b_bytes);
      let out = Stdlib.max 1 (int_of_float (Stdlib.float_of_int b_bytes *. s.ratio)) in
      s.bytes_in <- s.bytes_in + b_bytes;
      s.bytes_out <- s.bytes_out + out;
      let compressed =
        {
          req with
          Request.payload =
            Request.Block { b_kind = Request.Write; b_lba; b_bytes = out; b_sync = false };
        }
      in
      ctx.Labmod.forward compressed
  | State s, Request.Block { b_kind = Request.Read; b_lba; b_bytes; _ } ->
      let machine = ctx.Labmod.machine in
      let stored = Stdlib.max 1 (int_of_float (Stdlib.float_of_int b_bytes *. s.ratio)) in
      let fetch =
        {
          req with
          Request.payload =
            Request.Block { b_kind = Request.Read; b_lba; b_bytes = stored; b_sync = false };
        }
      in
      let result = ctx.Labmod.forward fetch in
      Machine.compute machine ~thread:ctx.Labmod.thread
        (s.decompress_ns_per_byte *. Stdlib.float_of_int b_bytes);
      result
  | _, (Request.Posix _ | Request.Kv _ | Request.Control _) ->
      ctx.Labmod.forward req
  | _ -> Request.Failed "compress: bad state"

let est m req =
  match m.Labmod.state with
  | State s -> s.compress_ns_per_byte *. Stdlib.float_of_int (Request.bytes_of req)
  | _ -> 1000.0

let factory : Registry.factory =
 fun ~uuid ~attrs ->
  let fattr key default =
    Option.value ~default
      (Option.bind (List.assoc_opt key attrs) Yamlite.get_float)
  in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Compression
    ~state:
      (State
         {
           ratio = fattr "ratio" 0.5;
           compress_ns_per_byte = fattr "compress_ns_per_byte" 0.625;
           decompress_ns_per_byte = fattr "decompress_ns_per_byte" 0.2;
           bytes_in = 0;
           bytes_out = 0;
         })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
