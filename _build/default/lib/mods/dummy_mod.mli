(** Dummy LabMod for the live-upgrade experiment (Table I): processes
    control messages with a configurable CPU cost and counts them; its
    transferable state is "a few bytes of pointers". The [tag]
    identifies the code version so tests can observe an upgrade taking
    effect while the message count survives. *)

open Lab_core

val name : string

val factory : ?op_ns:float -> ?tag:string -> unit -> Registry.factory
(** Attribute [op_ns] overrides the per-message CPU cost. *)

val messages : Labmod.t -> int

val tag : Labmod.t -> string
