(** Compression LabMod (active storage, §III-B): transparently
    compresses write payloads before they continue towards storage and
    decompresses on the read path. Simulated payloads carry sizes, so
    the module charges calibrated CPU time (a ZLIB-class 0.625 ns/B —
    a 32 MiB buffer costs the ~20 ms the paper reports) and shrinks the
    downstream request by the configured ratio; {!Lz77} is the real
    algorithm backing the model.

    Attributes: [ratio] (default 0.5), [compress_ns_per_byte],
    [decompress_ns_per_byte]. *)

open Lab_core

val name : string

val factory : Registry.factory

val bytes_saved : Labmod.t -> int
(** Device traffic avoided so far. *)
