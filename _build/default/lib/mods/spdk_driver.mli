(** SPDK Driver LabMod: the NVMe queue pair is mapped into userspace,
    so submission is an SQE write plus a doorbell — no kernel entry and
    no kernel request-structure allocation (the source of its advantage
    over the Kernel Driver in the paper's Figure 6). Requires a device
    that supports userspace completion polling. *)

open Lab_core

val name : string

val factory : device:Lab_device.Device.t -> Registry.factory
(** @raise Invalid_argument if the device does not support polling. *)
