(** Permissions LabMod: per-request credential checks against a prefix
    ACL — the tunable access control the paper's Lab-Min configurations
    remove. Rules can be added while the stack is live. *)

open Lab_core

val name : string

val factory : Registry.factory
(** Attribute: [default_allow] (default true) — the decision when no
    rule matches. *)

val add_rule : Labmod.t -> uid:int -> prefix:string -> allow:bool -> unit
(** Most recently added rule wins. *)
