(** No-Op I/O scheduler LabMod: keys each request to the hardware queue
    of the core it originated on, nothing more — the paper's baseline
    scheduling policy. *)

open Lab_core

val name : string

val factory : nqueues:int -> Registry.factory
