(* Free space is kept as per-worker extent lists (start, len), avoiding
   per-block cells for multi-terabyte devices. *)

type t = {
  mutable partitions : (int * int) list array;  (* free extents per worker *)
  steal_chunk : int;
  mutable steal_count : int;
}

let create ~total_blocks ~workers ?(steal_chunk = 16384) () =
  if total_blocks <= 0 then invalid_arg "Block_alloc: total_blocks";
  if workers <= 0 then invalid_arg "Block_alloc: workers";
  let per = total_blocks / workers in
  let partitions =
    Array.init workers (fun w ->
        let start = w * per in
        let len = if w = workers - 1 then total_blocks - start else per in
        if len > 0 then [ (start, len) ] else [])
  in
  { partitions; steal_chunk; steal_count = 0 }

let workers t = Array.length t.partitions

let extent_total extents = List.fold_left (fun acc (_, l) -> acc + l) 0 extents

let free_blocks_of t ~worker = extent_total t.partitions.(worker)

let free_blocks t =
  Array.fold_left (fun acc e -> acc + extent_total e) 0 t.partitions

(* Take up to n blocks from an extent list. Returns (blocks, rest). *)
let take_from extents n =
  let rec go acc extents n =
    if n = 0 then (acc, extents)
    else
      match extents with
      | [] -> (acc, [])
      | (start, len) :: rest ->
          if len <= n then
            go (List.rev_append (List.init len (fun i -> start + i)) acc) rest (n - len)
          else
            ( List.rev_append (List.init n (fun i -> start + i)) acc,
              (start + n, len - n) :: rest )
  in
  go [] extents n

let richest t ~excluding =
  let best = ref (-1) and best_free = ref 0 in
  Array.iteri
    (fun w extents ->
      if w <> excluding then begin
        let f = extent_total extents in
        if f > !best_free then begin
          best := w;
          best_free := f
        end
      end)
    t.partitions;
  if !best_free > 0 then Some !best else None

let rec alloc t ~worker n =
  if n < 0 then invalid_arg "Block_alloc.alloc: negative count";
  let worker = worker mod Array.length t.partitions in
  let got, rest = take_from t.partitions.(worker) n in
  t.partitions.(worker) <- rest;
  let missing = n - List.length got in
  if missing = 0 then got
  else
    match richest t ~excluding:worker with
    | None ->
        (* Roll back and fail: the device is full. *)
        t.partitions.(worker) <-
          List.map (fun b -> (b, 1)) got @ t.partitions.(worker);
        failwith "Block_alloc: out of blocks"
    | Some victim -> (
        t.steal_count <- t.steal_count + 1;
        let chunk = Stdlib.max missing t.steal_chunk in
        let stolen, vrest = take_from t.partitions.(victim) chunk in
        t.partitions.(victim) <- vrest;
        t.partitions.(worker) <-
          List.map (fun b -> (b, 1)) stolen @ t.partitions.(worker);
        (* If even the steal cannot satisfy the remainder, the blocks
           taken so far must go back before the failure propagates. *)
        match alloc t ~worker missing with
        | rest -> got @ rest
        | exception (Failure _ as e) ->
            t.partitions.(worker) <-
              List.map (fun b -> (b, 1)) got @ t.partitions.(worker);
            raise e)

let free t ~worker blocks =
  let worker = worker mod Array.length t.partitions in
  t.partitions.(worker) <-
    List.map (fun b -> (b, 1)) blocks @ t.partitions.(worker)

let steals t = t.steal_count

let resize t ~workers =
  if workers <= 0 then invalid_arg "Block_alloc.resize: workers";
  let all = Array.to_list t.partitions |> List.concat in
  let fresh = Array.make workers [] in
  (* Deal extents round-robin so the new pool starts roughly even. *)
  List.iteri (fun i e -> fresh.(i mod workers) <- e :: fresh.(i mod workers)) all;
  t.partitions <- fresh
