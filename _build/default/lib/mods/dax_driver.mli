(** DAX Driver LabMod: persistent memory mapped into the address space;
    I/O is CPU load/store plus a persistence fence. Requires a
    byte-addressable device (PMEM). *)

open Lab_core

val name : string

val factory : device:Lab_device.Device.t -> Registry.factory
(** @raise Invalid_argument if the device is not byte addressable. *)
