(** LabKVS: the paper's example key-value store LabMod. Same design as
    LabFS (log-structured metadata, per-worker block allocation) with
    put/get/delete semantics: one operation creates the key and stores
    its value, versus the open-modify-close sequence POSIX requires —
    the mechanism behind the LABIOS experiment (Figure 9b). *)

open Lab_core

val name : string

val factory :
  total_blocks:int -> nworkers:int -> ?block_size:int -> unit -> Registry.factory

val key_count : Labmod.t -> int

val mem : Labmod.t -> string -> bool
