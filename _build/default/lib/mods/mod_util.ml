(* Shared helpers for LabMod implementations. *)

open Lab_sim
open Lab_core

let device_kind = function
  | Request.Read -> Lab_device.Device.Read
  | Request.Write -> Lab_device.Device.Write

(* Submit-then-await: issue an asynchronous operation from process
   context and park until its completion callback fires. [submit] must
   itself be safe to run in process context and call the completion
   callback exactly once (possibly before returning). *)
let await_completion submit =
  let completed = ref false in
  let resumer = ref None in
  submit (fun () ->
      completed := true;
      match !resumer with Some r -> r () | None -> ());
  if not !completed then Engine.suspend (fun r -> resumer := Some r)

let identity_state : Labmod.state -> Labmod.state = fun s -> s

let no_repair (_ : Labmod.t) = ()

let ok_or_failed name = function
  | Some r -> r
  | None -> Request.Failed (name ^ ": unsupported request payload")
