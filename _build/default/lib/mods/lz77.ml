(* Token stream format:
     0x00 <len:u16le> <len literal bytes>
     0x01 <dist:u16le> <len:u16le>          (back-reference)
   Matches are at least [min_match] long; distances fit the window. *)

let min_match = 4

let max_match = 0xFFFF

let hash3 b i =
  let v =
    Char.code (Bytes.get b i)
    lor (Char.code (Bytes.get b (i + 1)) lsl 8)
    lor (Char.code (Bytes.get b (i + 2)) lsl 16)
  in
  v * 2654435761 land 0xFFFF

let put_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let flush_literals buf src start stop =
  (* Emit pending literals in [start, stop) as one or more runs. *)
  let pos = ref start in
  while !pos < stop do
    let n = Stdlib.min 0xFFFF (stop - !pos) in
    Buffer.add_char buf '\x00';
    put_u16 buf n;
    Buffer.add_subbytes buf src !pos n;
    pos := !pos + n
  done

let compress ?(window = 4096) src =
  if window <= 0 || window > 0xFFFF then invalid_arg "Lz77.compress: window";
  let n = Bytes.length src in
  let buf = Buffer.create (n / 2) in
  let head = Array.make 0x10000 (-1) in
  let lit_start = ref 0 in
  let i = ref 0 in
  while !i < n do
    if !i + min_match <= n then begin
      let h = hash3 src !i in
      let candidate = head.(h) in
      head.(h) <- !i;
      let have_match =
        candidate >= 0
        && !i - candidate <= window
        && candidate + min_match <= n
        && Bytes.sub src candidate min_match = Bytes.sub src !i min_match
      in
      if have_match then begin
        (* Extend the match as far as it goes. *)
        let len = ref min_match in
        while
          !i + !len < n
          && !len < max_match
          && Bytes.get src (candidate + !len) = Bytes.get src (!i + !len)
        do
          incr len
        done;
        flush_literals buf src !lit_start !i;
        Buffer.add_char buf '\x01';
        put_u16 buf (!i - candidate);
        put_u16 buf !len;
        i := !i + !len;
        lit_start := !i
      end
      else incr i
    end
    else incr i
  done;
  flush_literals buf src !lit_start n;
  Buffer.to_bytes buf

let get_u16 src i =
  Char.code (Bytes.get src i) lor (Char.code (Bytes.get src (i + 1)) lsl 8)

let decompress src =
  let n = Bytes.length src in
  let buf = Buffer.create (2 * n) in
  let i = ref 0 in
  let bad () = invalid_arg "Lz77.decompress: corrupt stream" in
  while !i < n do
    if !i + 3 > n then bad ();
    match Bytes.get src !i with
    | '\x00' ->
        let len = get_u16 src (!i + 1) in
        if !i + 3 + len > n then bad ();
        Buffer.add_subbytes buf src (!i + 3) len;
        i := !i + 3 + len
    | '\x01' ->
        if !i + 5 > n then bad ();
        let dist = get_u16 src (!i + 1) in
        let len = get_u16 src (!i + 3) in
        let out_len = Buffer.length buf in
        if dist = 0 || dist > out_len then bad ();
        (* Byte-by-byte copy: overlapping references replicate. *)
        for k = 0 to len - 1 do
          Buffer.add_char buf (Buffer.nth buf (out_len - dist + k))
        done;
        i := !i + 5
    | _ -> bad ()
  done;
  Buffer.to_bytes buf

let ratio src =
  let n = Bytes.length src in
  if n = 0 then 1.0
  else Stdlib.float_of_int (Bytes.length (compress src)) /. Stdlib.float_of_int n
