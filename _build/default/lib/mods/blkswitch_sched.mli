(** blk-switch I/O scheduler LabMod (after Hwang et al., integrated as
    the paper's §IV scheduler case study): reserves a fraction of the
    hardware queues for latency-critical (small) requests and steers
    each class to its least-loaded queue, eliminating head-of-line
    blocking behind bulk transfers. *)

open Lab_core

val name : string

val lq_threshold_bytes : int
(** Requests at or below this size are treated as latency critical. *)

val factory : nqueues:int -> Registry.factory
