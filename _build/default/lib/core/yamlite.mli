(** A YAML-subset parser for LabStack specification files and the
    Runtime configuration — implemented here because the sealed build
    environment has no yaml package.

    Supported: nested block maps and block lists (indentation based),
    inline flow lists [a, b, c], scalars (null, bool, int, float,
    single/double-quoted and plain strings), and [#] comments. Anchors,
    aliases, multi-document streams, and block scalars are not. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Map of (string * t) list

exception Parse_error of { line : int; message : string }

val parse : string -> t
(** @raise Parse_error on malformed input. An empty document is {!Null}. *)

val find : t -> string -> t option
(** Map lookup; [None] for non-maps and missing keys. *)

val get_string : t -> string option

val get_int : t -> int option

val get_float : t -> float option
(** Accepts both [Int] and [Float] nodes. *)

val get_bool : t -> bool option

val get_list : t -> t list option

val to_string : t -> string
(** Debug rendering (not round-trippable YAML). *)

val serialize : t -> string
(** Renders the value as a YAML document within the supported subset;
    [parse (serialize v)] returns a value equal to [v] (up to float
    formatting). Strings are quoted whenever they could be read back as
    another scalar or contain syntax. *)
