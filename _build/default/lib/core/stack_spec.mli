(** LabStack specification files.

    A LabStack is defined in a YAML document with three attributes: a
    mount point, a set of governing rules (execution mode, priority,
    authorized admins), and a DAG of LabMods — each vertex naming its
    implementation, instance UUID, initialization attributes, and
    outputs. Example:

    {v
    mount: "fs::/b"
    rules:
      exec_mode: async
      priority: 1
      admins: [root]
    dag:
      - uuid: labfs-1
        mod: labfs
        outputs: [lru-1]
      - uuid: lru-1
        mod: lru_cache
        attrs:
          capacity_mb: 64
        outputs: [noop-1]
      - uuid: noop-1
        mod: noop_sched
        outputs: [kdriver-1]
      - uuid: kdriver-1
        mod: kernel_driver
    v} *)

type exec_mode =
  | Sync  (** the DAG runs inside the client thread *)
  | Async  (** requests are shipped to Runtime workers *)

type vertex = {
  uuid : string;
  mod_name : string;
  attrs : (string * Yamlite.t) list;
  outputs : string list;
}

type rules = { exec_mode : exec_mode; priority : int; admins : string list }

type t = { mount : string; rules : rules; dag : vertex list }

val default_rules : rules

val of_yaml : Yamlite.t -> (t, string) result

val parse : string -> (t, string) result
(** Parse + structural extraction; does not validate the DAG. *)

val validate :
  ?max_length:int ->
  t ->
  mod_type_of:(string -> Labmod.mod_type option) ->
  (unit, string) result
(** Checks: non-empty DAG no longer than [max_length] (default 16),
    unique UUIDs, outputs referencing known vertices, acyclicity, every
    implementation installed, and interface compatibility along each
    edge ({!Labmod.compatible_downstream}). The first vertex is the
    stack's entry point. *)

val entry : t -> vertex
(** First vertex of the DAG. Raises [Invalid_argument] on empty DAG. *)

val find_vertex : t -> string -> vertex option
