(** LabMod repositories (deployment model, §III-D).

    A repo is a named collection of installed LabMod implementations
    owned by a user. [mount_repo]/[unmount_repo] are unprivileged; a
    configurable per-user repo quota applies. A repo owned by the same
    user as the Runtime is trusted by default; LabMods from untrusted
    repos may still be used — but only in stacks that execute in the
    client's address space (synchronous execution), never inside the
    Runtime. *)

type trust = Trusted | Untrusted

type t

val create : runtime_uid:int -> ?max_repos_per_user:int -> unit -> t
(** Default quota: 8 repos per user. *)

val mount_repo :
  t ->
  Registry.t ->
  name:string ->
  owner_uid:int ->
  mods:(string * Registry.factory) list ->
  (trust, string) result
(** Registers every implementation in the repo (rejecting name
    collisions with already-installed implementations) and returns the
    trust level assigned. *)

val unmount_repo : t -> Registry.t -> name:string -> (unit, string) result
(** Unregisters the repo's implementations. *)

val repos : t -> string list

val trust_of_repo : t -> string -> trust option

val trust_of_mod : t -> string -> trust
(** Trust of the repo providing implementation [name]; implementations
    not provided by any repo (the built-ins the Runtime was configured
    with) are trusted. *)

val validate_stack_trust : t -> Stack_spec.t -> (unit, string) result
(** Rejects asynchronous stacks that contain untrusted LabMods: those
    must run in a separate address space from the Runtime. *)
