(** An instantiated LabStack: a validated spec whose vertices are bound
    to live LabMod instances in the Module Registry. *)

type t = {
  id : int;
  mount : string;
  spec : Stack_spec.t;
  exec_mode : Stack_spec.exec_mode;
}

val instantiate :
  Registry.t -> Stack_spec.t -> id:int -> (t, string) result
(** Validates the spec against installed implementations and ensures
    every vertex has a registry instance (creating missing ones). *)

val entry_uuid : t -> string

val vertex : t -> string -> Stack_spec.vertex option

val next_uuids : t -> string -> string list
(** Downstream vertices of the given UUID (within this stack). *)

val mods : t -> Registry.t -> Labmod.t list
(** The stack's instances in DAG order. *)

val update_spec : t -> Registry.t -> Stack_spec.t -> (t, string) result
(** modify_stack: re-validates and re-instantiates with the new DAG,
    keeping id and mount. Vertices whose UUIDs persist keep their
    instances (and therefore their state). *)
