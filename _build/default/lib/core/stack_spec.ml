type exec_mode = Sync | Async

type vertex = {
  uuid : string;
  mod_name : string;
  attrs : (string * Yamlite.t) list;
  outputs : string list;
}

type rules = { exec_mode : exec_mode; priority : int; admins : string list }

type t = { mount : string; rules : rules; dag : vertex list }

let default_rules = { exec_mode = Async; priority = 0; admins = [ "root" ] }

let ( let* ) r f = Result.bind r f

let string_list_of = function
  | Yamlite.List items ->
      let strings =
        List.filter_map
          (fun v ->
            match v with
            | Yamlite.Str s -> Some s
            | Yamlite.Int i -> Some (string_of_int i)
            | _ -> None)
          items
      in
      if List.length strings = List.length items then Ok strings
      else Error "expected a list of strings"
  | Yamlite.Null -> Ok []
  | _ -> Error "expected a list"

let rules_of_yaml = function
  | None -> Ok default_rules
  | Some node ->
      let* exec_mode =
        match Option.bind (Yamlite.find node "exec_mode") Yamlite.get_string with
        | Some "sync" -> Ok Sync
        | Some "async" | None -> Ok Async
        | Some other -> Error (Printf.sprintf "unknown exec_mode %S" other)
      in
      let priority =
        Option.value ~default:0
          (Option.bind (Yamlite.find node "priority") Yamlite.get_int)
      in
      let* admins =
        match Yamlite.find node "admins" with
        | None -> Ok default_rules.admins
        | Some l -> string_list_of l
      in
      Ok { exec_mode; priority; admins }

let vertex_of_yaml i node =
  let err msg = Error (Printf.sprintf "dag[%d]: %s" i msg) in
  match node with
  | Yamlite.Map _ -> (
      match
        ( Option.bind (Yamlite.find node "uuid") Yamlite.get_string,
          Option.bind (Yamlite.find node "mod") Yamlite.get_string )
      with
      | None, _ -> err "missing uuid"
      | _, None -> err "missing mod"
      | Some uuid, Some mod_name ->
          let attrs =
            match Yamlite.find node "attrs" with
            | Some (Yamlite.Map kvs) -> kvs
            | _ -> []
          in
          let* outputs =
            match Yamlite.find node "outputs" with
            | None -> Ok []
            | Some l -> (
                match string_list_of l with
                | Ok outs -> Ok outs
                | Error e -> err e)
          in
          Ok { uuid; mod_name; attrs; outputs })
  | _ -> err "expected a mapping"

let of_yaml node =
  let* mount =
    match Option.bind (Yamlite.find node "mount") Yamlite.get_string with
    | Some m when m <> "" -> Ok m
    | _ -> Error "missing or empty mount point"
  in
  let* rules = rules_of_yaml (Yamlite.find node "rules") in
  let* dag_nodes =
    match Option.bind (Yamlite.find node "dag") Yamlite.get_list with
    | Some l -> Ok l
    | None -> Error "missing dag"
  in
  let* dag =
    List.fold_left
      (fun acc (i, v) ->
        let* acc = acc in
        let* vertex = vertex_of_yaml i v in
        Ok (vertex :: acc))
      (Ok [])
      (List.mapi (fun i v -> (i, v)) dag_nodes)
  in
  Ok { mount; rules; dag = List.rev dag }

let parse text =
  match Yamlite.parse text with
  | exception Yamlite.Parse_error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message)
  | node -> of_yaml node

let entry t =
  match t.dag with
  | v :: _ -> v
  | [] -> invalid_arg "Stack_spec.entry: empty DAG"

let find_vertex t uuid = List.find_opt (fun v -> v.uuid = uuid) t.dag

(* Kahn's algorithm restricted to edges inside the stack; external
   outputs (other mounts) are ignored here. *)
let acyclic dag =
  let module S = Set.Make (String) in
  let ids = S.of_list (List.map (fun v -> v.uuid) dag) in
  let indeg = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace indeg v.uuid 0) dag;
  List.iter
    (fun v ->
      List.iter
        (fun o ->
          if S.mem o ids then
            Hashtbl.replace indeg o (1 + Option.value ~default:0 (Hashtbl.find_opt indeg o)))
        v.outputs)
    dag;
  let q = Queue.create () in
  Hashtbl.iter (fun u d -> if d = 0 then Queue.add u q) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr visited;
    match List.find_opt (fun v -> v.uuid = u) dag with
    | None -> ()
    | Some v ->
        List.iter
          (fun o ->
            if S.mem o ids then begin
              let d = Hashtbl.find indeg o - 1 in
              Hashtbl.replace indeg o d;
              if d = 0 then Queue.add o q
            end)
          v.outputs
  done;
  !visited = List.length dag

let validate ?(max_length = 16) t ~mod_type_of =
  let* () = if t.dag = [] then Error "empty DAG" else Ok () in
  let* () =
    if List.length t.dag > max_length then
      Error (Printf.sprintf "DAG longer than the configured maximum (%d)" max_length)
    else Ok ()
  in
  let uuids = List.map (fun v -> v.uuid) t.dag in
  let* () =
    if List.length (List.sort_uniq String.compare uuids) <> List.length uuids then
      Error "duplicate LabMod UUIDs in DAG"
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        List.fold_left
          (fun acc o ->
            let* () = acc in
            if List.mem o uuids || String.contains o ':' then Ok ()
              (* outputs containing ':' reference other mounts *)
            else Error (Printf.sprintf "%s: unknown output %S" v.uuid o))
          (Ok ()) v.outputs)
      (Ok ()) t.dag
  in
  let* () = if acyclic t.dag then Ok () else Error "DAG contains a cycle" in
  let* types =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match mod_type_of v.mod_name with
        | Some ty -> Ok ((v.uuid, ty) :: acc)
        | None -> Error (Printf.sprintf "%s: implementation %S is not installed" v.uuid v.mod_name))
      (Ok []) t.dag
  in
  List.fold_left
    (fun acc v ->
      let* () = acc in
      let up = List.assoc v.uuid types in
      List.fold_left
        (fun acc o ->
          let* () = acc in
          match List.assoc_opt o types with
          | None -> Ok ()  (* cross-mount reference *)
          | Some down ->
              if Labmod.compatible_downstream up down then Ok ()
              else
                Error
                  (Printf.sprintf "%s (%s) cannot feed %s (%s)" v.uuid
                     (Labmod.mod_type_name up) o (Labmod.mod_type_name down)))
        (Ok ()) v.outputs)
    (Ok ()) t.dag
