(** Module Registry: the key-value store of instantiated LabMods (keyed
    by UUID) plus the factories that model installed LabMod code
    ("repos" in the deployment model, i.e. loadable plug-ins). *)

type factory = uuid:string -> attrs:(string * Yamlite.t) list -> Labmod.t

type t

val create : unit -> t

(** {2 Factories (installed code)} *)

val register_factory : t -> name:string -> factory -> unit
(** Registers or replaces the implementation installed under [name]. *)

val unregister_factory : t -> name:string -> unit

val find_factory : t -> string -> factory option

val factory_names : t -> string list

(** {2 Instances} *)

val instantiate :
  t -> mod_name:string -> uuid:string -> attrs:(string * Yamlite.t) list ->
  (Labmod.t, string) result
(** Returns the existing instance when [uuid] is already registered
    (mount semantics: a LabMod is only instantiated if its UUID is
    new); otherwise builds one from the factory. *)

val find : t -> string -> Labmod.t option

val replace : t -> Labmod.t -> unit
(** Swaps the instance registered under the module's UUID (hot swap /
    upgrade). *)

val remove : t -> string -> unit

val instances : t -> Labmod.t list

val instances_of_name : t -> string -> Labmod.t list
(** All instances built from the implementation called [name]. *)
