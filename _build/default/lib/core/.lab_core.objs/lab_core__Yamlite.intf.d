lib/core/yamlite.mli:
