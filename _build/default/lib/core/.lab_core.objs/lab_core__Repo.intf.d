lib/core/repo.mli: Registry Stack_spec
