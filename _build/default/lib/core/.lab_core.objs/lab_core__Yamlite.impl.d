lib/core/yamlite.ml: Array Buffer List Printf String
