lib/core/stack.ml: Labmod List Registry Result Stack_spec String
