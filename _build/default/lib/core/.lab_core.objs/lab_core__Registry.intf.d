lib/core/registry.mli: Labmod Yamlite
