lib/core/registry.ml: Hashtbl Labmod List Printf Yamlite
