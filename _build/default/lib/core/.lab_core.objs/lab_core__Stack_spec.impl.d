lib/core/stack_spec.ml: Hashtbl Labmod List Option Printf Queue Result Set String Yamlite
