lib/core/module_manager.mli: Lab_ipc Lab_sim Labmod Registry Request
