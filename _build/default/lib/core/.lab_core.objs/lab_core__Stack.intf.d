lib/core/stack.mli: Labmod Registry Stack_spec
