lib/core/namespace.mli: Registry Stack Stack_spec
