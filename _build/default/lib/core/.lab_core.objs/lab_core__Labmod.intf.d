lib/core/labmod.mli: Lab_sim Request
