lib/core/labmod.ml: Lab_sim Request
