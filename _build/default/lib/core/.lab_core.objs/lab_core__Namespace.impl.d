lib/core/namespace.ml: Hashtbl Printf Stack Stack_spec String
