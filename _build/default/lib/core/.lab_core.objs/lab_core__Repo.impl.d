lib/core/repo.ml: Hashtbl List Option Printf Registry Stack_spec
