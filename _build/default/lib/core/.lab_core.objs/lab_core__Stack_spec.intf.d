lib/core/stack_spec.mli: Labmod Yamlite
