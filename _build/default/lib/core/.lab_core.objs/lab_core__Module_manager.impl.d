lib/core/module_manager.ml: Engine Lab_ipc Lab_sim Labmod List Machine Qp Queue Registry
