type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Map of (string * t) list

exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

(* ---------------------------------------------------------------- *)
(* Lexing: lines with indentation, comments stripped                 *)
(* ---------------------------------------------------------------- *)

type line = { no : int; indent : int; body : string }

(* Remove a trailing comment that is not inside quotes. *)
let strip_comment s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i quote =
    if i >= n then Buffer.contents buf
    else
      let c = s.[i] in
      match quote with
      | Some q ->
          Buffer.add_char buf c;
          go (i + 1) (if c = q then None else quote)
      | None ->
          if c = '#' && (i = 0 || s.[i - 1] = ' ' || s.[i - 1] = '\t') then
            Buffer.contents buf
          else begin
            Buffer.add_char buf c;
            go (i + 1) (if c = '"' || c = '\'' then Some c else None)
          end
  in
  go 0 None

let lines_of_string text =
  let raw = String.split_on_char '\n' text in
  let _, acc =
    List.fold_left
      (fun (no, acc) l ->
        let l = strip_comment l in
        let l =
          if String.length l > 0 && l.[String.length l - 1] = '\r' then
            String.sub l 0 (String.length l - 1)
          else l
        in
        let indent =
          let rec count i =
            if i < String.length l && l.[i] = ' ' then count (i + 1) else i
          in
          count 0
        in
        let body = String.trim l in
        if body = "" || body = "---" then (no + 1, acc)
        else begin
          if String.contains l '\t' then
            fail no "tab characters are not allowed in indentation";
          (no + 1, { no; indent; body } :: acc)
        end)
      (1, []) raw
  in
  Array.of_list (List.rev acc)

(* ---------------------------------------------------------------- *)
(* Scalars                                                           *)
(* ---------------------------------------------------------------- *)

let parse_scalar no s =
  let s = String.trim s in
  if s = "" || s = "~" || s = "null" then Null
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if String.length s >= 2 && (s.[0] = '"' || s.[0] = '\'') then begin
    let q = s.[0] in
    if s.[String.length s - 1] <> q then fail no "unterminated quoted string";
    Str (String.sub s 1 (String.length s - 2))
  end
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with Some f -> Float f | None -> Str s)

(* Inline flow list: [a, b, c]. Nested flow collections unsupported. *)
let parse_flow_list no s =
  let inner = String.sub s 1 (String.length s - 2) in
  if String.trim inner = "" then List []
  else
    List
      (List.map (fun item -> parse_scalar no item) (String.split_on_char ',' inner))

let parse_value no s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']' then
    parse_flow_list no s
  else parse_scalar no s

(* ---------------------------------------------------------------- *)
(* Block structure                                                   *)
(* ---------------------------------------------------------------- *)

(* Split "key: value" at the first ':' that is followed by a space or
   ends the string and is outside quotes. Returns None if the line is
   not a mapping entry. *)
let split_key_value body =
  let n = String.length body in
  let rec go i quote =
    if i >= n then None
    else
      let c = body.[i] in
      match quote with
      | Some q -> go (i + 1) (if c = q then None else quote)
      | None ->
          if c = ':' && (i = n - 1 || body.[i + 1] = ' ') then
            Some (String.trim (String.sub body 0 i), String.trim (String.sub body (i + 1) (n - i - 1)))
          else go (i + 1) (if c = '"' || c = '\'' then Some c else None)
  in
  go 0 None

let unquote_key no k =
  if String.length k >= 2 && (k.[0] = '"' || k.[0] = '\'') then
    match parse_scalar no k with Str s -> s | _ -> k
  else k

let rec parse_block lines pos indent =
  if !pos >= Array.length lines then Null
  else
    let l = lines.(!pos) in
    if l.indent < indent then Null
    else if String.length l.body >= 1 && l.body.[0] = '-'
            && (String.length l.body = 1 || l.body.[1] = ' ') then
      parse_list lines pos l.indent
    else if split_key_value l.body <> None then parse_map lines pos l.indent
    else begin
      (* A bare scalar document. *)
      incr pos;
      parse_value l.no l.body
    end

and parse_list lines pos indent =
  let items = ref [] in
  let continue_loop = ref true in
  while !continue_loop && !pos < Array.length lines do
    let l = lines.(!pos) in
    if l.indent <> indent || String.length l.body = 0 || l.body.[0] <> '-' then
      continue_loop := false
    else begin
      let rest =
        if String.length l.body = 1 then ""
        else String.trim (String.sub l.body 1 (String.length l.body - 1))
      in
      incr pos;
      let item =
        if rest = "" then
          (* nested block belongs to this item if indented deeper *)
          if !pos < Array.length lines && lines.(!pos).indent > indent then
            parse_block lines pos lines.(!pos).indent
          else Null
        else
          match split_key_value rest with
          | Some (k, v) ->
              (* The item is an inline map whose further keys sit on the
                 following lines, indented past the dash. *)
              let first =
                if v = "" then
                  if !pos < Array.length lines && lines.(!pos).indent > indent + 1
                  then (unquote_key l.no k, parse_block lines pos lines.(!pos).indent)
                  else (unquote_key l.no k, Null)
                else (unquote_key l.no k, parse_value l.no v)
              in
              let rest_map =
                if !pos < Array.length lines && lines.(!pos).indent > indent then
                  match parse_map lines pos lines.(!pos).indent with
                  | Map kvs -> kvs
                  | Null -> []
                  | _ -> fail l.no "expected mapping continuation in list item"
                else []
              in
              Map (first :: rest_map)
          | None -> parse_value l.no rest
      in
      items := item :: !items
    end
  done;
  List (List.rev !items)

and parse_map lines pos indent =
  let entries = ref [] in
  let continue_loop = ref true in
  while !continue_loop && !pos < Array.length lines do
    let l = lines.(!pos) in
    if l.indent <> indent || (String.length l.body > 0 && l.body.[0] = '-') then
      continue_loop := false
    else
      match split_key_value l.body with
      | None -> fail l.no (Printf.sprintf "expected 'key: value', got %S" l.body)
      | Some (k, v) ->
          incr pos;
          let value =
            if v = "" then
              if !pos < Array.length lines && lines.(!pos).indent > indent then
                parse_block lines pos lines.(!pos).indent
              else Null
            else parse_value l.no v
          in
          entries := (unquote_key l.no k, value) :: !entries
  done;
  Map (List.rev !entries)

let parse text =
  let lines = lines_of_string text in
  if Array.length lines = 0 then Null
  else begin
    let pos = ref 0 in
    let v = parse_block lines pos lines.(0).indent in
    if !pos < Array.length lines then
      fail lines.(!pos).no "trailing content at unexpected indentation";
    v
  end

(* ---------------------------------------------------------------- *)
(* Accessors                                                         *)
(* ---------------------------------------------------------------- *)

let find v key =
  match v with Map kvs -> List.assoc_opt key kvs | _ -> None

let get_string = function Str s -> Some s | _ -> None

let get_int = function Int i -> Some i | _ -> None

let get_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let get_bool = function Bool b -> Some b | _ -> None

let get_list = function List l -> Some l | _ -> None

(* ---------------------------------------------------------------- *)
(* Serialization (round-trippable within the subset)                  *)
(* ---------------------------------------------------------------- *)

let needs_quoting s =
  s = "" || s = "~" || s = "null" || s = "true" || s = "false"
  || int_of_string_opt s <> None
  || float_of_string_opt s <> None
  || String.exists (fun c -> c = ':' || c = '#' || c = '"' || c = '\'' || c = '\n') s
  || s.[0] = ' ' || s.[0] = '-' || s.[0] = '[' 
  || s.[String.length s - 1] = ' '

let scalar_to_yaml = function
  | Null -> "~"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
      (* Keep a decimal point so it reads back as a float. *)
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then s
      else s ^ ".0"
  | Str s -> if needs_quoting s then "\"" ^ s ^ "\"" else s
  | List _ | Map _ -> invalid_arg "scalar_to_yaml"

let serialize v =
  let buf = Buffer.create 256 in
  let pad n = String.make n ' ' in
  let all_scalars items =
    List.for_all
      (function Null | Bool _ | Int _ | Float _ | Str _ -> true | _ -> false)
      items
  in
  let flow_list items =
    "[" ^ String.concat ", " (List.map scalar_to_yaml items) ^ "]"
  in
  let rec emit_value indent v =
    (* Emits the value after "key:" or "- "; adds the final newline. *)
    match v with
    | Null | Bool _ | Int _ | Float _ | Str _ ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (scalar_to_yaml v);
        Buffer.add_char buf '\n'
    | List [] ->
        Buffer.add_string buf " []\n"
    | List items when all_scalars items ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (flow_list items);
        Buffer.add_char buf '\n'
    | List items ->
        Buffer.add_char buf '\n';
        List.iter (fun item -> emit_dash_item indent item) items
    | Map [] -> Buffer.add_string buf " ~\n"
    | Map kvs ->
        Buffer.add_char buf '\n';
        List.iter (fun (k, value) -> emit_entry (indent + 2) k value) kvs
  and emit_entry indent k value =
    Buffer.add_string buf (pad indent);
    Buffer.add_string buf (if needs_quoting k then "\"" ^ k ^ "\"" else k);
    Buffer.add_char buf ':';
    emit_value indent value
  and emit_dash_item indent item =
    Buffer.add_string buf (pad (indent + 2));
    Buffer.add_string buf "-";
    match item with
    | Null | Bool _ | Int _ | Float _ | Str _ | List _ ->
        (* Nested non-scalar lists fall back to flow/[] via emit_value;
           deeply nested block lists are outside the subset. *)
        emit_value (indent + 2) item
    | Map [] -> emit_value (indent + 2) item
    | Map ((k, value) :: rest) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (if needs_quoting k then "\"" ^ k ^ "\"" else k);
        Buffer.add_char buf ':';
        emit_value (indent + 2) value;
        List.iter (fun (k, value) -> emit_entry (indent + 4) k value) rest
  in
  (match v with
  | Map kvs -> List.iter (fun (k, value) -> emit_entry 0 k value) kvs
  | List [] -> Buffer.add_string buf "[]\n"
  | List items when all_scalars items ->
      Buffer.add_string buf (flow_list items);
      Buffer.add_char buf '\n'
  | List items -> List.iter (fun item -> emit_dash_item (-2) item) items
  | scalar ->
      Buffer.add_string buf (scalar_to_yaml scalar);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str s -> Printf.sprintf "%S" s
  | List l -> "[" ^ String.concat ", " (List.map to_string l) ^ "]"
  | Map kvs ->
      "{"
      ^ String.concat ", " (List.map (fun (k, v) -> k ^ ": " ^ to_string v) kvs)
      ^ "}"
