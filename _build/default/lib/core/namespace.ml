type t = {
  by_mount : (string, Stack.t) Hashtbl.t;
  by_id : (int, Stack.t) Hashtbl.t;
  mutable next_id : int;
}

let create () = { by_mount = Hashtbl.create 16; by_id = Hashtbl.create 16; next_id = 1 }

let mount t registry spec =
  let mountpoint = spec.Stack_spec.mount in
  if Hashtbl.mem t.by_mount mountpoint then
    Error (Printf.sprintf "mount point %S already in use" mountpoint)
  else
    match Stack.instantiate registry spec ~id:t.next_id with
    | Error _ as e -> e
    | Ok stack ->
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.by_mount mountpoint stack;
        Hashtbl.replace t.by_id stack.Stack.id stack;
        Ok stack

let unmount t mountpoint =
  match Hashtbl.find_opt t.by_mount mountpoint with
  | None -> Error (Printf.sprintf "nothing mounted at %S" mountpoint)
  | Some stack ->
      Hashtbl.remove t.by_mount mountpoint;
      Hashtbl.remove t.by_id stack.Stack.id;
      Ok ()

let lookup t mountpoint = Hashtbl.find_opt t.by_mount mountpoint

let stack_by_id t id = Hashtbl.find_opt t.by_id id

let parent path =
  match String.rindex_opt path '/' with
  | Some i when i > 0 -> Some (String.sub path 0 i)
  | Some 0 -> if String.length path > 1 then Some "/" else None
  | _ -> None

let rec resolve t path =
  match lookup t path with
  | Some s -> Some s
  | None -> (
      match parent path with Some p -> resolve t p | None -> None)

let modify_stack t registry spec =
  let mountpoint = spec.Stack_spec.mount in
  match Hashtbl.find_opt t.by_mount mountpoint with
  | None -> Error (Printf.sprintf "nothing mounted at %S" mountpoint)
  | Some stack -> (
      match Stack.update_spec stack registry spec with
      | Error _ as e -> e
      | Ok fresh ->
          Hashtbl.replace t.by_mount mountpoint fresh;
          Hashtbl.replace t.by_id fresh.Stack.id fresh;
          Ok fresh)

let mounts t = Hashtbl.fold (fun k _ acc -> k :: acc) t.by_mount []

let stacks t = Hashtbl.fold (fun _ s acc -> s :: acc) t.by_mount []
