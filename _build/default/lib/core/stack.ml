type t = {
  id : int;
  mount : string;
  spec : Stack_spec.t;
  exec_mode : Stack_spec.exec_mode;
}

let ( let* ) r f = Result.bind r f

let mod_type_of registry name =
  match Registry.find_factory registry name with
  | None -> None
  | Some factory ->
      (* Probe the factory for its module type without registering. *)
      let probe = factory ~uuid:"__probe__" ~attrs:[] in
      Some probe.Labmod.mod_type

let instantiate registry spec ~id =
  let* () = Stack_spec.validate spec ~mod_type_of:(mod_type_of registry) in
  let* () =
    List.fold_left
      (fun acc (v : Stack_spec.vertex) ->
        let* () = acc in
        let* _m =
          Registry.instantiate registry ~mod_name:v.mod_name ~uuid:v.uuid
            ~attrs:v.attrs
        in
        Ok ())
      (Ok ()) spec.Stack_spec.dag
  in
  Ok { id; mount = spec.Stack_spec.mount; spec; exec_mode = spec.Stack_spec.rules.Stack_spec.exec_mode }

let entry_uuid t = (Stack_spec.entry t.spec).Stack_spec.uuid

let vertex t uuid = Stack_spec.find_vertex t.spec uuid

let next_uuids t uuid =
  match vertex t uuid with
  | Some v -> List.filter (fun o -> not (String.contains o ':')) v.Stack_spec.outputs
  | None -> []

let mods t registry =
  List.filter_map
    (fun (v : Stack_spec.vertex) -> Registry.find registry v.uuid)
    t.spec.Stack_spec.dag

let update_spec t registry spec =
  let* fresh = instantiate registry { spec with Stack_spec.mount = t.mount } ~id:t.id in
  Ok { fresh with exec_mode = spec.Stack_spec.rules.Stack_spec.exec_mode }
