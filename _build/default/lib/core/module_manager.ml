open Lab_sim
open Lab_ipc

type kind = Centralized | Decentralized

type upgrade = {
  target : string;
  factory : Registry.factory;
  code_bytes : int;
  kind : kind;
}

type t = {
  machine : Machine.t;
  registry : Registry.t;
  load_code : thread:int -> bytes:int -> unit;
  queue : upgrade Queue.t;
  mutable published : (int * upgrade) list;  (* decentralized: (epoch, u), newest first *)
  mutable current_epoch : int;
  mutable applied : int;
}

let create machine registry ~load_code =
  {
    machine;
    registry;
    load_code;
    queue = Queue.create ();
    published = [];
    current_epoch = 0;
    applied = 0;
  }

let submit_upgrade t u =
  match u.kind with
  | Centralized -> Queue.add u t.queue
  | Decentralized ->
      t.current_epoch <- t.current_epoch + 1;
      t.published <- (t.current_epoch, u) :: t.published

let pending t = Queue.length t.queue

let epoch t = t.current_epoch

let upgrades_applied t = t.applied

(* Rebuild one registry instance from new code, carrying state over. *)
let swap_instance t ~thread u (old_mod : Labmod.t) =
  t.load_code ~thread ~bytes:u.code_bytes;
  let fresh = u.factory ~uuid:old_mod.Labmod.uuid ~attrs:[] in
  fresh.Labmod.state <- fresh.Labmod.ops.Labmod.state_update old_mod.Labmod.state;
  fresh.Labmod.version <- old_mod.Labmod.version + 1;
  Registry.replace t.registry fresh;
  t.applied <- t.applied + 1

let wait_for t cond =
  let rec loop () =
    if not (cond ()) then begin
      Engine.wait 10_000.0;
      loop ()
    end
  in
  ignore t;
  loop ()

let process_centralized t ~thread ~primary_qps ~all_acked ~intermediate_idle =
  if not (Queue.is_empty t.queue) then begin
    (* 1. Pause the world: mark primary queues. *)
    List.iter (fun qp -> Qp.set_mark qp Qp.Update_pending) primary_qps;
    (* 2. Workers acknowledge; intermediate requests drain. *)
    wait_for t all_acked;
    wait_for t intermediate_idle;
    (* 3. Apply every queued upgrade to every matching instance. *)
    while not (Queue.is_empty t.queue) do
      let u = Queue.pop t.queue in
      List.iter
        (fun old_mod -> swap_instance t ~thread u old_mod)
        (Registry.instances_of_name t.registry u.target)
    done;
    (* 4. Resume request flow. *)
    List.iter (fun qp -> Qp.set_mark qp Qp.Normal) primary_qps
  end

let client_pending_upgrades t ~since_epoch =
  List.rev
    (List.filter_map
       (fun (e, u) -> if e > since_epoch then Some u else None)
       t.published)

(* A client that rebuilt an instance locally must publish the new
   entrypoints back to the Module Manager (registry update under its
   lock) — the overhead that makes decentralized upgrades slightly
   slower than centralized ones in Table I. *)
let client_reregistration_ns = 1.2e6

let apply_client_upgrade t ~thread ~local u =
  t.load_code ~thread ~bytes:u.code_bytes;
  Machine.compute t.machine ~thread client_reregistration_ns;
  let fresh = u.factory ~uuid:local.Labmod.uuid ~attrs:[] in
  fresh.Labmod.state <- fresh.Labmod.ops.Labmod.state_update local.Labmod.state;
  fresh.Labmod.version <- local.Labmod.version + 1;
  t.applied <- t.applied + 1;
  fresh
