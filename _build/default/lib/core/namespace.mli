(** LabStack Namespace: the shared-memory key-value store mapping mount
    points to LabStack DAGs, with the longest-prefix path resolution
    GenericFS uses ("fs::/b/hi.txt" resolves to the stack mounted at
    "fs::/b"). *)

type t

val create : unit -> t

val mount : t -> Registry.t -> Stack_spec.t -> (Stack.t, string) result
(** Registers a new LabStack. Fails if the mount point is taken. *)

val unmount : t -> string -> (unit, string) result

val lookup : t -> string -> Stack.t option
(** Exact mount-point lookup. *)

val stack_by_id : t -> int -> Stack.t option

val resolve : t -> string -> Stack.t option
(** Longest-prefix resolution: tries the full path, then each parent
    ("a::/x/y/z" → "a::/x/y" → "a::/x" → "a::/"). *)

val modify_stack : t -> Registry.t -> Stack_spec.t -> (Stack.t, string) result
(** Replaces the DAG of the stack mounted at the spec's mount point;
    vertices with persisting UUIDs keep their state. *)

val mounts : t -> string list

val stacks : t -> Stack.t list
