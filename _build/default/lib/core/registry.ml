type factory = uuid:string -> attrs:(string * Yamlite.t) list -> Labmod.t

type t = {
  factories : (string, factory) Hashtbl.t;
  by_uuid : (string, Labmod.t) Hashtbl.t;
}

let create () = { factories = Hashtbl.create 32; by_uuid = Hashtbl.create 64 }

let register_factory t ~name factory = Hashtbl.replace t.factories name factory

let unregister_factory t ~name = Hashtbl.remove t.factories name

let find_factory t name = Hashtbl.find_opt t.factories name

let factory_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.factories []

let instantiate t ~mod_name ~uuid ~attrs =
  match Hashtbl.find_opt t.by_uuid uuid with
  | Some existing -> Ok existing
  | None -> (
      match find_factory t mod_name with
      | None -> Error (Printf.sprintf "no LabMod implementation named %S" mod_name)
      | Some factory ->
          let m = factory ~uuid ~attrs in
          Hashtbl.replace t.by_uuid uuid m;
          Ok m)

let find t uuid = Hashtbl.find_opt t.by_uuid uuid

let replace t m = Hashtbl.replace t.by_uuid m.Labmod.uuid m

let remove t uuid = Hashtbl.remove t.by_uuid uuid

let instances t = Hashtbl.fold (fun _ m acc -> m :: acc) t.by_uuid []

let instances_of_name t name =
  List.filter (fun m -> m.Labmod.name = name) (instances t)
