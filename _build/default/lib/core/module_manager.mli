(** Module Manager: holds the upgrade queue and implements the live
    upgrade protocols (§III-C2).

    {b Centralized} upgrades replace instances inside the Runtime: the
    admin marks every primary queue [Update_pending]; workers observing
    the mark pause the queue and set [Update_acked]; once all primary
    queues are paused and intermediate requests drained, each affected
    instance is rebuilt from the new code with its state carried over by
    [state_update]; queues are then unmarked.

    {b Decentralized} upgrades target instances living in client address
    spaces: the manager publishes a new epoch; each client applies the
    pending upgrades (paying the code-load cost locally) at its next
    request boundary. *)

type kind = Centralized | Decentralized

type upgrade = {
  target : string;  (** implementation name to upgrade *)
  factory : Registry.factory;  (** the new code *)
  code_bytes : int;  (** size of the module binary to load *)
  kind : kind;
}

type t

val create :
  Lab_sim.Machine.t ->
  Registry.t ->
  load_code:(thread:int -> bytes:int -> unit) ->
  t
(** [load_code] models fetching the new module binary from storage and
    linking it (the dominant upgrade cost measured in Table I). *)

val submit_upgrade : t -> upgrade -> unit
(** The modify_mods API: enqueue an upgrade request. *)

val pending : t -> int
(** Queued upgrades not yet processed (centralized only). *)

val epoch : t -> int
(** Decentralized upgrade epoch; clients compare against their local
    epoch. *)

val upgrades_applied : t -> int

val process_centralized :
  t ->
  thread:int ->
  primary_qps:Request.t Lab_ipc.Qp.t list ->
  all_acked:(unit -> bool) ->
  intermediate_idle:(unit -> bool) ->
  unit
(** Runs the centralized protocol over any queued centralized upgrades.
    [all_acked] reports whether every marked primary queue has been
    acknowledged by its worker; [intermediate_idle] whether intermediate
    requests have drained. Must run inside a simulated process. *)

val client_pending_upgrades : t -> since_epoch:int -> upgrade list
(** Decentralized upgrades published after the client's epoch. *)

val apply_client_upgrade : t -> thread:int -> local:Labmod.t -> upgrade -> Labmod.t
(** Rebuilds a client-local instance from new code, transferring state;
    charges the load cost on the client thread. *)
