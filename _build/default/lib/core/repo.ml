type trust = Trusted | Untrusted

type repo = { owner_uid : int; trust : trust; mod_names : string list }

type t = {
  runtime_uid : int;
  max_repos_per_user : int;
  table : (string, repo) Hashtbl.t;
}

let create ~runtime_uid ?(max_repos_per_user = 8) () =
  if max_repos_per_user <= 0 then invalid_arg "Repo.create: quota";
  { runtime_uid; max_repos_per_user; table = Hashtbl.create 8 }

let repos t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table []

let trust_of_repo t name =
  Option.map (fun r -> r.trust) (Hashtbl.find_opt t.table name)

let trust_of_mod t mod_name =
  let provided =
    Hashtbl.fold
      (fun _ r acc ->
        match acc with
        | Some _ -> acc
        | None -> if List.mem mod_name r.mod_names then Some r.trust else None)
      t.table None
  in
  Option.value provided ~default:Trusted

let repos_owned_by t uid =
  Hashtbl.fold (fun _ r acc -> if r.owner_uid = uid then acc + 1 else acc) t.table 0

let mount_repo t registry ~name ~owner_uid ~mods =
  if Hashtbl.mem t.table name then
    Error (Printf.sprintf "repo %S already mounted" name)
  else if repos_owned_by t owner_uid >= t.max_repos_per_user then
    Error
      (Printf.sprintf "uid %d exceeds the configured repo quota (%d)" owner_uid
         t.max_repos_per_user)
  else begin
    let collision =
      List.find_opt (fun (n, _) -> Registry.find_factory registry n <> None) mods
    in
    match collision with
    | Some (n, _) ->
        Error (Printf.sprintf "implementation %S is already installed" n)
    | None ->
        let trust = if owner_uid = t.runtime_uid then Trusted else Untrusted in
        List.iter (fun (n, f) -> Registry.register_factory registry ~name:n f) mods;
        Hashtbl.replace t.table name
          { owner_uid; trust; mod_names = List.map fst mods };
        Ok trust
  end

let unmount_repo t registry ~name =
  match Hashtbl.find_opt t.table name with
  | None -> Error (Printf.sprintf "no repo named %S" name)
  | Some r ->
      List.iter (fun n -> Registry.unregister_factory registry ~name:n) r.mod_names;
      Hashtbl.remove t.table name;
      Ok ()

let validate_stack_trust t (spec : Stack_spec.t) =
  match spec.Stack_spec.rules.Stack_spec.exec_mode with
  | Stack_spec.Sync -> Ok ()
  | Stack_spec.Async -> (
      let untrusted =
        List.find_opt
          (fun (v : Stack_spec.vertex) -> trust_of_mod t v.mod_name = Untrusted)
          spec.Stack_spec.dag
      in
      match untrusted with
      | None -> Ok ()
      | Some v ->
          Error
            (Printf.sprintf
               "%s (%s) comes from an untrusted repo: it must execute in a \
                separate address space from the Runtime (exec_mode: sync)"
               v.Stack_spec.uuid v.Stack_spec.mod_name))
