open Lab_sim

type md_ops = {
  md_create : thread:int -> string -> unit;
  md_extend : thread:int -> string -> unit;
  md_lookup : thread:int -> string -> unit;
}

type data_ops = {
  srv_write : server:int -> off:int -> bytes:int -> unit;
  srv_read : server:int -> off:int -> bytes:int -> unit;
}

type config = {
  stripe_bytes : int;
  nservers : int;
  net_latency_ns : float;
  net_bw_bytes_per_ns : float;
  stripes_per_md_op : int;
}

let default_config =
  {
    stripe_bytes = 65536;
    nservers = 4;
    net_latency_ns = 12_000.0;
    net_bw_bytes_per_ns = 1.25;  (* 10 GbE per server link *)
    stripes_per_md_op = 1;
  }

type t = {
  machine : Machine.t;
  cfg : config;
  md : md_ops;
  data : data_ops;
  links : Semaphore.t array;
  md_link : Semaphore.t;
  mutable md_wall_ns : float;
  mutable md_op_count : int;
}

let create machine ?(config = default_config) md data =
  {
    machine;
    cfg = config;
    md;
    data;
    links = Array.init config.nservers (fun _ -> Semaphore.create 1);
    md_link = Semaphore.create 1;
    md_wall_ns = 0.0;
    md_op_count = 0;
  }

let md_time_ns t = t.md_wall_ns

(* One round trip to the metadata server. *)
let md_rpc t ~thread op path =
  let t0 = Machine.now t.machine in
  Engine.wait t.cfg.net_latency_ns;
  Semaphore.acquire t.md_link;
  (match op with
  | `Create -> t.md.md_create ~thread path
  | `Extend -> t.md.md_extend ~thread path
  | `Lookup -> t.md.md_lookup ~thread path);
  Semaphore.release t.md_link;
  Engine.wait t.cfg.net_latency_ns;
  t.md_op_count <- t.md_op_count + 1;
  t.md_wall_ns <- t.md_wall_ns +. (Machine.now t.machine -. t0)

let transfer t ~server bytes =
  Engine.wait t.cfg.net_latency_ns;
  Semaphore.acquire t.links.(server);
  Engine.wait (Stdlib.float_of_int bytes /. t.cfg.net_bw_bytes_per_ns);
  Semaphore.release t.links.(server)

let stripes_of t bytes = (bytes + t.cfg.stripe_bytes - 1) / t.cfg.stripe_bytes

let write_file t ~thread ~path ~bytes =
  md_rpc t ~thread `Create path;
  let stripes = stripes_of t bytes in
  for si = 0 to stripes - 1 do
    if si mod t.cfg.stripes_per_md_op = 0 then md_rpc t ~thread `Extend path;
    let server = si mod t.cfg.nservers in
    let chunk =
      Stdlib.min t.cfg.stripe_bytes (bytes - (si * t.cfg.stripe_bytes))
    in
    transfer t ~server chunk;
    t.data.srv_write ~server ~off:(si * t.cfg.stripe_bytes) ~bytes:chunk
  done

let read_file t ~thread ~path ~bytes =
  md_rpc t ~thread `Lookup path;
  let stripes = stripes_of t bytes in
  for si = 0 to stripes - 1 do
    if si mod t.cfg.stripes_per_md_op = 0 then md_rpc t ~thread `Lookup path;
    let server = si mod t.cfg.nservers in
    let chunk =
      Stdlib.min t.cfg.stripe_bytes (bytes - (si * t.cfg.stripe_bytes))
    in
    t.data.srv_read ~server ~off:(si * t.cfg.stripe_bytes) ~bytes:chunk;
    transfer t ~server chunk
  done

type result = {
  elapsed_ns : float;
  total_bytes : int;
  bandwidth_mib_s : float;
  md_ops : int;
}

let run_procs t ~procs body =
  let finished = ref 0 in
  Engine.suspend (fun resume ->
      for p = 0 to procs - 1 do
        Engine.spawn t.machine.Machine.engine (fun () ->
            body p;
            incr finished;
            if !finished = procs then resume ())
      done)

let vpic t ~procs ~steps ~bytes_per_proc_step =
  let t0 = Machine.now t.machine in
  let md0 = t.md_op_count in
  run_procs t ~procs (fun p ->
      for step = 1 to steps do
        write_file t ~thread:p
          ~path:(Printf.sprintf "pfs::/vpic/step%d/proc%d" step p)
          ~bytes:bytes_per_proc_step
      done);
  let elapsed = Machine.now t.machine -. t0 in
  let total = procs * steps * bytes_per_proc_step in
  {
    elapsed_ns = elapsed;
    total_bytes = total;
    bandwidth_mib_s =
      (if elapsed > 0.0 then
         Stdlib.float_of_int total /. (elapsed /. 1e9) /. (1024.0 *. 1024.0)
       else 0.0);
    md_ops = t.md_op_count - md0;
  }

let bdcats t ~procs ~steps ~bytes_per_proc_step =
  let t0 = Machine.now t.machine in
  let md0 = t.md_op_count in
  run_procs t ~procs (fun p ->
      for step = 1 to steps do
        read_file t ~thread:p
          ~path:(Printf.sprintf "pfs::/vpic/step%d/proc%d" step p)
          ~bytes:bytes_per_proc_step
      done);
  let elapsed = Machine.now t.machine -. t0 in
  let total = procs * steps * bytes_per_proc_step in
  {
    elapsed_ns = elapsed;
    total_bytes = total;
    bandwidth_mib_s =
      (if elapsed > 0.0 then
         Stdlib.float_of_int total /. (elapsed /. 1e9) /. (1024.0 *. 1024.0)
       else 0.0);
    md_ops = t.md_op_count - md0;
  }
