(** FxMark-style filesystem metadata microbenchmarks (file creation
    stress, the paper's Figure 7 workload). *)

type fs_ops = {
  create : thread:int -> string -> unit;
  unlink : thread:int -> string -> unit;
  rename : thread:int -> src:string -> dst:string -> unit;
}

type result = {
  ops : int;
  elapsed_ns : float;
  ops_per_sec : float;
}

val run_create :
  Lab_sim.Machine.t ->
  nthreads:int ->
  files_per_thread:int ->
  shared_dir:bool ->
  fs_ops ->
  result
(** Each thread creates [files_per_thread] files, either all in one
    shared directory (maximum contention, MWCM) or in per-thread private
    directories (MWCL). Must run inside a simulated process. *)

val run_mixed :
  Lab_sim.Machine.t ->
  nthreads:int ->
  ops_per_thread:int ->
  fs_ops ->
  result
(** Create / rename / unlink mix (60/20/20) in a shared directory. *)
