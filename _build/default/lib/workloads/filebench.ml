open Lab_sim

type fs_ops = {
  create : thread:int -> string -> unit;
  write : thread:int -> string -> off:int -> bytes:int -> unit;
  read : thread:int -> string -> off:int -> bytes:int -> unit;
  fsync : thread:int -> string -> unit;
  delete : thread:int -> string -> unit;
  open_ : thread:int -> string -> unit;
  close : thread:int -> string -> unit;
}

type personality = Varmail | Webserver | Webproxy | Fileserver

let personality_name = function
  | Varmail -> "varmail"
  | Webserver -> "webserver"
  | Webproxy -> "webproxy"
  | Fileserver -> "fileserver"

let all = [ Varmail; Webserver; Webproxy; Fileserver ]

type result = {
  ops : int;
  elapsed_ns : float;
  ops_per_sec : float;
  mib_per_sec : float;
}

(* Fileset sizes follow the filebench default personalities, scaled
   down ~10x for simulation time. *)
type profile = {
  fileset : int;
  file_bytes : int;
  append_bytes : int;
}

let profile_of = function
  | Varmail -> { fileset = 100; file_bytes = 16384; append_bytes = 16384 }
  | Webserver -> { fileset = 100; file_bytes = 16384; append_bytes = 8192 }
  | Webproxy -> { fileset = 100; file_bytes = 16384; append_bytes = 16384 }
  | Fileserver -> { fileset = 50; file_bytes = 131072; append_bytes = 16384 }

let file_name th i = Printf.sprintf "/fileset/t%d-f%d" th i

(* One personality loop iteration; returns (ops, bytes moved). *)
let iteration personality profile ops ~thread ~rng ~iter =
  let pick () = file_name thread (1 + Rng.int rng profile.fileset) in
  match personality with
  | Varmail ->
      (* delete, create+append+fsync, open+append+fsync, open+read+close *)
      let victim = pick () in
      ops.delete ~thread victim;
      ops.create ~thread victim;
      ops.write ~thread victim ~off:0 ~bytes:profile.append_bytes;
      ops.fsync ~thread victim;
      let f2 = pick () in
      ops.open_ ~thread f2;
      ops.write ~thread f2 ~off:profile.file_bytes ~bytes:profile.append_bytes;
      ops.fsync ~thread f2;
      ops.close ~thread f2;
      let f3 = pick () in
      ops.open_ ~thread f3;
      ops.read ~thread f3 ~off:0 ~bytes:profile.file_bytes;
      ops.close ~thread f3;
      (11, (2 * profile.append_bytes) + profile.file_bytes)
  | Webserver ->
      (* 10 whole-file reads + a log append *)
      let bytes = ref 0 in
      for _ = 1 to 10 do
        let f = pick () in
        ops.open_ ~thread f;
        ops.read ~thread f ~off:0 ~bytes:profile.file_bytes;
        ops.close ~thread f;
        bytes := !bytes + profile.file_bytes
      done;
      let log = Printf.sprintf "/fileset/log-%d" thread in
      ops.write ~thread log ~off:(iter * profile.append_bytes)
        ~bytes:profile.append_bytes;
      (31, !bytes + profile.append_bytes)
  | Webproxy ->
      (* delete, create+append, 5 opens+reads, log append *)
      let victim = pick () in
      ops.delete ~thread victim;
      ops.create ~thread victim;
      ops.write ~thread victim ~off:0 ~bytes:profile.append_bytes;
      let bytes = ref profile.append_bytes in
      for _ = 1 to 5 do
        let f = pick () in
        ops.open_ ~thread f;
        ops.read ~thread f ~off:0 ~bytes:profile.file_bytes;
        ops.close ~thread f;
        bytes := !bytes + profile.file_bytes
      done;
      let log = Printf.sprintf "/fileset/log-%d" thread in
      ops.write ~thread log ~off:(iter * profile.append_bytes)
        ~bytes:profile.append_bytes;
      (19, !bytes + profile.append_bytes)
  | Fileserver ->
      (* create+write whole file, append, whole read, delete *)
      let f = Printf.sprintf "/fileset/t%d-new%d" thread iter in
      ops.create ~thread f;
      ops.write ~thread f ~off:0 ~bytes:profile.file_bytes;
      let f2 = pick () in
      ops.open_ ~thread f2;
      ops.write ~thread f2 ~off:profile.file_bytes ~bytes:profile.append_bytes;
      ops.close ~thread f2;
      let f3 = pick () in
      ops.open_ ~thread f3;
      ops.read ~thread f3 ~off:0 ~bytes:profile.file_bytes;
      ops.close ~thread f3;
      ops.delete ~thread f;
      (9, (2 * profile.file_bytes) + profile.append_bytes)

let run machine personality ?(nthreads = 8) ?(iterations = 50) ops =
  let profile = profile_of personality in
  (* Pre-populate the fileset (not timed). *)
  Engine.suspend (fun resume ->
      Engine.spawn machine.Machine.engine (fun () ->
          for th = 0 to nthreads - 1 do
            for i = 1 to profile.fileset do
              ops.create ~thread:th (file_name th i);
              ops.write ~thread:th (file_name th i) ~off:0 ~bytes:profile.file_bytes
            done;
            ops.create ~thread:th (Printf.sprintf "/fileset/log-%d" th)
          done;
          resume ()));
  let total_ops = ref 0 and total_bytes = ref 0 in
  let t0 = Machine.now machine in
  let finished = ref 0 in
  Engine.suspend (fun resume ->
      for th = 0 to nthreads - 1 do
        Engine.spawn machine.Machine.engine (fun () ->
            let rng = Rng.create (0xF11E + th) in
            for iter = 1 to iterations do
              let ops_done, bytes =
                iteration personality profile ops ~thread:th ~rng ~iter
              in
              total_ops := !total_ops + ops_done;
              total_bytes := !total_bytes + bytes
            done;
            incr finished;
            if !finished = nthreads then resume ())
      done);
  let elapsed = Machine.now machine -. t0 in
  {
    ops = !total_ops;
    elapsed_ns = elapsed;
    ops_per_sec =
      (if elapsed > 0.0 then Stdlib.float_of_int !total_ops /. (elapsed /. 1e9)
       else 0.0);
    mib_per_sec =
      (if elapsed > 0.0 then
         Stdlib.float_of_int !total_bytes /. (elapsed /. 1e9) /. (1024.0 *. 1024.0)
       else 0.0);
  }
