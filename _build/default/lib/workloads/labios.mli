(** LABIOS distributed object-store worker model (§IV-C).

    LABIOS stores "labels" — its data representation. A worker persists
    labels through a backend: the classical path translates each label
    to a UNIX file and pays an open/seek/write/close sequence; LabKVS
    persists a label with a single put. *)

type backend = {
  name : string;
  put_label : thread:int -> key:string -> bytes:int -> unit;
  get_label : thread:int -> key:string -> unit;
}

val file_backend :
  name:string ->
  open_:(thread:int -> string -> unit) ->
  seek:(thread:int -> string -> int -> unit) ->
  write:(thread:int -> string -> off:int -> bytes:int -> unit) ->
  read:(thread:int -> string -> off:int -> bytes:int -> unit) ->
  close:(thread:int -> string -> unit) ->
  backend
(** Wraps POSIX-style callbacks into the label interface, issuing the
    4-call sequence per label the paper describes. *)

type result = {
  labels : int;
  elapsed_ns : float;
  labels_per_sec : float;
  mib_per_sec : float;
}

val run_worker :
  Lab_sim.Machine.t ->
  backend ->
  ?nthreads:int ->
  ?labels_per_thread:int ->
  ?label_bytes:int ->
  ?read_fraction:float ->
  unit ->
  result
(** Defaults: 1 thread, 2000 labels, 8 KiB labels, write-only —
    the paper's LABIOS experiment configuration. *)
