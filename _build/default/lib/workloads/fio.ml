open Lab_sim
open Lab_core

type pattern = Randwrite | Randread | Seqwrite | Seqread

type job = {
  name : string;
  pattern : pattern;
  block_bytes : int;
  total_bytes_per_thread : int;
  iodepth : int;
  nthreads : int;
  runtime_ns : float option;
  region_bytes : int;
}

let default_job =
  {
    name = "job";
    pattern = Randwrite;
    block_bytes = 4096;
    total_bytes_per_thread = 16 * 1024 * 1024;
    iodepth = 1;
    nthreads = 1;
    runtime_ns = None;
    region_bytes = 1 lsl 30;
  }

type io_target = {
  submit : thread:int -> kind:Request.io_kind -> off:int -> bytes:int -> unit;
  submit_batch :
    thread:int -> kind:Request.io_kind -> offs:int array -> bytes:int -> unit;
}

let target_of_submit submit =
  {
    submit;
    submit_batch =
      (fun ~thread ~kind ~offs ~bytes ->
        Array.iter (fun off -> submit ~thread ~kind ~off ~bytes) offs);
  }

type result = {
  ops : int;
  elapsed_ns : float;
  iops : float;
  bandwidth_mib_s : float;
  latency : Stats.t;
}

let kind_of = function
  | Randwrite | Seqwrite -> Request.Write
  | Randread | Seqread -> Request.Read

let run machine job target =
  if job.nthreads <= 0 || job.iodepth <= 0 || job.block_bytes <= 0 then
    invalid_arg "Fio.run: bad job";
  let latency = Stats.create () in
  let total_ops = ref 0 in
  let kind = kind_of job.pattern in
  let t0 = Machine.now machine in
  let deadline = Option.map (fun d -> t0 +. d) job.runtime_ns in
  let finished = ref 0 in
  Engine.suspend (fun resume ->
      for th = 0 to job.nthreads - 1 do
        Engine.spawn machine.Machine.engine (fun () ->
            let rng = Rng.create (0x5EED + th) in
            let region_blocks =
              Stdlib.max 1 (job.region_bytes / job.block_bytes)
            in
            let next_seq = ref 0 in
            let next_off () =
              match job.pattern with
              | Randwrite | Randread ->
                  (Rng.int rng region_blocks * job.block_bytes)
                  + (th * job.region_bytes)
              | Seqwrite | Seqread ->
                  let off =
                    (!next_seq mod region_blocks * job.block_bytes)
                    + (th * job.region_bytes)
                  in
                  incr next_seq;
                  off
            in
            let ops_budget =
              if deadline = None then
                Stdlib.max 1 (job.total_bytes_per_thread / job.block_bytes)
              else max_int
            in
            let issued = ref 0 in
            let expired () =
              match deadline with
              | Some d -> Machine.now machine >= d
              | None -> false
            in
            while !issued < ops_budget && not (expired ()) do
              if job.iodepth = 1 then begin
                let start = Machine.now machine in
                target.submit ~thread:th ~kind ~off:(next_off ())
                  ~bytes:job.block_bytes;
                Stats.add latency (Machine.now machine -. start);
                incr issued;
                incr total_ops
              end
              else begin
                let n = Stdlib.min job.iodepth (ops_budget - !issued) in
                let offs = Array.init n (fun _ -> next_off ()) in
                let start = Machine.now machine in
                target.submit_batch ~thread:th ~kind ~offs ~bytes:job.block_bytes;
                let per_slot = (Machine.now machine -. start) /. Stdlib.float_of_int n in
                for _ = 1 to n do
                  Stats.add latency per_slot
                done;
                issued := !issued + n;
                total_ops := !total_ops + n
              end
            done;
            incr finished;
            if !finished = job.nthreads then resume ())
      done);
  let elapsed = Machine.now machine -. t0 in
  let ops = !total_ops in
  {
    ops;
    elapsed_ns = elapsed;
    iops = (if elapsed > 0.0 then Stdlib.float_of_int ops /. (elapsed /. 1e9) else 0.0);
    bandwidth_mib_s =
      (if elapsed > 0.0 then
         Stdlib.float_of_int ops
         *. Stdlib.float_of_int job.block_bytes
         /. (elapsed /. 1e9) /. (1024.0 *. 1024.0)
       else 0.0);
    latency;
  }
