(** Parallel-filesystem model (OrangeFS-style) plus the VPIC and
    BD-CATS workloads of §IV-C.

    Files are striped across data servers; a dedicated metadata server
    tracks files and stripe placement. The local I/O stack of each
    server is supplied as callbacks, so the metadata server can be
    backed by a kernel filesystem or by a LabStor stack — the variable
    the paper's Figure 9(a) changes. Clients reach servers over a
    simple network model (per-message latency + per-server link
    bandwidth). *)

type md_ops = {
  md_create : thread:int -> string -> unit;  (** new file *)
  md_extend : thread:int -> string -> unit;
      (** stripe-map insert on the write path (a keyval put in
          OrangeFS's dbpf — as expensive as a create) *)
  md_lookup : thread:int -> string -> unit;  (** read-path resolution *)
}

type data_ops = {
  srv_write : server:int -> off:int -> bytes:int -> unit;
  srv_read : server:int -> off:int -> bytes:int -> unit;
}

type config = {
  stripe_bytes : int;  (** default 64 KiB *)
  nservers : int;
  net_latency_ns : float;
  net_bw_bytes_per_ns : float;  (** per server link *)
  stripes_per_md_op : int;  (** stripe-map batching at the MD server *)
}

val default_config : config

type t

val create : Lab_sim.Machine.t -> ?config:config -> md_ops -> data_ops -> t

val write_file : t -> thread:int -> path:string -> bytes:int -> unit
(** Creates the file at the metadata server, then streams stripes
    round-robin to the data servers, consulting the MD server every
    [stripes_per_md_op] stripes. *)

val read_file : t -> thread:int -> path:string -> bytes:int -> unit

val md_time_ns : t -> float
(** Cumulative wall time spent inside metadata operations (across all
    clients), for the time-split analysis. *)

type result = {
  elapsed_ns : float;
  total_bytes : int;
  bandwidth_mib_s : float;
  md_ops : int;
}

val vpic :
  t -> procs:int -> steps:int -> bytes_per_proc_step:int -> result
(** VPIC particle-simulation checkpoint pattern: every process writes
    its particle data each timestep. Must run inside a process. *)

val bdcats : t -> procs:int -> steps:int -> bytes_per_proc_step:int -> result
(** BD-CATS parallel clustering: reads the dataset VPIC produced. *)
