open Lab_kernel
open Lab_runtime

let kfs_filebench fs =
  {
    Filebench.create = (fun ~thread path -> Kfs.create fs ~thread path);
    write =
      (fun ~thread path ~off ~bytes ->
        Kfs.write fs ~thread path ~off ~bytes ~direct:false);
    read =
      (fun ~thread path ~off ~bytes ->
        Kfs.read fs ~thread path ~off ~bytes ~direct:false);
    fsync = (fun ~thread path -> Kfs.fsync fs ~thread path);
    delete =
      (fun ~thread path -> if Kfs.exists fs path then Kfs.unlink fs ~thread path);
    open_ =
      (fun ~thread path ->
        (* namei + fd setup *)
        if not (Kfs.exists fs path) then Kfs.create fs ~thread path
        else
          Lab_sim.Machine.compute (Kfs.machine fs) ~thread
            (Kfs.machine fs).Lab_sim.Machine.costs.Lab_sim.Costs.syscall_ns);
    close =
      (fun ~thread path ->
        ignore path;
        Lab_sim.Machine.compute (Kfs.machine fs) ~thread
          (Kfs.machine fs).Lab_sim.Machine.costs.Lab_sim.Costs.syscall_ns);
  }

let kfs_fxmark fs =
  {
    Fxmark.create = (fun ~thread path -> Kfs.create fs ~thread path);
    unlink =
      (fun ~thread path -> if Kfs.exists fs path then Kfs.unlink fs ~thread path);
    rename = (fun ~thread ~src ~dst -> Kfs.rename fs ~thread src dst);
  }

(* Client-side adapters keep a path → fd cache like an application's
   open-file table. *)
type fd_cache = (string, int) Hashtbl.t

let get_fd cache client path =
  match Hashtbl.find_opt cache path with
  | Some fd -> Some fd
  | None -> (
      match Client.open_file client ~create:true path with
      | Ok fd ->
          Hashtbl.replace cache path fd;
          Some fd
      | Error _ -> None)

let drop_fd cache client path =
  match Hashtbl.find_opt cache path with
  | Some fd ->
      ignore (Client.close client fd);
      Hashtbl.remove cache path
  | None -> ()

let client_filebench client ~prefix =
  let cache : fd_cache = Hashtbl.create 256 in
  let full path = prefix ^ path in
  {
    Filebench.create =
      (fun ~thread:_ path -> ignore (Client.create client (full path)));
    write =
      (fun ~thread:_ path ~off ~bytes ->
        match get_fd cache client (full path) with
        | Some fd -> ignore (Client.pwrite client ~fd ~off ~bytes)
        | None -> ());
    read =
      (fun ~thread:_ path ~off ~bytes ->
        match get_fd cache client (full path) with
        | Some fd -> ignore (Client.pread client ~fd ~off ~bytes)
        | None -> ());
    fsync =
      (fun ~thread:_ path ->
        match get_fd cache client (full path) with
        | Some fd -> ignore (Client.fsync client ~fd)
        | None -> ());
    delete =
      (fun ~thread:_ path ->
        drop_fd cache client (full path);
        ignore (Client.unlink client (full path)));
    open_ = (fun ~thread:_ path -> ignore (get_fd cache client (full path)));
    close = (fun ~thread:_ path -> drop_fd cache client (full path));
  }

let client_fxmark client ~prefix =
  let full path = prefix ^ path in
  {
    Fxmark.create = (fun ~thread:_ path -> ignore (Client.create client (full path)));
    unlink = (fun ~thread:_ path -> ignore (Client.unlink client (full path)));
    rename =
      (fun ~thread:_ ~src ~dst ->
        ignore (Client.rename client ~src:(full src) ~dst:(full dst)));
  }

let labios_file_backend_kfs fs =
  let m = Kfs.machine fs in
  let syscall ~thread =
    Lab_sim.Machine.compute m ~thread m.Lab_sim.Machine.costs.Lab_sim.Costs.syscall_ns
  in
  Labios.file_backend ~name:(Kfs.flavor_name (Kfs.flavor fs))
    ~open_:(fun ~thread key ->
      if not (Kfs.exists fs key) then Kfs.create fs ~thread key else syscall ~thread)
    ~seek:(fun ~thread _ _ -> syscall ~thread)
    ~write:(fun ~thread key ~off ~bytes ->
      Kfs.write fs ~thread key ~off ~bytes ~direct:false)
    ~read:(fun ~thread key ~off ~bytes ->
      Kfs.read fs ~thread key ~off ~bytes ~direct:false)
    ~close:(fun ~thread _ -> syscall ~thread)

let labios_file_backend_client client ~prefix =
  let cache : fd_cache = Hashtbl.create 256 in
  Labios.file_backend ~name:"labfs-file"
    ~open_:(fun ~thread:_ key -> ignore (get_fd cache client (prefix ^ key)))
    ~seek:(fun ~thread:_ _ _ -> ())
    ~write:(fun ~thread:_ key ~off ~bytes ->
      match get_fd cache client (prefix ^ key) with
      | Some fd -> ignore (Client.pwrite client ~fd ~off ~bytes)
      | None -> ())
    ~read:(fun ~thread:_ key ~off ~bytes ->
      match get_fd cache client (prefix ^ key) with
      | Some fd -> ignore (Client.pread client ~fd ~off ~bytes)
      | None -> ())
    ~close:(fun ~thread:_ key -> drop_fd cache client (prefix ^ key))

let labios_kvs_backend client =
  {
    Labios.name = "labkvs";
    put_label =
      (fun ~thread:_ ~key ~bytes -> ignore (Client.put client ~key ~bytes));
    get_label = (fun ~thread:_ ~key -> ignore (Client.get client ~key));
  }
