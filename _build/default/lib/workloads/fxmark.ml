open Lab_sim

type fs_ops = {
  create : thread:int -> string -> unit;
  unlink : thread:int -> string -> unit;
  rename : thread:int -> src:string -> dst:string -> unit;
}

type result = { ops : int; elapsed_ns : float; ops_per_sec : float }

let finish machine ~ops ~t0 =
  let elapsed = Machine.now machine -. t0 in
  {
    ops;
    elapsed_ns = elapsed;
    ops_per_sec =
      (if elapsed > 0.0 then Stdlib.float_of_int ops /. (elapsed /. 1e9) else 0.0);
  }

let parallel machine nthreads body =
  let finished = ref 0 in
  Engine.suspend (fun resume ->
      for th = 0 to nthreads - 1 do
        Engine.spawn machine.Machine.engine (fun () ->
            body th;
            incr finished;
            if !finished = nthreads then resume ())
      done)

let run_create machine ~nthreads ~files_per_thread ~shared_dir ops =
  if nthreads <= 0 || files_per_thread <= 0 then invalid_arg "Fxmark.run_create";
  let t0 = Machine.now machine in
  parallel machine nthreads (fun th ->
      for i = 1 to files_per_thread do
        let path =
          if shared_dir then Printf.sprintf "/shared/t%d-f%d" th i
          else Printf.sprintf "/private-%d/f%d" th i
        in
        ops.create ~thread:th path
      done);
  finish machine ~ops:(nthreads * files_per_thread) ~t0

let run_mixed machine ~nthreads ~ops_per_thread ops =
  if nthreads <= 0 || ops_per_thread <= 0 then invalid_arg "Fxmark.run_mixed";
  let t0 = Machine.now machine in
  parallel machine nthreads (fun th ->
      let created = ref [] in
      let counter = ref 0 in
      for i = 1 to ops_per_thread do
        let roll = i mod 5 in
        if roll < 3 || !created = [] then begin
          incr counter;
          let path = Printf.sprintf "/shared/t%d-m%d" th !counter in
          ops.create ~thread:th path;
          created := path :: !created
        end
        else if roll = 3 then begin
          match !created with
          | p :: rest ->
              let dst = p ^ ".r" in
              ops.rename ~thread:th ~src:p ~dst;
              created := dst :: rest
          | [] -> ()
        end
        else
          match !created with
          | p :: rest ->
              ops.unlink ~thread:th p;
              created := rest
          | [] -> ()
      done);
  finish machine ~ops:(nthreads * ops_per_thread) ~t0
