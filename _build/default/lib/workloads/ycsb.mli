(** YCSB-style key-value workload mixes (Cooper et al., SoCC'10) —
    the standard methodology for evaluating key-value stores, used here
    to exercise LabKVS configurations beyond the paper's LABIOS
    experiment.

    Core workloads: A (50/50 read/update), B (95/5 read-heavy),
    C (read-only), D (read-latest: inserts + reads skewed to recent
    keys). Keys follow a Zipf distribution over a preloaded keyspace. *)

type mix = A | B | C | D

val mix_name : mix -> string

val all : mix list

type kv_ops = {
  put : thread:int -> key:string -> bytes:int -> unit;
  get : thread:int -> key:string -> unit;
}

type result = {
  ops : int;
  elapsed_ns : float;
  ops_per_sec : float;
  read_latency : Lab_sim.Stats.t;
  update_latency : Lab_sim.Stats.t;
}

val run :
  Lab_sim.Machine.t ->
  mix ->
  ?nthreads:int ->
  ?records:int ->
  ?ops_per_thread:int ->
  ?value_bytes:int ->
  ?theta:float ->
  kv_ops ->
  result
(** Preloads [records] keys (not timed), then runs the mix. Defaults:
    4 threads, 500 records, 500 ops/thread, 1 KiB values, Zipf skew
    0.99. Must run inside a simulated process. *)
