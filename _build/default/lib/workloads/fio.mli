(** FIO-style synthetic I/O workload generator.

    A job describes the access pattern; the storage under test is
    supplied as a pair of callbacks so the same job can drive kernel
    APIs, raw devices, or LabStor stacks. *)

type pattern = Randwrite | Randread | Seqwrite | Seqread

type job = {
  name : string;
  pattern : pattern;
  block_bytes : int;
  total_bytes_per_thread : int;  (** ignored when [runtime_ns] is set *)
  iodepth : int;
  nthreads : int;
  runtime_ns : float option;  (** time-bounded run instead of size-bounded *)
  region_bytes : int;  (** per-thread offset space for random patterns *)
}

val default_job : job

type io_target = {
  submit :
    thread:int -> kind:Lab_core.Request.io_kind -> off:int -> bytes:int -> unit;
      (** one blocking operation *)
  submit_batch :
    thread:int ->
    kind:Lab_core.Request.io_kind ->
    offs:int array ->
    bytes:int ->
    unit;
      (** a batch of [iodepth] operations, blocking until all complete *)
}

val target_of_submit :
  (thread:int -> kind:Lab_core.Request.io_kind -> off:int -> bytes:int -> unit) ->
  io_target
(** Builds a target whose batches are sequential loops (APIs with no
    native batching). *)

type result = {
  ops : int;
  elapsed_ns : float;
  iops : float;
  bandwidth_mib_s : float;
  latency : Lab_sim.Stats.t;  (** per-op (iodepth 1) or per-batch-slot latency *)
}

val run : Lab_sim.Machine.t -> job -> io_target -> result
(** Spawns [nthreads] generator processes and blocks the calling
    process until they all finish. Must run inside a simulated
    process. *)
