(** Filebench-style application workload personalities: varmail,
    webserver, webproxy and fileserver (default configurations, scaled
    to simulation size). The filesystem under test is supplied as an
    operation record so the same personality drives kernel filesystems
    and LabStor stacks. *)

type fs_ops = {
  create : thread:int -> string -> unit;
  write : thread:int -> string -> off:int -> bytes:int -> unit;
  read : thread:int -> string -> off:int -> bytes:int -> unit;
  fsync : thread:int -> string -> unit;
  delete : thread:int -> string -> unit;
  open_ : thread:int -> string -> unit;  (** open without create *)
  close : thread:int -> string -> unit;
}

type personality = Varmail | Webserver | Webproxy | Fileserver

val personality_name : personality -> string

val all : personality list

type result = {
  ops : int;
  elapsed_ns : float;
  ops_per_sec : float;
  mib_per_sec : float;
}

val run :
  Lab_sim.Machine.t ->
  personality ->
  ?nthreads:int ->
  ?iterations:int ->
  fs_ops ->
  result
(** Pre-populates the fileset, then runs [iterations] personality loops
    per thread (defaults: 8 threads, 50 iterations). Must run inside a
    simulated process. *)
