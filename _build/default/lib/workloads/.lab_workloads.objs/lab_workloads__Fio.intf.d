lib/workloads/fio.mli: Lab_core Lab_sim
