lib/workloads/labios.mli: Lab_sim
