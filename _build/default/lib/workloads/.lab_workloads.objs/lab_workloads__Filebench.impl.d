lib/workloads/filebench.ml: Engine Lab_sim Machine Printf Rng Stdlib
