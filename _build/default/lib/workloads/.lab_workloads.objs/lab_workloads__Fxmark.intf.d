lib/workloads/fxmark.mli: Lab_sim
