lib/workloads/adapters.mli: Filebench Fxmark Lab_kernel Lab_runtime Labios
