lib/workloads/filebench.mli: Lab_sim
