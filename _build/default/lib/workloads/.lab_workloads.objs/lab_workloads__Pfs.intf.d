lib/workloads/pfs.mli: Lab_sim
