lib/workloads/pfs.ml: Array Engine Lab_sim Machine Printf Semaphore Stdlib
