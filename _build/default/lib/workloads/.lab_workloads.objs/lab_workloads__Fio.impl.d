lib/workloads/fio.ml: Array Engine Lab_core Lab_sim Machine Option Request Rng Stats Stdlib
