lib/workloads/ycsb.mli: Lab_sim
