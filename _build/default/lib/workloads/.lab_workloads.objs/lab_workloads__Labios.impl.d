lib/workloads/labios.ml: Engine Lab_sim Machine Printf Rng Stdlib
