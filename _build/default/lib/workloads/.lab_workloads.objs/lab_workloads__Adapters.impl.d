lib/workloads/adapters.ml: Client Filebench Fxmark Hashtbl Kfs Lab_kernel Lab_runtime Lab_sim Labios
