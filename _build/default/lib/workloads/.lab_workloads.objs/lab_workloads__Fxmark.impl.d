lib/workloads/fxmark.ml: Engine Lab_sim Machine Printf Stdlib
