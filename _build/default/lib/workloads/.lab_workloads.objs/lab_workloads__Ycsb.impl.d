lib/workloads/ycsb.ml: Engine Lab_sim Machine Printf Rng Stats Stdlib
