open Lab_sim

type mix = A | B | C | D

let mix_name = function A -> "A" | B -> "B" | C -> "C" | D -> "D"

let all = [ A; B; C; D ]

type kv_ops = {
  put : thread:int -> key:string -> bytes:int -> unit;
  get : thread:int -> key:string -> unit;
}

type result = {
  ops : int;
  elapsed_ns : float;
  ops_per_sec : float;
  read_latency : Stats.t;
  update_latency : Stats.t;
}

let read_fraction = function A -> 0.5 | B -> 0.95 | C -> 1.0 | D -> 0.95

let key_name i = Printf.sprintf "user%08d" i

let run machine mix ?(nthreads = 4) ?(records = 500) ?(ops_per_thread = 500)
    ?(value_bytes = 1024) ?(theta = 0.99) ops =
  if nthreads <= 0 || records <= 0 || ops_per_thread <= 0 then
    invalid_arg "Ycsb.run";
  (* Load phase, untimed. *)
  Engine.suspend (fun resume ->
      Engine.spawn machine.Machine.engine (fun () ->
          for i = 0 to records - 1 do
            ops.put ~thread:0 ~key:(key_name i) ~bytes:value_bytes
          done;
          resume ()));
  let read_latency = Stats.create () and update_latency = Stats.create () in
  let inserted = ref records in
  let t0 = Machine.now machine in
  let finished = ref 0 in
  Engine.suspend (fun resume ->
      for th = 0 to nthreads - 1 do
        Engine.spawn machine.Machine.engine (fun () ->
            let rng = Rng.create (0xCC5B + th) in
            for _ = 1 to ops_per_thread do
              let start = Machine.now machine in
              let is_read = Rng.float rng 1.0 < read_fraction mix in
              (match (mix, is_read) with
              | D, false ->
                  (* read-latest: the write side inserts fresh keys. *)
                  let k = !inserted in
                  incr inserted;
                  ops.put ~thread:th ~key:(key_name k) ~bytes:value_bytes
              | D, true ->
                  (* reads skew towards the most recent records. *)
                  let back = Rng.zipf rng ~n:(Stdlib.min 100 !inserted) ~theta in
                  ops.get ~thread:th ~key:(key_name (!inserted - 1 - back))
              | _, true ->
                  ops.get ~thread:th ~key:(key_name (Rng.zipf rng ~n:records ~theta))
              | _, false ->
                  ops.put ~thread:th
                    ~key:(key_name (Rng.zipf rng ~n:records ~theta))
                    ~bytes:value_bytes);
              Stats.add
                (if is_read then read_latency else update_latency)
                (Machine.now machine -. start)
            done;
            incr finished;
            if !finished = nthreads then resume ())
      done);
  let elapsed = Machine.now machine -. t0 in
  let total = nthreads * ops_per_thread in
  {
    ops = total;
    elapsed_ns = elapsed;
    ops_per_sec =
      (if elapsed > 0.0 then float_of_int total /. (elapsed /. 1e9) else 0.0);
    read_latency;
    update_latency;
  }
