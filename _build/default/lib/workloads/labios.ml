open Lab_sim

type backend = {
  name : string;
  put_label : thread:int -> key:string -> bytes:int -> unit;
  get_label : thread:int -> key:string -> unit;
}

let file_backend ~name ~open_ ~seek ~write ~read ~close =
  {
    name;
    put_label =
      (fun ~thread ~key ~bytes ->
        (* fopen, fseek, fwrite, fclose — the translation LABIOS pays
           when labels become UNIX files. *)
        open_ ~thread key;
        seek ~thread key 0;
        write ~thread key ~off:0 ~bytes;
        close ~thread key);
    get_label =
      (fun ~thread ~key ->
        open_ ~thread key;
        seek ~thread key 0;
        read ~thread key ~off:0 ~bytes:8192;
        close ~thread key);
  }

type result = {
  labels : int;
  elapsed_ns : float;
  labels_per_sec : float;
  mib_per_sec : float;
}

let run_worker machine backend ?(nthreads = 1) ?(labels_per_thread = 2000)
    ?(label_bytes = 8192) ?(read_fraction = 0.0) () =
  let t0 = Machine.now machine in
  let finished = ref 0 in
  Engine.suspend (fun resume ->
      for th = 0 to nthreads - 1 do
        Engine.spawn machine.Machine.engine (fun () ->
            let rng = Rng.create (0x1AB + th) in
            for i = 1 to labels_per_thread do
              let key = Printf.sprintf "labios::/labels/t%d-l%d" th i in
              if Rng.float rng 1.0 < read_fraction && i > 1 then
                backend.get_label ~thread:th
                  ~key:(Printf.sprintf "labios::/labels/t%d-l%d" th (Rng.int rng (i - 1) + 1))
              else backend.put_label ~thread:th ~key ~bytes:label_bytes
            done;
            incr finished;
            if !finished = nthreads then resume ())
      done);
  let elapsed = Machine.now machine -. t0 in
  let labels = nthreads * labels_per_thread in
  {
    labels;
    elapsed_ns = elapsed;
    labels_per_sec =
      (if elapsed > 0.0 then Stdlib.float_of_int labels /. (elapsed /. 1e9) else 0.0);
    mib_per_sec =
      (if elapsed > 0.0 then
         Stdlib.float_of_int (labels * label_bytes)
         /. (elapsed /. 1e9) /. (1024.0 *. 1024.0)
       else 0.0);
  }
