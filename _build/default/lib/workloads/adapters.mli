(** Adapters binding the workload generators' abstract operation records
    to concrete storage under test: simulated kernel filesystems
    ({!Lab_kernel.Kfs}) and LabStor stacks (via {!Lab_runtime.Client}).
    Errors from missing files (e.g. a personality deleting the same
    victim twice) are swallowed, as filebench does. *)

val kfs_filebench : Lab_kernel.Kfs.t -> Filebench.fs_ops

val kfs_fxmark : Lab_kernel.Kfs.t -> Fxmark.fs_ops

val client_filebench :
  Lab_runtime.Client.t -> prefix:string -> Filebench.fs_ops
(** [prefix] is the LabStack mount point prepended to workload paths
    (e.g. "fs::/data"). The adapter keeps a path→fd cache, mirroring an
    application's open-file table. *)

val client_fxmark : Lab_runtime.Client.t -> prefix:string -> Fxmark.fs_ops

val labios_file_backend_kfs : Lab_kernel.Kfs.t -> Labios.backend
(** Labels as UNIX files on a kernel filesystem (open/seek/write/close). *)

val labios_file_backend_client :
  Lab_runtime.Client.t -> prefix:string -> Labios.backend
(** Labels as UNIX files on a LabFS stack. *)

val labios_kvs_backend : Lab_runtime.Client.t -> Labios.backend
(** Labels as LabKVS keys: a single put/get per label. *)
