lib/labstor/platform.ml: Device Engine Lab_device Lab_mods Lab_runtime Lab_sim List Machine Option Profile Stdlib String
