lib/labstor/platform.mli: Lab_core Lab_device Lab_mods Lab_runtime Lab_sim
