lib/labstor/labstor.ml: Lab_core Lab_device Lab_ipc Lab_kernel Lab_mods Lab_runtime Lab_sim Lab_workloads Platform
