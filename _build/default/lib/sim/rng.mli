(** Deterministic pseudo-random number generation for simulations.

    A SplitMix64 generator: fast, high quality for non-cryptographic use,
    and trivially splittable so each simulated entity can own an
    independent stream derived from one experiment seed. *)

type t

val create : int -> t
(** [create seed] makes a generator from a seed. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (both produce the same
    subsequent stream). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution. *)

val normal : t -> mean:float -> stddev:float -> float
(** Box-Muller normal sample. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] samples a Zipf-distributed rank in [\[0, n)] with
    skew [theta] (rejection-inversion is overkill here; uses the
    classical CDF-inversion over a precomputed-free approximation). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
