lib/sim/cpu.mli: Costs
