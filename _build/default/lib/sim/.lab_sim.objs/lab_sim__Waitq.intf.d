lib/sim/waitq.mli:
