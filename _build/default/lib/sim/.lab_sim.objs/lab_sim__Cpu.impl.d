lib/sim/cpu.ml: Array Costs Engine Float Hashtbl Semaphore Stdlib
