lib/sim/lru.ml: Hashtbl List
