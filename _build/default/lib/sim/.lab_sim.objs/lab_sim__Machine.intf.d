lib/sim/machine.mli: Costs Cpu Engine Rng
