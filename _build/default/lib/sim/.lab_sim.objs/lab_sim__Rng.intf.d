lib/sim/rng.mli:
