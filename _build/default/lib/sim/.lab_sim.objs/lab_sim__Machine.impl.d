lib/sim/machine.ml: Costs Cpu Engine Rng
