lib/sim/costs.ml: Stdlib
