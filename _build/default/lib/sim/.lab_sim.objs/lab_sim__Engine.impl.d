lib/sim/engine.ml: Effect Float Fun Heap Int Stdlib
