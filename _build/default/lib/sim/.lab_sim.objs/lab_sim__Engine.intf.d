lib/sim/engine.mli:
