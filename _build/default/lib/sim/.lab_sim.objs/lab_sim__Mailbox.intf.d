lib/sim/mailbox.mli:
