lib/sim/lru.mli:
