lib/sim/mailbox.ml: Queue Waitq
