lib/sim/semaphore.mli:
