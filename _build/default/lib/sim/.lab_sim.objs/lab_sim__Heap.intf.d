lib/sim/heap.mli:
