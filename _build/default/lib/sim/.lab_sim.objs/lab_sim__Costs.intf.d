lib/sim/costs.mli:
