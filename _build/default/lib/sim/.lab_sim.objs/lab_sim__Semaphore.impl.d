lib/sim/semaphore.ml: Waitq
