type t = {
  mutable data : float array;
  mutable n : int;
  mutable total : float;
  mutable total_sq : float;
  mutable lo : float;
  mutable hi : float;
  mutable sorted : bool;
}

let create () =
  {
    data = [||];
    n = 0;
    total = 0.0;
    total_sq = 0.0;
    lo = Float.nan;
    hi = Float.nan;
    sorted = true;
  }

let add t x =
  if t.n >= Array.length t.data then begin
    let cap = Stdlib.max 256 (2 * Array.length t.data) in
    let grown = Array.make cap 0.0 in
    Array.blit t.data 0 grown 0 t.n;
    t.data <- grown
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  t.total_sq <- t.total_sq +. (x *. x);
  if t.n = 1 then begin
    t.lo <- x;
    t.hi <- x
  end
  else begin
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x
  end;
  t.sorted <- false

let count t = t.n

let sum t = t.total

let mean t = if t.n = 0 then 0.0 else t.total /. Stdlib.float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else begin
    let n = Stdlib.float_of_int t.n in
    let m = t.total /. n in
    let var = (t.total_sq /. n) -. (m *. m) in
    if var < 0.0 then 0.0 else sqrt var
  end

let min t = t.lo

let max t = t.hi

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.n in
    Array.sort Float.compare live;
    Array.blit live 0 t.data 0 t.n;
    t.sorted <- true
  end

let percentile t p =
  if t.n = 0 then Float.nan
  else begin
    ensure_sorted t;
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. Stdlib.float_of_int t.n)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
    t.data.(idx)
  end

let merge a b =
  let t = create () in
  for i = 0 to a.n - 1 do
    add t a.data.(i)
  done;
  for i = 0 to b.n - 1 do
    add t b.data.(i)
  done;
  t

let clear t =
  t.n <- 0;
  t.total <- 0.0;
  t.total_sq <- 0.0;
  t.lo <- Float.nan;
  t.hi <- Float.nan;
  t.sorted <- true

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.1f p50=%.1f p99=%.1f" (count t) (mean t)
    (percentile t 50.0) (percentile t 99.0)

module Counter = struct
  type c = { mutable v : int }

  let create () = { v = 0 }

  let incr ?(by = 1) c = c.v <- c.v + by

  let value c = c.v

  let rate_per_sec c ~elapsed_ns =
    if elapsed_ns <= 0.0 then 0.0
    else Stdlib.float_of_int c.v /. (elapsed_ns /. 1e9)

  let reset c = c.v <- 0
end
