(** FIFO queue of parked processes, the building block for blocking
    primitives. Each entry carries a callback that receives the wake-up
    value and then resumes the process. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val park : 'a t -> 'a option ref -> unit
(** [park q slot] suspends the calling process, enqueueing it on [q].
    When woken by {!wake}, the wake value has been stored in [slot]. *)

val wake : 'a t -> 'a -> bool
(** [wake q v] resumes the oldest parked process with value [v]. Returns
    false if nobody was parked. *)

val wake_all : 'a t -> 'a -> int
(** Wakes every parked process; returns the number woken. *)
