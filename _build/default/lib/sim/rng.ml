type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t = { state = next_raw t }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits in OCaml's native non-negative int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled to [0, 1). *)
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_raw t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let normal t ~mean ~stddev =
  let u1 = Stdlib.max epsilon_float (float t 1.0) in
  let u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    (* Inverse-CDF on the generalized harmonic number, computed lazily.
       Good enough for workload skew; not on any hot path. *)
    let h = ref 0.0 in
    for k = 1 to n do
      h := !h +. (1.0 /. Float.pow (Stdlib.float_of_int k) theta)
    done;
    let target = float t !h in
    let acc = ref 0.0 in
    let result = ref (n - 1) in
    (try
       for k = 1 to n do
         acc := !acc +. (1.0 /. Float.pow (Stdlib.float_of_int k) theta);
         if !acc >= target then begin
           result := k - 1;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
