(** Counting semaphore for simulated processes; also serves as a mutex
    with [create 1]. FIFO wake-up order. *)

type t

val create : int -> t

val acquire : t -> unit
(** Blocks the calling process until a unit is available. *)

val try_acquire : t -> bool

val release : t -> unit

val available : t -> int

val waiters : t -> int
