(** Sample statistics for simulation measurements. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100], nearest-rank on the sorted
    sample; [nan] when empty. *)

val merge : t -> t -> t
(** Fresh statistics over both sample sets. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Prints "n=… mean=… p50=… p99=…". *)

(** Monotonically increasing event counter with rate helper. *)
module Counter : sig
  type c

  val create : unit -> c

  val incr : ?by:int -> c -> unit

  val value : c -> int

  val rate_per_sec : c -> elapsed_ns:float -> float

  val reset : c -> unit
end
