type 'a t = {
  capacity : int option;
  items : 'a Queue.t;
  getters : 'a Waitq.t;
  putters : unit Waitq.t;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Mailbox.create: capacity must be positive"
  | _ -> ());
  { capacity; items = Queue.create (); getters = Waitq.create (); putters = Waitq.create () }

let length t = Queue.length t.items

let is_empty t = Queue.is_empty t.items

let is_full t =
  match t.capacity with None -> false | Some c -> Queue.length t.items >= c

let waiting_getters t = Waitq.length t.getters

(* Delivery: a put hands the item straight to a parked getter if any,
   otherwise enqueues it. *)
let deliver t v = if not (Waitq.wake t.getters v) then Queue.add v t.items

let try_put t v =
  if is_full t then false
  else begin
    deliver t v;
    true
  end

let rec put t v =
  if is_full t then begin
    let slot = ref None in
    Waitq.park t.putters slot;
    put t v
  end
  else deliver t v

let try_get t =
  match Queue.take_opt t.items with
  | Some v ->
      ignore (Waitq.wake t.putters ());
      Some v
  | None -> None

let get t =
  match try_get t with
  | Some v -> v
  | None ->
      let slot = ref None in
      Waitq.park t.getters slot;
      (match !slot with
      | Some v -> v
      | None -> assert false)
