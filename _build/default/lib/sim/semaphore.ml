type t = { mutable units : int; queue : unit Waitq.t }

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative count";
  { units = n; queue = Waitq.create () }

let try_acquire t =
  if t.units > 0 then begin
    t.units <- t.units - 1;
    true
  end
  else false

let acquire t =
  if not (try_acquire t) then begin
    let slot = ref None in
    Waitq.park t.queue slot
    (* The releaser transferred its unit directly to us. *)
  end

let release t = if not (Waitq.wake t.queue ()) then t.units <- t.units + 1

let available t = t.units

let waiters t = Waitq.length t.queue
