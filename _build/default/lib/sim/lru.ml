type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) t = {
  cap : int option;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* MRU *)
  mutable tail : ('k, 'v) node option;  (* LRU *)
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Lru.create: capacity must be positive"
  | _ -> ());
  { cap = capacity; table = Hashtbl.create 64; head = None; tail = None }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let mem t k = Hashtbl.mem t.table k

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      promote t n;
      Some n.value

let peek t k =
  match Hashtbl.find_opt t.table k with None -> None | Some n -> Some n.value

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k;
      Some n.value

let evict_lru t =
  match t.tail with
  | None -> None
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      Some (n.key, n.value)

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      promote t n;
      None
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n;
      (match t.cap with
      | Some c when Hashtbl.length t.table > c -> evict_lru t
      | _ -> None)

let lru t = match t.tail with None -> None | Some n -> Some (n.key, n.value)

let fold f t acc =
  let rec go node acc =
    match node with None -> acc | Some n -> go n.next (f n.key n.value acc)
  in
  go t.head acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
