type 'a entry = { slot : 'a option ref; resume : Engine.resumer }

type 'a t = 'a entry Queue.t

let create () = Queue.create ()

let is_empty = Queue.is_empty

let length = Queue.length

let park q slot =
  Engine.suspend (fun resume -> Queue.add { slot; resume } q)

let wake q v =
  match Queue.take_opt q with
  | None -> false
  | Some e ->
      e.slot := Some v;
      e.resume ();
      true

let wake_all q v =
  let n = Queue.length q in
  for _ = 1 to n do
    ignore (wake q v)
  done;
  n
