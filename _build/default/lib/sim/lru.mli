(** Generic LRU map with O(1) lookup, insert, and eviction.
    Used by the kernel page cache and the LRU-cache LabMod. *)

type ('k, 'v) t

val create : ?capacity:int -> unit -> ('k, 'v) t
(** [capacity] bounds entry count; omitted means unbounded (no eviction). *)

val capacity : ('k, 'v) t -> int option

val length : ('k, 'v) t -> int

val mem : ('k, 'v) t -> 'k -> bool

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** No promotion. *)

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Inserts or updates (promoting). Returns the evicted LRU entry when
    the capacity was exceeded. *)

val remove : ('k, 'v) t -> 'k -> 'v option

val lru : ('k, 'v) t -> ('k * 'v) option
(** Least-recently-used entry, if any. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Iterates from most- to least-recently used. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** MRU-first association list. *)

val clear : ('k, 'v) t -> unit
