(** The simulated machine: one engine, one CPU complex, one cost table,
    one root RNG. Threaded through every higher layer. *)

type t = { engine : Engine.t; cpu : Cpu.t; costs : Costs.t; rng : Rng.t }

val create : ?costs:Costs.t -> ?seed:int -> ncores:int -> unit -> t

val now : t -> float

val run : ?until:float -> t -> unit

val spawn : t -> (unit -> unit) -> unit

val compute : t -> thread:Cpu.thread_id -> float -> unit
(** Charge CPU time on the thread's core. *)
