type t = { engine : Engine.t; cpu : Cpu.t; costs : Costs.t; rng : Rng.t }

let create ?(costs = Costs.default) ?(seed = 0xC0FFEE) ~ncores () =
  {
    engine = Engine.create ();
    cpu = Cpu.create ~costs ~ncores ();
    costs;
    rng = Rng.create seed;
  }

let now t = Engine.now t.engine

let run ?until t = Engine.run ?until t.engine

let spawn t f = Engine.spawn t.engine f

let compute t ~thread ns = Cpu.compute t.cpu ~thread ns
