(** Blocking bounded FIFO channel between simulated processes. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity is unbounded. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val put : 'a t -> 'a -> unit
(** Blocks the calling process while the mailbox is full. *)

val try_put : 'a t -> 'a -> bool
(** Non-blocking; false if full. *)

val get : 'a t -> 'a
(** Blocks the calling process while the mailbox is empty. *)

val try_get : 'a t -> 'a option

val waiting_getters : 'a t -> int
