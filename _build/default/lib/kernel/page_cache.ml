open Lab_sim

type page = { page_index : int; mutable dirty : bool }

type t = {
  machine : Machine.t;
  psize : int;
  entries : (int, page) Lru.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create machine ~capacity_pages ~page_size =
  if capacity_pages <= 0 then invalid_arg "Page_cache.create: capacity";
  {
    machine;
    psize = page_size;
    entries = Lru.create ~capacity:capacity_pages ();
    hit_count = 0;
    miss_count = 0;
  }

let page_size t = t.psize

let copy_cost t = t.machine.Machine.costs.Costs.copy_ns_per_byte *. Stdlib.float_of_int t.psize

let read t ~thread ~page_index =
  let costs = t.machine.Machine.costs in
  match Lru.find t.entries page_index with
  | Some _ ->
      t.hit_count <- t.hit_count + 1;
      Machine.compute t.machine ~thread (costs.Costs.cache_lookup_ns +. copy_cost t);
      true
  | None ->
      t.miss_count <- t.miss_count + 1;
      Machine.compute t.machine ~thread costs.Costs.cache_lookup_ns;
      false

let insert_clean t ~thread ~page_index =
  let costs = t.machine.Machine.costs in
  Machine.compute t.machine ~thread (costs.Costs.cache_insert_ns +. copy_cost t);
  Lru.put t.entries page_index { page_index; dirty = false }
  |> Option.map (fun (_, p) -> p)

let write t ~thread ~page_index =
  let costs = t.machine.Machine.costs in
  Machine.compute t.machine ~thread (costs.Costs.cache_insert_ns +. copy_cost t);
  match Lru.find t.entries page_index with
  | Some p ->
      p.dirty <- true;
      None
  | None ->
      Lru.put t.entries page_index { page_index; dirty = true }
      |> Option.map (fun (_, p) -> p)

let dirty_pages t =
  (* fold iterates MRU-first; collect then reverse for LRU-first. *)
  Lru.fold (fun _ p acc -> if p.dirty then p :: acc else acc) t.entries []

let clean _t page = page.dirty <- false

let drop t =
  Lru.clear t.entries

let hits t = t.hit_count

let misses t = t.miss_count

let length t = Lru.length t.entries
