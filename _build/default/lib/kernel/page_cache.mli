(** Page cache model: LRU over page indices with dirty tracking.

    Reads and writes charge index-lookup and memcpy costs on the calling
    thread. Write-back of evicted dirty pages is the caller's job (the
    filesystem decides how to persist them). *)

type t

type page = { page_index : int; mutable dirty : bool }

val create : Lab_sim.Machine.t -> capacity_pages:int -> page_size:int -> t

val page_size : t -> int

val read : t -> thread:int -> page_index:int -> bool
(** True on hit (charges lookup + copy-out); false on miss (charges
    lookup only — the caller fetches from the device and must then call
    {!insert_clean}). *)

val insert_clean : t -> thread:int -> page_index:int -> page option
(** Adds a freshly-read page; returns an evicted page (possibly dirty)
    if capacity was exceeded. *)

val write : t -> thread:int -> page_index:int -> page option
(** Buffered write: copy-in + mark dirty; returns an evicted page if
    any. *)

val dirty_pages : t -> page list
(** Current dirty pages, least-recently-used first. *)

val clean : t -> page -> unit
(** Marks a page clean after write-back. *)

val drop : t -> unit
(** Invalidates everything (models echo 3 > drop_caches between runs). *)

val hits : t -> int

val misses : t -> int

val length : t -> int
