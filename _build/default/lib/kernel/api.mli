(** Kernel I/O APIs for raw device files (O_DIRECT), as used by the
    paper's Figure 6 baselines: POSIX synchronous I/O, POSIX AIO,
    libaio, and io_uring.

    Cost structure per 1-deep request:
    - [Psync]: one syscall; the thread blocks — IRQ + wake-up + reschedule
      on completion.
    - [Posix_aio]: [Psync] executed by a helper thread, adding two
      thread hand-offs (the paper measures 60-70 % overhead on fast
      devices).
    - [Libaio]: submit + getevents syscalls; completion is interrupt
      driven but the caller busy-polls, avoiding the sleep/wake cycle.
    - [Io_uring]: one submission syscall; completions are reaped from
      the user-mapped ring (no second syscall; IRQ still fires). *)

type api = Psync | Posix_aio | Libaio | Io_uring

type t

val name : api -> string

val all : api list

val create : Lab_sim.Machine.t -> Blk.t -> t

val submit_wait :
  t -> api:api -> thread:int -> kind:Lab_device.Device.io_kind -> off:int -> bytes:int -> unit
(** One blocking request (I/O depth 1) to the raw device. *)

val submit_batch_wait :
  t ->
  api:api ->
  thread:int ->
  kind:Lab_device.Device.io_kind ->
  offs:int array ->
  bytes:int ->
  unit
(** Submits [Array.length offs] requests as one batch and waits for all
    completions — models fio's iodepth > 1 with libaio/io_uring
    (for [Psync]/[Posix_aio] the batch degenerates to a loop). *)
