open Lab_sim
open Lab_device

type flavor = Ext4 | Xfs | F2fs

let flavor_name = function Ext4 -> "ext4" | Xfs -> "xfs" | F2fs -> "f2fs"

(* Per-flavor behavioural parameters (ns). [dir_hold_ns] is CPU executed
   under the parent-directory lock — the serialization FxMark exposes.
   [journal_hold_ns] is CPU under the journal lock per record. *)
type params = {
  namei_ns : float;
  create_cpu_ns : float;  (* outside any lock *)
  dir_hold_ns : float;
  journal_hold_ns : float;
  journal_record_bytes : int;
  journal_batch : int;
  alloc_shards : int;
  contention_factor : float;  (* extra hold per waiting thread *)
}

let params_of = function
  | Ext4 ->
      {
        namei_ns = 700.0;
        create_cpu_ns = 6100.0;
        dir_hold_ns = 2500.0;
        journal_hold_ns = 1500.0;
        journal_record_bytes = 512;
        journal_batch = 64;
        alloc_shards = 16;
        contention_factor = 0.18;
      }
  | Xfs ->
      {
        namei_ns = 800.0;
        create_cpu_ns = 8100.0;
        dir_hold_ns = 2200.0;
        journal_hold_ns = 1100.0;
        journal_record_bytes = 512;
        journal_batch = 128;
        alloc_shards = 8;
        contention_factor = 0.15;
      }
  | F2fs ->
      {
        namei_ns = 650.0;
        create_cpu_ns = 4600.0;
        dir_hold_ns = 2800.0;
        journal_hold_ns = 1800.0;
        journal_record_bytes = 256;
        journal_batch = 64;
        alloc_shards = 4;
        contention_factor = 0.22;
      }

type file = {
  id : int;
  mutable size : int;
  mutable extents : (int * int) list;  (* (first_page_in_file, base_lba) *)
}

type t = {
  machine : Machine.t;
  fl : flavor;
  p : params;
  blk : Blk.t;
  cache : Page_cache.t;
  files : (string, file) Hashtbl.t;
  dir_locks : (string, Semaphore.t) Hashtbl.t;
  alloc_locks : Semaphore.t array;
  journal_lock : Semaphore.t;
  mutable journal_pending : int;
  mutable journal_lba : int;
  mutable commits : int;
  mutable next_lba : int;
  mutable next_file_id : int;
  page_owner : (int, file) Hashtbl.t;  (* cache key -> file, for fsync *)
}

let region_pages = 4096 (* 16 MiB extents at 4 KiB pages *)

let max_pages_per_file = 1 lsl 24

let create_fs machine blk ~flavor ?(cache_pages = 65536) () =
  let page_size = (Device.profile (Blk.device blk)).Profile.block_size in
  let page_size = Stdlib.max page_size 4096 in
  {
    machine;
    fl = flavor;
    p = params_of flavor;
    blk;
    cache = Page_cache.create machine ~capacity_pages:cache_pages ~page_size;
    files = Hashtbl.create 1024;
    dir_locks = Hashtbl.create 64;
    alloc_locks = Array.init (params_of flavor).alloc_shards (fun _ -> Semaphore.create 1);
    journal_lock = Semaphore.create 1;
    journal_pending = 0;
    journal_lba = 0;
    commits = 0;
    next_lba = 1 lsl 20;  (* leave room for the journal region *)
    next_file_id = 0;
    page_owner = Hashtbl.create 4096;
  }

let machine t = t.machine

let flavor t = t.fl

let costs t = t.machine.Machine.costs

(* Mode switch plus the VFS fixed path (fdget, rw_verify_area, security
   hooks, fsnotify) every file syscall traverses. *)
let vfs_overhead_ns = 900.0

let syscall t ~thread =
  Machine.compute t.machine ~thread ((costs t).Costs.syscall_ns +. vfs_overhead_ns)

let dirname path =
  match String.rindex_opt path '/' with
  | Some i when i > 0 -> String.sub path 0 i
  | _ -> "/"

let dir_lock t dir =
  match Hashtbl.find_opt t.dir_locks dir with
  | Some l -> l
  | None ->
      let l = Semaphore.create 1 in
      Hashtbl.replace t.dir_locks dir l;
      l

(* Acquire a lock, charging CPU that grows with the queue length —
   models cache-line bouncing on contended kernel locks. *)
let with_contended_lock t ~thread lock ~hold_ns f =
  let waiters = Semaphore.waiters lock in
  Semaphore.acquire lock;
  let hold =
    hold_ns *. (1.0 +. (t.p.contention_factor *. Stdlib.float_of_int waiters))
  in
  Machine.compute t.machine ~thread hold;
  let result = f () in
  Semaphore.release lock;
  result

let journal_append t ~thread =
  with_contended_lock t ~thread t.journal_lock ~hold_ns:t.p.journal_hold_ns
    (fun () ->
      t.journal_pending <- t.journal_pending + 1;
      if t.journal_pending >= t.p.journal_batch then begin
        let bytes = t.journal_pending * t.p.journal_record_bytes in
        t.journal_pending <- 0;
        t.commits <- t.commits + 1;
        let lba = t.journal_lba in
        t.journal_lba <- (t.journal_lba + 64) land 0xFFFFF;
        Blk.submit_bio_wait t.blk ~thread ~kind:Device.Write ~lba ~bytes
          ~polled:false
      end)

let journal_commit_now t ~thread =
  with_contended_lock t ~thread t.journal_lock ~hold_ns:t.p.journal_hold_ns
    (fun () ->
      if t.journal_pending > 0 then begin
        let bytes = t.journal_pending * t.p.journal_record_bytes in
        t.journal_pending <- 0;
        t.commits <- t.commits + 1;
        let lba = t.journal_lba in
        t.journal_lba <- (t.journal_lba + 64) land 0xFFFFF;
        Blk.submit_bio_wait t.blk ~thread ~kind:Device.Write ~lba ~bytes
          ~polled:false
      end)

let create t ~thread path =
  syscall t ~thread;
  Machine.compute t.machine ~thread (t.p.namei_ns +. t.p.create_cpu_ns);
  let dir = dirname path in
  with_contended_lock t ~thread (dir_lock t dir) ~hold_ns:t.p.dir_hold_ns
    (fun () ->
      match Hashtbl.find_opt t.files path with
      | Some f ->
          f.size <- 0
      | None ->
          let id = t.next_file_id in
          t.next_file_id <- id + 1;
          Hashtbl.replace t.files path { id; size = 0; extents = [] });
  journal_append t ~thread

let exists t path = Hashtbl.mem t.files path

let stat t ~thread path =
  syscall t ~thread;
  Machine.compute t.machine ~thread (t.p.namei_ns +. (costs t).Costs.hash_op_ns);
  Hashtbl.mem t.files path

let unlink t ~thread path =
  syscall t ~thread;
  Machine.compute t.machine ~thread t.p.namei_ns;
  let dir = dirname path in
  with_contended_lock t ~thread (dir_lock t dir) ~hold_ns:t.p.dir_hold_ns
    (fun () -> Hashtbl.remove t.files path);
  journal_append t ~thread

let rename t ~thread src dst =
  syscall t ~thread;
  Machine.compute t.machine ~thread (2.0 *. t.p.namei_ns);
  let dir = dirname src in
  with_contended_lock t ~thread (dir_lock t dir) ~hold_ns:t.p.dir_hold_ns
    (fun () ->
      match Hashtbl.find_opt t.files src with
      | Some f ->
          Hashtbl.remove t.files src;
          Hashtbl.replace t.files dst f
      | None -> ());
  journal_append t ~thread

let file_size t path =
  Option.map (fun f -> f.size) (Hashtbl.find_opt t.files path)

let nfiles t = Hashtbl.length t.files

let lookup_or_create t ~thread path =
  match Hashtbl.find_opt t.files path with
  | Some f -> f
  | None ->
      create t ~thread path;
      Hashtbl.find t.files path

let page_size t = Page_cache.page_size t.cache

(* Block allocation: carve a fresh extent under a sharded allocator
   lock the first time a page range is touched. *)
let lba_of_page t ~thread file page =
  let rec find = function
    | (start, base) :: rest ->
        if page >= start && page < start + region_pages then
          Some (base + (page - start))
        else find rest
    | [] -> None
  in
  match find file.extents with
  | Some lba -> lba
  | None ->
      let shard = thread mod Array.length t.alloc_locks in
      with_contended_lock t ~thread t.alloc_locks.(shard) ~hold_ns:400.0
        (fun () ->
          let start = page - (page mod region_pages) in
          let base = t.next_lba in
          t.next_lba <- t.next_lba + region_pages;
          file.extents <- (start, base) :: file.extents;
          base + (page - start))

let cache_key file page = (file.id * max_pages_per_file) + page

let writeback_evicted t ~thread page =
  match (page : Page_cache.page option) with
  | Some p when p.Page_cache.dirty -> (
      match Hashtbl.find_opt t.page_owner p.Page_cache.page_index with
      | Some owner ->
          let page_no = p.Page_cache.page_index mod max_pages_per_file in
          let lba = lba_of_page t ~thread owner page_no in
          Blk.submit_io_to_hctx t.blk ~thread ~hctx:(thread land 15)
            ~kind:Device.Write ~lba ~bytes:(page_size t)
            ~on_complete:(fun () -> ());
          Hashtbl.remove t.page_owner p.Page_cache.page_index
      | None -> ())
  | Some p -> Hashtbl.remove t.page_owner p.Page_cache.page_index
  | None -> ()

let write t ~thread path ~off ~bytes ~direct =
  syscall t ~thread;
  Machine.compute t.machine ~thread (costs t).Costs.hash_op_ns;
  let f = lookup_or_create t ~thread path in
  let ps = page_size t in
  if direct then begin
    let page0 = off / ps in
    let lba = lba_of_page t ~thread f page0 in
    Blk.submit_bio_wait t.blk ~thread ~kind:Device.Write ~lba ~bytes ~polled:false
  end
  else begin
    let first = off / ps and last = (off + bytes - 1) / ps in
    for page = first to last do
      let key = cache_key f page in
      let evicted = Page_cache.write t.cache ~thread ~page_index:key in
      Hashtbl.replace t.page_owner key f;
      writeback_evicted t ~thread evicted
    done
  end;
  f.size <- Stdlib.max f.size (off + bytes)

let read t ~thread path ~off ~bytes ~direct =
  syscall t ~thread;
  Machine.compute t.machine ~thread (costs t).Costs.hash_op_ns;
  match Hashtbl.find_opt t.files path with
  | None -> ()
  | Some f ->
      let ps = page_size t in
      if direct then begin
        let page0 = off / ps in
        let lba = lba_of_page t ~thread f page0 in
        Blk.submit_bio_wait t.blk ~thread ~kind:Device.Read ~lba ~bytes
          ~polled:false
      end
      else begin
        let first = off / ps and last = (off + bytes - 1) / ps in
        for page = first to last do
          let key = cache_key f page in
          if not (Page_cache.read t.cache ~thread ~page_index:key) then begin
            let lba = lba_of_page t ~thread f page in
            Blk.submit_bio_wait t.blk ~thread ~kind:Device.Read ~lba ~bytes:ps
              ~polled:false;
            let evicted = Page_cache.insert_clean t.cache ~thread ~page_index:key in
            Hashtbl.replace t.page_owner key f;
            writeback_evicted t ~thread evicted
          end
        done
      end

let fsync t ~thread path =
  syscall t ~thread;
  match Hashtbl.find_opt t.files path with
  | None -> ()
  | Some f ->
      let ps = page_size t in
      let mine =
        List.filter
          (fun (p : Page_cache.page) ->
            p.Page_cache.page_index / max_pages_per_file = f.id)
          (Page_cache.dirty_pages t.cache)
      in
      (match mine with
      | [] -> ()
      | pages ->
          (* Write the dirty range back as one submission per page run;
             approximate with a single transfer of the total bytes. *)
          let total = List.length pages * ps in
          let page0 = List.hd pages in
          let page_no = page0.Page_cache.page_index mod max_pages_per_file in
          let lba = lba_of_page t ~thread f page_no in
          Blk.submit_bio_wait t.blk ~thread ~kind:Device.Write ~lba ~bytes:total
            ~polled:false;
          List.iter (Page_cache.clean t.cache) pages);
      journal_commit_now t ~thread

let drop_caches t =
  Page_cache.drop t.cache;
  Hashtbl.reset t.page_owner

let journal_commits t = t.commits
