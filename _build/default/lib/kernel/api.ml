open Lab_sim
open Lab_device

type api = Psync | Posix_aio | Libaio | Io_uring

type t = { machine : Machine.t; blk : Blk.t }

let name = function
  | Psync -> "POSIX"
  | Posix_aio -> "POSIX-AIO"
  | Libaio -> "libaio"
  | Io_uring -> "io_uring"

let all = [ Psync; Posix_aio; Libaio; Io_uring ]

let create machine blk = { machine; blk }

let costs t = t.machine.Machine.costs

let psync_once t ~thread ~kind ~off ~bytes =
  Machine.compute t.machine ~thread (costs t).Costs.syscall_ns;
  Blk.submit_bio_wait t.blk ~thread ~kind ~lba:(off / 4096) ~bytes ~polled:false;
  (* Reschedule after the IRQ woke us. *)
  Machine.compute t.machine ~thread (costs t).Costs.ctx_switch_ns

let submit_wait t ~api ~thread ~kind ~off ~bytes =
  let c = costs t in
  match api with
  | Psync -> psync_once t ~thread ~kind ~off ~bytes
  | Posix_aio ->
      (* Hand-off to the AIO helper thread and back. *)
      Machine.compute t.machine ~thread (c.Costs.wakeup_ns +. c.Costs.ctx_switch_ns);
      psync_once t ~thread ~kind ~off ~bytes;
      Machine.compute t.machine ~thread (c.Costs.wakeup_ns +. c.Costs.ctx_switch_ns)
  | Libaio ->
      (* io_submit … *)
      Machine.compute t.machine ~thread c.Costs.syscall_ns;
      Blk.submit_bio_wait t.blk ~thread ~kind ~lba:(off / 4096) ~bytes ~polled:true;
      (* IRQ fires even though we reap by polling io_getevents. *)
      Machine.compute t.machine ~thread (c.Costs.interrupt_ns +. c.Costs.syscall_ns)
  | Io_uring ->
      Machine.compute t.machine ~thread c.Costs.syscall_ns;
      Blk.submit_bio_wait t.blk ~thread ~kind ~lba:(off / 4096) ~bytes ~polled:true;
      (* Completion read straight from the mapped CQ ring. *)
      Machine.compute t.machine ~thread c.Costs.interrupt_ns

let submit_batch_wait t ~api ~thread ~kind ~offs ~bytes =
  let c = costs t in
  match api with
  | Psync | Posix_aio ->
      Array.iter (fun off -> submit_wait t ~api ~thread ~kind ~off ~bytes) offs
  | Libaio | Io_uring ->
      let n = Array.length offs in
      if n > 0 then begin
        (* One submission syscall covers the whole batch; allocation is
           still per request. *)
        Machine.compute t.machine ~thread
          (c.Costs.syscall_ns +. (Stdlib.float_of_int n *. c.Costs.kalloc_ns));
        (* Scheduler decisions happen in process context, before the
           asynchronous dispatch. *)
        let placements =
          Array.map
            (fun off ->
              let hctx = Blk.select_hctx t.blk ~thread ~bytes in
              Blk.note_dispatch t.blk ~hctx ~bytes;
              (off, hctx))
            offs
        in
        let remaining = ref n in
        Engine.suspend (fun resume ->
            Array.iter
              (fun (off, hctx) ->
                Device.submit (Blk.device t.blk) ~hctx ~kind ~lba:(off / 4096)
                  ~bytes ~on_complete:(fun _ ->
                    Blk.note_completion t.blk ~hctx ~bytes;
                    decr remaining;
                    if !remaining = 0 then resume ()))
              placements);
        (* Per-completion reap cost. *)
        let reap =
          match api with
          | Libaio -> c.Costs.interrupt_ns +. c.Costs.syscall_ns
          | Io_uring | Psync | Posix_aio -> c.Costs.interrupt_ns
        in
        Machine.compute t.machine ~thread (Stdlib.float_of_int n *. reap)
      end
