(** Kernel filesystem models: ext4, XFS, F2FS.

    These are behavioural models of the mechanisms that determine the
    comparisons in the paper's evaluation: per-operation syscall + VFS
    CPU work, directory-lock contention (why kernel FS metadata
    throughput plateaus with threads), journal group commit, buffered
    I/O through a page cache with write-back, and O_DIRECT.

    File contents are sizes + block extents; data bytes are not stored
    (the devices account for their transfer). *)

type flavor = Ext4 | Xfs | F2fs

type t

val flavor_name : flavor -> string

val create_fs :
  Lab_sim.Machine.t ->
  Blk.t ->
  flavor:flavor ->
  ?cache_pages:int ->
  unit ->
  t
(** Builds a filesystem over a block layer. [cache_pages] sizes the page
    cache (default 65536 pages = 256 MiB). *)

val machine : t -> Lab_sim.Machine.t

val flavor : t -> flavor

(** {2 Metadata operations} — each charges the full kernel path on the
    calling thread and blocks as the real call would. *)

val create : t -> thread:int -> string -> unit
(** Creates a file (truncating if it exists). Serializes on the parent
    directory's lock and appends a journal record (group commit). *)

val exists : t -> string -> bool

val stat : t -> thread:int -> string -> bool
(** Charged path lookup (syscall + namei + inode fetch); returns
    existence. *)

val unlink : t -> thread:int -> string -> unit

val rename : t -> thread:int -> string -> string -> unit

val file_size : t -> string -> int option

val nfiles : t -> int

(** {2 Data operations} *)

val write : t -> thread:int -> string -> off:int -> bytes:int -> direct:bool -> unit
(** Buffered (page-cache) write unless [direct]; allocates blocks on
    first touch; evicted dirty pages trigger asynchronous write-back. *)

val read : t -> thread:int -> string -> off:int -> bytes:int -> direct:bool -> unit

val fsync : t -> thread:int -> string -> unit
(** Writes back the file's dirty pages and commits the journal. *)

val drop_caches : t -> unit

val journal_commits : t -> int
(** Commit count; observable for tests. *)
