lib/kernel/page_cache.ml: Costs Lab_sim Lru Machine Option Stdlib
