lib/kernel/blk.ml: Array Costs Device Engine Lab_device Lab_sim Machine Stdlib
