lib/kernel/kfs.mli: Blk Lab_sim
