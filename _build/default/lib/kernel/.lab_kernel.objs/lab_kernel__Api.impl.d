lib/kernel/api.ml: Array Blk Costs Device Engine Lab_device Lab_sim Machine Stdlib
