lib/kernel/api.mli: Blk Lab_device Lab_sim
