lib/kernel/kfs.ml: Array Blk Costs Device Hashtbl Lab_device Lab_sim List Machine Option Page_cache Profile Semaphore Stdlib String
