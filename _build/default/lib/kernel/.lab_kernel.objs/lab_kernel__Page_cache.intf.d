lib/kernel/page_cache.mli: Lab_sim
