lib/kernel/blk.mli: Lab_device Lab_sim
