(* Crash recovery: the Runtime dies under a buggy LabMod and is
   restarted by the administrator; the application survives. Its client
   library detects the offline Runtime in Wait, blocks until restart,
   invokes StateRepair (LabFS rebuilds its inode table by replaying the
   metadata log), and retries the interrupted request.

   Runtime crashes are only one half of the failure model: device
   faults (EIO, torn writes, offline queues, lost commands) flow
   through the same client retry loop — see the "Fault model" section
   of DESIGN.md and `labstor_cli faults` for that half.

   Run with: dune exec examples/crash_recovery.exe *)

open Labstor

let spec =
  {|
mount: "fs::/data"
dag:
  - uuid: rfs
    mod: labfs
    outputs: [rsched]
  - uuid: rsched
    mod: noop_sched
    outputs: [rdrv]
  - uuid: rdrv
    mod: kernel_driver
|}

let () =
  let platform = Platform.boot ~nworkers:2 () in
  ignore (Platform.mount_exn platform spec);
  let rt = Platform.runtime platform in
  Platform.go platform (fun () ->
      let m = Platform.machine platform in
      let client = Platform.client platform ~thread:0 () in
      for i = 1 to 100 do
        match Runtime.Client.create client (Printf.sprintf "fs::/data/pre%d" i) with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      Printf.printf "t=%.2f ms: 100 files created\n" (Platform.now platform /. 1e6);

      (* A "buggy LabMod" takes the Runtime down; the admin restarts it
         2 ms later. *)
      Sim.Engine.spawn m.Sim.Machine.engine (fun () ->
          Runtime.Runtime.crash rt;
          Printf.printf "t=%.2f ms: RUNTIME CRASHED\n" (Platform.now platform /. 1e6);
          Sim.Engine.wait 2e6;
          Runtime.Runtime.restart rt;
          Printf.printf "t=%.2f ms: runtime restarted by admin\n"
            (Platform.now platform /. 1e6));
      Sim.Engine.wait 1000.0;

      (* This call hits the dead Runtime, waits, repairs, retries. *)
      (match Runtime.Client.create client "fs::/data/during-crash" with
      | Ok () ->
          Printf.printf "t=%.2f ms: request retried successfully after repair\n"
            (Platform.now platform /. 1e6)
      | Error e -> failwith e);

      let fs =
        Option.get (Core.Registry.find (Runtime.Runtime.registry rt) "rfs")
      in
      Printf.printf "inode table after StateRepair: %d files (log replay intact)\n"
        (Mods.Labfs.file_count fs);
      assert (Mods.Labfs.lookup fs "fs::/data/pre1" <> None);
      assert (Mods.Labfs.lookup fs "fs::/data/during-crash" <> None);
      print_endline "all pre-crash files and the in-flight request survived")
