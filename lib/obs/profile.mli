(** Span-based bottleneck attribution: folds a finished trace's spans
    into a stack-keyed flamegraph aggregate plus a p50-vs-tail stage
    contrast.

    {b Flamegraph keys.} Each span is keyed by the ";"-joined names of
    its enclosing spans, recovered from timestamps by a containment
    scan (spans of one request are well nested by construction of the
    telescoping stage API). Example keys:
    ["request"], ["request;module_stack"],
    ["request;module_stack;lru_cache;blkswitch_sched;kernel_driver;device"].
    Per key: occurrence count, inclusive (total) ns, and exclusive
    (self) ns — self is total minus the direct children's total, i.e.
    the layer's own software time.

    {b Tail attribution.} Requests are ranked by end-to-end latency
    (the root span). The stage means of the tail cohort (e2e >= p99)
    are contrasted against the p50 cohort (e2e <= p50): the stage whose
    mean grows most is where the tail lives.

    Only requests whose root "request" span was emitted participate;
    everything is deterministic and {!to_json} is byte-stable. *)

type node = {
  pf_key : string;  (** ";"-joined stack path *)
  pf_count : int;
  pf_total_ns : float;  (** inclusive *)
  pf_self_ns : float;  (** exclusive: total minus direct children *)
}

type tail_row = {
  tr_stage : string;
  tr_p50_mean_ns : float;  (** stage mean over the p50 cohort *)
  tr_tail_mean_ns : float;  (** stage mean over the tail (>= p99) cohort *)
}

type t = {
  requests : int;  (** requests with a root span *)
  p50_ns : float;  (** end-to-end p50 (nearest rank) *)
  p99_ns : float;
  p50_cohort : int;
  tail_cohort : int;
  p50_e2e_mean_ns : float;
  tail_e2e_mean_ns : float;
  nodes : node list;  (** sorted by key *)
  tail : tail_row list;  (** sorted by stage name *)
}

val of_events : Trace.ev list -> t
(** Aggregates every complete ('X') span; instants are ignored. *)

val to_json : t -> string
(** JSON object [{"requests":…,"p50_ns":…,"p99_ns":…,"flamegraph":
    […],"tail":{…}}]; keys sorted, fixed-format floats — byte-stable
    for equal aggregates. *)
