(* Tail-latency exemplar store.

   The span tracer samples 1-in-N requests prospectively, so the
   p99.9 outliers that actually burn SLO budget are almost never in
   the sample. An [Exemplar.t] fixes that retroactively: every
   request's stage anatomy is captured into a pooled fixed-capacity
   buffer (see {!Trace.flow}), and at completion the buffer is either
   recycled (latency under the adaptive threshold — the common case,
   no allocation, no copy) or promoted into this bounded top-K store
   with its full stage breakdown.

   Promotion is a copy into preallocated entry slots: after the store
   warms up, the steady state allocates nothing. Eviction replaces the
   strictly-smallest stored latency, so the store converges on the K
   slowest requests seen; ties keep the incumbent, which makes the
   contents deterministic for a deterministic run.

   The default threshold is adaptive: the store keeps a high-resolution
   [Latrec.Hist] of every offered latency and promotes what clears its
   corrected p99. The histogram's estimate never exceeds its exact
   running max, so a new slowest-so-far request always promotes — the
   property a coarse log2-bucket p99 (which overshoots up to 2x)
   breaks under a rising tail. Callers can instead wire an explicit
   closure — a fixed [exemplar_tail_us] floor, or any live signal. *)

(* Stage slots per captured request. The deepest stock stack
   (inject_lag/submit/queue_wait/dispatch/module_stack + one span per
   LabMod + complete/reap + a few instants) fits well inside 24. *)
let stage_capacity = 24

type entry = {
  mutable e_id : int;
  mutable e_t0 : float;
  mutable e_latency : float;
  mutable e_n : int; (* captured stage records *)
  mutable e_dropped : int; (* records past capacity *)
  e_names : string array;
  e_cats : string array;
  e_t0s : float array;
  e_t1s : float array;
}

type t = {
  k : int;
  entries : entry array;
  mutable n : int; (* live entries, <= k *)
  hist : Latrec.Hist.t; (* every offered latency, for the adaptive p99 *)
  mutable threshold : (unit -> float) option; (* None = adaptive p99 *)
  mutable offered : int;
  mutable promoted : int;
  mutable recycled : int;
  mutable evicted : int;
}

let fresh_entry () =
  {
    e_id = -1;
    e_t0 = 0.0;
    e_latency = 0.0;
    e_n = 0;
    e_dropped = 0;
    e_names = Array.make stage_capacity "";
    e_cats = Array.make stage_capacity "";
    e_t0s = Array.make stage_capacity 0.0;
    e_t1s = Array.make stage_capacity 0.0;
  }

let create ?threshold ~k () =
  let k = if k < 0 then 0 else k in
  {
    k;
    entries = Array.init k (fun _ -> fresh_entry ());
    n = 0;
    hist = Latrec.Hist.create ();
    threshold;
    offered = 0;
    promoted = 0;
    recycled = 0;
    evicted = 0;
  }

let set_threshold t f = t.threshold <- Some f

let threshold_ns t =
  match t.threshold with
  | Some f -> f ()
  | None -> Latrec.Hist.quantile t.hist 0.99
let k t = t.k
let stored t = t.n
let offered t = t.offered
let promoted t = t.promoted
let recycled t = t.recycled
let evicted t = t.evicted

let fill e ~id ~t0 ~latency ~n ~dropped ~names ~cats ~t0s ~t1s =
  e.e_id <- id;
  e.e_t0 <- t0;
  e.e_latency <- latency;
  e.e_n <- n;
  e.e_dropped <- dropped;
  Array.blit names 0 e.e_names 0 n;
  Array.blit cats 0 e.e_cats 0 n;
  Array.blit t0s 0 e.e_t0s 0 n;
  Array.blit t1s 0 e.e_t1s 0 n

(* Offer one completed request. Arrays belong to the caller's pooled
   flow buffer and are only read during the call; on promotion the
   first [n] records are copied into a preallocated slot. Returns
   [true] iff promoted. *)
let offer t ~id ~t0 ~latency ~n ~dropped ~names ~cats ~t0s ~t1s =
  t.offered <- t.offered + 1;
  Latrec.Hist.observe t.hist latency;
  let n = Stdlib.min n stage_capacity in
  if t.k = 0 || latency < threshold_ns t then begin
    t.recycled <- t.recycled + 1;
    false
  end
  else if t.n < t.k then begin
    fill t.entries.(t.n) ~id ~t0 ~latency ~n ~dropped ~names ~cats ~t0s ~t1s;
    t.n <- t.n + 1;
    t.promoted <- t.promoted + 1;
    true
  end
  else begin
    (* Full: replace the strictly-smallest latency (first minimum on
       ties — deterministic). Equal latencies keep the incumbent. *)
    let mi = ref 0 in
    for i = 1 to t.k - 1 do
      if t.entries.(i).e_latency < t.entries.(!mi).e_latency then mi := i
    done;
    if latency > t.entries.(!mi).e_latency then begin
      fill t.entries.(!mi) ~id ~t0 ~latency ~n ~dropped ~names ~cats ~t0s
        ~t1s;
      t.evicted <- t.evicted + 1;
      t.promoted <- t.promoted + 1;
      true
    end
    else begin
      t.recycled <- t.recycled + 1;
      false
    end
  end

(* ---- read-out ----------------------------------------------------- *)

type stage = { s_name : string; s_cat : string; s_t0 : float; s_t1 : float }

type view = {
  v_id : int;
  v_t0 : float;
  v_latency : float;
  v_dropped : int;
  v_stages : stage list;
}

(* Slowest first; equal latencies order by request id so two same-seed
   runs render identically. *)
let ranked t =
  let live = Array.sub t.entries 0 t.n in
  Array.sort
    (fun a b ->
      match Stdlib.compare b.e_latency a.e_latency with
      | 0 -> Stdlib.compare a.e_id b.e_id
      | c -> c)
    live;
  live

let dump t =
  Array.to_list (ranked t)
  |> List.map (fun e ->
         let stages = ref [] in
         for i = e.e_n - 1 downto 0 do
           stages :=
             {
               s_name = e.e_names.(i);
               s_cat = e.e_cats.(i);
               s_t0 = e.e_t0s.(i);
               s_t1 = e.e_t1s.(i);
             }
             :: !stages
         done;
         {
           v_id = e.e_id;
           v_t0 = e.e_t0;
           v_latency = e.e_latency;
           v_dropped = e.e_dropped;
           v_stages = !stages;
         })

let jstring s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let fns v = Printf.sprintf "%.3f" v

(* Byte-stable: fixed float format, deterministic order. *)
let to_json t =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"k":%d,"stored":%d,"offered":%d,"promoted":%d,"recycled":%d,"evicted":%d,"threshold_ns":%s,"exemplars":[|}
       t.k t.n t.offered t.promoted t.recycled t.evicted
       (fns (threshold_ns t)));
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"id\":%d,\"t0_ns\":%s,\"latency_ns\":%s,\"stages_dropped\":%d,\"stages\":["
           e.e_id (fns e.e_t0) (fns e.e_latency) e.e_dropped);
      for j = 0 to e.e_n - 1 do
        if j > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf {|{"name":%s,"cat":%s,"t0_ns":%s,"dur_ns":%s}|}
             (jstring e.e_names.(j))
             (jstring e.e_cats.(j))
             (fns e.e_t0s.(j))
             (fns (e.e_t1s.(j) -. e.e_t0s.(j))))
      done;
      Buffer.add_string b "]}")
    (ranked t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
