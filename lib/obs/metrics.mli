(** Unified metrics registry: named counters, gauges and log-bucketed
    histograms that every subsystem registers into, replacing bespoke
    per-module counter structs with one queryable tree.

    Dotted names express the hierarchy ("ipc.qp3.doorbell_rings",
    "mod.lru.hits", "device.nvme.bytes_read").  Recording never touches
    simulated time — instruments are plain mutable records — so wiring
    metrics into a component cannot perturb a deterministic run. *)

type t
(** A registry: a flat map from dotted name to instrument. *)

val create : unit -> t

(** {1 Counters} *)

type counter
(** Monotonic integer counter.  A counter handle obtained without a
    registry ([counter "x"]) is "detached": it records normally but is
    invisible to export — this lets library code instrument
    unconditionally. *)

val counter : ?reg:t -> string -> counter
(** [counter ~reg name] interns (get-or-creates) the named counter in
    [reg]; without [~reg] it returns a fresh detached counter.
    @raise Invalid_argument if [name] exists with a different kind. *)

val incr : ?by:int -> counter -> unit
val value : counter -> int
val set_value : counter -> int -> unit
val reset : counter -> unit

(** {1 Gauges} *)

val gauge_fn : t -> string -> (unit -> float) -> unit
(** [gauge_fn reg name f] registers a read-through gauge: [f] is called
    at export time.  Re-registering a name replaces the callback. *)

(** {1 Histograms} *)

type histogram
(** Fixed log2-bucketed distribution (64 buckets; bucket [i] holds
    values in [(2^(i-1), 2^i]]).  Quantiles report the upper bound of
    the rank's bucket, i.e. within one power of two. *)

val histogram : ?reg:t -> string -> histogram
(** Interned like {!counter}; detached without [~reg]. *)

val observe : histogram -> float -> unit
(** [observe h v] records [v]; non-finite values are clamped to 0 at
    record time, so one pathological observation cannot poison the
    running sum or the quantiles. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_min : histogram -> float
(** Exact smallest observation (not bucket-quantized); 0.0 when empty. *)

val hist_max : histogram -> float
(** Exact largest observation; 0.0 when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]; 0.0 when empty. *)

val p50 : histogram -> float
val p99 : histogram -> float
val p999 : histogram -> float

(** {1 Export} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** exact extreme, not bucket-quantized; 0 when empty *)
  hs_max : float;
  hs_p50 : float;
  hs_p99 : float;
  hs_p999 : float;
  hs_buckets : (float * int) list;  (** (bucket upper bound, count) *)
}

type value = V_counter of int | V_gauge of float | V_histogram of hist_snapshot

val to_list : t -> (string * value) list
(** Snapshot of every instrument, sorted by name (deterministic).
    Gauge callbacks returning non-finite values are clamped to 0 at
    read time. *)

val to_jsonl : t -> string
(** One JSON object per line, sorted by name; floats are fixed-format
    and non-finite values are clamped to 0, so equal registry states
    export byte-identical snapshots. *)

val clear : t -> unit
