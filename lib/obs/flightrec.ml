(* Always-on flight recorder with triggered black-box dumps.

   A fixed-size ring of recent encoded events — submissions,
   completions, errno failures, worker park/wake, scheduler decisions,
   SLO window rolls, injected faults. Recording is a handful of array
   stores into preallocated struct-of-arrays columns (no allocation,
   no engine events, no simulated time), so the recorder can stay on
   for every run at bounded cost: the ring holds the last [cap]
   events and older ones are overwritten.

   When a trigger fires — an injected fault, a client-visible
   ENODEV/ETIMEDOUT, a deadline miss, an SLO burn rate above 1 — the
   ring is serialized into a black-box dump: a JSON snapshot of what
   the system was doing just before the event. The first few dumps
   are kept (a crashing run triggers in bursts; the earliest context
   is the diagnostic one) and exported by [Platform.export] to
   out/blackbox.json. *)

type kind =
  | Submit
  | Complete
  | Errno
  | Deadline
  | Park
  | Wake
  | Slo_roll
  | Fault
  | Sched
  | Trigger

let code_of_kind = function
  | Submit -> 0
  | Complete -> 1
  | Errno -> 2
  | Deadline -> 3
  | Park -> 4
  | Wake -> 5
  | Slo_roll -> 6
  | Fault -> 7
  | Sched -> 8
  | Trigger -> 9

let kind_names =
  [|
    "submit"; "complete"; "errno"; "deadline"; "park"; "wake"; "slo_roll";
    "fault"; "sched"; "trigger";
  |]

let kind_name k = kind_names.(code_of_kind k)

type t = {
  cap : int;
  codes : int array;
  ts : float array;
  ids : int array;
  args : int array;
  tags : string array;
  mutable head : int; (* next write slot *)
  mutable recorded : int; (* total events ever recorded *)
  mutable triggers : int;
  max_dumps : int;
  mutable rev_dumps : string list; (* first [max_dumps] dumps, newest head *)
  mutable dumped_reasons : string list; (* one dump kept per reason *)
}

let create ?(max_dumps = 4) ~cap () =
  let cap = if cap < 0 then 0 else cap in
  {
    cap;
    codes = Array.make (Stdlib.max cap 1) 0;
    ts = Array.make (Stdlib.max cap 1) 0.0;
    ids = Array.make (Stdlib.max cap 1) (-1);
    args = Array.make (Stdlib.max cap 1) 0;
    tags = Array.make (Stdlib.max cap 1) "";
    head = 0;
    recorded = 0;
    triggers = 0;
    max_dumps;
    rev_dumps = [];
    dumped_reasons = [];
  }

let cap t = t.cap
let recorded t = t.recorded
let triggers t = t.triggers
let dumps t = List.rev t.rev_dumps

(* The hot path: five array stores and two integer updates. [tag]
   should be a shared/literal string — the recorder never copies or
   builds strings while recording. *)
let record t kind ~now ?(id = -1) ?(arg = 0) ?(tag = "") () =
  if t.cap > 0 then begin
    let i = t.head in
    t.codes.(i) <- code_of_kind kind;
    t.ts.(i) <- now;
    t.ids.(i) <- id;
    t.args.(i) <- arg;
    t.tags.(i) <- tag;
    t.head <- (if i + 1 = t.cap then 0 else i + 1);
    t.recorded <- t.recorded + 1
  end

(* ---- read-out ----------------------------------------------------- *)

type event = {
  e_kind : string;
  e_ts : float;
  e_id : int;
  e_arg : int;
  e_tag : string;
}

(* Ring contents oldest-to-newest. *)
let events t =
  let n = Stdlib.min t.recorded t.cap in
  let out = ref [] in
  for j = n - 1 downto 0 do
    let i = (t.head - n + j + t.cap) mod t.cap in
    out :=
      {
        e_kind = kind_names.(t.codes.(i));
        e_ts = t.ts.(i);
        e_id = t.ids.(i);
        e_arg = t.args.(i);
        e_tag = t.tags.(i);
      }
      :: !out
  done;
  !out

let jstring s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let fns v = Printf.sprintf "%.3f" v

let dump_json t ~reason ~now =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf {|{"reason":%s,"now_ns":%s,"events":[|} (jstring reason)
       (fns now));
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"kind\":%s,\"ts_ns\":%s,\"id\":%d,\"arg\":%d,\"tag\":%s}"
           (jstring e.e_kind) (fns e.e_ts) e.e_id e.e_arg (jstring e.e_tag)))
    (events t);
  Buffer.add_string b "\n]}";
  Buffer.contents b

(* Fire a trigger: record it (so the dump's last event names its own
   cause), count it, and snapshot the ring for the first trigger of
   each distinct reason, up to [max_dumps] dumps total. Later triggers
   only count: a saturated failing run fires thousands of times and
   the earliest context per failure mode is the diagnostic one —
   dedup by reason keeps a rare trigger (a client-visible errno) from
   being crowded out by a chatty one (per-op injected faults). *)
let trigger t ~reason ~now =
  if t.cap > 0 then begin
    record t Trigger ~now ~tag:reason ();
    t.triggers <- t.triggers + 1;
    if
      List.length t.rev_dumps < t.max_dumps
      && not (List.mem reason t.dumped_reasons)
    then begin
      t.dumped_reasons <- reason :: t.dumped_reasons;
      t.rev_dumps <- dump_json t ~reason ~now :: t.rev_dumps
    end
  end

(* Export artifact: counters plus the retained dumps (each already a
   JSON object, embedded verbatim). Byte-stable. *)
let to_json t =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf {|{"cap":%d,"recorded":%d,"triggers":%d,"dumps":[|} t.cap
       t.recorded t.triggers);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b d)
    (dumps t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
