(** Continuous-profiling sampler: named probes recorded into fixed-size
    ring buffers at a periodic simulated-time tick.

    The sampler is passive — it owns no clock and schedules nothing.
    The owner drives {!tick} from a simulated-time source (in LabStor,
    the {!Lab_sim.Engine} tick hook, which fires between events and is
    invisible to the event heap); when profiling is disabled no sampler
    is constructed at all, so the zero-overhead-when-off guarantee
    holds by construction.

    Probes must only {e read} simulation state. A probe closure may
    keep private state, e.g. the previous cumulative busy count, to
    report per-interval deltas. Non-finite probe values are clamped to
    0 at record time. *)

type t

type probe = float -> float
(** Called with the sample instant (simulated ns); returns the value to
    record. Must not wait, compute, or schedule. *)

val create : ?capacity:int -> period:float -> unit -> t
(** [capacity] (default 4096) is the per-series ring size: once full,
    the oldest sample is overwritten. [period] is the intended sampling
    period in simulated ns (recorded in the export; the owner's tick
    source enforces it). @raise Invalid_argument if either is <= 0. *)

val period : t -> float

val capacity : t -> int

val add_series : t -> string -> probe -> unit
(** Registers a named probe (dotted names, same convention as
    {!Metrics}). Series may be added at any time — components created
    mid-run (queue pairs, cache instances) self-register.
    @raise Invalid_argument on a duplicate name. *)

val tick : t -> now:float -> unit
(** Samples every probe once at instant [now]. *)

val ticks : t -> int
(** Number of ticks fired so far. *)

val series_names : t -> string list
(** Sorted. *)

val samples : t -> string -> (float * float) list
(** [(time, value)] pairs of the named series, oldest first (at most
    [capacity] of them); empty for unknown names. *)

(** {1 Summaries} *)

type stat = {
  st_name : string;
  st_count : int;  (** samples currently held *)
  st_mean : float;
  st_max : float;
  st_last : float;  (** most recent sample, 0 when empty *)
}

val stats : t -> stat list
(** One summary per series, sorted by name — the [labstor_cli top]
    view. *)

(** {1 Export} *)

val to_json : t -> string
(** JSON object [{"period_ns":…,"ticks":…,"series":[{"name":…,
    "samples":[[t,v],…]},…]}]; series sorted by name, fixed-format
    floats — byte-stable for equal sampler states. *)

val empty_json : string
(** The export of a sampler that never existed (profiling disabled). *)
