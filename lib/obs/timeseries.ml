(* Continuous-profiling sampler: ring-buffered time series.

   A sampler holds a set of named probes; every [tick ~now] reads each
   probe once and appends (now, value) to the probe's ring buffer,
   overwriting the oldest sample when the ring is full. The sampler is
   deliberately passive — it owns no clock and schedules nothing; the
   owner drives it from a simulated-time source (the Engine's tick
   hook), so a run with sampling disabled simply never constructs one.

   Probes receive the sample instant and must only read state: a probe
   that waits, computes, or schedules would perturb the run it is
   observing. Closures may keep private state (e.g. the previous
   cumulative busy count, to report per-interval deltas).

   Export is byte-stable: series sorted by name, fixed-format floats,
   non-finite probe values clamped to 0 at record time. *)

type probe = float -> float

type series = {
  s_name : string;
  s_probe : probe;
  s_times : float array;
  s_values : float array;
  mutable s_len : int; (* samples held, <= capacity *)
  mutable s_head : int; (* next write slot *)
}

type t = {
  period : float;
  capacity : int;
  mutable series : series list; (* registration order, newest first *)
  mutable ticks : int;
}

let create ?(capacity = 4096) ~period () =
  if period <= 0.0 then invalid_arg "Timeseries.create: period must be positive";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  { period; capacity; series = []; ticks = 0 }

let period t = t.period

let capacity t = t.capacity

let ticks t = t.ticks

let add_series t name probe =
  if List.exists (fun s -> s.s_name = name) t.series then
    invalid_arg (Printf.sprintf "Timeseries.add_series: %S already registered" name);
  t.series <-
    {
      s_name = name;
      s_probe = probe;
      s_times = Array.make t.capacity 0.0;
      s_values = Array.make t.capacity 0.0;
      s_len = 0;
      s_head = 0;
    }
    :: t.series

let record s ~now v =
  let v = if Float.is_finite v then v else 0.0 in
  s.s_times.(s.s_head) <- now;
  s.s_values.(s.s_head) <- v;
  s.s_head <- (s.s_head + 1) mod Array.length s.s_times;
  if s.s_len < Array.length s.s_times then s.s_len <- s.s_len + 1

let tick t ~now =
  t.ticks <- t.ticks + 1;
  List.iter (fun s -> record s ~now (s.s_probe now)) t.series

let sorted_series t =
  List.sort (fun a b -> String.compare a.s_name b.s_name) t.series

let series_names t = List.map (fun s -> s.s_name) (sorted_series t)

let fold_samples s f acc =
  (* Oldest-first: the ring's oldest sample sits at [head] once it has
     wrapped, at 0 before. *)
  let cap = Array.length s.s_times in
  let start = if s.s_len < cap then 0 else s.s_head in
  let acc = ref acc in
  for i = 0 to s.s_len - 1 do
    let j = (start + i) mod cap in
    acc := f !acc s.s_times.(j) s.s_values.(j)
  done;
  !acc

let find t name = List.find_opt (fun s -> s.s_name = name) t.series

let samples t name =
  match find t name with
  | None -> []
  | Some s -> List.rev (fold_samples s (fun acc ts v -> (ts, v) :: acc) [])

type stat = {
  st_name : string;
  st_count : int;
  st_mean : float;
  st_max : float;
  st_last : float;
}

let stat_of s =
  let count, sum, mx, last =
    fold_samples s
      (fun (n, sum, mx, _) _ v -> (n + 1, sum +. v, Float.max mx v, v))
      (0, 0.0, 0.0, 0.0)
  in
  {
    st_name = s.s_name;
    st_count = count;
    st_mean = (if count = 0 then 0.0 else sum /. float_of_int count);
    st_max = mx;
    st_last = last;
  }

let stats t = List.map stat_of (sorted_series t)

(* --- export ------------------------------------------------------- *)

let jfloat f = Printf.sprintf "%.6f" (if Float.is_finite f then f else 0.0)

(* JSON object fragment (no trailing newline): the Platform exporter
   embeds it in the combined profile artifact. *)
let to_json t =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf {|{"period_ns":%s,"ticks":%d,"series":[|} (jfloat t.period)
       t.ticks);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n{\"name\":\"%s\",\"samples\":[" s.s_name);
      let first = ref true in
      ignore
        (fold_samples s
           (fun () ts v ->
             if not !first then Buffer.add_char b ',';
             first := false;
             Buffer.add_string b (Printf.sprintf "[%s,%s]" (jfloat ts) (jfloat v)))
           ());
      Buffer.add_string b "]}")
    (sorted_series t);
  Buffer.add_string b "\n]}";
  Buffer.contents b

let empty_json = {|{"period_ns":0.000000,"ticks":0,"series":[]}|}
