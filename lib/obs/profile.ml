(* Span-based bottleneck attribution.

   Folds the complete ('X') spans of a finished trace into two
   aggregates:

   - a stack-keyed flamegraph: every span is assigned a path key built
     from its enclosing spans ("request;module_stack;lru_cache;…"),
     and per key we keep occurrence count, inclusive (total) time and
     exclusive (self) time. Nesting is recovered from timestamps with
     a containment scan — spans are sorted by (begin asc, duration
     desc, emission order) and pushed on a stack whose frames pop when
     their end passes; the telescoping stage API guarantees the spans
     of one request are well nested, so the scan is exact.

   - tail attribution: per-request stage durations are split into a
     p50 cohort (end-to-end latency <= the p50) and a tail cohort
     (>= the p99), and each stage's mean is reported per cohort — the
     direct answer to "which stage grows in the tail?".

   Only requests whose root "request" span was emitted participate
   (in-flight requests at run end have no root and are dropped).
   Everything is deterministic and the JSON export is byte-stable. *)

type node = {
  pf_key : string;
  pf_count : int;
  pf_total_ns : float;
  pf_self_ns : float;
}

type tail_row = { tr_stage : string; tr_p50_mean_ns : float; tr_tail_mean_ns : float }

type t = {
  requests : int;
  p50_ns : float;
  p99_ns : float;
  p50_cohort : int;
  tail_cohort : int;
  p50_e2e_mean_ns : float;
  tail_e2e_mean_ns : float;
  nodes : node list; (* sorted by key *)
  tail : tail_row list; (* sorted by stage name *)
}

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

type acc = { mutable a_count : int; mutable a_total : float; mutable a_self : float }

type frame = {
  fr_path : string;
  fr_end : float;
  fr_dur : float;
  mutable fr_child : float;
}

let of_events (evs : Trace.ev list) =
  (* Group spans per request, remembering emission order for the sort
     tie-break (deterministic input -> deterministic aggregate). *)
  let by_req : (int, (int * Trace.ev) list ref) Hashtbl.t = Hashtbl.create 64 in
  let roots : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i (e : Trace.ev) ->
      if e.Trace.ev_ph = 'X' then begin
        (match Hashtbl.find_opt by_req e.Trace.ev_id with
        | Some l -> l := (i, e) :: !l
        | None -> Hashtbl.add by_req e.Trace.ev_id (ref [ (i, e) ]));
        if e.Trace.ev_cat = "request" then
          Hashtbl.replace roots e.Trace.ev_id e.Trace.ev_dur
      end)
    evs;
  let agg : (string, acc) Hashtbl.t = Hashtbl.create 64 in
  let acc_of path =
    match Hashtbl.find_opt agg path with
    | Some a -> a
    | None ->
        let a = { a_count = 0; a_total = 0.0; a_self = 0.0 } in
        Hashtbl.add agg path a;
        a
  in
  (* Per-request per-stage durations for the tail contrast. *)
  let stage_names = ref [] in
  let req_stages : (int, (string, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let req_ids = ref [] in
  Hashtbl.iter
    (fun id spans ->
      match Hashtbl.find_opt roots id with
      | None -> () (* no root span: request still in flight at run end *)
      | Some _ ->
          req_ids := id :: !req_ids;
          (* Containment order: start asc, then at equal starts the
             longer span is the parent and is pushed first. Two
             refinements at equal starts: a zero-width span is a
             degenerate {e predecessor} (a stage that took no time),
             not a child, so it sorts first and is popped before the
             next span opens; and for equal (start, duration) — an
             inner span exactly filling its parent — the parent closes
             last, so with 'X' events emitted at span close the {e
             later} emission is the outer one. *)
          let sorted =
            List.sort
              (fun (ia, (a : Trace.ev)) (ib, (b : Trace.ev)) ->
                let c = Float.compare a.Trace.ev_ts b.Trace.ev_ts in
                if c <> 0 then c
                else
                  let za = a.Trace.ev_dur = 0.0
                  and zb = b.Trace.ev_dur = 0.0 in
                  if za <> zb then (if za then -1 else 1)
                  else
                    let c = Float.compare b.Trace.ev_dur a.Trace.ev_dur in
                    if c <> 0 then c else Int.compare ib ia)
              !spans
          in
          let stages = Hashtbl.create 8 in
          Hashtbl.replace req_stages id stages;
          let stack = ref [] in
          let pop_frame f =
            let a = acc_of f.fr_path in
            a.a_self <- a.a_self +. Float.max 0.0 (f.fr_dur -. f.fr_child)
          in
          let rec pop_until ts =
            match !stack with
            | f :: rest when f.fr_end <= ts ->
                pop_frame f;
                stack := rest;
                pop_until ts
            | _ -> ()
          in
          List.iter
            (fun (_, (e : Trace.ev)) ->
              pop_until e.Trace.ev_ts;
              let path =
                match !stack with
                | [] -> e.Trace.ev_name
                | parent :: _ ->
                    parent.fr_child <- parent.fr_child +. e.Trace.ev_dur;
                    parent.fr_path ^ ";" ^ e.Trace.ev_name
              in
              let a = acc_of path in
              a.a_count <- a.a_count + 1;
              a.a_total <- a.a_total +. e.Trace.ev_dur;
              if e.Trace.ev_cat = "stage" then begin
                if not (List.mem e.Trace.ev_name !stage_names) then
                  stage_names := e.Trace.ev_name :: !stage_names;
                let prev =
                  Option.value (Hashtbl.find_opt stages e.Trace.ev_name)
                    ~default:0.0
                in
                Hashtbl.replace stages e.Trace.ev_name
                  (prev +. e.Trace.ev_dur)
              end;
              stack :=
                {
                  fr_path = path;
                  fr_end = e.Trace.ev_ts +. e.Trace.ev_dur;
                  fr_dur = e.Trace.ev_dur;
                  fr_child = 0.0;
                }
                :: !stack)
            sorted;
          List.iter pop_frame !stack)
    by_req;
  let nodes =
    Hashtbl.fold
      (fun key a acc ->
        {
          pf_key = key;
          pf_count = a.a_count;
          pf_total_ns = a.a_total;
          pf_self_ns = a.a_self;
        }
        :: acc)
      agg []
    |> List.sort (fun a b -> String.compare a.pf_key b.pf_key)
  in
  (* Tail contrast: p50 cohort (e2e <= p50) vs tail cohort (>= p99). *)
  let durs =
    !req_ids
    |> List.map (fun id -> Hashtbl.find roots id)
    |> List.sort Float.compare |> Array.of_list
  in
  let requests = Array.length durs in
  let p50v = percentile durs 0.50 in
  let p99v = percentile durs 0.99 in
  let in_p50 id = Hashtbl.find roots id <= p50v in
  let in_tail id = Hashtbl.find roots id >= p99v in
  let cohort pred = List.filter pred !req_ids in
  let p50_ids = cohort in_p50 and tail_ids = cohort in_tail in
  let mean_of ids f =
    match ids with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun s id -> s +. f id) 0.0 ids
        /. float_of_int (List.length ids)
  in
  let stage_dur id name =
    match Hashtbl.find_opt req_stages id with
    | None -> 0.0
    | Some tbl -> Option.value (Hashtbl.find_opt tbl name) ~default:0.0
  in
  let tail =
    !stage_names
    |> List.sort String.compare
    |> List.map (fun name ->
           {
             tr_stage = name;
             tr_p50_mean_ns = mean_of p50_ids (fun id -> stage_dur id name);
             tr_tail_mean_ns = mean_of tail_ids (fun id -> stage_dur id name);
           })
  in
  {
    requests;
    p50_ns = p50v;
    p99_ns = p99v;
    p50_cohort = List.length p50_ids;
    tail_cohort = List.length tail_ids;
    p50_e2e_mean_ns = mean_of p50_ids (fun id -> Hashtbl.find roots id);
    tail_e2e_mean_ns = mean_of tail_ids (fun id -> Hashtbl.find roots id);
    nodes;
    tail;
  }

(* --- export ------------------------------------------------------- *)

let jfloat f = Printf.sprintf "%.1f" (if Float.is_finite f then f else 0.0)

(* JSON object fragment; embedded by the Platform exporter next to the
   sampler's timeline object. *)
let to_json t =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"requests":%d,"p50_ns":%s,"p99_ns":%s,"flamegraph":[|} t.requests
       (jfloat t.p50_ns) (jfloat t.p99_ns));
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"key\":\"%s\",\"count\":%d,\"total_ns\":%s,\"self_ns\":%s}"
           n.pf_key n.pf_count (jfloat n.pf_total_ns) (jfloat n.pf_self_ns)))
    t.nodes;
  Buffer.add_string b
    (Printf.sprintf
       "\n],\"tail\":{\"p50_requests\":%d,\"tail_requests\":%d,\"p50_e2e_mean_ns\":%s,\"tail_e2e_mean_ns\":%s,\"stages\":["
       t.p50_cohort t.tail_cohort (jfloat t.p50_e2e_mean_ns)
       (jfloat t.tail_e2e_mean_ns));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"stage\":\"%s\",\"p50_mean_ns\":%s,\"tail_mean_ns\":%s}"
           r.tr_stage (jfloat r.tr_p50_mean_ns) (jfloat r.tr_tail_mean_ns)))
    t.tail;
  Buffer.add_string b "\n]}}";
  Buffer.contents b
