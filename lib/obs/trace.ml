(* Span tracer over simulated time.

   A tracer collects Chrome-trace-event-style spans ("X" complete
   events) and instants ("i") stamped with simulated-time nanoseconds.
   Each traced request carries a [flow]: a tiny handle holding the
   request id, the root begin timestamp, and at most one currently-open
   stage.  Stages telescope — submit / queue_wait / dispatch /
   module_stack / complete / reap — closing one and opening the next at
   the same instant, so per-request stage durations sum exactly to the
   root "request" span.

   Sampling is deterministic: request [id] is traced iff
   [sample > 0 && id mod sample = 0].  With [sample = 0] the per-request
   cost is a single option check ([Request.trace] stays [None]), and the
   tracer never schedules events or charges simulated time, so enabling
   or disabling it cannot change a run's timing or event count. *)

type ev = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete span | 'i' instant *)
  ev_ts : float; (* begin, simulated ns *)
  ev_dur : float; (* duration ns; 0 for instants *)
  ev_tid : int; (* simulated hardware thread *)
  ev_id : int; (* request id *)
  ev_args : (string * string) list;
}

type t = {
  sample : int;
  mutable rev_events : ev list;
  mutable count : int;
}

type flow = {
  fl_tr : t;
  fl_id : int;
  fl_t0 : float;
  mutable fl_open : (string * float) option;
}

let create ?(sample = 0) () = { sample; rev_events = []; count = 0 }
let sample t = t.sample
let enabled t = t.sample > 0
let sampled t ~id = t.sample > 0 && id mod t.sample = 0

let emit tr ev =
  tr.rev_events <- ev :: tr.rev_events;
  tr.count <- tr.count + 1

let start t ~id ~now =
  if sampled t ~id then Some { fl_tr = t; fl_id = id; fl_t0 = now; fl_open = None }
  else None

let flow_id fl = fl.fl_id
let flow_t0 fl = fl.fl_t0

let span ?(args = []) fl ~name ~cat ~tid ~t0 ~t1 =
  emit fl.fl_tr
    {
      ev_name = name;
      ev_cat = cat;
      ev_ph = 'X';
      ev_ts = t0;
      ev_dur = (if t1 > t0 then t1 -. t0 else 0.0);
      ev_tid = tid;
      ev_id = fl.fl_id;
      ev_args = args;
    }

let instant ?(args = []) fl ~name ~tid ~now =
  emit fl.fl_tr
    {
      ev_name = name;
      ev_cat = "event";
      ev_ph = 'i';
      ev_ts = now;
      ev_dur = 0.0;
      ev_tid = tid;
      ev_id = fl.fl_id;
      ev_args = args;
    }

let open_stage fl ~name ~now = fl.fl_open <- Some (name, now)

let close_stage fl ~tid ~now =
  match fl.fl_open with
  | None -> ()
  | Some (name, t0) ->
      fl.fl_open <- None;
      span fl ~name ~cat:"stage" ~tid ~t0 ~t1:now

let finish fl ~tid ~now =
  close_stage fl ~tid ~now;
  span fl ~name:"request" ~cat:"request" ~tid ~t0:fl.fl_t0 ~t1:now

let events t = List.rev t.rev_events
let event_count t = t.count

let clear t =
  t.rev_events <- [];
  t.count <- 0

(* --- Chrome trace-event JSON -------------------------------------- *)

let jstring s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Chrome timestamps are microseconds; "%.3f" keeps ns resolution with
   a fixed format so equal traces serialize byte-identically. *)
let us ns = Printf.sprintf "%.3f" (ns /. 1e3)

let event_json b ev =
  Buffer.add_string b
    (Printf.sprintf
       {|{"name":%s,"cat":%s,"ph":"%c","ts":%s,"pid":1,"tid":%d|}
       (jstring ev.ev_name) (jstring ev.ev_cat) ev.ev_ph (us ev.ev_ts)
       ev.ev_tid);
  if ev.ev_ph = 'X' then Buffer.add_string b (Printf.sprintf {|,"dur":%s|} (us ev.ev_dur));
  if ev.ev_ph = 'i' then Buffer.add_string b {|,"s":"t"|};
  let args = ("req", string_of_int ev.ev_id) :: ev.ev_args in
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (jstring k);
      Buffer.add_char b ':';
      Buffer.add_string b (jstring v))
    args;
  Buffer.add_string b "}}"

(* Events in emission order: deterministic for a deterministic run, and
   Perfetto sorts by ts on load anyway. *)
let to_chrome_json t =
  let b = Buffer.create 65536 in
  Buffer.add_string b {|{"displayTimeUnit":"ns","traceEvents":[|};
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      event_json b ev)
    (events t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
