(* Span tracer over simulated time.

   A tracer collects Chrome-trace-event-style spans ("X" complete
   events) and instants ("i") stamped with simulated-time nanoseconds.
   Each traced request carries a [flow]: a pooled handle holding the
   request id, the root begin timestamp, at most one currently-open
   stage, and a fixed-capacity stage-capture buffer.  Stages telescope
   — submit / queue_wait / dispatch / module_stack / complete / reap —
   closing one and opening the next at the same instant, so per-request
   stage durations sum exactly to the root "request" span.

   Sampling is deterministic: request [id] is traced iff [sample > 0]
   and a multiplicative hash of the id is 0 mod [sample].  Hashing
   first matters because request ids are stride-allocated (per-client
   counters, batched blocks), so a bare [id mod sample] can alias the
   stride and sample a biased cohort — every id from one client, none
   from another.

   Orthogonally, an [Exemplar.t] store turns the tracer into a
   retroactive one: when attached, *every* request gets a flow and its
   spans are recorded into the flow's capture buffer (preallocated,
   pooled, recycled at finish — zero allocation in steady state); only
   sampled flows additionally emit Chrome events.  At [finish] the
   buffer is offered to the store, which keeps the top-K slowest.

   With [sample = 0] and no store the per-request cost is a single
   option check ([Request.trace] stays [None]), and the tracer never
   schedules events or charges simulated time, so enabling or disabling
   it cannot change a run's timing or event count. *)

type ev = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete span | 'i' instant *)
  ev_ts : float; (* begin, simulated ns *)
  ev_dur : float; (* duration ns; 0 for instants *)
  ev_tid : int; (* simulated hardware thread *)
  ev_id : int; (* request id *)
  ev_args : (string * string) list;
}

type t = {
  sample : int;
  exemplars : Exemplar.t option;
  mutable rev_events : ev list;
  mutable count : int;
  mutable pool : flow array; (* array-stack of recycled flows *)
  mutable pool_n : int;
}

and flow = {
  fl_tr : t;
  mutable fl_id : int;
  mutable fl_t0 : float;
  mutable fl_emit : bool; (* sampled -> emit Chrome events *)
  mutable fl_open : bool;
  mutable fl_open_name : string;
  mutable fl_open_t0 : float;
  (* Capture buffer: parallel columns, [fl_n] live records. *)
  mutable fl_n : int;
  mutable fl_dropped : int;
  fl_names : string array;
  fl_cats : string array;
  fl_t0s : float array;
  fl_t1s : float array;
}

let create ?(sample = 0) ?exemplars () =
  { sample; exemplars; rev_events = []; count = 0; pool = [||]; pool_n = 0 }

let sample t = t.sample
let enabled t = t.sample > 0
let exemplar_store t = t.exemplars
let capture t = t.exemplars <> None

(* Multiplicative hash (a 63-bit-safe odd constant from the SplitMix /
   xorshift family) decorrelates the sampling decision from id
   allocation strides; [land max_int] keeps the modulus non-negative. *)
let mix id =
  let h = id * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land max_int

let sampled t ~id = t.sample > 0 && mix id mod t.sample = 0

let emit tr ev =
  tr.rev_events <- ev :: tr.rev_events;
  tr.count <- tr.count + 1

(* ---- flow pool ---------------------------------------------------- *)

let cap = Exemplar.stage_capacity

let fresh_flow tr =
  {
    fl_tr = tr;
    fl_id = -1;
    fl_t0 = 0.0;
    fl_emit = false;
    fl_open = false;
    fl_open_name = "";
    fl_open_t0 = 0.0;
    fl_n = 0;
    fl_dropped = 0;
    fl_names = Array.make cap "";
    fl_cats = Array.make cap "";
    fl_t0s = Array.make cap 0.0;
    fl_t1s = Array.make cap 0.0;
  }

let acquire tr =
  if tr.pool_n > 0 then begin
    tr.pool_n <- tr.pool_n - 1;
    tr.pool.(tr.pool_n)
  end
  else fresh_flow tr

(* Flows that are never finished (deadline-missed, crash-lost) simply
   fall to the GC; only finished flows recycle, so a stale handle can
   never alias a live request's buffer. *)
let release tr fl =
  if tr.pool_n = Array.length tr.pool then begin
    let grown = Array.make (Stdlib.max 8 (2 * tr.pool_n)) fl in
    Array.blit tr.pool 0 grown 0 tr.pool_n;
    tr.pool <- grown
  end;
  tr.pool.(tr.pool_n) <- fl;
  tr.pool_n <- tr.pool_n + 1

let start t ~id ~now =
  let em = sampled t ~id in
  if em || t.exemplars <> None then begin
    let fl = acquire t in
    fl.fl_id <- id;
    fl.fl_t0 <- now;
    fl.fl_emit <- em;
    fl.fl_open <- false;
    fl.fl_n <- 0;
    fl.fl_dropped <- 0;
    Some fl
  end
  else None

let flow_id fl = fl.fl_id
let flow_t0 fl = fl.fl_t0

(* ---- recording ---------------------------------------------------- *)

let record_stage fl ~name ~cat ~t0 ~t1 =
  if fl.fl_n < cap then begin
    let i = fl.fl_n in
    fl.fl_names.(i) <- name;
    fl.fl_cats.(i) <- cat;
    fl.fl_t0s.(i) <- t0;
    fl.fl_t1s.(i) <- t1;
    fl.fl_n <- i + 1
  end
  else fl.fl_dropped <- fl.fl_dropped + 1

let emit_span ?(args = []) fl ~name ~cat ~tid ~t0 ~t1 =
  emit fl.fl_tr
    {
      ev_name = name;
      ev_cat = cat;
      ev_ph = 'X';
      ev_ts = t0;
      ev_dur = (if t1 > t0 then t1 -. t0 else 0.0);
      ev_tid = tid;
      ev_id = fl.fl_id;
      ev_args = args;
    }

let span ?(args = []) fl ~name ~cat ~tid ~t0 ~t1 =
  if fl.fl_tr.exemplars <> None then record_stage fl ~name ~cat ~t0 ~t1;
  if fl.fl_emit then emit_span ~args fl ~name ~cat ~tid ~t0 ~t1

let instant ?(args = []) fl ~name ~tid ~now =
  if fl.fl_tr.exemplars <> None then
    record_stage fl ~name ~cat:"event" ~t0:now ~t1:now;
  if fl.fl_emit then
    emit fl.fl_tr
      {
        ev_name = name;
        ev_cat = "event";
        ev_ph = 'i';
        ev_ts = now;
        ev_dur = 0.0;
        ev_tid = tid;
        ev_id = fl.fl_id;
        ev_args = args;
      }

let open_stage fl ~name ~now =
  fl.fl_open <- true;
  fl.fl_open_name <- name;
  fl.fl_open_t0 <- now

let close_stage fl ~tid ~now =
  if fl.fl_open then begin
    fl.fl_open <- false;
    span fl ~name:fl.fl_open_name ~cat:"stage" ~tid ~t0:fl.fl_open_t0 ~t1:now
  end

(* Finish: close any open stage, emit the root span (sampled flows
   only — the root is not a capture record, so the captured stage-cat
   entries still tile the request exactly), offer the buffer to the
   exemplar store, recycle the flow. The flow must not be used after. *)
let finish fl ~tid ~now =
  close_stage fl ~tid ~now;
  if fl.fl_emit then
    emit_span fl ~name:"request" ~cat:"request" ~tid ~t0:fl.fl_t0 ~t1:now;
  (match fl.fl_tr.exemplars with
  | Some ex ->
      ignore
        (Exemplar.offer ex ~id:fl.fl_id ~t0:fl.fl_t0 ~latency:(now -. fl.fl_t0)
           ~n:fl.fl_n ~dropped:fl.fl_dropped ~names:fl.fl_names
           ~cats:fl.fl_cats ~t0s:fl.fl_t0s ~t1s:fl.fl_t1s
          : bool)
  | None -> ());
  release fl.fl_tr fl

let events t = List.rev t.rev_events
let event_count t = t.count

let clear t =
  t.rev_events <- [];
  t.count <- 0

(* --- Chrome trace-event JSON -------------------------------------- *)

let jstring s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Chrome timestamps are microseconds; "%.3f" keeps ns resolution with
   a fixed format so equal traces serialize byte-identically. *)
let us ns = Printf.sprintf "%.3f" (ns /. 1e3)

let event_json b ev =
  Buffer.add_string b
    (Printf.sprintf
       {|{"name":%s,"cat":%s,"ph":"%c","ts":%s,"pid":1,"tid":%d|}
       (jstring ev.ev_name) (jstring ev.ev_cat) ev.ev_ph (us ev.ev_ts)
       ev.ev_tid);
  if ev.ev_ph = 'X' then Buffer.add_string b (Printf.sprintf {|,"dur":%s|} (us ev.ev_dur));
  if ev.ev_ph = 'i' then Buffer.add_string b {|,"s":"t"|};
  let args = ("req", string_of_int ev.ev_id) :: ev.ev_args in
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (jstring k);
      Buffer.add_char b ':';
      Buffer.add_string b (jstring v))
    args;
  Buffer.add_string b "}}"

(* Events in emission order: deterministic for a deterministic run, and
   Perfetto sorts by ts on load anyway. *)
let to_chrome_json t =
  let b = Buffer.create 65536 in
  Buffer.add_string b {|{"displayTimeUnit":"ns","traceEvents":[|};
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      event_json b ev)
    (events t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
