(** Coordinated-omission-safe latency recording.

    A recorder timestamps each request at its {e scheduled} arrival —
    the instant the open-loop arrival process intended it to exist —
    not at the moment the generator got around to sending it, and keeps
    the CO-corrected distribution (completed − scheduled) next to the
    naive one (completed − sent) plus the injection lag between them.
    Below saturation the two agree; past the knee the corrected tail
    diverges by exactly the queueing delay closed-loop measurement
    hides.

    Everything is plain arithmetic on caller-supplied timestamps: no
    clocks, no engine events, so recording cannot perturb a
    deterministic run. *)

(** High-resolution histogram: HDR-style log2 majors split into 32
    linear sub-buckets (quantile error ≤ 6.25%, vs ≤ 2x for the metrics
    registry's pure log2 buckets), with exact min/max/sum/count kept
    beside the buckets. Values are nanoseconds; non-finite or negative
    observations clamp to 0. *)
module Hist : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  val min_value : t -> float
  (** Exact smallest observation (0.0 when empty). *)

  val max_value : t -> float
  (** Exact largest observation (0.0 when empty). *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0,1]; nearest-rank over the buckets,
      clamped into the exact [min,max] envelope. 0.0 when empty. *)
end

type t

val create : ?late_threshold_ns:float -> unit -> t
(** [late_threshold_ns] (default 1µs): injection lag above this counts
    the request as a late injection. *)

val record : t -> scheduled:float -> sent:float -> completed:float -> ok:bool -> unit
(** Record one request: [scheduled] is the arrival process's intended
    injection time, [sent] when the generator actually dispatched it,
    [completed] when the response arrived. *)

val drop : t -> unit
(** Count an arrival the harness shed (backlog cap hit) instead of
    injecting. Dropped arrivals appear in no histogram — that they had
    to be shed at all is the signal. *)

val recorded : t -> int
val errors : t -> int
val dropped : t -> int
val late : t -> int

val corrected : t -> Hist.t
(** completed − scheduled: the CO-safe latency distribution. *)

val naive : t -> Hist.t
(** completed − sent: what a closed-loop bench would have reported. *)

val lag : t -> Hist.t
(** sent − scheduled: how far the generator fell behind its schedule. *)

val corrected_quantile : t -> float -> float
val naive_quantile : t -> float -> float
val lag_mean_ns : t -> float
val lag_max_ns : t -> float

val register : t -> reg:Metrics.t -> prefix:string -> unit
(** Expose the recorder as read-through gauges
    ["<prefix>.{p50,p99,p999}_corrected_ns"], ["<prefix>.p99_naive_ns"],
    ["<prefix>.max_corrected_ns"], ["<prefix>.lag_{mean,max}_ns"] and
    ["<prefix>.{recorded,dropped,late}"]. *)

(** Service-level objectives: a latency target plus a throughput floor
    turned into error-budget arithmetic. Requests over the target are
    "bad"; windows that served fewer ops than the floor demanded burn
    budget for the unserved demand. *)
module Slo : sig
  type t

  val create :
    ?reg:Metrics.t ->
    name:string ->
    ?p99_target_ns:float ->
    ?floor_ops_s:float ->
    ?error_budget:float ->
    ?window_ns:float ->
    unit ->
    t
  (** [p99_target_ns = 0] disables the latency objective;
      [floor_ops_s = 0] disables the floor. [error_budget] (default
      0.01) is the allowed bad fraction; [window_ns] (default 100ms)
      is the burn-rate window. With [?reg], gauges
      ["slo.<name>.budget_remaining"] and ["slo.<name>.burn_rate"]
      are registered and travel with every metrics export. *)

  val observe : t -> latency_ns:float -> now:float -> unit

  val tick : t -> now:float -> unit
  (** Rotate windows without an observation (e.g. before reading the
      gauges at the end of an idle period). *)

  val budget_remaining : t -> float
  (** 1.0 = budget untouched, 0.0 = exhausted, negative = overdrawn. *)

  val burn_rate : t -> float
  (** Last complete window's bad fraction over the allowed fraction;
      1.0 = burning exactly at budget. Cumulative until a window
      completes. *)

  val bad_total : t -> float
  val observed_total : t -> float
  val floor_deficit : t -> float
  val name : t -> string
  val p99_target_ns : t -> float

  val set_on_roll : t -> (now:float -> burn:float -> unit) -> unit
  (** Install a window-close hook, called once per closed burn window
      with the window's end time and burn rate (an idle gap closes —
      and reports — every intervening empty window). The flight
      recorder rides this to log SLO rolls and trigger black-box
      dumps on [burn > 1]. *)
end
