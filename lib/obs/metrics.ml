(* Unified metrics registry.

   A registry is a flat tree of named instruments; dotted names give the
   hierarchy ("ipc.qp3.doorbell_rings", "device.nvme.bytes_read").
   Three instrument kinds:

   - counters   : monotonically increasing ints, owned by the producer.
   - gauges     : read-through callbacks sampled at export time, for
                  values some other struct already maintains.
   - histograms : fixed log2-bucketed distributions with p50/p99/p999.

   Instruments are plain mutable records; a counter handle works even
   when it is not attached to any registry (a "detached" counter), so
   library code can keep one code path whether or not observability is
   wired up.  Nothing in here touches simulated time: recording is a
   few machine operations, and exporting only reads. *)

type counter = { mutable c : int }

let nbuckets = 64

type histogram = {
  buckets : int array; (* bucket i counts values v with 2^(i-1) < v <= 2^i *)
  mutable h_count : int;
  mutable h_sum : float;
  (* Exact extremes beside the quantized buckets: the log2 buckets
     place the extreme tail only within 2x, and the knee analyses in
     the load harness need the true worst observation. *)
  mutable h_min : float;
  mutable h_max : float;
}

type instrument =
  | Counter of counter
  | Gauge of (unit -> float)
  | Histogram of histogram

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let intern t name make get =
  match Hashtbl.find_opt t.tbl name with
  | Some inst -> (
      match get inst with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name inst)))
  | None ->
      let v, inst = make () in
      Hashtbl.replace t.tbl name inst;
      v

(* --- counters ----------------------------------------------------- *)

let counter ?reg name =
  match reg with
  | None -> { c = 0 }
  | Some t ->
      intern t name
        (fun () ->
          let c = { c = 0 } in
          (c, Counter c))
        (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = c.c <- c.c + by
let value c = c.c
let set_value c v = c.c <- v
let reset c = c.c <- 0

(* --- gauges ------------------------------------------------------- *)

let gauge_fn t name f = Hashtbl.replace t.tbl name (Gauge f)

(* --- histograms --------------------------------------------------- *)

let histogram ?reg name =
  let make () =
    {
      buckets = Array.make nbuckets 0;
      h_count = 0;
      h_sum = 0.0;
      h_min = infinity;
      h_max = neg_infinity;
    }
  in
  match reg with
  | None -> make ()
  | Some t ->
      intern t name
        (fun () ->
          let h = make () in
          (h, Histogram h))
        (function Histogram h -> Some h | _ -> None)

(* Bucket index for [v]: 0 holds everything <= 1 (and non-positive /
   non-finite junk), bucket i holds (2^(i-1), 2^i].  frexp gives
   v = m * 2^e with m in [0.5, 1), so e is exactly ceil(log2 v) for
   v > 0 unless v is a power of two, where m = 0.5 and e is one high —
   acceptable: buckets stay monotone and deterministic, which is all
   quantile estimation needs. *)
let bucket_of v =
  if not (Float.is_finite v) || v <= 1.0 then 0
  else
    let _, e = Float.frexp v in
    if e < 0 then 0 else if e >= nbuckets then nbuckets - 1 else e

(* Clamp at record time, not only at export: one NaN added to [h_sum]
   would poison the sum (and anything derived from it) forever, and an
   inf would survive the exporter's per-value clamp via arithmetic. *)
let observe h v =
  let v = if Float.is_finite v then v else 0.0 in
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_min h = if h.h_count = 0 then 0.0 else h.h_min
let hist_max h = if h.h_count = 0 then 0.0 else h.h_max
let bucket_upper i = Float.of_int (1 lsl i)

(* Nearest-rank quantile over the bucketed distribution; returns the
   upper bound of the bucket containing the rank, so the estimate is
   within one log2 bucket (<= 2x) of the true value. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let cum = ref 0 and ans = ref (bucket_upper (nbuckets - 1)) in
    (try
       for i = 0 to nbuckets - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= rank then begin
           ans := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    !ans
  end

let p50 h = quantile h 0.50
let p99 h = quantile h 0.99
let p999 h = quantile h 0.999

(* --- export ------------------------------------------------------- *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float; (* exact, not bucket-quantized; 0 when empty *)
  hs_max : float;
  hs_p50 : float;
  hs_p99 : float;
  hs_p999 : float;
  hs_buckets : (float * int) list; (* (upper bound, count), non-empty only *)
}

type value =
  | V_counter of int
  | V_gauge of float
  | V_histogram of hist_snapshot

let snapshot_hist h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (bucket_upper i, h.buckets.(i)) :: !buckets
  done;
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = hist_min h;
    hs_max = hist_max h;
    hs_p50 = p50 h;
    hs_p99 = p99 h;
    hs_p999 = p999 h;
    hs_buckets = !buckets;
  }

let to_list t =
  Hashtbl.fold
    (fun name inst acc ->
      let v =
        match inst with
        | Counter c -> V_counter c.c
        | Gauge f ->
            (* A pathological gauge (NaN/inf callback) is clamped at
               read time so no consumer of [to_list] sees it. *)
            let g = f () in
            V_gauge (if Float.is_finite g then g else 0.0)
        | Histogram h -> V_histogram (snapshot_hist h)
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* JSON-safe float: finite, fixed format so exports are byte-stable. *)
let jfloat f =
  let f = if Float.is_finite f then f else 0.0 in
  Printf.sprintf "%.6f" f

let jstring s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* One JSON object per line: a snapshot greppable with standard
   line-oriented tools and append-friendly across runs. *)
let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let body =
        match v with
        | V_counter n -> Printf.sprintf {|"type":"counter","value":%d|} n
        | V_gauge f -> Printf.sprintf {|"type":"gauge","value":%s|} (jfloat f)
        | V_histogram h ->
            let buckets =
              h.hs_buckets
              |> List.map (fun (le, n) -> Printf.sprintf "[%s,%d]" (jfloat le) n)
              |> String.concat ","
            in
            Printf.sprintf
              {|"type":"histogram","count":%d,"sum":%s,"min":%s,"max":%s,"p50":%s,"p99":%s,"p999":%s,"buckets":[%s]|}
              h.hs_count (jfloat h.hs_sum) (jfloat h.hs_min) (jfloat h.hs_max)
              (jfloat h.hs_p50) (jfloat h.hs_p99) (jfloat h.hs_p999) buckets
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%s,%s}\n" (jstring name) body))
    (to_list t);
  Buffer.contents buf

let clear t = Hashtbl.reset t.tbl
