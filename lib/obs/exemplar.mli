(** Tail-latency exemplar store: retroactive capture of the slowest
    requests with full stage anatomy.

    Every request's spans are recorded into a pooled fixed-capacity
    buffer by the tracer (see {!Trace}); on completion the buffer is
    recycled when latency is under the adaptive {!val-threshold_ns}, or
    promoted — copied into a preallocated slot — when it lands in the
    tail. The store keeps the K slowest requests seen (strict-greater
    eviction, deterministic ties), so a run ends with the anatomy of
    exactly the outliers a prospective 1-in-N sampler would have
    missed. Steady state allocates nothing. *)

val stage_capacity : int
(** Stage records captured per request (24): the deepest stock stack's
    telescoping stages + per-LabMod spans + instants fit inside it;
    overflow is counted, not grown. *)

type t

val create : ?threshold:(unit -> float) -> k:int -> unit -> t
(** [k] slots ([k = 0] disables the store: every offer recycles).
    Without [threshold] the store is self-adaptive: it keeps a
    {!Latrec.Hist} of every offered latency and promotes what clears
    its corrected p99 (whose estimate never exceeds the exact running
    max, so a new slowest-so-far always promotes). An explicit
    [threshold] closure (ns) overrides that; it is re-read on every
    offer, so it can track any live signal. *)

val set_threshold : t -> (unit -> float) -> unit
(** Rewire the promotion threshold (e.g. to a fixed [exemplar_tail_us]
    floor, or an external {!Latrec} quantile). *)

val offer :
  t ->
  id:int ->
  t0:float ->
  latency:float ->
  n:int ->
  dropped:int ->
  names:string array ->
  cats:string array ->
  t0s:float array ->
  t1s:float array ->
  bool
(** Offer a completed request's captured stages (first [n] records of
    the parallel arrays; [dropped] counts records past
    {!stage_capacity}). Copies in on promotion; never retains the
    caller's arrays. Returns [true] iff promoted. *)

val threshold_ns : t -> float
(** Current promotion threshold (reads the live closure). *)

val k : t -> int
val stored : t -> int

val offered : t -> int
val promoted : t -> int
val recycled : t -> int
val evicted : t -> int

(** {1 Read-out} *)

type stage = { s_name : string; s_cat : string; s_t0 : float; s_t1 : float }

type view = {
  v_id : int;
  v_t0 : float;
  v_latency : float;
  v_dropped : int;
  v_stages : stage list;
}

val dump : t -> view list
(** Stored exemplars, slowest first (ties by request id — stable for
    same-seed runs). *)

val to_json : t -> string
(** Byte-stable JSON: store counters plus the ranked exemplar list
    with per-stage name/cat/begin/duration. *)
