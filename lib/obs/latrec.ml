(* Coordinated-omission-safe latency recording.

   Closed-loop benches measure latency from the moment a request was
   *sent*, so a stalled server silently slows the generator down and
   the stall never shows up in the percentiles (coordinated omission).
   A [Latrec.t] instead timestamps every request at its *scheduled*
   arrival — the instant the open-loop arrival process intended it to
   exist — and keeps three distributions side by side:

   - corrected : completed - scheduled  (what a user would experience)
   - naive     : completed - sent       (what a closed-loop bench reports)
   - lag       : sent - scheduled       (injection lag: how far the
                 generator itself fell behind its own schedule)

   plus counts of dropped injections (arrivals the harness had to shed
   because its backlog cap was hit) and late injections (lag above a
   threshold). Below saturation corrected ≈ naive; past the knee they
   diverge — the divergence *is* the queueing delay closed-loop
   measurement hides.

   The histograms are higher resolution than the metrics registry's
   64-bucket log2 ones: HDR-style log2 majors split into 32 linear
   sub-buckets (≤ 6.25% quantile error instead of ≤ 2x), with exact
   min/max/sum tracked beside the buckets. Everything here is plain
   arithmetic on caller-supplied timestamps — no clocks, no engine —
   so recording can never perturb a deterministic run. *)

(* ------------------------------------------------------------------ *)
(* High-resolution histogram                                           *)

module Hist = struct
  let sub_bits = 5

  let subs = 1 lsl sub_bits (* 32 linear sub-buckets per log2 major *)

  let half = 1 lsl (sub_bits - 1)

  (* 62-bit values land at bucket ~ (62-5+1)*16+31 = 959; 1024 covers
     every int the simulator can produce. *)
  let nbuckets = 1024

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    {
      buckets = Array.make nbuckets 0;
      count = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
    }

  let msb v =
    let r = ref 0 and v = ref v in
    while !v > 1 do
      incr r;
      v := !v lsr 1
    done;
    !r

  (* Values below [subs] ns are exact; above, a value with top bit p
     shares a bucket with the other values agreeing on its top
     [sub_bits] bits — relative error at most 2^-(sub_bits-1). *)
  let index_of iv =
    if iv < subs then iv
    else begin
      let b = msb iv - sub_bits + 1 in
      let top = iv lsr b in
      Stdlib.min (nbuckets - 1) ((b * half) + top)
    end

  let upper_of idx =
    if idx < subs then Stdlib.float_of_int idx
    else begin
      let b = (idx / half) - 1 in
      let top = idx - (b * half) in
      Stdlib.float_of_int ((top + 1) lsl b) -. 1.0
    end

  let observe h v =
    let v = if Float.is_finite v && v > 0.0 then v else 0.0 in
    let idx = index_of (Stdlib.int_of_float v) in
    h.buckets.(idx) <- h.buckets.(idx) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v

  let count h = h.count

  let sum h = h.sum

  let mean h = if h.count = 0 then 0.0 else h.sum /. Stdlib.float_of_int h.count

  let min_value h = if h.count = 0 then 0.0 else h.min_v

  let max_value h = if h.count = 0 then 0.0 else h.max_v

  (* Nearest-rank quantile over the buckets; the estimate is the
     bucket's upper bound clamped into the exact [min, max] envelope,
     so p0/p100 are exact and no estimate can exceed the true range. *)
  let quantile h q =
    if h.count = 0 then 0.0
    else begin
      let rank =
        let r = Stdlib.int_of_float (ceil (q *. Stdlib.float_of_int h.count)) in
        if r < 1 then 1 else if r > h.count then h.count else r
      in
      let cum = ref 0 and ans = ref h.max_v in
      (try
         for i = 0 to nbuckets - 1 do
           cum := !cum + h.buckets.(i);
           if !cum >= rank then begin
             ans := upper_of i;
             raise Exit
           end
         done
       with Exit -> ());
      Float.min h.max_v (Float.max h.min_v !ans)
    end
end

(* ------------------------------------------------------------------ *)
(* The recorder                                                        *)

type t = {
  corrected : Hist.t;
  naive : Hist.t;
  lag : Hist.t;
  late_threshold_ns : float;
  mutable recorded : int;
  mutable errors : int;
  mutable dropped : int;
  mutable late : int;
}

let create ?(late_threshold_ns = 1_000.0) () =
  {
    corrected = Hist.create ();
    naive = Hist.create ();
    lag = Hist.create ();
    late_threshold_ns;
    recorded = 0;
    errors = 0;
    dropped = 0;
    late = 0;
  }

let record t ~scheduled ~sent ~completed ~ok =
  let lag = sent -. scheduled in
  Hist.observe t.corrected (completed -. scheduled);
  Hist.observe t.naive (completed -. sent);
  Hist.observe t.lag lag;
  t.recorded <- t.recorded + 1;
  if not ok then t.errors <- t.errors + 1;
  if lag > t.late_threshold_ns then t.late <- t.late + 1

let drop t = t.dropped <- t.dropped + 1

let recorded t = t.recorded

let errors t = t.errors

let dropped t = t.dropped

let late t = t.late

let corrected t = t.corrected

let naive t = t.naive

let lag t = t.lag

let corrected_quantile t q = Hist.quantile t.corrected q

let naive_quantile t q = Hist.quantile t.naive q

let lag_mean_ns t = Hist.mean t.lag

let lag_max_ns t = Hist.max_value t.lag

(* Read-through gauges into the metrics registry, so a platform export
   carries the CO-corrected tail next to everything else. *)
let register t ~reg ~prefix =
  let g name f = Metrics.gauge_fn reg (prefix ^ "." ^ name) f in
  g "p50_corrected_ns" (fun () -> Hist.quantile t.corrected 0.50);
  g "p99_corrected_ns" (fun () -> Hist.quantile t.corrected 0.99);
  g "p999_corrected_ns" (fun () -> Hist.quantile t.corrected 0.999);
  g "p99_naive_ns" (fun () -> Hist.quantile t.naive 0.99);
  g "max_corrected_ns" (fun () -> Hist.max_value t.corrected);
  g "lag_mean_ns" (fun () -> lag_mean_ns t);
  g "lag_max_ns" (fun () -> lag_max_ns t);
  g "recorded" (fun () -> Stdlib.float_of_int t.recorded);
  g "dropped" (fun () -> Stdlib.float_of_int t.dropped);
  g "late" (fun () -> Stdlib.float_of_int t.late)

(* ------------------------------------------------------------------ *)
(* Service-level objectives                                            *)

(* An SLO pairs a latency target (requests over the target are "bad")
   with a throughput floor (windows that served fewer ops than the
   floor demanded burn budget for the ops that never got served) and
   tracks the classic error-budget arithmetic: with budget fraction b,
   budget_remaining = 1 - bad/(b * total) (1.0 = untouched, 0 =
   exhausted, negative = overdrawn) and burn_rate = the last complete
   window's bad fraction divided by b (1.0 = burning exactly at
   budget). Both export as registry gauges under "slo.<name>.*". *)
module Slo = struct
  type slo = {
    name : string;
    p99_target_ns : float;
    floor_ops_s : float;
    error_budget : float;
    window_ns : float;
    mutable total : float;
    mutable bad : float;
    mutable w_start : float;  (* nan until the first observation *)
    mutable w_ops : float;  (* real ops in the open window *)
    mutable w_bad : float;
    mutable pw_frac : float;  (* last complete window's bad fraction *)
    mutable windows_done : int;
    mutable floor_deficit : float;  (* unserved ops charged so far *)
    mutable on_roll : (now:float -> burn:float -> unit) option;
        (* window-close hook: called once per closed window with the
           window's end time and its burn rate — the flight recorder
           rides this to log SLO rolls and trigger on burn > 1 *)
  }

  type t = slo

  (* Close the open window: charge the throughput floor's unserved ops
     as bad demand, then publish the window's bad fraction. A long idle
     gap closes every intervening empty window in one step. *)
  let rotate t ~now =
    if Float.is_finite t.w_start then begin
      let expected = t.floor_ops_s *. t.window_ns /. 1e9 in
      while now -. t.w_start >= t.window_ns do
        let deficit = Float.max 0.0 (expected -. t.w_ops) in
        t.bad <- t.bad +. deficit;
        t.total <- t.total +. deficit;
        t.floor_deficit <- t.floor_deficit +. deficit;
        let w_total = t.w_ops +. deficit in
        t.pw_frac <- (if w_total > 0.0 then (t.w_bad +. deficit) /. w_total else 0.0);
        t.windows_done <- t.windows_done + 1;
        t.w_ops <- 0.0;
        t.w_bad <- 0.0;
        t.w_start <- t.w_start +. t.window_ns;
        match t.on_roll with
        | Some f -> f ~now:t.w_start ~burn:(t.pw_frac /. t.error_budget)
        | None -> ()
      done
    end
    else t.w_start <- now

  let observe t ~latency_ns ~now =
    rotate t ~now;
    let bad = t.p99_target_ns > 0.0 && latency_ns > t.p99_target_ns in
    t.total <- t.total +. 1.0;
    t.w_ops <- t.w_ops +. 1.0;
    if bad then begin
      t.bad <- t.bad +. 1.0;
      t.w_bad <- t.w_bad +. 1.0
    end

  let tick t ~now = rotate t ~now

  let budget_remaining t =
    if t.total <= 0.0 then 1.0
    else 1.0 -. (t.bad /. (t.error_budget *. t.total))

  (* Burn rate prefers the last complete window (the operational
     "how fast right now" signal); before any window has closed it
     falls back to the cumulative fraction. *)
  let burn_rate t =
    let frac =
      if t.windows_done > 0 then t.pw_frac
      else if t.total > 0.0 then t.bad /. t.total
      else 0.0
    in
    frac /. t.error_budget

  let bad_total t = t.bad

  let observed_total t = t.total

  let floor_deficit t = t.floor_deficit

  let name t = t.name

  let p99_target_ns t = t.p99_target_ns

  let set_on_roll t f = t.on_roll <- Some f

  let create ?reg ~name ?(p99_target_ns = 0.0) ?(floor_ops_s = 0.0)
      ?(error_budget = 0.01) ?(window_ns = 1e8) () =
    if error_budget <= 0.0 then invalid_arg "Latrec.Slo.create: error_budget";
    if window_ns <= 0.0 then invalid_arg "Latrec.Slo.create: window_ns";
    let t =
      {
        name;
        p99_target_ns;
        floor_ops_s;
        error_budget;
        window_ns;
        total = 0.0;
        bad = 0.0;
        w_start = nan;
        w_ops = 0.0;
        w_bad = 0.0;
        pw_frac = 0.0;
        windows_done = 0;
        floor_deficit = 0.0;
        on_roll = None;
      }
    in
    (match reg with
    | Some reg ->
        let g k f = Metrics.gauge_fn reg ("slo." ^ name ^ "." ^ k) f in
        g "budget_remaining" (fun () -> budget_remaining t);
        g "burn_rate" (fun () -> burn_rate t)
    | None -> ());
    t
end
