(** Always-on flight recorder with triggered black-box dumps.

    A fixed-size ring of recent encoded events (submissions,
    completions, errno failures, park/wake, scheduler decisions, SLO
    window rolls, injected faults). Recording is a few array stores
    into preallocated columns — no allocation, no engine events, no
    simulated time — so the recorder stays on for every run at bounded
    cost. When a {!val-trigger} fires the ring is serialized into a
    black-box dump explaining what the system was doing just before;
    {!Platform.export} writes the retained dumps to
    [out/blackbox.json]. *)

type kind =
  | Submit  (** client handed a request to the runtime *)
  | Complete  (** request settled (ok or failed; arg = 0 ok / 1 failed) *)
  | Errno  (** request failed with the errno in [tag] *)
  | Deadline  (** client-side deadline miss *)
  | Park  (** a worker (or the scheduler's QoS gate) went to sleep *)
  | Wake  (** ... and woke up; arg = requests seen while parked *)
  | Slo_roll  (** an SLO burn window closed; arg = burn rate × 1000 *)
  | Fault  (** the device fault plan injected the fault in [tag] *)
  | Sched  (** scheduler decision (merge/join); arg = absorbed count *)
  | Trigger  (** a dump trigger itself; [tag] is the reason *)

val kind_name : kind -> string

type t

val create : ?max_dumps:int -> cap:int -> unit -> t
(** Ring of [cap] events ([cap = 0] disables the recorder: record and
    trigger become no-ops). [max_dumps] (default 4) bounds the dumps
    retained — the first triggers keep their snapshots, later ones
    only count, since a failing run triggers in bursts and the
    earliest context is the diagnostic one. *)

val record :
  t -> kind -> now:float -> ?id:int -> ?arg:int -> ?tag:string -> unit -> unit
(** Append one event, overwriting the oldest when full. [tag] must be
    a shared/literal string — the recorder never copies it. *)

val trigger : t -> reason:string -> now:float -> unit
(** Record a {!Trigger} event, then snapshot the ring into a retained
    dump for the first trigger of each distinct [reason], up to
    [max_dumps] dumps total. Later triggers only count. *)

val cap : t -> int
val recorded : t -> int
(** Total events ever recorded (the ring holds the last [cap]). *)

val triggers : t -> int
val dumps : t -> string list
(** Retained dumps in trigger order, each a JSON object
    [{"reason","now_ns","events":[...]}]. *)

(** {1 Read-out} *)

type event = {
  e_kind : string;
  e_ts : float;
  e_id : int;
  e_arg : int;
  e_tag : string;
}

val events : t -> event list
(** Current ring contents, oldest first. *)

val to_json : t -> string
(** Byte-stable black-box artifact: counters plus retained dumps. *)
