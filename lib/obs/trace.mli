(** Span tracer over simulated time.

    Collects Chrome-trace-event spans and instants stamped with
    simulated-time nanoseconds.  Each traced request carries a {!flow}
    handle; the telescoping stage API ({!open_stage}/{!close_stage})
    closes one stage and opens the next at the same instant, so a
    request's stage durations sum exactly to its root "request" span.

    With an attached {!Exemplar} store the tracer also captures
    retroactively: every request gets a pooled flow whose spans are
    recorded into a fixed-capacity buffer, offered to the store at
    {!finish} (the top-K slowest survive with full anatomy) and
    recycled — zero allocation in steady state. Only sampled flows
    additionally emit Chrome events.

    Tracing never schedules engine events or charges simulated compute
    time, and with sampling and capture off every instrumentation site
    reduces to a single option check — the tracer is invisible to a
    run's timing. *)

type ev = {
  ev_name : string;
  ev_cat : string;  (** "stage" | "mod" | "device" | "request" | "event" *)
  ev_ph : char;  (** 'X' complete span, 'i' instant *)
  ev_ts : float;  (** begin timestamp, simulated ns *)
  ev_dur : float;  (** duration ns (0 for instants) *)
  ev_tid : int;  (** simulated hardware thread *)
  ev_id : int;  (** request id *)
  ev_args : (string * string) list;
}

type t
(** A tracer: sampling knob, optional exemplar store, event buffer and
    flow pool. *)

val create : ?sample:int -> ?exemplars:Exemplar.t -> unit -> t
(** [create ~sample ()] — trace 1-in-[sample] requests by hashed id;
    [sample <= 0] (the default) disables Chrome-event tracing.
    [exemplars] attaches a tail-exemplar store and turns on
    stage capture for {e every} request (see {!Exemplar}). *)

val sample : t -> int
val enabled : t -> bool

val exemplar_store : t -> Exemplar.t option

val capture : t -> bool
(** [true] iff an exemplar store is attached (every request carries a
    flow and records its stages). *)

val sampled : t -> id:int -> bool
(** Deterministic: [sample > 0] and a multiplicative hash of [id] is
    [0 mod sample]. The hash decorrelates sampling from id allocation
    strides (batched/per-client id blocks would alias a bare modulus
    and bias the cohort). *)

(** {1 Flows} *)

type flow
(** Per-request trace context: request id, root begin time, at most
    one currently-open stage, and the stage-capture buffer. Pooled:
    recycled at {!finish}, so a flow must not be touched after its
    request completes. *)

val start : t -> id:int -> now:float -> flow option
(** [None] unless the id is sampled or capture is on; the result is
    stored in [Request.trace] and travels with the request. *)

val flow_id : flow -> int
val flow_t0 : flow -> float

val span :
  ?args:(string * string) list ->
  flow -> name:string -> cat:string -> tid:int -> t0:float -> t1:float -> unit
(** Emit a complete span [t0, t1] (sampled flows) and record it into
    the capture buffer (capture on). *)

val instant : ?args:(string * string) list -> flow -> name:string -> tid:int -> now:float -> unit
(** Emit a point event (cache hit/miss, sched merge, ...). *)

val open_stage : flow -> name:string -> now:float -> unit
(** Record the begin of the named stage; replaces any open stage. *)

val close_stage : flow -> tid:int -> now:float -> unit
(** Emit the open stage as a span ending [now]; no-op when none open. *)

val finish : flow -> tid:int -> now:float -> unit
(** Close any open stage, emit the root "request" span covering the
    flow's begin to [now] (sampled flows), offer the captured stages
    to the exemplar store (capture on), and recycle the flow. The
    flow must not be used afterwards. *)

(** {1 Export} *)

val events : t -> ev list
(** All events in emission order. *)

val event_count : t -> int
val clear : t -> unit

val to_chrome_json : t -> string
(** Chrome trace-event JSON ({["traceEvents"]} array of "X"/"i" events,
    timestamps in microseconds) — loadable in Perfetto / chrome://tracing.
    Byte-stable for equal event sequences. *)
