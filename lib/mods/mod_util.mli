(** Shared helpers for LabMod implementations. *)

open Lab_core

val device_kind : Request.io_kind -> Lab_device.Device.io_kind

val await_completion : ((unit -> unit) -> unit) -> unit
(** [await_completion submit] issues an asynchronous operation from
    process context and parks until its completion callback fires.
    [submit] must call the callback exactly once (possibly before
    returning). *)

val await_value : (('a -> unit) -> unit) -> 'a
(** Like {!await_completion} but returns the value passed to the
    callback (e.g. a device [(completion, error) result]). *)

val device_error : string -> Lab_device.Device.error -> Request.result
(** [device_error mod_name e] renders a device fault as the errno-tagged
    [Request.Failed] form ([EIO]/[ENODEV]/[ETIMEDOUT]/[ETORN]) that
    {!Request.is_transient_failure} and client retry policy recognise. *)

val identity_state : Labmod.state -> Labmod.state
(** The common [state_update]: carry the old state over unchanged. *)

val no_repair : Labmod.t -> unit

val ok_or_failed : string -> Request.result option -> Request.result
