(* Shared helpers for LabMod implementations. *)

open Lab_sim
open Lab_core

let device_kind = function
  | Request.Read -> Lab_device.Device.Read
  | Request.Write -> Lab_device.Device.Write

(* Submit-then-await: issue an asynchronous operation from process
   context and park until its completion callback fires. [submit] must
   itself be safe to run in process context and call the completion
   callback exactly once (possibly before returning). *)
let await_completion submit =
  let completed = ref false in
  let resumer = ref None in
  submit (fun () ->
      completed := true;
      match !resumer with Some r -> r () | None -> ());
  if not !completed then Engine.suspend (fun r -> resumer := Some r)

(* Like [await_completion] but the callback carries a value (e.g. a
   device outcome) which becomes the return value. *)
let await_value submit =
  let result = ref None in
  let resumer = ref None in
  submit (fun v ->
      result := Some v;
      match !resumer with Some r -> r () | None -> ());
  (match !result with
  | Some _ -> ()
  | None -> Engine.suspend (fun r -> resumer := Some r));
  match !result with Some v -> v | None -> assert false

(* Map a device fault to the errno-tagged failure convention clients
   understand (Request.is_transient_failure etc.). *)
let device_error name e =
  let errno =
    match e with
    | Lab_device.Device.E_io -> "EIO"
    | Lab_device.Device.E_offline -> "ENODEV"
    | Lab_device.Device.E_timeout -> "ETIMEDOUT"
    | Lab_device.Device.E_torn _ -> "ETORN"
  in
  Request.failed_errno errno
    (name ^ ": " ^ Lab_device.Device.error_to_string e)

let identity_state : Labmod.state -> Labmod.state = fun s -> s

let no_repair (_ : Labmod.t) = ()

let ok_or_failed name = function
  | Some r -> r
  | None -> Request.Failed (name ^ ": unsupported request payload")
