(* blk-switch I/O scheduler LabMod (after Hwang et al., the paper's §IV
   scheduler case study): steers each request to the hardware queue with
   the least outstanding bytes, so small latency-bound requests are not
   stuck behind large transfers on the same queue (head-of-line
   blocking).

   The scheduler is also the stack's merge point: with a positive
   [merge_window_ns] it holds the first request of a contiguous run
   open for that window, absorbs adjacent same-direction requests bound
   for the same hardware queue, and forwards one merged block op.
   Completions (and torn-write errors) are split back per-request.

   With a QoS table attached ({!factory}'s [?qos]), requests stamped
   with a tenant index additionally pass the multi-tenant dispatch
   stage before steering: latency-class requests (at most the table's
   bypass threshold) go straight through, throughput-class requests
   enter the weighted deficit-round-robin window
   (see {!Lab_ipc.Tenant}), parking on a pooled
   {!Lab_sim.Engine.park_cell} until dispatched. Per-op cost is O(1)
   in registered tenants and allocation-free: a dense-array tenant
   lookup, an intrusive active list, a ring slot, and an unpark. *)

open Lab_sim
open Lab_core
module Metrics = Lab_obs.Metrics
module Tenant = Lab_ipc.Tenant

(* One request that joined an open batch behind its leader. [m_off] is
   its byte offset inside the merged transfer — the torn-write split
   needs it to decide which members fall inside the persisted prefix. *)
type member = {
  m_off : int;
  m_bytes : int;
  m_notify : Request.result -> unit;
}

(* An open batch accumulating followers while its leader sits out the
   merge window. Members are kept in reverse arrival order. Batches on
   the same hardware queue form an intrusive doubly-linked ring
   through [bt_prev]/[bt_next] around a per-queue sentinel, so opening
   appends and closing unlinks in O(1) — the old [batch list ref] per
   queue cost O(n) to append and O(n) to filter out, O(n^2) across a
   burst of concurrent leaders. *)
type batch = {
  bt_kind : Request.io_kind;
  mutable bt_end_lba : int;
  mutable bt_bytes : int;
  mutable bt_members : member list;
  mutable bt_nmembers : int;
  mutable bt_open : bool;
  mutable bt_prev : batch;
  mutable bt_next : batch;
}

(* Pool of park cells for the DRR gate: acquire/release are array
   stack ops, so a windowed op parks without allocating. *)
type cell_pool = {
  mutable cp : Engine.park_cell array;
  mutable cn : int;
}

let cell_acquire p =
  if p.cn = 0 then Engine.make_park_cell ()
  else begin
    p.cn <- p.cn - 1;
    p.cp.(p.cn)
  end

let cell_release p c =
  if p.cn >= Array.length p.cp then begin
    let n = Stdlib.max 8 (2 * Array.length p.cp) in
    let cp = Array.make n c in
    Array.blit p.cp 0 cp 0 p.cn;
    p.cp <- cp
  end;
  p.cp.(p.cn) <- c;
  p.cn <- p.cn + 1

type Labmod.state +=
  | State of {
      inflight_bytes : float array;
      merge_window_ns : float;
      max_merge_bytes : int;
      max_merge_reqs : int;
      open_batches : batch array;
          (** per hardware queue, the sentinel of the ring of batches
              currently holding their merge window open — concurrent
              contiguous runs each plug independently *)
      qos : Tenant.t option;
          (** multi-tenant DRR dispatch stage; [None] = QoS off, the
              classic path untouched *)
      qcells : cell_pool;
      merged_ops : Metrics.counter;  (** merged device ops dispatched *)
      absorbed_reqs : Metrics.counter;
          (** follower requests absorbed into them *)
      blackbox : Lab_obs.Flightrec.t option;
          (** flight recorder: merge decisions and QoS-gate park/wake
              record into it; [None] = one option check per site *)
    }

let name = "blkswitch_sched"

let decision_cost_ns = 400.0

(* Small requests get the reserved tail queues (latency class); large
   ones steer least-loaded across the rest — blk-switch's separation of
   latency-critical from throughput traffic. *)
let lq_threshold_bytes = 16384

let pick inflight bytes =
  let n = Array.length inflight in
  let reserved = Stdlib.max 1 (n / 4) in
  let lo, hi =
    if bytes <= lq_threshold_bytes then (n - reserved, n - 1)
    else (0, n - reserved - 1)
  in
  let lo, hi = if lo > hi then (0, n - 1) else (lo, hi) in
  let best = ref lo in
  for q = lo to hi do
    if inflight.(q) < inflight.(!best) then best := q
  done;
  !best

(* Split a merged op's outcome back to one member. Success credits each
   member its own byte count; a torn write succeeds exactly the members
   that fit inside the persisted prefix; anything else fails them all. *)
let member_result merged_result m =
  match merged_result with
  | Request.Done | Request.Size _ -> Request.Size m.m_bytes
  | r -> (
      match Request.torn_persisted_of_result r with
      | Some persisted when m.m_off + m.m_bytes <= persisted ->
          Request.Size m.m_bytes
      | Some _ | None -> r)

(* Leader path: open a batch on queue [q], sleep through the merge
   window, then forward one op covering everyone who joined and fan the
   outcome back out. With no followers this degenerates to forwarding
   the original request untouched. *)
let lead ctx ~open_batches ~merged_ops ~absorbed_reqs ~merge_window_ns
    ~blackbox ~q req b =
  let s : batch = open_batches.(q) in
  let batch =
    {
      bt_kind = b.Request.b_kind;
      bt_end_lba = Request.block_end_lba b;
      bt_bytes = b.Request.b_bytes;
      bt_members = [];
      bt_nmembers = 0;
      bt_open = true;
      bt_prev = s.bt_prev;
      bt_next = s;
    }
  in
  (* Link at the tail: arrival order, like the old append. *)
  s.bt_prev.bt_next <- batch;
  s.bt_prev <- batch;
  Engine.wait merge_window_ns;
  batch.bt_open <- false;
  batch.bt_prev.bt_next <- batch.bt_next;
  batch.bt_next.bt_prev <- batch.bt_prev;
  batch.bt_prev <- batch;
  batch.bt_next <- batch;
  match List.rev batch.bt_members with
  | [] -> ctx.Labmod.forward req
  | followers ->
      Metrics.incr merged_ops;
      Metrics.incr ~by:batch.bt_nmembers absorbed_reqs;
      (match blackbox with
      | Some bb ->
          Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Sched
            ~now:(Machine.now ctx.Labmod.machine)
            ~id:req.Request.id ~arg:batch.bt_nmembers ~tag:"merge" ()
      | None -> ());
      (match req.Request.trace with
      | Some fl ->
          Lab_obs.Trace.instant fl ~name:"sched_merge" ~tid:ctx.Labmod.thread
            ~now:(Machine.now ctx.Labmod.machine)
            ~args:[ ("absorbed", string_of_int batch.bt_nmembers) ]
      | None -> ());
      let merged =
        Request.make ~id:req.Request.id ~pid:req.Request.pid
          ~uid:req.Request.uid ~thread:req.Request.thread
          ~stack_id:req.Request.stack_id
          ~now:(Machine.now ctx.Labmod.machine)
          (Request.Block
             {
               Request.b_kind = b.Request.b_kind;
               b_lba = b.Request.b_lba;
               b_bytes = batch.bt_bytes;
               b_sync = false;
             })
      in
      merged.Request.hint_hctx <- Some q;
      let merged_result = ctx.Labmod.forward merged in
      List.iter (fun m -> m.m_notify (member_result merged_result m)) followers;
      member_result merged_result
        { m_off = 0; m_bytes = b.Request.b_bytes; m_notify = ignore }

(* Follower path: append to the leader's open batch and park until the
   leader fans out our share of the merged completion. *)
let join batch b =
  let off = batch.bt_bytes in
  batch.bt_end_lba <- Request.block_end_lba b;
  batch.bt_bytes <- batch.bt_bytes + b.Request.b_bytes;
  batch.bt_nmembers <- batch.bt_nmembers + 1;
  Mod_util.await_value (fun notify ->
      batch.bt_members <-
        { m_off = off; m_bytes = b.Request.b_bytes; m_notify = notify }
        :: batch.bt_members)

let operate m ctx req =
  match m.Labmod.state with
  | State
      {
        inflight_bytes;
        merge_window_ns;
        max_merge_bytes;
        max_merge_reqs;
        open_batches;
        qos;
        qcells;
        merged_ops;
        absorbed_reqs;
        blackbox;
      } ->
      (* Multi-tenant dispatch gate, ahead of the decision cost: a
         throughput-class op may only proceed while the DRR window has
         room; its turn within the window is deficit-round-robin by
         tenant weight. [-1] = not windowed (no tenant, QoS off, or
         latency class) — those pay nothing here. *)
      let gated_bytes =
        match qos with
        | Some table when req.Request.tenant >= 0 ->
            let ib = Request.bytes_of req in
            let tn = Tenant.get table req.Request.tenant in
            if Tenant.windowed table ~bytes:ib then begin
              let cell = cell_acquire qcells in
              if not (Tenant.submit table tn ~bytes:ib cell) then begin
                (match blackbox with
                | Some bb ->
                    Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Park
                      ~now:(Machine.now ctx.Labmod.machine)
                      ~id:req.Request.id ~tag:"qos_gate" ()
                | None -> ());
                Engine.park cell;
                match blackbox with
                | Some bb ->
                    Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Wake
                      ~now:(Machine.now ctx.Labmod.machine)
                      ~id:req.Request.id ~tag:"qos_gate" ()
                | None -> ()
              end;
              cell_release qcells cell;
              ib
            end
            else begin
              Tenant.note_bypass tn;
              -1
            end
        | _ -> -1
      in
      Machine.compute ctx.Labmod.machine ~thread:ctx.Labmod.thread decision_cost_ns;
      let bytes = Stdlib.float_of_int (Request.bytes_of req) in
      (* Plug merge, before any steering: a batch that ends exactly at
         our LBA absorbs us on whatever queue it already holds —
         contiguity beats load balance. Requests carrying a degraded-
         mode requeue hint never join (they were steered away from an
         offline queue on purpose). The scan walks queues in ascending
         order and each queue's batches in arrival order, so the first
         hit is the lowest-queue earliest-opened candidate — the same
         batch the old fold over the Hashtbl selected. *)
      let joinable b =
        if req.Request.hint_hctx <> None then None
        else begin
          let n = Array.length open_batches in
          let found = ref None in
          let q = ref 0 in
          while !found == None && !q < n do
            let s = open_batches.(!q) in
            let cur = ref s.bt_next in
            while !found == None && !cur != s do
              let batch = !cur in
              if
                batch.bt_open
                && batch.bt_kind = b.Request.b_kind
                && b.Request.b_lba = batch.bt_end_lba
                && batch.bt_bytes + b.Request.b_bytes <= max_merge_bytes
                && batch.bt_nmembers + 2 <= max_merge_reqs
              then found := Some (!q, batch)
              else cur := batch.bt_next
            done;
            incr q
          done;
          !found
        end
      in
      let mergeable =
        if merge_window_ns > 0.0 then
          match Request.block_of req with
          | Some b when not b.Request.b_sync -> Some b
          | Some _ | None -> None
        else None
      in
      let finish q result =
        inflight_bytes.(q) <- inflight_bytes.(q) -. bytes;
        (if gated_bytes >= 0 then
           match qos with
           | Some table -> Tenant.release table ~bytes:gated_bytes
           | None -> ());
        result
      in
      let steer () =
        (* Honour a pre-set hint (degraded-mode requeue away from an
           offline queue); otherwise steer least-loaded as usual. *)
        let q =
          match req.Request.hint_hctx with
          | Some h -> h mod Array.length inflight_bytes
          | None -> pick inflight_bytes (Request.bytes_of req)
        in
        req.Request.hint_hctx <- Some q;
        inflight_bytes.(q) <- inflight_bytes.(q) +. bytes;
        q
      in
      (match mergeable with
      | None ->
          let q = steer () in
          finish q (ctx.Labmod.forward req)
      | Some b -> (
          match joinable b with
          | Some (q, batch) ->
              req.Request.hint_hctx <- Some q;
              inflight_bytes.(q) <- inflight_bytes.(q) +. bytes;
              (match blackbox with
              | Some bb ->
                  Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Sched
                    ~now:(Machine.now ctx.Labmod.machine)
                    ~id:req.Request.id ~tag:"join" ()
              | None -> ());
              (match req.Request.trace with
              | Some fl ->
                  Lab_obs.Trace.instant fl ~name:"sched_join"
                    ~tid:ctx.Labmod.thread
                    ~now:(Machine.now ctx.Labmod.machine)
              | None -> ());
              finish q (join batch b)
          | None ->
              let q = steer () in
              finish q
                (lead ctx ~open_batches ~merged_ops ~absorbed_reqs
                   ~merge_window_ns ~blackbox ~q req b)))
  | _ -> Request.Failed "blkswitch_sched: bad state"

let merged_ops (m : Labmod.t) =
  match m.Labmod.state with
  | State { merged_ops; _ } -> Metrics.value merged_ops
  | _ -> 0

let absorbed_reqs (m : Labmod.t) =
  match m.Labmod.state with
  | State { absorbed_reqs; _ } -> Metrics.value absorbed_reqs
  | _ -> 0

let factory ?metrics ?qos ?blackbox ~nqueues () : Registry.factory =
 fun ~uuid ~attrs ->
  (* Probe instantiations (reserved "__probe__" uuid) must not pollute
     the registry. *)
  let metrics = if uuid = "__probe__" then None else metrics in
  let getf key default =
    Option.value ~default (Option.bind (List.assoc_opt key attrs) Yamlite.get_float)
  in
  let geti key default =
    Option.value ~default (Option.bind (List.assoc_opt key attrs) Yamlite.get_int)
  in
  let sentinel () =
    let rec s =
      {
        bt_kind = Request.Read;
        bt_end_lba = -1;
        bt_bytes = 0;
        bt_members = [];
        bt_nmembers = 0;
        bt_open = false;
        bt_prev = s;
        bt_next = s;
      }
    in
    s
  in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Scheduler
    ~state:
      (State
         {
           inflight_bytes = Array.make nqueues 0.0;
           merge_window_ns = getf "merge_window_ns" 0.0;
           max_merge_bytes = geti "max_merge_bytes" 262144;
           max_merge_reqs = geti "max_merge_reqs" 64;
           open_batches = Array.init nqueues (fun _ -> sentinel ());
           qos;
           qcells = { cp = [||]; cn = 0 };
           merged_ops =
             Metrics.counter ?reg:metrics
               (Printf.sprintf "mod.%s.merged_ops" uuid);
           absorbed_reqs =
             Metrics.counter ?reg:metrics
               (Printf.sprintf "mod.%s.absorbed_reqs" uuid);
           blackbox;
         })
    {
      Labmod.operate;
      est_processing_time = (fun _ _ -> decision_cost_ns);
      state_update =
        (function
        | State _ as s -> s
        | other -> other);
      state_repair = Mod_util.no_repair;
    }
