(* blk-switch I/O scheduler LabMod (after Hwang et al., the paper's §IV
   scheduler case study): steers each request to the hardware queue with
   the least outstanding bytes, so small latency-bound requests are not
   stuck behind large transfers on the same queue (head-of-line
   blocking). *)

open Lab_sim
open Lab_core

type Labmod.state += State of { inflight_bytes : float array }

let name = "blkswitch_sched"

let decision_cost_ns = 400.0

(* Small requests get the reserved tail queues (latency class); large
   ones steer least-loaded across the rest — blk-switch's separation of
   latency-critical from throughput traffic. *)
let lq_threshold_bytes = 16384

let pick inflight bytes =
  let n = Array.length inflight in
  let reserved = Stdlib.max 1 (n / 4) in
  let lo, hi =
    if bytes <= lq_threshold_bytes then (n - reserved, n - 1)
    else (0, n - reserved - 1)
  in
  let lo, hi = if lo > hi then (0, n - 1) else (lo, hi) in
  let best = ref lo in
  for q = lo to hi do
    if inflight.(q) < inflight.(!best) then best := q
  done;
  !best

let operate m ctx req =
  match m.Labmod.state with
  | State { inflight_bytes } ->
      Machine.compute ctx.Labmod.machine ~thread:ctx.Labmod.thread decision_cost_ns;
      let bytes = Stdlib.float_of_int (Request.bytes_of req) in
      (* Honour a pre-set hint (degraded-mode requeue away from an
         offline queue); otherwise steer least-loaded as usual. *)
      let q =
        match req.Request.hint_hctx with
        | Some h -> h mod Array.length inflight_bytes
        | None -> pick inflight_bytes (Request.bytes_of req)
      in
      req.Request.hint_hctx <- Some q;
      inflight_bytes.(q) <- inflight_bytes.(q) +. bytes;
      let result = ctx.Labmod.forward req in
      inflight_bytes.(q) <- inflight_bytes.(q) -. bytes;
      result
  | _ -> Request.Failed "blkswitch_sched: bad state"

let factory ~nqueues : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  Labmod.make ~name ~uuid ~mod_type:Labmod.Scheduler
    ~state:(State { inflight_bytes = Array.make nqueues 0.0 })
    {
      Labmod.operate;
      est_processing_time = (fun _ _ -> decision_cost_ns);
      state_update =
        (function
        | State _ as s -> s
        | other -> other);
      state_repair = Mod_util.no_repair;
    }
