(** Shared sharded cache engine behind the [lru_cache] and [arc_cache]
    LabMods.

    The replacement policy stays pluggable (a {!policy} record built per
    shard); everything else — sharding, sequential readahead, and
    coalesced dirty write-back — lives here once instead of being
    copy-pasted per policy.

    {b Sharding.} Pages are spread over [shards] independent shards in
    64-page chunks (adjacent pages share a shard, so readahead runs and
    write-back batches stay shard-local). Each shard has its own index,
    lock, dirty state and stats; a request pays
    {!Lab_sim.Costs.cache_shard_ns} per shard it enters, serialized on
    the shard's lock — concurrent workers contend on one structure with
    [shards = 1] and spread out with more.

    {b Readahead.} Demand reads are tracked per stream
    ([Request.hint_stream], falling back to the pid). A read continuing
    exactly where the stream's last one ended ramps the prefetch window
    [ra_min_pages] → doubling → [ra_max_pages] (Linux-style 4→64) and
    issues the window downstream as merged prefetch-tagged reads. Fills
    are admitted clean on success and {e dropped} on failure (a faulted
    fill is never admitted, same rule as demand fills). A demand read
    whose missing pages are all being prefetched parks on the in-flight
    fill instead of issuing a duplicate device read.

    {b Write-back.} Evicted dirty pages accumulate in a per-shard dirty
    log; when the log reaches [wb_high] entries it is flushed down to
    [wb_low], sorted and merged into adjacent-LBA runs (at most
    [wb_max_batch] pages each), one downstream write per run — instead
    of one write per evicted page. A [Control] request drains every
    log (an fsync-like hook) and is then forwarded. *)

open Lab_core

(** {2 Replacement policy} *)

type policy = {
  pol_mem : int -> bool;  (** is the page resident? (no promotion) *)
  pol_touch : int -> bool;
      (** record an access (promote or admit); true when the page was
          already resident. May evict. *)
  pol_evicted : unit -> int list;
      (** pages evicted by the most recent [pol_touch] *)
  pol_live : unit -> int;  (** resident page count *)
}

type policy_factory = capacity:int -> policy
(** Called once per shard with the shard's capacity share. *)

val lru_policy : policy_factory

(** {2 Configuration} *)

type config = {
  cfg_name : string;  (** LabMod name, for error messages *)
  capacity_pages : int;  (** total, split evenly across shards *)
  page_bytes : int;
  nshards : int;
  write_through : bool;
  readahead : bool;
  ra_min : int;  (** initial prefetch window, pages *)
  ra_max : int;  (** window ceiling, pages *)
  wb_high : int;  (** dirty-log length that triggers a flush *)
  wb_low : int;  (** flush drains the log down to this length *)
  wb_max_batch : int;  (** largest merged write-back run, pages *)
}

val config_of_attrs : name:string -> (string * Yamlite.t) list -> config
(** Shared attribute parsing for the cache LabMods: [capacity_mb]
    (default 64), [write_through] (false), [shards] (1), [readahead]
    (false), [ra_min_pages] (4), [ra_max_pages] (64), [wb_high] (32),
    [wb_low] (8), [wb_max_batch] (64). Values are clamped to sane
    ranges; pages are 4 KiB. *)

(** {2 The engine} *)

type t

val create :
  policy:policy_factory ->
  ?metrics:Lab_obs.Metrics.t ->
  ?timeseries:Lab_obs.Timeseries.t ->
  ?instance:string ->
  config -> t
(** [?metrics] registers the engine's counters under
    ["mod.<instance>."] ([?instance] defaults to the config name);
    without it the counters are detached but behave identically.
    [?timeseries] additionally registers a
    ["mod.<instance>.dirty_backlog"] occupancy probe with the
    continuous-profiling sampler.  Both are suppressed for the reserved
    ["__probe__"] instance. *)

val operate : t -> Labmod.ctx -> Request.t -> Request.result

(** {2 Counters}

    One accessor set shared by both cache LabMods. *)

val hits : t -> int

val misses : t -> int

val writeback_failures : t -> int
(** Pages whose write-back run completed with a failure. *)

val readahead_issued : t -> int
(** Pages submitted as prefetch fills. *)

val readahead_hits : t -> int
(** Prefetched pages later served to a demand read. *)

val readahead_wasted : t -> int
(** Prefetched pages evicted unaccessed, plus fills dropped on a
    downstream failure. *)

val dirty_evictions : t -> int
(** Dirty pages evicted into the write-back log. *)

val flush_ops : t -> int
(** Merged write-back operations issued downstream. *)

val flush_pages : t -> int
(** Pages covered by those operations ([flush_pages / flush_ops] is the
    average flush batch; coalescing works when [flush_ops < flush_pages]). *)

val readahead_accuracy : t -> float
(** [readahead_hits / readahead_issued] (0 when nothing was issued). *)

val avg_flush_batch : t -> float

val nshards : t -> int

val live_pages : t -> int

val dirty_resident : t -> int list
(** Resident dirty pages, sorted (for equivalence tests). *)

val dirty_backlog : t -> int
(** Evicted dirty pages still waiting in the logs. *)

val counter_list : t -> (string * int) list
(** Aggregate counters as labelled pairs, for reporting. *)

val shard_counter_list : t -> (string * int) list
(** Per-shard hits/misses/evictions as labelled pairs. *)
