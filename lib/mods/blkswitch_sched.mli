(** blk-switch I/O scheduler LabMod (after Hwang et al., integrated as
    the paper's §IV scheduler case study): reserves a fraction of the
    hardware queues for latency-critical (small) requests and steers
    each class to its least-loaded queue, eliminating head-of-line
    blocking behind bulk transfers.

    With a positive [merge_window_ns] attribute the scheduler also
    merges adjacent requests: the first request of a contiguous run
    waits out the window collecting same-direction neighbours headed
    for the same hardware queue, forwards one combined block op, and
    splits the completion (or torn-write error) back per-request.

    Factory attributes: [merge_window_ns] (float, default 0 = merging
    off — the classic single-request path), [max_merge_bytes] (int,
    default 262144, one full device command), [max_merge_reqs] (int,
    default 64).

    With [?qos] a {!Lab_ipc.Tenant} table is attached: requests stamped
    with a tenant index pass the weighted deficit-round-robin dispatch
    stage before steering (latency-class requests bypass it). Per-op
    cost is O(1) in registered tenants and allocation-free. *)

open Lab_core

val name : string

val lq_threshold_bytes : int
(** Requests at or below this size are treated as latency critical. *)

val merged_ops : Labmod.t -> int
(** Merged device ops dispatched so far (batches that absorbed at least
    one follower). *)

val absorbed_reqs : Labmod.t -> int
(** Requests absorbed into merged ops as followers (excludes leaders). *)

val factory :
  ?metrics:Lab_obs.Metrics.t ->
  ?qos:Lab_ipc.Tenant.t ->
  ?blackbox:Lab_obs.Flightrec.t ->
  nqueues:int ->
  unit ->
  Registry.factory
(** [?metrics] registers the merge counters under ["mod.<uuid>."];
    [?qos] attaches the multi-tenant DRR dispatch stage. [?blackbox]
    records merge/join decisions and QoS-gate park/wake transitions
    into the flight recorder. *)
