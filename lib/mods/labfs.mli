(** LabFS: the paper's example POSIX filesystem LabMod.

    Log-structured and crash-consistent: instead of on-disk inodes and
    bitmaps, every metadata mutation appends a record to a per-instance
    log; the in-memory inode hashmap is a pure function of the log and
    is reconstructed by {!replay} on recovery. Block allocation uses the
    scalable per-worker allocator ({!Block_alloc}) so concurrent workers
    never contend. Log pages are flushed downstream when they fill
    (group commit) and on fsync. *)

open Lab_core

type log_record =
  | Rec_create of { path : string; ino : int }
  | Rec_write of { ino : int; first_block : int; nblocks : int; size : int }
  | Rec_unlink of { path : string }
  | Rec_rename of { src : string; dst : string }

type inode = {
  ino : int;
  mutable size : int;
  mutable first_block : int;  (** -1 while unallocated *)
  mutable nblocks : int;
}

val name : string

val factory :
  total_blocks:int -> nworkers:int -> ?block_size:int -> unit -> Registry.factory
(** [block_size] defaults to 4096. The factory's [attrs] may override
    [nworkers] (key ["nworkers"]). *)

(** {2 Introspection for tests, recovery and benchmarks} *)

val log_of : Labmod.t -> log_record list
(** The metadata log, oldest record first. *)

val inodes_of : Labmod.t -> (string * inode) list

val replay : log_record list -> (string, inode) Hashtbl.t
(** Rebuilds the inode table from a log (crash recovery). The result of
    replaying a LabFS instance's log always equals its live table. *)

val file_count : Labmod.t -> int

val commit_failures : Labmod.t -> int
(** Journal commits (group-commit flushes and fsync flushes) that failed
    at the device. Each failure aborts exactly the records the failed
    flush carried — they are dropped from the log and the inode table is
    rebuilt from the surviving records via {!replay}, so the live table
    keeps agreeing with what stable storage would replay to. *)

val lookup : Labmod.t -> string -> inode option

val allocator : Labmod.t -> Block_alloc.t

val provenance : Labmod.t -> string -> log_record list
(** Provenance tracking: the chronological history of the file
    currently reachable at [path] — its creation, every extent
    appended, and the renames that led to its current name. Empty if
    the path does not exist. *)
