(* Logical volume manager LabMod: maps logical extents onto physical
   extents across multiple backing devices (mirror legs). RAID0 stripes
   extents round-robin for bandwidth; RAID1 places every extent on every
   leg for availability. All metadata mutations — extent alloc/free,
   leg-state changes, rebuild checkpoints — are redo-logged: each op is
   appended to the journal, applied to the in-memory volume group, and
   persisted to a reserved metadata area on every live leg, so replaying
   any prefix of the journal yields a consistent volume group (the
   QCheck property in test/test_lvm.ml).

   When a leg's device goes offline (Device health watcher), reads and
   writes transparently degrade to the surviving legs; when it returns,
   a background process resilvers every allocated extent with
   rate-limited copy traffic while foreground I/O continues. *)

open Lab_sim
open Lab_core
module Metrics = Lab_obs.Metrics
module Device = Lab_device.Device
module Blk = Lab_kernel.Blk

let name = "lab_lvm"

(* Pure volume-group metadata: the redo-log op algebra and its
   idempotent interpreter, separated from the runtime so the
   crash-consistency properties are testable without a simulator. *)
module Meta = struct
  type leg_state = Healthy | Dead | Rebuilding

  let leg_state_to_string = function
    | Healthy -> "healthy"
    | Dead -> "dead"
    | Rebuilding -> "rebuilding"

  type op =
    | Alloc of { lidx : int; placements : (int * int) list }
        (** logical extent [lidx] lives at [(leg, pidx)] for each
            placement; re-logging with more placements (rebuild) simply
            overwrites — last write wins *)
    | Free of { lidx : int }
    | Leg_state of { leg : int; state : leg_state }
    | Rebuild_ckpt of { leg : int; copied : int }

  let op_to_string = function
    | Alloc { lidx; placements } ->
        Printf.sprintf "alloc l%d -> %s" lidx
          (String.concat ","
             (List.map (fun (l, p) -> Printf.sprintf "%d:%d" l p) placements))
    | Free { lidx } -> Printf.sprintf "free l%d" lidx
    | Leg_state { leg; state } ->
        Printf.sprintf "leg %d %s" leg (leg_state_to_string state)
    | Rebuild_ckpt { leg; copied } ->
        Printf.sprintf "ckpt leg %d copied %d" leg copied

  module IMap = Map.Make (Int)

  type vg = {
    nlegs : int;
    extents_per_leg : int;
    lmap : (int * int) list IMap.t;  (** logical extent -> placements *)
    states : leg_state IMap.t;  (** absent means Healthy *)
    ckpts : int IMap.t;
  }

  let create ~nlegs ~extents_per_leg =
    if nlegs <= 0 || extents_per_leg <= 0 then
      invalid_arg "Lab_lvm.Meta.create: sizes must be positive";
    { nlegs; extents_per_leg; lmap = IMap.empty; states = IMap.empty;
      ckpts = IMap.empty }

  (* Redo semantics: every op is an absolute assignment, never a delta,
     which is what makes replay idempotent — applying an op (or a whole
     suffix) twice is the same as applying it once. *)
  let apply vg = function
    | Alloc { lidx; placements } ->
        { vg with lmap = IMap.add lidx placements vg.lmap }
    | Free { lidx } -> { vg with lmap = IMap.remove lidx vg.lmap }
    | Leg_state { leg; state } ->
        { vg with states = IMap.add leg state vg.states }
    | Rebuild_ckpt { leg; copied } ->
        { vg with ckpts = IMap.add leg copied vg.ckpts }

  let replay ~nlegs ~extents_per_leg ops =
    List.fold_left apply (create ~nlegs ~extents_per_leg) ops

  let leg_state vg leg =
    match IMap.find_opt leg vg.states with Some s -> s | None -> Healthy

  let allocated vg = IMap.bindings vg.lmap

  let equal a b =
    a.nlegs = b.nlegs
    && a.extents_per_leg = b.extents_per_leg
    && IMap.equal ( = ) a.lmap b.lmap
    && IMap.equal ( = ) a.states b.states
    && IMap.equal ( = ) a.ckpts b.ckpts

  (* A consistent volume group: every placement is in bounds, a logical
     extent has at most one placement per leg, and no physical extent
     is double-booked by two logical extents. *)
  let consistent vg =
    let seen = Hashtbl.create 64 in
    let ok = ref true in
    IMap.iter
      (fun _ placements ->
        if placements = [] then ok := false;
        let legs_here = Hashtbl.create 4 in
        List.iter
          (fun (leg, pidx) ->
            if leg < 0 || leg >= vg.nlegs then ok := false;
            if pidx < 0 || pidx >= vg.extents_per_leg then ok := false;
            if Hashtbl.mem legs_here leg then ok := false;
            Hashtbl.replace legs_here leg ();
            if Hashtbl.mem seen (leg, pidx) then ok := false;
            Hashtbl.replace seen (leg, pidx) ())
          placements)
      vg.lmap;
    !ok
end

(* Simulated threads for control traffic, clear of clients (0+),
   workers (10_000+) and the admin (9_999). *)
let journal_thread = 21_000

let rebuild_thread_base = 22_000

let sector = 512

(* One redo record per metadata mutation, written synchronously to the
   reserved metadata area of each live leg. *)
let journal_record_bytes = 512

type leg = {
  l_idx : int;
  l_name : string;
  l_blk : Blk.t;
  l_dev : Device.t;
  mutable l_state : Meta.leg_state;
  l_used : Bytes.t;  (* physical-extent allocation bitmap *)
  mutable l_cursor : int;  (* next-fit scan position *)
}

type lvm = {
  uuid : string;
  raid : int;  (* 0 = stripe, 1 = mirror *)
  extent_blocks : int;  (* LBA sectors per extent *)
  meta_blocks : int;  (* reserved journal area at the head of each leg *)
  data_extents : int;  (* per leg *)
  legs : leg array;
  machine : Machine.t;
  rate_mbps : float;  (* resilver copy-rate cap *)
  ckpt_every : int;
  mutable journal_rev : Meta.op list;  (* newest first *)
  mutable vg : Meta.vg;
  mutable jhead : int;
  mutable read_rr : int;
  mutable rebuild_done : int;
  mutable rebuild_total : int;
  c_degraded_reads : Metrics.counter;
  c_degraded_writes : Metrics.counter;
  c_legs_lost : Metrics.counter;
  c_rebuilds_completed : Metrics.counter;
  c_journal_records : Metrics.counter;
  c_journal_write_errors : Metrics.counter;
  c_extents_allocated : Metrics.counter;
  c_rebuild_copied_bytes : Metrics.counter;
}

type Labmod.state += State of lvm

let hctx_of leg ~thread = thread mod Device.n_hw_queues (Blk.device leg.l_blk)

let live_legs st =
  List.rev
    (Array.fold_left
       (fun acc leg -> if leg.l_state <> Meta.Dead then leg :: acc else acc)
       [] st.legs)

let submit_leg_wait leg ~thread ~kind ~lba ~bytes =
  Mod_util.await_value (fun done_ ->
      Blk.submit_io_to_hctx_result leg.l_blk ~thread ~hctx:(hctx_of leg ~thread)
        ~kind ~lba ~bytes ~on_complete:done_)

(* Fan one operation out to several legs and await every outcome. *)
let submit_fan_wait targets ~thread ~kind ~bytes =
  match targets with
  | [] -> []
  | _ ->
      Mod_util.await_value (fun done_ ->
          let remaining = ref (List.length targets) in
          let acc = ref [] in
          List.iter
            (fun (leg, lba) ->
              Blk.submit_io_to_hctx_result leg.l_blk ~thread
                ~hctx:(hctx_of leg ~thread) ~kind ~lba ~bytes
                ~on_complete:(fun r ->
                  acc := (leg, r) :: !acc;
                  decr remaining;
                  if !remaining = 0 then done_ (List.rev !acc)))
            targets)

(* Redo-log append: journal first, then apply to the in-memory volume
   group, then persist one record to every live leg's metadata area —
   write-ahead with respect to the data movement the caller is about to
   do. Persist failures don't fail the mutation (the device-loss path
   is the health watcher's job); they are counted. *)
let log_op st ~thread op =
  st.journal_rev <- op :: st.journal_rev;
  st.vg <- Meta.apply st.vg op;
  Metrics.incr st.c_journal_records;
  let lba = st.jhead in
  st.jhead <- (st.jhead + 1) mod st.meta_blocks;
  let targets = List.map (fun leg -> (leg, lba)) (live_legs st) in
  let results =
    submit_fan_wait targets ~thread ~kind:Device.Write
      ~bytes:journal_record_bytes
  in
  List.iter
    (function
      | _, Ok _ -> ()
      | _, Error _ -> Metrics.incr st.c_journal_write_errors)
    results

let journal st = List.rev st.journal_rev

(* Next-fit physical extent allocation on one leg. *)
let alloc_pidx st leg =
  let n = st.data_extents in
  let rec go tries i =
    if tries = n then None
    else if Bytes.get leg.l_used i = '\000' then begin
      Bytes.set leg.l_used i '\001';
      leg.l_cursor <- (i + 1) mod n;
      Some i
    end
    else go (tries + 1) ((i + 1) mod n)
  in
  go 0 leg.l_cursor

(* Placement policy. RAID1 allocates on every non-dead leg (a
   rebuilding leg receives new writes; its older extents are what the
   resilver copies). RAID0 stripes by logical index regardless of
   health — a striped volume has no redundancy to hide a dead leg. *)
let place st lidx =
  match st.raid with
  | 0 ->
      let leg = st.legs.(lidx mod Array.length st.legs) in
      Option.map (fun pidx -> [ (leg.l_idx, pidx) ]) (alloc_pidx st leg)
  | _ ->
      let placements =
        Array.fold_left
          (fun acc leg ->
            if leg.l_state = Meta.Dead then acc
            else
              match alloc_pidx st leg with
              | Some pidx -> (leg.l_idx, pidx) :: acc
              | None -> acc)
          [] st.legs
        |> List.rev
      in
      if placements = [] then None else Some placements

let ensure_alloc st ~thread lidx =
  match Meta.IMap.find_opt lidx st.vg.Meta.lmap with
  | Some placements -> Some placements
  | None -> (
      match place st lidx with
      | None -> None
      | Some placements ->
          Metrics.incr st.c_extents_allocated;
          log_op st ~thread (Meta.Alloc { lidx; placements });
          Some placements)

let free_extent st ~thread lidx =
  match Meta.IMap.find_opt lidx st.vg.Meta.lmap with
  | None -> ()
  | Some placements ->
      List.iter
        (fun (li, pidx) -> Bytes.set st.legs.(li).l_used pidx '\000')
        placements;
      log_op st ~thread (Meta.Free { lidx })

let data_lba st ~pidx ~off = st.meta_blocks + (pidx * st.extent_blocks) + off

(* Split a block operation into per-logical-extent segments:
   (lidx, offset-in-extent, bytes). *)
let segments st ~lba ~bytes =
  let nblocks = (bytes + sector - 1) / sector in
  let rec go acc lba blocks_left bytes_left =
    if blocks_left <= 0 then List.rev acc
    else begin
      let lidx = lba / st.extent_blocks in
      let off = lba mod st.extent_blocks in
      let span = Stdlib.min (st.extent_blocks - off) blocks_left in
      let seg_bytes = Stdlib.min bytes_left (span * sector) in
      go
        ((lidx, off, seg_bytes) :: acc)
        (lba + span) (blocks_left - span) (bytes_left - seg_bytes)
    end
  in
  go [] lba nblocks bytes

let err_enodev detail = Request.failed_errno "ENODEV" (name ^ ": " ^ detail)

let mark_dead st ~thread leg =
  if leg.l_state <> Meta.Dead then begin
    leg.l_state <- Meta.Dead;
    Metrics.incr st.c_legs_lost;
    log_op st ~thread (Meta.Leg_state { leg = leg.l_idx; state = Meta.Dead })
  end

(* Background resilver: copy every allocated extent onto the returned
   leg, capped at [rate_mbps] so rebuild traffic coexists with
   foreground I/O instead of saturating the device. Only mirrored
   volumes have a surviving copy to read from. *)
let rebuild st leg targets () =
  let thread = rebuild_thread_base + leg.l_idx in
  let ebytes = st.extent_blocks * sector in
  let min_copy_ns =
    (* bytes / (MB/s) in ns: mbps MB/s = mbps/1000 bytes/ns. *)
    Stdlib.float_of_int ebytes *. 1000.0 /. st.rate_mbps
  in
  let engine = st.machine.Machine.engine in
  let aborted = ref false in
  List.iteri
    (fun i lidx ->
      if (not !aborted) && leg.l_state = Meta.Rebuilding then begin
        let t0 = Engine.now engine in
        let placements =
          Option.value ~default:[]
            (Meta.IMap.find_opt lidx st.vg.Meta.lmap)
        in
        let source =
          List.find_opt
            (fun (li, _) ->
              li <> leg.l_idx && st.legs.(li).l_state = Meta.Healthy)
            placements
        in
        let target_pidx =
          match List.assoc_opt leg.l_idx placements with
          | Some pidx -> Some pidx
          | None -> (
              (* Allocated while this leg was dead: give it a physical
                 home here and re-log the extended placement set. *)
              match alloc_pidx st leg with
              | None -> None
              | Some pidx ->
                  log_op st ~thread
                    (Meta.Alloc
                       { lidx; placements = placements @ [ (leg.l_idx, pidx) ] });
                  Some pidx)
        in
        (match (source, target_pidx) with
        | Some (sli, spidx), Some tpidx -> (
            let src = st.legs.(sli) in
            match
              submit_leg_wait src ~thread ~kind:Device.Read
                ~lba:(data_lba st ~pidx:spidx ~off:0) ~bytes:ebytes
            with
            | Error _ -> aborted := true
            | Ok _ -> (
                match
                  submit_leg_wait leg ~thread ~kind:Device.Write
                    ~lba:(data_lba st ~pidx:tpidx ~off:0) ~bytes:ebytes
                with
                | Error _ -> aborted := true
                | Ok _ -> Metrics.incr ~by:ebytes st.c_rebuild_copied_bytes))
        | _ -> aborted := true);
        (* The done-counter stays below the total until the completion
           block has journaled — rebuild_frac reads 1.0 only once the
           rebuild is fully finished, records included. The trailing
           rate-limit wait is also skipped on the last extent: it only
           exists to pace the next copy. *)
        if (not !aborted) && i + 1 < st.rebuild_total then begin
          st.rebuild_done <- i + 1;
          if (i + 1) mod st.ckpt_every = 0 then
            log_op st ~thread
              (Meta.Rebuild_ckpt { leg = leg.l_idx; copied = i + 1 });
          let elapsed = Engine.now engine -. t0 in
          if elapsed < min_copy_ns then Engine.wait (min_copy_ns -. elapsed)
        end
      end)
    targets;
  if (not !aborted) && leg.l_state = Meta.Rebuilding then begin
    leg.l_state <- Meta.Healthy;
    log_op st ~thread
      (Meta.Rebuild_ckpt { leg = leg.l_idx; copied = st.rebuild_total });
    log_op st ~thread
      (Meta.Leg_state { leg = leg.l_idx; state = Meta.Healthy });
    Metrics.incr st.c_rebuilds_completed;
    st.rebuild_done <- st.rebuild_total
  end

let on_leg_online st leg =
  if leg.l_state = Meta.Dead then begin
    leg.l_state <- Meta.Rebuilding;
    (* Snapshot the work-list and publish the totals synchronously, so
       rebuild_frac drops below 1.0 the instant the leg is back —
       before the background copier has had a chance to run. *)
    let targets =
      if st.raid = 0 then [] else List.map fst (Meta.allocated st.vg)
    in
    st.rebuild_total <- List.length targets;
    st.rebuild_done <- 0;
    log_op st ~thread:journal_thread
      (Meta.Leg_state { leg = leg.l_idx; state = Meta.Rebuilding });
    Engine.spawn st.machine.Machine.engine (rebuild st leg targets)
  end

(* Mirror write: fan to every placement whose leg is alive, await all;
   the write succeeds if at least one replica persisted. A leg
   answering ENODEV is marked dead on the spot (the health watcher
   would catch it at the window boundary anyway; this just reacts one
   command earlier). *)
let write_segment st ~thread placements seg_bytes ~off =
  let targets, skipped =
    List.partition_map
      (fun (li, pidx) ->
        let leg = st.legs.(li) in
        if leg.l_state = Meta.Dead then Right (li, pidx)
        else Left (leg, data_lba st ~pidx ~off))
      placements
  in
  if targets = [] then err_enodev "no live mirror leg for write"
  else begin
    if skipped <> [] then Metrics.incr st.c_degraded_writes;
    let results = submit_fan_wait targets ~thread ~kind:Device.Write ~bytes:seg_bytes in
    let oks, errs =
      List.partition (function _, Ok _ -> true | _, Error _ -> false) results
    in
    List.iter
      (function
        | leg, Error Device.E_offline -> mark_dead st ~thread leg
        | _ -> ())
      errs;
    if oks = [] then
      match errs with
      | (_, Error e) :: _ -> Mod_util.device_error name e
      | _ -> err_enodev "no live mirror leg for write"
    else begin
      if errs <> [] then Metrics.incr st.c_degraded_writes;
      Request.Size seg_bytes
    end
  end

(* Mirror read: round-robin across healthy placements, failing over to
   the next candidate on error. Serving a read with any placement
   unavailable counts as degraded. *)
let read_segment st ~thread placements seg_bytes ~off =
  let candidates =
    List.filter
      (fun (li, _) -> st.legs.(li).l_state = Meta.Healthy)
      placements
  in
  if candidates = [] then err_enodev "no healthy leg for read"
  else begin
    if List.length candidates < List.length placements then
      Metrics.incr st.c_degraded_reads;
    let n = List.length candidates in
    let start = st.read_rr mod n in
    st.read_rr <- st.read_rr + 1;
    let order =
      List.mapi (fun i c -> ((i + n - start) mod n, c)) candidates
      |> List.sort compare |> List.map snd
    in
    let rec attempt last_err = function
      | [] -> (
          match last_err with
          | Some e -> Mod_util.device_error name e
          | None -> err_enodev "no healthy leg for read")
      | (li, pidx) :: rest -> (
          let leg = st.legs.(li) in
          match
            submit_leg_wait leg ~thread ~kind:Device.Read
              ~lba:(data_lba st ~pidx ~off) ~bytes:seg_bytes
          with
          | Ok _ -> Request.Size seg_bytes
          | Error e ->
              if e = Device.E_offline then mark_dead st ~thread leg;
              if rest <> [] then Metrics.incr st.c_degraded_reads;
              attempt (Some e) rest)
    in
    attempt None order
  end

let operate m ctx req =
  match (m.Labmod.state, req.Request.payload) with
  | State st, Request.Block { b_kind; b_lba; b_bytes; _ } ->
      let thread = ctx.Labmod.thread in
      let segs = segments st ~lba:b_lba ~bytes:b_bytes in
      let rec run = function
        | [] -> Request.Size b_bytes
        | (lidx, off, seg_bytes) :: rest -> (
            match b_kind with
            | Request.Write -> (
                match ensure_alloc st ~thread lidx with
                | None ->
                    Request.failed_errno "ENOSPC"
                      (name ^ ": volume group out of extents")
                | Some placements -> (
                    match write_segment st ~thread placements seg_bytes ~off with
                    | Request.Size _ -> run rest
                    | err -> err))
            | Request.Read -> (
                match Meta.IMap.find_opt lidx st.vg.Meta.lmap with
                | None ->
                    (* Never written: a zero-filled extent, no device
                       traffic needed. *)
                    run rest
                | Some placements -> (
                    match read_segment st ~thread placements seg_bytes ~off with
                    | Request.Size _ -> run rest
                    | err -> err)))
      in
      run segs
  | State _, _ -> Request.Failed (name ^ ": expects block requests")
  | _ -> Request.Failed (name ^ ": missing state")

let est m req =
  match (m.Labmod.state, req.Request.payload) with
  | State st, Request.Block { b_kind; b_bytes; _ } ->
      let fan =
        if st.raid = 1 && b_kind = Request.Write then Array.length st.legs
        else 1
      in
      1500.0 +. (0.01 *. Stdlib.float_of_int (b_bytes * fan))
  | _ -> 500.0

(* Crash recovery: rebuild the volume group and the per-leg allocation
   bitmaps by replaying the redo journal from the start — replay is
   idempotent, so recovering twice (or from any prefix, for the
   property test) is harmless. *)
let repair m =
  match m.Labmod.state with
  | State st ->
      st.vg <-
        Meta.replay ~nlegs:(Array.length st.legs)
          ~extents_per_leg:st.data_extents (journal st);
      Array.iter
        (fun leg ->
          Bytes.fill leg.l_used 0 (Bytes.length leg.l_used) '\000';
          leg.l_cursor <- 0;
          leg.l_state <- Meta.leg_state st.vg leg.l_idx)
        st.legs;
      Meta.IMap.iter
        (fun _ placements ->
          List.iter
            (fun (li, pidx) -> Bytes.set st.legs.(li).l_used pidx '\001')
            placements)
        st.vg.Meta.lmap
  | _ -> ()

let state_of = function
  | { Labmod.state = State st; _ } -> st
  | _ -> invalid_arg "Lab_lvm: not a lab_lvm instance"

let journal_ops m = journal (state_of m)

let vg m = (state_of m).vg

let rebuild_frac_of st =
  if st.rebuild_total = 0 then 1.0
  else
    Stdlib.float_of_int st.rebuild_done
    /. Stdlib.float_of_int st.rebuild_total

let rebuild_frac m = rebuild_frac_of (state_of m)

let leg_states m =
  Array.to_list
    (Array.map
       (fun leg -> (leg.l_name, Meta.leg_state_to_string leg.l_state))
       (state_of m).legs)

let counters m =
  let st = state_of m in
  [
    ("degraded_reads", Metrics.value st.c_degraded_reads);
    ("degraded_writes", Metrics.value st.c_degraded_writes);
    ("legs_lost", Metrics.value st.c_legs_lost);
    ("rebuilds_completed", Metrics.value st.c_rebuilds_completed);
    ("journal_records", Metrics.value st.c_journal_records);
    ("journal_write_errors", Metrics.value st.c_journal_write_errors);
    ("extents_allocated", Metrics.value st.c_extents_allocated);
    ("rebuild_copied_bytes", Metrics.value st.c_rebuild_copied_bytes);
  ]

let free m ~thread ~lba ~bytes =
  let st = state_of m in
  List.iter
    (fun (lidx, _, _) -> free_extent st ~thread lidx)
    (segments st ~lba ~bytes)

let factory ?metrics ~machine ~legs ~rebuild_rate_mbps () : Registry.factory =
 fun ~uuid ~attrs ->
  let probe = uuid = "__probe__" in
  let metrics = if probe then None else metrics in
  let geti key default =
    Option.value ~default
      (Option.bind (List.assoc_opt key attrs) Yamlite.get_int)
  in
  let getf key default =
    Option.value ~default
      (Option.bind (List.assoc_opt key attrs) Yamlite.get_float)
  in
  let leg_names =
    match Option.bind (List.assoc_opt "legs" attrs) Yamlite.get_list with
    | None -> List.map (fun (n, _, _) -> n) legs
    | Some nodes -> List.filter_map Yamlite.get_string nodes
  in
  let chosen =
    List.map
      (fun n ->
        match List.find_opt (fun (n', _, _) -> n' = n) legs with
        | Some l -> l
        | None -> invalid_arg (Printf.sprintf "lab_lvm: unknown leg %S" n))
      leg_names
  in
  if chosen = [] then invalid_arg "lab_lvm: needs at least one leg";
  let raid = geti "raid" 1 in
  if raid <> 0 && raid <> 1 then invalid_arg "lab_lvm: raid must be 0 or 1";
  let extent_blocks = geti "extent_blocks" 2048 in
  let meta_blocks = geti "meta_blocks" 4096 in
  let data_extents =
    List.fold_left
      (fun acc (_, blk, _) ->
        let blocks =
          Lab_device.Profile.blocks (Device.profile (Blk.device blk))
        in
        Stdlib.min acc (Stdlib.max 1 ((blocks - meta_blocks) / extent_blocks)))
      Stdlib.max_int chosen
  in
  let legs_arr =
    Array.of_list
      (List.mapi
         (fun i (n, blk, dev) ->
           {
             l_idx = i;
             l_name = n;
             l_blk = blk;
             l_dev = dev;
             l_state = Meta.Healthy;
             l_used = Bytes.make data_extents '\000';
             l_cursor = 0;
           })
         chosen)
  in
  let c nm = Metrics.counter ?reg:metrics (Printf.sprintf "mod.%s.%s" uuid nm) in
  let st =
    {
      uuid;
      raid;
      extent_blocks;
      meta_blocks;
      data_extents;
      legs = legs_arr;
      machine;
      rate_mbps = getf "rebuild_rate_mbps" rebuild_rate_mbps;
      ckpt_every = Stdlib.max 1 (geti "ckpt_every" 64);
      journal_rev = [];
      vg = Meta.create ~nlegs:(Array.length legs_arr) ~extents_per_leg:data_extents;
      jhead = 0;
      read_rr = 0;
      rebuild_done = 0;
      rebuild_total = 0;
      c_degraded_reads = c "degraded_reads";
      c_degraded_writes = c "degraded_writes";
      c_legs_lost = c "legs_lost";
      c_rebuilds_completed = c "rebuilds_completed";
      c_journal_records = c "journal_records";
      c_journal_write_errors = c "journal_write_errors";
      c_extents_allocated = c "extents_allocated";
      c_rebuild_copied_bytes = c "rebuild_copied_bytes";
    }
  in
  (match metrics with
  | Some reg ->
      Metrics.gauge_fn reg
        (Printf.sprintf "mod.%s.rebuild_frac" uuid)
        (fun () -> rebuild_frac_of st);
      Metrics.gauge_fn reg
        (Printf.sprintf "mod.%s.live_legs" uuid)
        (fun () -> Stdlib.float_of_int (List.length (live_legs st)))
  | None -> ());
  (* The device-loss hook: each leg's health watcher flips the mirror
     state machine (healthy -> dead -> rebuilding -> healthy) and
     journals every transition. Probe instantiations must not attach
     watchers to shared devices. *)
  if not probe then
    Array.iter
      (fun leg ->
        Device.add_health_watcher leg.l_dev (function
          | Device.Went_offline _ -> mark_dead st ~thread:journal_thread leg
          | Device.Came_online -> on_leg_online st leg))
      legs_arr;
  Labmod.make ~name ~uuid ~mod_type:Labmod.Driver ~state:(State st)
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = repair;
    }
