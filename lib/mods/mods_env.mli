(** Convenience installer: registers the stock LabMod implementations
    against a set of storage backends, as the Runtime configuration
    ("LabMod repos") would. *)

open Lab_core

type backend = {
  blk : Lab_kernel.Blk.t;
  device : Lab_device.Device.t;
}

val backend_of_device : Lab_sim.Machine.t -> Lab_device.Device.t -> backend
(** Wraps a device with a pass-through block layer (Noop steering). *)

val install :
  ?metrics:Lab_obs.Metrics.t ->
  ?timeseries:Lab_obs.Timeseries.t ->
  ?qos:Lab_ipc.Tenant.t ->
  ?blackbox:Lab_obs.Flightrec.t ->
  Registry.t ->
  machine:Lab_sim.Machine.t ->
  backends:(string * backend) list ->
  default_backend:string ->
  nworkers:int ->
  lvm_rebuild_rate_mbps:float ->
  unit
(** [?metrics] is threaded to the cache and scheduler factories so
    every instance they build registers its counters (under
    ["mod.<uuid>."]) in that registry.  [?timeseries] is threaded to
    the cache factories so each instance registers its
    ["mod.<uuid>.dirty_backlog"] probe with the profiling sampler.
    [?qos] is threaded to the [blkswitch_sched] factory, attaching the
    multi-tenant DRR dispatch stage to every instance it builds.
    [?blackbox] is threaded to the [blkswitch_sched] factory so its
    instances record scheduler decisions into the flight recorder.

    Registers: [labfs], [labkvs], [lru_cache], [permissions],
    [compress], [noop_sched], [blkswitch_sched], [lab_lvm] (over all
    backends as candidate legs, resilvering at
    [lvm_rebuild_rate_mbps] by default), [dummy], plus per-backend
    drivers named [kernel_driver:<backend>], [spdk:<backend>] (polling
    devices only) and [dax:<backend>] (byte-addressable devices only).
    The unqualified [kernel_driver], [spdk], and [dax] names bind to
    [default_backend]. *)
