(** LRU page-cache LabMod.

    Write-back by default: writes are absorbed and dirty pages reach
    the device only on eviction; the [write_through] attribute persists
    writes synchronously instead. Reads served from cache skip the rest
    of the stack. Force-unit-access requests ([b_sync], e.g. journal
    flushes) always bypass the cache.

    Attributes: [capacity_mb] (default 64), [write_through] (default
    false). *)

open Lab_core

val name : string

val factory : Registry.factory

val hits : Labmod.t -> int

val misses : Labmod.t -> int

val writeback_failures : Labmod.t -> int
(** Asynchronous dirty-page writebacks that completed with a failure
    (e.g. an injected device fault). Read misses whose fill fails are
    never admitted into the cache; write-through writes that fail leave
    their pages dirty so eviction retries the persist. *)
