(** LRU page-cache LabMod.

    A thin policy wrapper around {!Cache_core}: the engine provides
    sharding, sequential readahead, and coalesced dirty write-back;
    this module contributes the LRU replacement policy.

    Write-back by default: writes are absorbed and dirty pages reach
    the device only when evicted pages are flushed from the write-back
    log (or on a [Control] drain); the [write_through] attribute
    persists writes synchronously instead. Reads served from cache skip
    the rest of the stack. Force-unit-access requests ([b_sync], e.g.
    journal flushes) always bypass the cache.

    Attributes (see {!Cache_core.config_of_attrs}): [capacity_mb]
    (default 64), [write_through] (false), [shards] (1), [readahead]
    (false), [ra_min_pages] (4), [ra_max_pages] (64), [wb_high] (32),
    [wb_low] (8), [wb_max_batch] (64). *)

open Lab_core

val name : string

val factory :
  ?metrics:Lab_obs.Metrics.t ->
  ?timeseries:Lab_obs.Timeseries.t ->
  unit ->
  Registry.factory
(** [?metrics] registers the cache counters under ["mod.<uuid>."];
    [?timeseries] adds the ["mod.<uuid>.dirty_backlog"] sampler probe. *)

val core : Labmod.t -> Cache_core.t option
(** The underlying engine, for counter inspection. *)

val hits : Labmod.t -> int

val misses : Labmod.t -> int

val writeback_failures : Labmod.t -> int
(** Pages whose asynchronous write-back run completed with a failure
    (e.g. an injected device fault). Read misses whose fill fails are
    never admitted into the cache; write-through writes that fail leave
    their pages dirty so eviction retries the persist. *)

val counter_list : Labmod.t -> (string * int) list
(** Aggregate engine counters as labelled pairs
    (see {!Cache_core.counter_list}). *)

val shard_counter_list : Labmod.t -> (string * int) list
(** Per-shard hits/misses/evictions as labelled pairs. *)
