(* SPDK Driver LabMod: the NVMe queue pair is mapped into userspace, so
   submission is a queue write plus a doorbell — no kernel entry, no
   kernel request allocation. *)

open Lab_sim
open Lab_core
open Lab_device

type Labmod.state += State of { device : Device.t }

let name = "spdk"

(* SQE write + doorbell MMIO. *)
let submit_cost_ns = 150.0

let operate m ctx req =
  match (m.Labmod.state, req.Request.payload) with
  | State { device }, Request.Block { b_kind; b_lba; b_bytes; _ } ->
      let machine = ctx.Labmod.machine in
      Machine.compute machine ~thread:ctx.Labmod.thread submit_cost_ns;
      let nq = Device.n_hw_queues device in
      let hctx =
        match req.Request.hint_hctx with
        | Some h -> h mod nq
        | None -> ctx.Labmod.thread mod nq
      in
      let outcome =
        Mod_util.await_value (fun done_ ->
            Device.submit_result device ~hctx
              ~kind:(Mod_util.device_kind b_kind) ~lba:b_lba ~bytes:b_bytes
              ~on_complete:done_)
      in
      Engine.wait machine.Machine.costs.Costs.poll_spin_ns;
      (match outcome with
      | Ok _ -> Request.Size b_bytes
      | Error e -> Mod_util.device_error name e)
  | _ -> Request.Failed "spdk: expects block requests"

let est m req =
  ignore m;
  match req.Request.payload with
  | Request.Block { b_bytes; _ } -> 300.0 +. (0.01 *. Stdlib.float_of_int b_bytes)
  | _ -> 300.0

let factory ~device : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  if not (Device.profile device).Profile.supports_polling then
    invalid_arg "spdk: device does not support userspace polling";
  Labmod.make ~name ~uuid ~mod_type:Labmod.Driver ~state:(State { device })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
