(** Logical volume manager LabMod.

    Maps logical extents onto physical extents across multiple backing
    devices: RAID0 stripes extents round-robin across the legs for
    bandwidth, RAID1 places every extent on every leg for availability.
    Metadata is crash-consistent via a redo log ({!Meta}): every
    mutation is journaled as an absolute (hence idempotently
    replayable) op and persisted to a reserved metadata area on each
    live leg before the data moves.

    On device loss ({!Lab_device.Device.add_health_watcher}), I/O
    transparently degrades to the surviving legs — counted by the
    [mod.<uuid>.degraded_reads] / [degraded_writes] instruments — and
    when the leg returns a background process resilvers every allocated
    extent at a capped copy rate, tracked by the
    [mod.<uuid>.rebuild_frac] gauge.

    Stack attrs: [raid] (0 | 1, default 1), [legs] (list of backend
    names, default all), [extent_blocks] (sectors per extent, default
    2048), [meta_blocks] (journal area sectors, default 4096),
    [rebuild_rate_mbps] (default from the runtime config), and
    [ckpt_every] (extents between rebuild checkpoints, default 64). *)

open Lab_core

(** Pure volume-group metadata: the redo-log op algebra and its
    idempotent interpreter, separated from the runtime so the
    crash-consistency properties are checkable without a simulator
    (see test/test_lvm.ml). *)
module Meta : sig
  type leg_state = Healthy | Dead | Rebuilding

  val leg_state_to_string : leg_state -> string

  type op =
    | Alloc of { lidx : int; placements : (int * int) list }
        (** logical extent [lidx] lives at each [(leg, pidx)];
            re-logging with a grown placement set (rebuild) overwrites *)
    | Free of { lidx : int }
    | Leg_state of { leg : int; state : leg_state }
    | Rebuild_ckpt of { leg : int; copied : int }

  val op_to_string : op -> string

  module IMap : Map.S with type key = int

  type vg = {
    nlegs : int;
    extents_per_leg : int;
    lmap : (int * int) list IMap.t;  (** logical extent -> placements *)
    states : leg_state IMap.t;  (** absent means Healthy *)
    ckpts : int IMap.t;
  }

  val create : nlegs:int -> extents_per_leg:int -> vg

  val apply : vg -> op -> vg
  (** Idempotent: ops are absolute assignments, never deltas, so
      applying an op twice equals applying it once. *)

  val replay : nlegs:int -> extents_per_leg:int -> op list -> vg
  (** Folds {!apply} over an empty volume group — recovery, and the
      journal-prefix property's subject. *)

  val leg_state : vg -> int -> leg_state

  val allocated : vg -> (int * (int * int) list) list

  val equal : vg -> vg -> bool

  val consistent : vg -> bool
  (** Placements in bounds, at most one placement per leg per logical
      extent, and no physical extent double-booked. *)
end

val name : string

val factory :
  ?metrics:Lab_obs.Metrics.t ->
  machine:Lab_sim.Machine.t ->
  legs:(string * Lab_kernel.Blk.t * Lab_device.Device.t) list ->
  rebuild_rate_mbps:float ->
  unit ->
  Registry.factory
(** [legs] are the candidate backing devices by backend name; a stack's
    [legs] attr selects a subset. [rebuild_rate_mbps] is the default
    resilver rate cap (the [lvm_rebuild_rate_mbps] runtime knob).
    Instances register [mod.<uuid>.*] counters plus the [rebuild_frac]
    and [live_legs] gauges in [?metrics], and attach a health watcher
    to each leg's device (probe instantiations attach nothing). *)

(** {2 Introspection} (for tests, benches and the CLI) *)

val journal_ops : Labmod.t -> Meta.op list
(** The redo journal, oldest first. *)

val vg : Labmod.t -> Meta.vg

val rebuild_frac : Labmod.t -> float
(** Resilvered fraction of the extents the current (or last) rebuild
    covers; 1.0 when no rebuild is pending. *)

val leg_states : Labmod.t -> (string * string) list

val counters : Labmod.t -> (string * int) list

val free : Labmod.t -> thread:int -> lba:int -> bytes:int -> unit
(** Frees the logical extents covering the range (journaled); must run
    in a simulated process. *)
