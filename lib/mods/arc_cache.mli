(** ARC (Adaptive Replacement Cache) page-cache LabMod.

    The paper motivates "exotic" cache policies (e.g. ML-driven
    eviction) as LabMods; ARC is the classic self-tuning policy
    (Megiddo & Modha, FAST'03): it balances a recency list (T1) against
    a frequency list (T2) using ghost lists (B1/B2) of recently evicted
    keys, adapting the target split [p] to the workload — resistant to
    scans that flush plain LRU.

    Drop-in interchangeable with [lru_cache] in any LabStack (same
    module type, same attributes), demonstrating LabMod
    interchangeability. *)

open Lab_core

val name : string

val factory :
  ?metrics:Lab_obs.Metrics.t ->
  ?timeseries:Lab_obs.Timeseries.t ->
  unit ->
  Registry.factory
(** [?metrics] registers the cache counters under ["mod.<uuid>."];
    [?timeseries] adds the ["mod.<uuid>.dirty_backlog"] sampler probe.

    Attributes (see {!Cache_core.config_of_attrs}): [capacity_mb]
    (default 64), [write_through] (false), [shards] (1), [readahead]
    (false), [ra_min_pages] (4), [ra_max_pages] (64), [wb_high] (32),
    [wb_low] (8), [wb_max_batch] (64). The ARC policy runs per shard,
    each with its own adaptive target. *)

val core : Labmod.t -> Cache_core.t option
(** The underlying engine, for counter inspection. *)

val hits : Labmod.t -> int

val misses : Labmod.t -> int

val writeback_failures : Labmod.t -> int
(** Pages whose write-back run completed with a failure. As with
    [lru_cache], a read miss whose downstream fill fails is never
    admitted into the cache. *)

val counter_list : Labmod.t -> (string * int) list
(** Aggregate engine counters as labelled pairs
    (see {!Cache_core.counter_list}). *)

val shard_counter_list : Labmod.t -> (string * int) list
(** Per-shard hits/misses/evictions as labelled pairs. *)

val p_target : Labmod.t -> int
(** Current adaptive target for the recency side, in pages (the
    maximum across shards). *)

(** The pure ARC structure, exposed for property tests. *)
module Arc : sig
  type t

  val create : capacity:int -> t

  val mem : t -> int -> bool

  val touch : t -> int -> bool
  (** [touch t key] records an access; true on hit. Adapts [p] and
      evicts per the ARC algorithm on miss. *)

  val evicted : t -> int option
  (** Key evicted by the most recent [touch], if any. *)

  val live_count : t -> int

  val ghost_count : t -> int

  val p : t -> int

  val capacity : t -> int
end

val arc_shards : Labmod.t -> Arc.t array
(** Each shard's ARC structure, for ghost-list invariant tests. *)
