open Lab_sim
open Lab_core

type log_record =
  | Rec_create of { path : string; ino : int }
  | Rec_write of { ino : int; first_block : int; nblocks : int; size : int }
  | Rec_unlink of { path : string }
  | Rec_rename of { src : string; dst : string }

type inode = {
  ino : int;
  mutable size : int;
  mutable first_block : int;
  mutable nblocks : int;
}

type fs_state = {
  inodes : (string, inode) Hashtbl.t;
  alloc : Block_alloc.t;
  mutable log : log_record list;  (* newest first *)
  mutable log_len : int;
  mutable log_bytes_pending : int;
  mutable next_ino : int;
  mutable log_lba : int;
  block_size : int;
  nworkers : int;
  mutable commit_failures : int;
      (* journal commits that failed at the device and were aborted *)
}

type Labmod.state += State of fs_state

let name = "labfs"

let record_bytes = 64

let log_flush_threshold = 4096

(* CPU costs per metadata operation: request decoding, inode-hashmap
   manipulation, log-record construction. Creates dominate (inode init,
   allocator bookkeeping), calibrated against the paper's Figure 7. *)
let create_cpu_ns = 2200.0

let write_meta_cpu_ns = 450.0

let lookup_cpu_ns = 350.0

let unlink_cpu_ns = 1200.0

let rename_cpu_ns = 1000.0

let state_of m =
  match m.Labmod.state with
  | State s -> s
  | _ -> invalid_arg "labfs: bad state"

let log_of m = List.rev (state_of m).log

let inodes_of m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (state_of m).inodes []

let file_count m = Hashtbl.length (state_of m).inodes

let commit_failures m = (state_of m).commit_failures

let lookup m path = Hashtbl.find_opt (state_of m).inodes path

let allocator m = (state_of m).alloc

(* Walk the log forward, tracking name->ino bindings, and collect the
   records that touched the inode currently visible at [path]. *)
let provenance m path =
  let s = state_of m in
  match Hashtbl.find_opt s.inodes path with
  | None -> []
  | Some target ->
      let names = Hashtbl.create 64 in
      let events = ref [] in
      List.iter
        (fun r ->
          match r with
          | Rec_create { path = p; ino } ->
              Hashtbl.replace names p ino;
              if ino = target.ino then events := r :: !events
          | Rec_write { ino; _ } ->
              if ino = target.ino then events := r :: !events
          | Rec_unlink { path = p } -> Hashtbl.remove names p
          | Rec_rename { src; dst } -> (
              match Hashtbl.find_opt names src with
              | Some ino ->
                  Hashtbl.remove names src;
                  Hashtbl.replace names dst ino;
                  if ino = target.ino then events := r :: !events
              | None -> ()))
        (List.rev s.log);
      List.rev !events

let replay records =
  let inodes = Hashtbl.create 1024 in
  let by_ino = Hashtbl.create 1024 in
  List.iter
    (fun r ->
      match r with
      | Rec_create { path; ino } ->
          let inode = { ino; size = 0; first_block = -1; nblocks = 0 } in
          Hashtbl.replace inodes path inode;
          Hashtbl.replace by_ino ino inode
      | Rec_write { ino; first_block; nblocks; size } -> (
          match Hashtbl.find_opt by_ino ino with
          | Some inode ->
              if inode.first_block = -1 then inode.first_block <- first_block;
              inode.nblocks <- inode.nblocks + nblocks;
              inode.size <- Stdlib.max inode.size size
          | None -> ())
      | Rec_unlink { path } -> (
          match Hashtbl.find_opt inodes path with
          | Some inode ->
              Hashtbl.remove inodes path;
              Hashtbl.remove by_ino inode.ino
          | None -> ())
      | Rec_rename { src; dst } -> (
          match Hashtbl.find_opt inodes src with
          | Some inode ->
              Hashtbl.remove inodes src;
              Hashtbl.replace inodes dst inode
          | None -> ()))
    records;
  inodes

(* A journal commit failed at the device: the records it carried were
   never persisted, so they must not stay in the log (replay after a
   crash would disagree with what stable storage holds). Drop exactly
   those records — [newer] records appended after the failed flush stay,
   the [count] flushed ones go — then rebuild the inode table from the
   surviving log, reusing the recovery machinery. *)
let abort_uncommitted s ~newer ~count =
  let rec drop i acc = function
    | [] -> List.rev acc
    | r :: rest ->
        if i >= newer && i < newer + count then drop (i + 1) acc rest
        else drop (i + 1) (r :: acc) rest
  in
  s.log <- drop 0 [] s.log;
  s.log_len <- Stdlib.max 0 (s.log_len - count);
  s.commit_failures <- s.commit_failures + 1;
  let rebuilt = replay (List.rev s.log) in
  Hashtbl.reset s.inodes;
  Hashtbl.iter (fun k v -> Hashtbl.replace s.inodes k v) rebuilt

(* Append a metadata record; flush a full log page downstream (group
   commit — the flush cost is amortized over threshold/record_bytes
   operations). *)
let append s ctx record =
  s.log <- record :: s.log;
  s.log_len <- s.log_len + 1;
  s.log_bytes_pending <- s.log_bytes_pending + record_bytes;
  if s.log_bytes_pending >= log_flush_threshold then begin
    let bytes = s.log_bytes_pending in
    s.log_bytes_pending <- 0;
    let lba = s.log_lba in
    s.log_lba <- s.log_lba + (bytes / s.block_size) + 1;
    let flush_req =
      {
        (Request.make ~id:(-1) ~pid:0 ~uid:0 ~thread:ctx.Labmod.thread
           ~stack_id:0 ~now:0.0
           (Request.Block
              {
                Request.b_kind = Request.Write;
                b_lba = lba;
                b_bytes = bytes;
                b_sync = true;
              }))
        with
        Request.hop = "";
      }
    in
    let mark_len = s.log_len in
    let count = bytes / record_bytes in
    ctx.Labmod.forward_async flush_req (fun r ->
        if not (Request.is_ok r) then
          abort_uncommitted s ~newer:(s.log_len - mark_len) ~count)
  end

let charge ctx ns = Machine.compute ctx.Labmod.machine ~thread:ctx.Labmod.thread ns

let do_create s ctx path =
  charge ctx create_cpu_ns;
  (* Re-creating an existing file truncates it: old blocks return to
     the allocator and the log records a fresh inode, so replay agrees
     with the live table. *)
  (match Hashtbl.find_opt s.inodes path with
  | Some old when old.first_block >= 0 ->
      Block_alloc.free s.alloc ~worker:(ctx.Labmod.thread mod s.nworkers)
        (List.init old.nblocks (fun i -> old.first_block + i))
  | Some _ | None -> ());
  let ino = s.next_ino in
  s.next_ino <- ino + 1;
  Hashtbl.replace s.inodes path { ino; size = 0; first_block = -1; nblocks = 0 };
  append s ctx (Rec_create { path; ino });
  Request.Done

let do_write s ctx req path ~off ~bytes =
  charge ctx write_meta_cpu_ns;
  match Hashtbl.find_opt s.inodes path with
  | None -> Request.Failed ("labfs: no such file " ^ path)
  | Some inode ->
      let needed_blocks =
        let covered = inode.nblocks * s.block_size in
        let upto = off + bytes in
        if upto <= covered then 0
        else (upto - covered + s.block_size - 1) / s.block_size
      in
      if needed_blocks > 0 then begin
        let worker = ctx.Labmod.thread mod s.nworkers in
        let blocks = Block_alloc.alloc s.alloc ~worker needed_blocks in
        let first = List.hd blocks in
        if inode.first_block = -1 then inode.first_block <- first;
        inode.nblocks <- inode.nblocks + needed_blocks;
        append s ctx
          (Rec_write
             {
               ino = inode.ino;
               first_block = first;
               nblocks = needed_blocks;
               size = off + bytes;
             })
      end;
      inode.size <- Stdlib.max inode.size (off + bytes);
      let lba = inode.first_block + (off / s.block_size) in
      let io =
        {
          req with
          Request.payload =
            Request.Block
              { Request.b_kind = Request.Write; b_lba = lba; b_bytes = bytes; b_sync = false };
        }
      in
      ctx.Labmod.forward io

let do_read s ctx req path ~off ~bytes =
  charge ctx lookup_cpu_ns;
  match Hashtbl.find_opt s.inodes path with
  | None -> Request.Failed ("labfs: no such file " ^ path)
  | Some inode ->
      if inode.first_block = -1 then Request.Size 0
      else begin
        let bytes = Stdlib.min bytes (Stdlib.max 0 (inode.size - off)) in
        if bytes = 0 then Request.Size 0
        else begin
          let lba = inode.first_block + (off / s.block_size) in
          let io =
            {
              req with
              Request.payload =
                Request.Block
                  { Request.b_kind = Request.Read; b_lba = lba; b_bytes = bytes; b_sync = false };
            }
          in
          ctx.Labmod.forward io
        end
      end

let do_fsync s ctx req =
  if s.log_bytes_pending > 0 then begin
    let bytes = s.log_bytes_pending in
    s.log_bytes_pending <- 0;
    let lba = s.log_lba in
    s.log_lba <- s.log_lba + (bytes / s.block_size) + 1;
    let io =
      {
        req with
        Request.payload =
          Request.Block
            { Request.b_kind = Request.Write; b_lba = lba; b_bytes = bytes; b_sync = true };
      }
    in
    let mark_len = s.log_len in
    let result = ctx.Labmod.forward io in
    if Request.is_ok result then Request.Done
    else begin
      (* The commit never reached stable storage: abort the records it
         carried and surface the failure to the caller. [forward] may
         have yielded, so account for records appended meanwhile. *)
      abort_uncommitted s ~newer:(s.log_len - mark_len)
        ~count:(bytes / record_bytes);
      result
    end
  end
  else Request.Done

let do_unlink s ctx path =
  charge ctx unlink_cpu_ns;
  match Hashtbl.find_opt s.inodes path with
  | None -> Request.Failed ("labfs: no such file " ^ path)
  | Some inode ->
      Hashtbl.remove s.inodes path;
      if inode.first_block >= 0 then begin
        let worker = ctx.Labmod.thread mod s.nworkers in
        Block_alloc.free s.alloc ~worker
          (List.init inode.nblocks (fun i -> inode.first_block + i))
      end;
      append s ctx (Rec_unlink { path });
      Request.Done

let do_rename s ctx src dst =
  charge ctx rename_cpu_ns;
  match Hashtbl.find_opt s.inodes src with
  | None -> Request.Failed ("labfs: no such file " ^ src)
  | Some inode ->
      Hashtbl.remove s.inodes src;
      Hashtbl.replace s.inodes dst inode;
      append s ctx (Rec_rename { src; dst });
      Request.Done

let operate m ctx req =
  let s = state_of m in
  match req.Request.payload with
  | Request.Posix op -> (
      match op with
      | Request.Create { path } -> do_create s ctx path
      | Request.Open { path; create = true } ->
          (* O_CREAT without O_TRUNC: existing files are left intact. *)
          if Hashtbl.mem s.inodes path then begin
            charge ctx lookup_cpu_ns;
            Request.Done
          end
          else do_create s ctx path
      | Request.Open { path; create = false } ->
          charge ctx lookup_cpu_ns;
          if Hashtbl.mem s.inodes path then Request.Done
          else Request.Failed ("labfs: no such file " ^ path)
      | Request.Close _ -> Request.Done
      | Request.Pwrite { path; off; bytes; _ } -> do_write s ctx req path ~off ~bytes
      | Request.Pread { path; off; bytes; _ } -> do_read s ctx req path ~off ~bytes
      | Request.Fsync _ -> do_fsync s ctx req
      | Request.Unlink { path } -> do_unlink s ctx path
      | Request.Rename { src; dst } -> do_rename s ctx src dst)
  | Request.Kv _ | Request.Block _ | Request.Control _ ->
      Request.Failed "labfs: expects POSIX requests"

let est m req =
  ignore m;
  match req.Request.payload with
  | Request.Posix (Request.Pwrite { bytes; _ })
  | Request.Posix (Request.Pread { bytes; _ }) ->
      2000.0 +. (0.05 *. Stdlib.float_of_int bytes)
  | _ -> 1500.0

let factory ~total_blocks ~nworkers ?(block_size = 4096) () : Registry.factory =
 fun ~uuid ~attrs ->
  let nworkers =
    Option.value ~default:nworkers
      (Option.bind (List.assoc_opt "nworkers" attrs) Yamlite.get_int)
  in
  let state =
    State
      {
        inodes = Hashtbl.create 4096;
        alloc = Block_alloc.create ~total_blocks ~workers:(Stdlib.max 1 nworkers) ();
        log = [];
        log_len = 0;
        log_bytes_pending = 0;
        next_ino = 1;
        log_lba = 0;
        block_size;
        nworkers = Stdlib.max 1 nworkers;
        commit_failures = 0;
      }
  in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Filesystem ~state
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair =
        (fun m ->
          (* Crash recovery: the inode table must equal the log replay. *)
          let s = state_of m in
          let rebuilt = replay (List.rev s.log) in
          Hashtbl.reset s.inodes;
          Hashtbl.iter (fun k v -> Hashtbl.replace s.inodes k v) rebuilt);
    }
