(* LRU page-cache LabMod: write-through page cache over block requests.
   Writes copy payload pages into the cache and continue downstream;
   reads served from cache skip the device entirely. *)

open Lab_sim
open Lab_core

type cache_state = {
  pages : (int, bool ref) Lru.t;  (* page -> dirty flag *)
  page_bytes : int;
  write_through : bool;  (* policy knob: persist writes synchronously *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable writeback_failures : int;
      (* async dirty-page writebacks that came back failed *)
}

type Labmod.state += State of cache_state

let name = "lru_cache"

let pages_of_req ~page_bytes lba bytes =
  let first = lba and last = lba + ((bytes - 1) / page_bytes) in
  List.init (last - first + 1) (fun i -> first + i)

let hits m =
  match m.Labmod.state with State s -> s.hit_count | _ -> 0

let misses m =
  match m.Labmod.state with State s -> s.miss_count | _ -> 0

let writeback_failures m =
  match m.Labmod.state with State s -> s.writeback_failures | _ -> 0

let operate m ctx req =
  match (m.Labmod.state, req.Request.payload) with
  | State _, Request.Block { b_sync = true; _ } ->
      (* Force-unit-access traffic (journal/flush writes) bypasses the
         cache and goes straight to the device. *)
      ctx.Labmod.forward req
  | State s, Request.Block { b_kind; b_lba; b_bytes; b_sync = false } -> (
      let machine = ctx.Labmod.machine in
      let costs = machine.Machine.costs in
      let copy = Costs.copy_cost costs b_bytes in
      let pages = pages_of_req ~page_bytes:s.page_bytes b_lba b_bytes in
      (* Write back an evicted dirty page asynchronously. *)
      let writeback evicted =
        match evicted with
        | Some (page, dirty) when !dirty ->
            let io =
              {
                req with
                Request.payload =
                  Request.Block
                    {
                      Request.b_kind = Request.Write;
                      b_lba = page;
                      b_bytes = s.page_bytes;
                      b_sync = false;
                    };
              }
            in
            ctx.Labmod.forward_async io (fun r ->
                if not (Request.is_ok r) then
                  s.writeback_failures <- s.writeback_failures + 1)
        | _ -> ()
      in
      match b_kind with
      | Request.Write ->
          if s.write_through then begin
            (* Copy in, then persist synchronously. *)
            Machine.compute machine ~thread:ctx.Labmod.thread
              (costs.Costs.cache_insert_ns *. Stdlib.float_of_int (List.length pages)
              +. copy);
            List.iter (fun p -> writeback (Lru.put s.pages p (ref false))) pages;
            let result = ctx.Labmod.forward req in
            (* Device fault: the cache copy is now the only good copy;
               mark it dirty so eviction retries the persist. *)
            if not (Request.is_ok result) then
              List.iter
                (fun p ->
                  match Lru.find s.pages p with
                  | Some dirty -> dirty := true
                  | None -> ())
                pages;
            result
          end
          else begin
            (* Write-back cache: the data is absorbed here and reaches
               the device only when its pages are evicted (or flushed). *)
            Machine.compute machine ~thread:ctx.Labmod.thread
              (costs.Costs.cache_insert_ns *. Stdlib.float_of_int (List.length pages)
              +. copy);
            List.iter
              (fun p ->
                match Lru.find s.pages p with
                | Some dirty -> dirty := true
                | None -> writeback (Lru.put s.pages p (ref true)))
              pages;
            Request.Size b_bytes
          end
      | Request.Read ->
          let all_cached = List.for_all (fun p -> Lru.mem s.pages p) pages in
          Machine.compute machine ~thread:ctx.Labmod.thread
            (costs.Costs.cache_lookup_ns *. Stdlib.float_of_int (List.length pages));
          if all_cached then begin
            s.hit_count <- s.hit_count + 1;
            (* Promote + copy out. *)
            List.iter (fun p -> ignore (Lru.find s.pages p)) pages;
            Machine.compute machine ~thread:ctx.Labmod.thread copy;
            Request.Size b_bytes
          end
          else begin
            s.miss_count <- s.miss_count + 1;
            let result = ctx.Labmod.forward req in
            (* Never admit a page whose fill failed: a faulted read left
               no data to cache, and admitting it would serve garbage on
               the next (hit) access. *)
            if Request.is_ok result then begin
              Machine.compute machine ~thread:ctx.Labmod.thread
                (costs.Costs.cache_insert_ns
                 *. Stdlib.float_of_int (List.length pages)
                +. copy);
              List.iter
                (fun p ->
                  if not (Lru.mem s.pages p) then
                    writeback (Lru.put s.pages p (ref false)))
                pages
            end;
            result
          end)
  | _ -> Request.Failed "lru_cache: expects block requests"

let est m req =
  ignore m;
  500.0 +. (0.35 *. Stdlib.float_of_int (Request.bytes_of req))

let factory : Registry.factory =
 fun ~uuid ~attrs ->
  let capacity_mb =
    Option.value ~default:64
      (Option.bind (List.assoc_opt "capacity_mb" attrs) Yamlite.get_int)
  in
  let write_through =
    Option.value ~default:false
      (Option.bind (List.assoc_opt "write_through" attrs) Yamlite.get_bool)
  in
  let page_bytes = 4096 in
  let capacity = Stdlib.max 1 (capacity_mb * 1024 * 1024 / page_bytes) in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Cache
    ~state:
      (State
         {
           pages = Lru.create ~capacity ();
           page_bytes;
           write_through;
           hit_count = 0;
           miss_count = 0;
           writeback_failures = 0;
         })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
