(* LRU page-cache LabMod: a thin policy wrapper around the shared
   sharded cache engine (Cache_core), which provides sharding,
   sequential readahead and coalesced dirty write-back. *)

open Lab_core

type Labmod.state += State of Cache_core.t

let name = "lru_cache"

let core m = match m.Labmod.state with State t -> Some t | _ -> None

let with_core m f = match core m with Some t -> f t | None -> 0

let hits m = with_core m Cache_core.hits

let misses m = with_core m Cache_core.misses

let writeback_failures m = with_core m Cache_core.writeback_failures

let counter_list m =
  match core m with Some t -> Cache_core.counter_list t | None -> []

let shard_counter_list m =
  match core m with Some t -> Cache_core.shard_counter_list t | None -> []

let operate m ctx req =
  match core m with
  | Some t -> Cache_core.operate t ctx req
  | None -> Request.Failed "lru_cache: not initialized"

let est m req =
  ignore m;
  500.0 +. (0.35 *. Stdlib.float_of_int (Request.bytes_of req))

let factory ?metrics ?timeseries () : Registry.factory =
 fun ~uuid ~attrs ->
  let cfg = Cache_core.config_of_attrs ~name attrs in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Cache
    ~state:
      (State
         (Cache_core.create ~policy:Cache_core.lru_policy ?metrics
            ?timeseries ~instance:uuid cfg))
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
