(* DAX Driver LabMod: persistent memory mapped into the address space;
   I/O is CPU load/store plus a persistence fence. The PMEM device
   profile's latency/bandwidth stage models the NT-store path itself,
   so the only extra cost here is the fence. *)

open Lab_sim
open Lab_core
open Lab_device

type Labmod.state += State of { device : Device.t }

let name = "dax"

let fence_cost_ns = 100.0

let operate m ctx req =
  match (m.Labmod.state, req.Request.payload) with
  | State { device }, Request.Block { b_kind; b_lba; b_bytes; _ } ->
      let machine = ctx.Labmod.machine in
      let hctx = ctx.Labmod.thread mod Device.n_hw_queues device in
      let outcome =
        Device.submit_wait_result device ~hctx
          ~kind:(Mod_util.device_kind b_kind) ~lba:b_lba ~bytes:b_bytes
      in
      Machine.compute machine ~thread:ctx.Labmod.thread fence_cost_ns;
      (match outcome with
      | Ok _ -> Request.Size b_bytes
      | Error e -> Mod_util.device_error name e)
  | _ -> Request.Failed "dax: expects block requests"

let est m req =
  ignore m;
  match req.Request.payload with
  | Request.Block { b_bytes; _ } -> 200.0 +. (0.12 *. Stdlib.float_of_int b_bytes)
  | _ -> 200.0

let factory ~device : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  if not (Device.profile device).Profile.byte_addressable then
    invalid_arg "dax: device is not byte addressable";
  Labmod.make ~name ~uuid ~mod_type:Labmod.Driver ~state:(State { device })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
