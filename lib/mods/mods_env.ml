open Lab_core
open Lab_device

type backend = { blk : Lab_kernel.Blk.t; device : Device.t }

let backend_of_device machine device =
  { blk = Lab_kernel.Blk.create machine device ~sched:Lab_kernel.Blk.Noop; device }

let install ?metrics ?timeseries ?qos ?blackbox registry ~machine ~backends
    ~default_backend ~nworkers ~lvm_rebuild_rate_mbps =
  let default =
    match List.assoc_opt default_backend backends with
    | Some b -> b
    | None -> invalid_arg "Mods_env.install: unknown default backend"
  in
  let reg name f = Registry.register_factory registry ~name f in
  let register_drivers suffix b =
    reg ("kernel_driver" ^ suffix) (Kernel_driver.factory ~blk:b.blk);
    if (Device.profile b.device).Profile.supports_polling then
      reg ("spdk" ^ suffix) (Spdk_driver.factory ~device:b.device);
    if (Device.profile b.device).Profile.byte_addressable then
      reg ("dax" ^ suffix) (Dax_driver.factory ~device:b.device)
  in
  List.iter (fun (bname, b) -> register_drivers (":" ^ bname) b) backends;
  register_drivers "" default;
  let total_blocks blk = Profile.blocks (Device.profile (Lab_kernel.Blk.device blk)) in
  reg "labfs" (Labfs.factory ~total_blocks:(total_blocks default.blk) ~nworkers ());
  reg "labkvs" (Labkvs.factory ~total_blocks:(total_blocks default.blk) ~nworkers ());
  reg "lru_cache" (Lru_cache.factory ?metrics ?timeseries ());
  reg "arc_cache" (Arc_cache.factory ?metrics ?timeseries ());
  reg "permissions" Permissions.factory;
  reg "compress" Compress_mod.factory;
  reg "consistency" Consistency_mod.factory;
  let nqueues = Device.n_hw_queues default.device in
  reg "noop_sched" (Noop_sched.factory ~nqueues);
  reg "blkswitch_sched"
    (Blkswitch_sched.factory ?metrics ?qos ?blackbox ~nqueues ());
  reg "lab_lvm"
    (Lab_lvm.factory ?metrics ~machine
       ~legs:(List.map (fun (bname, b) -> (bname, b.blk, b.device)) backends)
       ~rebuild_rate_mbps:lvm_rebuild_rate_mbps ());
  reg "dummy" (Dummy_mod.factory ())
