open Lab_sim
open Lab_core

(* ------------------------------------------------------------------ *)
(* Pure ARC                                                            *)
(* ------------------------------------------------------------------ *)

module Arc = struct
  (* The four ARC lists, each an LRU ordering. T1/T2 hold resident
     pages; B1/B2 are ghosts (metadata only). *)
  type t = {
    cap : int;
    t1 : (int, unit) Lru.t;
    t2 : (int, unit) Lru.t;
    b1 : (int, unit) Lru.t;
    b2 : (int, unit) Lru.t;
    mutable p_val : int;  (* target size of t1, 0..cap *)
    mutable last_evicted : int option;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Arc.create: capacity";
    {
      cap = capacity;
      t1 = Lru.create ();
      t2 = Lru.create ();
      b1 = Lru.create ();
      b2 = Lru.create ();
      p_val = 0;
      last_evicted = None;
    }

  let mem t k = Lru.mem t.t1 k || Lru.mem t.t2 k

  let live_count t = Lru.length t.t1 + Lru.length t.t2

  let ghost_count t = Lru.length t.b1 + Lru.length t.b2

  let p t = t.p_val

  let capacity t = t.cap

  let evicted t = t.last_evicted

  (* REPLACE: evict the LRU of t1 or t2 depending on p, moving the key
     to the matching ghost list. *)
  let replace t ~in_b2 =
    let from_t1 =
      let l1 = Lru.length t.t1 in
      l1 >= 1 && (l1 > t.p_val || (in_b2 && l1 = t.p_val))
    in
    let victim_list, ghost = if from_t1 then (t.t1, t.b1) else (t.t2, t.b2) in
    match Lru.lru victim_list with
    | Some (k, ()) ->
        ignore (Lru.remove victim_list k);
        ignore (Lru.put ghost k ());
        t.last_evicted <- Some k
    | None -> ()

  let trim_ghost ghost limit =
    while Lru.length ghost > limit do
      match Lru.lru ghost with
      | Some (k, ()) -> ignore (Lru.remove ghost k)
      | None -> ()
    done

  let touch t k =
    t.last_evicted <- None;
    if Lru.mem t.t1 k then begin
      (* Hit in recency list: promote to frequency list. *)
      ignore (Lru.remove t.t1 k);
      ignore (Lru.put t.t2 k ());
      true
    end
    else if Lru.mem t.t2 k then begin
      ignore (Lru.find t.t2 k);
      true
    end
    else if Lru.mem t.b1 k then begin
      (* Ghost hit on the recency side: grow p. *)
      let delta = Stdlib.max 1 (Lru.length t.b2 / Stdlib.max 1 (Lru.length t.b1)) in
      t.p_val <- Stdlib.min t.cap (t.p_val + delta);
      replace t ~in_b2:false;
      ignore (Lru.remove t.b1 k);
      ignore (Lru.put t.t2 k ());
      false
    end
    else if Lru.mem t.b2 k then begin
      (* Ghost hit on the frequency side: shrink p. *)
      let delta = Stdlib.max 1 (Lru.length t.b1 / Stdlib.max 1 (Lru.length t.b2)) in
      t.p_val <- Stdlib.max 0 (t.p_val - delta);
      replace t ~in_b2:true;
      ignore (Lru.remove t.b2 k);
      ignore (Lru.put t.t2 k ());
      false
    end
    else begin
      (* Cold miss. Case IV of the paper's algorithm. *)
      let l1 = Lru.length t.t1 + Lru.length t.b1 in
      if l1 = t.cap then begin
        if Lru.length t.t1 < t.cap then begin
          (match Lru.lru t.b1 with
          | Some (g, ()) -> ignore (Lru.remove t.b1 g)
          | None -> ());
          replace t ~in_b2:false
        end
        else begin
          match Lru.lru t.t1 with
          | Some (v, ()) ->
              ignore (Lru.remove t.t1 v);
              t.last_evicted <- Some v
          | None -> ()
        end
      end
      else if live_count t + ghost_count t >= t.cap then begin
        if live_count t + ghost_count t >= 2 * t.cap then
          trim_ghost t.b2 (Stdlib.max 0 (Lru.length t.b2 - 1));
        if live_count t = t.cap then replace t ~in_b2:false
      end;
      ignore (Lru.put t.t1 k ());
      false
    end
end

(* ------------------------------------------------------------------ *)
(* The LabMod                                                          *)
(* ------------------------------------------------------------------ *)

type arc_state = {
  arc : Arc.t;
  dirty : (int, unit) Hashtbl.t;
  page_bytes : int;
  write_through : bool;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable writeback_failures : int;
}

type Labmod.state += State of arc_state

let name = "arc_cache"

let hits m = match m.Labmod.state with State s -> s.hit_count | _ -> 0

let misses m = match m.Labmod.state with State s -> s.miss_count | _ -> 0

let writeback_failures m =
  match m.Labmod.state with State s -> s.writeback_failures | _ -> 0

let p_target m = match m.Labmod.state with State s -> Arc.p s.arc | _ -> 0

let pages_of ~page_bytes lba bytes =
  let first = lba and last = lba + ((bytes - 1) / page_bytes) in
  List.init (last - first + 1) (fun i -> first + i)

let operate m ctx req =
  match (m.Labmod.state, req.Request.payload) with
  | State _, Request.Block { b_sync = true; _ } -> ctx.Labmod.forward req
  | State s, Request.Block { b_kind; b_lba; b_bytes; b_sync = false } -> (
      let machine = ctx.Labmod.machine in
      let costs = machine.Machine.costs in
      let copy = Costs.copy_cost costs b_bytes in
      let pages = pages_of ~page_bytes:s.page_bytes b_lba b_bytes in
      let npages = Stdlib.float_of_int (List.length pages) in
      let writeback_evicted () =
        match Arc.evicted s.arc with
        | Some page when Hashtbl.mem s.dirty page ->
            Hashtbl.remove s.dirty page;
            ctx.Labmod.forward_async
              {
                req with
                Request.payload =
                  Request.Block
                    {
                      Request.b_kind = Request.Write;
                      b_lba = page;
                      b_bytes = s.page_bytes;
                      b_sync = false;
                    };
              }
              (fun r ->
                if not (Request.is_ok r) then
                  s.writeback_failures <- s.writeback_failures + 1)
        | Some page -> Hashtbl.remove s.dirty page
        | None -> ()
      in
      match b_kind with
      | Request.Write ->
          Machine.compute machine ~thread:ctx.Labmod.thread
            ((costs.Costs.cache_insert_ns *. npages) +. copy);
          List.iter
            (fun page ->
              ignore (Arc.touch s.arc page);
              writeback_evicted ();
              Hashtbl.replace s.dirty page ())
            pages;
          if s.write_through then ctx.Labmod.forward req
          else Request.Size b_bytes
      | Request.Read ->
          Machine.compute machine ~thread:ctx.Labmod.thread
            (costs.Costs.cache_lookup_ns *. npages);
          let all_resident = List.for_all (fun p -> Arc.mem s.arc p) pages in
          if all_resident then begin
            s.hit_count <- s.hit_count + 1;
            List.iter
              (fun page ->
                ignore (Arc.touch s.arc page);
                writeback_evicted ())
              pages;
            Machine.compute machine ~thread:ctx.Labmod.thread copy;
            Request.Size b_bytes
          end
          else begin
            s.miss_count <- s.miss_count + 1;
            let result = ctx.Labmod.forward req in
            (* Never admit pages whose fill failed (injected fault): the
               read produced no data worth caching. *)
            if Request.is_ok result then begin
              Machine.compute machine ~thread:ctx.Labmod.thread
                ((costs.Costs.cache_insert_ns *. npages) +. copy);
              List.iter
                (fun page ->
                  ignore (Arc.touch s.arc page);
                  writeback_evicted ())
                pages
            end;
            result
          end)
  | _ -> Request.Failed "arc_cache: expects block requests"

let est m req =
  ignore m;
  600.0 +. (0.35 *. Stdlib.float_of_int (Request.bytes_of req))

let factory : Registry.factory =
 fun ~uuid ~attrs ->
  let capacity_mb =
    Option.value ~default:64
      (Option.bind (List.assoc_opt "capacity_mb" attrs) Yamlite.get_int)
  in
  let write_through =
    Option.value ~default:false
      (Option.bind (List.assoc_opt "write_through" attrs) Yamlite.get_bool)
  in
  let page_bytes = 4096 in
  let capacity = Stdlib.max 1 (capacity_mb * 1024 * 1024 / page_bytes) in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Cache
    ~state:
      (State
         {
           arc = Arc.create ~capacity;
           dirty = Hashtbl.create 1024;
           page_bytes;
           write_through;
           hit_count = 0;
           miss_count = 0;
           writeback_failures = 0;
         })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
