open Lab_sim
open Lab_core

(* ------------------------------------------------------------------ *)
(* Pure ARC                                                            *)
(* ------------------------------------------------------------------ *)

module Arc = struct
  (* The four ARC lists, each an LRU ordering. T1/T2 hold resident
     pages; B1/B2 are ghosts (metadata only). *)
  type t = {
    cap : int;
    t1 : (int, unit) Lru.t;
    t2 : (int, unit) Lru.t;
    b1 : (int, unit) Lru.t;
    b2 : (int, unit) Lru.t;
    mutable p_val : int;  (* target size of t1, 0..cap *)
    mutable last_evicted : int option;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Arc.create: capacity";
    {
      cap = capacity;
      t1 = Lru.create ();
      t2 = Lru.create ();
      b1 = Lru.create ();
      b2 = Lru.create ();
      p_val = 0;
      last_evicted = None;
    }

  let mem t k = Lru.mem t.t1 k || Lru.mem t.t2 k

  let live_count t = Lru.length t.t1 + Lru.length t.t2

  let ghost_count t = Lru.length t.b1 + Lru.length t.b2

  let p t = t.p_val

  let capacity t = t.cap

  let evicted t = t.last_evicted

  (* REPLACE: evict the LRU of t1 or t2 depending on p, moving the key
     to the matching ghost list. *)
  let replace t ~in_b2 =
    let from_t1 =
      let l1 = Lru.length t.t1 in
      l1 >= 1 && (l1 > t.p_val || (in_b2 && l1 = t.p_val))
    in
    let victim_list, ghost = if from_t1 then (t.t1, t.b1) else (t.t2, t.b2) in
    match Lru.lru victim_list with
    | Some (k, ()) ->
        ignore (Lru.remove victim_list k);
        ignore (Lru.put ghost k ());
        t.last_evicted <- Some k
    | None -> ()

  let trim_ghost ghost limit =
    while Lru.length ghost > limit do
      match Lru.lru ghost with
      | Some (k, ()) -> ignore (Lru.remove ghost k)
      | None -> ()
    done

  let touch t k =
    t.last_evicted <- None;
    if Lru.mem t.t1 k then begin
      (* Hit in recency list: promote to frequency list. *)
      ignore (Lru.remove t.t1 k);
      ignore (Lru.put t.t2 k ());
      true
    end
    else if Lru.mem t.t2 k then begin
      ignore (Lru.find t.t2 k);
      true
    end
    else if Lru.mem t.b1 k then begin
      (* Ghost hit on the recency side: grow p. *)
      let delta = Stdlib.max 1 (Lru.length t.b2 / Stdlib.max 1 (Lru.length t.b1)) in
      t.p_val <- Stdlib.min t.cap (t.p_val + delta);
      replace t ~in_b2:false;
      ignore (Lru.remove t.b1 k);
      ignore (Lru.put t.t2 k ());
      false
    end
    else if Lru.mem t.b2 k then begin
      (* Ghost hit on the frequency side: shrink p. *)
      let delta = Stdlib.max 1 (Lru.length t.b1 / Stdlib.max 1 (Lru.length t.b2)) in
      t.p_val <- Stdlib.max 0 (t.p_val - delta);
      replace t ~in_b2:true;
      ignore (Lru.remove t.b2 k);
      ignore (Lru.put t.t2 k ());
      false
    end
    else begin
      (* Cold miss. Case IV of the paper's algorithm. *)
      let l1 = Lru.length t.t1 + Lru.length t.b1 in
      if l1 = t.cap then begin
        if Lru.length t.t1 < t.cap then begin
          (match Lru.lru t.b1 with
          | Some (g, ()) -> ignore (Lru.remove t.b1 g)
          | None -> ());
          replace t ~in_b2:false
        end
        else begin
          match Lru.lru t.t1 with
          | Some (v, ()) ->
              ignore (Lru.remove t.t1 v);
              t.last_evicted <- Some v
          | None -> ()
        end
      end
      else if live_count t + ghost_count t >= t.cap then begin
        if live_count t + ghost_count t >= 2 * t.cap then
          trim_ghost t.b2 (Stdlib.max 0 (Lru.length t.b2 - 1));
        if live_count t = t.cap then replace t ~in_b2:false
      end;
      ignore (Lru.put t.t1 k ());
      false
    end
end

(* ------------------------------------------------------------------ *)
(* The LabMod: the shared sharded engine with an ARC policy per shard   *)
(* ------------------------------------------------------------------ *)

type Labmod.state += State of { core : Cache_core.t; arcs : Arc.t array }

let name = "arc_cache"

let core m = match m.Labmod.state with State s -> Some s.core | _ -> None

let with_core m f = match core m with Some t -> f t | None -> 0

let hits m = with_core m Cache_core.hits

let misses m = with_core m Cache_core.misses

let writeback_failures m = with_core m Cache_core.writeback_failures

let counter_list m =
  match core m with Some t -> Cache_core.counter_list t | None -> []

let shard_counter_list m =
  match core m with Some t -> Cache_core.shard_counter_list t | None -> []

let arc_shards m = match m.Labmod.state with State s -> s.arcs | _ -> [||]

(* The adaptive target across shards: each shard tunes its own p; the
   largest is the most meaningful summary for a recency-heavy stream. *)
let p_target m =
  Array.fold_left (fun acc a -> Stdlib.max acc (Arc.p a)) 0 (arc_shards m)

(* Adapt the pure ARC structure to the engine's policy interface. The
   factory collects each shard's Arc.t so tests can inspect ghost-list
   invariants per shard. *)
let arc_policy acc ~capacity =
  let a = Arc.create ~capacity in
  acc := a :: !acc;
  {
    Cache_core.pol_mem = (fun p -> Arc.mem a p);
    pol_touch = (fun p -> Arc.touch a p);
    pol_evicted =
      (fun () -> match Arc.evicted a with Some v -> [ v ] | None -> []);
    pol_live = (fun () -> Arc.live_count a);
  }

let operate m ctx req =
  match core m with
  | Some t -> Cache_core.operate t ctx req
  | None -> Request.Failed "arc_cache: not initialized"

let est m req =
  ignore m;
  600.0 +. (0.35 *. Stdlib.float_of_int (Request.bytes_of req))

let factory ?metrics ?timeseries () : Registry.factory =
 fun ~uuid ~attrs ->
  let cfg = Cache_core.config_of_attrs ~name attrs in
  let acc = ref [] in
  let core =
    Cache_core.create ~policy:(arc_policy acc) ?metrics ?timeseries
      ~instance:uuid cfg
  in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Cache
    ~state:(State { core; arcs = Array.of_list (List.rev !acc) })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
