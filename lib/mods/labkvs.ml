(* LabKVS: the paper's example key-value store LabMod. Same design as
   LabFS (log-structured metadata, per-worker allocation) but put/get
   semantics: one operation creates the key and stores its value, versus
   the open-modify-close sequence POSIX requires. *)

open Lab_sim
open Lab_core

type entry = { mutable size : int; mutable first_block : int; mutable nblocks : int }

type kv_state = {
  table : (string, entry) Hashtbl.t;
  alloc : Block_alloc.t;
  mutable log_bytes_pending : int;
  mutable log_lba : int;
  block_size : int;
  nworkers : int;
}

type Labmod.state += State of kv_state

let name = "labkvs"

let record_bytes = 48

let log_flush_threshold = 4096

let meta_cpu_ns = 600.0

let state_of m =
  match m.Labmod.state with
  | State s -> s
  | _ -> invalid_arg "labkvs: bad state"

let key_count m = Hashtbl.length (state_of m).table

let mem m key = Hashtbl.mem (state_of m).table key

let charge ctx ns = Machine.compute ctx.Labmod.machine ~thread:ctx.Labmod.thread ns

let log_append s ctx req =
  s.log_bytes_pending <- s.log_bytes_pending + record_bytes;
  if s.log_bytes_pending >= log_flush_threshold then begin
    let bytes = s.log_bytes_pending in
    s.log_bytes_pending <- 0;
    let lba = s.log_lba in
    s.log_lba <- s.log_lba + (bytes / s.block_size) + 1;
    let io =
      {
        req with
        Request.payload =
          Request.Block
            { Request.b_kind = Request.Write; b_lba = lba; b_bytes = bytes; b_sync = true };
      }
    in
    ctx.Labmod.forward_async io (fun _ -> ())
  end

let operate m ctx req =
  let s = state_of m in
  match req.Request.payload with
  | Request.Kv (Request.Put { key; bytes }) ->
      charge ctx meta_cpu_ns;
      let entry =
        match Hashtbl.find_opt s.table key with
        | Some e -> e
        | None ->
            let e = { size = 0; first_block = -1; nblocks = 0 } in
            Hashtbl.replace s.table key e;
            e
      in
      let needed =
        let covered = entry.nblocks * s.block_size in
        if bytes <= covered then 0
        else (bytes - covered + s.block_size - 1) / s.block_size
      in
      if needed > 0 then begin
        let worker = ctx.Labmod.thread mod s.nworkers in
        let blocks = Block_alloc.alloc s.alloc ~worker needed in
        if entry.first_block = -1 then entry.first_block <- List.hd blocks;
        entry.nblocks <- entry.nblocks + needed
      end;
      entry.size <- bytes;
      log_append s ctx req;
      let io =
        {
          req with
          Request.payload =
            Request.Block
              {
                Request.b_kind = Request.Write;
                b_lba = entry.first_block;
                b_bytes = bytes;
                b_sync = false;
              };
        }
      in
      ctx.Labmod.forward io
  | Request.Kv (Request.Get { key }) -> (
      charge ctx meta_cpu_ns;
      match Hashtbl.find_opt s.table key with
      | None -> Request.Failed ("labkvs: no such key " ^ key)
      | Some entry ->
          if entry.first_block = -1 then Request.Size 0
          else
            let io =
              {
                req with
                Request.payload =
                  Request.Block
                    {
                      Request.b_kind = Request.Read;
                      b_lba = entry.first_block;
                      b_bytes = entry.size;
                      b_sync = false;
                    };
              }
            in
            ctx.Labmod.forward io)
  | Request.Kv (Request.Delete { key }) -> (
      charge ctx meta_cpu_ns;
      match Hashtbl.find_opt s.table key with
      | None -> Request.Failed ("labkvs: no such key " ^ key)
      | Some entry ->
          Hashtbl.remove s.table key;
          if entry.first_block >= 0 then
            Block_alloc.free s.alloc ~worker:(ctx.Labmod.thread mod s.nworkers)
              (List.init entry.nblocks (fun i -> entry.first_block + i));
          log_append s ctx req;
          Request.Done)
  | Request.Posix _ | Request.Block _ | Request.Control _ ->
      Request.Failed "labkvs: expects KV requests"

let est m req =
  ignore m;
  match req.Request.payload with
  | Request.Kv (Request.Put { bytes; _ }) -> 1800.0 +. (0.05 *. Stdlib.float_of_int bytes)
  | _ -> 1200.0

let factory ~total_blocks ~nworkers ?(block_size = 4096) () : Registry.factory =
 fun ~uuid ~attrs ->
  let nworkers =
    Option.value ~default:nworkers
      (Option.bind (List.assoc_opt "nworkers" attrs) Yamlite.get_int)
  in
  Labmod.make ~name ~uuid ~mod_type:Labmod.Kv_store
    ~state:
      (State
         {
           table = Hashtbl.create 4096;
           alloc = Block_alloc.create ~total_blocks ~workers:(Stdlib.max 1 nworkers) ();
           log_bytes_pending = 0;
           log_lba = 0;
           block_size;
           nworkers = Stdlib.max 1 nworkers;
         })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
