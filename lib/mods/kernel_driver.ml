(* Kernel Driver LabMod: submits block I/O straight into the kernel's
   multi-queue hardware dispatch queues (submit_io_to_hctx), bypassing
   the upper block layer and the interrupt path — the client/worker
   polls for completion. *)

open Lab_sim
open Lab_core
open Lab_kernel

type Labmod.state += State of { blk : Blk.t }

let name = "kernel_driver"

let operate m ctx req =
  match (m.Labmod.state, req.Request.payload) with
  | State { blk }, Request.Block { b_kind; b_lba; b_bytes; _ } ->
      let machine = ctx.Labmod.machine in
      let nq = Lab_device.Device.n_hw_queues (Blk.device blk) in
      let hctx =
        match req.Request.hint_hctx with
        | Some h -> h mod nq
        | None -> ctx.Labmod.thread mod nq
      in
      let outcome =
        Mod_util.await_value (fun done_ ->
            Blk.submit_io_to_hctx_result blk ~thread:ctx.Labmod.thread ~hctx
              ~kind:(Mod_util.device_kind b_kind) ~lba:b_lba ~bytes:b_bytes
              ~on_complete:done_)
      in
      (* The poller notices the completion entry. *)
      Engine.wait machine.Machine.costs.Costs.poll_spin_ns;
      (match outcome with
      | Ok c ->
          (* The device kept exact service timestamps; attach them to
             the request's trace so the anatomy breakdown can separate
             device time from driver software time. *)
          (match req.Request.trace with
          | Some fl ->
              Lab_obs.Trace.span fl ~name:"device" ~cat:"device"
                ~tid:ctx.Labmod.thread
                ~t0:c.Lab_device.Device.c_submitted
                ~t1:c.Lab_device.Device.c_completed
          | None -> ());
          Request.Size b_bytes
      | Error e -> Mod_util.device_error name e)
  | _ -> Request.Failed "kernel_driver: expects block requests"

let est m req =
  ignore m;
  match req.Request.payload with
  | Request.Block { b_bytes; _ } -> 1500.0 +. (0.01 *. Stdlib.float_of_int b_bytes)
  | _ -> 500.0

let factory ~blk : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  Labmod.make ~name ~uuid ~mod_type:Labmod.Driver ~state:(State { blk })
    {
      Labmod.operate;
      est_processing_time = est;
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
