(* Sharded cache engine shared by the LRU and ARC cache LabMods:
   per-shard indexes and locks, sequential readahead with a ramping
   window, and watermark-triggered coalesced dirty write-back. The
   replacement policy is a per-shard record of closures supplied by the
   wrapping LabMod. *)

open Lab_sim
open Lab_core
module Metrics = Lab_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

type policy = {
  pol_mem : int -> bool;
  pol_touch : int -> bool;
  pol_evicted : unit -> int list;
  pol_live : unit -> int;
}

type policy_factory = capacity:int -> policy

let lru_policy ~capacity =
  let lru = Lru.create ~capacity () in
  let last = ref [] in
  {
    pol_mem = (fun p -> Lru.mem lru p);
    pol_touch =
      (fun p ->
        last := [];
        if Lru.mem lru p then begin
          ignore (Lru.find lru p);
          true
        end
        else begin
          (match Lru.put lru p () with
          | Some (v, ()) -> last := [ v ]
          | None -> ());
          false
        end);
    pol_evicted = (fun () -> !last);
    pol_live = (fun () -> Lru.length lru);
  }

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  cfg_name : string;
  capacity_pages : int;
  page_bytes : int;
  nshards : int;
  write_through : bool;
  readahead : bool;
  ra_min : int;
  ra_max : int;
  wb_high : int;
  wb_low : int;
  wb_max_batch : int;
}

let config_of_attrs ~name attrs =
  let geti key default =
    Option.value ~default (Option.bind (List.assoc_opt key attrs) Yamlite.get_int)
  in
  let getb key default =
    Option.value ~default
      (Option.bind (List.assoc_opt key attrs) Yamlite.get_bool)
  in
  let page_bytes = 4096 in
  let ra_min = Stdlib.max 1 (geti "ra_min_pages" 4) in
  let wb_high = Stdlib.max 1 (geti "wb_high" 32) in
  {
    cfg_name = name;
    capacity_pages =
      Stdlib.max 1 (geti "capacity_mb" 64 * 1024 * 1024 / page_bytes);
    page_bytes;
    nshards = Stdlib.max 1 (geti "shards" 1);
    write_through = getb "write_through" false;
    readahead = getb "readahead" false;
    ra_min;
    ra_max = Stdlib.max ra_min (geti "ra_max_pages" 64);
    wb_high;
    wb_low = Stdlib.min (wb_high - 1) (Stdlib.max 0 (geti "wb_low" 8));
    wb_max_batch = Stdlib.max 1 (geti "wb_max_batch" 64);
  }

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type shard = {
  sh_id : int;
  pol : policy;
  lock : Semaphore.t;
  dirty : (int, unit) Hashtbl.t;  (* resident dirty pages *)
  dirty_log : int Queue.t;  (* evicted dirty pages awaiting flush *)
  prefetched : (int, unit) Hashtbl.t;  (* admitted by readahead, unaccessed *)
  mutable sh_hits : int;
  mutable sh_misses : int;
  mutable sh_evictions : int;
}

type stream = { mutable next_page : int; mutable window : int }

type t = {
  cfg : config;
  shards : shard array;
  streams : (int, stream) Hashtbl.t;
  ra_inflight : (int, unit Waitq.t) Hashtbl.t;  (* page -> fill arrival *)
  hit_count : Metrics.counter;
  miss_count : Metrics.counter;
  wb_failures : Metrics.counter;
  ra_issued : Metrics.counter;
  ra_hits : Metrics.counter;
  ra_wasted : Metrics.counter;
  dirty_evicted : Metrics.counter;
  flush_op_count : Metrics.counter;
  flush_page_count : Metrics.counter;
}

(* [?metrics] attaches the engine's counters to a registry under
   "mod.<instance>." ([?instance] defaults to the config name, which is
   the wrapping LabMod's module name — pass the uuid for per-instance
   metrics). Detached counters otherwise; behaviour is identical. *)
let create ~policy ?metrics ?timeseries ?instance cfg =
  let inst = Option.value instance ~default:cfg.cfg_name in
  (* Probe instantiations (stack validation, `labstor_cli mods`) use the
     reserved "__probe__" uuid and must not pollute the registry. *)
  let metrics = if inst = "__probe__" then None else metrics in
  let timeseries = if inst = "__probe__" then None else timeseries in
  let counter k =
    Metrics.counter ?reg:metrics (Printf.sprintf "mod.%s.%s" inst k)
  in
  let per_shard =
    Stdlib.max 1 ((cfg.capacity_pages + cfg.nshards - 1) / cfg.nshards)
  in
  let t =
  {
    cfg;
    shards =
      Array.init cfg.nshards (fun i ->
          {
            sh_id = i;
            pol = policy ~capacity:per_shard;
            lock = Semaphore.create 1;
            dirty = Hashtbl.create 256;
            dirty_log = Queue.create ();
            prefetched = Hashtbl.create 64;
            sh_hits = 0;
            sh_misses = 0;
            sh_evictions = 0;
          });
    streams = Hashtbl.create 16;
    ra_inflight = Hashtbl.create 64;
    hit_count = counter "hits";
    miss_count = counter "misses";
    wb_failures = counter "writeback_failures";
    ra_issued = counter "readahead_issued";
    ra_hits = counter "readahead_hits";
    ra_wasted = counter "readahead_wasted";
    dirty_evicted = counter "dirty_evictions";
    flush_op_count = counter "flush_ops";
    flush_page_count = counter "flush_pages";
  }
  in
  (* Dirty-log depth is the write-back pressure signal; exposing it as a
     sampled series shows the high/low watermark sawtooth over time. *)
  (match timeseries with
  | Some ts ->
      Lab_obs.Timeseries.add_series ts
        (Printf.sprintf "mod.%s.dirty_backlog" inst)
        (fun _now ->
          Stdlib.float_of_int
            (Array.fold_left
               (fun acc sh -> acc + Queue.length sh.dirty_log)
               0 t.shards))
  | None -> ());
  t

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)
(* ------------------------------------------------------------------ *)

let pages_of ~page_bytes lba bytes =
  let first = lba and last = lba + ((bytes - 1) / page_bytes) in
  List.init (last - first + 1) (fun i -> first + i)

(* Pages map to shards in 64-page chunks, not singly: adjacent pages
   must share a shard so a readahead run or a write-back batch is
   shard-local and stays mergeable into one downstream op. *)
let chunk_shift = 6

let shard_of t page = t.shards.((page lsr chunk_shift) mod t.cfg.nshards)

(* Group a request's pages by shard, groups in ascending shard order so
   concurrent requests always visit shards in the same order. *)
let group_by_shard t pages =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun p ->
      let sh = shard_of t p in
      match Hashtbl.find_opt tbl sh.sh_id with
      | Some (_, acc) -> acc := p :: !acc
      | None -> Hashtbl.replace tbl sh.sh_id (sh, ref [ p ]))
    pages;
  List.sort
    (fun ((a : shard), _) (b, _) -> compare a.sh_id b.sh_id)
    (Hashtbl.fold (fun _ (sh, acc) gs -> (sh, List.rev !acc) :: gs) tbl [])

(* Enter a shard: serialize on its lock and pay the per-shard service
   cost. With one shard every worker funnels through here; with many
   the same total work spreads across independent locks. *)
let with_shard ctx sh f =
  Semaphore.acquire sh.lock;
  let machine = ctx.Labmod.machine in
  Machine.compute machine ~thread:ctx.Labmod.thread
    machine.Machine.costs.Costs.cache_shard_ns;
  Fun.protect ~finally:(fun () -> Semaphore.release sh.lock) f

(* ------------------------------------------------------------------ *)
(* Dirty bookkeeping + coalesced write-back                            *)
(* ------------------------------------------------------------------ *)

(* Route the most recent touch's evictions (call under the shard lock,
   once per touch — policies only remember the last eviction). *)
let note_evictions t sh =
  List.iter
    (fun v ->
      if Hashtbl.mem sh.prefetched v then begin
        Hashtbl.remove sh.prefetched v;
        Metrics.incr t.ra_wasted
      end;
      if Hashtbl.mem sh.dirty v then begin
        Hashtbl.remove sh.dirty v;
        Queue.add v sh.dirty_log;
        sh.sh_evictions <- sh.sh_evictions + 1;
        Metrics.incr t.dirty_evicted
      end)
    (sh.pol.pol_evicted ())

let consume_prefetched t sh ~demand_read p =
  if Hashtbl.mem sh.prefetched p then begin
    Hashtbl.remove sh.prefetched p;
    if demand_read then Metrics.incr t.ra_hits
  end

(* Merge sorted distinct pages into (start, length) runs of adjacent
   pages, each at most [max_batch] long. *)
let runs_of_pages pages ~max_batch =
  match pages with
  | [] -> []
  | p0 :: rest ->
      let runs, last =
        List.fold_left
          (fun (runs, (s, len)) p ->
            if p = s + len && len < max_batch then (runs, (s, len + 1))
            else ((s, len) :: runs, (p, 1)))
          ([], (p0, 1))
          rest
      in
      List.rev (last :: runs)

(* Cache-internal I/O (readahead fills, write-back) is not part of any
   client request's critical path: it must not inherit the template's
   trace flow, or its module/device spans would be mis-attributed. *)
let derived_block template op =
  let io = { template with Request.payload = Request.Block op } in
  io.Request.hint_stream <- None;
  io.Request.prefetch <- false;
  io.Request.trace <- None;
  io

(* Point event on the traced request's timeline (hit/miss markers). *)
let trace_instant ctx (req : Request.t) name =
  match req.Request.trace with
  | Some fl ->
      Lab_obs.Trace.instant fl ~name ~tid:ctx.Labmod.thread
        ~now:(Machine.now ctx.Labmod.machine)
  | None -> ()

let write_back_run t ctx ~template (start_page, len) =
  Metrics.incr t.flush_op_count;
  Metrics.incr ~by:len t.flush_page_count;
  let io =
    derived_block template
      {
        Request.b_kind = Request.Write;
        b_lba = start_page;
        b_bytes = len * t.cfg.page_bytes;
        b_sync = false;
      }
  in
  ctx.Labmod.forward_async io (fun r ->
      if not (Request.is_ok r) then Metrics.incr ~by:len t.wb_failures)

(* Flush the shard's dirty log down to [target] entries: pop, sort,
   dedup (a page can be evicted twice between flushes), merge into
   adjacent runs, one downstream write per run. *)
let flush_log t ctx sh ~template ~target =
  if Queue.length sh.dirty_log > target then begin
    let n = Queue.length sh.dirty_log - target in
    let popped = List.init n (fun _ -> Queue.pop sh.dirty_log) in
    List.iter
      (write_back_run t ctx ~template)
      (runs_of_pages
         (List.sort_uniq compare popped)
         ~max_batch:t.cfg.wb_max_batch)
  end

let maybe_flush t ctx sh ~template =
  if Queue.length sh.dirty_log >= t.cfg.wb_high then
    flush_log t ctx sh ~template ~target:t.cfg.wb_low

let drain t ctx ~template =
  Array.iter (fun sh -> flush_log t ctx sh ~template ~target:0) t.shards

(* ------------------------------------------------------------------ *)
(* Readahead                                                           *)
(* ------------------------------------------------------------------ *)

let stream_of t req =
  let key =
    match req.Request.hint_stream with Some s -> s | None -> req.Request.pid
  in
  match Hashtbl.find_opt t.streams key with
  | Some s -> s
  | None ->
      let s = { next_page = Stdlib.min_int; window = 0 } in
      Hashtbl.replace t.streams key s;
      s

(* Issue prefetch reads for [start .. start+count-1], skipping resident
   and already-in-flight pages, merged into contiguous runs. Fills are
   admitted clean in the completion callback — and dropped entirely
   when the downstream read failed (a faulted fill has no data). *)
let issue_readahead t ctx ~template ~start ~count =
  let candidates =
    List.filter
      (fun p ->
        (not (Hashtbl.mem t.ra_inflight p))
        && not ((shard_of t p).pol.pol_mem p))
      (List.init count (fun i -> start + i))
  in
  List.iter
    (fun (s, len) ->
      let run_pages = List.init len (fun i -> s + i) in
      List.iter
        (fun p -> Hashtbl.replace t.ra_inflight p (Waitq.create ()))
        run_pages;
      Metrics.incr ~by:len t.ra_issued;
      let io =
        derived_block template
          {
            Request.b_kind = Request.Read;
            b_lba = s;
            b_bytes = len * t.cfg.page_bytes;
            b_sync = false;
          }
      in
      io.Request.prefetch <- true;
      ctx.Labmod.forward_async io (fun r ->
          let ok = Request.is_ok r in
          List.iter
            (fun p ->
              if ok then begin
                let sh = shard_of t p in
                with_shard ctx sh (fun () ->
                    let machine = ctx.Labmod.machine in
                    Machine.compute machine ~thread:ctx.Labmod.thread
                      machine.Machine.costs.Costs.cache_insert_ns;
                    if not (sh.pol.pol_touch p) then
                      Hashtbl.replace sh.prefetched p ();
                    note_evictions t sh);
                maybe_flush t ctx sh ~template
              end
              else Metrics.incr t.ra_wasted;
              (* Wake demand readers only after the page is admitted
                 (or definitively dropped), so their residency re-check
                 sees the outcome. *)
              match Hashtbl.find_opt t.ra_inflight p with
              | Some wq ->
                  Hashtbl.remove t.ra_inflight p;
                  ignore (Waitq.wake_all wq ())
              | None -> ())
            run_pages))
    (runs_of_pages candidates ~max_batch:t.cfg.ra_max)

(* Sequential-stream detection on demand reads: a read continuing
   exactly at the stream's last end ramps the window (ra_min, doubling,
   capped at ra_max) and prefetches it; anything else resets the
   window. Prefetch-tagged reads never re-trigger readahead, so tiered
   caches do not cascade. *)
let track_and_prefetch t ctx req ~first ~last =
  if t.cfg.readahead && not req.Request.prefetch then begin
    let s = stream_of t req in
    if first = s.next_page then begin
      s.window <-
        (if s.window = 0 then t.cfg.ra_min
         else Stdlib.min t.cfg.ra_max (s.window * 2));
      s.next_page <- last + 1;
      issue_readahead t ctx ~template:req ~start:(last + 1) ~count:s.window
    end
    else begin
      s.window <- 0;
      s.next_page <- last + 1
    end
  end

(* Park until every in-flight fill among [pages] has arrived. *)
let wait_for_fills t pages =
  List.iter
    (fun p ->
      match Hashtbl.find_opt t.ra_inflight p with
      | Some wq ->
          let slot = ref None in
          Waitq.park wq slot
      | None -> ())
    pages

(* ------------------------------------------------------------------ *)
(* The data path                                                       *)
(* ------------------------------------------------------------------ *)

let operate t ctx req =
  match req.Request.payload with
  | Request.Block { b_sync = true; _ } ->
      (* Force-unit-access traffic (journal/flush writes) bypasses the
         cache and goes straight to the device. *)
      ctx.Labmod.forward req
  | Request.Block { b_kind; b_lba; b_bytes; b_sync = false } -> (
      let machine = ctx.Labmod.machine in
      let costs = machine.Machine.costs in
      let copy = Costs.copy_cost costs b_bytes in
      let pages = pages_of ~page_bytes:t.cfg.page_bytes b_lba b_bytes in
      let npages = Stdlib.float_of_int (List.length pages) in
      let first = List.hd pages in
      let last = first + List.length pages - 1 in
      let groups = group_by_shard t pages in
      let home = shard_of t first in  (* shard charged with the hit/miss *)
      (* Insert/refresh [ps] in [sh]; dirty_of decides the dirty bit. *)
      let admit_group ~dirty ~demand_read (sh, ps) =
        with_shard ctx sh (fun () ->
            Machine.compute machine ~thread:ctx.Labmod.thread
              (costs.Costs.cache_insert_ns
              *. Stdlib.float_of_int (List.length ps));
            List.iter
              (fun p ->
                ignore (sh.pol.pol_touch p);
                consume_prefetched t sh ~demand_read p;
                if dirty then Hashtbl.replace sh.dirty p ()
                else Hashtbl.remove sh.dirty p;
                note_evictions t sh)
              ps);
        maybe_flush t ctx sh ~template:req
      in
      match b_kind with
      | Request.Write ->
          Machine.compute machine ~thread:ctx.Labmod.thread copy;
          if t.cfg.write_through then begin
            (* Copy in + insert clean, then persist synchronously. *)
            List.iter (admit_group ~dirty:false ~demand_read:false) groups;
            let result = ctx.Labmod.forward req in
            (* Device fault: the cache copy is now the only good copy;
               mark it dirty so eviction retries the persist. *)
            if not (Request.is_ok result) then
              List.iter
                (fun (sh, ps) ->
                  with_shard ctx sh (fun () ->
                      List.iter
                        (fun p ->
                          if sh.pol.pol_mem p then
                            Hashtbl.replace sh.dirty p ())
                        ps))
                groups;
            result
          end
          else begin
            (* Write-back: absorbed here; the data reaches the device
               when its pages are evicted (or the log is drained). *)
            List.iter (admit_group ~dirty:true ~demand_read:false) groups;
            Request.Size b_bytes
          end
      | Request.Read ->
          Machine.compute machine ~thread:ctx.Labmod.thread
            (costs.Costs.cache_lookup_ns *. npages);
          let resident_under_locks () =
            List.for_all
              (fun ((sh : shard), ps) ->
                with_shard ctx sh (fun () ->
                    List.for_all (fun p -> sh.pol.pol_mem p) ps))
              groups
          in
          let serve_hit () =
            List.iter
              (fun ((sh : shard), ps) ->
                with_shard ctx sh (fun () ->
                    List.iter
                      (fun p ->
                        ignore (sh.pol.pol_touch p);
                        consume_prefetched t sh ~demand_read:true p;
                        note_evictions t sh)
                      ps);
                maybe_flush t ctx sh ~template:req)
              groups;
            Machine.compute machine ~thread:ctx.Labmod.thread copy;
            Request.Size b_bytes
          in
          let demand_miss () =
            Metrics.incr t.miss_count;
            home.sh_misses <- home.sh_misses + 1;
            trace_instant ctx req "cache_miss";
            let result = ctx.Labmod.forward req in
            (* Never admit a page whose fill failed: a faulted read left
               no data to cache, and admitting it would serve garbage on
               the next (hit) access. *)
            if Request.is_ok result then begin
              Machine.compute machine ~thread:ctx.Labmod.thread copy;
              List.iter (admit_group ~dirty:false ~demand_read:false) groups
            end;
            result
          in
          let result =
            if resident_under_locks () then begin
              Metrics.incr t.hit_count;
              home.sh_hits <- home.sh_hits + 1;
              trace_instant ctx req "cache_hit";
              serve_hit ()
            end
            else begin
              (* When every missing page already has a prefetch fill in
                 flight, ride that fill instead of issuing a duplicate
                 downstream read. *)
              let missing =
                List.filter (fun p -> not ((shard_of t p).pol.pol_mem p)) pages
              in
              if
                (not req.Request.prefetch)
                && missing <> []
                && List.for_all (fun p -> Hashtbl.mem t.ra_inflight p) missing
              then begin
                wait_for_fills t missing;
                if
                  List.for_all (fun p -> (shard_of t p).pol.pol_mem p) pages
                then begin
                  (* The fill arrived: served from cache after a short
                     wait, like Linux waiting on a locked page. *)
                  Metrics.incr t.hit_count;
                  home.sh_hits <- home.sh_hits + 1;
                  trace_instant ctx req "cache_hit";
                  serve_hit ()
                end
                else demand_miss () (* fill faulted or already evicted *)
              end
              else demand_miss ()
            end
          in
          if not req.Request.prefetch then
            track_and_prefetch t ctx req ~first ~last;
          result)
  | Request.Control _ ->
      (* fsync-like hook: flush every shard's write-back log, then let
         the control message continue downstream. *)
      drain t ctx ~template:req;
      ctx.Labmod.forward req
  | Request.Posix _ | Request.Kv _ ->
      Request.Failed (t.cfg.cfg_name ^ ": expects block requests")

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let hits t = Metrics.value t.hit_count

let misses t = Metrics.value t.miss_count

let writeback_failures t = Metrics.value t.wb_failures

let readahead_issued t = Metrics.value t.ra_issued

let readahead_hits t = Metrics.value t.ra_hits

let readahead_wasted t = Metrics.value t.ra_wasted

let dirty_evictions t = Metrics.value t.dirty_evicted

let flush_ops t = Metrics.value t.flush_op_count

let flush_pages t = Metrics.value t.flush_page_count

let readahead_accuracy t =
  if readahead_issued t = 0 then 0.0
  else
    Stdlib.float_of_int (readahead_hits t)
    /. Stdlib.float_of_int (readahead_issued t)

let avg_flush_batch t =
  if flush_ops t = 0 then 0.0
  else Stdlib.float_of_int (flush_pages t) /. Stdlib.float_of_int (flush_ops t)

let nshards t = t.cfg.nshards

let live_pages t =
  Array.fold_left (fun acc sh -> acc + sh.pol.pol_live ()) 0 t.shards

let dirty_resident t =
  List.sort compare
    (Array.fold_left
       (fun acc sh -> Hashtbl.fold (fun p () l -> p :: l) sh.dirty acc)
       [] t.shards)

let dirty_backlog t =
  Array.fold_left (fun acc sh -> acc + Queue.length sh.dirty_log) 0 t.shards

let counter_list t =
  [
    ("hits", hits t);
    ("misses", misses t);
    ("writeback_failures", writeback_failures t);
    ("readahead_issued", readahead_issued t);
    ("readahead_hits", readahead_hits t);
    ("readahead_wasted", readahead_wasted t);
    ("dirty_evictions", dirty_evictions t);
    ("flush_ops", flush_ops t);
    ("flush_pages", flush_pages t);
  ]

let shard_counter_list t =
  List.concat_map
    (fun sh ->
      [
        (Printf.sprintf "shard%d_hits" sh.sh_id, sh.sh_hits);
        (Printf.sprintf "shard%d_misses" sh.sh_id, sh.sh_misses);
        (Printf.sprintf "shard%d_evictions" sh.sh_id, sh.sh_evictions);
      ])
    (Array.to_list t.shards)
