(* No-Op I/O scheduler LabMod: keys the request to the hardware queue of
   the core it originated on, nothing more. *)

open Lab_sim
open Lab_core

type Labmod.state += State of { nqueues : int }

let name = "noop_sched"

let keying_cost_ns = 150.0

let operate m ctx req =
  match m.Labmod.state with
  | State { nqueues } ->
      Machine.compute ctx.Labmod.machine ~thread:ctx.Labmod.thread keying_cost_ns;
      (* An existing hint wins: the client's degraded-mode requeue (an
         offline queue was avoided on purpose) must not be undone. *)
      (match req.Request.hint_hctx with
      | None -> req.Request.hint_hctx <- Some (req.Request.thread mod nqueues)
      | Some _ -> ());
      ctx.Labmod.forward req
  | _ -> Request.Failed "noop_sched: bad state"

let factory ~nqueues : Registry.factory =
 fun ~uuid ~attrs ->
  ignore attrs;
  Labmod.make ~name ~uuid ~mod_type:Labmod.Scheduler ~state:(State { nqueues })
    {
      Labmod.operate;
      est_processing_time = (fun _ _ -> keying_cost_ns);
      state_update = Mod_util.identity_state;
      state_repair = Mod_util.no_repair;
    }
