(* Open-loop traffic harness.

   Closed-loop workloads (Fio, Ycsb, ...) send the next request only
   after the previous one completes, so when the system slows down the
   workload politely slows down with it and the measured latency hides
   the overload — coordinated omission. This harness decouples offered
   load from completion rate: a deterministic arrival process fires on
   Engine timers at its own schedule regardless of how the system is
   doing, a finite injector pool sends the requests, and a Latrec
   recorder measures every completion from the *scheduled* arrival.
   Below saturation injectors are always idle when an arrival fires and
   the corrected and naive distributions agree; past the knee the
   backlog grows, injection lags the schedule, and the corrected tail
   diverges by exactly the queueing delay a closed-loop bench would
   never see.

   Arrival times are generated as exact floats, then rounded to whole
   nanoseconds so the integer Engine.timer gaps reproduce the schedule
   exactly: when a timer fires, virtual now IS the scheduled time. *)

open Lab_sim

type process =
  | Poisson of { rate_ops_s : float }
  | On_off of { rate_ops_s : float; on_ns : float; off_ns : float }
  | Diurnal of { mean_ops_s : float; amplitude : float; period_ns : float }
  | Replay of { gaps_ns : int array }

let nominal_rate_ops_s = function
  | Poisson { rate_ops_s } -> rate_ops_s
  | On_off { rate_ops_s; on_ns; off_ns } ->
      rate_ops_s *. (on_ns /. (on_ns +. off_ns))
  | Diurnal { mean_ops_s; _ } -> mean_ops_s
  | Replay { gaps_ns } ->
      let total = Array.fold_left ( + ) 0 gaps_ns in
      if total <= 0 then 0.0
      else 1e9 *. Stdlib.float_of_int (Array.length gaps_ns)
           /. Stdlib.float_of_int total

let validate = function
  | Poisson { rate_ops_s } ->
      if rate_ops_s <= 0.0 then invalid_arg "Load: Poisson rate must be > 0"
  | On_off { rate_ops_s; on_ns; off_ns } ->
      if rate_ops_s <= 0.0 then invalid_arg "Load: on-off rate must be > 0";
      if on_ns <= 0.0 then invalid_arg "Load: on_ns must be > 0";
      if off_ns < 0.0 then invalid_arg "Load: off_ns must be >= 0"
  | Diurnal { mean_ops_s; amplitude; period_ns } ->
      if mean_ops_s <= 0.0 then invalid_arg "Load: diurnal mean must be > 0";
      if amplitude < 0.0 || amplitude > 1.0 then
        invalid_arg "Load: diurnal amplitude must be in [0,1]";
      if period_ns <= 0.0 then invalid_arg "Load: diurnal period must be > 0"
  | Replay { gaps_ns } ->
      if Array.length gaps_ns = 0 then invalid_arg "Load: empty replay trace";
      Array.iter
        (fun g -> if g < 0 then invalid_arg "Load: negative replay gap")
        gaps_ns

type gen = {
  proc : process;
  rng : Rng.t;
  (* Poisson/Diurnal/Replay: wall-clock ns of the last arrival.
     On_off: cumulative ON-time ns — the wall mapping re-inserts the
     off intervals, which is what makes duty-cycle accounting exact. *)
  mutable clock : float;
  mutable r_idx : int;  (* Replay position; the trace loops *)
}

let generator ?(seed = 1) proc =
  validate proc;
  { proc; rng = Rng.create (seed lxor 0x10AD); clock = 0.0; r_idx = 0 }

let pi = 4.0 *. atan 1.0

(* Next arrival as an exact relative timestamp (ns since the run
   started). Monotone non-decreasing by construction. *)
let next g =
  match g.proc with
  | Poisson { rate_ops_s } ->
      g.clock <- g.clock +. Rng.exponential g.rng (1e9 /. rate_ops_s);
      g.clock
  | On_off { rate_ops_s; on_ns; off_ns } ->
      (* Arrivals are Poisson at [rate_ops_s] during ON windows and
         absent during OFF windows: draw on the on-time clock, then map
         on-time to wall time by re-inserting one OFF interval per
         completed ON window. *)
      g.clock <- g.clock +. Rng.exponential g.rng (1e9 /. rate_ops_s);
      let k = Float.floor (g.clock /. on_ns) in
      (k *. (on_ns +. off_ns)) +. (g.clock -. (k *. on_ns))
  | Diurnal { mean_ops_s; amplitude; period_ns } ->
      (* Lewis-Shedler thinning: candidates at the envelope's peak rate,
         accepted with probability rate(t)/peak — an exact sampler for
         the inhomogeneous Poisson process, still fully seeded. *)
      let peak = mean_ops_s *. (1.0 +. amplitude) in
      let rec draw () =
        g.clock <- g.clock +. Rng.exponential g.rng (1e9 /. peak);
        let rate =
          mean_ops_s
          *. (1.0 +. (amplitude *. sin (2.0 *. pi *. g.clock /. period_ns)))
        in
        if Rng.float g.rng 1.0 *. peak <= rate then g.clock else draw ()
      in
      draw ()
  | Replay { gaps_ns } ->
      g.clock <- g.clock +. Stdlib.float_of_int gaps_ns.(g.r_idx);
      g.r_idx <- (g.r_idx + 1) mod Array.length gaps_ns;
      g.clock

let arrivals ?seed proc n =
  let g = generator ?seed proc in
  let a = Array.make (Stdlib.max 0 n) 0.0 in
  for i = 0 to Array.length a - 1 do
    a.(i) <- next g
  done;
  a

(* --- the harness -------------------------------------------------- *)

type spec = {
  proc : process;
  seed : int;
  total : int;  (* arrivals to generate *)
  injectors : int;  (* concurrent open-loop senders *)
  queue_cap : int;  (* pending-arrival backlog cap; overflow is shed *)
  late_threshold_ns : float;
}

let default_spec =
  {
    proc = Poisson { rate_ops_s = 50_000.0 };
    seed = 1;
    total = 1000;
    injectors = 16;
    queue_cap = 4096;
    late_threshold_ns = 1000.0;
  }

type result = {
  generated : int;
  completed : int;
  succeeded : int;
  dropped : int;
  late : int;
  elapsed_ns : float;
  offered_ops_s : float;  (* what the schedule demanded *)
  achieved_ops_s : float;  (* what the system delivered *)
  recorder : Lab_obs.Latrec.t;
}

let run (machine : Machine.t) spec ~submit =
  if spec.total <= 0 then invalid_arg "Load.run: total must be > 0";
  if spec.injectors <= 0 then invalid_arg "Load.run: injectors must be > 0";
  if spec.queue_cap <= 0 then invalid_arg "Load.run: queue_cap must be > 0";
  validate spec.proc;
  let eng = machine.Machine.engine in
  let gen = generator ~seed:spec.seed spec.proc in
  let recorder =
    Lab_obs.Latrec.create ~late_threshold_ns:spec.late_threshold_ns ()
  in
  let backlog : float Queue.t = Queue.create () in
  let idle : Engine.park_cell Stack.t = Stack.create () in
  let t0 = Machine.now machine in
  let generated = ref 0 in
  let completed = ref 0 in
  let succeeded = ref 0 in
  let last_arrival = ref t0 in
  let stopping = ref false in
  Engine.suspend (fun resume ->
      let finish_check () =
        if
          (not !stopping)
          && !generated >= spec.total
          && !completed + Lab_obs.Latrec.dropped recorder >= spec.total
        then begin
          stopping := true;
          (* Wake the parked injectors so their processes exit. *)
          Stack.iter Engine.unpark idle;
          resume ()
        end
      in
      let injector j cell () =
        let rec loop () =
          if not !stopping then
            match Queue.take_opt backlog with
            | Some scheduled ->
                let sent = Machine.now machine in
                let ok = submit ~injector:j ~scheduled in
                Lab_obs.Latrec.record recorder ~scheduled ~sent
                  ~completed:(Machine.now machine) ~ok;
                incr completed;
                if ok then incr succeeded;
                finish_check ();
                loop ()
            | None ->
                Stack.push cell idle;
                Engine.park cell;
                loop ()
        in
        loop ()
      in
      for j = 0 to spec.injectors - 1 do
        let cell = Engine.make_park_cell () in
        Engine.spawn eng (injector j cell)
      done;
      (* The dispatcher: one preallocated timer callback re-arming
         itself with integer gaps — the closure-free hot path, and
         crucially a path that never waits on the injectors, so the
         offered schedule is independent of the completion rate. *)
      let rel = ref 0 in
      let next_rel () =
        let exact = next gen in
        let n = Stdlib.int_of_float (Float.round exact) in
        if n <= !rel then !rel else n
      in
      let rec fire _ =
        incr generated;
        let now = Machine.now machine in
        last_arrival := now;
        if Queue.length backlog >= spec.queue_cap then
          (* Shed rather than queue without bound: the drop count is
             the signal that the offered rate is unservable. *)
          Lab_obs.Latrec.drop recorder
        else begin
          Queue.push now backlog;
          match Stack.pop_opt idle with
          | Some cell -> Engine.unpark cell
          | None -> ()
        end;
        if !generated < spec.total then begin
          let r = next_rel () in
          let gap = r - !rel in
          rel := r;
          Engine.timer eng ~ns:gap fire 0
        end
        else finish_check ()
      in
      let r0 = next_rel () in
      rel := r0;
      Engine.timer eng ~ns:r0 fire 0);
  let elapsed = Machine.now machine -. t0 in
  let span = !last_arrival -. t0 in
  {
    generated = !generated;
    completed = !completed;
    succeeded = !succeeded;
    dropped = Lab_obs.Latrec.dropped recorder;
    late = Lab_obs.Latrec.late recorder;
    elapsed_ns = elapsed;
    offered_ops_s =
      (if span > 0.0 then Stdlib.float_of_int !generated /. span *. 1e9
       else 0.0);
    achieved_ops_s =
      (if elapsed > 0.0 then Stdlib.float_of_int !completed /. elapsed *. 1e9
       else 0.0);
    recorder;
  }
