(** Open-loop traffic harness.

    Closed-loop workloads send the next request only after the previous
    one completes, so an overloaded system receives less load and the
    measured latency hides the overload — coordinated omission. This
    harness generates arrivals from a deterministic seeded process
    driven by Engine timers, so the offered schedule is independent of
    how fast the system completes requests; a finite injector pool
    sends them, and a {!Lab_obs.Latrec} recorder measures every
    completion from its {e scheduled} arrival. Below saturation the
    CO-corrected and naive distributions agree; past the knee they
    diverge by the hidden queueing delay. *)

(** Arrival processes. All are deterministic given a seed. *)
type process =
  | Poisson of { rate_ops_s : float }
      (** memoryless arrivals at a constant mean rate *)
  | On_off of { rate_ops_s : float; on_ns : float; off_ns : float }
      (** bursts: Poisson at [rate_ops_s] during ON windows of [on_ns],
          silent for [off_ns] between them *)
  | Diurnal of { mean_ops_s : float; amplitude : float; period_ns : float }
      (** inhomogeneous Poisson with a sinusoidal envelope
          [mean·(1 + amplitude·sin(2πt/period))], sampled exactly by
          Lewis-Shedler thinning; [amplitude] in [0,1] *)
  | Replay of { gaps_ns : int array }
      (** compact trace replay: successive inter-arrival gaps in whole
          ns; the trace loops when exhausted *)

val nominal_rate_ops_s : process -> float
(** The configured long-run mean arrival rate (ops/s): the Poisson
    rate, the on-off rate scaled by duty cycle, the diurnal mean (the
    sinusoid integrates to zero over a period), or the replay trace's
    per-pass rate. *)

type gen
(** A generator: the arrival process plus its seeded stream state. *)

val generator : ?seed:int -> process -> gen
(** @raise Invalid_argument on a malformed process (non-positive rate,
    amplitude outside [0,1], empty or negative-gap trace). *)

val next : gen -> float
(** Next arrival as an exact relative timestamp (ns since the run
    start). Monotone non-decreasing. *)

val arrivals : ?seed:int -> process -> int -> float array
(** [arrivals proc n]: the first [n] arrival times of a fresh
    generator — the pure stream, no engine involved (for tests and
    offline analysis). *)

(** {2 The harness} *)

type spec = {
  proc : process;
  seed : int;
  total : int;  (** arrivals to generate *)
  injectors : int;  (** concurrent open-loop senders *)
  queue_cap : int;
      (** pending-arrival backlog cap: arrivals past it are shed and
          counted as drops, bounding a saturated run's memory *)
  late_threshold_ns : float;
      (** injection lag above this marks the request late
          (see {!Lab_obs.Latrec.create}) *)
}

val default_spec : spec
(** 50 kops/s Poisson, seed 1, 1000 arrivals, 16 injectors, 4096
    backlog cap, 1µs late threshold. *)

type result = {
  generated : int;
  completed : int;
  succeeded : int;
  dropped : int;
  late : int;
  elapsed_ns : float;
  offered_ops_s : float;  (** what the schedule demanded *)
  achieved_ops_s : float;  (** what the system delivered *)
  recorder : Lab_obs.Latrec.t;
      (** CO-corrected vs naive distributions + injection lag *)
}

val run :
  Lab_sim.Machine.t ->
  spec ->
  submit:(injector:int -> scheduled:float -> bool) ->
  result
(** Runs the harness to completion of all [total] arrivals. [submit]
    performs one blocking request and returns success; it receives the
    arrival's scheduled time to thread through as the request's
    CO-safe origin (e.g. {!Lab_runtime.Client.read_block}'s
    [?scheduled_at]) plus the sending injector's index in
    [0, injectors) — queue-pair completion queues are single-consumer,
    so callers typically key one client per injector off it. Must be
    called from within a simulated process
    (e.g. under {!Lab_labstor.Platform.go}); spawns its own injector
    processes and timer chain, and returns once the last arrival is
    completed or shed.

    @raise Invalid_argument on a non-positive [total], [injectors] or
    [queue_cap], or a malformed process. *)
