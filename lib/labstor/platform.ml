open Lab_sim
open Lab_device

type t = {
  m : Machine.t;
  rt : Lab_runtime.Runtime.t;
  devs : (Profile.kind * Device.t) list;
  backends : (Profile.kind * Lab_mods.Mods_env.backend) list;
  mutable next_pid : int;
}

let backend_name kind = String.lowercase_ascii (Profile.kind_to_string kind)

(* Duplicate kinds in [devices] become distinct instances — mirror
   legs — named "nvme", "nvme2", "nvme3", … so each leg keeps its own
   identity in metrics, fault plans and volume topology. A
   single-instance boot keeps the historical name ("nvme"), so existing
   metric exports are byte-identical. *)
let instance_names devices =
  let seen = Hashtbl.create 8 in
  List.map
    (fun k ->
      let n = try Hashtbl.find seen k with Not_found -> 0 in
      Hashtbl.replace seen k (n + 1);
      let base = backend_name k in
      if n = 0 then base else Printf.sprintf "%s%d" base (n + 1))
    devices

let boot ?(ncores = 24) ?(nworkers = 4) ?policy ?costs
    ?(devices = [ Profile.Nvme ]) ?default_device ?(seed = 0xC0FFEE)
    ?(workers_busy_poll = false) ?(worker_batch_size = 1)
    ?(worker_max_inflight = 16) ?fault_rates ?fault_script
    ?(trace_sample = 0) ?trace_path ?metrics_path
    ?(profile_period = 0.0) ?profile_path ?lvm_rebuild_rate_mbps
    ?qos_quantum_kb ?qos_window_kb ?qos_bypass_kb ?slo_name
    ?slo_p99_target_us ?slo_floor_kops ?slo_error_budget ?slo_window_ms
    ?exemplar_k ?exemplar_tail_us ?exemplar_path ?blackbox_cap ?blackbox_path
    () =
  let m = Machine.create ?costs ~seed ~ncores () in
  let devices = if devices = [] then [ Profile.Nvme ] else devices in
  let default_device = Option.value default_device ~default:(List.hd devices) in
  let devs =
    List.map2
      (fun k name ->
        (k, Device.create ~name m.Machine.engine (Profile.of_kind k)))
      devices (instance_names devices)
  in
  (* One fault plan per device, each with its own seed-derived stream so
     adding a device never perturbs another device's fault sequence. *)
  if fault_rates <> None || fault_script <> None then
    List.iteri
      (fun i (_, d) ->
        Device.set_fault_plan d
          (Fault.create ?rates:fault_rates ?script:fault_script
             ~seed:(seed + (i * 7919))
             ()))
      devs;
  let backends =
    List.map (fun (k, d) -> (k, Lab_mods.Mods_env.backend_of_device m d)) devs
  in
  let policy =
    Option.value policy ~default:(Lab_runtime.Orchestrator.Round_robin nworkers)
  in
  let config =
    {
      Lab_runtime.Runtime.default_config with
      nworkers;
      policy;
      (* Workers occupy the top cores; client threads take the bottom. *)
      worker_core_base = Stdlib.max 0 (ncores - nworkers);
      workers_busy_poll;
      worker_batch_size;
      worker_max_inflight;
      trace_sample;
      trace_path;
      metrics_path;
      profile_period_ns = profile_period;
      profile_path;
    }
  in
  let config =
    match lvm_rebuild_rate_mbps with
    | None -> config
    | Some r -> { config with Lab_runtime.Runtime.lvm_rebuild_rate_mbps = r }
  in
  let opt_i field config v =
    match v with None -> config | Some i -> field config i
  in
  let config =
    opt_i
      (fun c i -> { c with Lab_runtime.Runtime.qos_quantum_kb = i })
      config qos_quantum_kb
  in
  let config =
    opt_i
      (fun c i -> { c with Lab_runtime.Runtime.qos_window_kb = i })
      config qos_window_kb
  in
  let config =
    opt_i
      (fun c i -> { c with Lab_runtime.Runtime.qos_bypass_kb = i })
      config qos_bypass_kb
  in
  (* SLO knobs: [opt_i] is type-polymorphic despite the name. *)
  let config =
    opt_i
      (fun c s -> { c with Lab_runtime.Runtime.slo_name = s })
      config slo_name
  in
  let config =
    opt_i
      (fun c f -> { c with Lab_runtime.Runtime.slo_p99_target_us = f })
      config slo_p99_target_us
  in
  let config =
    opt_i
      (fun c f -> { c with Lab_runtime.Runtime.slo_floor_kops = f })
      config slo_floor_kops
  in
  let config =
    opt_i
      (fun c f -> { c with Lab_runtime.Runtime.slo_error_budget = f })
      config slo_error_budget
  in
  let config =
    opt_i
      (fun c f -> { c with Lab_runtime.Runtime.slo_window_ms = f })
      config slo_window_ms
  in
  (* Retroactive observability knobs (exemplar store + flight recorder). *)
  let config =
    opt_i
      (fun c i -> { c with Lab_runtime.Runtime.exemplar_k = i })
      config exemplar_k
  in
  let config =
    opt_i
      (fun c f -> { c with Lab_runtime.Runtime.exemplar_tail_us = f })
      config exemplar_tail_us
  in
  let config =
    opt_i
      (fun c p -> { c with Lab_runtime.Runtime.exemplar_path = Some p })
      config exemplar_path
  in
  let config =
    opt_i
      (fun c i -> { c with Lab_runtime.Runtime.blackbox_cap = i })
      config blackbox_cap
  in
  let config =
    opt_i
      (fun c p -> { c with Lab_runtime.Runtime.blackbox_path = Some p })
      config blackbox_path
  in
  let rt =
    Lab_runtime.Runtime.create m ~config
      ~backends:
        (List.map
           (fun (_, b) -> (Device.name b.Lab_mods.Mods_env.device, b))
           backends)
      ~default_backend:(backend_name default_device) ()
  in
  (* Injected faults feed the flight recorder: each device's fault plan
     reports (now, queue, label) as a fault fires, recording a Fault
     event and firing a per-category "fault:<label>" dump trigger. *)
  (match Lab_runtime.Runtime.blackbox rt with
  | Some bb ->
      List.iter
        (fun (_, d) ->
          match Device.fault_plan d with
          | None -> ()
          | Some f ->
              Fault.set_observer f (fun ~now ~queue ~label ->
                  Lab_obs.Flightrec.record bb Lab_obs.Flightrec.Fault ~now
                    ~id:queue ~tag:label ();
                  Lab_obs.Flightrec.trigger bb ~reason:("fault:" ^ label) ~now))
        devs
  | None -> ());
  (* Device health is exposed as read-through gauges: the registry holds
     a closure, so exports always see the device's current counters
     without per-I/O bookkeeping on the data path. *)
  let metrics = Lab_runtime.Runtime.metrics rt in
  List.iter
    (fun (_, d) ->
      let pre s = Printf.sprintf "device.%s.%s" (Device.name d) s in
      let gi name f =
        Lab_obs.Metrics.gauge_fn metrics (pre name) (fun () ->
            Stdlib.float_of_int (f d))
      in
      gi "completed_reads" Device.completed_reads;
      gi "completed_writes" Device.completed_writes;
      gi "errors" Device.completed_errors;
      gi "bytes_read" Device.bytes_read;
      gi "bytes_written" Device.bytes_written;
      let gp name p =
        Lab_obs.Metrics.gauge_fn metrics (pre name) (fun () ->
            Lab_sim.Stats.percentile (Device.service_stats d) p)
      in
      gp "service_p50_ns" 50.0;
      gp "service_p99_ns" 99.0;
      match Device.fault_plan d with
      | None -> ()
      | Some f ->
          Lab_obs.Metrics.gauge_fn metrics
            (Printf.sprintf "fault.%s.injected_total" (Device.name d))
            (fun () -> Stdlib.float_of_int (Lab_sim.Fault.injected_total f)))
    devs;
  (* Device queue occupancy joins the profiling sampler: the runtime
     registered the CPU/worker/QP/cache probes, the devices are ours. *)
  (match Lab_runtime.Runtime.timeseries rt with
  | Some ts ->
      List.iter
        (fun (_, d) ->
          Lab_obs.Timeseries.add_series ts
            (Printf.sprintf "device.%s.outstanding" (Device.name d))
            (fun _now -> Stdlib.float_of_int (Device.outstanding d)))
        devs
  | None -> ());
  Lab_runtime.Runtime.start rt;
  { m; rt; devs; backends; next_pid = 1000 }

let tracer t = Lab_runtime.Runtime.tracer t.rt

let metrics t = Lab_runtime.Runtime.metrics t.rt

(* Per-category fault injections only materialize as faults fire, so
   they cannot be pre-registered as gauges; sync them into counters at
   snapshot time instead. *)
let sync_fault_counters t =
  let reg = metrics t in
  List.iter
    (fun (_, d) ->
      match Device.fault_plan d with
      | None -> ()
      | Some f ->
          List.iter
            (fun (nm, n) ->
              let c =
                Lab_obs.Metrics.counter ~reg
                  (Printf.sprintf "fault.%s.%s" (Device.name d) nm)
              in
              Lab_obs.Metrics.set_value c n)
            (Lab_sim.Fault.injected f))
    t.devs

(* Artifacts default under an output directory ("out/…"), which may not
   exist yet; create missing parents so export never fails on a fresh
   checkout. *)
let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_file path contents =
  ensure_dir (Filename.dirname path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

(* The profile artifact: the sampler's timeline next to the span-based
   flamegraph + tail attribution. Both halves are byte-stable, so two
   same-seed runs export identical bytes. *)
let profile_json t =
  let timeline =
    match Lab_runtime.Runtime.timeseries t.rt with
    | Some ts -> Lab_obs.Timeseries.to_json ts
    | None -> Lab_obs.Timeseries.empty_json
  in
  let spans =
    Lab_obs.Profile.to_json
      (Lab_obs.Profile.of_events (Lab_obs.Trace.events (tracer t)))
  in
  Printf.sprintf "{\"timeline\":%s,\n\"spans\":%s}\n" timeline spans

let export ?trace_path ?metrics_path ?profile_path ?exemplar_path
    ?blackbox_path t =
  let cfg = Lab_runtime.Runtime.config t.rt in
  let pick override conf =
    match override with Some _ -> override | None -> conf
  in
  (match pick trace_path cfg.Lab_runtime.Runtime.trace_path with
  | Some p -> write_file p (Lab_obs.Trace.to_chrome_json (tracer t))
  | None -> ());
  (match pick profile_path cfg.Lab_runtime.Runtime.profile_path with
  | Some p -> write_file p (profile_json t)
  | None -> ());
  (match
     (Lab_runtime.Runtime.exemplars t.rt,
      pick exemplar_path cfg.Lab_runtime.Runtime.exemplar_path)
   with
  | Some store, Some p -> write_file p (Lab_obs.Exemplar.to_json store)
  | _ -> ());
  (match
     (Lab_runtime.Runtime.blackbox t.rt,
      pick blackbox_path cfg.Lab_runtime.Runtime.blackbox_path)
   with
  | Some bb, Some p -> write_file p (Lab_obs.Flightrec.to_json bb)
  | _ -> ());
  match pick metrics_path cfg.Lab_runtime.Runtime.metrics_path with
  | Some p ->
      sync_fault_counters t;
      write_file p (Lab_obs.Metrics.to_jsonl (metrics t))
  | None -> ()

let machine t = t.m

let runtime t = t.rt

let device t kind = List.assoc kind t.devs

let devices t = List.map (fun (_, d) -> (Device.name d, d)) t.devs

let device_by_name t name =
  match
    List.find_opt (fun (_, d) -> Device.name d = name) t.devs
  with
  | Some (_, d) -> d
  | None -> invalid_arg ("Platform.device_by_name: no device " ^ name)

let fault_plan t kind = Device.fault_plan (device t kind)

let backend t kind = List.assoc kind t.backends

let mount t text = Lab_runtime.Runtime.mount_text t.rt text

let mount_exn t text =
  match mount t text with
  | Ok s -> s
  | Error e -> invalid_arg ("Platform.mount_exn: " ^ e)

let register_tenant t ~uid ?weight ?rate_mbps ?burst_kb ?qcap () =
  Lab_runtime.Runtime.register_tenant t.rt ~ext_id:uid ?weight ?rate_mbps
    ?burst_kb ?qcap ()

let tenant_for t ~uid = Lab_runtime.Runtime.tenant_for t.rt ~uid

let client t ?pid ?(uid = 1000) ?retry_policy ~thread () =
  let pid =
    match pid with
    | Some p -> p
    | None ->
        t.next_pid <- t.next_pid + 1;
        t.next_pid
  in
  Lab_runtime.Client.connect t.rt ~pid ~uid ~thread ?retry_policy ()

let go t f =
  let result = ref None in
  Machine.spawn t.m (fun () -> result := Some (f ()));
  let e = t.m.Machine.engine in
  while !result = None && Engine.step e do
    ()
  done;
  match !result with
  | Some r -> r
  | None -> failwith "Platform.go: process did not complete (deadlock?)"

let now t = Machine.now t.m
