open Lab_sim
open Lab_device

type t = {
  m : Machine.t;
  rt : Lab_runtime.Runtime.t;
  devs : (Profile.kind * Device.t) list;
  backends : (Profile.kind * Lab_mods.Mods_env.backend) list;
  mutable next_pid : int;
}

let backend_name kind = String.lowercase_ascii (Profile.kind_to_string kind)

let boot ?(ncores = 24) ?(nworkers = 4) ?policy ?costs
    ?(devices = [ Profile.Nvme ]) ?default_device ?(seed = 0xC0FFEE)
    ?(workers_busy_poll = false) ?(worker_batch_size = 1)
    ?(worker_max_inflight = 16) ?fault_rates ?fault_script
    ?(trace_sample = 0) ?trace_path ?metrics_path
    ?(profile_period = 0.0) ?profile_path () =
  let m = Machine.create ?costs ~seed ~ncores () in
  let devices = if devices = [] then [ Profile.Nvme ] else devices in
  let default_device = Option.value default_device ~default:(List.hd devices) in
  let devs =
    List.map (fun k -> (k, Device.create m.Machine.engine (Profile.of_kind k))) devices
  in
  (* One fault plan per device, each with its own seed-derived stream so
     adding a device never perturbs another device's fault sequence. *)
  if fault_rates <> None || fault_script <> None then
    List.iteri
      (fun i (_, d) ->
        Device.set_fault_plan d
          (Fault.create ?rates:fault_rates ?script:fault_script
             ~seed:(seed + (i * 7919))
             ()))
      devs;
  let backends =
    List.map (fun (k, d) -> (k, Lab_mods.Mods_env.backend_of_device m d)) devs
  in
  let policy =
    Option.value policy ~default:(Lab_runtime.Orchestrator.Round_robin nworkers)
  in
  let config =
    {
      Lab_runtime.Runtime.default_config with
      nworkers;
      policy;
      (* Workers occupy the top cores; client threads take the bottom. *)
      worker_core_base = Stdlib.max 0 (ncores - nworkers);
      workers_busy_poll;
      worker_batch_size;
      worker_max_inflight;
      trace_sample;
      trace_path;
      metrics_path;
      profile_period_ns = profile_period;
      profile_path;
    }
  in
  let rt =
    Lab_runtime.Runtime.create m ~config
      ~backends:(List.map (fun (k, b) -> (backend_name k, b)) backends)
      ~default_backend:(backend_name default_device) ()
  in
  (* Device health is exposed as read-through gauges: the registry holds
     a closure, so exports always see the device's current counters
     without per-I/O bookkeeping on the data path. *)
  let metrics = Lab_runtime.Runtime.metrics rt in
  List.iter
    (fun (k, d) ->
      let pre s = Printf.sprintf "device.%s.%s" (backend_name k) s in
      let gi name f =
        Lab_obs.Metrics.gauge_fn metrics (pre name) (fun () ->
            Stdlib.float_of_int (f d))
      in
      gi "completed_reads" Device.completed_reads;
      gi "completed_writes" Device.completed_writes;
      gi "errors" Device.completed_errors;
      gi "bytes_read" Device.bytes_read;
      gi "bytes_written" Device.bytes_written;
      let gp name p =
        Lab_obs.Metrics.gauge_fn metrics (pre name) (fun () ->
            Lab_sim.Stats.percentile (Device.service_stats d) p)
      in
      gp "service_p50_ns" 50.0;
      gp "service_p99_ns" 99.0;
      match Device.fault_plan d with
      | None -> ()
      | Some f ->
          Lab_obs.Metrics.gauge_fn metrics
            (Printf.sprintf "fault.%s.injected_total" (backend_name k))
            (fun () -> Stdlib.float_of_int (Lab_sim.Fault.injected_total f)))
    devs;
  (* Device queue occupancy joins the profiling sampler: the runtime
     registered the CPU/worker/QP/cache probes, the devices are ours. *)
  (match Lab_runtime.Runtime.timeseries rt with
  | Some ts ->
      List.iter
        (fun (k, d) ->
          Lab_obs.Timeseries.add_series ts
            (Printf.sprintf "device.%s.outstanding" (backend_name k))
            (fun _now -> Stdlib.float_of_int (Device.outstanding d)))
        devs
  | None -> ());
  Lab_runtime.Runtime.start rt;
  { m; rt; devs; backends; next_pid = 1000 }

let tracer t = Lab_runtime.Runtime.tracer t.rt

let metrics t = Lab_runtime.Runtime.metrics t.rt

(* Per-category fault injections only materialize as faults fire, so
   they cannot be pre-registered as gauges; sync them into counters at
   snapshot time instead. *)
let sync_fault_counters t =
  let reg = metrics t in
  List.iter
    (fun (k, d) ->
      match Device.fault_plan d with
      | None -> ()
      | Some f ->
          List.iter
            (fun (nm, n) ->
              let c =
                Lab_obs.Metrics.counter ~reg
                  (Printf.sprintf "fault.%s.%s" (backend_name k) nm)
              in
              Lab_obs.Metrics.set_value c n)
            (Lab_sim.Fault.injected f))
    t.devs

(* Artifacts default under an output directory ("out/…"), which may not
   exist yet; create missing parents so export never fails on a fresh
   checkout. *)
let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_file path contents =
  ensure_dir (Filename.dirname path);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

(* The profile artifact: the sampler's timeline next to the span-based
   flamegraph + tail attribution. Both halves are byte-stable, so two
   same-seed runs export identical bytes. *)
let profile_json t =
  let timeline =
    match Lab_runtime.Runtime.timeseries t.rt with
    | Some ts -> Lab_obs.Timeseries.to_json ts
    | None -> Lab_obs.Timeseries.empty_json
  in
  let spans =
    Lab_obs.Profile.to_json
      (Lab_obs.Profile.of_events (Lab_obs.Trace.events (tracer t)))
  in
  Printf.sprintf "{\"timeline\":%s,\n\"spans\":%s}\n" timeline spans

let export ?trace_path ?metrics_path ?profile_path t =
  let cfg = Lab_runtime.Runtime.config t.rt in
  let pick override conf =
    match override with Some _ -> override | None -> conf
  in
  (match pick trace_path cfg.Lab_runtime.Runtime.trace_path with
  | Some p -> write_file p (Lab_obs.Trace.to_chrome_json (tracer t))
  | None -> ());
  (match pick profile_path cfg.Lab_runtime.Runtime.profile_path with
  | Some p -> write_file p (profile_json t)
  | None -> ());
  match pick metrics_path cfg.Lab_runtime.Runtime.metrics_path with
  | Some p ->
      sync_fault_counters t;
      write_file p (Lab_obs.Metrics.to_jsonl (metrics t))
  | None -> ()

let machine t = t.m

let runtime t = t.rt

let device t kind = List.assoc kind t.devs

let fault_plan t kind = Device.fault_plan (device t kind)

let backend t kind = List.assoc kind t.backends

let mount t text = Lab_runtime.Runtime.mount_text t.rt text

let mount_exn t text =
  match mount t text with
  | Ok s -> s
  | Error e -> invalid_arg ("Platform.mount_exn: " ^ e)

let client t ?pid ?(uid = 1000) ?retry_policy ~thread () =
  let pid =
    match pid with
    | Some p -> p
    | None ->
        t.next_pid <- t.next_pid + 1;
        t.next_pid
  in
  Lab_runtime.Client.connect t.rt ~pid ~uid ~thread ?retry_policy ()

let go t f =
  let result = ref None in
  Machine.spawn t.m (fun () -> result := Some (f ()));
  let e = t.m.Machine.engine in
  while !result = None && Engine.step e do
    ()
  done;
  match !result with
  | Some r -> r
  | None -> failwith "Platform.go: process did not complete (deadlock?)"

let now t = Machine.now t.m
