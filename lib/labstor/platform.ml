open Lab_sim
open Lab_device

type t = {
  m : Machine.t;
  rt : Lab_runtime.Runtime.t;
  devs : (Profile.kind * Device.t) list;
  backends : (Profile.kind * Lab_mods.Mods_env.backend) list;
  mutable next_pid : int;
}

let backend_name kind = String.lowercase_ascii (Profile.kind_to_string kind)

let boot ?(ncores = 24) ?(nworkers = 4) ?policy ?costs
    ?(devices = [ Profile.Nvme ]) ?default_device ?(seed = 0xC0FFEE)
    ?(workers_busy_poll = false) ?(worker_batch_size = 1)
    ?(worker_max_inflight = 16) ?fault_rates ?fault_script () =
  let m = Machine.create ?costs ~seed ~ncores () in
  let devices = if devices = [] then [ Profile.Nvme ] else devices in
  let default_device = Option.value default_device ~default:(List.hd devices) in
  let devs =
    List.map (fun k -> (k, Device.create m.Machine.engine (Profile.of_kind k))) devices
  in
  (* One fault plan per device, each with its own seed-derived stream so
     adding a device never perturbs another device's fault sequence. *)
  if fault_rates <> None || fault_script <> None then
    List.iteri
      (fun i (_, d) ->
        Device.set_fault_plan d
          (Fault.create ?rates:fault_rates ?script:fault_script
             ~seed:(seed + (i * 7919))
             ()))
      devs;
  let backends =
    List.map (fun (k, d) -> (k, Lab_mods.Mods_env.backend_of_device m d)) devs
  in
  let policy =
    Option.value policy ~default:(Lab_runtime.Orchestrator.Round_robin nworkers)
  in
  let config =
    {
      Lab_runtime.Runtime.default_config with
      nworkers;
      policy;
      (* Workers occupy the top cores; client threads take the bottom. *)
      worker_core_base = Stdlib.max 0 (ncores - nworkers);
      workers_busy_poll;
      worker_batch_size;
      worker_max_inflight;
    }
  in
  let rt =
    Lab_runtime.Runtime.create m ~config
      ~backends:(List.map (fun (k, b) -> (backend_name k, b)) backends)
      ~default_backend:(backend_name default_device) ()
  in
  Lab_runtime.Runtime.start rt;
  { m; rt; devs; backends; next_pid = 1000 }

let machine t = t.m

let runtime t = t.rt

let device t kind = List.assoc kind t.devs

let fault_plan t kind = Device.fault_plan (device t kind)

let backend t kind = List.assoc kind t.backends

let mount t text = Lab_runtime.Runtime.mount_text t.rt text

let mount_exn t text =
  match mount t text with
  | Ok s -> s
  | Error e -> invalid_arg ("Platform.mount_exn: " ^ e)

let client t ?pid ?(uid = 1000) ?retry_policy ~thread () =
  let pid =
    match pid with
    | Some p -> p
    | None ->
        t.next_pid <- t.next_pid + 1;
        t.next_pid
  in
  Lab_runtime.Client.connect t.rt ~pid ~uid ~thread ?retry_policy ()

let go t f =
  let result = ref None in
  Machine.spawn t.m (fun () -> result := Some (f ()));
  let e = t.m.Machine.engine in
  while !result = None && Engine.step e do
    ()
  done;
  match !result with
  | Some r -> r
  | None -> failwith "Platform.go: process did not complete (deadlock?)"

let now t = Machine.now t.m
